file(REMOVE_RECURSE
  "libxdaq_netio.a"
)
