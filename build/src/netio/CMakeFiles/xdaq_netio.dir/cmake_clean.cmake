file(REMOVE_RECURSE
  "CMakeFiles/xdaq_netio.dir/socket.cpp.o"
  "CMakeFiles/xdaq_netio.dir/socket.cpp.o.d"
  "libxdaq_netio.a"
  "libxdaq_netio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xdaq_netio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
