# Empty dependencies file for xdaq_netio.
# This may be replaced when dependencies are built.
