# Empty dependencies file for xdaq_daq.
# This may be replaced when dependencies are built.
