file(REMOVE_RECURSE
  "libxdaq_daq.a"
)
