file(REMOVE_RECURSE
  "CMakeFiles/xdaq_daq.dir/builder_unit.cpp.o"
  "CMakeFiles/xdaq_daq.dir/builder_unit.cpp.o.d"
  "CMakeFiles/xdaq_daq.dir/event_manager.cpp.o"
  "CMakeFiles/xdaq_daq.dir/event_manager.cpp.o.d"
  "CMakeFiles/xdaq_daq.dir/protocol.cpp.o"
  "CMakeFiles/xdaq_daq.dir/protocol.cpp.o.d"
  "CMakeFiles/xdaq_daq.dir/readout_unit.cpp.o"
  "CMakeFiles/xdaq_daq.dir/readout_unit.cpp.o.d"
  "CMakeFiles/xdaq_daq.dir/register.cpp.o"
  "CMakeFiles/xdaq_daq.dir/register.cpp.o.d"
  "CMakeFiles/xdaq_daq.dir/topology.cpp.o"
  "CMakeFiles/xdaq_daq.dir/topology.cpp.o.d"
  "libxdaq_daq.a"
  "libxdaq_daq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xdaq_daq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
