file(REMOVE_RECURSE
  "libxdaq_i2o.a"
)
