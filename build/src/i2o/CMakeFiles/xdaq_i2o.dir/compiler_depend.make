# Empty compiler generated dependencies file for xdaq_i2o.
# This may be replaced when dependencies are built.
