file(REMOVE_RECURSE
  "CMakeFiles/xdaq_i2o.dir/chain.cpp.o"
  "CMakeFiles/xdaq_i2o.dir/chain.cpp.o.d"
  "CMakeFiles/xdaq_i2o.dir/frame.cpp.o"
  "CMakeFiles/xdaq_i2o.dir/frame.cpp.o.d"
  "CMakeFiles/xdaq_i2o.dir/paramlist.cpp.o"
  "CMakeFiles/xdaq_i2o.dir/paramlist.cpp.o.d"
  "libxdaq_i2o.a"
  "libxdaq_i2o.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xdaq_i2o.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
