# CMake generated Testfile for 
# Source directory: /root/repo/src/i2o
# Build directory: /root/repo/build/src/i2o
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
