
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/address_table.cpp" "src/core/CMakeFiles/xdaq_core.dir/address_table.cpp.o" "gcc" "src/core/CMakeFiles/xdaq_core.dir/address_table.cpp.o.d"
  "/root/repo/src/core/bulk.cpp" "src/core/CMakeFiles/xdaq_core.dir/bulk.cpp.o" "gcc" "src/core/CMakeFiles/xdaq_core.dir/bulk.cpp.o.d"
  "/root/repo/src/core/device.cpp" "src/core/CMakeFiles/xdaq_core.dir/device.cpp.o" "gcc" "src/core/CMakeFiles/xdaq_core.dir/device.cpp.o.d"
  "/root/repo/src/core/executive.cpp" "src/core/CMakeFiles/xdaq_core.dir/executive.cpp.o" "gcc" "src/core/CMakeFiles/xdaq_core.dir/executive.cpp.o.d"
  "/root/repo/src/core/factory.cpp" "src/core/CMakeFiles/xdaq_core.dir/factory.cpp.o" "gcc" "src/core/CMakeFiles/xdaq_core.dir/factory.cpp.o.d"
  "/root/repo/src/core/remote_device.cpp" "src/core/CMakeFiles/xdaq_core.dir/remote_device.cpp.o" "gcc" "src/core/CMakeFiles/xdaq_core.dir/remote_device.cpp.o.d"
  "/root/repo/src/core/requester.cpp" "src/core/CMakeFiles/xdaq_core.dir/requester.cpp.o" "gcc" "src/core/CMakeFiles/xdaq_core.dir/requester.cpp.o.d"
  "/root/repo/src/core/scheduler.cpp" "src/core/CMakeFiles/xdaq_core.dir/scheduler.cpp.o" "gcc" "src/core/CMakeFiles/xdaq_core.dir/scheduler.cpp.o.d"
  "/root/repo/src/core/timer.cpp" "src/core/CMakeFiles/xdaq_core.dir/timer.cpp.o" "gcc" "src/core/CMakeFiles/xdaq_core.dir/timer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/i2o/CMakeFiles/xdaq_i2o.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/xdaq_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/xdaq_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
