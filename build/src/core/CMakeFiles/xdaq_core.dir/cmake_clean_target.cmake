file(REMOVE_RECURSE
  "libxdaq_core.a"
)
