# Empty dependencies file for xdaq_core.
# This may be replaced when dependencies are built.
