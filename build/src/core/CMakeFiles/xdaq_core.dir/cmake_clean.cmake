file(REMOVE_RECURSE
  "CMakeFiles/xdaq_core.dir/address_table.cpp.o"
  "CMakeFiles/xdaq_core.dir/address_table.cpp.o.d"
  "CMakeFiles/xdaq_core.dir/bulk.cpp.o"
  "CMakeFiles/xdaq_core.dir/bulk.cpp.o.d"
  "CMakeFiles/xdaq_core.dir/device.cpp.o"
  "CMakeFiles/xdaq_core.dir/device.cpp.o.d"
  "CMakeFiles/xdaq_core.dir/executive.cpp.o"
  "CMakeFiles/xdaq_core.dir/executive.cpp.o.d"
  "CMakeFiles/xdaq_core.dir/factory.cpp.o"
  "CMakeFiles/xdaq_core.dir/factory.cpp.o.d"
  "CMakeFiles/xdaq_core.dir/remote_device.cpp.o"
  "CMakeFiles/xdaq_core.dir/remote_device.cpp.o.d"
  "CMakeFiles/xdaq_core.dir/requester.cpp.o"
  "CMakeFiles/xdaq_core.dir/requester.cpp.o.d"
  "CMakeFiles/xdaq_core.dir/scheduler.cpp.o"
  "CMakeFiles/xdaq_core.dir/scheduler.cpp.o.d"
  "CMakeFiles/xdaq_core.dir/timer.cpp.o"
  "CMakeFiles/xdaq_core.dir/timer.cpp.o.d"
  "libxdaq_core.a"
  "libxdaq_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xdaq_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
