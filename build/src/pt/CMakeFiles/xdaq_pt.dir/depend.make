# Empty dependencies file for xdaq_pt.
# This may be replaced when dependencies are built.
