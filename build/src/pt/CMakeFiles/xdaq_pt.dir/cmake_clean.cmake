file(REMOVE_RECURSE
  "CMakeFiles/xdaq_pt.dir/cluster.cpp.o"
  "CMakeFiles/xdaq_pt.dir/cluster.cpp.o.d"
  "CMakeFiles/xdaq_pt.dir/fifo_pt.cpp.o"
  "CMakeFiles/xdaq_pt.dir/fifo_pt.cpp.o.d"
  "CMakeFiles/xdaq_pt.dir/gm_pt.cpp.o"
  "CMakeFiles/xdaq_pt.dir/gm_pt.cpp.o.d"
  "CMakeFiles/xdaq_pt.dir/local_bus.cpp.o"
  "CMakeFiles/xdaq_pt.dir/local_bus.cpp.o.d"
  "CMakeFiles/xdaq_pt.dir/tcp_pt.cpp.o"
  "CMakeFiles/xdaq_pt.dir/tcp_pt.cpp.o.d"
  "libxdaq_pt.a"
  "libxdaq_pt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xdaq_pt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
