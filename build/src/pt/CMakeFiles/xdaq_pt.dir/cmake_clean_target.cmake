file(REMOVE_RECURSE
  "libxdaq_pt.a"
)
