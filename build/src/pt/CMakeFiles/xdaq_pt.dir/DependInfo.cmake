
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pt/cluster.cpp" "src/pt/CMakeFiles/xdaq_pt.dir/cluster.cpp.o" "gcc" "src/pt/CMakeFiles/xdaq_pt.dir/cluster.cpp.o.d"
  "/root/repo/src/pt/fifo_pt.cpp" "src/pt/CMakeFiles/xdaq_pt.dir/fifo_pt.cpp.o" "gcc" "src/pt/CMakeFiles/xdaq_pt.dir/fifo_pt.cpp.o.d"
  "/root/repo/src/pt/gm_pt.cpp" "src/pt/CMakeFiles/xdaq_pt.dir/gm_pt.cpp.o" "gcc" "src/pt/CMakeFiles/xdaq_pt.dir/gm_pt.cpp.o.d"
  "/root/repo/src/pt/local_bus.cpp" "src/pt/CMakeFiles/xdaq_pt.dir/local_bus.cpp.o" "gcc" "src/pt/CMakeFiles/xdaq_pt.dir/local_bus.cpp.o.d"
  "/root/repo/src/pt/tcp_pt.cpp" "src/pt/CMakeFiles/xdaq_pt.dir/tcp_pt.cpp.o" "gcc" "src/pt/CMakeFiles/xdaq_pt.dir/tcp_pt.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/xdaq_core.dir/DependInfo.cmake"
  "/root/repo/build/src/gmsim/CMakeFiles/xdaq_gmsim.dir/DependInfo.cmake"
  "/root/repo/build/src/netio/CMakeFiles/xdaq_netio.dir/DependInfo.cmake"
  "/root/repo/build/src/i2o/CMakeFiles/xdaq_i2o.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/xdaq_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/xdaq_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
