file(REMOVE_RECURSE
  "CMakeFiles/xdaq_rmi.dir/adapter.cpp.o"
  "CMakeFiles/xdaq_rmi.dir/adapter.cpp.o.d"
  "libxdaq_rmi.a"
  "libxdaq_rmi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xdaq_rmi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
