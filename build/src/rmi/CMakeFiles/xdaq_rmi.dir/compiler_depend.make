# Empty compiler generated dependencies file for xdaq_rmi.
# This may be replaced when dependencies are built.
