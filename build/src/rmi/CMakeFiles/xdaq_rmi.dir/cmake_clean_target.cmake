file(REMOVE_RECURSE
  "libxdaq_rmi.a"
)
