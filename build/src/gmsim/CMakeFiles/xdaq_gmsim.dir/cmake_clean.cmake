file(REMOVE_RECURSE
  "CMakeFiles/xdaq_gmsim.dir/gmsim.cpp.o"
  "CMakeFiles/xdaq_gmsim.dir/gmsim.cpp.o.d"
  "libxdaq_gmsim.a"
  "libxdaq_gmsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xdaq_gmsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
