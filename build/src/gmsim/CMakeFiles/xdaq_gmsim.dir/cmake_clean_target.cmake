file(REMOVE_RECURSE
  "libxdaq_gmsim.a"
)
