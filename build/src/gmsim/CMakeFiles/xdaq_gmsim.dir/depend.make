# Empty dependencies file for xdaq_gmsim.
# This may be replaced when dependencies are built.
