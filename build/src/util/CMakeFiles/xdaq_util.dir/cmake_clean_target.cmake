file(REMOVE_RECURSE
  "libxdaq_util.a"
)
