file(REMOVE_RECURSE
  "CMakeFiles/xdaq_util.dir/cli.cpp.o"
  "CMakeFiles/xdaq_util.dir/cli.cpp.o.d"
  "CMakeFiles/xdaq_util.dir/clock.cpp.o"
  "CMakeFiles/xdaq_util.dir/clock.cpp.o.d"
  "CMakeFiles/xdaq_util.dir/logging.cpp.o"
  "CMakeFiles/xdaq_util.dir/logging.cpp.o.d"
  "CMakeFiles/xdaq_util.dir/stats.cpp.o"
  "CMakeFiles/xdaq_util.dir/stats.cpp.o.d"
  "CMakeFiles/xdaq_util.dir/status.cpp.o"
  "CMakeFiles/xdaq_util.dir/status.cpp.o.d"
  "libxdaq_util.a"
  "libxdaq_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xdaq_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
