# Empty dependencies file for xdaq_util.
# This may be replaced when dependencies are built.
