file(REMOVE_RECURSE
  "CMakeFiles/xdaq_mem.dir/pool.cpp.o"
  "CMakeFiles/xdaq_mem.dir/pool.cpp.o.d"
  "CMakeFiles/xdaq_mem.dir/sgl.cpp.o"
  "CMakeFiles/xdaq_mem.dir/sgl.cpp.o.d"
  "libxdaq_mem.a"
  "libxdaq_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xdaq_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
