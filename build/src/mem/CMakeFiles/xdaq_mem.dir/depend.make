# Empty dependencies file for xdaq_mem.
# This may be replaced when dependencies are built.
