file(REMOVE_RECURSE
  "libxdaq_mem.a"
)
