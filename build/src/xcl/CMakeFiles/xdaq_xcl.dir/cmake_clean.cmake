file(REMOVE_RECURSE
  "CMakeFiles/xdaq_xcl.dir/builtins.cpp.o"
  "CMakeFiles/xdaq_xcl.dir/builtins.cpp.o.d"
  "CMakeFiles/xdaq_xcl.dir/control.cpp.o"
  "CMakeFiles/xdaq_xcl.dir/control.cpp.o.d"
  "CMakeFiles/xdaq_xcl.dir/interp.cpp.o"
  "CMakeFiles/xdaq_xcl.dir/interp.cpp.o.d"
  "libxdaq_xcl.a"
  "libxdaq_xcl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xdaq_xcl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
