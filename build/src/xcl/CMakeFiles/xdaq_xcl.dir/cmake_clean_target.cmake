file(REMOVE_RECURSE
  "libxdaq_xcl.a"
)
