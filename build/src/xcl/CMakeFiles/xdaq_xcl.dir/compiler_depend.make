# Empty compiler generated dependencies file for xdaq_xcl.
# This may be replaced when dependencies are built.
