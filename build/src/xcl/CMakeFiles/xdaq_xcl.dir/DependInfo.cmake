
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xcl/builtins.cpp" "src/xcl/CMakeFiles/xdaq_xcl.dir/builtins.cpp.o" "gcc" "src/xcl/CMakeFiles/xdaq_xcl.dir/builtins.cpp.o.d"
  "/root/repo/src/xcl/control.cpp" "src/xcl/CMakeFiles/xdaq_xcl.dir/control.cpp.o" "gcc" "src/xcl/CMakeFiles/xdaq_xcl.dir/control.cpp.o.d"
  "/root/repo/src/xcl/interp.cpp" "src/xcl/CMakeFiles/xdaq_xcl.dir/interp.cpp.o" "gcc" "src/xcl/CMakeFiles/xdaq_xcl.dir/interp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/xdaq_core.dir/DependInfo.cmake"
  "/root/repo/build/src/i2o/CMakeFiles/xdaq_i2o.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/xdaq_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/xdaq_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
