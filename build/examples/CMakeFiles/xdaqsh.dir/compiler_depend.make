# Empty compiler generated dependencies file for xdaqsh.
# This may be replaced when dependencies are built.
