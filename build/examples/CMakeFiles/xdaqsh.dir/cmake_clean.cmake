file(REMOVE_RECURSE
  "CMakeFiles/xdaqsh.dir/xdaqsh.cpp.o"
  "CMakeFiles/xdaqsh.dir/xdaqsh.cpp.o.d"
  "xdaqsh"
  "xdaqsh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xdaqsh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
