file(REMOVE_RECURSE
  "CMakeFiles/rmi_calculator.dir/rmi_calculator.cpp.o"
  "CMakeFiles/rmi_calculator.dir/rmi_calculator.cpp.o.d"
  "rmi_calculator"
  "rmi_calculator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rmi_calculator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
