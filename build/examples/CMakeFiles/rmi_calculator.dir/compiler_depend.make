# Empty compiler generated dependencies file for rmi_calculator.
# This may be replaced when dependencies are built.
