# Empty dependencies file for eventbuilder.
# This may be replaced when dependencies are built.
