file(REMOVE_RECURSE
  "CMakeFiles/eventbuilder.dir/eventbuilder.cpp.o"
  "CMakeFiles/eventbuilder.dir/eventbuilder.cpp.o.d"
  "eventbuilder"
  "eventbuilder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eventbuilder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
