file(REMOVE_RECURSE
  "CMakeFiles/control_cluster.dir/control_cluster.cpp.o"
  "CMakeFiles/control_cluster.dir/control_cluster.cpp.o.d"
  "control_cluster"
  "control_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/control_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
