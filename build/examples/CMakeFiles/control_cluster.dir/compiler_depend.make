# Empty compiler generated dependencies file for control_cluster.
# This may be replaced when dependencies are built.
