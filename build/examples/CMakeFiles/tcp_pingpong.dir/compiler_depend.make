# Empty compiler generated dependencies file for tcp_pingpong.
# This may be replaced when dependencies are built.
