file(REMOVE_RECURSE
  "CMakeFiles/tcp_pingpong.dir/tcp_pingpong.cpp.o"
  "CMakeFiles/tcp_pingpong.dir/tcp_pingpong.cpp.o.d"
  "tcp_pingpong"
  "tcp_pingpong.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcp_pingpong.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
