file(REMOVE_RECURSE
  "CMakeFiles/alloc_ablation.dir/alloc_ablation.cpp.o"
  "CMakeFiles/alloc_ablation.dir/alloc_ablation.cpp.o.d"
  "alloc_ablation"
  "alloc_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alloc_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
