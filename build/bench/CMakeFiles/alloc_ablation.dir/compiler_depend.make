# Empty compiler generated dependencies file for alloc_ablation.
# This may be replaced when dependencies are built.
