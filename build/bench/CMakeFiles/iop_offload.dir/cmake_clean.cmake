file(REMOVE_RECURSE
  "CMakeFiles/iop_offload.dir/iop_offload.cpp.o"
  "CMakeFiles/iop_offload.dir/iop_offload.cpp.o.d"
  "iop_offload"
  "iop_offload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iop_offload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
