# Empty compiler generated dependencies file for iop_offload.
# This may be replaced when dependencies are built.
