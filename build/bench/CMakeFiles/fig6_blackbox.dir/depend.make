# Empty dependencies file for fig6_blackbox.
# This may be replaced when dependencies are built.
