file(REMOVE_RECURSE
  "CMakeFiles/fig6_blackbox.dir/fig6_blackbox.cpp.o"
  "CMakeFiles/fig6_blackbox.dir/fig6_blackbox.cpp.o.d"
  "fig6_blackbox"
  "fig6_blackbox.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_blackbox.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
