# Empty dependencies file for batch_ablation.
# This may be replaced when dependencies are built.
