file(REMOVE_RECURSE
  "CMakeFiles/batch_ablation.dir/batch_ablation.cpp.o"
  "CMakeFiles/batch_ablation.dir/batch_ablation.cpp.o.d"
  "batch_ablation"
  "batch_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/batch_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
