
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/batch_ablation.cpp" "bench/CMakeFiles/batch_ablation.dir/batch_ablation.cpp.o" "gcc" "bench/CMakeFiles/batch_ablation.dir/batch_ablation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pt/CMakeFiles/xdaq_pt.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/xdaq_util.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/xdaq_core.dir/DependInfo.cmake"
  "/root/repo/build/src/i2o/CMakeFiles/xdaq_i2o.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/xdaq_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/gmsim/CMakeFiles/xdaq_gmsim.dir/DependInfo.cmake"
  "/root/repo/build/src/netio/CMakeFiles/xdaq_netio.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
