file(REMOVE_RECURSE
  "CMakeFiles/table1_whitebox.dir/table1_whitebox.cpp.o"
  "CMakeFiles/table1_whitebox.dir/table1_whitebox.cpp.o.d"
  "table1_whitebox"
  "table1_whitebox.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_whitebox.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
