# Empty dependencies file for table1_whitebox.
# This may be replaced when dependencies are built.
