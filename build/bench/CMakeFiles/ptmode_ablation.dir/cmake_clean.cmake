file(REMOVE_RECURSE
  "CMakeFiles/ptmode_ablation.dir/ptmode_ablation.cpp.o"
  "CMakeFiles/ptmode_ablation.dir/ptmode_ablation.cpp.o.d"
  "ptmode_ablation"
  "ptmode_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptmode_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
