# Empty compiler generated dependencies file for ptmode_ablation.
# This may be replaced when dependencies are built.
