# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(bench_smoke.fig6_blackbox "/root/repo/build/bench/fig6_blackbox" "--calls" "200")
set_tests_properties(bench_smoke.fig6_blackbox PROPERTIES  LABELS "bench_smoke" TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;27;add_test;/root/repo/bench/CMakeLists.txt;32;xdaq_bench_smoke;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke.table1_whitebox "/root/repo/build/bench/table1_whitebox" "--calls" "500")
set_tests_properties(bench_smoke.table1_whitebox PROPERTIES  LABELS "bench_smoke" TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;27;add_test;/root/repo/bench/CMakeLists.txt;33;xdaq_bench_smoke;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke.alloc_ablation "/root/repo/build/bench/alloc_ablation" "--calls" "500")
set_tests_properties(bench_smoke.alloc_ablation PROPERTIES  LABELS "bench_smoke" TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;27;add_test;/root/repo/bench/CMakeLists.txt;34;xdaq_bench_smoke;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke.ptmode_ablation "/root/repo/build/bench/ptmode_ablation" "--calls" "200")
set_tests_properties(bench_smoke.ptmode_ablation PROPERTIES  LABELS "bench_smoke" TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;27;add_test;/root/repo/bench/CMakeLists.txt;35;xdaq_bench_smoke;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke.throughput "/root/repo/build/bench/throughput" "--messages" "2000")
set_tests_properties(bench_smoke.throughput PROPERTIES  LABELS "bench_smoke" TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;27;add_test;/root/repo/bench/CMakeLists.txt;36;xdaq_bench_smoke;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke.iop_offload "/root/repo/build/bench/iop_offload" "--calls" "500")
set_tests_properties(bench_smoke.iop_offload PROPERTIES  LABELS "bench_smoke" TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;27;add_test;/root/repo/bench/CMakeLists.txt;37;xdaq_bench_smoke;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke.priority_ablation "/root/repo/build/bench/priority_ablation" "--probes" "100")
set_tests_properties(bench_smoke.priority_ablation PROPERTIES  LABELS "bench_smoke" TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;27;add_test;/root/repo/bench/CMakeLists.txt;38;xdaq_bench_smoke;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke.batch_ablation "/root/repo/build/bench/batch_ablation" "--calls" "4000" "--tcp-frames" "2000")
set_tests_properties(bench_smoke.batch_ablation PROPERTIES  LABELS "bench_smoke" TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;27;add_test;/root/repo/bench/CMakeLists.txt;39;xdaq_bench_smoke;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke.microbench "/root/repo/build/bench/microbench" "--benchmark_min_time=0.01")
set_tests_properties(bench_smoke.microbench PROPERTIES  LABELS "bench_smoke" TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;27;add_test;/root/repo/bench/CMakeLists.txt;40;xdaq_bench_smoke;/root/repo/bench/CMakeLists.txt;0;")
