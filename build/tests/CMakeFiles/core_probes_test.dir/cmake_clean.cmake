file(REMOVE_RECURSE
  "CMakeFiles/core_probes_test.dir/core_probes_test.cpp.o"
  "CMakeFiles/core_probes_test.dir/core_probes_test.cpp.o.d"
  "core_probes_test"
  "core_probes_test.pdb"
  "core_probes_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_probes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
