# Empty compiler generated dependencies file for core_probes_test.
# This may be replaced when dependencies are built.
