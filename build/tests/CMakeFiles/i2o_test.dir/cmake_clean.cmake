file(REMOVE_RECURSE
  "CMakeFiles/i2o_test.dir/i2o_chain_test.cpp.o"
  "CMakeFiles/i2o_test.dir/i2o_chain_test.cpp.o.d"
  "CMakeFiles/i2o_test.dir/i2o_frame_test.cpp.o"
  "CMakeFiles/i2o_test.dir/i2o_frame_test.cpp.o.d"
  "CMakeFiles/i2o_test.dir/i2o_paramlist_test.cpp.o"
  "CMakeFiles/i2o_test.dir/i2o_paramlist_test.cpp.o.d"
  "i2o_test"
  "i2o_test.pdb"
  "i2o_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/i2o_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
