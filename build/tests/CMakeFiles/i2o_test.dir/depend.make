# Empty dependencies file for i2o_test.
# This may be replaced when dependencies are built.
