
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/i2o_chain_test.cpp" "tests/CMakeFiles/i2o_test.dir/i2o_chain_test.cpp.o" "gcc" "tests/CMakeFiles/i2o_test.dir/i2o_chain_test.cpp.o.d"
  "/root/repo/tests/i2o_frame_test.cpp" "tests/CMakeFiles/i2o_test.dir/i2o_frame_test.cpp.o" "gcc" "tests/CMakeFiles/i2o_test.dir/i2o_frame_test.cpp.o.d"
  "/root/repo/tests/i2o_paramlist_test.cpp" "tests/CMakeFiles/i2o_test.dir/i2o_paramlist_test.cpp.o" "gcc" "tests/CMakeFiles/i2o_test.dir/i2o_paramlist_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/i2o/CMakeFiles/xdaq_i2o.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/xdaq_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
