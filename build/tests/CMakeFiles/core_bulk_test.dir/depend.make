# Empty dependencies file for core_bulk_test.
# This may be replaced when dependencies are built.
