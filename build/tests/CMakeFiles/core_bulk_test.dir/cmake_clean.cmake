file(REMOVE_RECURSE
  "CMakeFiles/core_bulk_test.dir/core_bulk_test.cpp.o"
  "CMakeFiles/core_bulk_test.dir/core_bulk_test.cpp.o.d"
  "core_bulk_test"
  "core_bulk_test.pdb"
  "core_bulk_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_bulk_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
