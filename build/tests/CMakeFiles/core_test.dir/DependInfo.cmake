
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core_address_table_test.cpp" "tests/CMakeFiles/core_test.dir/core_address_table_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core_address_table_test.cpp.o.d"
  "/root/repo/tests/core_executive_test.cpp" "tests/CMakeFiles/core_test.dir/core_executive_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core_executive_test.cpp.o.d"
  "/root/repo/tests/core_scheduler_test.cpp" "tests/CMakeFiles/core_test.dir/core_scheduler_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core_scheduler_test.cpp.o.d"
  "/root/repo/tests/core_timer_test.cpp" "tests/CMakeFiles/core_test.dir/core_timer_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core_timer_test.cpp.o.d"
  "/root/repo/tests/core_trace_test.cpp" "tests/CMakeFiles/core_test.dir/core_trace_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core_trace_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/xdaq_core.dir/DependInfo.cmake"
  "/root/repo/build/src/i2o/CMakeFiles/xdaq_i2o.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/xdaq_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/xdaq_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
