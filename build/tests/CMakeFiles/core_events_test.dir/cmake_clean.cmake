file(REMOVE_RECURSE
  "CMakeFiles/core_events_test.dir/core_events_test.cpp.o"
  "CMakeFiles/core_events_test.dir/core_events_test.cpp.o.d"
  "core_events_test"
  "core_events_test.pdb"
  "core_events_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_events_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
