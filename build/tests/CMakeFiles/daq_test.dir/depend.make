# Empty dependencies file for daq_test.
# This may be replaced when dependencies are built.
