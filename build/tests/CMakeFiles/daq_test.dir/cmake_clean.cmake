file(REMOVE_RECURSE
  "CMakeFiles/daq_test.dir/daq_test.cpp.o"
  "CMakeFiles/daq_test.dir/daq_test.cpp.o.d"
  "daq_test"
  "daq_test.pdb"
  "daq_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/daq_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
