file(REMOVE_RECURSE
  "CMakeFiles/pt_test.dir/pt_cluster_test.cpp.o"
  "CMakeFiles/pt_test.dir/pt_cluster_test.cpp.o.d"
  "CMakeFiles/pt_test.dir/pt_fifo_test.cpp.o"
  "CMakeFiles/pt_test.dir/pt_fifo_test.cpp.o.d"
  "CMakeFiles/pt_test.dir/pt_local_bus_test.cpp.o"
  "CMakeFiles/pt_test.dir/pt_local_bus_test.cpp.o.d"
  "CMakeFiles/pt_test.dir/pt_tcp_test.cpp.o"
  "CMakeFiles/pt_test.dir/pt_tcp_test.cpp.o.d"
  "pt_test"
  "pt_test.pdb"
  "pt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
