file(REMOVE_RECURSE
  "CMakeFiles/gmsim_test.dir/gmsim_test.cpp.o"
  "CMakeFiles/gmsim_test.dir/gmsim_test.cpp.o.d"
  "gmsim_test"
  "gmsim_test.pdb"
  "gmsim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gmsim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
