# Empty compiler generated dependencies file for gmsim_test.
# This may be replaced when dependencies are built.
