# Empty compiler generated dependencies file for xcl_test.
# This may be replaced when dependencies are built.
