# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/i2o_test[1]_include.cmake")
include("/root/repo/build/tests/mem_test[1]_include.cmake")
include("/root/repo/build/tests/gmsim_test[1]_include.cmake")
include("/root/repo/build/tests/netio_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/core_bulk_test[1]_include.cmake")
include("/root/repo/build/tests/core_events_test[1]_include.cmake")
include("/root/repo/build/tests/core_probes_test[1]_include.cmake")
include("/root/repo/build/tests/core_remote_device_test[1]_include.cmake")
include("/root/repo/build/tests/pt_test[1]_include.cmake")
include("/root/repo/build/tests/xcl_test[1]_include.cmake")
include("/root/repo/build/tests/rmi_test[1]_include.cmake")
include("/root/repo/build/tests/daq_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/edge_cases_test[1]_include.cmake")
include("/root/repo/build/tests/process_test[1]_include.cmake")
include("/root/repo/build/tests/soak_test[1]_include.cmake")
