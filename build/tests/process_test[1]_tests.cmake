add_test([=[MultiProcess.ControlLoadAndShutdownRealDaemons]=]  /root/repo/build/tests/process_test [==[--gtest_filter=MultiProcess.ControlLoadAndShutdownRealDaemons]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[MultiProcess.ControlLoadAndShutdownRealDaemons]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  process_test_TESTS MultiProcess.ControlLoadAndShutdownRealDaemons)
