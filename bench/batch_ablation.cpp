// batch_ablation.cpp - measures the hot-path batching introduced on top of
// the paper's optimized allocator: batched inbound drains + multi-message
// dispatch in the executive, and coalesced framing in the TCP transport.
//
// Two sections:
//   1. local post -> dispatch throughput: a single-threaded closed loop
//      plays producer and dispatcher (run_once), which keeps the number
//      deterministic on small machines. "off" = dispatch_batch 1 /
//      inbound_drain 1 / post() per frame (the seed's
//      one-lock-per-frame behaviour); "on" = post_batch() bursts with a
//      wide drain and dispatch batch.
//   2. 2-node TCP frame rate over real sockets: "off" = coalesce_bytes 0
//      (every frame takes its own gathered write); "on" = small frames
//      share syscalls through the per-connection write combiner.
//
// Results go to stdout and BENCH_batch.json.
#include <algorithm>
#include <cstdio>
#include <thread>

#include "bench_common.hpp"
#include "gmsim/gmsim.hpp"
#include "i2o/wire.hpp"
#include "pt/fifo_pt.hpp"
#include "pt/gm_pt.hpp"
#include "pt/tcp_pt.hpp"
#include "util/cli.hpp"

namespace xdaq::bench {
namespace {

/// Counts arrivals; no reply (frames carry a null initiator).
class CountSink final : public core::Device {
 public:
  CountSink() : Device("CountSink") {
    // Single writer (the dispatch thread); readers poll with relaxed
    // loads, so a plain load/store pair avoids a locked RMW per message.
    bind(i2o::OrgId::kBench, kXfnPing,
         [this](const core::MessageContext&) {
           count_.store(count_.load(std::memory_order_relaxed) + 1,
                        std::memory_order_relaxed);
         });
  }
  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> count_{0};
};

constexpr std::size_t kPayloadBytes = 64;

Result<mem::FrameRef> make_ping(core::Executive& exec, i2o::Tid target) {
  auto frame = exec.alloc_frame(kPayloadBytes, /*is_private=*/true);
  if (!frame.is_ok()) {
    return frame;
  }
  i2o::FrameHeader hdr;
  hdr.function = static_cast<std::uint8_t>(i2o::Function::Private);
  hdr.organization = static_cast<std::uint16_t>(i2o::OrgId::kBench);
  hdr.xfunction = kXfnPing;
  hdr.target = target;
  hdr.initiator = i2o::kNullTid;  // fire-and-forget: no reply path
  if (Status st = i2o::encode_header(hdr, frame.value().bytes());
      !st.is_ok()) {
    return st;
  }
  return frame;
}

/// Waits until the sink has seen `total` messages (deadline-bounded);
/// returns the count actually delivered.
std::uint64_t await_count(const CountSink& sink, std::uint64_t total,
                          std::chrono::seconds deadline) {
  const std::uint64_t t_end =
      now_ns() + static_cast<std::uint64_t>(
                     std::chrono::nanoseconds(deadline).count());
  while (sink.count() < total && now_ns() < t_end) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  return sink.count();
}

/// Local post -> dispatch throughput (messages per second). Closed loop,
/// no threads: the caller alternates producing and pumping, so the result
/// compares per-message locking/pump overhead against batch-amortized
/// overhead without OS-scheduler noise (on a one-core box a two-thread
/// flood flips between futex ping-pong and bulk alternation regimes and
/// the measurement becomes bistable).
///
/// The executive runs the deployment the paper optimizes for: its two
/// polling-mode peer transports (a GM NIC and a local FIFO link,
/// matching the paper's Table 1 setup where GM polls) are rescanned on
/// every pump ("In polling mode, the executive periodically scans all
/// registered PTs"). With dispatch_batch=1 that scan - like the queue
/// drain and the scheduler's FIFO bookkeeping - is paid per message;
/// batched it is paid per burst. Frames are preallocated outside the
/// timed region so the measurement covers post -> dispatch, not frame
/// construction.
double local_throughput(bool batched, std::uint64_t total,
                        std::size_t burst) {
  core::ExecutiveConfig cfg;
  cfg.name = "bench";
  cfg.node_id = 1;
  cfg.dispatch_batch = batched ? 128 : 1;
  cfg.inbound_drain = batched ? 256 : 1;
  cfg.inbound_capacity = 8192;
  // Production supervision stays on: the watchdog is armed once per
  // dispatch batch, so its clock read is per message at dispatch_batch=1
  // and amortized across the batch otherwise.
  cfg.handler_deadline = std::chrono::milliseconds(250);
  // Declared before exec: transports detach before their media go away.
  gmsim::Fabric fabric;
  pt::FifoLink link;
  core::Executive exec(cfg);
  (void)exec.install(std::make_unique<pt::GmPeerTransport>(fabric), "pt_gm");
  (void)exec.install(std::make_unique<pt::FifoTransport>(link, 0),
                     "pt_fifo");
  auto sink = std::make_unique<CountSink>();
  CountSink* sink_raw = sink.get();
  const auto sink_tid = exec.install(std::move(sink), "sink").value();
  (void)exec.enable_all();

  std::vector<mem::FrameRef> frames;
  frames.reserve(total);
  for (std::uint64_t i = 0; i < total; ++i) {
    auto frame = make_ping(exec, sink_tid);
    if (!frame.is_ok()) {
      break;
    }
    frames.push_back(std::move(frame).value());
  }

  const std::uint64_t t0 = now_ns();
  if (!batched) {
    for (mem::FrameRef& frame : frames) {
      (void)exec.post(std::move(frame));
      (void)exec.run_once();  // one message in, one pump, one dispatch
    }
  } else {
    std::size_t posted = 0;
    while (posted < frames.size()) {
      const std::size_t want =
          std::min<std::size_t>(burst, frames.size() - posted);
      posted += exec.post_batch(
          std::span<mem::FrameRef>(frames).subspan(posted, want));
      while (exec.run_once()) {
      }
    }
  }
  while (exec.run_once()) {
  }
  const double elapsed_s = static_cast<double>(now_ns() - t0) / 1e9;
  return static_cast<double>(sink_raw->count()) / elapsed_s;
}

/// Two-node TCP frame rate (frames per second, one-way flood).
double tcp_frame_rate(bool batched, std::uint64_t total, unsigned senders) {
  core::ExecutiveConfig cfg_a{.node_id = 1, .name = "a"};
  core::ExecutiveConfig cfg_b{.node_id = 2, .name = "b"};
  cfg_b.dispatch_batch = batched ? 64 : 1;
  cfg_b.inbound_drain = batched ? 256 : 1;
  // Capacity covers the whole run so backpressure cannot drop frames.
  cfg_b.inbound_capacity = total + 1024;
  core::Executive a(cfg_a);
  core::Executive b(cfg_b);

  pt::TcpTransportConfig tcfg;
  tcfg.coalesce_bytes = batched ? 4096 : 0;
  auto ta = std::make_unique<pt::TcpPeerTransport>(tcfg);
  auto tb = std::make_unique<pt::TcpPeerTransport>(tcfg);
  pt::TcpPeerTransport* pt_a = ta.get();
  pt::TcpPeerTransport* pt_b = tb.get();
  (void)a.install(std::move(ta), "pt_tcp");
  (void)b.install(std::move(tb), "pt_tcp");
  (void)a.set_route(2, pt_a->tid());
  (void)b.set_route(1, pt_b->tid());
  (void)a.enable(pt_a->tid());
  (void)b.enable(pt_b->tid());
  pt_a->add_peer(2, "127.0.0.1", pt_b->listen_port());
  pt_b->add_peer(1, "127.0.0.1", pt_a->listen_port());

  auto sink = std::make_unique<CountSink>();
  CountSink* sink_raw = sink.get();
  (void)b.install(std::move(sink), "sink");
  const auto proxy =
      a.register_remote(2, b.tid_of("sink").value(), "sink").value();
  (void)a.enable_all();
  (void)b.enable_all();
  b.start();  // node a only sends; no dispatch loop needed there

  const std::uint64_t quota = total / senders;
  const std::uint64_t actual_total = quota * senders;
  const std::uint64_t t0 = now_ns();
  std::vector<std::thread> threads;
  for (unsigned s = 0; s < senders; ++s) {
    threads.emplace_back([&a, proxy, quota] {
      std::uint64_t sent = 0;
      while (sent < quota) {
        auto frame = make_ping(a, proxy);
        if (frame.is_ok() &&
            a.frame_send(std::move(frame).value()).is_ok()) {
          ++sent;
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  const std::uint64_t delivered =
      await_count(*sink_raw, actual_total, std::chrono::seconds(60));
  const double elapsed_s = static_cast<double>(now_ns() - t0) / 1e9;
  b.stop();
  if (delivered < actual_total) {
    std::fprintf(stderr, "warning: tcp run delivered %llu of %llu frames\n",
                 static_cast<unsigned long long>(delivered),
                 static_cast<unsigned long long>(actual_total));
  }
  return static_cast<double>(delivered) / elapsed_s;
}

/// Best-of-N wrapper: reruns one arm and keeps the fastest rate. The
/// closed loop is deterministic in work done, so the max filters out OS
/// jitter (timer interrupts, page faults) instead of averaging it in.
template <typename Fn>
double best_of(unsigned reps, Fn&& measure) {
  double best = 0;
  for (unsigned r = 0; r < reps; ++r) {
    best = std::max(best, measure());
  }
  return best;
}

int run(int argc, const char* const* argv) {
  CliParser cli;
  cli.flag("calls", "local messages posted in total", std::int64_t{200000});
  cli.flag("tcp-frames", "frames flooded across TCP in total",
           std::int64_t{30000});
  cli.flag("burst", "frames per post_batch call", std::int64_t{32});
  cli.flag("reps", "repetitions per local arm (best-of)", std::int64_t{5});
  if (Status st = cli.parse(argc, argv); !st.is_ok()) {
    std::fprintf(stderr, "%s\n%s", st.to_string().c_str(),
                 cli.usage("batch_ablation").c_str());
    return 1;
  }
  const auto calls = static_cast<std::uint64_t>(cli.get_int("calls"));
  const auto tcp_frames =
      static_cast<std::uint64_t>(cli.get_int("tcp-frames"));
  const auto burst = static_cast<std::size_t>(
      std::max<std::int64_t>(cli.get_int("burst"), 1));
  const auto reps = static_cast<unsigned>(
      std::max<std::int64_t>(cli.get_int("reps"), 1));

  std::printf("=== Hot-path batching ablation ===\n\n");
  std::printf("-- local post -> dispatch (closed loop, burst %zu) --\n",
              burst);
  const double local_off =
      best_of(reps, [&] { return local_throughput(false, calls, burst); });
  const double local_on =
      best_of(reps, [&] { return local_throughput(true, calls, burst); });
  const double local_speedup = local_off > 0 ? local_on / local_off : 0;
  std::printf("%-34s %14.0f msg/s\n", "unbatched (dispatch_batch=1)",
              local_off);
  std::printf("%-34s %14.0f msg/s\n", "batched (drain+post_batch)",
              local_on);
  std::printf("%-34s %14.2fx\n", "speedup", local_speedup);

  std::printf("\n-- 2-node TCP flood (2 senders, %zu B payload) --\n",
              kPayloadBytes);
  const double tcp_off = tcp_frame_rate(false, tcp_frames, 2);
  const double tcp_on = tcp_frame_rate(true, tcp_frames, 2);
  const double tcp_speedup = tcp_off > 0 ? tcp_on / tcp_off : 0;
  std::printf("%-34s %14.0f frames/s\n", "uncoalesced (coalesce_bytes=0)",
              tcp_off);
  std::printf("%-34s %14.0f frames/s\n", "coalesced (write combiner)",
              tcp_on);
  std::printf("%-34s %14.2fx\n", "speedup", tcp_speedup);

  std::printf("\nshape check: batched local >= 2x unbatched -> %s\n",
              local_speedup >= 2.0 ? "PASS" : "CHECK");

  if (std::FILE* f = std::fopen("BENCH_batch.json", "w")) {
    std::fprintf(f,
                 "{\n"
                 "  \"local\": {\n"
                 "    \"unbatched_msgs_per_sec\": %.0f,\n"
                 "    \"batched_msgs_per_sec\": %.0f,\n"
                 "    \"speedup\": %.3f,\n"
                 "    \"burst\": %zu,\n"
                 "    \"calls\": %llu\n"
                 "  },\n"
                 "  \"tcp\": {\n"
                 "    \"uncoalesced_frames_per_sec\": %.0f,\n"
                 "    \"coalesced_frames_per_sec\": %.0f,\n"
                 "    \"speedup\": %.3f,\n"
                 "    \"frames\": %llu,\n"
                 "    \"payload_bytes\": %zu\n"
                 "  }\n"
                 "}\n",
                 local_off, local_on, local_speedup, burst,
                 static_cast<unsigned long long>(calls), tcp_off, tcp_on,
                 tcp_speedup, static_cast<unsigned long long>(tcp_frames),
                 kPayloadBytes);
    std::fclose(f);
    std::printf("wrote BENCH_batch.json\n");
  }
  return 0;
}

}  // namespace
}  // namespace xdaq::bench

int main(int argc, char** argv) { return xdaq::bench::run(argc, argv); }
