// table1_whitebox.cpp - reproduces Table 1 of the paper.
//
// "For pinpointing the overhead in the XDAQ framework, we instrumented
// our code with time probes. ... The values are then again averaged over
// the 100,000 calls. ... Table 1 shows the results for receiving an event
// and activating the associated code on the receiver side in usec. All
// given values are the medians of 100,000 samples."
//
// Paper's rows (medians, Pentium II 400 MHz):
//   PT GM processing                      2.92
//   Demultiplexing to functor             0.22
//   Upcall of functor                     0.47
//   Application (incl. frameSend)         3.60
//   Release frame, call postprocessing    2.49
//   Sum of application overhead           9.53
//   frameAlloc (cross check)              2.18
//   frameFree  (cross check)              1.78
#include <cstdio>

#include "bench_common.hpp"
#include "mem/pool.hpp"
#include "pt/cluster.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"

namespace xdaq::bench {
namespace {

double median_us(Sampler& s) { return s.median() / 1000.0; }

struct AllocCost {
  double alloc_us = 0;
  double free_us = 0;
};

/// frameAlloc/frameFree cross-check measurement on a bare pool.
AllocCost measure_pool(mem::Pool& pool, std::uint64_t calls,
                       std::size_t bytes, double ticks_per_ns) {
  TimeProbe alloc_probe(2 * calls);
  TimeProbe free_probe(2 * calls);
  for (std::uint64_t i = 0; i < calls; ++i) {
    alloc_probe.stamp();
    auto frame = pool.allocate(bytes);
    alloc_probe.stamp();
    if (!frame.is_ok()) {
      break;
    }
    free_probe.stamp();
    frame.value().reset();
    free_probe.stamp();
  }
  (void)ticks_per_ns;
  Sampler alloc_s;
  alloc_s.add_all(alloc_probe.deltas_ns());
  Sampler free_s;
  free_s.add_all(free_probe.deltas_ns());
  return AllocCost{median_us(alloc_s), median_us(free_s)};
}

int run(int argc, const char* const* argv) {
  CliParser cli;
  cli.flag("calls", "round trips to sample", std::int64_t{100000})
      .flag("payload", "ping payload bytes", std::int64_t{64})
      .flag("pool", "allocator: table|simple", std::string("table"));
  if (Status st = cli.parse(argc, argv); !st.is_ok()) {
    std::fprintf(stderr, "%s\n%s", st.to_string().c_str(),
                 cli.usage("table1_whitebox").c_str());
    return 1;
  }
  const auto calls = static_cast<std::uint64_t>(cli.get_int("calls"));
  const auto payload = static_cast<std::size_t>(cli.get_int("payload"));
  const auto pool_kind = cli.get_string("pool") == "simple"
                             ? core::ExecutiveConfig::PoolKind::Simple
                             : core::ExecutiveConfig::PoolKind::Table;

  // --- instrumented ping-pong -------------------------------------------
  pt::ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.exec.pool_kind = pool_kind;
  cfg.exec.instrument = true;
  cfg.exec.probe_capacity = calls + 64;
  pt::Cluster cluster(cfg);

  auto echo = std::make_unique<EchoDevice>();
  EchoDevice* echo_raw = echo.get();
  echo_raw->enable_recording(calls + 64);
  (void)cluster.install(1, std::move(echo), "echo");
  auto pinger = std::make_unique<PingerDevice>();
  PingerDevice* pinger_raw = pinger.get();
  (void)cluster.install(0, std::move(pinger), "pinger");
  const auto proxy = cluster.connect(0, 1, "echo").value();
  (void)cluster.enable_all();
  cluster.start_all();

  pinger_raw->configure_run(proxy, payload, calls);
  (void)pinger_raw->begin();
  if (!pinger_raw->wait_done(std::chrono::seconds(
          60 + static_cast<long>(calls / 2000)))) {
    std::fprintf(stderr, "WARNING: timed out at %llu/%llu calls\n",
                 static_cast<unsigned long long>(pinger_raw->completed()),
                 static_cast<unsigned long long>(calls));
  }
  cluster.stop_all();

  const double tpn = calibrate_ticks_per_ns();
  const auto& records = cluster.node(1).probe_log().records();
  const auto& entries = echo_raw->entry_ticks();
  const auto& exits = echo_raw->exit_ticks();

  Sampler pt_proc;
  Sampler scheduling;
  Sampler demux;
  Sampler upcall;
  Sampler app;
  Sampler release;
  const std::size_t n =
      std::min(records.size(), std::min(entries.size(), exits.size()));
  for (std::size_t i = 0; i < n; ++i) {
    const core::DispatchProbe& p = records[i];
    if (p.t_wire == 0 || p.t_upcall == 0) {
      continue;  // not a wire-received application message
    }
    pt_proc.add(static_cast<double>(p.t_posted - p.t_wire) / tpn);
    scheduling.add(static_cast<double>(p.t_demux - p.t_posted) / tpn);
    demux.add(static_cast<double>(p.t_upcall - p.t_demux) / tpn);
    if (entries[i] >= p.t_upcall) {
      upcall.add(static_cast<double>(entries[i] - p.t_upcall) / tpn);
    }
    app.add(static_cast<double>(exits[i] - entries[i]) / tpn);
    release.add(static_cast<double>(p.t_released - p.t_app_done) / tpn);
  }

  std::printf("=== Table 1: whitebox time probes on the receiver ===\n");
  std::printf("calls=%llu payload=%zuB pool=%s samples=%zu "
              "(medians in usec)\n\n",
              static_cast<unsigned long long>(calls), payload,
              cli.get_string("pool").c_str(), pt_proc.count());
  std::printf("%-42s %10s %10s\n", "activity", "paper", "measured");
  std::printf("%-42s %10.2f %10.2f\n", "PT GM processing", 2.92,
              median_us(pt_proc));
  std::printf("%-42s %10s %10.2f\n",
              "Scheduling (inbound queue, not in paper)", "-",
              median_us(scheduling));
  std::printf("%-42s %10.2f %10.2f\n", "Demultiplexing to functor", 0.22,
              median_us(demux));
  std::printf("%-42s %10.2f %10.2f\n", "Upcall of functor", 0.47,
              median_us(upcall));
  std::printf("%-42s %10.2f %10.2f\n", "Application (incl. frameSend)",
              3.60, median_us(app));
  std::printf("%-42s %10.2f %10.2f\n", "Release frame, postprocessing",
              2.49, median_us(release));
  const double sum = median_us(pt_proc) + median_us(scheduling) +
                     median_us(demux) + median_us(upcall) + median_us(app) +
                     median_us(release);
  std::printf("%-42s %10.2f %10.2f\n", "Sum of application overhead", 9.53,
              sum);

  // --- frameAlloc / frameFree cross check ---------------------------------
  const std::size_t frame_bytes =
      i2o::frame_bytes_for_payload(payload, true);
  mem::TablePool table_pool;
  mem::SimplePool simple_pool;
  const AllocCost table_cost =
      measure_pool(table_pool, calls, frame_bytes, tpn);
  const AllocCost simple_cost =
      measure_pool(simple_pool, calls, frame_bytes, tpn);
  std::printf("\ncross check (paper: frameAlloc 2.18, frameFree 1.78; "
              "original = best-fit search scheme):\n");
  std::printf("%-42s %10.2f %10.2f\n", "frameAlloc (original/simple pool)",
              2.18, simple_cost.alloc_us);
  std::printf("%-42s %10.2f %10.2f\n", "frameFree  (original/simple pool)",
              1.78, simple_cost.free_us);
  std::printf("%-42s %10s %10.2f\n", "frameAlloc (optimized/table pool)",
              "-", table_cost.alloc_us);
  std::printf("%-42s %10s %10.2f\n", "frameFree  (optimized/table pool)",
              "-", table_cost.free_us);
  std::printf("\nshape check: demux+upcall small relative to PT "
              "processing and release -> %s\n",
              (median_us(demux) + median_us(upcall) <
               median_us(pt_proc) + median_us(release))
                  ? "PASS"
                  : "CHECK");
  return 0;
}

}  // namespace
}  // namespace xdaq::bench

int main(int argc, char** argv) { return xdaq::bench::run(argc, argv); }
