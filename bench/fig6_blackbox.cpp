// fig6_blackbox.cpp - reproduces Figure 6 of the paper.
//
// "We carried out this round-trip test with increasing payload sizes. To
// obtain the combined transfer and upcall latency we divided the
// measurement values by two. Then we compared the latencies to the
// round-trip times that we obtained from ... the Myrinet/GM ...
// system."
//
// Three series, exactly as in the figure:
//   1. XDAQ over (simulated) GM - one-way latency vs payload,
//   2. raw GM                   - one-way latency vs payload,
//   3. their difference         - the XDAQ framework overhead, which the
//      paper finds constant (~8.9 us on a Pentium II 400; the fitted line
//      printed in the figure is y = -7e-05 x + 9.105).
//
// The simulated fabric's latency model is calibrated to the paper's GM
// curve (intercept ~13 us, slope ~21 ns/byte); the measured *overhead*
// series is pure framework cost on this machine and independent of the
// model (it cancels in the subtraction).
#include <cstdio>
#include <thread>

#include "bench_common.hpp"
#include "gmsim/gmsim.hpp"
#include "pt/cluster.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"

namespace xdaq::bench {
namespace {

/// Raw GM ping-pong: the baseline test program from the paper, on the
/// same fabric API the XDAQ GM peer transport uses.
double raw_gm_oneway_ns(const gmsim::FabricConfig& cfg,
                        std::size_t payload_bytes, std::uint64_t calls) {
  gmsim::Fabric fabric(cfg);
  auto a = fabric.open_port(1).value();
  auto b = fabric.open_port(2).value();

  std::thread echo([&b, calls] {
    std::vector<std::byte> rx(300 * 1024);
    for (std::uint64_t i = 0; i < calls; ++i) {
      b->provide_receive_buffer(rx);
      auto ev = b->receive(std::chrono::seconds(30));
      if (!ev.has_value()) {
        return;
      }
      while (!b->send(ev->src, ev->buffer.subspan(0, ev->length)).is_ok()) {
      }
    }
  });

  const std::vector<std::byte> payload(payload_bytes, std::byte{0x5A});
  std::vector<std::byte> rx(300 * 1024);
  Sampler rtt(calls);
  for (std::uint64_t i = 0; i < calls; ++i) {
    a->provide_receive_buffer(rx);
    const std::uint64_t t0 = now_ns();
    while (!a->send(2, payload).is_ok()) {
    }
    auto ev = a->receive(std::chrono::seconds(30));
    if (!ev.has_value()) {
      break;
    }
    rtt.add(static_cast<double>(now_ns() - t0));
  }
  echo.join();
  // Medians: robust against scheduler preemptions on a shared machine
  // (the paper averaged on a dedicated testbed where mean ~= median).
  return rtt.median() / 2.0;
}

struct XdaqResult {
  double oneway_ns = 0;
  double stddev_ns = 0;
};

XdaqResult xdaq_oneway_ns(const gmsim::FabricConfig& cfg,
                          core::TransportDevice::Mode mode,
                          core::ExecutiveConfig::PoolKind pool,
                          std::size_t payload_bytes, std::uint64_t calls) {
  pt::ClusterConfig cluster_cfg;
  cluster_cfg.nodes = 2;
  cluster_cfg.fabric = cfg;
  cluster_cfg.peer.mode = mode;
  cluster_cfg.exec.pool_kind = pool;
  pt::Cluster cluster(cluster_cfg);

  auto echo = std::make_unique<EchoDevice>();
  (void)cluster.install(1, std::move(echo), "echo");
  auto pinger = std::make_unique<PingerDevice>();
  PingerDevice* pinger_raw = pinger.get();
  (void)cluster.install(0, std::move(pinger), "pinger");
  const auto proxy = cluster.connect(0, 1, "echo").value();
  (void)cluster.enable_all();
  cluster.start_all();

  pinger_raw->configure_run(proxy, payload_bytes, calls);
  (void)pinger_raw->begin();
  const auto timeout = std::chrono::seconds(
      30 + static_cast<long>(calls / 2000));
  if (!pinger_raw->wait_done(timeout)) {
    std::fprintf(stderr, "WARNING: pinger timed out at %llu/%llu calls\n",
                 static_cast<unsigned long long>(pinger_raw->completed()),
                 static_cast<unsigned long long>(calls));
  }
  cluster.stop_all();

  Sampler s;
  s.add_all(pinger_raw->rtts_ns());
  return XdaqResult{s.median() / 2.0, s.stddev() / 2.0};
}

int run(int argc, const char* const* argv) {
  CliParser cli;
  cli.flag("calls", "round trips per payload point", std::int64_t{10000})
      .flag("wire-ns", "fixed wire latency of the simulated fabric (ns)",
            std::int64_t{12600})
      .flag("ns-per-byte", "serialization cost of the simulated fabric",
            std::string("21.4"))
      .flag("mode", "PT mode: polling|task", std::string("polling"))
      .flag("pool", "allocator: table|simple", std::string("table"));
  if (Status st = cli.parse(argc, argv); !st.is_ok()) {
    std::fprintf(stderr, "%s\n%s", st.to_string().c_str(),
                 cli.usage("fig6_blackbox").c_str());
    return 1;
  }
  const auto calls = static_cast<std::uint64_t>(cli.get_int("calls"));
  gmsim::FabricConfig fabric;
  fabric.wire_latency_ns =
      static_cast<std::uint64_t>(cli.get_int("wire-ns"));
  fabric.ns_per_byte = std::strtod(cli.get_string("ns-per-byte").c_str(),
                                   nullptr);
  const auto mode = cli.get_string("mode") == "task"
                        ? core::TransportDevice::Mode::Task
                        : core::TransportDevice::Mode::Polling;
  const auto pool = cli.get_string("pool") == "simple"
                        ? core::ExecutiveConfig::PoolKind::Simple
                        : core::ExecutiveConfig::PoolKind::Table;

  std::printf("=== Figure 6: blackbox ping-pong one-way latency ===\n");
  std::printf("calls/point=%llu  PT mode=%s  pool=%s  fabric model: "
              "%llu ns + %.1f ns/B\n\n",
              static_cast<unsigned long long>(calls),
              cli.get_string("mode").c_str(), cli.get_string("pool").c_str(),
              static_cast<unsigned long long>(fabric.wire_latency_ns),
              fabric.ns_per_byte);
  std::printf("%8s %12s %12s %14s\n", "payload", "GM (us)", "XDAQ (us)",
              "overhead (us)");

  const std::size_t payloads[] = {1,    256,  512,  1024, 1536,
                                  2048, 2560, 3072, 3584, 4096};
  std::vector<double> xs;
  std::vector<double> gm_ys;
  std::vector<double> xdaq_ys;
  std::vector<double> ov_ys;
  for (const std::size_t payload : payloads) {
    const double gm = raw_gm_oneway_ns(fabric, payload, calls);
    const XdaqResult xd = xdaq_oneway_ns(fabric, mode, pool, payload, calls);
    const double overhead = xd.oneway_ns - gm;
    xs.push_back(static_cast<double>(payload));
    gm_ys.push_back(gm / 1000.0);
    xdaq_ys.push_back(xd.oneway_ns / 1000.0);
    ov_ys.push_back(overhead / 1000.0);
    std::printf("%8zu %12.2f %12.2f %14.2f\n", payload, gm / 1000.0,
                xd.oneway_ns / 1000.0, overhead / 1000.0);
  }

  const auto gm_fit = LinearFit::fit(xs, gm_ys);
  const auto xdaq_fit = LinearFit::fit(xs, xdaq_ys);
  const auto ov_fit = LinearFit::fit(xs, ov_ys);
  std::printf("\nlinear fits (us vs bytes):\n");
  std::printf("  GM:       y = %.6f x + %.3f   (r2=%.4f)\n", gm_fit.slope,
              gm_fit.intercept, gm_fit.r2);
  std::printf("  XDAQ:     y = %.6f x + %.3f   (r2=%.4f)\n", xdaq_fit.slope,
              xdaq_fit.intercept, xdaq_fit.r2);
  std::printf("  overhead: y = %.6f x + %.3f   (r2=%.4f)\n", ov_fit.slope,
              ov_fit.intercept, ov_fit.r2);
  std::printf("\npaper (Pentium II 400 MHz, Myrinet M2M-PCI64):\n");
  std::printf("  overhead fit: y = -7e-05 x + 9.105; mean 8.9 us "
              "(s = 0.6), payload independent\n");
  std::printf("\nshape checks: overhead |slope| near zero -> %s; "
              "both latency series linear in payload -> %s\n",
              std::abs(ov_fit.slope) < 0.002 ? "PASS" : "CHECK",
              (gm_fit.r2 > 0.98 && xdaq_fit.r2 > 0.98) ? "PASS" : "CHECK");
  return 0;
}

}  // namespace
}  // namespace xdaq::bench

int main(int argc, char** argv) { return xdaq::bench::run(argc, argv); }
