// fault_recovery.cpp - measures the fault-tolerance layer end to end:
//
//   1. Reconnect latency: a two-node TCP pair where node B's transport is
//      killed and restarted on a new ephemeral port each trial (a process
//      restart, as far as A can tell). Per trial we time how long A takes
//      to declare the peer Down (heartbeat detection) and, after the
//      restart, how long until the maintenance thread's capped-backoff
//      redial reports it Up again and a call succeeds.
//   2. Frame loss under seeded fault injection: the FaultInjectingTransport
//      decorator drops/delays/duplicates requests on A's send path while a
//      closed loop of echo calls runs. We report how many calls survived,
//      how many timed out, and the injector's own ledger - the loss a
//      deployment would see from a flaky link, and proof the pools drain.
//
// Results go to stdout and BENCH_fault.json.
#include <chrono>
#include <cstdio>
#include <functional>
#include <thread>

#include "bench_common.hpp"
#include "core/requester.hpp"
#include "pt/fault_pt.hpp"
#include "pt/tcp_pt.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"

namespace xdaq::bench {
namespace {

using core::PeerState;
using core::Requester;
using pt::FaultInjectingTransport;
using pt::FaultPlan;
using pt::TcpPeerTransport;
using pt::TcpTransportConfig;

double to_ms(std::chrono::nanoseconds d) {
  return std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
             d)
      .count();
}

/// Polls `pred` until true; returns elapsed ms, or -1 on budget exhaustion.
double timed_until(const std::function<bool()>& pred,
                   std::chrono::nanoseconds budget) {
  const auto start = std::chrono::steady_clock::now();
  const auto deadline = start + budget;
  while (!pred()) {
    if (std::chrono::steady_clock::now() >= deadline) {
      return -1.0;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  return to_ms(std::chrono::steady_clock::now() - start);
}

/// Two executives joined by TCP PTs with an echo responder on B and a
/// requester on A. Shared by both bench sections.
struct TcpBenchPair {
  core::Executive a{core::ExecutiveConfig{.node_id = 1, .name = "bench_a"}};
  core::Executive b{core::ExecutiveConfig{.node_id = 2, .name = "bench_b"}};
  TcpPeerTransport* pt_a = nullptr;
  TcpPeerTransport* pt_b = nullptr;
  Requester* req = nullptr;
  i2o::Tid proxy = i2o::kNullTid;

  /// `decorate` may wrap A's transport; it receives the raw inner PT and
  /// returns the tid that A's route to node 2 should point at.
  explicit TcpBenchPair(
      const core::TransportConfig& tuning,
      const std::function<i2o::Tid(TcpPeerTransport&)>& decorate = {}) {
    auto ta = std::make_unique<TcpPeerTransport>(TcpTransportConfig{}, tuning);
    auto tb = std::make_unique<TcpPeerTransport>(TcpTransportConfig{}, tuning);
    pt_a = ta.get();
    pt_b = tb.get();
    (void)a.install(std::move(ta), "pt_tcp");
    (void)b.install(std::move(tb), "pt_tcp");
    const i2o::Tid route_tid = decorate ? decorate(*pt_a) : pt_a->tid();
    (void)a.set_route(2, route_tid);
    (void)b.set_route(1, pt_b->tid());
    (void)b.install(std::make_unique<EchoDevice>(), "echo");
    auto r = std::make_unique<Requester>();
    req = r.get();
    (void)a.install(std::move(r), "req");
    proxy = a.register_remote(2, b.tid_of("echo").value()).value();
    (void)a.enable_all();
    (void)b.enable_all();
    pt_a->add_peer(2, "127.0.0.1", pt_b->listen_port());
    pt_b->add_peer(1, "127.0.0.1", pt_a->listen_port());
    a.start();
    b.start();
  }

  ~TcpBenchPair() {
    a.stop();
    b.stop();
  }

  [[nodiscard]] Status call(const core::CallOptions& options) {
    auto reply =
        req->call_private(proxy, i2o::OrgId::kBench, kXfnPing, {}, options);
    if (!reply.is_ok()) {
      return reply.status();
    }
    return reply.value().failed() ? Status{Errc::Unavailable, "FAIL reply"}
                                  : Status::ok();
  }
};

struct ReconnectResult {
  Sampler down_ms;       ///< kill -> peer declared Down
  Sampler reconnect_ms;  ///< restart -> peer reported Up again
  int trials_ok = 0;
  std::uint64_t reconnects = 0;
  std::uint64_t heartbeats = 0;
};

ReconnectResult run_reconnect(int trials, std::chrono::milliseconds hb) {
  core::TransportConfig tuning;
  tuning.heartbeat_interval = hb;
  tuning.missed_heartbeat_limit = 2;
  tuning.backoff_base = std::chrono::milliseconds(5);
  tuning.backoff_cap = std::chrono::milliseconds(40);
  TcpBenchPair pair(tuning);

  ReconnectResult result;
  const auto budget = std::chrono::seconds(10);
  const core::CallOptions retrying{.timeout = std::chrono::seconds(5),
                                   .retries = 5,
                                   .retry_on_unavailable = true,
                                   .retry_delay = hb / 4};
  if (!pair.call(retrying).is_ok()) {
    std::fprintf(stderr, "fault_recovery: initial call failed\n");
    return result;
  }
  for (int trial = 0; trial < trials; ++trial) {
    pair.pt_b->transport_down();
    const double down = timed_until(
        [&] { return pair.pt_a->peer_state(2) == PeerState::Down; }, budget);
    if (pair.pt_b->transport_up().is_ok()) {
      pair.pt_a->add_peer(2, "127.0.0.1", pair.pt_b->listen_port());
    }
    const double up = timed_until(
        [&] { return pair.pt_a->peer_state(2) == PeerState::Up; }, budget);
    const bool call_ok = pair.call(retrying).is_ok();
    if (down >= 0 && up >= 0 && call_ok) {
      result.down_ms.add(down);
      result.reconnect_ms.add(up);
      ++result.trials_ok;
    }
    std::printf("  trial %2d: down %7.1f ms  reconnect %7.1f ms  call %s\n",
                trial + 1, down, up, call_ok ? "ok" : "FAILED");
  }
  const auto fs = pair.pt_a->fault_stats();
  result.reconnects = fs.reconnects;
  result.heartbeats = fs.heartbeats_sent;
  return result;
}

struct LossResult {
  int calls = 0;
  int ok = 0;
  int failed = 0;
  FaultInjectingTransport::InjectStats injected;
  bool pools_drained = false;
  double elapsed_ms = 0;
};

LossResult run_frame_loss(int calls, std::uint64_t seed) {
  core::TransportConfig tuning;
  tuning.heartbeat_interval = std::chrono::seconds(10);  // out of the way
  FaultPlan plan;
  plan.seed = seed;
  plan.drop_rate = 0.10;
  plan.delay_rate = 0.10;
  plan.duplicate_rate = 0.10;
  plan.delay = std::chrono::milliseconds(2);
  FaultInjectingTransport* fault_raw = nullptr;
  TcpBenchPair pair(tuning, [&](TcpPeerTransport& inner) {
    auto fault = std::make_unique<FaultInjectingTransport>(inner, plan);
    fault_raw = fault.get();
    (void)pair.a.install(std::move(fault), "pt_fault");
    return fault_raw->tid();
  });

  LossResult result;
  result.calls = calls;
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < calls; ++i) {
    const core::CallOptions opts{.timeout = std::chrono::milliseconds(200)};
    if (pair.call(opts).is_ok()) {
      ++result.ok;
    } else {
      ++result.failed;
    }
  }
  result.elapsed_ms = to_ms(std::chrono::steady_clock::now() - start);
  result.injected = fault_raw->inject_stats();
  result.pools_drained =
      timed_until(
          [&] {
            return pair.a.pool().stats().outstanding == 0 &&
                   pair.b.pool().stats().outstanding == 0;
          },
          std::chrono::seconds(5)) >= 0;
  return result;
}

int run(int argc, char** argv) {
  CliParser cli;
  cli.flag("trials", "kill/restart reconnect trials", std::int64_t{5});
  cli.flag("calls", "echo calls under fault injection", std::int64_t{200});
  cli.flag("hb-ms", "heartbeat interval (ms)", std::int64_t{50});
  cli.flag("seed", "fault injection seed", std::int64_t{7});
  if (Status st = cli.parse(argc, argv); !st.is_ok()) {
    std::fprintf(stderr, "%s\n%s", st.to_string().c_str(),
                 cli.usage(argv[0]).c_str());
    return 1;
  }
  const int trials = static_cast<int>(cli.get_int("trials"));
  const int calls = static_cast<int>(cli.get_int("calls"));
  const auto hb = std::chrono::milliseconds(cli.get_int("hb-ms"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  std::printf("=== Fault recovery bench ===\n\n");
  std::printf("-- reconnect latency (%d trials, heartbeat %lld ms) --\n",
              trials, static_cast<long long>(hb.count()));
  const ReconnectResult rec = run_reconnect(trials, hb);
  const bool rec_ok = rec.trials_ok == trials && trials > 0;
  std::printf("%-34s %10d / %d\n", "trials recovered", rec.trials_ok, trials);
  std::printf("%-34s %10.1f ms (median), %.1f ms (max)\n",
              "kill -> Down detected", rec.down_ms.median(),
              rec.down_ms.max());
  std::printf("%-34s %10.1f ms (median), %.1f ms (max)\n",
              "restart -> Up again", rec.reconnect_ms.median(),
              rec.reconnect_ms.max());
  std::printf("%-34s %10llu\n", "successful redials",
              static_cast<unsigned long long>(rec.reconnects));

  std::printf("\n-- frame loss under injection (%d calls, seed %llu) --\n",
              calls, static_cast<unsigned long long>(seed));
  const LossResult loss = run_frame_loss(calls, seed);
  const auto& inj = loss.injected;
  std::printf("%-34s %10d ok, %d failed\n", "calls", loss.ok, loss.failed);
  std::printf("%-34s %10llu dropped, %llu delayed, %llu duplicated\n",
              "injected", static_cast<unsigned long long>(inj.dropped),
              static_cast<unsigned long long>(inj.delayed),
              static_cast<unsigned long long>(inj.duplicated));
  std::printf("%-34s %10s\n", "pools drained after soak",
              loss.pools_drained ? "yes" : "NO (leak!)");
  std::printf("\nshape check: all trials recovered, pools drained -> %s\n",
              rec_ok && loss.pools_drained ? "PASS" : "CHECK");

  if (std::FILE* f = std::fopen("BENCH_fault.json", "w")) {
    std::fprintf(
        f,
        "{\n"
        "  \"reconnect\": {\n"
        "    \"trials\": %d,\n"
        "    \"trials_recovered\": %d,\n"
        "    \"heartbeat_ms\": %lld,\n"
        "    \"down_detect_ms\": {\"median\": %.2f, \"p90\": %.2f, "
        "\"max\": %.2f},\n"
        "    \"reconnect_ms\": {\"median\": %.2f, \"p90\": %.2f, "
        "\"max\": %.2f},\n"
        "    \"redials\": %llu,\n"
        "    \"heartbeats_sent\": %llu\n"
        "  },\n"
        "  \"frame_loss\": {\n"
        "    \"calls\": %d,\n"
        "    \"ok\": %d,\n"
        "    \"failed\": %d,\n"
        "    \"loss_rate\": %.4f,\n"
        "    \"injected_dropped\": %llu,\n"
        "    \"injected_delayed\": %llu,\n"
        "    \"injected_duplicated\": %llu,\n"
        "    \"seed\": %llu,\n"
        "    \"elapsed_ms\": %.1f,\n"
        "    \"pools_drained\": %s\n"
        "  }\n"
        "}\n",
        trials, rec.trials_ok, static_cast<long long>(hb.count()),
        rec.down_ms.median(), rec.down_ms.percentile(90.0), rec.down_ms.max(),
        rec.reconnect_ms.median(), rec.reconnect_ms.percentile(90.0),
        rec.reconnect_ms.max(),
        static_cast<unsigned long long>(rec.reconnects),
        static_cast<unsigned long long>(rec.heartbeats), loss.calls, loss.ok,
        loss.failed,
        loss.calls > 0 ? static_cast<double>(loss.failed) / loss.calls : 0.0,
        static_cast<unsigned long long>(inj.dropped),
        static_cast<unsigned long long>(inj.delayed),
        static_cast<unsigned long long>(inj.duplicated),
        static_cast<unsigned long long>(seed), loss.elapsed_ms,
        loss.pools_drained ? "true" : "false");
    std::fclose(f);
    std::printf("wrote BENCH_fault.json\n");
  }
  return 0;
}

}  // namespace
}  // namespace xdaq::bench

int main(int argc, char** argv) { return xdaq::bench::run(argc, argv); }
