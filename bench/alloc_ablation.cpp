// alloc_ablation.cpp - reproduces the allocator optimization of section 5.
//
// "The memory allocation scheme used in the whitebox test is not
// optimised. A new allocation scheme that we tried, allocates memory for
// the buffer pool on demand. Furthermore it relies on a table based
// matching from requested memory size to pool buffer size ... In a
// preliminary black box test we were able to reduce the framework
// overhead by another 4 usec to 4.9 usec (s = 0.8) per invocation."
//
// Two sections:
//   1. per-operation alloc/free cost, original (best-fit list search) vs
//      optimized (size-class table) scheme, across request sizes;
//   2. end-to-end blackbox framework overhead with each scheme plugged
//      into the executive - the paper's 8.9 -> 4.9 us experiment.
#include <cstdio>
#include <thread>

#include "bench_common.hpp"
#include "mem/pool.hpp"
#include "pt/cluster.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"

namespace xdaq::bench {
namespace {

struct OpCost {
  double alloc_us;
  double free_us;
};

OpCost op_cost(mem::Pool& pool, std::size_t bytes, std::uint64_t calls) {
  TimeProbe alloc_probe(2 * calls);
  TimeProbe free_probe(2 * calls);
  for (std::uint64_t i = 0; i < calls; ++i) {
    alloc_probe.stamp();
    auto frame = pool.allocate(bytes);
    alloc_probe.stamp();
    if (!frame.is_ok()) {
      break;
    }
    free_probe.stamp();
    frame.value().reset();
    free_probe.stamp();
  }
  Sampler a;
  a.add_all(alloc_probe.deltas_ns());
  Sampler f;
  f.add_all(free_probe.deltas_ns());
  return OpCost{a.median() / 1000.0, f.median() / 1000.0};
}

/// End-to-end overhead: XDAQ one-way minus raw-fabric one-way (no latency
/// model, so the difference is pure framework cost).
double blackbox_overhead_us(core::ExecutiveConfig::PoolKind pool,
                            std::size_t payload, std::uint64_t calls) {
  // Raw fabric baseline.
  double raw_oneway = 0;
  {
    gmsim::Fabric fabric;
    auto a = fabric.open_port(1).value();
    auto b = fabric.open_port(2).value();
    std::thread echo([&b, calls] {
      std::vector<std::byte> rx(8192);
      for (std::uint64_t i = 0; i < calls; ++i) {
        b->provide_receive_buffer(rx);
        auto ev = b->receive(std::chrono::seconds(30));
        if (!ev.has_value()) {
          return;
        }
        while (
            !b->send(ev->src, ev->buffer.subspan(0, ev->length)).is_ok()) {
        }
      }
    });
    const std::vector<std::byte> data(payload, std::byte{1});
    std::vector<std::byte> rx(8192);
    Sampler rtt(calls);
    for (std::uint64_t i = 0; i < calls; ++i) {
      a->provide_receive_buffer(rx);
      const std::uint64_t t0 = now_ns();
      while (!a->send(2, data).is_ok()) {
      }
      auto ev = a->receive(std::chrono::seconds(30));
      if (!ev.has_value()) {
        break;
      }
      rtt.add(static_cast<double>(now_ns() - t0));
    }
    echo.join();
    raw_oneway = rtt.median() / 2.0;
  }

  // Framework run.
  pt::ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.exec.pool_kind = pool;
  pt::Cluster cluster(cfg);
  (void)cluster.install(1, std::make_unique<EchoDevice>(), "echo");
  auto pinger = std::make_unique<PingerDevice>();
  PingerDevice* pinger_raw = pinger.get();
  (void)cluster.install(0, std::move(pinger), "pinger");
  const auto proxy = cluster.connect(0, 1, "echo").value();
  (void)cluster.enable_all();
  cluster.start_all();
  pinger_raw->configure_run(proxy, payload, calls);
  (void)pinger_raw->begin();
  (void)pinger_raw->wait_done(std::chrono::seconds(60));
  cluster.stop_all();

  Sampler s;
  s.add_all(pinger_raw->rtts_ns());
  return (s.median() / 2.0 - raw_oneway) / 1000.0;
}

int run(int argc, const char* const* argv) {
  CliParser cli;
  cli.flag("calls", "operations / round trips per point",
           std::int64_t{50000});
  if (Status st = cli.parse(argc, argv); !st.is_ok()) {
    std::fprintf(stderr, "%s\n%s", st.to_string().c_str(),
                 cli.usage("alloc_ablation").c_str());
    return 1;
  }
  const auto calls = static_cast<std::uint64_t>(cli.get_int("calls"));

  std::printf("=== Allocator ablation (paper section 5) ===\n\n");
  std::printf("-- per-operation cost (medians, usec) --\n");
  std::printf("%10s %18s %18s %18s %18s\n", "size", "simple alloc",
              "simple free", "table alloc", "table free");
  for (const std::size_t size : {64u, 256u, 1024u, 4096u, 65536u}) {
    mem::SimplePool simple;
    mem::TablePool table;
    const OpCost s = op_cost(simple, size, calls);
    const OpCost t = op_cost(table, size, calls);
    std::printf("%10zu %18.3f %18.3f %18.3f %18.3f\n", size, s.alloc_us,
                s.free_us, t.alloc_us, t.free_us);
  }

  std::printf("\n-- end-to-end blackbox overhead per invocation --\n");
  const double simple_ov = blackbox_overhead_us(
      core::ExecutiveConfig::PoolKind::Simple, 64, calls);
  const double table_ov = blackbox_overhead_us(
      core::ExecutiveConfig::PoolKind::Table, 64, calls);
  std::printf("%-34s %10s %10s\n", "scheme", "paper", "measured");
  std::printf("%-34s %10.1f %10.2f\n", "original (best-fit list search)", 8.9,
              simple_ov);
  std::printf("%-34s %10.1f %10.2f\n", "optimized (size-class table)", 4.9,
              table_ov);
  std::printf("\nshape check: optimized <= original -> %s "
              "(paper saw ~4 us saved)\n",
              table_ov <= simple_ov ? "PASS" : "CHECK");
  return 0;
}

}  // namespace
}  // namespace xdaq::bench

int main(int argc, char** argv) { return xdaq::bench::run(argc, argv); }
