// conn_scaling.cpp - C1M front end: connection scaling and flat goodput
// under admission overload.
//
// The epoll-reactor rewrite exists so one node can hold tens of
// thousands of mostly idle connections (the old poll(2) backend rebuilt
// its watch set every 20 ms wait - a few thousand sockets was the
// ceiling). This bench stands up one TcpPeerTransport server and a
// client PROCESS holding --conns loopback connections against it: both
// endpoints of every connection burn an fd, so a single process could
// hold only half the advertised count under a 20k RLIMIT_NOFILE - the
// client side is forked before any thread exists and the two sides talk
// over pipes. 10k+ connections run in CI; 100k+ needs raised fd limits
// (see EXPERIMENTS.md).
//
// The QoS invariant rides along: with bounded admission configured, a
// 10x offered-load overload on the data plane must not collapse
// goodput. The run calibrates dispatch capacity C (unpaced flood),
// measures goodput at an unloaded 0.4C offered rate, then offers 4C
// (10x unloaded) and requires goodput >= 0.8x the unloaded figure -
// the shed happens at the transport edge, before the frames can drown
// the dispatcher. Exit is nonzero when the floor is missed or the
// connection count is not sustained. BENCH_conn.json embeds the server
// node's metrics snapshot next to the numbers.
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/monitor_device.hpp"
#include "i2o/frame.hpp"
#include "i2o/wire.hpp"
#include "netio/socket.hpp"
#include "pt/tcp_pt.hpp"
#include "util/cli.hpp"

namespace xdaq::bench {
namespace {

/// The deterministic payload byte at offset j (client fills, sink
/// verifies: the backend ablation requires byte-identical delivery).
constexpr std::byte payload_byte(std::size_t j) noexcept {
  return static_cast<std::byte>((j * 31 + 7) & 0xff);
}

/// Counts data-plane deliveries; never replies (goodput is measured at
/// the dispatched handler, past every queue that overload could wedge).
/// When given the expected payload size it also byte-checks every frame.
class SinkDevice final : public core::Device {
 public:
  explicit SinkDevice(std::size_t verify_payload = 0)
      : Device("ConnSink") {
    if (verify_payload > 0) {
      expected_.resize(verify_payload);
      for (std::size_t j = 0; j < verify_payload; ++j) {
        expected_[j] = payload_byte(j);
      }
    }
    bind(i2o::OrgId::kBench, kXfnPing,
         [this](const core::MessageContext& c) {
           delivered_.fetch_add(1, std::memory_order_relaxed);
           if (expected_.empty()) {
             return;
           }
           const auto body = c.frame.bytes();
           if (body.size() != i2o::kPrivateHeaderBytes + expected_.size() ||
               std::memcmp(body.data() + i2o::kPrivateHeaderBytes,
                           expected_.data(), expected_.size()) != 0) {
             corrupt_.fetch_add(1, std::memory_order_relaxed);
           }
         });
  }
  [[nodiscard]] std::uint64_t delivered() const noexcept {
    return delivered_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t corrupt() const noexcept {
    return corrupt_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> delivered_{0};
  std::atomic<std::uint64_t> corrupt_{0};
  std::vector<std::byte> expected_;
};

/// Raise the soft fd limit to the hard cap; returns the resulting cap.
std::size_t raise_fd_limit() {
  rlimit rl{};
  if (getrlimit(RLIMIT_NOFILE, &rl) != 0) {
    return 0;
  }
  if (rl.rlim_cur < rl.rlim_max) {
    rl.rlim_cur = rl.rlim_max;
    (void)setrlimit(RLIMIT_NOFILE, &rl);
    (void)getrlimit(RLIMIT_NOFILE, &rl);
  }
  return static_cast<std::size_t>(rl.rlim_cur);
}

// ---------------------------------------------------------- client child
//
// Holds the connections and offers load on command. Protocol (one line
// each way): parent sends "PORT <port> <tid>", child answers
// "READY <conns>"; parent sends "RUN <fps> <ms>" (fps 0 = unpaced
// flood), child answers "SENT <frames>"; "QUIT" ends the child.

int client_main(FILE* cmd, FILE* ack, std::size_t conns,
                std::size_t senders, std::size_t payload_bytes) {
  unsigned port = 0;
  unsigned tid = 0;
  if (std::fscanf(cmd, "PORT %u %u", &port, &tid) != 2) {
    return 1;
  }
  std::vector<netio::TcpStream> socks;
  socks.reserve(conns);
  for (std::size_t i = 0; i < conns; ++i) {
    auto s = netio::TcpStream::connect(
        "127.0.0.1", static_cast<std::uint16_t>(port));
    if (!s.is_ok()) {
      std::fprintf(stderr, "client: connect %zu failed: %s\n", i,
                   s.status().to_string().c_str());
      break;
    }
    std::array<std::byte, 6> hello{};
    i2o::put_u32(hello, 0, 0x58444151);  // "XDAQ"
    i2o::put_u16(hello, 4,
                 static_cast<std::uint16_t>(100 + (i % 60000)));
    if (!s.value().write_all(hello).is_ok()) {
      break;
    }
    socks.push_back(std::move(s).value());
    if (socks.size() % 1000 == 0) {
      // Brief yield so the server's accept drain keeps the backlog low.
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  std::fprintf(ack, "READY %zu\n", socks.size());
  std::fflush(ack);

  // One length-prefixed data frame, reused for every send.
  std::vector<std::byte> wire(4 + i2o::kPrivateHeaderBytes + payload_bytes);
  {
    i2o::FrameHeader hdr;
    hdr.function = static_cast<std::uint8_t>(i2o::Function::Private);
    hdr.organization = static_cast<std::uint16_t>(i2o::OrgId::kBench);
    hdr.xfunction = kXfnPing;
    hdr.target = static_cast<i2o::Tid>(tid);
    i2o::put_u32(wire, 0, static_cast<std::uint32_t>(wire.size() - 4));
    const std::span<std::byte> body(wire.data() + 4, wire.size() - 4);
    if (!i2o::encode_header(hdr, body).is_ok()) {
      return 1;
    }
    for (std::size_t j = 0; j < payload_bytes; ++j) {
      wire[4 + i2o::kPrivateHeaderBytes + j] = payload_byte(j);
    }
  }
  const std::size_t nsend = std::min(senders, socks.size());
  for (;;) {
    char op[8] = {0};
    if (std::fscanf(cmd, "%7s", op) != 1 || std::strcmp(op, "QUIT") == 0) {
      break;
    }
    double fps = 0;
    long ms = 0;
    if (std::strcmp(op, "RUN") != 0 ||
        std::fscanf(cmd, "%lf %ld", &fps, &ms) != 2 || nsend == 0) {
      std::fprintf(ack, "SENT 0\n");
      std::fflush(ack);
      continue;
    }
    const std::uint64_t t0 = now_ns();
    const std::uint64_t deadline =
        t0 + static_cast<std::uint64_t>(ms) * 1000000ULL;
    const double ns_per_frame = fps > 0 ? 1e9 / fps : 0.0;
    std::uint64_t sent = 0;
    std::uint64_t next = t0;
    while (now_ns() < deadline) {
      // One pacing check per burst keeps the token-bucket overhead off
      // the send path; unpaced mode floods back-to-back bursts.
      for (std::size_t k = 0; k < 16; ++k) {
        if (!socks[sent % nsend].write_all(wire).is_ok()) {
          std::fprintf(ack, "SENT %llu\n",
                       static_cast<unsigned long long>(sent));
          std::fflush(ack);
          return 1;  // server went away mid-run
        }
        ++sent;
      }
      if (ns_per_frame > 0) {
        next = t0 + static_cast<std::uint64_t>(
                        static_cast<double>(sent) * ns_per_frame);
        while (now_ns() < next && now_ns() < deadline) {
          std::this_thread::sleep_for(std::chrono::microseconds(50));
        }
      }
    }
    std::fprintf(ack, "SENT %llu\n", static_cast<unsigned long long>(sent));
    std::fflush(ack);
  }
  return 0;
}

// -------------------------------------------------------------- parent

struct RunResult {
  double offered_fps = 0;
  double goodput_fps = 0;
};

// ---------------------------------------------------- backend ablation
//
// One self-contained server+client lifecycle per backend: fork the
// client first (clean single-threaded image), stand up the transport on
// the requested wire engine, flood for the window, and collect goodput
// plus the syscalls-per-frame gauge. Byte-identical delivery is checked
// by the sink against the client's deterministic payload pattern.

struct ArmStats {
  std::size_t held = 0;
  double offered_fps = 0;
  double goodput_fps = 0;
  std::uint64_t delivered = 0;
  std::uint64_t corrupt = 0;
  bool uring = false;
  double syscalls_per_frame = 0;
  std::uint64_t io_syscalls = 0;
  std::uint64_t engine_entries = 0;
  std::uint64_t sqe_batches = 0;
  std::uint64_t multishot_rearms = 0;
  std::uint64_t registered_buffer_hits = 0;
  std::uint64_t wake_coalesced = 0;
  bool ok = false;
};

ArmStats run_arm(netio::IoEngine::Backend backend, std::size_t conns,
                 std::size_t senders, std::size_t payload, long flood_ms) {
  ArmStats out;
  int cmd_pipe[2];
  int ack_pipe[2];
  if (pipe(cmd_pipe) != 0 || pipe(ack_pipe) != 0) {
    std::perror("pipe");
    return out;
  }
  const pid_t child = fork();
  if (child < 0) {
    std::perror("fork");
    return out;
  }
  if (child == 0) {
    close(cmd_pipe[1]);
    close(ack_pipe[0]);
    FILE* cmd = fdopen(cmd_pipe[0], "r");
    FILE* ack = fdopen(ack_pipe[1], "w");
    const int rc =
        (cmd && ack) ? client_main(cmd, ack, conns, senders, payload) : 1;
    _exit(rc);
  }
  close(cmd_pipe[0]);
  close(ack_pipe[1]);
  FILE* cmd = fdopen(cmd_pipe[1], "w");
  FILE* ack = fdopen(ack_pipe[0], "r");
  if (cmd == nullptr || ack == nullptr) {
    return out;
  }

  {
    core::Executive exec(
        core::ExecutiveConfig{.node_id = 1, .name = "ablation"});
    core::TransportConfig tuning;
    tuning.heartbeat_interval = std::chrono::nanoseconds(0);
    pt::TcpTransportConfig wire_cfg;
    wire_cfg.backend = backend;
    auto t = std::make_unique<pt::TcpPeerTransport>(wire_cfg, tuning);
    pt::TcpPeerTransport* pt = t.get();
    (void)exec.install(std::move(t), "pt_tcp");
    auto sink = std::make_unique<SinkDevice>(payload);
    SinkDevice* sink_raw = sink.get();
    (void)exec.install(std::move(sink), "sink");
    if (Status st = exec.enable_all(); !st.is_ok()) {
      std::fprintf(stderr, "enable failed: %s\n", st.to_string().c_str());
      return out;
    }
    exec.start();
    out.uring = pt->uring_active();

    std::fprintf(cmd, "PORT %u %u\n", pt->listen_port(),
                 exec.tid_of("sink").value());
    std::fflush(cmd);
    unsigned long ready = 0;
    if (std::fscanf(ack, "READY %lu", &ready) != 1) {
      std::fprintf(stderr, "FAIL: client died during connect\n");
      return out;
    }
    const auto accept_deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (pt->connection_count() < ready &&
           std::chrono::steady_clock::now() < accept_deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    out.held = pt->connection_count();

    const std::uint64_t c0 = sink_raw->delivered();
    const std::uint64_t t0 = now_ns();
    std::fprintf(cmd, "RUN 0 %ld\n", flood_ms);
    std::fflush(cmd);
    unsigned long long sent = 0;
    (void)std::fscanf(ack, " SENT %llu", &sent);
    const std::uint64_t t1 = now_ns();
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    const double secs = static_cast<double>(t1 - t0) / 1e9;
    out.delivered = sink_raw->delivered() - c0;
    out.corrupt = sink_raw->corrupt();
    out.offered_fps = static_cast<double>(sent) / secs;
    out.goodput_fps = static_cast<double>(out.delivered) / secs;

    const auto io = pt->io_stats();
    out.syscalls_per_frame = io.syscalls_per_frame();
    out.io_syscalls = io.io_syscalls;
    out.engine_entries = io.engine_entries;
    out.sqe_batches = io.uring_stats.sqe_batches;
    out.multishot_rearms = io.uring_stats.multishot_rearms;
    out.registered_buffer_hits = io.uring_stats.registered_buffer_hits;
    out.wake_coalesced = io.wake_coalesced;

    std::fprintf(cmd, "QUIT\n");
    std::fflush(cmd);
    int wstatus = 0;
    (void)waitpid(child, &wstatus, 0);
    exec.stop();
  }
  out.ok = true;
  return out;
}

int run_ablation(std::size_t conns, std::size_t senders,
                 std::size_t payload, long arm_ms) {
  std::printf("=== Backend ablation: epoll vs io_uring, %zu conns, "
              "%zu senders, %zu B payload, %ld ms/arm ===\n\n",
              conns, senders, payload, arm_ms);
  const ArmStats ep =
      run_arm(netio::IoEngine::Backend::kEpoll, conns, senders, payload,
              arm_ms);
  if (!ep.ok) {
    return 1;
  }
  const ArmStats ur =
      run_arm(netio::IoEngine::Backend::kUring, conns, senders, payload,
              arm_ms);
  if (!ur.ok) {
    return 1;
  }

  std::printf("%10s %14s %14s %16s %10s\n", "backend", "offered/s",
              "goodput/s", "syscalls/frame", "corrupt");
  std::printf("%10s %14.0f %14.0f %16.3f %10llu\n", "epoll", ep.offered_fps,
              ep.goodput_fps, ep.syscalls_per_frame,
              static_cast<unsigned long long>(ep.corrupt));
  std::printf("%10s %14.0f %14.0f %16.3f %10llu\n",
              ur.uring ? "uring" : "uring(!)", ur.offered_fps,
              ur.goodput_fps, ur.syscalls_per_frame,
              static_cast<unsigned long long>(ur.corrupt));

  const double goodput_ratio =
      ep.goodput_fps > 0 ? ur.goodput_fps / ep.goodput_fps : 0;
  const double spf_ratio = ep.syscalls_per_frame > 0
                               ? ur.syscalls_per_frame / ep.syscalls_per_frame
                               : 1;
  const bool bytes_ok = ep.corrupt == 0 && ur.corrupt == 0 &&
                        ep.delivered > 0 && ur.delivered > 0;
  const bool gate = goodput_ratio >= 1.15 || spf_ratio <= 0.70;
  std::printf("\nuring/epoll goodput %.2fx, syscalls-per-frame %.2fx "
              "(gate: goodput >= 1.15x OR syscalls <= 0.70x)\n",
              goodput_ratio, spf_ratio);

  if (std::FILE* f = std::fopen("BENCH_uring.json", "w")) {
    std::fprintf(
        f,
        "{\n"
        "  \"conns\": %zu,\n"
        "  \"senders\": %zu,\n"
        "  \"payload_bytes\": %zu,\n"
        "  \"arm_ms\": %ld,\n"
        "  \"uring_engaged\": %s,\n"
        "  \"epoll\": {\"offered_fps\": %.0f, \"goodput_fps\": %.0f,\n"
        "    \"delivered\": %llu, \"corrupt\": %llu,\n"
        "    \"io_syscalls\": %llu, \"engine_entries\": %llu,\n"
        "    \"syscalls_per_frame\": %.4f, \"wake_coalesced\": %llu},\n"
        "  \"uring\": {\"offered_fps\": %.0f, \"goodput_fps\": %.0f,\n"
        "    \"delivered\": %llu, \"corrupt\": %llu,\n"
        "    \"io_syscalls\": %llu, \"engine_entries\": %llu,\n"
        "    \"syscalls_per_frame\": %.4f, \"wake_coalesced\": %llu,\n"
        "    \"sqe_batches\": %llu, \"multishot_rearms\": %llu,\n"
        "    \"registered_buffer_hits\": %llu},\n"
        "  \"goodput_ratio\": %.3f,\n"
        "  \"syscalls_per_frame_ratio\": %.3f,\n"
        "  \"byte_identical\": %s,\n"
        "  \"gate\": \"goodput_ratio >= 1.15 or spf_ratio <= 0.70\",\n"
        "  \"gate_met\": %s\n"
        "}\n",
        conns, senders, payload, arm_ms, ur.uring ? "true" : "false",
        ep.offered_fps, ep.goodput_fps,
        static_cast<unsigned long long>(ep.delivered),
        static_cast<unsigned long long>(ep.corrupt),
        static_cast<unsigned long long>(ep.io_syscalls),
        static_cast<unsigned long long>(ep.engine_entries),
        ep.syscalls_per_frame,
        static_cast<unsigned long long>(ep.wake_coalesced),
        ur.offered_fps, ur.goodput_fps,
        static_cast<unsigned long long>(ur.delivered),
        static_cast<unsigned long long>(ur.corrupt),
        static_cast<unsigned long long>(ur.io_syscalls),
        static_cast<unsigned long long>(ur.engine_entries),
        ur.syscalls_per_frame,
        static_cast<unsigned long long>(ur.wake_coalesced),
        static_cast<unsigned long long>(ur.sqe_batches),
        static_cast<unsigned long long>(ur.multishot_rearms),
        static_cast<unsigned long long>(ur.registered_buffer_hits),
        goodput_ratio, spf_ratio, bytes_ok ? "true" : "false",
        (gate && bytes_ok) ? "true" : "false");
    std::fclose(f);
    std::printf("wrote BENCH_uring.json\n");
  }

  if (!ur.uring) {
    // Kernel-gated: the comparison is epoll-vs-epoll, so the gate is
    // meaningless. Report but do not fail CI on machines without uring.
    std::printf("SKIP: io_uring backend unavailable on this kernel; "
                "ablation not meaningful\n");
    return 0;
  }
  if (!bytes_ok) {
    std::fprintf(stderr, "FAIL: delivery was not byte-identical "
                 "(epoll corrupt=%llu uring corrupt=%llu)\n",
                 static_cast<unsigned long long>(ep.corrupt),
                 static_cast<unsigned long long>(ur.corrupt));
    return 1;
  }
  if (!gate) {
    std::fprintf(stderr,
                 "FAIL: uring showed neither >=1.15x goodput (%.2fx) nor "
                 "<=0.70x syscalls/frame (%.2fx)\n",
                 goodput_ratio, spf_ratio);
    return 1;
  }
  return 0;
}

int run(int argc, const char* const* argv) {
  CliParser cli;
  cli.flag("conns", "concurrent loopback connections", std::int64_t{10000})
      .flag("senders", "connections that carry data traffic",
            std::int64_t{32})
      .flag("payload", "data frame payload bytes", std::int64_t{256})
      .flag("admission", "server admission_limit (frames)",
            std::int64_t{2048})
      .flag("calib-ms", "capacity calibration window (ms)",
            std::int64_t{500})
      .flag("secs", "measurement window per arm (s)", std::int64_t{2})
      .flag("backend", "wire engine: epoll | uring", std::string("epoll"))
      .flag("ablation", "run the epoll-vs-uring backend comparison and "
            "write BENCH_uring.json", false);
  if (Status st = cli.parse(argc, argv); !st.is_ok()) {
    std::fprintf(stderr, "%s\n%s", st.to_string().c_str(),
                 cli.usage("conn_scaling").c_str());
    return 1;
  }
  const auto conns = static_cast<std::size_t>(cli.get_int("conns"));
  const auto senders = static_cast<std::size_t>(cli.get_int("senders"));
  const auto payload = static_cast<std::size_t>(cli.get_int("payload"));
  const auto admission = static_cast<std::size_t>(cli.get_int("admission"));
  const auto calib_ms = cli.get_int("calib-ms");
  const long arm_ms = cli.get_int("secs") * 1000;
  const std::string backend_name = cli.get_string("backend");
  netio::IoEngine::Backend backend = netio::IoEngine::Backend::kEpoll;
  if (backend_name == "uring") {
    backend = netio::IoEngine::Backend::kUring;
  } else if (backend_name != "epoll") {
    std::fprintf(stderr, "unknown --backend '%s' (epoll | uring)\n",
                 backend_name.c_str());
    return 1;
  }

  // Up-front fd budget check: both endpoints of every loopback conn burn
  // an fd, one per process (the client is forked), plus listener/engine
  // overhead. Routine 100k runs need a raised limit - print the exact
  // incantation rather than dying mid-connect.
  const std::size_t fd_need = conns + 64;
  const std::size_t fd_cap = raise_fd_limit();
  std::printf("=== Connection scaling: %zu loopback conns "
              "(fd limit %zu/process, client forked), %zu senders, "
              "%zu B payload ===\n\n",
              conns, fd_cap, senders, payload);
  if (fd_cap > 0 && fd_need > fd_cap) {
    std::fprintf(stderr,
                 "FAIL: %zu conns need ~%zu fds per process but the hard "
                 "limit is %zu.\n"
                 "  raise it first:   ulimit -n %zu\n"
                 "  if that is refused (fs.nr_open cap), as root:\n"
                 "                    sysctl -w fs.nr_open=%zu\n"
                 "  then rerun. See EXPERIMENTS.md (connection scaling).\n",
                 conns, fd_need, fd_cap, fd_need, fd_need);
    return 1;
  }

  if (cli.get_bool("ablation")) {
    // Canonical ablation frame size is 4 KiB (see EXPERIMENTS.md); the
    // default --payload targets the overload run, so only an explicit
    // override changes it here.
    const std::size_t abl_payload = payload == 256 ? 4096 : payload;
    return run_ablation(conns, senders, abl_payload, arm_ms);
  }

  // Pipes first, fork second - before any thread exists, so the child is
  // a clean single-threaded image that only runs client_main().
  int cmd_pipe[2];
  int ack_pipe[2];
  if (pipe(cmd_pipe) != 0 || pipe(ack_pipe) != 0) {
    std::perror("pipe");
    return 1;
  }
  const pid_t child = fork();
  if (child < 0) {
    std::perror("fork");
    return 1;
  }
  if (child == 0) {
    close(cmd_pipe[1]);
    close(ack_pipe[0]);
    FILE* cmd = fdopen(cmd_pipe[0], "r");
    FILE* ack = fdopen(ack_pipe[1], "w");
    const int rc =
        (cmd && ack) ? client_main(cmd, ack, conns, senders, payload) : 1;
    _exit(rc);
  }
  close(cmd_pipe[0]);
  close(ack_pipe[1]);
  FILE* cmd = fdopen(cmd_pipe[1], "w");
  FILE* ack = fdopen(ack_pipe[0], "r");
  if (cmd == nullptr || ack == nullptr) {
    return 1;
  }

  core::Executive exec(core::ExecutiveConfig{.node_id = 1, .name = "c1m"});
  core::TransportConfig tuning;
  tuning.heartbeat_interval = std::chrono::nanoseconds(0);  // liveness off
  tuning.admission_limit = admission;
  pt::TcpTransportConfig wire_cfg;
  wire_cfg.backend = backend;
  auto t = std::make_unique<pt::TcpPeerTransport>(wire_cfg, tuning);
  pt::TcpPeerTransport* pt = t.get();
  (void)exec.install(std::move(t), "pt_tcp");
  auto sink = std::make_unique<SinkDevice>();
  SinkDevice* sink_raw = sink.get();
  (void)exec.install(std::move(sink), "sink");
  auto monitor = std::make_unique<core::MonitorDevice>();
  core::MonitorDevice* mon = monitor.get();
  (void)exec.install(std::move(monitor), "monitor");
  if (Status st = exec.enable_all(); !st.is_ok()) {
    std::fprintf(stderr, "enable failed: %s\n", st.to_string().c_str());
    return 1;
  }
  exec.start();

  std::fprintf(cmd, "PORT %u %u\n", pt->listen_port(),
               exec.tid_of("sink").value());
  std::fflush(cmd);
  std::size_t ready = 0;
  {
    unsigned long n = 0;
    if (std::fscanf(ack, "READY %lu", &n) != 1) {
      std::fprintf(stderr, "FAIL: client process died during connect\n");
      return 1;
    }
    ready = n;
  }
  // The accept drain may trail the last connect by a beat.
  const auto accept_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (pt->connection_count() < ready &&
         std::chrono::steady_clock::now() < accept_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const std::size_t held = pt->connection_count();
  std::printf("connections: %zu requested, %zu client-side, %zu accepted "
              "server-side\n",
              conns, ready, held);
  const bool conns_ok = held >= conns;

  auto measure = [&](double fps, long ms) {
    const std::uint64_t c0 = sink_raw->delivered();
    const std::uint64_t t0 = now_ns();
    std::fprintf(cmd, "RUN %.1f %ld\n", fps, ms);
    std::fflush(cmd);
    unsigned long long sent = 0;
    (void)std::fscanf(ack, " SENT %llu", &sent);
    const std::uint64_t t1 = now_ns();
    // Let in-flight frames reach the sink before sampling.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    const std::uint64_t c1 = sink_raw->delivered();
    const double secs = static_cast<double>(t1 - t0) / 1e9;
    RunResult r;
    r.offered_fps = static_cast<double>(sent) / secs;
    r.goodput_fps = static_cast<double>(c1 - c0) / secs;
    return r;
  };

  std::printf("\n%12s %14s %14s %10s\n", "arm", "offered/s", "goodput/s",
              "shed");
  const RunResult cap = measure(0, calib_ms);
  std::printf("%12s %14.0f %14.0f %10llu\n", "capacity", cap.offered_fps,
              cap.goodput_fps,
              static_cast<unsigned long long>(pt->qos_stats().rx_shed));
  const double capacity = cap.goodput_fps;
  const RunResult unloaded = measure(0.4 * capacity, arm_ms);
  std::printf("%12s %14.0f %14.0f %10llu\n", "unloaded", unloaded.offered_fps,
              unloaded.goodput_fps,
              static_cast<unsigned long long>(pt->qos_stats().rx_shed));
  const RunResult overload = measure(4.0 * capacity, arm_ms);
  const std::uint64_t shed = pt->qos_stats().rx_shed;
  std::printf("%12s %14.0f %14.0f %10llu\n", "overload", overload.offered_fps,
              overload.goodput_fps, static_cast<unsigned long long>(shed));

  const double ratio = unloaded.goodput_fps > 0
                           ? overload.goodput_fps / unloaded.goodput_fps
                           : 0.0;
  std::printf("\ngoodput at 10x offered overload: %.2fx the unloaded "
              "figure (floor 0.80x)\n",
              ratio);

  const std::string snapshot = mon->snapshot_json();
  if (std::FILE* f = std::fopen("BENCH_conn.json", "w")) {
    std::fprintf(f,
                 "{\n"
                 "  \"conns_requested\": %zu,\n"
                 "  \"conns_held\": %zu,\n"
                 "  \"senders\": %zu,\n"
                 "  \"payload_bytes\": %zu,\n"
                 "  \"admission_limit\": %zu,\n"
                 "  \"capacity_fps\": %.0f,\n"
                 "  \"unloaded_offered_fps\": %.0f,\n"
                 "  \"unloaded_goodput_fps\": %.0f,\n"
                 "  \"overload_offered_fps\": %.0f,\n"
                 "  \"overload_goodput_fps\": %.0f,\n"
                 "  \"overload_over_unloaded\": %.3f,\n"
                 "  \"floor\": 0.8,\n"
                 "  \"rx_shed\": %llu,\n"
                 "  \"snapshot\": %s\n"
                 "}\n",
                 conns, held, senders, payload, admission, capacity,
                 unloaded.offered_fps, unloaded.goodput_fps,
                 overload.offered_fps, overload.goodput_fps, ratio,
                 static_cast<unsigned long long>(shed),
                 snapshot.empty() ? "{}" : snapshot.c_str());
    std::fclose(f);
    std::printf("wrote BENCH_conn.json\n");
  }

  std::fprintf(cmd, "QUIT\n");
  std::fflush(cmd);
  int wstatus = 0;
  (void)waitpid(child, &wstatus, 0);
  exec.stop();

  if (!conns_ok) {
    std::fprintf(stderr, "FAIL: sustained %zu connections, wanted %zu\n",
                 held, conns);
    return 1;
  }
  if (ratio < 0.8) {
    std::fprintf(stderr,
                 "FAIL: goodput collapsed under overload (%.2fx the "
                 "unloaded figure, floor 0.80x)\n",
                 ratio);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace xdaq::bench

int main(int argc, char** argv) {
  return xdaq::bench::run(argc, argv);
}
