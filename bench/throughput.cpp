// throughput.cpp - sustained message-rate and bandwidth figures.
//
// The paper motivates the framework with grand-challenge data rates
// ("Tbytes/s and ... hundreds kHz message rates" across the whole
// cluster, section 1). This bench reports what one node pair and one
// small event-builder deliver:
//   1. windowed one-way flood: messages/s and MB/s vs payload size,
//   2. the n x m event builder: events/s and aggregate MB/s vs fragment
//      size (the crossing-channel workload XDAQ is named after).
#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <thread>

#include "bench_common.hpp"
#include "daq/topology.hpp"
#include "pt/cluster.hpp"
#include "util/cli.hpp"

namespace xdaq::bench {
namespace {

struct FloodResult {
  double msgs_per_s;
  double mbytes_per_s;
};

FloodResult flood(std::size_t payload, std::uint64_t total,
                  std::uint32_t window) {
  pt::Cluster cluster;
  (void)cluster.install(1, std::make_unique<AckSink>(), "sink");
  auto src = std::make_unique<FloodSource>();
  FloodSource* src_raw = src.get();
  (void)cluster.install(0, std::move(src), "src");
  const auto proxy = cluster.connect(0, 1, "sink").value();
  (void)cluster.enable_all();
  cluster.start_all();

  src_raw->configure_run(proxy, payload, total, window);
  const std::uint64_t t0 = now_ns();
  src_raw->begin();
  (void)src_raw->wait_done(std::chrono::seconds(120));
  const double secs = static_cast<double>(now_ns() - t0) / 1e9;
  cluster.stop_all();

  const double msgs = static_cast<double>(src_raw->acked());
  return FloodResult{msgs / secs,
                     msgs * static_cast<double>(payload) / secs / 1e6};
}

struct EbResult {
  double events_per_s;
  double mbytes_per_s;
};

EbResult event_builder(std::size_t fragment_bytes, std::uint64_t events,
                       std::size_t readouts, std::size_t builders) {
  daq::EventBuilderParams p;
  p.readouts = readouts;
  p.builders = builders;
  p.fragment_bytes = fragment_bytes;
  p.max_events = events;
  p.batch = 16;
  pt::Cluster cluster(pt::ClusterConfig{
      .nodes = daq::EventBuilderTopology::nodes_required(p)});
  auto topo = daq::EventBuilderTopology::build(cluster, p);
  if (!topo.is_ok()) {
    return EbResult{0, 0};
  }
  (void)cluster.enable_all();
  const std::uint64_t t0 = now_ns();
  cluster.start_all();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(120);
  while (!topo.value().complete() &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const double secs = static_cast<double>(now_ns() - t0) / 1e9;
  cluster.stop_all();
  const double built = static_cast<double>(topo.value().events_built());
  const double bytes = static_cast<double>(topo.value().bytes_built());
  return EbResult{built / secs, bytes / secs / 1e6};
}

int run(int argc, const char* const* argv) {
  CliParser cli;
  cli.flag("messages", "messages per flood point", std::int64_t{200000})
      .flag("window", "flood window (messages in flight)", std::int64_t{64})
      .flag("events", "events per event-builder point", std::int64_t{2000});
  if (Status st = cli.parse(argc, argv); !st.is_ok()) {
    std::fprintf(stderr, "%s\n%s", st.to_string().c_str(),
                 cli.usage("throughput").c_str());
    return 1;
  }
  const auto messages = static_cast<std::uint64_t>(cli.get_int("messages"));
  const auto window = static_cast<std::uint32_t>(cli.get_int("window"));
  const auto events = static_cast<std::uint64_t>(cli.get_int("events"));

  std::printf("=== Sustained throughput (paper section 1 motivation) ===\n");
  std::printf("\n-- windowed flood, one node pair, window=%u --\n", window);
  std::printf("%10s %14s %12s\n", "payload", "messages/s", "MB/s");
  for (const std::size_t payload : {16u, 256u, 1024u, 4096u, 65536u}) {
    const std::uint64_t n =
        payload >= 65536 ? messages / 10 : messages;
    const FloodResult r = flood(payload, n, window);
    std::printf("%10zu %14.0f %12.1f\n", payload, r.msgs_per_s,
                r.mbytes_per_s);
  }

  std::printf("\n-- event builder (crossing channels) --\n");
  std::printf("%8s %8s %10s %14s %12s\n", "RUs", "BUs", "fragment",
              "events/s", "MB/s");
  for (const std::size_t frag : {512u, 2048u, 16384u}) {
    const EbResult r = event_builder(frag, events, 2, 2);
    std::printf("%8d %8d %10zu %14.0f %12.1f\n", 2, 2, frag,
                r.events_per_s, r.mbytes_per_s);
  }
  const EbResult r31 = event_builder(2048, events, 3, 1);
  std::printf("%8d %8d %10d %14.0f %12.1f\n", 3, 1, 2048, r31.events_per_s,
              r31.mbytes_per_s);

  std::printf("\nnote: the paper reports no absolute throughput table; "
              "this bench documents the reproduction's sustained rates "
              "(the 'hundreds kHz message rates' regime of section 1).\n");
  return 0;
}

}  // namespace
}  // namespace xdaq::bench

int main(int argc, char** argv) { return xdaq::bench::run(argc, argv); }
