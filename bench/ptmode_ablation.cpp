// ptmode_ablation.cpp - polling vs task mode (paper section 4).
//
// "Concerning Peer Transports we distinguish two ways of operation. In
// polling mode, the executive periodically scans all registered PTs for
// pending data. In task mode each PT has its own thread of control ...
// To allow efficient operation in polling mode it is advisable not to
// use more than one PT in this mode ... Otherwise a slow PT, e.g. a poll
// operation on a TCP socket would negate the benefits of checking
// periodically a lightweight user level network interface."
//
// Four configurations of the same blackbox ping-pong:
//   1. GM PT, polling mode (the paper's recommended low-latency setup)
//   2. GM PT, task mode (thread hand-off on every message)
//   3. GM PT polling + one extra slow polling PT (the anti-pattern)
//   4. GM PT polling + three extra slow polling PTs (worse)
#include <cstdio>

#include "bench_common.hpp"
#include "core/transport.hpp"
#include "pt/cluster.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"

namespace xdaq::bench {
namespace {

/// Models polling a heavyweight interface (e.g. a TCP socket) inside the
/// executive's scan loop: every poll burns a fixed busy-wait.
class SlowPollTransport final : public core::TransportDevice {
 public:
  explicit SlowPollTransport(std::uint64_t poll_cost_ns)
      : TransportDevice("SlowPollTransport", Mode::Polling),
        poll_cost_ns_(poll_cost_ns) {}

  Status transport_send(i2o::NodeId, std::span<const std::byte>) override {
    return {Errc::Unsupported, "slow PT carries no traffic"};
  }

 protected:
  void on_transport_poll() override {
    const std::uint64_t until = now_ns() + poll_cost_ns_;
    while (now_ns() < until) {
    }
  }

 private:
  std::uint64_t poll_cost_ns_;
};

double oneway_us(core::TransportDevice::Mode mode, int slow_pts,
                 std::uint64_t slow_cost_ns, std::size_t payload,
                 std::uint64_t calls) {
  pt::ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.peer.mode = mode;
  pt::Cluster cluster(cfg);
  for (int i = 0; i < slow_pts; ++i) {
    for (std::size_t node = 0; node < 2; ++node) {
      (void)cluster.install(
          node, std::make_unique<SlowPollTransport>(slow_cost_ns),
          "slow_pt" + std::to_string(i));
    }
  }
  (void)cluster.install(1, std::make_unique<EchoDevice>(), "echo");
  auto pinger = std::make_unique<PingerDevice>();
  PingerDevice* pinger_raw = pinger.get();
  (void)cluster.install(0, std::move(pinger), "pinger");
  const auto proxy = cluster.connect(0, 1, "echo").value();
  (void)cluster.enable_all();
  cluster.start_all();
  pinger_raw->configure_run(proxy, payload, calls);
  (void)pinger_raw->begin();
  (void)pinger_raw->wait_done(std::chrono::seconds(120));
  cluster.stop_all();
  Sampler s;
  s.add_all(pinger_raw->rtts_ns());
  return s.median() / 2.0 / 1000.0;
}

int run(int argc, const char* const* argv) {
  CliParser cli;
  cli.flag("calls", "round trips per configuration", std::int64_t{20000})
      .flag("payload", "ping payload bytes", std::int64_t{64})
      .flag("slow-poll-us", "busy cost of one slow PT poll",
            std::int64_t{20});
  if (Status st = cli.parse(argc, argv); !st.is_ok()) {
    std::fprintf(stderr, "%s\n%s", st.to_string().c_str(),
                 cli.usage("ptmode_ablation").c_str());
    return 1;
  }
  const auto calls = static_cast<std::uint64_t>(cli.get_int("calls"));
  const auto payload = static_cast<std::size_t>(cli.get_int("payload"));
  const auto slow_ns =
      static_cast<std::uint64_t>(cli.get_int("slow-poll-us")) * 1000;

  std::printf("=== Peer-transport mode ablation (paper section 4) ===\n");
  std::printf("calls=%llu payload=%zuB slow-poll=%lluus\n\n",
              static_cast<unsigned long long>(calls), payload,
              static_cast<unsigned long long>(slow_ns / 1000));
  std::printf("%-44s %14s\n", "configuration", "one-way (us)");

  const double polling =
      oneway_us(core::TransportDevice::Mode::Polling, 0, 0, payload, calls);
  std::printf("%-44s %14.2f\n", "GM PT, polling mode (recommended)",
              polling);
  const double task =
      oneway_us(core::TransportDevice::Mode::Task, 0, 0, payload, calls);
  std::printf("%-44s %14.2f\n", "GM PT, task mode (thread hand-off)", task);
  const double one_slow = oneway_us(core::TransportDevice::Mode::Polling, 1,
                                    slow_ns, payload, calls);
  std::printf("%-44s %14.2f\n", "GM PT polling + 1 slow polling PT",
              one_slow);
  const double three_slow = oneway_us(core::TransportDevice::Mode::Polling,
                                      3, slow_ns, payload, calls);
  std::printf("%-44s %14.2f\n", "GM PT polling + 3 slow polling PTs",
              three_slow);

  std::printf("\nshape checks (paper's qualitative claims):\n");
  std::printf("  slow co-polled PTs degrade latency -> %s\n",
              (one_slow > polling && three_slow > one_slow) ? "PASS"
                                                            : "CHECK");
  std::printf("  degradation scales with slow PT count -> %s\n",
              three_slow > 2 * one_slow - polling ? "PASS" : "CHECK");
  return 0;
}

}  // namespace
}  // namespace xdaq::bench

int main(int argc, char** argv) { return xdaq::bench::run(argc, argv); }
