// ctrl_failover.cpp - measures the replicated control plane:
//
//   1. Steady state: committed-write (Put) and linearizable-read (Get)
//      latency against a healthy 5-voter group, from a non-voter client
//      node. A Put returns only after the command is on a majority, so
//      this is the price of a durable config change.
//   2. Failover: the leader's node is symmetrically partitioned away
//      (FaultInjectingTransport partition plan) and we time how long
//      until the next client write commits on the surviving majority -
//      detection + re-election + first replicated append, as a client
//      experiences it.
//
// Results go to stdout and BENCH_ctrl.json. Seeded: --seed replays the
// same elections and partitions.
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "ctrl/client.hpp"
#include "ctrl/replica.hpp"
#include "pt/cluster.hpp"
#include "pt/fault_pt.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"

namespace xdaq::bench {
namespace {

using ctrl::ControlClient;
using ctrl::ControlReplicaDevice;
using ctrl::Role;

constexpr std::size_t kVoters = 5;

double to_ms(std::chrono::nanoseconds d) {
  return std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
             d)
      .count();
}

/// Five voters plus one client node, every transport wrapped in a fault
/// decorator; replica ticks are driven from this thread (the bench owns
/// the logical clock, like the chaos tests).
struct ControlBench {
  explicit ControlBench(std::uint64_t seed) {
    pt::ClusterConfig cfg;
    cfg.nodes = kVoters + 1;
    cluster = std::make_unique<pt::Cluster>(cfg);
    std::vector<i2o::NodeId> voters;
    for (std::size_t i = 0; i < kVoters; ++i) {
      voters.push_back(cluster->node_id(i));
    }
    for (std::size_t i = 0; i < cfg.nodes; ++i) {
      pt::FaultPlan plan;
      plan.seed = seed + i;
      auto fault = std::make_unique<pt::FaultInjectingTransport>(
          cluster->transport(i), plan);
      faults.push_back(fault.get());
      const auto tid = cluster->install(i, std::move(fault), "pt_fault");
      for (std::size_t j = 0; j < cfg.nodes; ++j) {
        if (j != i) {
          (void)cluster->node(i).set_route(cluster->node_id(j), tid.value());
        }
      }
    }
    i2o::Tid replica_tid = i2o::kNullTid;
    for (std::size_t i = 0; i < kVoters; ++i) {
      ControlReplicaDevice::Config rc;
      rc.voters = voters;
      rc.seed = seed + 100 + i;
      rc.snapshot_threshold = 128;
      auto replica = std::make_unique<ControlReplicaDevice>(rc);
      replicas.push_back(replica.get());
      replica_tid = cluster->install(i, std::move(replica), "ctrl").value();
    }
    ControlClient::Config cc;
    cc.voters = voters;
    cc.replica_tid = replica_tid;
    cc.call_timeout = std::chrono::milliseconds(300);
    cc.retry_delay = std::chrono::milliseconds(2);
    cc.max_attempts = 64;
    auto c = std::make_unique<ControlClient>(cc);
    client = c.get();
    (void)cluster->install(kVoters, std::move(c), "ctrlc");
    (void)cluster->enable_all();
    cluster->start_all();
    ticker = std::thread([this] {
      while (running.load(std::memory_order_acquire)) {
        for (pt::FaultInjectingTransport* f : faults) {
          f->advance_tick();
        }
        for (ControlReplicaDevice* r : replicas) {
          r->tick();
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    });
  }

  ~ControlBench() {
    running.store(false, std::memory_order_release);
    if (ticker.joinable()) {
      ticker.join();
    }
    cluster->stop_all();
  }

  [[nodiscard]] int leader_index() const {
    for (std::size_t i = 0; i < replicas.size(); ++i) {
      if (replicas[i]->role() == Role::Leader) {
        return static_cast<int>(i);
      }
    }
    return -1;
  }

  bool wait_leader(std::chrono::nanoseconds budget) const {
    const auto deadline = std::chrono::steady_clock::now() + budget;
    while (leader_index() < 0) {
      if (std::chrono::steady_clock::now() >= deadline) {
        return false;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return true;
  }

  /// Partitions `victim` (a voter node id) away from everything else.
  void isolate(i2o::NodeId victim) {
    std::vector<i2o::NodeId> rest;
    for (std::size_t i = 0; i <= kVoters; ++i) {
      if (cluster->node_id(i) != victim) {
        rest.push_back(cluster->node_id(i));
      }
    }
    const std::uint64_t from = faults.front()->chaos_tick();
    for (pt::FaultInjectingTransport* f : faults) {
      f->set_partition({{victim}, rest}, from, from + 100000);
    }
  }

  void heal() {
    for (pt::FaultInjectingTransport* f : faults) {
      f->clear_partition();
    }
  }

  std::unique_ptr<pt::Cluster> cluster;
  std::vector<pt::FaultInjectingTransport*> faults;
  std::vector<ControlReplicaDevice*> replicas;
  ControlClient* client = nullptr;
  std::atomic<bool> running{true};
  std::thread ticker;
};

}  // namespace
}  // namespace xdaq::bench

int main(int argc, char** argv) {
  using namespace xdaq;
  using namespace xdaq::bench;
  CliParser cli;
  cli.flag("writes", "steady-state committed writes", std::int64_t{200});
  cli.flag("trials", "leader-kill failover trials", std::int64_t{5});
  cli.flag("seed", "chaos/election seed", std::int64_t{1});
  if (Status st = cli.parse(argc, argv); !st.is_ok()) {
    std::fprintf(stderr, "%s\n%s", st.to_string().c_str(),
                 cli.usage(argv[0]).c_str());
    return 1;
  }
  const int writes = static_cast<int>(cli.get_int("writes"));
  const int trials = static_cast<int>(cli.get_int("trials"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  std::printf("== replicated control plane: latency + failover ==\n");
  std::printf("voters %zu, writes %d, failover trials %d, seed %llu\n\n",
              kVoters, writes, trials, static_cast<unsigned long long>(seed));

  ControlBench bench(seed);
  if (!bench.wait_leader(std::chrono::seconds(10))) {
    std::printf("no leader elected - aborting\n");
    return 1;
  }

  // -- steady state ---------------------------------------------------------
  Sampler put_ms;
  Sampler get_ms;
  for (int i = 0; i < writes; ++i) {
    const std::string key = "bench/k" + std::to_string(i % 32);
    auto t0 = std::chrono::steady_clock::now();
    if (!bench.client->put(key, "v" + std::to_string(i)).is_ok()) {
      continue;
    }
    put_ms.add(to_ms(std::chrono::steady_clock::now() - t0));
    t0 = std::chrono::steady_clock::now();
    if (bench.client->get(key).is_ok()) {
      get_ms.add(to_ms(std::chrono::steady_clock::now() - t0));
    }
  }
  std::printf("%-34s %8.2f median, %8.2f p90, %8.2f max ms\n",
              "committed put", put_ms.median(), put_ms.percentile(90.0),
              put_ms.max());
  std::printf("%-34s %8.2f median, %8.2f p90, %8.2f max ms\n",
              "linearizable get", get_ms.median(), get_ms.percentile(90.0),
              get_ms.max());

  // -- failover -------------------------------------------------------------
  Sampler failover_ms;
  int recovered = 0;
  for (int t = 0; t < trials; ++t) {
    const int leader = bench.leader_index();
    if (leader < 0) {
      break;
    }
    bench.isolate(bench.cluster->node_id(static_cast<std::size_t>(leader)));
    const auto t0 = std::chrono::steady_clock::now();
    const auto r = bench.client->put("bench/failover", std::to_string(t));
    if (r.is_ok()) {
      failover_ms.add(to_ms(std::chrono::steady_clock::now() - t0));
      ++recovered;
    }
    bench.heal();
    // Let the deposed leader rejoin before the next trial.
    if (!bench.wait_leader(std::chrono::seconds(10))) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }
  std::printf("%-34s %8.2f median, %8.2f p90, %8.2f max ms (%d/%d)\n",
              "leader-kill to next commit", failover_ms.median(),
              failover_ms.percentile(90.0), failover_ms.max(), recovered,
              trials);
  std::printf("\nshape check: every trial recovered -> %s\n",
              recovered == trials ? "PASS" : "CHECK");

  if (std::FILE* f = std::fopen("BENCH_ctrl.json", "w")) {
    std::fprintf(
        f,
        "{\n"
        "  \"voters\": %zu,\n"
        "  \"seed\": %llu,\n"
        "  \"writes\": %d,\n"
        "  \"put_ms\": {\"median\": %.2f, \"p90\": %.2f, \"max\": %.2f},\n"
        "  \"get_ms\": {\"median\": %.2f, \"p90\": %.2f, \"max\": %.2f},\n"
        "  \"failover_trials\": %d,\n"
        "  \"failover_recovered\": %d,\n"
        "  \"failover_ms\": {\"median\": %.2f, \"p90\": %.2f, "
        "\"max\": %.2f}\n"
        "}\n",
        kVoters, static_cast<unsigned long long>(seed), writes,
        put_ms.median(), put_ms.percentile(90.0), put_ms.max(),
        get_ms.median(), get_ms.percentile(90.0), get_ms.max(), trials,
        recovered, failover_ms.median(), failover_ms.percentile(90.0),
        failover_ms.max());
    std::fclose(f);
    std::printf("wrote BENCH_ctrl.json\n");
  }
  return 0;
}
