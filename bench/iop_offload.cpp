// iop_offload.cpp - the paper's "ongoing work" experiment (section 7).
//
// "Similar to the SPINE project we intend to use our executive not only
// in the main CPUs, but also in intelligent network cards. ... The board
// gives I2O support through hardware FIFOs, which will allow us to
// provide communication efficiency measurements with and without
// hardware support."
//
// Host <-> IOP-board communication over two transports on the same
// executive pair:
//   1. FifoTransport - the hardware-FIFO PCI peer transport (one SPSC
//      ring slot per frame, no serialization): "with hardware support";
//   2. GmPeerTransport over the simulated fabric (send tokens, staging
//      copies, receive-buffer management): "without hardware support".
#include <cstdio>

#include "bench_common.hpp"
#include "pt/fifo_pt.hpp"
#include "pt/gm_pt.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"

namespace xdaq::bench {
namespace {

struct Latency {
  double median_us;
  double p99_us;
};

template <typename MakeTransports>
Latency host_iop_latency(MakeTransports make_transports,
                         std::size_t payload, std::uint64_t calls) {
  core::Executive host(core::ExecutiveConfig{.node_id = 1, .name = "host"});
  core::Executive iop(core::ExecutiveConfig{.node_id = 2, .name = "iop"});
  make_transports(host, iop);

  (void)iop.install(std::make_unique<EchoDevice>(), "echo");
  auto pinger = std::make_unique<PingerDevice>();
  PingerDevice* pinger_raw = pinger.get();
  (void)host.install(std::move(pinger), "pinger");
  const auto proxy =
      host.register_remote(2, iop.tid_of("echo").value()).value();
  (void)host.enable_all();
  (void)iop.enable_all();
  host.start();
  iop.start();

  pinger_raw->configure_run(proxy, payload, calls);
  (void)pinger_raw->begin();
  (void)pinger_raw->wait_done(std::chrono::seconds(60));
  host.stop();
  iop.stop();

  Sampler s;
  s.add_all(pinger_raw->rtts_ns());
  return Latency{s.median() / 2000.0, s.percentile(99) / 2000.0};
}

int run(int argc, const char* const* argv) {
  CliParser cli;
  cli.flag("calls", "round trips per point", std::int64_t{20000});
  if (Status st = cli.parse(argc, argv); !st.is_ok()) {
    std::fprintf(stderr, "%s\n%s", st.to_string().c_str(),
                 cli.usage("iop_offload").c_str());
    return 1;
  }
  const auto calls = static_cast<std::uint64_t>(cli.get_int("calls"));

  std::printf("=== IOP-board offload: with vs without hardware FIFOs "
              "(paper section 7) ===\n");
  std::printf("calls/point=%llu, one-way medians in usec\n\n",
              static_cast<unsigned long long>(calls));
  std::printf("%10s %16s %16s %16s %16s\n", "payload", "fifo med",
              "fifo p99", "gm med", "gm p99");

  for (const std::size_t payload : {16u, 256u, 1024u, 4096u, 65536u}) {
    // Shared state per configuration so transports outlive the run.
    pt::FifoLink link;
    const Latency fifo = host_iop_latency(
        [&link](core::Executive& host, core::Executive& iop) {
          auto th = std::make_unique<pt::FifoTransport>(link, 0);
          auto ti = std::make_unique<pt::FifoTransport>(link, 1);
          const auto th_tid = host.install(std::move(th), "pt").value();
          const auto ti_tid = iop.install(std::move(ti), "pt").value();
          (void)host.set_route(2, th_tid);
          (void)iop.set_route(1, ti_tid);
        },
        payload, calls);

    gmsim::Fabric fabric;
    const Latency gm = host_iop_latency(
        [&fabric](core::Executive& host, core::Executive& iop) {
          auto th = std::make_unique<pt::GmPeerTransport>(fabric);
          auto ti = std::make_unique<pt::GmPeerTransport>(fabric);
          const auto th_tid = host.install(std::move(th), "pt").value();
          const auto ti_tid = iop.install(std::move(ti), "pt").value();
          (void)host.set_route(2, th_tid);
          (void)iop.set_route(1, ti_tid);
        },
        payload, calls);

    std::printf("%10zu %16.2f %16.2f %16.2f %16.2f\n", payload,
                fifo.median_us, fifo.p99_us, gm.median_us, gm.p99_us);
  }

  std::printf("\nshape check: hardware-FIFO path is the cheaper "
              "transport at small payloads (the reason the paper built "
              "the IOP 480 board).\n");
  return 0;
}

}  // namespace
}  // namespace xdaq::bench

int main(int argc, char** argv) { return xdaq::bench::run(argc, argv); }
