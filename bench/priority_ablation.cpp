// priority_ablation.cpp - the seven-priority dispatch algorithm at work.
//
// Paper section 4: "There exist seven priority levels and for each one
// the messages are scheduled to a FIFO. All devices are then dispatched
// in round-robin manner." Control-plane traffic (executive and utility
// message classes) is scheduled at a higher priority than application
// frames, so a node saturated with data must still answer its primary
// host promptly. This bench measures request latency into a node that is
// (a) idle and (b) saturated by a windowed data flood:
//   * ExecStatusGet to the kernel      - control priority,
//   * private echo to a device class   - application (default) priority.
#include <cstdio>

#include "bench_common.hpp"
#include "core/requester.hpp"
#include "pt/cluster.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"

namespace xdaq::bench {
namespace {

struct LatencyPair {
  double control_us;  ///< ExecStatusGet median
  double app_us;      ///< private echo median
};

LatencyPair measure(bool loaded, std::uint64_t probes,
                    std::size_t flood_payload, std::uint32_t window) {
  pt::Cluster cluster;
  (void)cluster.install(1, std::make_unique<AckSink>(), "sink");
  (void)cluster.install(1, std::make_unique<EchoDevice>(), "echo");
  auto flood = std::make_unique<FloodSource>();
  FloodSource* flood_raw = flood.get();
  (void)cluster.install(0, std::move(flood), "flood");
  auto req = std::make_unique<core::Requester>();
  core::Requester* req_raw = req.get();
  (void)cluster.install(0, std::move(req), "req");

  const auto sink_proxy = cluster.connect(0, 1, "sink").value();
  const auto echo_proxy = cluster.connect(0, 1, "echo").value();
  const auto kernel_proxy =
      cluster.node(0)
          .register_remote(cluster.node_id(1), i2o::kExecutiveTid)
          .value();
  (void)cluster.enable_all();
  cluster.start_all();

  if (loaded) {
    // Effectively unbounded background flood for the bench duration.
    flood_raw->configure_run(sink_proxy, flood_payload,
                             ~std::uint64_t{0} >> 1, window);
    flood_raw->begin();
  }

  Sampler control;
  Sampler app;
  for (std::uint64_t i = 0; i < probes; ++i) {
    std::uint64_t t0 = now_ns();
    auto status = req_raw->call_standard(kernel_proxy,
                                         i2o::Function::ExecStatusGet, {},
                                         xdaq::core::CallOptions{.timeout = std::chrono::seconds(10)});
    if (status.is_ok()) {
      control.add(static_cast<double>(now_ns() - t0));
    }
    t0 = now_ns();
    auto echo = req_raw->call_private(echo_proxy, i2o::OrgId::kBench,
                                      kXfnPing, {},
                                      xdaq::core::CallOptions{.timeout = std::chrono::seconds(10)});
    if (echo.is_ok()) {
      app.add(static_cast<double>(now_ns() - t0));
    }
  }
  cluster.stop_all();
  return LatencyPair{control.median() / 1000.0, app.median() / 1000.0};
}

int run(int argc, const char* const* argv) {
  CliParser cli;
  cli.flag("probes", "requests per configuration", std::int64_t{2000})
      .flag("flood-payload", "background message size", std::int64_t{4096})
      .flag("window", "background flood window", std::int64_t{64});
  if (Status st = cli.parse(argc, argv); !st.is_ok()) {
    std::fprintf(stderr, "%s\n%s", st.to_string().c_str(),
                 cli.usage("priority_ablation").c_str());
    return 1;
  }
  const auto probes = static_cast<std::uint64_t>(cli.get_int("probes"));
  const auto payload =
      static_cast<std::size_t>(cli.get_int("flood-payload"));
  const auto window = static_cast<std::uint32_t>(cli.get_int("window"));

  std::printf("=== Priority scheduling ablation (paper section 4) ===\n");
  std::printf("probes=%llu background flood: %zu B x window %u\n\n",
              static_cast<unsigned long long>(probes), payload, window);

  const LatencyPair idle = measure(false, probes, payload, window);
  const LatencyPair busy = measure(true, probes, payload, window);

  std::printf("%-34s %14s %14s\n", "request (round trip, median us)",
              "idle node", "flooded node");
  std::printf("%-34s %14.2f %14.2f\n", "ExecStatusGet (control priority)",
              idle.control_us, busy.control_us);
  std::printf("%-34s %14.2f %14.2f\n", "private echo (app priority)",
              idle.app_us, busy.app_us);

  const double control_blowup = busy.control_us / idle.control_us;
  const double app_blowup = busy.app_us / idle.app_us;
  std::printf("\nload blowup: control %.1fx, application %.1fx\n",
              control_blowup, app_blowup);
  std::printf("shape check: control stays at least as responsive as "
              "application traffic under load -> %s\n",
              control_blowup <= app_blowup * 1.2 ? "PASS" : "CHECK");
  return 0;
}

}  // namespace
}  // namespace xdaq::bench

int main(int argc, char** argv) { return xdaq::bench::run(argc, argv); }
