// zerocopy_ablation.cpp - measures the zero-copy frame pipeline against
// the copying baseline it replaced.
//
// Two sections:
//   1. 2-node TCP closed loop at 4 KiB frames: a FloodSource keeps a
//      window of pings in flight; the echo side replies with the full
//      payload, so BOTH directions carry 4 KiB frames. "copy" arm =
//      zero_copy=0 (the legacy path: rx bytes staged through a
//      per-connection vector, each frame memcpy'd into a fresh pool
//      block on delivery; tx bodies flattened into the write combiner).
//      "zerocopy" arm = frames parsed in place inside pooled rx blocks
//      and delivered as views; tx gathers iovecs straight out of pooled
//      memory. Each arm reports its transport copy counters, so the
//      copies-per-frame claim is measured, not asserted.
//   2. local-bus round trip: the in-process handoff passes the pooled
//      reference itself. rx_copies MUST be exactly 0 - the process exits
//      nonzero otherwise, so the bench_smoke run doubles as a CI
//      assertion on the zero-copy invariant.
//
// Results go to stdout and BENCH_zerocopy.json; the JSON embeds a full
// MonitorDevice snapshot of the receive node from the zero-copy arm
// (pool.views, pt.*.rx_copies / tx_copies / rx_splices included).
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/monitor_device.hpp"
#include "pt/local_bus.hpp"
#include "pt/tcp_pt.hpp"
#include "util/cli.hpp"

namespace xdaq::bench {
namespace {

constexpr std::size_t kPayloadBytes = 4096;

std::int64_t metric_value(const core::TransportDevice& pt,
                          const std::string& name) {
  std::vector<obs::Sample> out;
  pt.append_metrics("pt", out);
  for (const obs::Sample& s : out) {
    if (s.name == "pt" + name) {
      return s.value;
    }
  }
  return -1;
}

struct TcpResult {
  double frames_per_sec = 0;
  std::uint64_t frames = 0;       ///< frames on the wire (pings + echoes)
  std::int64_t rx_copies = 0;     ///< summed over both nodes
  std::int64_t tx_copies = 0;
  std::int64_t rx_splices = 0;
  std::string snapshot_json;      ///< node b monitor snapshot
};

/// Closed-loop echo flood over real sockets; `total` round trips.
TcpResult tcp_closed_loop(bool zero_copy, std::uint64_t total,
                          std::uint32_t window) {
  core::ExecutiveConfig cfg_a{.node_id = 1, .name = "a"};
  core::ExecutiveConfig cfg_b{.node_id = 2, .name = "b"};
  cfg_a.inbound_capacity = 8192;
  cfg_b.inbound_capacity = 8192;
  // Dispatch in batches so handler replies cork and leave through the
  // end-of-batch transport flush: one gathered sendmsg per batch instead
  // of one per frame, in both arms.
  cfg_a.dispatch_batch = 128;
  cfg_b.dispatch_batch = 128;
  core::Executive a(cfg_a);
  core::Executive b(cfg_b);

  pt::TcpTransportConfig tcfg;
  tcfg.zero_copy = zero_copy;
  // Let 4 KiB frames share syscalls through the write combiner in both
  // arms; otherwise every frame pays its own writer wakeup + sendmsg and
  // the syscall cost swamps the copy-vs-no-copy difference under test.
  tcfg.coalesce_bytes = 192 * 1024;
  auto ta = std::make_unique<pt::TcpPeerTransport>(tcfg);
  auto tb = std::make_unique<pt::TcpPeerTransport>(tcfg);
  pt::TcpPeerTransport* pt_a = ta.get();
  pt::TcpPeerTransport* pt_b = tb.get();
  (void)a.install(std::move(ta), "pt_tcp");
  (void)b.install(std::move(tb), "pt_tcp");
  (void)a.set_route(2, pt_a->tid());
  (void)b.set_route(1, pt_b->tid());
  (void)a.enable(pt_a->tid());
  (void)b.enable(pt_b->tid());
  pt_a->add_peer(2, "127.0.0.1", pt_b->listen_port());
  pt_b->add_peer(1, "127.0.0.1", pt_a->listen_port());

  auto echo = std::make_unique<EchoDevice>();
  echo->enable_inplace_reply();  // wire -> device -> wire, same block
  (void)b.install(std::move(echo), "echo");
  auto monitor = std::make_unique<core::MonitorDevice>();
  core::MonitorDevice* mon_b = monitor.get();
  (void)b.install(std::move(monitor), "monitor");
  auto source = std::make_unique<FloodSource>();
  FloodSource* src = source.get();
  src->enable_inplace_resend();
  (void)a.install(std::move(source), "src");
  const auto proxy =
      a.register_remote(2, b.tid_of("echo").value(), "echo").value();
  (void)a.enable_all();
  (void)b.enable_all();
  a.start();
  b.start();

  src->configure_run(proxy, kPayloadBytes, total, window);
  const std::uint64_t t0 = now_ns();
  src->begin();
  if (!src->wait_done(std::chrono::seconds(120))) {
    std::fprintf(stderr, "warning: tcp run acked %llu of %llu\n",
                 static_cast<unsigned long long>(src->acked()),
                 static_cast<unsigned long long>(total));
  }
  const double elapsed_s = static_cast<double>(now_ns() - t0) / 1e9;

  TcpResult r;
  r.frames = src->acked() * 2;  // each round trip = ping + echo on the wire
  r.frames_per_sec = static_cast<double>(r.frames) / elapsed_s;
  r.rx_copies =
      metric_value(*pt_a, ".rx_copies") + metric_value(*pt_b, ".rx_copies");
  r.tx_copies =
      metric_value(*pt_a, ".tx_copies") + metric_value(*pt_b, ".tx_copies");
  r.rx_splices =
      metric_value(*pt_a, ".rx_splices") + metric_value(*pt_b, ".rx_splices");
  r.snapshot_json = mon_b->snapshot_json();
  a.stop();
  b.stop();
  return r;
}

/// Local-bus round trips; returns rx_copies summed over both transports
/// (the zero-copy invariant demands exactly 0).
std::int64_t local_bus_round_trip(std::uint64_t total) {
  pt::LocalBus bus;
  core::Executive a(core::ExecutiveConfig{.node_id = 1, .name = "a"});
  core::Executive b(core::ExecutiveConfig{.node_id = 2, .name = "b"});
  auto ta = std::make_unique<pt::LocalBusTransport>(bus);
  auto tb = std::make_unique<pt::LocalBusTransport>(bus);
  pt::LocalBusTransport* pt_a = ta.get();
  pt::LocalBusTransport* pt_b = tb.get();
  (void)a.install(std::move(ta), "pt_local");
  (void)b.install(std::move(tb), "pt_local");
  (void)a.set_route(2, pt_a->tid());
  (void)b.set_route(1, pt_b->tid());

  auto echo = std::make_unique<EchoDevice>();
  echo->enable_inplace_reply();
  (void)b.install(std::move(echo), "echo");
  auto source = std::make_unique<FloodSource>();
  FloodSource* src = source.get();
  src->enable_inplace_resend();
  (void)a.install(std::move(source), "src");
  const auto proxy =
      a.register_remote(2, b.tid_of("echo").value(), "echo").value();
  (void)a.enable_all();
  (void)b.enable_all();
  a.start();
  b.start();

  src->configure_run(proxy, kPayloadBytes, total, /*window=*/16);
  src->begin();
  if (!src->wait_done(std::chrono::seconds(60))) {
    std::fprintf(stderr, "warning: local run acked %llu of %llu\n",
                 static_cast<unsigned long long>(src->acked()),
                 static_cast<unsigned long long>(total));
  }
  const std::int64_t copies =
      metric_value(*pt_a, ".rx_copies") + metric_value(*pt_b, ".rx_copies") +
      metric_value(*pt_a, ".tx_copies") + metric_value(*pt_b, ".tx_copies");
  a.stop();
  b.stop();
  return copies;
}

int run(int argc, const char* const* argv) {
  CliParser cli;
  cli.flag("tcp-calls", "TCP round trips per arm", std::int64_t{20000});
  cli.flag("local-calls", "local-bus round trips", std::int64_t{5000});
  cli.flag("window", "round trips kept in flight", std::int64_t{256});
  cli.flag("reps", "repetitions per TCP arm (median-of)", std::int64_t{3});
  if (Status st = cli.parse(argc, argv); !st.is_ok()) {
    std::fprintf(stderr, "%s\n%s", st.to_string().c_str(),
                 cli.usage("zerocopy_ablation").c_str());
    return 1;
  }
  const auto tcp_calls = static_cast<std::uint64_t>(cli.get_int("tcp-calls"));
  const auto local_calls =
      static_cast<std::uint64_t>(cli.get_int("local-calls"));
  const auto window = static_cast<std::uint32_t>(
      std::max<std::int64_t>(cli.get_int("window"), 1));
  const auto reps = static_cast<unsigned>(
      std::max<std::int64_t>(cli.get_int("reps"), 1));

  std::printf("=== Zero-copy pipeline ablation ===\n\n");
  std::printf("-- 2-node TCP closed loop (%zu B payload, window %u) --\n",
              kPayloadBytes, window);
  // Median-of-reps per arm: scheduler jitter on small boxes produces
  // one-off throughput spikes in either direction, and best-of would
  // crown whichever arm got luckier rather than the steady state.
  std::vector<TcpResult> copy_runs;
  std::vector<TcpResult> zc_runs;
  for (unsigned rep = 0; rep < reps; ++rep) {
    copy_runs.push_back(tcp_closed_loop(false, tcp_calls, window));
    zc_runs.push_back(tcp_closed_loop(true, tcp_calls, window));
  }
  const auto median = [](std::vector<TcpResult>& runs) {
    std::sort(runs.begin(), runs.end(),
              [](const TcpResult& a, const TcpResult& b) {
                return a.frames_per_sec < b.frames_per_sec;
              });
    return runs[runs.size() / 2];
  };
  TcpResult copy_arm = median(copy_runs);
  TcpResult zc_arm = median(zc_runs);
  const double speedup = copy_arm.frames_per_sec > 0
                             ? zc_arm.frames_per_sec / copy_arm.frames_per_sec
                             : 0;
  const auto per_frame = [](std::int64_t copies, std::uint64_t frames) {
    return frames > 0 ? static_cast<double>(copies) /
                            static_cast<double>(frames)
                      : 0.0;
  };
  std::printf("%-30s %14.0f frames/s  (%.2f rx + %.2f tx copies/frame)\n",
              "copy path (zero_copy=0)", copy_arm.frames_per_sec,
              per_frame(copy_arm.rx_copies, copy_arm.frames),
              per_frame(copy_arm.tx_copies, copy_arm.frames));
  std::printf("%-30s %14.0f frames/s  (%.2f rx + %.2f tx copies/frame, "
              "%lld splices)\n",
              "zero-copy pipeline", zc_arm.frames_per_sec,
              per_frame(zc_arm.rx_copies, zc_arm.frames),
              per_frame(zc_arm.tx_copies, zc_arm.frames),
              static_cast<long long>(zc_arm.rx_splices));
  std::printf("%-30s %14.2fx\n", "speedup", speedup);

  std::printf("\n-- local-bus round trip (%llu calls) --\n",
              static_cast<unsigned long long>(local_calls));
  const std::int64_t local_copies = local_bus_round_trip(local_calls);
  const bool local_zero = local_copies == 0;
  std::printf("rx+tx copies: %lld -> %s\n",
              static_cast<long long>(local_copies),
              local_zero ? "PASS (zero-copy invariant holds)" : "FAIL");

  if (std::FILE* f = std::fopen("BENCH_zerocopy.json", "w")) {
    std::fprintf(
        f,
        "{\n"
        "  \"tcp\": {\n"
        "    \"payload_bytes\": %zu,\n"
        "    \"window\": %u,\n"
        "    \"round_trips\": %llu,\n"
        "    \"copy_frames_per_sec\": %.0f,\n"
        "    \"zerocopy_frames_per_sec\": %.0f,\n"
        "    \"speedup\": %.3f,\n"
        "    \"copy_arm\": {\"rx_copies\": %lld, \"tx_copies\": %lld},\n"
        "    \"zerocopy_arm\": {\"rx_copies\": %lld, \"tx_copies\": %lld, "
        "\"rx_splices\": %lld}\n"
        "  },\n"
        "  \"local_bus\": {\n"
        "    \"round_trips\": %llu,\n"
        "    \"rx_tx_copies\": %lld\n"
        "  },\n"
        "  \"obs_snapshot_zerocopy_node_b\": %s\n"
        "}\n",
        kPayloadBytes, window, static_cast<unsigned long long>(tcp_calls),
        copy_arm.frames_per_sec, zc_arm.frames_per_sec, speedup,
        static_cast<long long>(copy_arm.rx_copies),
        static_cast<long long>(copy_arm.tx_copies),
        static_cast<long long>(zc_arm.rx_copies),
        static_cast<long long>(zc_arm.tx_copies),
        static_cast<long long>(zc_arm.rx_splices),
        static_cast<unsigned long long>(local_calls),
        static_cast<long long>(local_copies),
        zc_arm.snapshot_json.empty() ? "{}" : zc_arm.snapshot_json.c_str());
    std::fclose(f);
    std::printf("\nwrote BENCH_zerocopy.json\n");
  }
  return local_zero ? 0 : 1;
}

}  // namespace
}  // namespace xdaq::bench

int main(int argc, char** argv) { return xdaq::bench::run(argc, argv); }
