// core_scaling.cpp - multi-core executive throughput vs. shard count.
//
// The paper's executive runs ONE loop of control; this repo shards it
// into N affinity-partitioned dispatch loops. This bench measures what
// that buys: a fixed batch of messages is posted to a set of worker
// devices whose handlers each block for --service-us (modelling the
// synchronous device work - IOP waits, driver ioctls, disk pokes - that
// motivates multiple loops in the first place), and the wall time to
// drain the batch is taken at 1, 2 and 4 shards. Handlers on different
// shards overlap their blocking service time, so ideal scaling is linear
// in N until shards outnumber runnable devices.
//
// Blocking service time (sleep) rather than a CPU spin is deliberate:
// the bench then measures the executive's ability to OVERLAP handler
// latency, which holds on any host - including single-core CI boxes
// where N spinning shards cannot beat one (see EXPERIMENTS.md).
//
// A separate zero-work arm at shards=1 records raw single-shard
// dispatch throughput so successive revisions can spot hot-path
// regressions hiding under the sleeps.
//
// Output: stdout table + BENCH_cores.json (medians, per-rep samples,
// speedups, and the 4-shard arm's metrics snapshot - exec.shard*.*,
// sched.*, pool.* - embedded). Exits nonzero when the 2-shard speedup
// misses the 1.6x floor; the sleep-based design keeps that assertion
// meaningful even for the short bench_smoke run.
#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/monitor_device.hpp"
#include "i2o/wire.hpp"
#include "util/cli.hpp"

namespace xdaq::bench {
namespace {

constexpr std::uint16_t kXfnWork = 0x0077;

/// Sleeps `service` per message - a stand-in for the blocking device
/// work a real driver handler performs - then counts the arrival.
class SleepWorker final : public core::Device {
 public:
  explicit SleepWorker(std::chrono::microseconds service)
      : Device("SleepWorker"), service_(service) {
    bind(i2o::OrgId::kBench, kXfnWork,
         [this](const core::MessageContext&) {
           if (service_.count() > 0) {
             std::this_thread::sleep_for(service_);
           }
           handled_.fetch_add(1, std::memory_order_relaxed);
         });
  }
  [[nodiscard]] std::uint64_t handled() const {
    return handled_.load(std::memory_order_relaxed);
  }

 private:
  std::chrono::microseconds service_;
  std::atomic<std::uint64_t> handled_{0};
};

Result<mem::FrameRef> make_work(core::Executive& exec, i2o::Tid target) {
  auto frame = exec.alloc_frame(64, /*is_private=*/true);
  if (!frame.is_ok()) {
    return frame;
  }
  i2o::FrameHeader hdr;
  hdr.function = static_cast<std::uint8_t>(i2o::Function::Private);
  hdr.organization = static_cast<std::uint16_t>(i2o::OrgId::kBench);
  hdr.xfunction = kXfnWork;
  hdr.target = target;
  hdr.initiator = i2o::kNullTid;  // fire-and-forget: no reply path
  if (Status st = i2o::encode_header(hdr, frame.value().bytes());
      !st.is_ok()) {
    return st;
  }
  return frame;
}

/// One measured drain: post `total` messages round-robin across the
/// workers, then wall-time how long the N dispatch threads take to
/// retire them all. Returns messages per second; when `snapshot_json`
/// is non-null it receives the node's metrics dump taken at the end.
double run_arm(std::size_t shards, std::uint64_t total,
               std::chrono::microseconds service, std::size_t workers,
               std::string* snapshot_json) {
  core::ExecutiveConfig cfg;
  cfg.name = "bench";
  cfg.node_id = 1;
  cfg.shards = shards;
  cfg.dispatch_batch = 16;
  cfg.inbound_drain = 256;
  cfg.inbound_capacity = 16384;
  cfg.handler_deadline = std::chrono::milliseconds(250);
  core::Executive exec(cfg);

  std::vector<SleepWorker*> raw;
  std::vector<i2o::Tid> tids;
  for (std::size_t w = 0; w < workers; ++w) {
    auto dev = std::make_unique<SleepWorker>(service);
    raw.push_back(dev.get());
    tids.push_back(
        exec.install(std::move(dev), "w" + std::to_string(w)).value());
  }
  core::MonitorDevice* mon = nullptr;
  if (snapshot_json != nullptr) {
    auto monitor = std::make_unique<core::MonitorDevice>();
    mon = monitor.get();
    (void)exec.install(std::move(monitor), "monitor");
  }
  (void)exec.enable_all();

  std::vector<mem::FrameRef> frames;
  frames.reserve(total);
  for (std::uint64_t i = 0; i < total; ++i) {
    auto frame = make_work(exec, tids[i % tids.size()]);
    if (!frame.is_ok()) {
      break;
    }
    frames.push_back(std::move(frame).value());
  }

  const auto handled = [&] {
    std::uint64_t sum = 0;
    for (const SleepWorker* w : raw) {
      sum += w->handled();
    }
    return sum;
  };

  // Windowed posting: post_batch CONSUMES its whole span - frames past
  // the accepted prefix are released back to the pool, not left for a
  // retry - so never offer more than the inbound queues can take.
  // Keeping in-flight under half the capacity guarantees full accepts.
  const std::size_t window = cfg.inbound_capacity / 2;
  exec.start();
  const std::uint64_t t0 = now_ns();
  std::size_t offered = 0;
  std::uint64_t accepted = 0;
  while (offered < frames.size()) {
    const std::uint64_t done_now = handled();
    const std::size_t inflight = offered - static_cast<std::size_t>(done_now);
    if (inflight >= window) {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
      continue;
    }
    const std::size_t want =
        std::min(window - inflight, frames.size() - offered);
    accepted += exec.post_batch(
        std::span<mem::FrameRef>(frames).subspan(offered, want));
    offered += want;
  }
  while (handled() < accepted) {
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  const double elapsed_s = static_cast<double>(now_ns() - t0) / 1e9;
  if (accepted < total) {
    std::fprintf(stderr, "warning: inbound backpressure dropped %llu frames\n",
                 static_cast<unsigned long long>(total - accepted));
  }
  if (mon != nullptr) {
    *snapshot_json = mon->snapshot_json();
  }
  exec.stop();
  return static_cast<double>(accepted) / elapsed_s;
}

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

int run(int argc, const char* const* argv) {
  CliParser cli;
  cli.flag("msgs", "messages drained per rep", std::int64_t{2000});
  cli.flag("service-us", "blocking service time per message (us)",
           std::int64_t{200});
  cli.flag("workers", "worker devices (round-robin sharded)",
           std::int64_t{8});
  cli.flag("reps", "repetitions per arm (median)", std::int64_t{5});
  cli.flag("raw-msgs", "messages for the zero-work single-shard arm",
           std::int64_t{100000});
  if (Status st = cli.parse(argc, argv); !st.is_ok()) {
    std::fprintf(stderr, "%s\n%s", st.to_string().c_str(),
                 cli.usage("core_scaling").c_str());
    return 1;
  }
  const auto msgs = static_cast<std::uint64_t>(cli.get_int("msgs"));
  const auto service = std::chrono::microseconds(cli.get_int("service-us"));
  const auto workers = static_cast<std::size_t>(
      std::max<std::int64_t>(cli.get_int("workers"), 1));
  const auto reps = static_cast<unsigned>(
      std::max<std::int64_t>(cli.get_int("reps"), 1));
  const auto raw_msgs = static_cast<std::uint64_t>(cli.get_int("raw-msgs"));

  std::printf("=== Core scaling: sharded executive, %zu blocking workers "
              "(%lld us service) ===\n\n",
              workers, static_cast<long long>(service.count()));

  const std::size_t arms[] = {1, 2, 4};
  std::vector<double> med(3);
  std::vector<std::vector<double>> samples(3);
  std::string snapshot_json;
  for (std::size_t a = 0; a < 3; ++a) {
    for (unsigned r = 0; r < reps; ++r) {
      // Snapshot the 4-shard arm's last rep: steals, per-shard
      // dispatch counts and scheduler depths with all shards live.
      const bool snap = (arms[a] == 4 && r == reps - 1);
      samples[a].push_back(run_arm(arms[a], msgs, service, workers,
                                   snap ? &snapshot_json : nullptr));
    }
    med[a] = median(samples[a]);
    std::printf("shards=%zu %14.0f msg/s (median of %u)\n", arms[a],
                med[a], reps);
  }

  const double speedup2 = med[0] > 0 ? med[1] / med[0] : 0.0;
  const double speedup4 = med[0] > 0 ? med[2] / med[0] : 0.0;
  std::printf("\nspeedup 2 shards: %.2fx (floor 1.60x)\n", speedup2);
  std::printf("speedup 4 shards: %.2fx (ideal 4.00x)\n", speedup4);

  // Raw hot-path reference: no service time, one shard, so revisions
  // can compare single-shard dispatch cost across benchmark files.
  const double raw = run_arm(1, raw_msgs, std::chrono::microseconds{0},
                             workers, nullptr);
  std::printf("raw single-shard (no service): %14.0f msg/s\n", raw);

  if (std::FILE* f = std::fopen("BENCH_cores.json", "w")) {
    auto arr = [](const std::vector<double>& v) {
      std::string s = "[";
      for (std::size_t i = 0; i < v.size(); ++i) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%s%.0f", i ? ", " : "", v[i]);
        s += buf;
      }
      return s + "]";
    };
    std::fprintf(f,
                 "{\n"
                 "  \"msgs\": %llu,\n"
                 "  \"service_us\": %lld,\n"
                 "  \"workers\": %zu,\n"
                 "  \"reps\": %u,\n"
                 "  \"shards1_msgs_per_sec\": %.0f,\n"
                 "  \"shards2_msgs_per_sec\": %.0f,\n"
                 "  \"shards4_msgs_per_sec\": %.0f,\n"
                 "  \"shards1_samples\": %s,\n"
                 "  \"shards2_samples\": %s,\n"
                 "  \"shards4_samples\": %s,\n"
                 "  \"speedup_2\": %.3f,\n"
                 "  \"speedup_4\": %.3f,\n"
                 "  \"floor_2\": 1.6,\n"
                 "  \"raw_single_shard_msgs_per_sec\": %.0f,\n"
                 "  \"snapshot_shards4\": %s\n"
                 "}\n",
                 static_cast<unsigned long long>(msgs),
                 static_cast<long long>(service.count()), workers, reps,
                 med[0], med[1], med[2], arr(samples[0]).c_str(),
                 arr(samples[1]).c_str(), arr(samples[2]).c_str(),
                 speedup2, speedup4, raw,
                 snapshot_json.empty() ? "{}" : snapshot_json.c_str());
    std::fclose(f);
    std::printf("wrote BENCH_cores.json\n");
  }

  if (speedup2 < 1.6) {
    std::fprintf(stderr,
                 "FAIL: 2-shard speedup %.2fx is below the 1.6x floor\n",
                 speedup2);
    return 1;
  }
  std::printf("\nshape check: 2-shard speedup >= 1.6x -> PASS\n");
  return 0;
}

}  // namespace
}  // namespace xdaq::bench

int main(int argc, char** argv) { return xdaq::bench::run(argc, argv); }
