// cluster_scaling.cpp - weak-scaling event builder at 8..64 in-process
// nodes.
//
// The paper's deployment wires a handful of nodes; the cluster fabric
// (gossip membership + TiD->node routing) exists so the same executive
// scales to a processing cluster. This bench stands up the n x m
// event builder at 8, 16, 32 and 64 nodes on one host and measures
// aggregate assembled bandwidth. Readout units are PACED (one Allocate
// batch every --pace-us) so each node contributes a fixed trigger rate:
// on a single core the aggregate is then limited by the fabric's
// dispatch and wire paths, not by how fast one free-running RU can
// spin. Ideal weak scaling is bandwidth proportional to the readout
// count; the committed floor asserts the 64-node aggregate at >= 4x
// the 8-node figure (ideal is 8x - the readout count ratio).
//
// The 64-node arm embeds the event-manager node's metrics snapshot in
// BENCH_cluster.json so a regression in the relay/dispatch counters is
// visible next to the throughput it cost.
//
// The run also exercises the relay fabric's loop guard as a CI
// invariant: a deliberately looped route (two nodes each claiming the
// other is the way to an unreachable third) must burn the envelope TTL
// and drop it - never deliver, never circulate. Exit is nonzero when
// the guard fails or the scaling floor is missed.
#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/monitor_device.hpp"
#include "core/requester.hpp"
#include "daq/topology.hpp"
#include "pt/cluster.hpp"
#include "util/cli.hpp"

namespace xdaq::bench {
namespace {

struct ArmParams {
  std::size_t nodes = 8;
  std::uint64_t events = 240;
  std::size_t fragment_bytes = 512;
  std::uint64_t pace_us = 32000;
  std::uint32_t batch = 8;
  std::size_t recv_buffers = 256;
  std::size_t buffer_bytes = 4096;
};

struct ArmResult {
  double mbytes_per_s = 0;
  double events_per_s = 0;
  bool complete = false;
};

/// Readouts take half the nodes, the event manager one, builders the
/// rest: 8 -> 4x3, 64 -> 32x31.
std::size_t readouts_for(std::size_t nodes) { return nodes / 2; }

ArmResult run_arm(const ArmParams& a, std::string* snapshot_json) {
  daq::EventBuilderParams p;
  p.readouts = readouts_for(a.nodes);
  p.builders = a.nodes - 1 - p.readouts;
  p.fragment_bytes = a.fragment_bytes;
  p.max_events = a.events;
  p.batch = a.batch;
  p.pace_ns = a.pace_us * 1000;

  pt::ClusterConfig cfg;
  cfg.nodes = a.nodes;
  // Task-mode GM with small receive rings: the default 300 KiB buffers
  // exist for jumbo frames; at 64 nodes they would cost ~600 MB.
  cfg.peer.mode = core::TransportDevice::Mode::Task;
  cfg.peer.receive_buffers = a.recv_buffers;
  cfg.peer.buffer_bytes = a.buffer_bytes;
  pt::Cluster cluster(cfg);

  auto topo = daq::EventBuilderTopology::build(cluster, p);
  if (!topo.is_ok()) {
    std::fprintf(stderr, "topology build failed: %s\n",
                 topo.status().to_string().c_str());
    return {};
  }
  core::MonitorDevice* mon = nullptr;
  if (snapshot_json != nullptr) {
    auto monitor = std::make_unique<core::MonitorDevice>();
    mon = monitor.get();
    // The EVM node sees every Allocate round trip - the busiest node.
    (void)cluster.install(p.readouts + p.builders, std::move(monitor),
                          "monitor");
  }
  if (Status st = cluster.enable_all(); !st.is_ok()) {
    std::fprintf(stderr, "enable failed: %s\n", st.to_string().c_str());
    return {};
  }
  const std::uint64_t t0 = now_ns();
  cluster.start_all();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(100);
  while (!topo.value().complete() &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const double secs = static_cast<double>(now_ns() - t0) / 1e9;
  ArmResult r;
  r.complete = topo.value().complete();
  r.events_per_s = static_cast<double>(topo.value().events_built()) / secs;
  r.mbytes_per_s = static_cast<double>(topo.value().bytes_built()) / secs / 1e6;
  if (mon != nullptr) {
    *snapshot_json = mon->snapshot_json();
  }
  cluster.stop_all();
  return r;
}

/// CI invariant: a routing loop must die by TTL, not circulate. Two
/// nodes each claim the other relays to node 2, which has no transport
/// at all; the envelope ping-pongs until a hop sees TTL <= 1 and drops.
bool relay_loop_guard_holds() {
  pt::ClusterConfig cfg;
  cfg.nodes = 3;
  cfg.full_mesh = false;
  pt::Cluster cluster(cfg);
  (void)cluster.node(0).set_route(cluster.node_id(1),
                                  cluster.transport(0).tid());
  (void)cluster.node(1).set_route(cluster.node_id(0),
                                  cluster.transport(1).tid());
  cluster.relay_route(0, 2, 1);
  cluster.relay_route(1, 2, 0);

  auto req = std::make_unique<core::Requester>();
  core::Requester* req_raw = req.get();
  (void)cluster.install(0, std::move(req), "req");
  auto proxy = cluster.node(0).resolver().resolve(cluster.node_id(2),
                                                  i2o::kExecutiveTid);
  if (!proxy.is_ok()) {
    return false;
  }
  (void)cluster.enable_all();
  cluster.start_all();

  auto reply = req_raw->call_private(
      proxy.value(), i2o::OrgId::kBench, 0x0042, {},
      core::CallOptions{.timeout = std::chrono::milliseconds(200)});
  if (reply.is_ok()) {
    return false;  // nothing should ever answer
  }
  const auto counter = [&](std::size_t i, const char* name) {
    return cluster.node(i)
        .metrics()
        .counter(std::string("cluster.relay.") + name)
        .value();
  };
  const auto until = std::chrono::steady_clock::now() +
                     std::chrono::seconds(2);
  while (counter(0, "dropped_ttl") + counter(1, "dropped_ttl") == 0) {
    if (std::chrono::steady_clock::now() > until) {
      return false;  // the envelope never died
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // The dark node must never have seen a delivery.
  return counter(2, "delivered") == 0;
}

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

int run(int argc, const char* const* argv) {
  CliParser cli;
  cli.flag("events", "events assembled per rep", std::int64_t{240})
      .flag("reps", "repetitions per arm (median)", std::int64_t{5})
      .flag("pace-us", "per-RU Allocate period (us)", std::int64_t{32000})
      .flag("fragment", "fragment payload bytes", std::int64_t{512})
      .flag("batch", "events per Allocate batch", std::int64_t{8})
      .flag("recv-buffers", "GM receive ring depth per node",
            std::int64_t{256})
      .flag("buffer-bytes", "GM receive buffer size", std::int64_t{4096});
  if (Status st = cli.parse(argc, argv); !st.is_ok()) {
    std::fprintf(stderr, "%s\n%s", st.to_string().c_str(),
                 cli.usage("cluster_scaling").c_str());
    return 1;
  }
  ArmParams base;
  base.events = static_cast<std::uint64_t>(cli.get_int("events"));
  base.pace_us = static_cast<std::uint64_t>(cli.get_int("pace-us"));
  base.fragment_bytes = static_cast<std::size_t>(cli.get_int("fragment"));
  base.batch = static_cast<std::uint32_t>(cli.get_int("batch"));
  base.recv_buffers = static_cast<std::size_t>(cli.get_int("recv-buffers"));
  base.buffer_bytes = static_cast<std::size_t>(cli.get_int("buffer-bytes"));
  const auto reps = static_cast<unsigned>(
      std::max<std::int64_t>(cli.get_int("reps"), 1));

  std::printf("=== Cluster scaling: paced event builder, %llu events/rep, "
              "pace %llu us, fragment %zu B ===\n\n",
              static_cast<unsigned long long>(base.events),
              static_cast<unsigned long long>(base.pace_us),
              base.fragment_bytes);

  const std::size_t arms[] = {8, 16, 32, 64};
  std::vector<double> med_mbps(4);
  std::vector<double> med_evps(4);
  std::vector<std::vector<double>> samples(4);
  std::string snapshot_json;
  bool all_complete = true;
  std::printf("%8s %8s %8s %14s %12s\n", "nodes", "RUs", "BUs",
              "events/s", "MB/s");
  for (std::size_t a = 0; a < 4; ++a) {
    ArmParams ap = base;
    ap.nodes = arms[a];
    std::vector<double> evps;
    for (unsigned r = 0; r < reps; ++r) {
      const bool snap = (arms[a] == 64 && r == reps - 1);
      const ArmResult res = run_arm(ap, snap ? &snapshot_json : nullptr);
      all_complete = all_complete && res.complete;
      samples[a].push_back(res.mbytes_per_s);
      evps.push_back(res.events_per_s);
    }
    med_mbps[a] = median(samples[a]);
    med_evps[a] = median(evps);
    std::printf("%8zu %8zu %8zu %14.0f %12.2f\n", arms[a],
                readouts_for(arms[a]), arms[a] - 1 - readouts_for(arms[a]),
                med_evps[a], med_mbps[a]);
  }

  const double scaling = med_mbps[0] > 0 ? med_mbps[3] / med_mbps[0] : 0.0;
  std::printf("\n64-node / 8-node aggregate bandwidth: %.2fx "
              "(floor 4.00x, ideal %.2fx)\n",
              scaling,
              static_cast<double>(readouts_for(64)) /
                  static_cast<double>(readouts_for(8)));

  const bool guard_ok = relay_loop_guard_holds();
  std::printf("relay loop guard (TTL drops a looped route): %s\n",
              guard_ok ? "PASS" : "FAIL");

  if (std::FILE* f = std::fopen("BENCH_cluster.json", "w")) {
    auto arr = [](const std::vector<double>& v) {
      std::string s = "[";
      for (std::size_t i = 0; i < v.size(); ++i) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%s%.2f", i ? ", " : "", v[i]);
        s += buf;
      }
      return s + "]";
    };
    std::fprintf(f,
                 "{\n"
                 "  \"events\": %llu,\n"
                 "  \"pace_us\": %llu,\n"
                 "  \"fragment_bytes\": %zu,\n"
                 "  \"batch\": %u,\n"
                 "  \"reps\": %u,\n"
                 "  \"nodes8_mbytes_per_sec\": %.2f,\n"
                 "  \"nodes16_mbytes_per_sec\": %.2f,\n"
                 "  \"nodes32_mbytes_per_sec\": %.2f,\n"
                 "  \"nodes64_mbytes_per_sec\": %.2f,\n"
                 "  \"nodes8_events_per_sec\": %.0f,\n"
                 "  \"nodes16_events_per_sec\": %.0f,\n"
                 "  \"nodes32_events_per_sec\": %.0f,\n"
                 "  \"nodes64_events_per_sec\": %.0f,\n"
                 "  \"nodes8_samples\": %s,\n"
                 "  \"nodes16_samples\": %s,\n"
                 "  \"nodes32_samples\": %s,\n"
                 "  \"nodes64_samples\": %s,\n"
                 "  \"scaling_64_over_8\": %.3f,\n"
                 "  \"floor_64_over_8\": 4.0,\n"
                 "  \"relay_loop_guard\": %s,\n"
                 "  \"snapshot_nodes64\": %s\n"
                 "}\n",
                 static_cast<unsigned long long>(base.events),
                 static_cast<unsigned long long>(base.pace_us),
                 base.fragment_bytes, base.batch, reps, med_mbps[0],
                 med_mbps[1], med_mbps[2], med_mbps[3], med_evps[0],
                 med_evps[1], med_evps[2], med_evps[3],
                 arr(samples[0]).c_str(), arr(samples[1]).c_str(),
                 arr(samples[2]).c_str(), arr(samples[3]).c_str(), scaling,
                 guard_ok ? "true" : "false",
                 snapshot_json.empty() ? "{}" : snapshot_json.c_str());
    std::fclose(f);
    std::printf("wrote BENCH_cluster.json\n");
  }

  if (!all_complete) {
    std::fprintf(stderr, "FAIL: an arm timed out before assembling all "
                         "events\n");
    return 1;
  }
  if (!guard_ok) {
    std::fprintf(stderr, "FAIL: relay loop guard did not drop the looped "
                         "envelope\n");
    return 1;
  }
  if (scaling < 4.0) {
    std::fprintf(stderr,
                 "FAIL: 64-node aggregate %.2fx the 8-node figure is below "
                 "the 4.0x floor\n",
                 scaling);
    return 1;
  }
  std::printf("\nshape check: 64-node >= 4x 8-node aggregate -> PASS\n");
  return 0;
}

}  // namespace
}  // namespace xdaq::bench

int main(int argc, char** argv) { return xdaq::bench::run(argc, argv); }
