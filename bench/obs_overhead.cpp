// obs_overhead.cpp - cost of the observability layer on the hot path.
//
// The obs layer promises "relaxed-atomic updates cheap enough for the
// dispatch loop". This bench holds it to that: the same deterministic
// closed-loop post -> dispatch flood as batch_ablation, run twice -
// instrumented (the default: dispatch-cost histogram armed, hop-trace
// null checks live) and with observability latched off before the
// executive is built (XDAQ_OBS_OFF semantics via obs::set_enabled). The
// executive counters themselves stay on in both arms; they replaced the
// pre-obs ad-hoc stats and are part of the baseline, not the overhead.
//
// Full runs (>= 100k calls) hard-fail if the instrumented arm loses more
// than 5% throughput; short smoke runs only report PASS/CHECK (tiny call
// counts are all warm-up noise). Results go to stdout and BENCH_obs.json,
// with the instrumented node's own metrics snapshot embedded - the bench
// doubles as a demo of the MonitorDevice JSON dump hook.
#include <algorithm>
#include <cstdio>
#include <string>

#include "bench_common.hpp"
#include "core/monitor_device.hpp"
#include "i2o/wire.hpp"
#include "obs/metrics.hpp"
#include "util/cli.hpp"

namespace xdaq::bench {
namespace {

/// Counts arrivals; no reply (frames carry a null initiator).
class CountSink final : public core::Device {
 public:
  CountSink() : Device("CountSink") {
    bind(i2o::OrgId::kBench, kXfnPing,
         [this](const core::MessageContext&) {
           count_.store(count_.load(std::memory_order_relaxed) + 1,
                        std::memory_order_relaxed);
         });
  }
  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> count_{0};
};

constexpr std::size_t kPayloadBytes = 64;

Result<mem::FrameRef> make_ping(core::Executive& exec, i2o::Tid target) {
  auto frame = exec.alloc_frame(kPayloadBytes, /*is_private=*/true);
  if (!frame.is_ok()) {
    return frame;
  }
  i2o::FrameHeader hdr;
  hdr.function = static_cast<std::uint8_t>(i2o::Function::Private);
  hdr.organization = static_cast<std::uint16_t>(i2o::OrgId::kBench);
  hdr.xfunction = kXfnPing;
  hdr.target = target;
  hdr.initiator = i2o::kNullTid;  // fire-and-forget: no reply path
  if (Status st = i2o::encode_header(hdr, frame.value().bytes());
      !st.is_ok()) {
    return st;
  }
  return frame;
}

/// Closed-loop local post -> dispatch throughput (messages per second),
/// single-threaded for determinism (see batch_ablation.cpp for why). When
/// `instrumented`, the executive arms its dispatch-cost histogram and hop
/// tracing at construction; otherwise obs is latched off first, the
/// XDAQ_OBS_OFF fast path. `snapshot_json`, when non-null, receives the
/// node's MonitorDevice JSON dump after the run.
double local_throughput(bool instrumented, std::uint64_t total,
                        std::size_t burst, std::string* snapshot_json) {
  obs::set_enabled(instrumented);
  core::ExecutiveConfig cfg;
  cfg.name = "bench";
  cfg.node_id = 1;
  cfg.dispatch_batch = 128;
  cfg.inbound_drain = 256;
  cfg.inbound_capacity = 8192;
  cfg.handler_deadline = std::chrono::milliseconds(250);
  core::Executive exec(cfg);
  auto sink = std::make_unique<CountSink>();
  CountSink* sink_raw = sink.get();
  const auto sink_tid = exec.install(std::move(sink), "sink").value();
  auto monitor = std::make_unique<core::MonitorDevice>();
  core::MonitorDevice* mon = monitor.get();
  (void)exec.install(std::move(monitor), "monitor");
  (void)exec.enable_all();

  std::vector<mem::FrameRef> frames;
  frames.reserve(total);
  for (std::uint64_t i = 0; i < total; ++i) {
    auto frame = make_ping(exec, sink_tid);
    if (!frame.is_ok()) {
      break;
    }
    frames.push_back(std::move(frame).value());
  }

  const std::uint64_t t0 = now_ns();
  std::size_t posted = 0;
  while (posted < frames.size()) {
    const std::size_t want =
        std::min<std::size_t>(burst, frames.size() - posted);
    posted += exec.post_batch(
        std::span<mem::FrameRef>(frames).subspan(posted, want));
    while (exec.run_once()) {
    }
  }
  while (exec.run_once()) {
  }
  const double elapsed_s = static_cast<double>(now_ns() - t0) / 1e9;
  if (snapshot_json != nullptr) {
    *snapshot_json = mon->snapshot_json();
  }
  obs::set_enabled(true);
  return static_cast<double>(sink_raw->count()) / elapsed_s;
}

/// Best-of-N: the closed loop is deterministic in work done, so the max
/// filters out OS jitter instead of averaging it in.
template <typename Fn>
double best_of(unsigned reps, Fn&& measure) {
  double best = 0;
  for (unsigned r = 0; r < reps; ++r) {
    best = std::max(best, measure());
  }
  return best;
}

int run(int argc, const char* const* argv) {
  CliParser cli;
  cli.flag("calls", "messages posted per arm", std::int64_t{200000});
  cli.flag("burst", "frames per post_batch call", std::int64_t{32});
  cli.flag("reps", "repetitions per arm (best-of)", std::int64_t{5});
  if (Status st = cli.parse(argc, argv); !st.is_ok()) {
    std::fprintf(stderr, "%s\n%s", st.to_string().c_str(),
                 cli.usage("obs_overhead").c_str());
    return 1;
  }
  const auto calls = static_cast<std::uint64_t>(cli.get_int("calls"));
  const auto burst = static_cast<std::size_t>(
      std::max<std::int64_t>(cli.get_int("burst"), 1));
  const auto reps = static_cast<unsigned>(
      std::max<std::int64_t>(cli.get_int("reps"), 1));

  std::printf("=== Observability overhead (local hot path) ===\n\n");
  std::string snapshot_json;
  const double base = best_of(
      reps, [&] { return local_throughput(false, calls, burst, nullptr); });
  const double inst = best_of(reps, [&] {
    return local_throughput(true, calls, burst, &snapshot_json);
  });
  const double overhead_pct =
      base > 0 ? (base - inst) / base * 100.0 : 0.0;

  std::printf("%-34s %14.0f msg/s\n", "baseline (XDAQ_OBS_OFF)", base);
  std::printf("%-34s %14.0f msg/s\n", "instrumented (histogram+trace)",
              inst);
  std::printf("%-34s %14.2f %%\n", "overhead", overhead_pct);

  const bool full_run = calls >= 100000;
  const bool within_budget = overhead_pct < 5.0;
  std::printf("\nshape check: overhead < 5%% -> %s\n",
              within_budget ? "PASS" : "CHECK");

  if (std::FILE* f = std::fopen("BENCH_obs.json", "w")) {
    std::fprintf(f,
                 "{\n"
                 "  \"baseline_msgs_per_sec\": %.0f,\n"
                 "  \"instrumented_msgs_per_sec\": %.0f,\n"
                 "  \"overhead_pct\": %.3f,\n"
                 "  \"budget_pct\": 5.0,\n"
                 "  \"calls\": %llu,\n"
                 "  \"burst\": %zu,\n"
                 "  \"reps\": %u,\n"
                 "  \"snapshot\": %s\n"
                 "}\n",
                 base, inst, overhead_pct,
                 static_cast<unsigned long long>(calls), burst, reps,
                 snapshot_json.empty() ? "{}" : snapshot_json.c_str());
    std::fclose(f);
    std::printf("wrote BENCH_obs.json\n");
  }

  if (full_run && !within_budget) {
    std::fprintf(stderr,
                 "FAIL: observability overhead %.2f%% exceeds the 5%% "
                 "budget on a full run\n",
                 overhead_pct);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace xdaq::bench

int main(int argc, char** argv) { return xdaq::bench::run(argc, argv); }
