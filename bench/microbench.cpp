// microbench.cpp - google-benchmark suite for the framework's hot-path
// primitives: frame encode/decode, pool allocation, scheduler operations,
// the SPSC ring, parameter lists, and the simulated fabric. These are the
// building blocks whose costs compose into Table 1's stages.
#include <benchmark/benchmark.h>

#include <vector>

#include "cluster/resolver.hpp"
#include "core/address_table.hpp"
#include "core/device.hpp"
#include "core/scheduler.hpp"
#include "gmsim/gmsim.hpp"
#include "i2o/chain.hpp"
#include "i2o/frame.hpp"
#include "i2o/paramlist.hpp"
#include "mem/pool.hpp"
#include "rmi/marshal.hpp"
#include "util/ring.hpp"

namespace xdaq {
namespace {

void BM_FrameEncodeHeader(benchmark::State& state) {
  i2o::FrameHeader hdr;
  hdr.function = static_cast<std::uint8_t>(i2o::Function::Private);
  hdr.organization = static_cast<std::uint16_t>(i2o::OrgId::kBench);
  hdr.xfunction = 1;
  hdr.target = 5;
  hdr.initiator = 6;
  std::vector<std::byte> buf(i2o::frame_bytes_for_payload(64, true));
  for (auto _ : state) {
    benchmark::DoNotOptimize(i2o::encode_header(hdr, buf));
  }
}
BENCHMARK(BM_FrameEncodeHeader);

void BM_FrameDecodeHeader(benchmark::State& state) {
  i2o::FrameHeader hdr;
  hdr.function = static_cast<std::uint8_t>(i2o::Function::Private);
  hdr.organization = static_cast<std::uint16_t>(i2o::OrgId::kBench);
  hdr.xfunction = 1;
  hdr.target = 5;
  std::vector<std::byte> buf(i2o::frame_bytes_for_payload(64, true));
  (void)i2o::encode_header(hdr, buf);
  for (auto _ : state) {
    benchmark::DoNotOptimize(i2o::decode_header(buf));
  }
}
BENCHMARK(BM_FrameDecodeHeader);

void BM_TablePoolAllocFree(benchmark::State& state) {
  mem::TablePool pool;
  const auto size = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto frame = pool.allocate(size);
    benchmark::DoNotOptimize(frame);
  }
}
BENCHMARK(BM_TablePoolAllocFree)->Arg(64)->Arg(1024)->Arg(65536);

void BM_SimplePoolAllocFree(benchmark::State& state) {
  mem::SimplePool pool;
  const auto size = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto frame = pool.allocate(size);
    benchmark::DoNotOptimize(frame);
  }
}
BENCHMARK(BM_SimplePoolAllocFree)->Arg(64)->Arg(1024)->Arg(65536);

void BM_SchedulerEnqueueNext(benchmark::State& state) {
  core::Scheduler sched;
  core::ScheduledItem item;
  item.header.target = 7;
  for (auto _ : state) {
    core::ScheduledItem copy;
    copy.header = item.header;
    sched.enqueue(3, std::move(copy));
    benchmark::DoNotOptimize(sched.next());
  }
}
BENCHMARK(BM_SchedulerEnqueueNext);

void BM_SchedulerRoundRobin(benchmark::State& state) {
  // Many devices with pending traffic: cost of one scheduling decision.
  core::Scheduler sched;
  const int devices = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    for (int d = 0; d < devices; ++d) {
      core::ScheduledItem item;
      item.header.target = static_cast<i2o::Tid>(d + 2);
      sched.enqueue(3, std::move(item));
    }
    state.ResumeTiming();
    while (auto it = sched.next()) {
      benchmark::DoNotOptimize(it);
    }
  }
}
BENCHMARK(BM_SchedulerRoundRobin)->Arg(4)->Arg(64);

void BM_SpscRingPushPop(benchmark::State& state) {
  SpscRing<std::uint64_t> ring(1024);
  std::uint64_t v = 0;
  for (auto _ : state) {
    (void)ring.try_push(v++);
    benchmark::DoNotOptimize(ring.try_pop());
  }
}
BENCHMARK(BM_SpscRingPushPop);

void BM_ParamListRoundTrip(benchmark::State& state) {
  const i2o::ParamList params{
      {"class", "EchoDevice"}, {"instance", "echo0"}, {"state", "Enabled"}};
  std::vector<std::byte> buf(i2o::param_list_bytes(params));
  for (auto _ : state) {
    (void)i2o::encode_param_list(params, buf);
    benchmark::DoNotOptimize(i2o::decode_param_list(buf));
  }
}
BENCHMARK(BM_ParamListRoundTrip);

class NullDevice final : public core::Device {
 public:
  NullDevice() : Device("Null") {}
};

void BM_AddressTableLookup(benchmark::State& state) {
  // Lookup cost with a populated table: the per-message routing step.
  core::AddressTable table;
  NullDevice dev;
  std::vector<i2o::Tid> tids;
  for (int i = 0; i < 256; ++i) {
    tids.push_back(table.allocate_local(&dev).value());
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.lookup(tids[i++ & 255]));
  }
}
BENCHMARK(BM_AddressTableLookup);

void BM_ProxyInternExisting(benchmark::State& state) {
  // Re-resolving an existing proxy through the resolver facade: the
  // receive-path cost per message (route lookup + shared-lock table hit).
  core::AddressTable table;
  NullDevice pt;
  const auto pt_tid = table.allocate_local(&pt).value();
  cluster::Resolver resolver(
      1, [&table](i2o::NodeId node, i2o::Tid remote, i2o::Tid via,
                  const std::string&) {
        return table.intern_proxy(node, remote, via);
      });
  resolver.routes().set_direct(7, pt_tid);
  (void)resolver.resolve(7, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(resolver.resolve(7, 42));
  }
}
BENCHMARK(BM_ProxyInternExisting);

void BM_ChainReassemble(benchmark::State& state) {
  // Full reassembly of a message split into 16 fragments.
  const std::size_t total = static_cast<std::size_t>(state.range(0));
  const std::size_t frag = total / 16;
  std::vector<std::vector<std::byte>> fragments;
  std::size_t off = 0;
  for (int i = 0; i < 16; ++i) {
    i2o::ChainHeader ch;
    ch.chain_id = 1;
    ch.index = static_cast<std::uint16_t>(i);
    ch.total = 16;
    ch.total_bytes = static_cast<std::uint32_t>(total);
    ch.offset = static_cast<std::uint32_t>(off);
    std::vector<std::byte> payload(i2o::kChainHeaderBytes + frag);
    i2o::encode_chain_header(ch, payload);
    fragments.push_back(std::move(payload));
    off += frag;
  }
  for (auto _ : state) {
    i2o::ChainReassembler r;
    for (const auto& f : fragments) {
      benchmark::DoNotOptimize(r.feed(5, f));
    }
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(total));
}
BENCHMARK(BM_ChainReassemble)->Arg(16 * 1024)->Arg(256 * 1024);

void BM_RmiMarshalArgs(benchmark::State& state) {
  for (auto _ : state) {
    rmi::Marshaller m;
    m.put_i64(42);
    m.put_string("method arguments");
    m.put_f64(3.14);
    benchmark::DoNotOptimize(m.bytes());
  }
}
BENCHMARK(BM_RmiMarshalArgs);

void BM_GmsimSendPoll(benchmark::State& state) {
  gmsim::Fabric fabric;
  auto a = fabric.open_port(1).value();
  auto b = fabric.open_port(2).value();
  const auto size = static_cast<std::size_t>(state.range(0));
  std::vector<std::byte> payload(size, std::byte{1});
  std::vector<std::byte> rx(size + 64);
  for (auto _ : state) {
    b->provide_receive_buffer(rx);
    (void)a->send(2, payload);
    benchmark::DoNotOptimize(b->poll());
  }
}
BENCHMARK(BM_GmsimSendPoll)->Arg(64)->Arg(4096);

}  // namespace
}  // namespace xdaq

BENCHMARK_MAIN();
