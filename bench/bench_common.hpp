// bench_common.hpp - shared machinery for the paper-reproduction benches.
//
// Reimplements the paper's blackbox setup (section 5): "a simple private
// device class that is instantiated on one node and continuously floods a
// remote instance of this class with messages. The second instance
// responds by replying to each received message with exactly the same
// content."
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <mutex>
#include <vector>

#include "core/device.hpp"
#include "core/executive.hpp"
#include "util/clock.hpp"
#include "util/stats.hpp"

namespace xdaq::bench {

inline constexpr std::uint16_t kXfnPing = 0x0001;

/// The responder half of the blackbox pair. Optionally stamps handler
/// entry/exit ticks (whitebox instrumentation, Table 1).
class EchoDevice final : public core::Device {
 public:
  EchoDevice() : Device("BenchEcho") {
    bind(i2o::OrgId::kBench, kXfnPing,
         [this](const core::MessageContext& ctx) {
           if (record_) {
             entry_ticks_.push_back(rdtsc());
           }
           if (inplace_) {
             (void)reply_inplace(ctx);
           } else {
             (void)frame_reply(ctx, ctx.payload);
           }
           if (record_) {
             exit_ticks_.push_back(rdtsc());
           }
         });
  }

  /// Reply by patching the delivered frame's header in place and sending
  /// the same pooled block back - no reply allocation, no payload copy.
  /// Only the handler owns the delivered frame, so the rewrite is safe;
  /// a private reply header is the same size as the request's, so the
  /// payload stays where it already is.
  void enable_inplace_reply() { inplace_ = true; }

  void enable_recording(std::size_t expected) {
    record_ = true;
    entry_ticks_.reserve(expected);
    exit_ticks_.reserve(expected);
  }
  [[nodiscard]] const std::vector<std::uint64_t>& entry_ticks() const {
    return entry_ticks_;
  }
  [[nodiscard]] const std::vector<std::uint64_t>& exit_ticks() const {
    return exit_ticks_;
  }

 private:
  Status reply_inplace(const core::MessageContext& ctx) {
    if (!ctx.frame.valid()) {
      return frame_reply(ctx, ctx.payload);
    }
    mem::FrameRef frame = ctx.frame;  // handle copy: refcount bump only
    const i2o::FrameHeader reply_hdr =
        i2o::make_reply_header(ctx.header, /*failed=*/false);
    auto bytes = frame.bytes();
    if (Status s = i2o::encode_header(reply_hdr, bytes); !s.is_ok()) {
      return frame_reply(ctx, ctx.payload);
    }
    return frame_send(std::move(frame));
  }

  bool record_ = false;
  bool inplace_ = false;
  std::vector<std::uint64_t> entry_ticks_;
  std::vector<std::uint64_t> exit_ticks_;
};

/// The flooding half: sends a ping, awaits the reply (on_reply), records
/// the round-trip time, sends the next. The measurement loop lives inside
/// the device; the main thread blocks on wait_done().
class PingerDevice final : public core::Device {
 public:
  PingerDevice() : Device("BenchPinger") {}

  void configure_run(i2o::Tid target, std::size_t payload_bytes,
                     std::uint64_t calls) {
    target_ = target;
    payload_.assign(payload_bytes, std::byte{0x5A});
    calls_ = calls;
    rtts_ns_.clear();
    rtts_ns_.reserve(calls);
    completed_.store(0);
    done_.store(false);
  }

  /// Fires the first ping (call once the executives are running).
  Status begin() { return send_ping(); }

  bool wait_done(std::chrono::nanoseconds timeout) {
    std::unique_lock lock(mutex_);
    return cv_.wait_for(lock, timeout, [this] { return done_.load(); });
  }

  [[nodiscard]] const std::vector<double>& rtts_ns() const {
    return rtts_ns_;
  }
  [[nodiscard]] std::uint64_t completed() const {
    return completed_.load(std::memory_order_relaxed);
  }

 protected:
  void on_reply(const core::MessageContext& ctx) override {
    (void)ctx;
    rtts_ns_.push_back(static_cast<double>(now_ns() - sent_at_ns_));
    const std::uint64_t n =
        completed_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (n < calls_) {
      (void)send_ping();
    } else {
      {
        const std::scoped_lock lock(mutex_);
        done_.store(true);
      }
      cv_.notify_all();
    }
  }

 private:
  Status send_ping() {
    sent_at_ns_ = now_ns();
    auto frame =
        make_private_frame(target_, i2o::OrgId::kBench, kXfnPing, payload_);
    if (!frame.is_ok()) {
      return frame.status();
    }
    return frame_send(std::move(frame).value());
  }

  i2o::Tid target_ = i2o::kNullTid;
  std::vector<std::byte> payload_;
  std::uint64_t calls_ = 0;
  std::uint64_t sent_at_ns_ = 0;
  std::vector<double> rtts_ns_;
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<bool> done_{false};
  std::mutex mutex_;
  std::condition_variable cv_;
};

/// Keeps `window` messages in flight; the sink acknowledges each message
/// (reply frame), and every ack refills the window.
class FloodSource final : public core::Device {
 public:
  FloodSource() : Device("FloodSource") {}

  void configure_run(i2o::Tid target, std::size_t payload_bytes,
                     std::uint64_t total, std::uint32_t window) {
    target_ = target;
    payload_.assign(payload_bytes, std::byte{0x7E});
    total_ = total;
    window_ = window;
    sent_.store(0, std::memory_order_relaxed);
    acked_.store(0);
    done_.store(false);
  }

  void begin() {
    for (std::uint32_t i = 0;
         i < window_ && sent_.load(std::memory_order_relaxed) < total_;
         ++i) {
      (void)send_one();
    }
  }

  bool wait_done(std::chrono::nanoseconds timeout) {
    std::unique_lock lock(mutex_);
    return cv_.wait_for(lock, timeout, [this] { return done_.load(); });
  }

  [[nodiscard]] std::uint64_t acked() const { return acked_.load(); }

  /// Refill the window by recirculating the echoed frame: rewrite its
  /// header back into a ping and send the same pooled block out again.
  /// Round trips then reuse a standing set of blocks end to end instead
  /// of allocating + copying a fresh 4 KiB payload per send.
  void enable_inplace_resend() { inplace_ = true; }

 protected:
  void on_reply(const core::MessageContext& ctx) override {
    const std::uint64_t n = acked_.fetch_add(1) + 1;
    if (sent_.load(std::memory_order_relaxed) < total_) {
      if (inplace_ && ctx.frame.valid()) {
        (void)resend_inplace(ctx);
      } else {
        (void)send_one();
      }
    } else if (n >= total_) {
      {
        const std::scoped_lock lock(mutex_);
        done_.store(true);
      }
      cv_.notify_all();
    }
  }

 private:
  /// Claim a send slot; begin() (the caller's thread) and on_reply (a
  /// dispatch thread) refill the window concurrently, so the check and
  /// the increment must be one atomic step.
  bool claim_send() {
    if (sent_.fetch_add(1, std::memory_order_relaxed) < total_) {
      return true;
    }
    sent_.fetch_sub(1, std::memory_order_relaxed);
    return false;
  }

  Status send_one() {
    if (!claim_send()) {
      return Status::ok();
    }
    return send_fresh();
  }

  Status send_fresh() {
    auto frame =
        make_private_frame(target_, i2o::OrgId::kBench, kXfnPing, payload_);
    if (!frame.is_ok()) {
      return frame.status();
    }
    return frame_send(std::move(frame).value());
  }

  Status resend_inplace(const core::MessageContext& ctx) {
    if (!claim_send()) {
      return Status::ok();
    }
    mem::FrameRef frame = ctx.frame;  // handle copy: refcount bump only
    i2o::FrameHeader hdr;
    hdr.function = static_cast<std::uint8_t>(i2o::Function::Private);
    hdr.organization = static_cast<std::uint16_t>(i2o::OrgId::kBench);
    hdr.xfunction = kXfnPing;
    hdr.target = target_;
    hdr.initiator = tid();
    auto bytes = frame.bytes();
    if (Status s = i2o::encode_header(hdr, bytes); !s.is_ok()) {
      return send_fresh();  // malformed view; slot already claimed
    }
    return frame_send(std::move(frame));
  }

  i2o::Tid target_ = i2o::kNullTid;
  std::vector<std::byte> payload_;
  std::uint64_t total_ = 0;
  std::atomic<std::uint64_t> sent_{0};
  std::uint32_t window_ = 1;
  bool inplace_ = false;
  std::atomic<std::uint64_t> acked_{0};
  std::atomic<bool> done_{false};
  std::mutex mutex_;
  std::condition_variable cv_;
};

/// Acknowledges every message with an empty reply.
class AckSink final : public core::Device {
 public:
  AckSink() : Device("AckSink") {
    bind(i2o::OrgId::kBench, kXfnPing,
         [this](const core::MessageContext& ctx) {
           (void)frame_reply(ctx, {});
         });
  }
};

/// Formats microseconds with two decimals.
inline std::string us(double nanoseconds) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%8.2f", nanoseconds / 1000.0);
  return buf;
}

}  // namespace xdaq::bench
