// control_cluster.cpp - primary-host cluster control from an XCL script.
//
// Paper section 4: "Configuration and control of the executive is done
// through I2O executive messages. They are sent from a Tcl script that
// resides on the primary host to all executives in the distributed
// system."
//
// Node 0 is the primary host. Nodes 1..3 are workers whose devices are
// brought up entirely from the embedded script below: ping every node,
// load a device class remotely (ExecPluginLoad), configure and enable it
// (ExecConfigure/ExecEnable), then read its parameters back
// (UtilParamsGet). Pass a script file as argv[1] to run your own.
#include <cstdio>
#include <fstream>
#include <sstream>

#include "daq/register.hpp"
#include "pt/cluster.hpp"
#include "xcl/control.hpp"

namespace {

const char* kDefaultScript = R"XCL(
puts "nodes under control: [xdaq nodes]"

# liveness check across the cluster
foreach n [xdaq nodes] {
    xdaq ping $n
    puts "  $n answers"
}

# download a device class into every worker at runtime, then bring it up
foreach n [xdaq nodes] {
    xdaq load $n BuilderUnit builder
    xdaq configure $n builder verify 1
    xdaq enable $n builder
    puts "  $n/builder is [xdaq paramget $n builder state]"
}

# inspect one node in detail
puts ""
puts "status of worker1:"
foreach entry [xdaq status worker1] {
    puts "  [lindex $entry 0] = [lindex $entry 1]"
}

# orderly shutdown
foreach n [xdaq nodes] {
    xdaq halt $n builder
}
puts ""
puts "all builders halted"
)XCL";

}  // namespace

int main(int argc, char** argv) {
  using namespace xdaq;

  // Classes the script loads by name must be in the factory.
  daq::register_device_classes();

  std::string script = kDefaultScript;
  if (argc > 1) {
    std::ifstream file(argv[1]);
    if (!file) {
      std::fprintf(stderr, "cannot open script: %s\n", argv[1]);
      return 1;
    }
    std::ostringstream oss;
    oss << file.rdbuf();
    script = oss.str();
  }

  // Primary host (node 0) + three workers.
  pt::Cluster cluster(pt::ClusterConfig{.nodes = 4});
  xcl::ControlSession session(cluster.node(0), std::chrono::seconds(5));
  (void)session.add_node("worker1", cluster.node_id(1));
  (void)session.add_node("worker2", cluster.node_id(2));
  (void)session.add_node("worker3", cluster.node_id(3));

  // Only the transports are enabled up front; everything else is brought
  // up by the script through executive messages.
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    (void)cluster.node(i).enable(cluster.node(i).tid_of("pt_gm").value());
  }
  cluster.start_all();

  xcl::Interp interp;
  session.bind(interp);
  const xcl::EvalResult result = interp.eval(script);
  cluster.stop_all();

  if (result.is_error()) {
    std::fprintf(stderr, "script error: %s\n", result.value.c_str());
    return 1;
  }
  return 0;
}
