// tcp_pingpong.cpp - the same echo application over real TCP sockets.
//
// Demonstrates the transport transparency claim of the paper: "The use of
// specialized Peer Transports ... allows us to exploit any future
// networking technology without the need to modify the applications."
// The Echo and Pinger devices below are byte-for-byte the ones a GM
// cluster would run; only the installed peer transport differs.
#include <cstdio>
#include <numeric>

#include "core/device.hpp"
#include "core/requester.hpp"
#include "pt/tcp_pt.hpp"
#include "util/clock.hpp"

namespace {

using namespace xdaq;

constexpr std::uint16_t kXfnEcho = 0x0001;

class Echo final : public core::Device {
 public:
  Echo() : Device("Echo") {
    bind(i2o::OrgId::kTest, kXfnEcho, [this](const core::MessageContext& c) {
      (void)frame_reply(c, c.payload);
    });
  }
};

}  // namespace

int main() {
  std::printf("XDAQ echo over the TCP peer transport (localhost)\n\n");

  core::Executive node_a(core::ExecutiveConfig{.node_id = 1, .name = "a"});
  core::Executive node_b(core::ExecutiveConfig{.node_id = 2, .name = "b"});

  // Install TCP peer transports and let them bind ephemeral ports.
  auto ta = std::make_unique<pt::TcpPeerTransport>();
  auto tb = std::make_unique<pt::TcpPeerTransport>();
  pt::TcpPeerTransport* pt_a = ta.get();
  pt::TcpPeerTransport* pt_b = tb.get();
  (void)node_a.install(std::move(ta), "pt_tcp");
  (void)node_b.install(std::move(tb), "pt_tcp");
  (void)node_a.set_route(2, pt_a->tid());
  (void)node_b.set_route(1, pt_b->tid());
  (void)node_a.enable(pt_a->tid());
  (void)node_b.enable(pt_b->tid());
  pt_a->add_peer(2, "127.0.0.1", pt_b->listen_port());
  pt_b->add_peer(1, "127.0.0.1", pt_a->listen_port());
  std::printf("node a listens on 127.0.0.1:%u, node b on 127.0.0.1:%u\n",
              pt_a->listen_port(), pt_b->listen_port());

  // The application: identical device classes as on any other transport.
  (void)node_b.install(std::make_unique<Echo>(), "echo");
  auto requester = std::make_unique<core::Requester>();
  core::Requester* req = requester.get();
  (void)node_a.install(std::move(requester), "req");
  const i2o::Tid proxy =
      node_a.register_remote(2, node_b.tid_of("echo").value()).value();

  (void)node_a.enable_all();
  (void)node_b.enable_all();
  node_a.start();
  node_b.start();

  // One warmup call establishes the connections so the measured round
  // trips reflect the steady state.
  (void)req->call_private(proxy, i2o::OrgId::kTest, kXfnEcho, {},
                          xdaq::core::CallOptions{.timeout = std::chrono::seconds(5)});

  std::vector<double> rtts;
  for (int i = 0; i < 10; ++i) {
    const std::string text = "tcp ping #" + std::to_string(i + 1);
    const std::uint64_t t0 = now_ns();
    auto reply = req->call_private(
        proxy, i2o::OrgId::kTest, kXfnEcho,
        std::span(reinterpret_cast<const std::byte*>(text.data()),
                  text.size()),
        xdaq::core::CallOptions{.timeout = std::chrono::seconds(5)});
    const double rtt_us = static_cast<double>(now_ns() - t0) / 1000.0;
    if (!reply.is_ok()) {
      std::fprintf(stderr, "call failed: %s\n",
                   reply.status().to_string().c_str());
      break;
    }
    rtts.push_back(rtt_us);
    std::printf("  reply %2d: %3zu bytes in %8.2f us\n", i + 1,
                reply.value().payload.size(), rtt_us);
  }
  node_a.stop();
  node_b.stop();

  if (!rtts.empty()) {
    std::printf("\naverage TCP round trip: %.2f us over %zu calls\n",
                std::accumulate(rtts.begin(), rtts.end(), 0.0) /
                    static_cast<double>(rtts.size()),
                rtts.size());
  }
  return 0;
}
