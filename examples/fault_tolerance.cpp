// fault_tolerance.cpp - misbehaving device classes do not take the node
// down.
//
// Paper section 3.2: default procedures give "a homogeneous view of
// software components with fault tolerant behaviour"; section 4 discusses
// terminating handlers that monopolize the CPU. This example installs
// three devices on one node:
//   * a healthy echo service,
//   * one that throws from its handler,
//   * one that stalls far beyond the watchdog deadline,
// then shows the faulty ones being quarantined (state -> Failed) while
// the echo service keeps answering throughout.
#include <chrono>
#include <cstdio>
#include <thread>

#include "core/device.hpp"
#include "core/requester.hpp"
#include "pt/cluster.hpp"

namespace {

using namespace xdaq;

constexpr std::uint16_t kXfnEcho = 1;
constexpr std::uint16_t kXfnBoom = 2;
constexpr std::uint16_t kXfnHang = 3;

class Echo final : public core::Device {
 public:
  Echo() : Device("Echo") {
    bind(i2o::OrgId::kTest, kXfnEcho, [this](const core::MessageContext& c) {
      (void)frame_reply(c, c.payload);
    });
  }
};

class Thrower final : public core::Device {
 public:
  Thrower() : Device("Thrower") {
    bind(i2o::OrgId::kTest, kXfnBoom, [](const core::MessageContext&) {
      throw std::runtime_error("segfault stand-in");
    });
  }
};

class Hanger final : public core::Device {
 public:
  Hanger() : Device("Hanger") {
    bind(i2o::OrgId::kTest, kXfnHang, [](const core::MessageContext&) {
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
    });
  }
};

const char* state_of(core::Executive& exec, const char* instance) {
  return to_string(exec.device(exec.tid_of(instance).value())->state())
      .data();
}

}  // namespace

int main() {
  std::printf("fault tolerance: quarantining misbehaving device classes\n\n");

  pt::ClusterConfig cfg;
  cfg.exec.handler_deadline = std::chrono::milliseconds(50);  // watchdog on
  pt::Cluster cluster(cfg);

  (void)cluster.install(1, std::make_unique<Echo>(), "echo");
  (void)cluster.install(1, std::make_unique<Thrower>(), "thrower");
  (void)cluster.install(1, std::make_unique<Hanger>(), "hanger");
  auto requester = std::make_unique<core::Requester>();
  core::Requester* req = requester.get();
  (void)cluster.install(0, std::move(requester), "req");
  const auto echo = cluster.connect(0, 1, "echo").value();
  const auto thrower = cluster.connect(0, 1, "thrower").value();
  const auto hanger = cluster.connect(0, 1, "hanger").value();
  (void)cluster.enable_all();
  cluster.start_all();

  auto ping_echo = [&](const char* when) {
    auto r = req->call_private(echo, i2o::OrgId::kTest, kXfnEcho, {},
                               xdaq::core::CallOptions{.timeout = std::chrono::seconds(2)});
    std::printf("  echo %-28s %s\n", when,
                r.is_ok() && !r.value().failed() ? "answers" : "FAILED");
  };

  ping_echo("before any fault:");

  std::printf("\npoking the throwing device...\n");
  auto boom = req->call_private(thrower, i2o::OrgId::kTest, kXfnBoom, {},
                                xdaq::core::CallOptions{.timeout = std::chrono::seconds(2)});
  std::printf("  caller sees: %s\n",
              boom.is_ok() && boom.value().failed()
                  ? "failure reply (not a crash)"
                  : boom.status().to_string().c_str());
  std::printf("  thrower state: %s\n", state_of(cluster.node(1), "thrower"));
  ping_echo("after the throw:");

  std::printf("\npoking the hanging device (watchdog deadline 50 ms)...\n");
  auto hang = req->call_private(hanger, i2o::OrgId::kTest, kXfnHang, {},
                                xdaq::core::CallOptions{.timeout = std::chrono::seconds(2)});
  std::printf("  caller sees: %s\n",
              hang.is_ok() && hang.value().failed()
                  ? "failure reply after the overrun"
                  : hang.status().to_string().c_str());
  std::printf("  hanger state: %s\n", state_of(cluster.node(1), "hanger"));
  std::printf("  watchdog trips on node: %llu\n",
              static_cast<unsigned long long>(
                  cluster.node(1).stats().watchdog_trips));
  ping_echo("after the hang:");

  // Messages to a quarantined device are rejected, not lost silently.
  auto again = req->call_private(thrower, i2o::OrgId::kTest, kXfnBoom, {},
                                 xdaq::core::CallOptions{.timeout = std::chrono::seconds(2)});
  std::printf("\nretrying the quarantined device: %s\n",
              again.is_ok() && again.value().failed()
                  ? "rejected with a failure reply"
                  : "unexpected");

  cluster.stop_all();
  std::printf("\nnode survived both faults; healthy devices unaffected.\n");
  return 0;
}
