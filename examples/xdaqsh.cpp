// xdaqsh.cpp - the primary host's control shell for out-of-process nodes.
//
// Connects to node_daemon processes over TCP and runs XCL scripts (or an
// interactive read-eval-print loop) against them. Together with
// node_daemon this is the paper's deployment picture: executives on every
// cluster node, a Tcl-driven primary host steering them over the network.
//
//   # terminal 1 and 2: the cluster
//   ./node_daemon --node=2 --listen=9102
//   ./node_daemon --node=3 --listen=9103
//   # terminal 3: the primary host
//   ./xdaqsh --node=w1:2:... --node=w2:3:... script.xcl
//
//
// Extra commands registered on top of the standard `xdaq` ensemble:
//   xdaq shutdown <node>   - halts the remote daemon process.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/executive.hpp"
#include "pt/tcp_pt.hpp"
#include "xcl/control.hpp"

int main(int argc, char** argv) {
  using namespace xdaq;

  struct NodeSpec {
    std::string name;
    i2o::NodeId node;
    std::string host;
    std::uint16_t port;
  };
  std::vector<NodeSpec> nodes;
  std::string script_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--node=", 0) == 0) {
      // --node=<name>:<id>:<host>:<port>
      const std::string spec = arg.substr(7);
      std::vector<std::string> parts;
      std::istringstream iss(spec);
      std::string tok;
      while (std::getline(iss, tok, ':')) {
        parts.push_back(tok);
      }
      if (parts.size() != 4) {
        std::fprintf(stderr, "bad --node spec: %s\n", spec.c_str());
        return 1;
      }
      nodes.push_back(NodeSpec{
          parts[0],
          static_cast<i2o::NodeId>(std::strtoul(parts[1].c_str(), nullptr,
                                                10)),
          parts[2],
          static_cast<std::uint16_t>(
              std::strtoul(parts[3].c_str(), nullptr, 10))});
    } else {
      script_path = arg;
    }
  }
  if (nodes.empty()) {
    std::fprintf(stderr,
                 "usage: xdaqsh --node=<name>:<id>:<host>:<port> ... "
                 "[script.xcl]\n(no script: interactive REPL)\n");
    return 1;
  }

  // The primary host is itself an executive with a TCP transport.
  core::Executive host(core::ExecutiveConfig{.node_id = 0xFFE,
                                             .name = "primary"});
  auto transport = std::make_unique<pt::TcpPeerTransport>();
  pt::TcpPeerTransport* pt = transport.get();
  auto pt_tid = host.install(std::move(transport), "pt_tcp");
  if (!pt_tid.is_ok()) {
    std::fprintf(stderr, "%s\n", pt_tid.status().to_string().c_str());
    return 1;
  }
  if (Status st = host.enable(pt_tid.value()); !st.is_ok()) {
    std::fprintf(stderr, "%s\n", st.to_string().c_str());
    return 1;
  }

  xcl::ControlSession session(host, std::chrono::seconds(5));
  for (const NodeSpec& spec : nodes) {
    pt->add_peer(spec.node, spec.host, spec.port);
    if (Status st = host.set_route(spec.node, pt_tid.value());
        !st.is_ok()) {
      std::fprintf(stderr, "route to %s failed: %s\n", spec.name.c_str(),
                   st.to_string().c_str());
      return 1;
    }
    if (Status st = session.add_node(spec.name, spec.node); !st.is_ok()) {
      std::fprintf(stderr, "add_node %s failed: %s\n", spec.name.c_str(),
                   st.to_string().c_str());
      return 1;
    }
  }
  host.start();

  xcl::Interp interp;
  session.bind(interp);
  // `xdaq shutdown <node>`: halt the daemon's ShutdownHook device.
  interp.register_command(
      "xdaq_shutdown",
      [&session](xcl::Interp&, const std::vector<std::string>& w) {
        if (w.size() != 2) {
          return xcl::EvalResult::error("usage: xdaq_shutdown node");
        }
        const Status st =
            session.state_op(w[1], "shutdown", i2o::Function::ExecHalt);
        return st.is_ok() ? xcl::EvalResult::ok("ok")
                          : xcl::EvalResult::error(st.to_string());
      });

  int rc = 0;
  if (!script_path.empty()) {
    std::ifstream file(script_path);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", script_path.c_str());
      host.stop();
      return 1;
    }
    std::ostringstream oss;
    oss << file.rdbuf();
    const xcl::EvalResult r = interp.eval(oss.str());
    if (r.is_error()) {
      std::fprintf(stderr, "error: %s\n", r.value.c_str());
      rc = 1;
    } else if (!r.value.empty()) {
      std::printf("%s\n", r.value.c_str());
    }
  } else {
    std::printf("xdaqsh: %zu node(s); XCL commands, 'exit' to quit\n",
                nodes.size());
    std::string line;
    while (std::printf("xdaq> "), std::fflush(stdout),
           std::getline(std::cin, line)) {
      if (line == "exit" || line == "quit") {
        break;
      }
      const xcl::EvalResult r = interp.eval(line);
      if (r.is_error()) {
        std::printf("error: %s\n", r.value.c_str());
      } else if (!r.value.empty()) {
        std::printf("%s\n", r.value.c_str());
      }
    }
  }
  host.stop();
  return rc;
}
