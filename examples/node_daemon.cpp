// node_daemon.cpp - a standalone XDAQ cluster node as an OS process.
//
// Runs one executive with a TCP peer transport and waits to be driven by
// a primary host: everything else - loading device classes, configuring,
// enabling, halting - happens through I2O executive messages over the
// socket, exactly as the paper deploys nodes ("a primary host controls
// all processing nodes").
//
//   ./node_daemon --node=2 --listen=9102 ...
//                 --peer=1:127.0.0.1:9101 --peer=3:127.0.0.1:9103
//
// The daemon exits when its kernel receives ExecHalt with
// instance=shutdown (sent by xdaqsh's `xdaq_shutdown <node>`), or
// on SIGINT/SIGTERM.
#include <atomic>
#include <csignal>
#include <cstdio>
#include <string>
#include <vector>

#include "core/executive.hpp"
#include "daq/register.hpp"
#include "pt/tcp_pt.hpp"
#include "util/cli.hpp"

namespace {

std::atomic<bool> g_stop{false};

void handle_signal(int) { g_stop.store(true); }

/// Watches for a remote shutdown request: a device that halts the whole
/// process when it is halted itself.
class ShutdownHook final : public xdaq::core::Device {
 public:
  ShutdownHook() : Device("ShutdownHook") {}

 protected:
  xdaq::Status on_halt() override {
    g_stop.store(true);
    return xdaq::Status::ok();
  }
};

}  // namespace

int main(int argc, char** argv) {
  using namespace xdaq;
  CliParser cli;
  cli.flag("node", "this node's id", std::int64_t{1})
      .flag("listen", "TCP listen port (0 = ephemeral)", std::int64_t{0})
      .flag("name", "executive name (default nodeN)", std::string(""))
      .flag("verbose", "info-level logging", false);
  if (Status st = cli.parse(argc, argv); !st.is_ok()) {
    // --peer flags are repeatable and parsed manually below.
    bool only_peers = true;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--peer", 0) != 0 && arg.rfind("--node", 0) != 0 &&
          arg.rfind("--listen", 0) != 0 && arg.rfind("--name", 0) != 0 &&
          arg.rfind("--verbose", 0) != 0) {
        only_peers = false;
      }
    }
    if (!only_peers) {
      std::fprintf(stderr, "%s\n%s  --peer=<node>:<host>:<port> "
                           "(repeatable)\n",
                   st.to_string().c_str(),
                   cli.usage("node_daemon").c_str());
      return 1;
    }
  }
  if (cli.get_bool("verbose")) {
    set_log_level(LogLevel::Info);
  }

  const auto node_id = static_cast<i2o::NodeId>(cli.get_int("node"));
  std::string name = cli.get_string("name");
  if (name.empty()) {
    name = "node" + std::to_string(node_id);
  }

  daq::register_device_classes();

  core::ExecutiveConfig cfg;
  cfg.node_id = node_id;
  cfg.name = name;
  core::Executive exec(cfg);

  pt::TcpTransportConfig tcp_cfg;
  tcp_cfg.listen_port = static_cast<std::uint16_t>(cli.get_int("listen"));
  auto transport = std::make_unique<pt::TcpPeerTransport>(tcp_cfg);
  pt::TcpPeerTransport* pt = transport.get();
  auto pt_tid = exec.install(std::move(transport), "pt_tcp");
  if (!pt_tid.is_ok()) {
    std::fprintf(stderr, "transport install failed: %s\n",
                 pt_tid.status().to_string().c_str());
    return 1;
  }

  // Repeatable --peer=<node>:<host>:<port> flags wire the mesh.
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--peer=", 0) != 0) {
      continue;
    }
    const std::string spec = arg.substr(7);
    const auto c1 = spec.find(':');
    const auto c2 = spec.rfind(':');
    if (c1 == std::string::npos || c2 == c1) {
      std::fprintf(stderr, "bad --peer spec: %s\n", spec.c_str());
      return 1;
    }
    const auto peer_node = static_cast<i2o::NodeId>(
        std::strtoul(spec.substr(0, c1).c_str(), nullptr, 10));
    const std::string host = spec.substr(c1 + 1, c2 - c1 - 1);
    const auto port = static_cast<std::uint16_t>(
        std::strtoul(spec.substr(c2 + 1).c_str(), nullptr, 10));
    pt->add_peer(peer_node, host, port);
    if (Status st = exec.set_route(peer_node, pt_tid.value());
        !st.is_ok()) {
      std::fprintf(stderr, "route to %u failed: %s\n", peer_node,
                   st.to_string().c_str());
      return 1;
    }
  }

  if (Status st = exec.enable(pt_tid.value()); !st.is_ok()) {
    std::fprintf(stderr, "transport enable failed: %s\n",
                 st.to_string().c_str());
    return 1;
  }
  (void)exec.install(std::make_unique<ShutdownHook>(), "shutdown");

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);

  std::printf("xdaq node %u ('%s') listening on 127.0.0.1:%u\n", node_id,
              name.c_str(), pt->listen_port());
  std::fflush(stdout);

  exec.start();
  while (!g_stop.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  exec.stop();
  std::printf("xdaq node %u shutting down\n", node_id);
  return 0;
}
