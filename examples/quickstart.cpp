// quickstart.cpp - the smallest complete XDAQ program.
//
// Two cluster nodes (executives) joined by the simulated Myrinet/GM
// fabric. Node B runs an Echo device class; node A sends it private I2O
// frames and prints the measured round-trip times. This is the paper's
// blackbox setup (section 5) in miniature and the template for writing
// your own device classes:
//
//   1. subclass core::Device and bind() handlers for private xfunctions,
//   2. install the device into an executive (it receives a TiD),
//   3. intern a proxy TiD for remote devices you want to talk to,
//   4. enable everything and exchange frames - local and remote targets
//      look identical to the sender (location transparency).
#include <atomic>
#include <chrono>
#include <cstdio>
#include <numeric>
#include <thread>

#include "core/device.hpp"
#include "pt/cluster.hpp"
#include "util/clock.hpp"

namespace {

using namespace xdaq;

constexpr std::uint16_t kXfnEcho = 0x0001;

/// Replies to every echo request with the same payload.
class Echo final : public core::Device {
 public:
  Echo() : Device("Echo") {
    bind(i2o::OrgId::kTest, kXfnEcho, [this](const core::MessageContext& c) {
      (void)frame_reply(c, c.payload);
    });
  }
};

/// Sends `count` pings and prints each round trip.
class Pinger final : public core::Device {
 public:
  Pinger() : Device("Pinger") {}

  void start_run(i2o::Tid target, int count) {
    target_ = target;
    remaining_.store(count, std::memory_order_release);
    send_next();
  }

  [[nodiscard]] bool done() const {
    return remaining_.load(std::memory_order_acquire) <= 0;
  }
  [[nodiscard]] const std::vector<double>& rtts_us() const { return rtts_; }

 protected:
  void on_reply(const core::MessageContext& ctx) override {
    const double rtt_us =
        static_cast<double>(now_ns() - sent_at_) / 1000.0;
    rtts_.push_back(rtt_us);
    std::printf("  reply %2zu: %4zu bytes in %6.2f us\n", rtts_.size(),
                ctx.payload.size(), rtt_us);
    if (remaining_.fetch_sub(1, std::memory_order_acq_rel) > 1) {
      send_next();
    }
  }

 private:
  void send_next() {
    const std::string text = "hello cluster #" +
                             std::to_string(rtts_.size() + 1);
    sent_at_ = now_ns();
    auto frame = make_private_frame(
        target_, i2o::OrgId::kTest, kXfnEcho,
        std::span(reinterpret_cast<const std::byte*>(text.data()),
                  text.size()));
    if (frame.is_ok()) {
      (void)frame_send(std::move(frame).value());
    }
  }

  i2o::Tid target_ = i2o::kNullTid;
  std::atomic<int> remaining_{0};
  std::uint64_t sent_at_ = 0;
  std::vector<double> rtts_;
};

}  // namespace

int main() {
  std::printf("XDAQ quickstart: two executives over the simulated GM "
              "fabric\n\n");

  // A two-node cluster: executives, GM peer transports, full-mesh routes.
  xdaq::pt::Cluster cluster;

  // Install the echo service on node 1 and the pinger on node 0.
  (void)cluster.install(1, std::make_unique<Echo>(), "echo");
  auto pinger_dev = std::make_unique<Pinger>();
  Pinger* pinger = pinger_dev.get();
  (void)cluster.install(0, std::move(pinger_dev), "pinger");

  // Node 0 interns a proxy TiD for the remote echo instance. From here on
  // the pinger cannot tell (and never needs to know) that the target is
  // on another node.
  const xdaq::i2o::Tid echo_proxy = cluster.connect(0, 1, "echo").value();
  std::printf("echo is reachable through proxy TiD %u on node %u\n\n",
              echo_proxy, cluster.node_id(0));

  (void)cluster.enable_all();
  cluster.start_all();

  pinger->start_run(echo_proxy, 10);
  while (!pinger->done()) {
    // Sleep rather than spin: the executives need the cores.
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  cluster.stop_all();

  const auto& rtts = pinger->rtts_us();
  const double avg =
      std::accumulate(rtts.begin(), rtts.end(), 0.0) /
      static_cast<double>(rtts.size());
  std::printf("\naverage round trip: %.2f us over %zu calls\n", avg,
              rtts.size());
  return 0;
}
