// rmi_calculator.cpp - remote method invocation over I2O frames.
//
// Paper section 4: "adapters can be provided that allow a remote method
// invocation style communication scheme. The stub part will take the call
// parameters and marshal them into a standard message, whereas the
// skeleton part scans the message and provides typed pointers to its
// contents."
//
// A Calculator service (skeleton) runs on node 1; node 0 calls it through
// a stub. The stub only holds a TiD - it works identically whether the
// target is local or proxied to another node.
#include <cstdio>

#include "core/requester.hpp"
#include "pt/cluster.hpp"
#include "rmi/adapter.hpp"

namespace {

using namespace xdaq;

// Method ids of the Calculator interface.
constexpr std::uint16_t kAdd = 1;
constexpr std::uint16_t kMul = 2;
constexpr std::uint16_t kDiv = 3;
constexpr std::uint16_t kDot = 4;  // dot product over loaned buffers

class CalculatorSkeleton final : public rmi::Skeleton {
 public:
  CalculatorSkeleton() : Skeleton("Calculator") {
    expose(kAdd, [](rmi::Unmarshaller& in, rmi::Marshaller& out) -> Status {
      auto a = in.get_f64();
      auto b = in.get_f64();
      if (!a.is_ok() || !b.is_ok()) {
        return {Errc::MalformedFrame, "add(a, b) expects two doubles"};
      }
      out.put_f64(a.value() + b.value());
      return Status::ok();
    });
    expose(kMul, [](rmi::Unmarshaller& in, rmi::Marshaller& out) -> Status {
      auto a = in.get_f64();
      auto b = in.get_f64();
      if (!a.is_ok() || !b.is_ok()) {
        return {Errc::MalformedFrame, "mul(a, b) expects two doubles"};
      }
      out.put_f64(a.value() * b.value());
      return Status::ok();
    });
    expose(kDiv, [](rmi::Unmarshaller& in, rmi::Marshaller& out) -> Status {
      auto a = in.get_f64();
      auto b = in.get_f64();
      if (!a.is_ok() || !b.is_ok()) {
        return {Errc::MalformedFrame, "div(a, b) expects two doubles"};
      }
      if (b.value() == 0.0) {
        return {Errc::InvalidArgument, "division by zero"};
      }
      out.put_f64(a.value() / b.value());
      return Status::ok();
    });
    expose(kDot, [](rmi::Unmarshaller& in, rmi::Marshaller& out) -> Status {
      // Buffer loaning: both vectors are read in place from the received
      // frame - the skeleton "provides typed pointers to its contents".
      auto xs = in.view_bytes();
      auto ys = in.view_bytes();
      if (!xs.is_ok() || !ys.is_ok() ||
          xs.value().size() != ys.value().size() ||
          xs.value().size() % sizeof(double) != 0) {
        return {Errc::MalformedFrame, "dot(xs, ys) expects equal arrays"};
      }
      const std::size_t n = xs.value().size() / sizeof(double);
      double acc = 0;
      for (std::size_t i = 0; i < n; ++i) {
        double x = 0;
        double y = 0;
        std::memcpy(&x, xs.value().data() + i * sizeof(double), sizeof(x));
        std::memcpy(&y, ys.value().data() + i * sizeof(double), sizeof(y));
        acc += x * y;
      }
      out.put_f64(acc);
      return Status::ok();
    });
  }
};

double call2(rmi::Stub& stub, std::uint16_t method, double a, double b) {
  rmi::Marshaller args;
  args.put_f64(a);
  args.put_f64(b);
  auto result = stub.invoke(method, args);
  if (!result.is_ok()) {
    std::printf("  remote error: %s\n",
                result.status().to_string().c_str());
    return 0;
  }
  rmi::Unmarshaller out(result.value());
  return out.get_f64().value_or(0);
}

}  // namespace

int main() {
  std::printf("RMI calculator over I2O frames\n\n");
  pt::Cluster cluster;
  (void)cluster.install(1, std::make_unique<CalculatorSkeleton>(), "calc");
  auto requester = std::make_unique<core::Requester>();
  core::Requester* req = requester.get();
  (void)cluster.install(0, std::move(requester), "req");
  const i2o::Tid calc = cluster.connect(0, 1, "calc").value();
  (void)cluster.enable_all();
  cluster.start_all();

  rmi::Stub stub(*req, calc, std::chrono::seconds(5));
  std::printf("add(2, 40)      = %.1f\n", call2(stub, kAdd, 2, 40));
  std::printf("mul(6, 7)       = %.1f\n", call2(stub, kMul, 6, 7));
  std::printf("div(84, 2)      = %.1f\n", call2(stub, kDiv, 84, 2));
  std::printf("div(1, 0)       -> ");
  (void)call2(stub, kDiv, 1, 0);  // prints the propagated remote error

  // Dot product with loaned buffers.
  std::vector<double> xs{1, 2, 3, 4};
  std::vector<double> ys{4, 3, 2, 1};
  rmi::Marshaller args;
  args.put_bytes(std::span(reinterpret_cast<const std::byte*>(xs.data()),
                           xs.size() * sizeof(double)));
  args.put_bytes(std::span(reinterpret_cast<const std::byte*>(ys.data()),
                           ys.size() * sizeof(double)));
  auto result = stub.invoke(kDot, args);
  if (result.is_ok()) {
    rmi::Unmarshaller out(result.value());
    std::printf("dot([1 2 3 4], [4 3 2 1]) = %.1f\n",
                out.get_f64().value_or(0));
  }

  cluster.stop_all();
  return 0;
}
