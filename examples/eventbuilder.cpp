// eventbuilder.cpp - the paper's motivating workload: distributed event
// building for a physics data-acquisition system.
//
// n readout units each hold one fragment of every event; m builder units
// assemble complete events; an event manager hands out assignments. The
// crossing peer-to-peer channels between RUs and BUs are where the XDAQ
// name comes from ("n nodes talk to m other nodes in both directions,
// thus resulting in communication channels that cross over").
//
//   ./eventbuilder --readouts=3 --builders=2 --events=5000 ...
//     ... --fragment=4096
#include <atomic>
#include <cstdio>
#include <thread>

#include "daq/protocol.hpp"
#include "daq/topology.hpp"
#include "i2o/wire.hpp"
#include "util/cli.hpp"
#include "util/clock.hpp"

namespace {

/// Live run monitoring via I2O event notifications: subscribes to every
/// builder's kEvBuilderProgress events and prints them as they arrive.
class RunMonitor final : public xdaq::core::Device {
 public:
  RunMonitor() : Device("RunMonitor") {}

  void on_event(xdaq::i2o::Tid source, std::uint32_t code,
                std::span<const std::byte> payload) override {
    if (code == xdaq::daq::kEvBuilderProgress && payload.size() >= 8) {
      std::printf("  [monitor] builder tid=%u reports %llu events built\n",
                  source,
                  static_cast<unsigned long long>(
                      xdaq::i2o::get_u64(payload, 0)));
    } else if (code == xdaq::daq::kEvCorruptFragment) {
      corrupt_seen_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  xdaq::Status watch(xdaq::i2o::Tid builder_proxy) {
    return subscribe_events(builder_proxy, ~0u);
  }

 private:
  std::atomic<int> corrupt_seen_{0};
};

}  // namespace

int main(int argc, char** argv) {
  using namespace xdaq;
  CliParser cli;
  cli.flag("readouts", "number of readout units", std::int64_t{2})
      .flag("builders", "number of builder units", std::int64_t{2})
      .flag("events", "events to build", std::int64_t{2000})
      .flag("fragment", "fragment payload bytes", std::int64_t{2048})
      .flag("batch", "event assignments per Allocate", std::int64_t{16});
  if (Status st = cli.parse(argc, argv); !st.is_ok()) {
    std::fprintf(stderr, "%s\n%s", st.to_string().c_str(),
                 cli.usage("eventbuilder").c_str());
    return 1;
  }

  daq::EventBuilderParams params;
  params.readouts = static_cast<std::size_t>(cli.get_int("readouts"));
  params.builders = static_cast<std::size_t>(cli.get_int("builders"));
  params.max_events = static_cast<std::uint64_t>(cli.get_int("events"));
  params.fragment_bytes = static_cast<std::size_t>(cli.get_int("fragment"));
  params.batch = static_cast<std::uint32_t>(cli.get_int("batch"));

  const std::size_t nodes = daq::EventBuilderTopology::nodes_required(params);
  std::printf("event builder: %zu RUs x %zu BUs + 1 EVM = %zu nodes, "
              "%llu events of %zu x %zu bytes\n",
              params.readouts, params.builders, nodes,
              static_cast<unsigned long long>(params.max_events),
              params.readouts, params.fragment_bytes);

  pt::Cluster cluster(pt::ClusterConfig{.nodes = nodes});
  auto topo = daq::EventBuilderTopology::build(cluster, params);
  if (!topo.is_ok()) {
    std::fprintf(stderr, "topology setup failed: %s\n",
                 topo.status().to_string().c_str());
    return 1;
  }
  // A monitor on the EVM node watches each builder via I2O event
  // notifications (progress every quarter of the run).
  auto monitor_dev = std::make_unique<RunMonitor>();
  RunMonitor* monitor = monitor_dev.get();
  const std::size_t evm_node = params.readouts + params.builders;
  (void)cluster.install(evm_node, std::move(monitor_dev), "monitor");
  for (std::size_t j = 0; j < params.builders; ++j) {
    const std::size_t bu_node = params.readouts + j;
    const auto bu_tid = cluster.node(bu_node).tid_of("bu").value();
    (void)cluster.node(bu_node).configure(
        bu_tid, {{"progress_every",
                  std::to_string(std::max<std::uint64_t>(
                      1, params.max_events / params.builders / 4))}});
  }

  if (Status st = cluster.enable_all(); !st.is_ok()) {
    std::fprintf(stderr, "enable failed: %s\n", st.to_string().c_str());
    return 1;
  }

  const std::uint64_t t0 = now_ns();
  cluster.start_all();
  for (std::size_t j = 0; j < params.builders; ++j) {
    const auto bu_proxy =
        cluster.connect(evm_node, params.readouts + j, "bu");
    if (bu_proxy.is_ok()) {
      (void)monitor->watch(bu_proxy.value());
    }
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::minutes(2);
  while (!topo.value().complete() &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  const double secs = static_cast<double>(now_ns() - t0) / 1e9;
  cluster.stop_all();

  const auto& topology = topo.value();
  std::printf("\nresults after %.2f s:\n", secs);
  std::printf("  events built:      %llu / %llu\n",
              static_cast<unsigned long long>(topology.events_built()),
              static_cast<unsigned long long>(params.max_events));
  std::printf("  aggregate data:    %.1f MB (%.1f MB/s)\n",
              static_cast<double>(topology.bytes_built()) / 1e6,
              static_cast<double>(topology.bytes_built()) / 1e6 / secs);
  std::printf("  event rate:        %.0f events/s\n",
              static_cast<double>(topology.events_built()) / secs);
  std::printf("  corrupt fragments: %llu\n",
              static_cast<unsigned long long>(
                  topology.corrupt_fragments()));
  for (std::size_t j = 0; j < topology.builders.size(); ++j) {
    std::printf("  builder %zu: %llu events, %llu fragments\n", j,
                static_cast<unsigned long long>(
                    topology.builders[j]->events_built()),
                static_cast<unsigned long long>(
                    topology.builders[j]->fragments_received()));
  }
  return topology.complete() ? 0 : 2;
}
