#include "mem/sgl.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "util/random.hpp"

namespace xdaq::mem {
namespace {

FrameRef filled_block(Pool& pool, std::size_t size, std::uint64_t seed) {
  auto r = pool.allocate(size);
  EXPECT_TRUE(r.is_ok());
  FrameRef f = std::move(r).value();
  const auto data = make_payload(size, seed);
  std::memcpy(f.bytes().data(), data.data(), size);
  return f;
}

TEST(Sgl, EmptyList) {
  const ScatterGatherList sgl;
  EXPECT_EQ(sgl.segment_count(), 0u);
  EXPECT_EQ(sgl.total_bytes(), 0u);
  EXPECT_TRUE(sgl.gather().empty());
}

TEST(Sgl, AppendWholeBuffers) {
  TablePool pool;
  ScatterGatherList sgl;
  sgl.append(filled_block(pool, 100, 1));
  sgl.append(filled_block(pool, 200, 2));
  EXPECT_EQ(sgl.segment_count(), 2u);
  EXPECT_EQ(sgl.total_bytes(), 300u);

  const auto all = sgl.gather();
  const auto p1 = make_payload(100, 1);
  const auto p2 = make_payload(200, 2);
  ASSERT_EQ(all.size(), 300u);
  EXPECT_EQ(std::memcmp(all.data(), p1.data(), 100), 0);
  EXPECT_EQ(std::memcmp(all.data() + 100, p2.data(), 200), 0);
}

TEST(Sgl, SubRangeSegments) {
  TablePool pool;
  ScatterGatherList sgl;
  FrameRef block = filled_block(pool, 100, 3);
  ASSERT_TRUE(sgl.append(block, 10, 20).is_ok());
  ASSERT_TRUE(sgl.append(block, 50, 5).is_ok());
  EXPECT_EQ(sgl.total_bytes(), 25u);
  const auto all = sgl.gather();
  const auto src = make_payload(100, 3);
  EXPECT_EQ(std::memcmp(all.data(), src.data() + 10, 20), 0);
  EXPECT_EQ(std::memcmp(all.data() + 20, src.data() + 50, 5), 0);
}

TEST(Sgl, RejectsOutOfRangeSegment) {
  TablePool pool;
  ScatterGatherList sgl;
  FrameRef block = filled_block(pool, 100, 4);
  EXPECT_EQ(sgl.append(block, 90, 20).code(), Errc::InvalidArgument);
  EXPECT_EQ(sgl.append(block, 101, 0).code(), Errc::InvalidArgument);
  EXPECT_EQ(sgl.append(FrameRef{}, 0, 0).code(), Errc::InvalidArgument);
}

TEST(Sgl, SegmentsShareNotCopy) {
  TablePool pool;
  FrameRef block = filled_block(pool, 64, 5);
  ScatterGatherList sgl;
  sgl.append(block);
  EXPECT_EQ(block.use_count(), 2u);  // list holds a reference
  // Mutating the block is visible through the list (zero copy).
  block.bytes()[0] = static_cast<std::byte>(0xFF);
  EXPECT_EQ(sgl.segment(0)[0], static_cast<std::byte>(0xFF));
}

TEST(Sgl, GatherIntoRejectsSmallTarget) {
  TablePool pool;
  ScatterGatherList sgl;
  sgl.append(filled_block(pool, 10, 6));
  std::vector<std::byte> small(5);
  EXPECT_EQ(sgl.gather_into(small).code(), Errc::InvalidArgument);
}

TEST(Sgl, ClearDropsReferences) {
  TablePool pool;
  ScatterGatherList sgl;
  sgl.append(filled_block(pool, 10, 7));
  EXPECT_EQ(pool.stats().outstanding, 1u);
  sgl.clear();
  EXPECT_EQ(pool.stats().outstanding, 0u);
  EXPECT_EQ(sgl.total_bytes(), 0u);
}

TEST(Sgl, ScatterSplitsAndRoundTrips) {
  TablePool pool;
  const auto data = make_payload(10000, 8);
  const std::vector<std::byte> bytes(
      reinterpret_cast<const std::byte*>(data.data()),
      reinterpret_cast<const std::byte*>(data.data()) + data.size());
  auto r = ScatterGatherList::scatter(pool, bytes, 1024);
  ASSERT_TRUE(r.is_ok());
  const auto& sgl = r.value();
  EXPECT_EQ(sgl.segment_count(), 10u);  // ceil(10000/1024)
  EXPECT_EQ(sgl.total_bytes(), 10000u);
  EXPECT_EQ(sgl.gather(), bytes);
}

TEST(Sgl, ScatterEmptyMakesOneEmptySegment) {
  TablePool pool;
  auto r = ScatterGatherList::scatter(pool, {}, 64);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value().segment_count(), 1u);
  EXPECT_EQ(r.value().total_bytes(), 0u);
}

TEST(Sgl, ScatterRejectsZeroSegmentSize) {
  TablePool pool;
  std::vector<std::byte> data(10);
  EXPECT_EQ(ScatterGatherList::scatter(pool, data, 0).status().code(),
            Errc::InvalidArgument);
}

class SglSweepP : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SglSweepP, ScatterGatherIdentity) {
  TablePool pool;
  const auto raw = make_payload(GetParam(), 9);
  const std::vector<std::byte> bytes(
      reinterpret_cast<const std::byte*>(raw.data()),
      reinterpret_cast<const std::byte*>(raw.data()) + raw.size());
  for (const std::size_t seg : {1u, 7u, 64u, 4096u}) {
    auto r = ScatterGatherList::scatter(pool, bytes, seg);
    ASSERT_TRUE(r.is_ok());
    EXPECT_EQ(r.value().gather(), bytes) << "seg=" << seg;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SglSweepP,
                         ::testing::Values(1, 2, 63, 64, 65, 1000, 8192));

}  // namespace
}  // namespace xdaq::mem
