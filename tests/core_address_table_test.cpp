#include "core/address_table.hpp"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <thread>
#include <vector>

#include "core/device.hpp"

namespace xdaq::core {
namespace {

class DummyDevice : public Device {
 public:
  DummyDevice() : Device("Dummy") {}
};

TEST(AddressTable, AllocatesSequentialTids) {
  AddressTable t;
  DummyDevice d1;
  DummyDevice d2;
  auto a = t.allocate_local(&d1);
  auto b = t.allocate_local(&d2);
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  EXPECT_EQ(a.value(), 1);  // first TiD goes to the executive kernel
  EXPECT_EQ(b.value(), 2);
  EXPECT_EQ(t.size(), 2u);
}

TEST(AddressTable, RejectsNullDevice) {
  AddressTable t;
  EXPECT_EQ(t.allocate_local(nullptr).status().code(), Errc::InvalidArgument);
}

TEST(AddressTable, LookupLocal) {
  AddressTable t;
  DummyDevice d;
  const auto tid = t.allocate_local(&d).value();
  auto e = t.lookup(tid);
  ASSERT_TRUE(e.is_ok());
  EXPECT_EQ(e.value().kind, AddressEntry::Kind::Local);
  EXPECT_EQ(e.value().local, &d);
}

TEST(AddressTable, LookupUnknownFails) {
  AddressTable t;
  EXPECT_EQ(t.lookup(99).status().code(), Errc::NotFound);
}

TEST(AddressTable, ProxyInterningIsIdempotent) {
  AddressTable t;
  DummyDevice pt;
  const auto pt_tid = t.allocate_local(&pt).value();
  auto p1 = t.intern_proxy(7, 42, pt_tid);
  auto p2 = t.intern_proxy(7, 42, pt_tid);
  ASSERT_TRUE(p1.is_ok());
  ASSERT_TRUE(p2.is_ok());
  EXPECT_EQ(p1.value(), p2.value());
  EXPECT_EQ(t.proxy_count(), 1u);

  auto e = t.lookup(p1.value());
  ASSERT_TRUE(e.is_ok());
  EXPECT_EQ(e.value().kind, AddressEntry::Kind::Proxy);
  EXPECT_EQ(e.value().node, 7);
  EXPECT_EQ(e.value().remote_tid, 42);
  EXPECT_EQ(e.value().via_pt, pt_tid);
}

TEST(AddressTable, DistinctRemotesGetDistinctProxies) {
  AddressTable t;
  DummyDevice pt;
  const auto pt_tid = t.allocate_local(&pt).value();
  const auto p1 = t.intern_proxy(7, 42, pt_tid).value();
  const auto p2 = t.intern_proxy(7, 43, pt_tid).value();
  const auto p3 = t.intern_proxy(8, 42, pt_tid).value();
  EXPECT_NE(p1, p2);
  EXPECT_NE(p1, p3);
  EXPECT_NE(p2, p3);
  EXPECT_EQ(t.proxy_count(), 3u);
}

TEST(AddressTable, ProxyRejectsInvalidCoordinates) {
  AddressTable t;
  EXPECT_EQ(t.intern_proxy(i2o::kNullNode, 5, 1).status().code(),
            Errc::InvalidArgument);
  EXPECT_EQ(t.intern_proxy(3, i2o::kNullTid, 1).status().code(),
            Errc::InvalidArgument);
}

TEST(AddressTable, FindProxy) {
  AddressTable t;
  DummyDevice pt;
  const auto pt_tid = t.allocate_local(&pt).value();
  EXPECT_FALSE(t.find_proxy(9, 9, pt_tid).has_value());
  const auto p = t.intern_proxy(9, 9, pt_tid).value();
  ASSERT_TRUE(t.find_proxy(9, 9, pt_tid).has_value());
  EXPECT_EQ(*t.find_proxy(9, 9, pt_tid), p);
}

TEST(AddressTable, SameRemoteViaDifferentTransportsGetsDistinctProxies) {
  // Paper section 4: per-route proxies let one node use multiple
  // transports to the same remote device in parallel.
  AddressTable t;
  DummyDevice pt1;
  DummyDevice pt2;
  const auto pt1_tid = t.allocate_local(&pt1).value();
  const auto pt2_tid = t.allocate_local(&pt2).value();
  const auto via1 = t.intern_proxy(7, 42, pt1_tid).value();
  const auto via2 = t.intern_proxy(7, 42, pt2_tid).value();
  EXPECT_NE(via1, via2);
  EXPECT_EQ(t.proxy_count(), 2u);
  EXPECT_EQ(t.lookup(via1).value().via_pt, pt1_tid);
  EXPECT_EQ(t.lookup(via2).value().via_pt, pt2_tid);
}

TEST(AddressTable, ReleaseRecyclesTid) {
  AddressTable t;
  DummyDevice d1;
  DummyDevice d2;
  const auto a = t.allocate_local(&d1).value();
  ASSERT_TRUE(t.release(a).is_ok());
  EXPECT_EQ(t.lookup(a).status().code(), Errc::NotFound);
  const auto b = t.allocate_local(&d2).value();
  EXPECT_EQ(b, a);  // recycled from the free list
}

TEST(AddressTable, ReleaseProxyClearsIndex) {
  AddressTable t;
  DummyDevice pt;
  const auto pt_tid = t.allocate_local(&pt).value();
  const auto p = t.intern_proxy(5, 6, pt_tid).value();
  ASSERT_TRUE(t.release(p).is_ok());
  EXPECT_FALSE(t.find_proxy(5, 6, pt_tid).has_value());
  EXPECT_EQ(t.proxy_count(), 0u);
}

TEST(AddressTable, ReleaseUnknownFails) {
  AddressTable t;
  EXPECT_EQ(t.release(77).code(), Errc::NotFound);
}

TEST(AddressTable, TidSpaceExhaustion) {
  AddressTable t;
  DummyDevice d;
  for (i2o::Tid i = 1; i <= i2o::kMaxTid; ++i) {
    ASSERT_TRUE(t.allocate_local(&d).is_ok()) << i;
  }
  EXPECT_EQ(t.allocate_local(&d).status().code(), Errc::ResourceExhausted);
  // Releasing one frees the space again.
  ASSERT_TRUE(t.release(100).is_ok());
  EXPECT_TRUE(t.allocate_local(&d).is_ok());
}

// The intern hit path takes only a shared lock, so readers race with
// each other and with genuine-miss writers. Run under TSan (the
// build-tsan tree) this is the proof the shared_mutex conversion is
// sound: concurrent interning of the same triple converges on one TiD
// while distinct triples stay distinct, with lookups mixed in.
TEST(AddressTable, ConcurrentInterningIsRaceFree) {
  AddressTable t;
  DummyDevice d;
  const auto local = t.allocate_local(&d).value();

  constexpr int kThreads = 4;
  constexpr int kIters = 2000;
  std::vector<std::thread> threads;
  std::array<i2o::Tid, kThreads> shared_tid{};
  std::atomic<bool> failed{false};
  threads.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    threads.emplace_back([&, w] {
      for (int i = 0; i < kIters; ++i) {
        // Hot shared key: every thread must agree on its TiD.
        auto hot = t.intern_proxy(7, 42, 3);
        if (!hot.is_ok()) {
          failed = true;
          return;
        }
        shared_tid[static_cast<std::size_t>(w)] = hot.value();
        // Per-thread key: exercises the exclusive-lock miss path once,
        // the shared-lock hit path thereafter.
        auto own = t.intern_proxy(static_cast<i2o::NodeId>(10 + w), 42, 3);
        if (!own.is_ok() || !t.lookup(own.value()).is_ok() ||
            t.local_device(local) != &d) {
          failed = true;
          return;
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  ASSERT_FALSE(failed.load());
  for (int w = 1; w < kThreads; ++w) {
    EXPECT_EQ(shared_tid[static_cast<std::size_t>(w)], shared_tid[0]);
  }
  // One proxy per distinct triple: the hot key plus one per thread.
  EXPECT_EQ(t.size(), 1u + 1u + kThreads);
}

}  // namespace
}  // namespace xdaq::core
