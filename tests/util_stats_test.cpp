#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/random.hpp"

namespace xdaq {
namespace {

TEST(RunningStats, EmptyIsZero) {
  const RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, KnownSequence) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.add(x);
  }
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample stddev of this classic sequence: sqrt(32/7).
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, SingleSampleVarianceIsZero) {
  RunningStats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
}

TEST(Sampler, MedianOddEven) {
  Sampler odd;
  for (const double x : {5.0, 1.0, 3.0}) {
    odd.add(x);
  }
  EXPECT_DOUBLE_EQ(odd.median(), 3.0);

  Sampler even;
  for (const double x : {4.0, 1.0, 3.0, 2.0}) {
    even.add(x);
  }
  EXPECT_DOUBLE_EQ(even.median(), 2.5);
}

TEST(Sampler, Percentiles) {
  Sampler s;
  for (int i = 1; i <= 100; ++i) {
    s.add(static_cast<double>(i));
  }
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_NEAR(s.percentile(50), 50.5, 1e-9);
  EXPECT_NEAR(s.percentile(99), 99.01, 1e-9);
}

TEST(Sampler, AddAfterPercentileResorts) {
  Sampler s;
  s.add(10.0);
  s.add(20.0);
  EXPECT_DOUBLE_EQ(s.median(), 15.0);
  s.add(0.0);
  EXPECT_DOUBLE_EQ(s.median(), 10.0);
}

TEST(Sampler, MeanStddevMatchRunningStats) {
  Rng rng(7);
  Sampler s;
  RunningStats r;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform() * 100.0;
    s.add(x);
    r.add(x);
  }
  EXPECT_NEAR(s.mean(), r.mean(), 1e-9);
  EXPECT_NEAR(s.stddev(), r.stddev(), 1e-9);
}

TEST(LinearFit, ExactLine) {
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 64; ++i) {
    xs.push_back(static_cast<double>(i));
    ys.push_back(3.25 * i + 8.9);  // the paper's constant-overhead shape
  }
  const auto fit = LinearFit::fit(xs, ys);
  EXPECT_NEAR(fit.slope, 3.25, 1e-9);
  EXPECT_NEAR(fit.intercept, 8.9, 1e-9);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(LinearFit, ConstantSeriesHasZeroSlope) {
  const std::vector<double> xs{1, 2, 3, 4};
  const std::vector<double> ys{8.9, 8.9, 8.9, 8.9};
  const auto fit = LinearFit::fit(xs, ys);
  EXPECT_NEAR(fit.slope, 0.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 8.9, 1e-12);
}

TEST(LinearFit, DegenerateInputs) {
  const auto none = LinearFit::fit({}, {});
  EXPECT_DOUBLE_EQ(none.slope, 0.0);
  const auto one = LinearFit::fit({5.0}, {7.0});
  EXPECT_DOUBLE_EQ(one.intercept, 7.0);
  // All x identical: slope undefined, falls back to mean intercept.
  const auto vert = LinearFit::fit({2.0, 2.0}, {1.0, 3.0});
  EXPECT_DOUBLE_EQ(vert.slope, 0.0);
  EXPECT_DOUBLE_EQ(vert.intercept, 2.0);
}

TEST(Histogram, BinningAndOverflow) {
  Histogram h(0.0, 10.0, 10);
  h.add(-1.0);
  h.add(0.0);
  h.add(5.5);
  h.add(9.999);
  h.add(10.0);
  h.add(42.0);
  EXPECT_EQ(h.total(), 6u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.count_at(0), 1u);
  EXPECT_EQ(h.count_at(5), 1u);
  EXPECT_EQ(h.count_at(9), 1u);
  EXPECT_DOUBLE_EQ(h.bin_low(5), 5.0);
  EXPECT_DOUBLE_EQ(h.bin_high(5), 6.0);
}

TEST(Histogram, RejectsBadRange) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
  // Inverted range must throw too - and validation has to happen before
  // the bin width is computed (bins == 0 would otherwise divide by zero
  // before the check was ever reached).
  EXPECT_THROW(Histogram(5.0, -5.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(2.0, -2.0, 0), std::invalid_argument);
}

TEST(Histogram, UsableAfterFailedConstruction) {
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
  Histogram h(0.0, 4.0, 4);
  h.add(2.5);
  EXPECT_EQ(h.total(), 1u);
  EXPECT_EQ(h.count_at(2), 1u);
}

}  // namespace
}  // namespace xdaq
