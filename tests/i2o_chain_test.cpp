#include "i2o/chain.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "util/random.hpp"

namespace xdaq::i2o {
namespace {

std::vector<std::byte> fragment_payload(const ChainHeader& ch,
                                        std::span<const std::byte> body) {
  std::vector<std::byte> out(kChainHeaderBytes + body.size());
  encode_chain_header(ch, out);
  std::copy(body.begin(), body.end(), out.begin() + kChainHeaderBytes);
  return out;
}

/// Splits `message` into chained fragment payloads of at most `max_body`.
std::vector<std::vector<std::byte>> make_chain(std::uint32_t chain_id,
                                               std::span<const std::byte> msg,
                                               std::size_t max_body) {
  const auto sizes = chain_fragment_sizes(msg.size(), max_body);
  std::vector<std::vector<std::byte>> out;
  std::size_t off = 0;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    ChainHeader ch;
    ch.chain_id = chain_id;
    ch.index = static_cast<std::uint16_t>(i);
    ch.total = static_cast<std::uint16_t>(sizes.size());
    ch.total_bytes = static_cast<std::uint32_t>(msg.size());
    ch.offset = static_cast<std::uint32_t>(off);
    out.push_back(fragment_payload(ch, msg.subspan(off, sizes[i])));
    off += sizes[i];
  }
  return out;
}

std::vector<std::byte> as_bytes(const std::vector<std::uint8_t>& v) {
  std::vector<std::byte> out(v.size());
  std::transform(v.begin(), v.end(), out.begin(),
                 [](std::uint8_t b) { return static_cast<std::byte>(b); });
  return out;
}

TEST(ChainHeader, RoundTrip) {
  ChainHeader ch{0xABCD1234, 3, 9, 100000, 36000};
  std::vector<std::byte> buf(kChainHeaderBytes);
  encode_chain_header(ch, buf);
  auto d = decode_chain_header(buf);
  ASSERT_TRUE(d.is_ok());
  EXPECT_EQ(d.value().chain_id, ch.chain_id);
  EXPECT_EQ(d.value().index, ch.index);
  EXPECT_EQ(d.value().total, ch.total);
  EXPECT_EQ(d.value().total_bytes, ch.total_bytes);
  EXPECT_EQ(d.value().offset, ch.offset);
}

TEST(ChainHeader, DecodeRejectsBadFields) {
  std::vector<std::byte> buf(kChainHeaderBytes);
  encode_chain_header(ChainHeader{1, 0, 0, 10, 0}, buf);  // total == 0
  EXPECT_EQ(decode_chain_header(buf).status().code(), Errc::MalformedFrame);
  encode_chain_header(ChainHeader{1, 5, 5, 10, 0}, buf);  // index >= total
  EXPECT_EQ(decode_chain_header(buf).status().code(), Errc::MalformedFrame);
  EXPECT_EQ(decode_chain_header(std::span(buf.data(), 4)).status().code(),
            Errc::MalformedFrame);
}

TEST(ChainFragmentSizes, PartitionsExactly) {
  const auto sizes = chain_fragment_sizes(10, 4);
  ASSERT_EQ(sizes.size(), 3u);
  EXPECT_EQ(sizes[0], 4u);
  EXPECT_EQ(sizes[1], 4u);
  EXPECT_EQ(sizes[2], 2u);
  EXPECT_EQ(std::accumulate(sizes.begin(), sizes.end(), 0u), 10u);
}

TEST(ChainFragmentSizes, EmptyMessageHasOneFragment) {
  const auto sizes = chain_fragment_sizes(0, 128);
  ASSERT_EQ(sizes.size(), 1u);
  EXPECT_EQ(sizes[0], 0u);
}

TEST(Reassembler, InOrderDelivery) {
  const auto msg = as_bytes(make_payload(1000, 11));
  const auto frags = make_chain(1, msg, 256);
  ChainReassembler r;
  for (std::size_t i = 0; i < frags.size(); ++i) {
    auto res = r.feed(7, frags[i]);
    ASSERT_TRUE(res.is_ok());
    if (i + 1 < frags.size()) {
      EXPECT_FALSE(res.value().has_value());
      EXPECT_EQ(r.pending(), 1u);
    } else {
      ASSERT_TRUE(res.value().has_value());
      EXPECT_EQ(*res.value(), msg);
      EXPECT_EQ(r.pending(), 0u);
    }
  }
}

TEST(Reassembler, OutOfOrderDelivery) {
  const auto msg = as_bytes(make_payload(1500, 12));
  auto frags = make_chain(2, msg, 400);
  std::reverse(frags.begin(), frags.end());
  ChainReassembler r;
  std::vector<std::byte> done;
  for (const auto& f : frags) {
    auto res = r.feed(3, f);
    ASSERT_TRUE(res.is_ok());
    if (res.value().has_value()) {
      done = std::move(*res.value());
    }
  }
  EXPECT_EQ(done, msg);
}

TEST(Reassembler, InterleavedChainsFromDifferentSenders) {
  const auto m1 = as_bytes(make_payload(600, 1));
  const auto m2 = as_bytes(make_payload(600, 2));
  const auto f1 = make_chain(9, m1, 200);
  const auto f2 = make_chain(9, m2, 200);  // same chain id, different sender
  ChainReassembler r;
  std::vector<std::byte> d1;
  std::vector<std::byte> d2;
  for (std::size_t i = 0; i < f1.size(); ++i) {
    auto a = r.feed(100, f1[i]);
    auto b = r.feed(200, f2[i]);
    ASSERT_TRUE(a.is_ok());
    ASSERT_TRUE(b.is_ok());
    if (a.value().has_value()) {
      d1 = std::move(*a.value());
    }
    if (b.value().has_value()) {
      d2 = std::move(*b.value());
    }
  }
  EXPECT_EQ(d1, m1);
  EXPECT_EQ(d2, m2);
}

TEST(Reassembler, DuplicateFragmentRejected) {
  const auto msg = as_bytes(make_payload(500, 3));
  const auto frags = make_chain(4, msg, 200);
  ChainReassembler r;
  ASSERT_TRUE(r.feed(1, frags[0]).is_ok());
  const auto dup = r.feed(1, frags[0]);
  EXPECT_EQ(dup.status().code(), Errc::MalformedFrame);
  EXPECT_EQ(r.pending(), 0u);  // poisoned chain dropped
}

TEST(Reassembler, InconsistentMetadataRejected) {
  const auto msg = as_bytes(make_payload(500, 4));
  auto frags = make_chain(5, msg, 200);
  ChainReassembler r;
  ASSERT_TRUE(r.feed(1, frags[0]).is_ok());
  // Corrupt the second fragment's total_bytes.
  ChainHeader bad{5, 1, static_cast<std::uint16_t>(frags.size()), 99, 200};
  const auto payload =
      fragment_payload(bad, std::span(frags[1]).subspan(kChainHeaderBytes));
  EXPECT_EQ(r.feed(1, payload).status().code(), Errc::MalformedFrame);
}

TEST(Reassembler, FragmentOutsideBoundsRejected) {
  ChainHeader ch{6, 0, 2, 100, 90};  // offset 90 + body 50 > 100
  std::vector<std::byte> body(50);
  const auto payload = fragment_payload(ch, body);
  ChainReassembler r;
  EXPECT_EQ(r.feed(1, payload).status().code(), Errc::MalformedFrame);
}

TEST(Reassembler, AbortDropsPartialChain) {
  const auto msg = as_bytes(make_payload(500, 5));
  const auto frags = make_chain(7, msg, 200);
  ChainReassembler r;
  ASSERT_TRUE(r.feed(1, frags[0]).is_ok());
  EXPECT_EQ(r.pending(), 1u);
  r.abort(1, 7);
  EXPECT_EQ(r.pending(), 0u);
}

class ChainSweepP
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(ChainSweepP, RoundTripAcrossSizes) {
  const auto [msg_size, max_body] = GetParam();
  const auto msg = as_bytes(make_payload(msg_size, 99));
  const auto frags = make_chain(42, msg, max_body);
  ChainReassembler r;
  std::vector<std::byte> done;
  bool completed = false;
  for (const auto& f : frags) {
    auto res = r.feed(8, f);
    ASSERT_TRUE(res.is_ok());
    if (res.value().has_value()) {
      done = std::move(*res.value());
      completed = true;
    }
  }
  ASSERT_TRUE(completed);
  EXPECT_EQ(done, msg);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ChainSweepP,
    ::testing::Values(std::pair<std::size_t, std::size_t>{0, 64},
                      std::pair<std::size_t, std::size_t>{1, 64},
                      std::pair<std::size_t, std::size_t>{64, 64},
                      std::pair<std::size_t, std::size_t>{65, 64},
                      std::pair<std::size_t, std::size_t>{1000, 1},
                      std::pair<std::size_t, std::size_t>{100000, 4096},
                      std::pair<std::size_t, std::size_t>{262144, 65536}));

}  // namespace
}  // namespace xdaq::i2o
