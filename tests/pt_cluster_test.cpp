#include "pt/cluster.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "core/requester.hpp"
#include "test_devices.hpp"
#include "util/random.hpp"

namespace xdaq::pt {
namespace {

using core::Requester;
using xdaq::testing::CounterDevice;
using xdaq::testing::EchoDevice;
using xdaq::testing::kXfnCount;
using xdaq::testing::kXfnEcho;
using xdaq::testing::pump_until;

std::vector<std::byte> bytes_of(const std::vector<std::uint8_t>& v) {
  std::vector<std::byte> out(v.size());
  std::memcpy(out.data(), v.data(), v.size());
  return out;
}

TEST(Cluster, SetsUpNodesRoutesAndPorts) {
  Cluster cluster(ClusterConfig{.nodes = 3});
  EXPECT_EQ(cluster.size(), 3u);
  EXPECT_EQ(cluster.fabric().port_count(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(cluster.node(i).node_id(), cluster.node_id(i));
    EXPECT_TRUE(cluster.node(i).tid_of("pt_gm").is_ok());
  }
}

TEST(Cluster, ConnectCreatesNamedProxy) {
  Cluster cluster;
  ASSERT_TRUE(
      cluster.install(1, std::make_unique<EchoDevice>(), "echo").is_ok());
  auto proxy = cluster.connect(0, 1, "echo", "remote_echo");
  ASSERT_TRUE(proxy.is_ok());
  EXPECT_EQ(cluster.node(0).tid_of("remote_echo").value(), proxy.value());
  // Interning twice yields the same proxy.
  auto again = cluster.connect(0, 1, "echo");
  ASSERT_TRUE(again.is_ok());
  EXPECT_EQ(again.value(), proxy.value());
}

TEST(Cluster, ConnectUnknownInstanceFails) {
  Cluster cluster;
  EXPECT_EQ(cluster.connect(0, 1, "ghost").status().code(), Errc::NotFound);
}

class ClusterModeP
    : public ::testing::TestWithParam<core::TransportDevice::Mode> {};

TEST_P(ClusterModeP, CrossNodeEchoRoundTrip) {
  ClusterConfig cfg;
  cfg.peer.mode = GetParam();
  Cluster cluster(cfg);
  ASSERT_TRUE(
      cluster.install(1, std::make_unique<EchoDevice>(), "echo").is_ok());
  auto req = std::make_unique<Requester>();
  Requester* req_raw = req.get();
  ASSERT_TRUE(cluster.install(0, std::move(req), "req").is_ok());
  const auto proxy = cluster.connect(0, 1, "echo").value();
  ASSERT_TRUE(cluster.enable_all().is_ok());
  cluster.start_all();

  const auto payload = bytes_of(make_payload(256, 7));
  auto reply = req_raw->call_private(proxy, i2o::OrgId::kTest, kXfnEcho,
                                     payload, xdaq::core::CallOptions{.timeout = std::chrono::seconds(5)});
  cluster.stop_all();
  ASSERT_TRUE(reply.is_ok()) << reply.status().to_string();
  EXPECT_FALSE(reply.value().failed());
  ASSERT_GE(reply.value().payload.size(), payload.size());
  EXPECT_EQ(std::memcmp(reply.value().payload.data(), payload.data(),
                        payload.size()),
            0);
}

INSTANTIATE_TEST_SUITE_P(
    Modes, ClusterModeP,
    ::testing::Values(core::TransportDevice::Mode::Polling,
                      core::TransportDevice::Mode::Task));

TEST(Cluster, InitiatorProxyIsReusedAcrossCalls) {
  Cluster cluster;
  ASSERT_TRUE(
      cluster.install(1, std::make_unique<EchoDevice>(), "echo").is_ok());
  auto req = std::make_unique<Requester>();
  Requester* req_raw = req.get();
  ASSERT_TRUE(cluster.install(0, std::move(req), "req").is_ok());
  const auto proxy = cluster.connect(0, 1, "echo").value();
  ASSERT_TRUE(cluster.enable_all().is_ok());
  cluster.start_all();
  for (int i = 0; i < 5; ++i) {
    auto reply = req_raw->call_private(proxy, i2o::OrgId::kTest, kXfnEcho,
                                       {}, xdaq::core::CallOptions{.timeout = std::chrono::seconds(5)});
    ASSERT_TRUE(reply.is_ok());
  }
  cluster.stop_all();
  // Node 1 interned exactly one proxy for the requester on node 0.
  EXPECT_EQ(cluster.node(1).address_table().proxy_count(), 1u);
}

TEST(Cluster, PayloadIntegrityAcrossSizes) {
  Cluster cluster;
  ASSERT_TRUE(
      cluster.install(1, std::make_unique<EchoDevice>(), "echo").is_ok());
  auto req = std::make_unique<Requester>();
  Requester* req_raw = req.get();
  ASSERT_TRUE(cluster.install(0, std::move(req), "req").is_ok());
  const auto proxy = cluster.connect(0, 1, "echo").value();
  ASSERT_TRUE(cluster.enable_all().is_ok());
  cluster.start_all();
  for (const std::size_t size :
       {0u, 1u, 3u, 4u, 64u, 1024u, 65536u, 200000u}) {
    const auto payload = bytes_of(make_payload(size, size + 1));
    auto reply = req_raw->call_private(proxy, i2o::OrgId::kTest, kXfnEcho,
                                       payload, xdaq::core::CallOptions{.timeout = std::chrono::seconds(5)});
    ASSERT_TRUE(reply.is_ok()) << "size=" << size;
    ASSERT_GE(reply.value().payload.size(), size);
    if (size != 0) {
      EXPECT_EQ(std::memcmp(reply.value().payload.data(), payload.data(),
                            size),
                0)
          << "size=" << size;
    }
  }
  cluster.stop_all();
}

TEST(Cluster, ManyToOneCrossTraffic) {
  // The XDAQ naming motivation: n nodes talk to m nodes, channels cross.
  ClusterConfig cfg;
  cfg.nodes = 4;
  Cluster cluster(cfg);
  auto counter = std::make_unique<CounterDevice>();
  CounterDevice* counter_raw = counter.get();
  ASSERT_TRUE(cluster.install(3, std::move(counter), "sink").is_ok());

  struct Spammer : core::Device {
    explicit Spammer(i2o::Tid target) : Device("Spammer"), target_(target) {}
    Status fire(int n) {
      for (int i = 0; i < n; ++i) {
        auto frame = make_private_frame(target_, i2o::OrgId::kTest,
                                        kXfnCount, {});
        if (!frame.is_ok()) {
          return frame.status();
        }
        if (Status st = frame_send(std::move(frame).value()); !st.is_ok()) {
          return st;
        }
      }
      return Status::ok();
    }
    i2o::Tid target_;
  };

  std::vector<Spammer*> spammers;
  for (std::size_t i = 0; i < 3; ++i) {
    const auto proxy = cluster.connect(i, 3, "sink").value();
    auto sp = std::make_unique<Spammer>(proxy);
    spammers.push_back(sp.get());
    ASSERT_TRUE(cluster.install(i, std::move(sp), "spam").is_ok());
  }
  ASSERT_TRUE(cluster.enable_all().is_ok());
  cluster.start_all();
  for (auto* sp : spammers) {
    ASSERT_TRUE(sp->fire(100).is_ok());
  }
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(5);
  while (counter_raw->count() < 300 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  cluster.stop_all();
  EXPECT_EQ(counter_raw->count(), 300u);
}

TEST(Cluster, ControlPlaneAcrossNodes) {
  // Primary-host pattern: node 0 configures and enables a device on node 1
  // purely with executive messages addressed to the remote kernel.
  Cluster cluster;
  ASSERT_TRUE(
      cluster.install(1, std::make_unique<EchoDevice>(), "echo").is_ok());
  auto req = std::make_unique<Requester>();
  Requester* req_raw = req.get();
  ASSERT_TRUE(cluster.install(0, std::move(req), "req").is_ok());
  // Proxy for node 1's kernel (TiD 1).
  const auto kernel_proxy =
      cluster.node(0)
          .register_remote(cluster.node_id(1), i2o::kExecutiveTid)
          .value();
  // Enable only the PTs so frames can flow; echo stays Loaded.
  for (std::size_t i = 0; i < 2; ++i) {
    ASSERT_TRUE(
        cluster.node(i).enable(cluster.node(i).tid_of("pt_gm").value())
            .is_ok());
  }
  cluster.start_all();

  auto status = req_raw->call_standard(kernel_proxy,
                                       i2o::Function::ExecStatusGet, {},
                                       xdaq::core::CallOptions{.timeout = std::chrono::seconds(5)});
  ASSERT_TRUE(status.is_ok()) << status.status().to_string();
  auto params = status.value().params();
  ASSERT_TRUE(params.is_ok());
  EXPECT_EQ(i2o::param_value(params.value(), "name"), "node2");
  EXPECT_TRUE(i2o::param_has(params.value(), "device.echo"));

  auto enable = req_raw->call_standard(kernel_proxy,
                                       i2o::Function::ExecEnable,
                                       {{"instance", "echo"}},
                                       xdaq::core::CallOptions{.timeout = std::chrono::seconds(5)});
  ASSERT_TRUE(enable.is_ok());
  EXPECT_FALSE(enable.value().failed());
  cluster.stop_all();
  EXPECT_EQ(
      cluster.node(1).device(cluster.node(1).tid_of("echo").value())->state(),
      core::DeviceState::Enabled);
}

}  // namespace
}  // namespace xdaq::pt
