#include "netio/socket.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <thread>

#include "mem/pool.hpp"
#include "mem/sgl.hpp"
#include "util/random.hpp"

namespace xdaq::netio {
namespace {

std::vector<std::byte> bytes_of(const std::vector<std::uint8_t>& v) {
  std::vector<std::byte> out(v.size());
  std::memcpy(out.data(), v.data(), v.size());
  return out;
}

TEST(TcpListener, BindsEphemeralPort) {
  auto l = TcpListener::bind(0);
  ASSERT_TRUE(l.is_ok()) << l.status().to_string();
  EXPECT_GT(l.value().port(), 0);
}

TEST(TcpStream, ConnectRefusedReportsError) {
  // Bind then close to obtain a port that is very likely unused.
  std::uint16_t dead_port = 0;
  {
    auto l = TcpListener::bind(0);
    ASSERT_TRUE(l.is_ok());
    dead_port = l.value().port();
  }
  auto s = TcpStream::connect("127.0.0.1", dead_port);
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.status().code(), Errc::IoError);
}

TEST(TcpStream, BadAddressRejected) {
  auto s = TcpStream::connect("not-an-ip", 1234);
  EXPECT_EQ(s.status().code(), Errc::InvalidArgument);
}

TEST(Tcp, EchoRoundTrip) {
  auto listener = TcpListener::bind(0);
  ASSERT_TRUE(listener.is_ok());
  const std::uint16_t port = listener.value().port();

  std::thread server([&listener] {
    auto conn = listener.value().accept();
    ASSERT_TRUE(conn.is_ok());
    std::vector<std::byte> buf(1000);
    ASSERT_TRUE(conn.value().read_exact(buf).is_ok());
    ASSERT_TRUE(conn.value().write_all(buf).is_ok());
  });

  auto client = TcpStream::connect("127.0.0.1", port);
  ASSERT_TRUE(client.is_ok());
  ASSERT_TRUE(client.value().set_nodelay(true).is_ok());

  const auto msg = bytes_of(make_payload(1000, 11));
  ASSERT_TRUE(client.value().write_all(msg).is_ok());
  std::vector<std::byte> echo(1000);
  ASSERT_TRUE(client.value().read_exact(echo).is_ok());
  EXPECT_EQ(echo, msg);
  server.join();
}

TEST(Tcp, ReadExactDetectsEof) {
  auto listener = TcpListener::bind(0);
  ASSERT_TRUE(listener.is_ok());
  const std::uint16_t port = listener.value().port();

  std::thread server([&listener] {
    auto conn = listener.value().accept();
    ASSERT_TRUE(conn.is_ok());
    std::vector<std::byte> half(10, std::byte{1});
    ASSERT_TRUE(conn.value().write_all(half).is_ok());
    // close with only half the expected bytes sent
  });

  auto client = TcpStream::connect("127.0.0.1", port);
  ASSERT_TRUE(client.is_ok());
  std::vector<std::byte> buf(20);
  const auto s = client.value().read_exact(buf);
  EXPECT_EQ(s.code(), Errc::ConnectionClosed);
  server.join();
}

TEST(Tcp, NonblockingReadReportsTimeout) {
  auto listener = TcpListener::bind(0);
  ASSERT_TRUE(listener.is_ok());
  const std::uint16_t port = listener.value().port();

  std::thread server([&listener] {
    auto conn = listener.value().accept();
    ASSERT_TRUE(conn.is_ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  });

  auto client = TcpStream::connect("127.0.0.1", port);
  ASSERT_TRUE(client.is_ok());
  ASSERT_TRUE(client.value().set_nonblocking(true).is_ok());
  std::vector<std::byte> buf(16);
  auto r = client.value().read_some(buf);
  EXPECT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), Errc::Timeout);
  server.join();
}

TEST(TcpListener, TryAcceptNonblocking) {
  auto listener = TcpListener::bind(0);
  ASSERT_TRUE(listener.is_ok());
  ASSERT_TRUE(listener.value().set_nonblocking(true).is_ok());

  auto none = listener.value().try_accept();
  ASSERT_TRUE(none.is_ok());
  EXPECT_FALSE(none.value().has_value());

  auto client = TcpStream::connect("127.0.0.1", listener.value().port());
  ASSERT_TRUE(client.is_ok());
  // Accept may need a beat for the handshake to complete.
  for (int i = 0; i < 100; ++i) {
    auto got = listener.value().try_accept();
    ASSERT_TRUE(got.is_ok());
    if (got.value().has_value()) {
      SUCCEED();
      return;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  FAIL() << "connection never became acceptable";
}

TEST(Poller, SignalsReadableFd) {
  auto listener = TcpListener::bind(0);
  ASSERT_TRUE(listener.is_ok());
  const std::uint16_t port = listener.value().port();

  std::thread server([&listener] {
    auto conn = listener.value().accept();
    ASSERT_TRUE(conn.is_ok());
    std::vector<std::byte> one(1, std::byte{7});
    ASSERT_TRUE(conn.value().write_all(one).is_ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  });

  auto client = TcpStream::connect("127.0.0.1", port);
  ASSERT_TRUE(client.is_ok());

  Poller poller;
  poller.watch(client.value().fd());
  EXPECT_EQ(poller.watched(), 1u);
  auto ready = poller.wait_readable(1000);
  ASSERT_TRUE(ready.is_ok());
  ASSERT_EQ(ready.value().size(), 1u);
  EXPECT_EQ(ready.value()[0], client.value().fd());

  poller.unwatch(client.value().fd());
  EXPECT_EQ(poller.watched(), 0u);
  server.join();
}

TEST(Poller, TimesOutWithNoTraffic) {
  auto listener = TcpListener::bind(0);
  ASSERT_TRUE(listener.is_ok());
  Poller poller;
  poller.watch(listener.value().fd());
  auto ready = poller.wait_readable(10);
  ASSERT_TRUE(ready.is_ok());
  EXPECT_TRUE(ready.value().empty());
}

TEST(Tcp, WriteVecGathersManyParts) {
  auto listener = TcpListener::bind(0);
  ASSERT_TRUE(listener.is_ok());
  const std::uint16_t port = listener.value().port();

  // More parts than write_vec's per-sendmsg iovec budget (64), so the
  // consumed-offset resume path is exercised too.
  std::vector<std::vector<std::byte>> parts;
  std::vector<std::byte> expect;
  Rng rng(7);
  for (int i = 0; i < 150; ++i) {
    std::vector<std::byte> p(rng.between(0, 97));
    for (auto& b : p) {
      b = static_cast<std::byte>(rng.below(256));
    }
    expect.insert(expect.end(), p.begin(), p.end());
    parts.push_back(std::move(p));
  }

  std::thread server([&listener, total = expect.size()] {
    auto conn = listener.value().accept();
    ASSERT_TRUE(conn.is_ok());
    std::vector<std::byte> buf(total);
    ASSERT_TRUE(conn.value().read_exact(buf).is_ok());
    ASSERT_TRUE(conn.value().write_all(buf).is_ok());
  });

  auto client = TcpStream::connect("127.0.0.1", port);
  ASSERT_TRUE(client.is_ok());
  std::vector<std::span<const std::byte>> spans;
  spans.reserve(parts.size());
  for (const auto& p : parts) {
    spans.emplace_back(p);
  }
  ASSERT_TRUE(client.value().write_vec(spans).is_ok());
  std::vector<std::byte> echo(expect.size());
  ASSERT_TRUE(client.value().read_exact(echo).is_ok());
  EXPECT_EQ(echo, expect);
  server.join();
}

// SGL scatter -> iovec gather round trip: the segment list goes onto the
// wire via sendmsg directly from pooled memory - gather_into is never
// called, yet the receiver sees the exact original bytes.
TEST(Tcp, SglScatterIovecGatherRoundTrip) {
  mem::TablePool pool;
  const auto payload = bytes_of(make_payload(10000, 23));
  auto sgl = mem::ScatterGatherList::scatter(pool, payload, 1536);
  ASSERT_TRUE(sgl.is_ok());
  ASSERT_GT(sgl.value().segment_count(), 1u);
  ASSERT_EQ(sgl.value().total_bytes(), payload.size());

  auto listener = TcpListener::bind(0);
  ASSERT_TRUE(listener.is_ok());
  const std::uint16_t port = listener.value().port();
  std::thread server([&listener, total = payload.size()] {
    auto conn = listener.value().accept();
    ASSERT_TRUE(conn.is_ok());
    std::vector<std::byte> buf(total);
    ASSERT_TRUE(conn.value().read_exact(buf).is_ok());
    ASSERT_TRUE(conn.value().write_all(buf).is_ok());
  });

  auto client = TcpStream::connect("127.0.0.1", port);
  ASSERT_TRUE(client.is_ok());
  ASSERT_TRUE(client.value().write_vec(sgl.value().spans()).is_ok());
  std::vector<std::byte> echo(payload.size());
  ASSERT_TRUE(client.value().read_exact(echo).is_ok());
  EXPECT_EQ(echo, payload);
  server.join();
}

TEST(Socket, MoveTransfersFd) {
  auto listener = TcpListener::bind(0);
  ASSERT_TRUE(listener.is_ok());
  Socket a(listener.value().fd());
  const int fd = a.fd();
  Socket b = std::move(a);
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move) intentional
  EXPECT_EQ(b.fd(), fd);
  (void)b.release();  // listener still owns the fd; avoid double close
}

}  // namespace
}  // namespace xdaq::netio
