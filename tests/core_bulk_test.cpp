#include "core/bulk.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <mutex>
#include <thread>

#include "pt/cluster.hpp"
#include "util/random.hpp"

namespace xdaq::core {
namespace {

constexpr std::uint16_t kXfnBulk = 0x0042;

/// Accumulates bulk messages and records their exact contents.
/// Handler state is mutex-protected: the tests read it from the main
/// thread while the dispatch thread appends.
class BulkSink final : public Device {
 public:
  BulkSink() : Device("BulkSink") {
    bind(i2o::OrgId::kTest, kXfnBulk, [this](const MessageContext& ctx) {
      auto fed = receiver_.feed(ctx);
      const std::scoped_lock lock(mutex_);
      if (!fed.is_ok()) {
        ++errors_;
        return;
      }
      if (fed.value().has_value()) {
        messages_.push_back(std::move(*fed.value()));
      }
    });
  }

  std::size_t message_count() const {
    const std::scoped_lock lock(mutex_);
    return messages_.size();
  }
  std::vector<std::vector<std::byte>> messages() const {
    const std::scoped_lock lock(mutex_);
    return messages_;
  }
  int errors() const {
    const std::scoped_lock lock(mutex_);
    return errors_;
  }
  void clear() {
    const std::scoped_lock lock(mutex_);
    messages_.clear();
  }

 private:
  mutable std::mutex mutex_;
  std::vector<std::vector<std::byte>> messages_;
  int errors_ = 0;
  BulkReceiver receiver_;
};

/// Sends bulk data on demand (must run on the dispatch thread or before
/// start; here tests drive executives manually with run_once).
class BulkSource final : public Device {
 public:
  BulkSource() : Device("BulkSource") {}
  Status send_to(i2o::Tid target, std::span<const std::byte> data,
                 std::size_t max_fragment) {
    return bulk_send(*this, target, i2o::OrgId::kTest, kXfnBulk, data,
                     max_fragment);
  }
};

std::vector<std::byte> as_bytes(const std::vector<std::uint8_t>& v) {
  std::vector<std::byte> out(v.size());
  std::memcpy(out.data(), v.data(), v.size());
  return out;
}

struct BulkFixture : ::testing::Test {
  pt::Cluster cluster;
  BulkSink* sink = nullptr;
  BulkSource* source = nullptr;

  void SetUp() override {
    auto sink_dev = std::make_unique<BulkSink>();
    sink = sink_dev.get();
    ASSERT_TRUE(cluster.install(1, std::move(sink_dev), "sink").is_ok());
    auto source_dev = std::make_unique<BulkSource>();
    source = source_dev.get();
    ASSERT_TRUE(cluster.install(0, std::move(source_dev), "src").is_ok());
    ASSERT_TRUE(cluster.enable_all().is_ok());
    cluster.start_all();
  }

  void TearDown() override { cluster.stop_all(); }

  i2o::Tid sink_proxy() { return cluster.connect(0, 1, "sink").value(); }

  void pump_until_messages(std::size_t n) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (sink->message_count() < n &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
};

TEST_F(BulkFixture, ExactSizeSurvivesSingleFragment) {
  // 5 bytes: well under one fragment, but NOT word aligned - the chain
  // header must preserve the exact length through frame padding.
  const auto msg = as_bytes(make_payload(5, 1));
  ASSERT_TRUE(source->send_to(sink_proxy(), msg, 1024).is_ok());
  pump_until_messages(1);
  ASSERT_EQ(sink->message_count(), 1u);
  EXPECT_EQ(sink->messages()[0], msg);  // exact, no padding bytes
}

TEST_F(BulkFixture, EmptyMessage) {
  ASSERT_TRUE(source->send_to(sink_proxy(), {}, 1024).is_ok());
  pump_until_messages(1);
  ASSERT_EQ(sink->message_count(), 1u);
  EXPECT_TRUE(sink->messages()[0].empty());
}

TEST_F(BulkFixture, MultiFragmentRoundTrip) {
  const auto msg = as_bytes(make_payload(10000, 2));
  ASSERT_TRUE(source->send_to(sink_proxy(), msg, 1024).is_ok());
  pump_until_messages(1);
  ASSERT_EQ(sink->message_count(), 1u);
  EXPECT_EQ(sink->messages()[0], msg);
  EXPECT_EQ(sink->errors(), 0);
}

TEST_F(BulkFixture, MessageLargerThanOneFrame) {
  // Beyond the 256 KiB single-frame ceiling: the whole point of chaining.
  const auto msg = as_bytes(make_payload(1'000'000, 3));
  ASSERT_TRUE(
      source->send_to(sink_proxy(), msg, kDefaultBulkFragmentBytes)
          .is_ok());
  pump_until_messages(1);
  ASSERT_EQ(sink->message_count(), 1u);
  EXPECT_EQ(sink->messages()[0].size(), msg.size());
  EXPECT_EQ(sink->messages()[0], msg);
}

TEST_F(BulkFixture, BackToBackMessagesDoNotMix) {
  const auto m1 = as_bytes(make_payload(5000, 4));
  const auto m2 = as_bytes(make_payload(7000, 5));
  ASSERT_TRUE(source->send_to(sink_proxy(), m1, 512).is_ok());
  ASSERT_TRUE(source->send_to(sink_proxy(), m2, 512).is_ok());
  pump_until_messages(2);
  ASSERT_EQ(sink->message_count(), 2u);
  EXPECT_EQ(sink->messages()[0], m1);
  EXPECT_EQ(sink->messages()[1], m2);
}

TEST_F(BulkFixture, OddFragmentSizesPreserveContent) {
  // Fragment sizes that are not word multiples stress the padding path.
  for (const std::size_t frag : {1u, 3u, 7u, 333u}) {
    sink->clear();
    const auto msg = as_bytes(make_payload(1000, frag));
    ASSERT_TRUE(source->send_to(sink_proxy(), msg, frag).is_ok());
    pump_until_messages(1);
    ASSERT_EQ(sink->message_count(), 1u) << "frag=" << frag;
    EXPECT_EQ(sink->messages()[0], msg) << "frag=" << frag;
  }
}

TEST_F(BulkFixture, RejectsBadFragmentSize) {
  EXPECT_EQ(source->send_to(sink_proxy(), {}, 0).code(),
            Errc::InvalidArgument);
  EXPECT_EQ(
      source->send_to(sink_proxy(), {}, i2o::kMaxPayloadBytes).code(),
      Errc::InvalidArgument);
}

TEST(Bulk, UnattachedDeviceFails) {
  BulkSource loose;
  std::vector<std::byte> data(10);
  EXPECT_EQ(loose.send_to(5, data, 64).code(), Errc::FailedPrecondition);
}

}  // namespace
}  // namespace xdaq::core
