#include "i2o/frame.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <vector>

#include "i2o/wire.hpp"
#include "util/random.hpp"

namespace xdaq::i2o {
namespace {

FrameHeader sample_private_header() {
  FrameHeader h;
  h.function = static_cast<std::uint8_t>(Function::Private);
  h.organization = static_cast<std::uint16_t>(OrgId::kTest);
  h.xfunction = 0x0042;
  h.target = 17;
  h.initiator = 23;
  h.initiator_context = 0xDEADBEEF;
  h.transaction_context = 0x12345678;
  h.flags = kFlagNone;
  return h;
}

TEST(FrameSizes, HeaderConstants) {
  EXPECT_EQ(kStdHeaderBytes, 16u);
  EXPECT_EQ(kPrivateHeaderBytes, 20u);
  // The 16-bit word count bounds one frame at 256 KiB.
  EXPECT_EQ(kMaxFrameBytes, 256u * 1024u - 4u);
}

TEST(FrameSizes, PayloadRoundsUpToWords) {
  EXPECT_EQ(frame_bytes_for_payload(0, false), 16u);
  EXPECT_EQ(frame_bytes_for_payload(1, false), 20u);
  EXPECT_EQ(frame_bytes_for_payload(4, false), 20u);
  EXPECT_EQ(frame_bytes_for_payload(5, false), 24u);
  EXPECT_EQ(frame_bytes_for_payload(0, true), 20u);
  EXPECT_EQ(frame_bytes_for_payload(3, true), 24u);
  EXPECT_EQ(frame_words_for_payload(4, true), 6u);
}

TEST(FrameHeaderRoundTrip, StandardFunction) {
  FrameHeader h;
  h.function = static_cast<std::uint8_t>(Function::ExecEnable);
  h.target = kExecutiveTid;
  h.initiator = 42;
  h.initiator_context = 7;
  h.transaction_context = 9;
  std::vector<std::byte> buf(frame_bytes_for_payload(0, false));
  ASSERT_TRUE(encode_header(h, buf).is_ok());

  auto decoded = decode_header(buf);
  ASSERT_TRUE(decoded.is_ok()) << decoded.status().to_string();
  const FrameHeader& d = decoded.value();
  EXPECT_EQ(d.fn(), Function::ExecEnable);
  EXPECT_EQ(d.target, kExecutiveTid);
  EXPECT_EQ(d.initiator, 42);
  EXPECT_EQ(d.initiator_context, 7u);
  EXPECT_EQ(d.transaction_context, 9u);
  EXPECT_FALSE(d.is_private());
  EXPECT_EQ(d.payload_bytes(), 0u);
}

TEST(FrameHeaderRoundTrip, PrivateFrameCarriesOrgAndXfn) {
  const FrameHeader h = sample_private_header();
  std::vector<std::byte> buf(frame_bytes_for_payload(12, true));
  ASSERT_TRUE(encode_header(h, buf).is_ok());

  auto decoded = decode_header(buf);
  ASSERT_TRUE(decoded.is_ok());
  const FrameHeader& d = decoded.value();
  EXPECT_TRUE(d.is_private());
  EXPECT_EQ(d.org(), OrgId::kTest);
  EXPECT_EQ(d.xfunction, 0x0042);
  EXPECT_EQ(d.payload_bytes(), 12u);
}

TEST(FrameHeaderRoundTrip, TidBoundaries) {
  FrameHeader h = sample_private_header();
  h.target = kMaxTid;
  h.initiator = kMaxTid;
  std::vector<std::byte> buf(frame_bytes_for_payload(0, true));
  ASSERT_TRUE(encode_header(h, buf).is_ok());
  auto d = decode_header(buf);
  ASSERT_TRUE(d.is_ok());
  EXPECT_EQ(d.value().target, kMaxTid);
  EXPECT_EQ(d.value().initiator, kMaxTid);
}

TEST(FrameHeaderEncode, RejectsOversizedTid) {
  FrameHeader h = sample_private_header();
  h.target = kMaxTid + 1;
  std::vector<std::byte> buf(64);
  EXPECT_EQ(encode_header(h, buf).code(), Errc::InvalidArgument);
}

TEST(FrameHeaderEncode, RejectsShortBuffer) {
  const FrameHeader h = sample_private_header();
  std::vector<std::byte> buf(8);
  EXPECT_EQ(encode_header(h, buf).code(), Errc::InvalidArgument);
}

TEST(FrameHeaderDecode, RejectsShortBuffer) {
  std::vector<std::byte> buf(8);
  EXPECT_EQ(decode_header(buf).status().code(), Errc::MalformedFrame);
}

TEST(FrameHeaderDecode, RejectsBadVersion) {
  const FrameHeader h = sample_private_header();
  std::vector<std::byte> buf(frame_bytes_for_payload(0, true));
  ASSERT_TRUE(encode_header(h, buf).is_ok());
  buf[0] = static_cast<std::byte>(0x02);  // wrong version nibble
  EXPECT_EQ(decode_header(buf).status().code(), Errc::MalformedFrame);
}

TEST(FrameHeaderDecode, RejectsUnknownFunction) {
  FrameHeader h;
  h.function = 0x55;  // not a known code
  std::vector<std::byte> buf(32);
  // encode_header does not police function codes (private extensions are
  // legal); decode of an unknown non-private code must fail.
  ASSERT_TRUE(encode_header(h, buf).is_ok());
  EXPECT_EQ(decode_header(buf).status().code(), Errc::MalformedFrame);
}

TEST(FrameHeaderDecode, RejectsSizeExceedingBuffer) {
  FrameHeader h = sample_private_header();
  std::vector<std::byte> buf(frame_bytes_for_payload(0, true));
  h.size_words = 100;  // declared larger than the buffer
  ASSERT_TRUE(encode_header(h, buf).is_ok());
  EXPECT_EQ(decode_header(buf).status().code(), Errc::MalformedFrame);
}

TEST(FrameHeaderDecode, RejectsSizeSmallerThanHeader) {
  FrameHeader h = sample_private_header();
  std::vector<std::byte> buf(frame_bytes_for_payload(0, true));
  ASSERT_TRUE(encode_header(h, buf).is_ok());
  put_u16(buf, 2, 2);  // 8 bytes < 20-byte private header
  EXPECT_EQ(decode_header(buf).status().code(), Errc::MalformedFrame);
}

TEST(FrameHeaderDecode, RejectsSglOffsetOutsideFrame) {
  FrameHeader h = sample_private_header();
  h.sgl_offset_words = 15;
  std::vector<std::byte> buf(frame_bytes_for_payload(0, true));  // 5 words
  ASSERT_TRUE(encode_header(h, buf).is_ok());
  EXPECT_EQ(decode_header(buf).status().code(), Errc::MalformedFrame);
}

TEST(Payload, ViewsMatchEncodedRegion) {
  FrameHeader h = sample_private_header();
  const auto payload = make_payload(32, 3);
  std::vector<std::byte> buf(frame_bytes_for_payload(payload.size(), true));
  ASSERT_TRUE(encode_header(h, buf).is_ok());
  std::memcpy(buf.data() + kPrivateHeaderBytes, payload.data(),
              payload.size());

  auto d = decode_header(buf);
  ASSERT_TRUE(d.is_ok());
  const auto view = payload_of(d.value(), std::span<const std::byte>(buf));
  ASSERT_EQ(view.size(), 32u);
  EXPECT_EQ(std::memcmp(view.data(), payload.data(), 32), 0);
}

TEST(Reply, SwapsAddressesAndSetsFlags) {
  const FrameHeader req = sample_private_header();
  const FrameHeader rep = make_reply_header(req);
  EXPECT_EQ(rep.target, req.initiator);
  EXPECT_EQ(rep.initiator, req.target);
  EXPECT_TRUE(rep.flags & kFlagReply);
  EXPECT_FALSE(rep.flags & kFlagFail);
  EXPECT_EQ(rep.initiator_context, req.initiator_context);
  EXPECT_EQ(rep.transaction_context, req.transaction_context);

  const FrameHeader fail = make_reply_header(req, /*failed=*/true);
  EXPECT_TRUE(fail.flags & kFlagFail);
}

TEST(Describe, MentionsKeyFields) {
  const auto text = describe(sample_private_header());
  EXPECT_NE(text.find("tgt=17"), std::string::npos);
  EXPECT_NE(text.find("ini=23"), std::string::npos);
}

// Property sweep: encode/decode round-trips across payload sizes and both
// frame shapes, the invariant the transports rely on.
class FrameRoundTripP : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FrameRoundTripP, EncodeDecodeIdentity) {
  const std::size_t payload_bytes = GetParam();
  for (const bool is_private : {false, true}) {
    FrameHeader h;
    if (is_private) {
      h = sample_private_header();
    } else {
      h.function = static_cast<std::uint8_t>(Function::UtilNop);
      h.target = 5;
      h.initiator = 6;
    }
    std::vector<std::byte> buf(
        frame_bytes_for_payload(payload_bytes, is_private));
    ASSERT_TRUE(encode_header(h, buf).is_ok());
    auto d = decode_header(buf);
    ASSERT_TRUE(d.is_ok()) << "payload=" << payload_bytes;
    EXPECT_EQ(d.value().is_private(), is_private);
    // Padding can add up to 3 bytes; payload view covers the padded region.
    EXPECT_GE(d.value().payload_bytes(), payload_bytes);
    EXPECT_LT(d.value().payload_bytes(), payload_bytes + kWordBytes);
  }
}

INSTANTIATE_TEST_SUITE_P(PayloadSweep, FrameRoundTripP,
                         ::testing::Values(0, 1, 2, 3, 4, 5, 7, 8, 16, 63, 64,
                                           255, 256, 1024, 4096, 65536,
                                           kMaxPayloadBytes));

}  // namespace
}  // namespace xdaq::i2o
