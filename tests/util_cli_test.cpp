#include "util/cli.hpp"

#include <gtest/gtest.h>

namespace xdaq {
namespace {

CliParser make_parser() {
  CliParser p;
  p.flag("payload", "payload size", std::int64_t{64})
      .flag("mode", "pt mode", std::string("task"))
      .flag("verbose", "chatty output", false);
  return p;
}

TEST(Cli, DefaultsApply) {
  auto p = make_parser();
  const char* argv[] = {"prog"};
  ASSERT_TRUE(p.parse(1, argv).is_ok());
  EXPECT_EQ(p.get_int("payload"), 64);
  EXPECT_EQ(p.get_string("mode"), "task");
  EXPECT_FALSE(p.get_bool("verbose"));
}

TEST(Cli, EqualsSyntax) {
  auto p = make_parser();
  const char* argv[] = {"prog", "--payload=4096", "--mode=polling"};
  ASSERT_TRUE(p.parse(3, argv).is_ok());
  EXPECT_EQ(p.get_int("payload"), 4096);
  EXPECT_EQ(p.get_string("mode"), "polling");
}

TEST(Cli, SpaceSyntaxAndBareBool) {
  auto p = make_parser();
  const char* argv[] = {"prog", "--payload", "128", "--verbose"};
  ASSERT_TRUE(p.parse(4, argv).is_ok());
  EXPECT_EQ(p.get_int("payload"), 128);
  EXPECT_TRUE(p.get_bool("verbose"));
}

TEST(Cli, UnknownFlagIsError) {
  auto p = make_parser();
  const char* argv[] = {"prog", "--bogus=1"};
  const auto s = p.parse(2, argv);
  EXPECT_EQ(s.code(), Errc::InvalidArgument);
}

TEST(Cli, NonIntegerValueForIntFlagIsError) {
  auto p = make_parser();
  const char* argv[] = {"prog", "--payload=abc"};
  EXPECT_EQ(p.parse(2, argv).code(), Errc::InvalidArgument);
}

TEST(Cli, MissingValueIsError) {
  auto p = make_parser();
  const char* argv[] = {"prog", "--mode"};
  EXPECT_EQ(p.parse(2, argv).code(), Errc::InvalidArgument);
}

TEST(Cli, PositionalArgumentsCollected) {
  auto p = make_parser();
  const char* argv[] = {"prog", "run", "--payload=1", "fast"};
  ASSERT_TRUE(p.parse(4, argv).is_ok());
  ASSERT_EQ(p.positional().size(), 2u);
  EXPECT_EQ(p.positional()[0], "run");
  EXPECT_EQ(p.positional()[1], "fast");
}

TEST(Cli, UsageMentionsFlags) {
  auto p = make_parser();
  const auto u = p.usage("prog");
  EXPECT_NE(u.find("--payload"), std::string::npos);
  EXPECT_NE(u.find("--mode"), std::string::npos);
}

TEST(Cli, UndeclaredAccessThrows) {
  auto p = make_parser();
  EXPECT_THROW((void)p.get_string("nope"), std::logic_error);
}

}  // namespace
}  // namespace xdaq
