// ctrl_chaos_test.cpp - the replicated control plane end to end, under
// seeded chaos. Five ControlReplicaDevices run on an in-process cluster
// whose every transport is wrapped in a FaultInjectingTransport; the
// harness drives replica ticks and the decorators' chaos clock in
// lockstep, so set_partition() plans cut the fabric at scripted ticks.
// A ControlClient on a sixth (non-voter) node exercises the full client
// policy - leader discovery, redirect-on-follower, retry-around-election
// - while the partitions play out.
//
// These tests carry the `chaos` ctest label and are part of the default
// suite; reproduce a failure by re-running with the seed logged below
// (kChaosSeed - the schedules are pure functions of it).
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <thread>

#include "cluster/member_map.hpp"
#include "cluster/route_table.hpp"
#include "ctrl/client.hpp"
#include "ctrl/replica.hpp"
#include "i2o/wire.hpp"
#include "pt/cluster.hpp"
#include "pt/fault_pt.hpp"

namespace xdaq::ctrl {
namespace {

constexpr std::uint64_t kChaosSeed = 0xDA0C0DE;
constexpr std::size_t kVoters = 5;

/// Voter group + optional client node on a pt::Cluster, every node's
/// traffic routed through a FaultInjectingTransport. Ticks advance the
/// replicas' logical clocks and every decorator's chaos clock together.
class ControlFixture {
 public:
  explicit ControlFixture(bool with_client, std::uint64_t seed = kChaosSeed)
      : cluster_(make_config(with_client)) {
    const std::size_t nodes = cluster_.size();
    std::vector<i2o::NodeId> voters;
    for (std::size_t i = 0; i < kVoters; ++i) {
      voters.push_back(cluster_.node_id(i));
    }
    // Wrap every node's transport; re-point the full-mesh routes at the
    // decorator so all frames cross the chaos layer.
    for (std::size_t i = 0; i < nodes; ++i) {
      pt::FaultPlan plan;
      plan.seed = seed + i;
      auto fault = std::make_unique<pt::FaultInjectingTransport>(
          cluster_.transport(i), plan);
      faults_.push_back(fault.get());
      auto tid = cluster_.install(i, std::move(fault), "pt_fault");
      EXPECT_TRUE(tid.is_ok());
      for (std::size_t j = 0; j < nodes; ++j) {
        if (j != i) {
          EXPECT_TRUE(cluster_.node(i)
                          .set_route(cluster_.node_id(j), tid.value())
                          .is_ok());
        }
      }
    }
    for (std::size_t i = 0; i < kVoters; ++i) {
      ControlReplicaDevice::Config rc;
      rc.voters = voters;
      rc.seed = seed + 100 + i;
      rc.snapshot_threshold = 16;
      // Manual ticks: the test owns the clock.
      auto replica = std::make_unique<ControlReplicaDevice>(rc);
      replicas_.push_back(replica.get());
      auto tid = cluster_.install(i, std::move(replica), "ctrl");
      EXPECT_TRUE(tid.is_ok());
      replica_tid_ = tid.value();
    }
    if (with_client) {
      ControlClient::Config cc;
      cc.voters = voters;
      cc.replica_tid = replica_tid_;
      cc.call_timeout = std::chrono::milliseconds(400);
      cc.retry_delay = std::chrono::milliseconds(5);
      cc.max_attempts = 16;
      auto client = std::make_unique<ControlClient>(cc);
      client_ = client.get();
      EXPECT_TRUE(
          cluster_.install(nodes - 1, std::move(client), "ctrlc").is_ok());
    }
    EXPECT_TRUE(cluster_.enable_all().is_ok());
    cluster_.start_all();
  }

  ~ControlFixture() { cluster_.stop_all(); }

  pt::Cluster& cluster() { return cluster_; }
  ControlReplicaDevice& replica(std::size_t i) { return *replicas_.at(i); }
  ControlClient& client() { return *client_; }

  /// One chaos tick: every decorator's clock, then every replica's Raft
  /// clock, then a beat for the fabric threads to deliver.
  void tick() {
    for (pt::FaultInjectingTransport* f : faults_) {
      f->advance_tick();
    }
    for (ControlReplicaDevice* r : replicas_) {
      r->tick();
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  void run(int ticks) {
    for (int i = 0; i < ticks; ++i) {
      tick();
    }
  }

  /// Index into replicas_ of the current leader, or -1.
  [[nodiscard]] int leader_index() const {
    int found = -1;
    for (std::size_t i = 0; i < replicas_.size(); ++i) {
      if (replicas_[i]->role() == Role::Leader) {
        EXPECT_EQ(found, -1) << "two live leaders visible at once";
        found = static_cast<int>(i);
      }
    }
    return found;
  }

  int elect(int max_ticks = 400) {
    for (int i = 0; i < max_ticks; ++i) {
      tick();
      const int l = leader_index();
      if (l >= 0) {
        return l;
      }
    }
    ADD_FAILURE() << "no leader within " << max_ticks << " chaos ticks";
    return -1;
  }

  /// Installs the same symmetric partition plan on every decorator,
  /// cutting `groups` from the current tick for `duration` ticks.
  void partition(std::vector<std::vector<i2o::NodeId>> groups,
                 std::uint64_t duration) {
    const std::uint64_t from = faults_.front()->chaos_tick();
    for (pt::FaultInjectingTransport* f : faults_) {
      f->set_partition(groups, from, from + duration);
    }
  }

  void heal() {
    for (pt::FaultInjectingTransport* f : faults_) {
      f->clear_partition();
    }
  }

  [[nodiscard]] std::uint64_t partitioned_frames() const {
    std::uint64_t total = 0;
    for (pt::FaultInjectingTransport* f : faults_) {
      total += f->inject_stats().partitioned;
    }
    return total;
  }

 private:
  static pt::ClusterConfig make_config(bool with_client) {
    pt::ClusterConfig cfg;
    cfg.nodes = with_client ? kVoters + 1 : kVoters;
    return cfg;
  }

  pt::Cluster cluster_;
  std::vector<pt::FaultInjectingTransport*> faults_;
  std::vector<ControlReplicaDevice*> replicas_;
  ControlClient* client_ = nullptr;
  i2o::Tid replica_tid_ = i2o::kNullTid;
};

// A write acknowledged before any fault must be readable on every
// replica after elections and partitions - committed means durable on a
// majority, and the healed group converges on it.
TEST(CtrlChaos, AckedWritesSurviveLeaderPartition) {
  ControlFixture fx(/*with_client=*/true);
  const int leader = fx.elect();
  ASSERT_GE(leader, 0);

  auto v1 = fx.client().put("cluster/name", "daq-west");
  ASSERT_TRUE(v1.is_ok()) << v1.status().to_string();

  // Cut the leader (plus one follower) off from the rest AND the client.
  const i2o::NodeId leader_node = fx.cluster().node_id(leader);
  std::vector<i2o::NodeId> minority{leader_node};
  std::vector<i2o::NodeId> majority;
  for (std::size_t i = 0; i < kVoters; ++i) {
    const i2o::NodeId id = fx.cluster().node_id(i);
    if (id == leader_node) {
      continue;
    }
    if (minority.size() < 2) {
      minority.push_back(id);
    } else {
      majority.push_back(id);
    }
  }
  // The client node travels with the majority side.
  majority.push_back(fx.cluster().node_id(fx.cluster().size() - 1));
  fx.partition({minority, majority}, 1000);

  // The majority side must re-elect and accept new writes.
  int new_leader = -1;
  for (int i = 0; i < 600 && new_leader < 0; ++i) {
    fx.tick();
    for (std::size_t r = 0; r < kVoters; ++r) {
      const i2o::NodeId id = fx.cluster().node_id(r);
      if (static_cast<int>(r) != leader &&
          fx.replica(r).role() == Role::Leader &&
          std::find(minority.begin(), minority.end(), id) ==
              minority.end()) {
        new_leader = static_cast<int>(r);
      }
    }
  }
  ASSERT_GE(new_leader, 0) << "majority never re-elected a leader";
  EXPECT_GT(fx.partitioned_frames(), 0u);

  auto v2 = fx.client().put("cluster/epoch", "2");
  ASSERT_TRUE(v2.is_ok()) << v2.status().to_string();
  EXPECT_GT(v2.value(), v1.value());

  // Heal; the deposed leader rejoins and both writes converge everywhere.
  fx.heal();
  fx.run(60);
  for (std::size_t r = 0; r < kVoters; ++r) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(5);
    while (std::chrono::steady_clock::now() < deadline) {
      const auto name = fx.replica(r).lookup("cluster/name");
      const auto epoch = fx.replica(r).lookup("cluster/epoch");
      if (name && epoch) {
        break;
      }
      fx.tick();
    }
    const auto name = fx.replica(r).lookup("cluster/name");
    ASSERT_TRUE(name.has_value()) << "replica " << r << " missing write";
    EXPECT_EQ(name->value, "daq-west");
    const auto epoch = fx.replica(r).lookup("cluster/epoch");
    ASSERT_TRUE(epoch.has_value());
    EXPECT_EQ(epoch->value, "2");
  }
}

// Follower reads: linearizable Get is served only by the leased leader
// (followers redirect), while stale_ok reads any replica's applied map.
TEST(CtrlChaos, LinearizableAndStaleReads) {
  ControlFixture fx(/*with_client=*/true);
  const int leader = fx.elect();
  ASSERT_GE(leader, 0);
  ASSERT_TRUE(fx.client().put("k", "v").is_ok());

  auto lin = fx.client().get("k");
  ASSERT_TRUE(lin.is_ok()) << lin.status().to_string();
  EXPECT_EQ(lin.value().value, "v");
  // The client learned the leader on the way.
  EXPECT_EQ(fx.client().known_leader(), fx.cluster().node_id(leader));

  // Let replication settle, then stale reads hit follower state.
  fx.run(10);
  auto stale = fx.client().get("k", /*stale_ok=*/true);
  ASSERT_TRUE(stale.is_ok()) << stale.status().to_string();
  EXPECT_EQ(stale.value().value, "v");

  auto missing = fx.client().get("absent");
  EXPECT_FALSE(missing.is_ok());
  EXPECT_EQ(missing.status().code(), Errc::NotFound);
}

// Watch streams: subscribe first (snapshot replay of the existing
// prefix), then subsequent commits push events; deletes are flagged.
TEST(CtrlChaos, WatchReplaysSnapshotThenStreams) {
  ControlFixture fx(/*with_client=*/true);
  ASSERT_GE(fx.elect(), 0);
  ASSERT_TRUE(fx.client().put("route/7", "relay:3").is_ok());

  std::mutex mu;
  std::vector<WatchEvent> events;
  ASSERT_TRUE(fx.client()
                  .watch("route/",
                         [&](const WatchEvent& ev) {
                           const std::scoped_lock lock(mu);
                           events.push_back(ev);
                         })
                  .is_ok());
  // The pre-existing entry replays as the subscription snapshot.
  {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (std::chrono::steady_clock::now() < deadline) {
      const std::scoped_lock lock(mu);
      if (!events.empty()) {
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    const std::scoped_lock lock(mu);
    ASSERT_FALSE(events.empty()) << "snapshot replay never arrived";
    EXPECT_EQ(events[0].key, "route/7");
    EXPECT_EQ(events[0].value, "relay:3");
    EXPECT_FALSE(events[0].deleted);
  }

  // A new commit under the prefix streams; one outside it does not.
  ASSERT_TRUE(fx.client().put("route/9", "relay:2").is_ok());
  ASSERT_TRUE(fx.client().put("other/x", "y").is_ok());
  ASSERT_TRUE(fx.client().del("route/7").is_ok());
  fx.run(10);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (std::chrono::steady_clock::now() < deadline) {
    const std::scoped_lock lock(mu);
    if (events.size() >= 3) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const std::scoped_lock lock(mu);
  ASSERT_GE(events.size(), 3u);
  bool saw_stream = false;
  bool saw_delete = false;
  for (const WatchEvent& ev : events) {
    EXPECT_EQ(ev.key.compare(0, 6, "route/"), 0) << ev.key;
    if (ev.key == "route/9") {
      saw_stream = true;
      EXPECT_EQ(ev.value, "relay:2");
    }
    if (ev.key == "route/7" && ev.deleted) {
      saw_delete = true;
    }
  }
  EXPECT_TRUE(saw_stream);
  EXPECT_TRUE(saw_delete);
}

// Restart reconciliation: committed "route/<node>" placements replay
// into the RouteTable through reconcile_routes(), without shadowing
// direct attachments, and deletes clear only relay placements.
TEST(CtrlChaos, ReconcileRoutesRebuildsRelayPlacements) {
  ControlFixture fx(/*with_client=*/true);
  ASSERT_GE(fx.elect(), 0);
  // Placements for two fictional far nodes, committed before the client
  // node "restarts" (subscribes).
  ASSERT_TRUE(fx.client().put("route/41", "relay:2").is_ok());
  ASSERT_TRUE(fx.client().put("route/42", "relay:3").is_ok());

  ASSERT_TRUE(fx.client().reconcile_routes().is_ok());
  auto& routes = fx.cluster()
                     .node(fx.cluster().size() - 1)
                     .resolver()
                     .routes();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (std::chrono::steady_clock::now() < deadline &&
         (routes.next_hop(41).kind != cluster::NextHop::Kind::Relay ||
          routes.next_hop(42).kind != cluster::NextHop::Kind::Relay)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(routes.next_hop(41).kind, cluster::NextHop::Kind::Relay);
  EXPECT_EQ(routes.next_hop(41).relay_node, 2);
  ASSERT_EQ(routes.next_hop(42).kind, cluster::NextHop::Kind::Relay);
  EXPECT_EQ(routes.next_hop(42).relay_node, 3);

  // Deleting the placement clears the relay entry.
  ASSERT_TRUE(fx.client().del("route/41").is_ok());
  const auto gone =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (std::chrono::steady_clock::now() < gone &&
         routes.next_hop(41).kind != cluster::NextHop::Kind::None) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(routes.next_hop(41).kind, cluster::NextHop::Kind::None);
  // A direct route is never shadowed nor erased by placements.
  EXPECT_EQ(routes.next_hop(42).kind, cluster::NextHop::Kind::Relay);
}

// The control plane owns the cluster member-map version (PR 7): a
// committed floor write re-anchors a rejoining node's gossip map so it
// cannot re-announce a stale view.
TEST(CtrlChaos, MemberMapVersionFloorFromControlPlane) {
  ControlFixture fx(/*with_client=*/true);
  ASSERT_GE(fx.elect(), 0);
  ASSERT_TRUE(
      fx.client().put(std::string(kMemberMapVersionKey), "4711").is_ok());
  auto read = fx.client().get(std::string(kMemberMapVersionKey));
  ASSERT_TRUE(read.is_ok());

  cluster::MemberMap map(/*self=*/9);
  ASSERT_LT(map.version(), 4711u);
  EXPECT_TRUE(map.raise_version(std::strtoull(
      read.value().value.c_str(), nullptr, 10)));
  EXPECT_EQ(map.version(), 4711u);
  // Monotonic: an older committed floor never lowers it.
  EXPECT_FALSE(map.raise_version(10));
  EXPECT_EQ(map.version(), 4711u);
}

// raft.* metrics flow into each node's obs registry (and from there to
// MonitorDevice / `xdaq metrics`): term, role, commit index, election
// count and the replication-lag histogram all report live values.
TEST(CtrlChaos, RaftMetricsExposedInRegistry) {
  ControlFixture fx(/*with_client=*/true);
  const int leader = fx.elect();
  ASSERT_GE(leader, 0);
  ASSERT_TRUE(fx.client().put("m", "1").is_ok());
  fx.run(10);

  const auto snap = fx.cluster().node(leader).metrics().snapshot();
  std::int64_t term = -1;
  std::int64_t role = -1;
  std::int64_t commit = -1;
  for (const auto& [name, value] : snap.gauges) {
    if (name == "raft.term") {
      term = value;
    } else if (name == "raft.role") {
      role = value;
    } else if (name == "raft.commit_index") {
      commit = value;
    }
  }
  EXPECT_EQ(term, static_cast<std::int64_t>(fx.replica(leader).term()));
  EXPECT_EQ(role, static_cast<std::int64_t>(Role::Leader));
  EXPECT_GE(commit, 1);
  bool lag_histogram = false;
  for (const auto& h : snap.histograms) {
    if (h.name == "raft.replication_lag") {
      lag_histogram = true;
    }
  }
  EXPECT_TRUE(lag_histogram);
  bool elections = false;
  for (const auto& [name, value] : snap.counters) {
    if (name == "raft.elections") {
      elections = true;
    }
  }
  EXPECT_TRUE(elections);
}

/// Sends kXfnCtrl requests to a replica on the same node, optionally
/// forging the initiator TiD - the stand-in for a subscriber that has
/// since crashed (its reply path no longer routes anywhere).
class CtrlProbeDevice : public core::Device {
 public:
  CtrlProbeDevice() : core::Device("CtrlProbe") {}

  void send_watch(i2o::Tid replica, i2o::Tid forged_initiator) {
    CtrlRequest req;
    req.op = CtrlOp::Watch;
    req.key = "";
    send_req(replica, req, forged_initiator);
  }

  void send_put(i2o::Tid replica, const std::string& key,
                const std::string& value) {
    CtrlRequest req;
    req.op = CtrlOp::Put;
    req.key = key;
    req.value = value;
    send_req(replica, req, i2o::kNullTid);
  }

 private:
  void send_req(i2o::Tid replica, const CtrlRequest& req,
                i2o::Tid forged_initiator) {
    const auto payload = req.encode();
    auto frame = make_private_frame(replica, i2o::OrgId::kXdaq, kXfnCtrl,
                                    payload);
    ASSERT_TRUE(frame.is_ok()) << frame.status().to_string();
    if (forged_initiator != i2o::kNullTid) {
      auto hdr = i2o::decode_header(frame.value().bytes());
      ASSERT_TRUE(hdr.is_ok());
      i2o::FrameHeader forged = hdr.value();
      forged.initiator = forged_initiator;
      ASSERT_TRUE(i2o::encode_header(forged, frame.value().bytes()).is_ok());
    }
    ASSERT_TRUE(frame_send(std::move(frame).value()).is_ok());
  }
};

// The REVIEW.md watcher-leak finding: a subscriber whose event pushes no
// longer route (crashed / departed client) must be pruned after a few
// consecutive push failures instead of receiving kXfnCtrlEvent frames
// forever.
TEST(CtrlChaos, DeadWatcherIsPrunedAfterRepeatedPushFailures) {
  pt::ClusterConfig cfg;
  cfg.nodes = 1;
  pt::Cluster cluster(cfg);

  ControlReplicaDevice::Config rc;
  rc.voters = {cluster.node_id(0)};
  rc.seed = 7;
  auto replica_owner = std::make_unique<ControlReplicaDevice>(rc);
  ControlReplicaDevice* replica = replica_owner.get();
  auto replica_tid = cluster.install(0, std::move(replica_owner), "ctrl");
  ASSERT_TRUE(replica_tid.is_ok());

  auto probe_owner = std::make_unique<CtrlProbeDevice>();
  CtrlProbeDevice* probe = probe_owner.get();
  ASSERT_TRUE(cluster.install(0, std::move(probe_owner), "probe").is_ok());

  ASSERT_TRUE(cluster.enable_all().is_ok());
  cluster.start_all();

  for (int i = 0; i < 100 && replica->role() != Role::Leader; ++i) {
    replica->tick();
  }
  ASSERT_EQ(replica->role(), Role::Leader);

  // Subscribe with an initiator TiD nothing resolves: every push fails.
  probe->send_watch(replica_tid.value(), /*forged_initiator=*/0x0ABC);
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (std::chrono::steady_clock::now() < deadline &&
         replica->watcher_count() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_EQ(replica->watcher_count(), 1u);

  // Each committed put attempts the push; the third straight failure
  // prunes the dead watcher.
  for (int i = 0; i < 3; ++i) {
    probe->send_put(replica_tid.value(), "k" + std::to_string(i), "v");
  }
  deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (std::chrono::steady_clock::now() < deadline &&
         replica->watcher_count() != 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(replica->watcher_count(), 0u);
  // The writes themselves applied normally.
  const auto k0 = replica->lookup("k0");
  ASSERT_TRUE(k0.has_value());
  EXPECT_EQ(k0->value, "v");

  cluster.stop_all();
}

}  // namespace
}  // namespace xdaq::ctrl
