#include "xcl/interp.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <vector>

namespace xdaq::xcl {
namespace {

/// Runs a script and expects a clean result value.
std::string run(Interp& in, const std::string& script) {
  EvalResult r = in.eval(script);
  EXPECT_TRUE(r.is_ok()) << "script: " << script << "\nerror: " << r.value;
  return r.value;
}

TEST(Interp, SetAndSubstitute) {
  Interp in;
  EXPECT_EQ(run(in, "set x 42"), "42");
  EXPECT_EQ(run(in, "set x"), "42");
  EXPECT_EQ(run(in, "set y $x"), "42");
  EXPECT_EQ(run(in, "set z \"value: $x\""), "value: 42");
}

TEST(Interp, BracedWordsSuppressSubstitution) {
  Interp in;
  run(in, "set x 1");
  EXPECT_EQ(run(in, "set y {$x}"), "$x");
}

TEST(Interp, DollarBraceForm) {
  Interp in;
  run(in, "set long_name hello");
  EXPECT_EQ(run(in, "set y ${long_name}world"), "helloworld");
}

TEST(Interp, CommandSubstitution) {
  Interp in;
  EXPECT_EQ(run(in, "set x [expr 2 + 3]"), "5");
  EXPECT_EQ(run(in, "set y [set x]"), "5");
  EXPECT_EQ(run(in, "set z \"got [expr 1+1]\""), "got 2");
}

TEST(Interp, BackslashEscapes) {
  Interp in;
  EXPECT_EQ(run(in, "set x a\\ b"), "a b");
  EXPECT_EQ(run(in, "set y \"\\$literal\""), "$literal");
}

TEST(Interp, UnknownCommandErrors) {
  Interp in;
  EvalResult r = in.eval("no_such_command");
  EXPECT_TRUE(r.is_error());
  EXPECT_NE(r.value.find("invalid command name"), std::string::npos);
}

TEST(Interp, ReadingUnsetVariableErrors) {
  Interp in;
  EXPECT_TRUE(in.eval("set x $nope").is_error());
}

TEST(Interp, UnsetRemovesVariable) {
  Interp in;
  run(in, "set x 1");
  run(in, "unset x");
  EXPECT_TRUE(in.eval("set y $x").is_error());
}

TEST(Interp, SemicolonsAndNewlinesSeparateCommands) {
  Interp in;
  EXPECT_EQ(run(in, "set a 1; set b 2\nset c 3"), "3");
  EXPECT_EQ(run(in, "set a"), "1");
  EXPECT_EQ(run(in, "set b"), "2");
}

TEST(Interp, CommentsIgnored) {
  Interp in;
  EXPECT_EQ(run(in, "# a comment\nset x 7"), "7");
}

TEST(Interp, Expr) {
  Interp in;
  EXPECT_EQ(run(in, "expr 1 + 2 * 3"), "7");
  EXPECT_EQ(run(in, "expr (1 + 2) * 3"), "9");
  EXPECT_EQ(run(in, "expr 7 / 2"), "3");
  EXPECT_EQ(run(in, "expr 7.0 / 2"), "3.5");
  EXPECT_EQ(run(in, "expr 7 % 3"), "1");
  EXPECT_EQ(run(in, "expr 1 < 2"), "1");
  EXPECT_EQ(run(in, "expr 2 <= 1"), "0");
  EXPECT_EQ(run(in, "expr 3 == 3"), "1");
  EXPECT_EQ(run(in, "expr 3 != 3"), "0");
  EXPECT_EQ(run(in, "expr 1 && 0"), "0");
  EXPECT_EQ(run(in, "expr 1 || 0"), "1");
  EXPECT_EQ(run(in, "expr !0"), "1");
  EXPECT_EQ(run(in, "expr -4 + 2"), "-2");
  EXPECT_EQ(run(in, "expr 0x10"), "16");
  EXPECT_EQ(run(in, "expr abc eq abc"), "1");
  EXPECT_EQ(run(in, "expr abc ne abd"), "1");
}

TEST(Interp, ExprErrors) {
  Interp in;
  EXPECT_TRUE(in.eval("expr 1 /").is_error());
  EXPECT_TRUE(in.eval("expr 1 / 0").is_error());
  EXPECT_TRUE(in.eval("expr (1 + 2").is_error());
}

TEST(Interp, IfElse) {
  Interp in;
  EXPECT_EQ(run(in, "if {1 < 2} {set r yes} else {set r no}"), "yes");
  EXPECT_EQ(run(in, "if {1 > 2} {set r yes} else {set r no}"), "no");
  EXPECT_EQ(run(in,
                "if {0} {set r a} elseif {1} {set r b} else {set r c}"),
            "b");
}

TEST(Interp, WhileLoopWithBreakContinue) {
  Interp in;
  run(in, R"(
set sum 0
set i 0
while {$i < 10} {
  incr i
  if {$i == 3} { continue }
  if {$i == 8} { break }
  set sum [expr $sum + $i]
})");
  // 1+2+4+5+6+7 = 25
  EXPECT_EQ(run(in, "set sum"), "25");
}

TEST(Interp, ForLoop) {
  Interp in;
  run(in, "set total 0\nfor {set i 1} {$i <= 5} {incr i} {set total [expr "
          "$total + $i]}");
  EXPECT_EQ(run(in, "set total"), "15");
}

TEST(Interp, ForeachOverList) {
  Interp in;
  run(in, "set acc {}\nforeach x {a b {c d}} {set acc \"$acc<$x>\"}");
  EXPECT_EQ(run(in, "set acc"), "<a><b><c d>");
}

TEST(Interp, ProcDefinitionAndCall) {
  Interp in;
  run(in, "proc add {a b} { return [expr $a + $b] }");
  EXPECT_EQ(run(in, "add 3 4"), "7");
  // Wrong arity is an error.
  EXPECT_TRUE(in.eval("add 1").is_error());
}

TEST(Interp, ProcLocalScope) {
  Interp in;
  run(in, "set x global");
  run(in, "proc f {} { set x local; return $x }");
  EXPECT_EQ(run(in, "f"), "local");
  EXPECT_EQ(run(in, "set x"), "global");  // untouched
}

TEST(Interp, ProcReadsGlobalFallback) {
  Interp in;
  run(in, "set g 99");
  run(in, "proc f {} { return $g }");
  EXPECT_EQ(run(in, "f"), "99");
}

TEST(Interp, ProcVariadicArgs) {
  Interp in;
  run(in, "proc count {first args} { return [llength $args] }");
  EXPECT_EQ(run(in, "count a b c d"), "3");
}

TEST(Interp, RecursiveProc) {
  Interp in;
  run(in, "proc fact {n} { if {$n <= 1} { return 1 }; return [expr $n * "
          "[fact [expr $n - 1]]] }");
  EXPECT_EQ(run(in, "fact 6"), "720");
}

TEST(Interp, InfiniteRecursionGuarded) {
  Interp in;
  run(in, "proc boom {} { boom }");
  EXPECT_TRUE(in.eval("boom").is_error());
}

TEST(Interp, CatchCapturesErrors) {
  Interp in;
  EXPECT_EQ(run(in, "catch {no_such_cmd} msg"), "1");
  EXPECT_NE(run(in, "set msg").find("invalid command"), std::string::npos);
  EXPECT_EQ(run(in, "catch {set ok 5} msg"), "0");
  EXPECT_EQ(run(in, "set msg"), "5");
}

TEST(Interp, ErrorCommand) {
  Interp in;
  EvalResult r = in.eval("error \"boom town\"");
  EXPECT_TRUE(r.is_error());
  EXPECT_EQ(r.value, "boom town");
}

TEST(Interp, ListCommands) {
  Interp in;
  EXPECT_EQ(run(in, "list a b c"), "a b c");
  EXPECT_EQ(run(in, "list {a b} c"), "{a b} c");
  EXPECT_EQ(run(in, "llength {a b c}"), "3");
  EXPECT_EQ(run(in, "lindex {x y z} 1"), "y");
  EXPECT_EQ(run(in, "lindex {x y z} 9"), "");
  run(in, "set l {}; lappend l one; lappend l \"two three\"");
  EXPECT_EQ(run(in, "llength $l"), "2");
}

TEST(Interp, StringCommands) {
  Interp in;
  EXPECT_EQ(run(in, "string length hello"), "5");
  EXPECT_EQ(run(in, "string equal a a"), "1");
  EXPECT_EQ(run(in, "string equal a b"), "0");
  EXPECT_EQ(run(in, "string toupper abc"), "ABC");
  EXPECT_EQ(run(in, "string tolower AbC"), "abc");
}

TEST(Interp, SplitAndJoin) {
  Interp in;
  EXPECT_EQ(run(in, "split a,b,,c ,"), "a b {} c");
  EXPECT_EQ(run(in, "split \"x y\""), "x y");
  EXPECT_EQ(run(in, "join {a b c} -"), "a-b-c");
  EXPECT_EQ(run(in, "join [split 1:2:3 :] +"), "1+2+3");
}

TEST(Interp, LrangeWithEndIndices) {
  Interp in;
  EXPECT_EQ(run(in, "lrange {a b c d e} 1 3"), "b c d");
  EXPECT_EQ(run(in, "lrange {a b c d e} 0 end"), "a b c d e");
  EXPECT_EQ(run(in, "lrange {a b c d e} end-1 end"), "d e");
  EXPECT_EQ(run(in, "lrange {a b c} 5 9"), "");
}

TEST(Interp, AppendBuildsStrings) {
  Interp in;
  EXPECT_EQ(run(in, "append fresh ab cd"), "abcd");
  EXPECT_EQ(run(in, "append fresh !"), "abcd!");
}

TEST(Interp, InfoExistsAndCommands) {
  Interp in;
  EXPECT_EQ(run(in, "info exists nope"), "0");
  run(in, "set yes 1");
  EXPECT_EQ(run(in, "info exists yes"), "1");
  EXPECT_EQ(run(in, "info commands set"), "1");
  EXPECT_EQ(run(in, "info commands bogus"), "0");
}

TEST(Interp, AfterSleepsApproximately) {
  Interp in;
  const auto t0 = std::chrono::steady_clock::now();
  run(in, "after 30");
  const auto dt = std::chrono::steady_clock::now() - t0;
  EXPECT_GE(std::chrono::duration_cast<std::chrono::milliseconds>(dt)
                .count(),
            25);
  // Out-of-range values are rejected.
  EXPECT_TRUE(in.eval("after 999999").is_error());
  EXPECT_TRUE(in.eval("after -1").is_error());
}

TEST(Interp, PutsGoesToSink) {
  Interp in;
  std::vector<std::string> lines;
  in.set_output([&lines](const std::string& s) { lines.push_back(s); });
  run(in, "puts hello\nputs \"x = [expr 2*2]\"");
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "hello");
  EXPECT_EQ(lines[1], "x = 4");
}

TEST(Interp, IncrCreatesAndAdds) {
  Interp in;
  EXPECT_EQ(run(in, "incr fresh"), "1");
  EXPECT_EQ(run(in, "incr fresh 10"), "11");
  EXPECT_EQ(run(in, "incr fresh -1"), "10");
}

TEST(Interp, UnbalancedInputErrors) {
  Interp in;
  EXPECT_TRUE(in.eval("set x {unclosed").is_error());
  EXPECT_TRUE(in.eval("set x \"unclosed").is_error());
  EXPECT_TRUE(in.eval("set x [unclosed").is_error());
}

TEST(SplitList, HandlesGrouping) {
  auto r = split_list("a {b c} \"d e\" f");
  ASSERT_TRUE(r.is_ok());
  ASSERT_EQ(r.value().size(), 4u);
  EXPECT_EQ(r.value()[0], "a");
  EXPECT_EQ(r.value()[1], "b c");
  EXPECT_EQ(r.value()[2], "d e");
  EXPECT_EQ(r.value()[3], "f");
}

TEST(SplitList, EmptyAndWhitespaceOnly) {
  EXPECT_TRUE(split_list("").value().empty());
  EXPECT_TRUE(split_list("  \n\t ").value().empty());
}

TEST(QuoteWord, RoundTripsThroughSplit) {
  const std::vector<std::string> words{"plain", "has space", "", "{brace}"};
  const std::string joined = join_list(words);
  auto split = split_list(joined);
  ASSERT_TRUE(split.is_ok());
  EXPECT_EQ(split.value(), words);
}

// Property sweep: scripts computing known values.
struct ScriptCase {
  const char* script;
  const char* expected;
};

class ScriptP : public ::testing::TestWithParam<ScriptCase> {};

TEST_P(ScriptP, EvaluatesTo) {
  Interp in;
  EvalResult r = in.eval(GetParam().script);
  ASSERT_TRUE(r.is_ok()) << r.value;
  EXPECT_EQ(r.value, GetParam().expected);
}

INSTANTIATE_TEST_SUITE_P(
    Programs, ScriptP,
    ::testing::Values(
        ScriptCase{"set s 0; foreach i {1 2 3 4} {set s [expr $s + $i]}; "
                   "set s",
                   "10"},
        ScriptCase{"proc sq {x} {return [expr $x * $x]}; sq [sq 3]", "81"},
        ScriptCase{"set n 0; while {$n < 100} {incr n 7}; set n", "105"},
        ScriptCase{"expr (2 + 3) * (4 - 1)", "15"},
        ScriptCase{"set a 5; if {$a == 5} {set b ok} else {set b bad}; set b",
                   "ok"},
        ScriptCase{"llength [list 1 2 3 [list 4 5]]", "4"}));

}  // namespace
}  // namespace xdaq::xcl
