#include "core/executive.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstring>

#include "core/factory.hpp"
#include "core/requester.hpp"
#include "i2o/wire.hpp"
#include "test_devices.hpp"
#include "util/random.hpp"

namespace xdaq::core {
namespace {

using testing::CounterDevice;
using testing::EchoDevice;
using testing::kXfnCount;
using testing::kXfnEcho;
using testing::kXfnSleep;
using testing::kXfnThrow;
using testing::pump_until;
using testing::RogueDevice;

XDAQ_REGISTER_DEVICE(CounterDevice)

std::vector<std::byte> bytes_of(const std::vector<std::uint8_t>& v) {
  std::vector<std::byte> out(v.size());
  std::memcpy(out.data(), v.data(), v.size());
  return out;
}

TEST(Executive, KernelOccupiesTidOne) {
  Executive exec;
  Device* kernel = exec.device(i2o::kExecutiveTid);
  ASSERT_NE(kernel, nullptr);
  EXPECT_EQ(kernel->class_name(), "Executive");
  EXPECT_EQ(kernel->state(), DeviceState::Enabled);
  EXPECT_EQ(exec.tid_of("exec").value(), i2o::kExecutiveTid);
}

TEST(Executive, InstallAssignsTidAndCallsPlugin) {
  Executive exec;
  auto dev = std::make_unique<CounterDevice>();
  CounterDevice* raw = dev.get();
  auto tid = exec.install(std::move(dev), "counter0");
  ASSERT_TRUE(tid.is_ok());
  EXPECT_GT(tid.value(), i2o::kExecutiveTid);
  EXPECT_TRUE(raw->attached());
  EXPECT_EQ(raw->tid(), tid.value());
  EXPECT_EQ(exec.device(tid.value()), raw);
  EXPECT_EQ(exec.tid_of("counter0").value(), tid.value());
}

TEST(Executive, InstallRejectsDuplicateNameAndNull) {
  Executive exec;
  ASSERT_TRUE(
      exec.install(std::make_unique<CounterDevice>(), "dup").is_ok());
  EXPECT_EQ(
      exec.install(std::make_unique<CounterDevice>(), "dup").status().code(),
      Errc::AlreadyExists);
  EXPECT_EQ(exec.install(nullptr, "x").status().code(),
            Errc::InvalidArgument);
  EXPECT_EQ(exec.install(std::make_unique<CounterDevice>(), "").status()
                .code(),
            Errc::InvalidArgument);
}

TEST(Executive, InstallWithParamsConfigures) {
  Executive exec;
  auto dev = std::make_unique<CounterDevice>();
  CounterDevice* raw = dev.get();
  ASSERT_TRUE(
      exec.install(std::move(dev), "c", {{"rate", "100"}}).is_ok());
  EXPECT_EQ(raw->configured_.load(), 1);
  EXPECT_EQ(i2o::param_value(raw->last_params_, "rate"), "100");
  EXPECT_EQ(raw->state(), DeviceState::Configured);
}

TEST(Executive, StateMachineTransitions) {
  Executive exec;
  auto tid = exec.install(std::make_unique<CounterDevice>(), "c").value();
  Device* dev = exec.device(tid);

  // Enable straight from Loaded is allowed (default configuration).
  ASSERT_TRUE(exec.enable(tid).is_ok());
  EXPECT_EQ(dev->state(), DeviceState::Enabled);
  // Enable twice is a precondition failure.
  EXPECT_EQ(exec.enable(tid).code(), Errc::FailedPrecondition);
  ASSERT_TRUE(exec.suspend(tid).is_ok());
  EXPECT_EQ(dev->state(), DeviceState::Suspended);
  EXPECT_EQ(exec.suspend(tid).code(), Errc::FailedPrecondition);
  ASSERT_TRUE(exec.resume(tid).is_ok());
  EXPECT_EQ(dev->state(), DeviceState::Enabled);
  ASSERT_TRUE(exec.halt(tid).is_ok());
  EXPECT_EQ(dev->state(), DeviceState::Halted);
  ASSERT_TRUE(exec.reset(tid).is_ok());
  EXPECT_EQ(dev->state(), DeviceState::Loaded);
  // Configure only in Loaded/Configured.
  ASSERT_TRUE(exec.configure(tid, {}).is_ok());
  EXPECT_EQ(dev->state(), DeviceState::Configured);
  ASSERT_TRUE(exec.enable(tid).is_ok());
  EXPECT_EQ(exec.configure(tid, {}).code(), Errc::FailedPrecondition);
}

TEST(Executive, InstallClassFromFactory) {
  Executive exec;
  auto tid = exec.install_class("CounterDevice", "from_factory");
  ASSERT_TRUE(tid.is_ok()) << tid.status().to_string();
  EXPECT_EQ(exec.device(tid.value())->class_name(), "CounterDevice");
  EXPECT_EQ(exec.install_class("NoSuchClass", "x").status().code(),
            Errc::NotFound);
}

TEST(Executive, LocalPrivateDispatch) {
  Executive exec;
  auto echo = std::make_unique<EchoDevice>();
  auto counter = std::make_unique<CounterDevice>();
  CounterDevice* counter_raw = counter.get();
  const auto echo_tid = exec.install(std::move(echo), "echo").value();
  const auto counter_tid = exec.install(std::move(counter), "cnt").value();
  (void)echo_tid;
  ASSERT_TRUE(exec.enable_all().is_ok());

  // Build a count message from the counter device itself (self-send).
  Device* dev = exec.device(counter_tid);
  auto* cd = dynamic_cast<CounterDevice*>(dev);
  ASSERT_NE(cd, nullptr);
  const auto payload = bytes_of(make_payload(16, 1));
  for (int i = 0; i < 3; ++i) {
    // make_private_frame is protected; go through a requester-less path:
    auto frame = exec.alloc_frame(payload.size(), true);
    ASSERT_TRUE(frame.is_ok());
    i2o::FrameHeader hdr;
    hdr.function = static_cast<std::uint8_t>(i2o::Function::Private);
    hdr.organization = static_cast<std::uint16_t>(i2o::OrgId::kTest);
    hdr.xfunction = kXfnCount;
    hdr.target = counter_tid;
    auto bytes = frame.value().bytes();
    ASSERT_TRUE(i2o::encode_header(hdr, bytes).is_ok());
    std::memcpy(bytes.data() + i2o::kPrivateHeaderBytes, payload.data(),
                payload.size());
    ASSERT_TRUE(exec.frame_send(std::move(frame).value()).is_ok());
  }
  ASSERT_TRUE(pump_until(exec, [&] { return counter_raw->count() == 3; }));
  EXPECT_EQ(exec.stats().dispatched, 3u);
  EXPECT_EQ(exec.stats().sent_local, 3u);
}

// Acceptance check for the batched hot path: the DEFAULT config keeps the
// seed's one-message-per-pump semantics, observable through ExecutiveStats
// (dispatched and dispatch_batches advance in lockstep). A batched config
// amortizes: fewer batches than messages.
TEST(Executive, DefaultConfigKeepsSingleMessageSemantics) {
  auto post_counts = [](Executive& exec, i2o::Tid target, int n) {
    const auto payload = bytes_of(make_payload(16, 1));
    for (int i = 0; i < n; ++i) {
      auto frame = exec.alloc_frame(payload.size(), true);
      ASSERT_TRUE(frame.is_ok());
      i2o::FrameHeader hdr;
      hdr.function = static_cast<std::uint8_t>(i2o::Function::Private);
      hdr.organization = static_cast<std::uint16_t>(i2o::OrgId::kTest);
      hdr.xfunction = kXfnCount;
      hdr.target = target;
      auto bytes = frame.value().bytes();
      ASSERT_TRUE(i2o::encode_header(hdr, bytes).is_ok());
      std::memcpy(bytes.data() + i2o::kPrivateHeaderBytes, payload.data(),
                  payload.size());
      ASSERT_TRUE(exec.frame_send(std::move(frame).value()).is_ok());
    }
  };

  {
    Executive exec;  // default config: dispatch_batch == 1
    auto dev = std::make_unique<CounterDevice>();
    CounterDevice* raw = dev.get();
    const auto tid = exec.install(std::move(dev), "cnt").value();
    ASSERT_TRUE(exec.enable_all().is_ok());
    post_counts(exec, tid, 5);
    ASSERT_TRUE(pump_until(exec, [&] { return raw->count() == 5; }));
    EXPECT_EQ(exec.stats().dispatched, 5u);
    EXPECT_EQ(exec.stats().dispatch_batches, 5u);  // lockstep
  }
  {
    ExecutiveConfig cfg;
    cfg.dispatch_batch = 8;
    Executive exec(cfg);
    auto dev = std::make_unique<CounterDevice>();
    CounterDevice* raw = dev.get();
    const auto tid = exec.install(std::move(dev), "cnt").value();
    ASSERT_TRUE(exec.enable_all().is_ok());
    post_counts(exec, tid, 8);  // all queued before the first pump
    ASSERT_TRUE(pump_until(exec, [&] { return raw->count() == 8; }));
    EXPECT_EQ(exec.stats().dispatched, 8u);
    EXPECT_LT(exec.stats().dispatch_batches, 8u);  // amortized
  }
}

// The per-device dispatch table is a searched perfect hash; it must be
// observably equivalent to the handler map it is built from: every bound
// key - including adversarial ones sharing low bits - reaches exactly its
// own handler, and unbound keys that alias an occupied slot are rejected.
TEST(Executive, PerfectHashDispatchMatchesHandlerMap) {
  class ManyFnDevice : public Device {
   public:
    ManyFnDevice() : Device("ManyFnDevice") {
      // 16 keys with identical low bytes: a naive "mask the low bits"
      // table would collide on every one of them.
      for (std::uint16_t i = 0; i < 16; ++i) {
        const std::uint16_t xfn = static_cast<std::uint16_t>(0x0100 * i + 0x42);
        bind(i2o::OrgId::kTest, xfn, [this, i](const MessageContext&) {
          ++hits_[i];
        });
      }
    }
    std::array<std::atomic<std::uint32_t>, 16> hits_{};
  };

  Executive exec;
  auto dev = std::make_unique<ManyFnDevice>();
  ManyFnDevice* raw = dev.get();
  const auto tid = exec.install(std::move(dev), "many").value();
  ASSERT_TRUE(exec.enable_all().is_ok());

  auto send = [&](std::uint16_t xfn) {
    auto frame = exec.alloc_frame(0, true);
    ASSERT_TRUE(frame.is_ok());
    i2o::FrameHeader hdr;
    hdr.function = static_cast<std::uint8_t>(i2o::Function::Private);
    hdr.organization = static_cast<std::uint16_t>(i2o::OrgId::kTest);
    hdr.xfunction = xfn;
    hdr.target = tid;
    auto bytes = frame.value().bytes();
    ASSERT_TRUE(i2o::encode_header(hdr, bytes).is_ok());
    ASSERT_TRUE(exec.frame_send(std::move(frame).value()).is_ok());
  };

  for (std::uint16_t i = 0; i < 16; ++i) {
    send(static_cast<std::uint16_t>(0x0100 * i + 0x42));
  }
  // Unbound keys guaranteed to alias SOME occupied slot in any table of
  // 32 or fewer entries: 33 distinct keys into <= 32 slots must collide.
  for (std::uint16_t i = 16; i < 49; ++i) {
    send(static_cast<std::uint16_t>(0x0100 * i + 0x42));
  }
  ASSERT_TRUE(pump_until(exec, [&] {
    const auto s = exec.stats();
    return s.dispatched >= 16 && s.default_handled >= 33;
  }));
  for (std::uint16_t i = 0; i < 16; ++i) {
    EXPECT_EQ(raw->hits_[i].load(), 1u) << "xfunction slot " << i;
  }
  // All 33 unbound keys fell through to the default (fail-reply) path:
  // key compare in the table rejected every alias.
  EXPECT_EQ(exec.stats().default_handled, 33u);
}

TEST(Executive, RequesterPrivateEcho) {
  Executive exec;
  const auto echo_tid =
      exec.install(std::make_unique<EchoDevice>(), "echo").value();
  auto req = std::make_unique<Requester>();
  Requester* req_raw = req.get();
  ASSERT_TRUE(exec.install(std::move(req), "req").is_ok());
  ASSERT_TRUE(exec.enable_all().is_ok());
  exec.start();

  const auto payload = bytes_of(make_payload(64, 2));
  auto reply = req_raw->call_private(echo_tid, i2o::OrgId::kTest, kXfnEcho,
                                     payload, xdaq::core::CallOptions{.timeout = std::chrono::seconds(2)});
  exec.stop();
  ASSERT_TRUE(reply.is_ok()) << reply.status().to_string();
  EXPECT_FALSE(reply.value().failed());
  // Padding rounds payloads up to words; the prefix must match exactly.
  ASSERT_GE(reply.value().payload.size(), payload.size());
  EXPECT_EQ(std::memcmp(reply.value().payload.data(), payload.data(),
                        payload.size()),
            0);
}

TEST(Executive, UnboundXfunctionGetsFailReply) {
  Executive exec;
  const auto echo_tid =
      exec.install(std::make_unique<EchoDevice>(), "echo").value();
  auto req = std::make_unique<Requester>();
  Requester* req_raw = req.get();
  ASSERT_TRUE(exec.install(std::move(req), "req").is_ok());
  ASSERT_TRUE(exec.enable_all().is_ok());
  exec.start();
  auto reply = req_raw->call_private(echo_tid, i2o::OrgId::kTest, 0x7777, {},
                                     xdaq::core::CallOptions{.timeout = std::chrono::seconds(2)});
  exec.stop();
  ASSERT_TRUE(reply.is_ok());
  EXPECT_TRUE(reply.value().failed());
  EXPECT_GE(exec.stats().default_handled, 1u);
}

TEST(Executive, DisabledDeviceRejectsPrivateTraffic) {
  Executive exec;
  const auto echo_tid =
      exec.install(std::make_unique<EchoDevice>(), "echo").value();
  auto req = std::make_unique<Requester>();
  Requester* req_raw = req.get();
  ASSERT_TRUE(exec.install(std::move(req), "req").is_ok());
  // echo NOT enabled.
  exec.start();
  auto reply = req_raw->call_private(echo_tid, i2o::OrgId::kTest, kXfnEcho,
                                     {}, xdaq::core::CallOptions{.timeout = std::chrono::seconds(2)});
  exec.stop();
  ASSERT_TRUE(reply.is_ok());
  EXPECT_TRUE(reply.value().failed());
  EXPECT_GE(exec.stats().rejected_disabled, 1u);
}

TEST(Executive, UnknownTargetDropsAndCounts) {
  Executive exec;
  auto frame = exec.alloc_frame(0, true);
  ASSERT_TRUE(frame.is_ok());
  i2o::FrameHeader hdr;
  hdr.function = static_cast<std::uint8_t>(i2o::Function::Private);
  hdr.organization = static_cast<std::uint16_t>(i2o::OrgId::kTest);
  hdr.xfunction = kXfnEcho;
  hdr.target = 999;
  auto bytes = frame.value().bytes();
  ASSERT_TRUE(i2o::encode_header(hdr, bytes).is_ok());
  EXPECT_EQ(exec.frame_send(std::move(frame).value()).code(),
            Errc::Unroutable);
  EXPECT_EQ(exec.stats().dropped_unknown, 1u);
}

TEST(Executive, UtilParamsGetRoundTrip) {
  Executive exec;
  ASSERT_TRUE(exec.install(std::make_unique<EchoDevice>(), "echo").is_ok());
  auto req = std::make_unique<Requester>();
  Requester* req_raw = req.get();
  ASSERT_TRUE(exec.install(std::move(req), "req").is_ok());
  exec.start();
  const auto echo_tid = exec.tid_of("echo").value();
  auto reply =
      req_raw->call_standard(echo_tid, i2o::Function::UtilParamsGet, {},
                             xdaq::core::CallOptions{.timeout = std::chrono::seconds(2)});
  exec.stop();
  ASSERT_TRUE(reply.is_ok()) << reply.status().to_string();
  ASSERT_FALSE(reply.value().failed());
  auto params = reply.value().params();
  ASSERT_TRUE(params.is_ok());
  EXPECT_EQ(i2o::param_value(params.value(), "class"), "EchoDevice");
  EXPECT_EQ(i2o::param_value(params.value(), "instance"), "echo");
}

TEST(Executive, ExecStatusGetViaMessage) {
  Executive exec;
  ASSERT_TRUE(exec.install(std::make_unique<EchoDevice>(), "echo").is_ok());
  auto req = std::make_unique<Requester>();
  Requester* req_raw = req.get();
  ASSERT_TRUE(exec.install(std::move(req), "req").is_ok());
  exec.start();
  auto reply = req_raw->call_standard(exec.kernel_tid(),
                                      i2o::Function::ExecStatusGet, {},
                                      xdaq::core::CallOptions{.timeout = std::chrono::seconds(2)});
  exec.stop();
  ASSERT_TRUE(reply.is_ok());
  auto params = reply.value().params();
  ASSERT_TRUE(params.is_ok());
  EXPECT_EQ(i2o::param_value(params.value(), "devices"), "3");
  EXPECT_TRUE(i2o::param_has(params.value(), "device.echo"));
}

TEST(Executive, ExecEnableViaMessage) {
  Executive exec;
  ASSERT_TRUE(exec.install(std::make_unique<EchoDevice>(), "echo").is_ok());
  auto req = std::make_unique<Requester>();
  Requester* req_raw = req.get();
  ASSERT_TRUE(exec.install(std::move(req), "req").is_ok());
  exec.start();
  auto reply = req_raw->call_standard(
      exec.kernel_tid(), i2o::Function::ExecEnable,
      {{"instance", "echo"}}, xdaq::core::CallOptions{.timeout = std::chrono::seconds(2)});
  ASSERT_TRUE(reply.is_ok());
  EXPECT_FALSE(reply.value().failed());
  exec.stop();
  EXPECT_EQ(exec.device(exec.tid_of("echo").value())->state(),
            DeviceState::Enabled);
}

TEST(Executive, ExecPluginLoadViaMessage) {
  Executive exec;
  auto req = std::make_unique<Requester>();
  Requester* req_raw = req.get();
  ASSERT_TRUE(exec.install(std::move(req), "req").is_ok());
  exec.start();
  auto reply = req_raw->call_standard(
      exec.kernel_tid(), i2o::Function::ExecPluginLoad,
      {{"class", "CounterDevice"}, {"instance", "loaded0"}},
      xdaq::core::CallOptions{.timeout = std::chrono::seconds(2)});
  exec.stop();
  ASSERT_TRUE(reply.is_ok());
  EXPECT_FALSE(reply.value().failed());
  EXPECT_TRUE(exec.tid_of("loaded0").is_ok());
}

TEST(Executive, ExecMessagesToNonKernelFail) {
  Executive exec;
  ASSERT_TRUE(exec.install(std::make_unique<EchoDevice>(), "echo").is_ok());
  auto req = std::make_unique<Requester>();
  Requester* req_raw = req.get();
  ASSERT_TRUE(exec.install(std::move(req), "req").is_ok());
  exec.start();
  auto reply = req_raw->call_standard(exec.tid_of("echo").value(),
                                      i2o::Function::ExecStatusGet, {},
                                      xdaq::core::CallOptions{.timeout = std::chrono::seconds(2)});
  exec.stop();
  ASSERT_TRUE(reply.is_ok());
  EXPECT_TRUE(reply.value().failed());
}

TEST(Executive, TimerDeliversOnTimerMessage) {
  Executive exec;
  auto dev = std::make_unique<CounterDevice>();
  CounterDevice* raw = dev.get();
  const auto tid = exec.install(std::move(dev), "cnt").value();
  ASSERT_TRUE(exec.enable(tid).is_ok());
  const auto id = exec.arm_timer(tid, std::chrono::milliseconds(10));
  EXPECT_GT(id, 0u);
  ASSERT_TRUE(pump_until(exec, [&] { return raw->timer_fires_.load() >= 1; }));
  EXPECT_EQ(raw->last_timer_.load(), id);
}

TEST(Executive, PeriodicTimerFiresRepeatedly) {
  Executive exec;
  auto dev = std::make_unique<CounterDevice>();
  CounterDevice* raw = dev.get();
  const auto tid = exec.install(std::move(dev), "cnt").value();
  ASSERT_TRUE(exec.enable(tid).is_ok());
  const auto id = exec.arm_timer(tid, std::chrono::milliseconds(5),
                                 std::chrono::milliseconds(5));
  ASSERT_TRUE(pump_until(exec, [&] { return raw->timer_fires_.load() >= 3; }));
  EXPECT_TRUE(exec.cancel_timer(id));
  // Cancelling again reports false.
  EXPECT_FALSE(exec.cancel_timer(id));
}

TEST(Executive, ThrowingHandlerIsQuarantined) {
  Executive exec;
  auto rogue = std::make_unique<RogueDevice>();
  const auto tid = exec.install(std::move(rogue), "rogue").value();
  auto req = std::make_unique<Requester>();
  Requester* req_raw = req.get();
  ASSERT_TRUE(exec.install(std::move(req), "req").is_ok());
  ASSERT_TRUE(exec.enable_all().is_ok());
  exec.start();
  auto reply = req_raw->call_private(tid, i2o::OrgId::kTest, kXfnThrow, {},
                                     xdaq::core::CallOptions{.timeout = std::chrono::seconds(2)});
  exec.stop();
  ASSERT_TRUE(reply.is_ok());
  EXPECT_TRUE(reply.value().failed());
  EXPECT_EQ(exec.device(tid)->state(), DeviceState::Failed);
}

TEST(Executive, WatchdogTripsOnSlowHandler) {
  ExecutiveConfig cfg;
  cfg.handler_deadline = std::chrono::milliseconds(20);
  Executive exec(cfg);
  auto rogue = std::make_unique<RogueDevice>();
  const auto tid = exec.install(std::move(rogue), "rogue").value();
  auto req = std::make_unique<Requester>();
  Requester* req_raw = req.get();
  ASSERT_TRUE(exec.install(std::move(req), "req").is_ok());
  ASSERT_TRUE(exec.enable_all().is_ok());
  exec.start();
  // kXfnSleep stalls 100 ms >> 20 ms deadline.
  auto reply = req_raw->call_private(tid, i2o::OrgId::kTest, kXfnSleep, {},
                                     xdaq::core::CallOptions{.timeout = std::chrono::seconds(5)});
  exec.stop();
  ASSERT_TRUE(reply.is_ok());
  EXPECT_TRUE(reply.value().failed());
  EXPECT_EQ(exec.device(tid)->state(), DeviceState::Failed);
  EXPECT_GE(exec.stats().watchdog_trips, 1u);
}

TEST(Executive, AllocFrameRejectsOversizedPayload) {
  Executive exec;
  EXPECT_EQ(exec.alloc_frame(i2o::kMaxPayloadBytes + 1, true).status().code(),
            Errc::InvalidArgument);
}

TEST(Executive, PostRejectsMalformedFrame) {
  Executive exec;
  auto frame = exec.pool().allocate(8);  // too short for a header
  ASSERT_TRUE(frame.is_ok());
  EXPECT_EQ(exec.post(std::move(frame).value()).code(), Errc::MalformedFrame);
  EXPECT_EQ(exec.stats().dropped_malformed, 1u);
}

TEST(Executive, RequesterTimesOutWithoutResponder) {
  Executive exec;
  auto dev = std::make_unique<CounterDevice>();  // never replies to kXfnCount
  const auto tid = exec.install(std::move(dev), "cnt").value();
  auto req = std::make_unique<Requester>();
  Requester* req_raw = req.get();
  ASSERT_TRUE(exec.install(std::move(req), "req").is_ok());
  ASSERT_TRUE(exec.enable_all().is_ok());
  exec.start();
  auto reply = req_raw->call_private(tid, i2o::OrgId::kTest, kXfnCount, {},
                                     xdaq::core::CallOptions{.timeout = std::chrono::milliseconds(100)});
  exec.stop();
  EXPECT_FALSE(reply.is_ok());
  EXPECT_EQ(reply.status().code(), Errc::Timeout);
  EXPECT_EQ(req_raw->outstanding(), 0u);  // pending entry cleaned up
}

}  // namespace
}  // namespace xdaq::core
