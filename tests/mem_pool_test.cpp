#include "mem/pool.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "util/random.hpp"

namespace xdaq::mem {
namespace {

TEST(FrameRef, DefaultIsInvalid) {
  const FrameRef f;
  EXPECT_FALSE(f.valid());
  EXPECT_EQ(f.size(), 0u);
  EXPECT_EQ(f.capacity(), 0u);
  EXPECT_TRUE(f.bytes().empty());
}

TEST(FrameRef, CopySharesAndRecyclesOnce) {
  TablePool pool;
  {
    auto a = pool.allocate(100);
    ASSERT_TRUE(a.is_ok());
    FrameRef f1 = std::move(a).value();
    EXPECT_EQ(f1.use_count(), 1u);
    {
      const FrameRef f2 = f1;  // NOLINT
      EXPECT_EQ(f1.use_count(), 2u);
      EXPECT_EQ(f2.bytes().data(), f1.bytes().data());
    }
    EXPECT_EQ(f1.use_count(), 1u);
  }
  const auto s = pool.stats();
  EXPECT_EQ(s.allocs, 1u);
  EXPECT_EQ(s.frees, 1u);
  EXPECT_EQ(s.outstanding, 0u);
}

TEST(FrameRef, MoveTransfersOwnership) {
  TablePool pool;
  auto a = pool.allocate(64);
  ASSERT_TRUE(a.is_ok());
  FrameRef f1 = std::move(a).value();
  FrameRef f2 = std::move(f1);
  EXPECT_FALSE(f1.valid());  // NOLINT(bugprone-use-after-move) intentional
  EXPECT_TRUE(f2.valid());
  EXPECT_EQ(f2.use_count(), 1u);
}

TEST(FrameRef, ResizeWithinCapacity) {
  TablePool pool;
  auto a = pool.allocate(10);
  ASSERT_TRUE(a.is_ok());
  FrameRef f = std::move(a).value();
  EXPECT_EQ(f.size(), 10u);
  EXPECT_GE(f.capacity(), 10u);
  EXPECT_TRUE(f.resize(f.capacity()));
  EXPECT_FALSE(f.resize(f.capacity() + 1));
}

TEST(FrameRef, DataReadableAndWritable) {
  TablePool pool;
  auto a = pool.allocate(256);
  ASSERT_TRUE(a.is_ok());
  FrameRef f = std::move(a).value();
  const auto pattern = make_payload(256, 77);
  std::memcpy(f.bytes().data(), pattern.data(), 256);
  EXPECT_EQ(std::memcmp(f.bytes().data(), pattern.data(), 256), 0);
}

// ------------------------------------------------------------- SimplePool

TEST(SimplePool, BestFitPicksSmallestAdequateBlock) {
  SimplePool pool({{64, 2}, {1024, 2}});
  EXPECT_EQ(pool.block_count(), 4u);
  EXPECT_EQ(pool.free_count(), 4u);
  auto a = pool.allocate(48);
  ASSERT_TRUE(a.is_ok());
  EXPECT_EQ(a.value().capacity(), 64u);  // not the 1024 block
  auto b = pool.allocate(500);
  ASSERT_TRUE(b.is_ok());
  EXPECT_EQ(b.value().capacity(), 1024u);
  EXPECT_EQ(pool.free_count(), 2u);
}

TEST(SimplePool, SmallBinExhaustedFallsToLarger) {
  SimplePool pool({{64, 1}, {1024, 2}});
  auto a = pool.allocate(64);
  ASSERT_TRUE(a.is_ok());
  EXPECT_EQ(a.value().capacity(), 64u);
  auto b = pool.allocate(64);  // only 1024-byte blocks left
  ASSERT_TRUE(b.is_ok());
  EXPECT_EQ(b.value().capacity(), 1024u);
}

TEST(SimplePool, ExhaustionFailsCleanly) {
  SimplePool pool({{64, 1}});
  auto a = pool.allocate(10);
  ASSERT_TRUE(a.is_ok());
  auto b = pool.allocate(10);
  EXPECT_EQ(b.status().code(), Errc::ResourceExhausted);
  EXPECT_EQ(pool.stats().failures, 1u);
  a.value().reset();
  auto c = pool.allocate(10);  // recycled block usable again
  EXPECT_TRUE(c.is_ok());
}

TEST(SimplePool, OversizedRequestRejected) {
  SimplePool pool;
  auto r = pool.allocate(kMaxBlockBytes + 1);
  EXPECT_EQ(r.status().code(), Errc::InvalidArgument);
}

TEST(SimplePool, RecycleReturnsBlockToList) {
  SimplePool pool({{64, 2}, {1024, 2}});
  {
    auto big = pool.allocate(512);
    ASSERT_TRUE(big.is_ok());
    EXPECT_EQ(pool.free_count(), 3u);
  }
  EXPECT_EQ(pool.free_count(), 4u);
  // The recycled block is found again by a best-fit request.
  auto again = pool.allocate(512);
  ASSERT_TRUE(again.is_ok());
  EXPECT_EQ(again.value().capacity(), 1024u);
}

// -------------------------------------------------------------- TablePool

TEST(TablePool, SizeClassMapping) {
  TablePool pool(64);
  EXPECT_EQ(pool.size_class_of(0), 0u);
  EXPECT_EQ(pool.size_class_of(1), 0u);
  EXPECT_EQ(pool.size_class_of(64), 0u);
  EXPECT_EQ(pool.size_class_of(65), 1u);
  EXPECT_EQ(pool.size_class_of(128), 1u);
  EXPECT_EQ(pool.size_class_of(129), 2u);
  EXPECT_EQ(pool.class_block_bytes(pool.size_class_of(kMaxBlockBytes)),
            kMaxBlockBytes);
}

TEST(TablePool, ClassesCoverPowerOfTwoLadder) {
  TablePool pool(64);
  std::size_t expect = 64;
  for (std::size_t c = 0; c + 1 < pool.class_count(); ++c) {
    EXPECT_EQ(pool.class_block_bytes(c), expect);
    expect <<= 1;
  }
  EXPECT_EQ(pool.class_block_bytes(pool.class_count() - 1), kMaxBlockBytes);
}

TEST(TablePool, GrowsOnDemandAndReuses) {
  TablePool pool;
  EXPECT_EQ(pool.stats().grows, 0u);
  {
    auto a = pool.allocate(100);
    ASSERT_TRUE(a.is_ok());
    EXPECT_EQ(pool.stats().grows, 1u);
  }
  {
    auto b = pool.allocate(100);  // same class -> reuse, no growth
    ASSERT_TRUE(b.is_ok());
    EXPECT_EQ(pool.stats().grows, 1u);
  }
}

TEST(TablePool, CapacityAtLeastRequested) {
  TablePool pool;
  for (const std::size_t sz : {1u, 63u, 64u, 65u, 1000u, 70000u}) {
    auto a = pool.allocate(sz);
    ASSERT_TRUE(a.is_ok());
    EXPECT_GE(a.value().capacity(), sz);
    EXPECT_EQ(a.value().size(), sz);
  }
}

TEST(TablePool, OversizedRequestRejected) {
  TablePool pool;
  auto r = pool.allocate(kMaxBlockBytes + 1);
  EXPECT_EQ(r.status().code(), Errc::InvalidArgument);
}

// ------------------------------------------------ TablePool thread cache

TEST(TablePoolThreadCache, RecycleStashesAndFlushReturns) {
  TablePool pool;
  const std::size_t cls = pool.size_class_of(100);
  {
    auto a = pool.allocate(100);
    ASSERT_TRUE(a.is_ok());
  }  // released: the block lands in this thread's cache, not the class list
  EXPECT_GE(pool.thread_cached_blocks(), 1u);
  EXPECT_EQ(pool.class_free_count(cls), 0u);
  pool.flush_thread_cache();
  EXPECT_EQ(pool.thread_cached_blocks(), 0u);
  EXPECT_EQ(pool.class_free_count(cls), 1u);
  // Stats stay exact across the stash/flush cycle.
  const auto s = pool.stats();
  EXPECT_EQ(s.allocs, 1u);
  EXPECT_EQ(s.frees, 1u);
  EXPECT_EQ(s.outstanding, 0u);
}

TEST(TablePoolThreadCache, CachedBlocksReturnOnThreadExit) {
  TablePool pool;
  const std::size_t cls = pool.size_class_of(100);
  std::thread worker([&pool] {
    auto a = pool.allocate(100);
    ASSERT_TRUE(a.is_ok());
    a.value().reset();
    // The worker's release is cached locally, invisible to the class list.
    EXPECT_GE(pool.thread_cached_blocks(), 1u);
  });
  worker.join();
  // Thread teardown returns the cached block to its owning size class.
  EXPECT_EQ(pool.class_free_count(cls), 1u);
  EXPECT_EQ(pool.thread_cached_blocks(), 0u);  // main thread's cache
  const auto s = pool.stats();
  EXPECT_EQ(s.allocs, s.frees);
  EXPECT_EQ(s.outstanding, 0u);
  // The returned block is allocatable from this thread without growth.
  const auto grows_before = pool.stats().grows;
  auto b = pool.allocate(100);
  ASSERT_TRUE(b.is_ok());
  EXPECT_EQ(pool.stats().grows, grows_before);
}

TEST(TablePoolThreadCache, OutstandingExactUnderThreadChurn) {
  // Four threads churn allocate/release with overlapping live windows;
  // outstanding (derived allocs - frees) must be exact at quiescence and
  // never observed above the true live count... which a racing reader can
  // only bound, so assert the quiescent values precisely instead.
  TablePool pool;
  constexpr int kThreads = 4;
  constexpr int kIters = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool, t] {
      Rng rng(static_cast<std::uint64_t>(t) * 977 + 13);
      std::vector<FrameRef> live;
      for (int i = 0; i < kIters; ++i) {
        if (live.size() < 8 && (live.empty() || rng.chance(0.6))) {
          auto r = pool.allocate(rng.between(1, 2048));
          ASSERT_TRUE(r.is_ok());
          live.push_back(std::move(r).value());
        } else {
          live.erase(live.begin() +
                     static_cast<std::ptrdiff_t>(rng.below(live.size())));
        }
      }
      pool.flush_thread_cache();
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  const auto s = pool.stats();
  EXPECT_EQ(s.allocs, s.frees);
  EXPECT_EQ(s.outstanding, 0u);
}

// -------------------------------------------------- batched frame release

TEST(TablePool, ReleaseForBatchDetachesSoleOwner) {
  TablePool pool;
  auto a = pool.allocate(128);
  ASSERT_TRUE(a.is_ok());
  FrameRef f = std::move(a).value();
  const std::size_t cls = pool.size_class_of(128);
  BlockHeader* blk = f.release_for_batch();
  ASSERT_NE(blk, nullptr);
  EXPECT_FALSE(f.valid());
  EXPECT_EQ(blk->owner, &pool);
  // The block is detached but NOT yet freed: the caller owes recycle_batch.
  EXPECT_EQ(pool.stats().frees, 0u);
  EXPECT_EQ(pool.stats().outstanding, 1u);
  BlockHeader* batch[] = {blk};
  pool.recycle_batch(batch);
  pool.flush_thread_cache();
  EXPECT_EQ(pool.stats().frees, 1u);
  EXPECT_EQ(pool.stats().outstanding, 0u);
  EXPECT_EQ(pool.class_free_count(cls) + pool.thread_cached_blocks(), 1u);
}

TEST(TablePool, ReleaseForBatchSharedFallsBackToPlainRelease) {
  TablePool pool;
  auto a = pool.allocate(64);
  ASSERT_TRUE(a.is_ok());
  FrameRef f1 = std::move(a).value();
  FrameRef f2 = f1;  // shared: f1 is no longer the sole owner
  EXPECT_EQ(f2.use_count(), 2u);
  EXPECT_EQ(f1.release_for_batch(), nullptr);  // plain decref, no detach
  EXPECT_FALSE(f1.valid());
  EXPECT_EQ(f2.use_count(), 1u);
  EXPECT_EQ(pool.stats().outstanding, 1u);  // f2 still holds the block
  f2.reset();
  EXPECT_EQ(pool.stats().outstanding, 0u);
  EXPECT_EQ(pool.stats().allocs, pool.stats().frees);
}

TEST(TablePool, RecycleBatchSpanningSizeClasses) {
  // One recycle_batch call with blocks from several classes: every block
  // must land back in ITS class, and the free counters must be exact.
  TablePool pool;
  const std::size_t sizes[] = {32, 100, 1000, 100, 9000, 32, 1000};
  std::vector<BlockHeader*> batch;
  for (const std::size_t sz : sizes) {
    auto r = pool.allocate(sz);
    ASSERT_TRUE(r.is_ok());
    FrameRef f = std::move(r).value();
    BlockHeader* blk = f.release_for_batch();
    ASSERT_NE(blk, nullptr);
    batch.push_back(blk);
  }
  EXPECT_EQ(pool.stats().outstanding, std::size(sizes));
  pool.recycle_batch(batch);
  pool.flush_thread_cache();
  const auto s = pool.stats();
  EXPECT_EQ(s.allocs, std::size(sizes));
  EXPECT_EQ(s.frees, std::size(sizes));
  EXPECT_EQ(s.outstanding, 0u);
  std::size_t per_class_total = 0;
  for (std::size_t c = 0; c < pool.class_count(); ++c) {
    per_class_total += pool.class_free_count(c);
  }
  EXPECT_EQ(per_class_total, std::size(sizes));
  // Spot-check one class: two 1000-byte blocks ended up together.
  EXPECT_EQ(pool.class_free_count(pool.size_class_of(1000)), 2u);
}

TEST(TablePool, RecycleBatchLargeBatchReusable) {
  // A batch bigger than the thread-cache bins exercises the overflow
  // splice onto the shared class lists; every block must be reusable.
  TablePool pool;
  constexpr int kFrames = 64;
  std::vector<BlockHeader*> batch;
  batch.reserve(kFrames);
  for (int i = 0; i < kFrames; ++i) {
    auto r = pool.allocate(256);
    ASSERT_TRUE(r.is_ok());
    FrameRef f = std::move(r).value();
    BlockHeader* blk = f.release_for_batch();
    ASSERT_NE(blk, nullptr);
    batch.push_back(blk);
  }
  pool.recycle_batch(batch);
  const auto grows_before = pool.stats().grows;
  std::vector<FrameRef> again;
  again.reserve(kFrames);
  for (int i = 0; i < kFrames; ++i) {
    auto r = pool.allocate(256);
    ASSERT_TRUE(r.is_ok());
    again.push_back(std::move(r).value());
  }
  EXPECT_EQ(pool.stats().grows, grows_before);  // all reused, no growth
  again.clear();
  pool.flush_thread_cache();
  EXPECT_EQ(pool.stats().allocs, pool.stats().frees);
  EXPECT_EQ(pool.stats().outstanding, 0u);
}

// Property test: random alloc/release sequences preserve the pool
// invariants (allocs == frees once everything is released; no block serves
// two live handles; contents do not bleed between allocations).
class PoolPropertyP : public ::testing::TestWithParam<int> {};

TEST_P(PoolPropertyP, RandomAllocReleaseKeepsInvariants) {
  const int seed = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed));
  TablePool table;
  SimplePool simple;
  Pool* pools[] = {&table, &simple};
  for (Pool* pool : pools) {
    std::vector<FrameRef> live;
    for (int step = 0; step < 2000; ++step) {
      if (live.empty() || rng.chance(0.6)) {
        const std::size_t sz = rng.between(1, 8192);
        auto r = pool->allocate(sz);
        if (r.is_ok()) {
          FrameRef f = std::move(r).value();
          // Stamp first bytes with the handle count to detect aliasing.
          ASSERT_GE(f.capacity(), sz);
          ASSERT_EQ(f.use_count(), 1u) << "freshly allocated block aliased";
          live.push_back(std::move(f));
        }
      } else {
        const std::size_t idx = rng.below(live.size());
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
      }
    }
    live.clear();
    const auto s = pool->stats();
    EXPECT_EQ(s.allocs, s.frees) << pool->name();
    EXPECT_EQ(s.outstanding, 0u) << pool->name();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PoolPropertyP, ::testing::Range(1, 6));

TEST(FrameRefView, SharesBlockAndRecyclesAfterLastViewDrops) {
  TablePool pool;
  auto r = pool.allocate(1024);
  ASSERT_TRUE(r.is_ok());
  FrameRef block = std::move(r).value();
  for (std::size_t i = 0; i < block.size(); ++i) {
    block.bytes()[i] = static_cast<std::byte>(i & 0xFF);
  }

  FrameRef v1 = block.view(0, 100);
  FrameRef v2 = block.view(100, 200);
  ASSERT_TRUE(v1.valid());
  ASSERT_TRUE(v2.valid());
  EXPECT_TRUE(v1.is_view());
  EXPECT_TRUE(v2.is_view());
  EXPECT_EQ(v1.size(), 100u);
  EXPECT_EQ(v2.size(), 200u);
  EXPECT_EQ(v2.offset(), 100u);
  EXPECT_EQ(block.use_count(), 3u);
  EXPECT_EQ(pool.stats().views, 2u);

  // Views alias the block's bytes, each through its own window.
  EXPECT_EQ(v1.bytes().data(), block.bytes().data());
  EXPECT_EQ(v2.bytes().data(), block.bytes().data() + 100);
  EXPECT_EQ(v2.bytes()[0], std::byte{100});

  // Dropping the whole-block handle must NOT recycle: views keep it live.
  block.reset();
  pool.flush_thread_cache();
  EXPECT_EQ(pool.stats().outstanding, 1u);
  v1.reset();
  pool.flush_thread_cache();
  EXPECT_EQ(pool.stats().outstanding, 1u);
  EXPECT_EQ(v2.bytes()[199], std::byte{(100 + 199) & 0xFF});  // still readable

  // Only the LAST view returns the block.
  v2.reset();
  pool.flush_thread_cache();
  const auto s = pool.stats();
  EXPECT_EQ(s.outstanding, 0u);
  EXPECT_EQ(s.allocs, 1u);
  EXPECT_EQ(s.frees, 1u);
}

TEST(FrameRefView, NestedViewOffsetsCompose) {
  TablePool pool;
  auto r = pool.allocate(256);
  ASSERT_TRUE(r.is_ok());
  FrameRef block = std::move(r).value();
  block.bytes()[30] = std::byte{0xAB};

  const FrameRef outer = block.view(10, 100);
  const FrameRef inner = outer.view(20, 40);  // [30, 70) of the block
  ASSERT_TRUE(inner.valid());
  EXPECT_EQ(inner.offset(), 30u);
  EXPECT_EQ(inner.size(), 40u);
  EXPECT_EQ(inner.bytes()[0], std::byte{0xAB});
  EXPECT_EQ(block.use_count(), 3u);
}

TEST(FrameRefView, OutOfRangeViewIsInvalid) {
  TablePool pool;
  auto r = pool.allocate(64);
  ASSERT_TRUE(r.is_ok());
  FrameRef block = std::move(r).value();
  EXPECT_FALSE(block.view(0, 65).valid());
  EXPECT_FALSE(block.view(64, 1).valid());
  EXPECT_FALSE(FrameRef{}.view(0, 0).valid());
  EXPECT_EQ(block.use_count(), 1u);  // failed views took no references
}

TEST(FrameRefView, ViewResizeIsHandleLocal) {
  TablePool pool;
  auto r = pool.allocate(128);
  ASSERT_TRUE(r.is_ok());
  FrameRef block = std::move(r).value();
  FrameRef v = block.view(32, 16);
  EXPECT_TRUE(v.resize(64));  // grows into the block tail
  EXPECT_EQ(v.size(), 64u);
  EXPECT_EQ(block.size(), 128u);  // sibling handle untouched
  EXPECT_FALSE(v.resize(128));    // 32 + 128 > capacity
}

// Two threads hammer view-create/copy/release on one shared block. Run
// under -DXDAQ_SANITIZE=thread this proves the refcount and the pool's
// view counter are race-free; in any build the final counts prove no
// reference was lost or double-released.
TEST(PoolThreading, ConcurrentViewRetainRelease) {
  TablePool pool;
  auto r = pool.allocate(4096);
  ASSERT_TRUE(r.is_ok());
  FrameRef block = std::move(r).value();
  constexpr int kIters = 20000;
  auto hammer = [&block](std::size_t offset) {
    for (int i = 0; i < kIters; ++i) {
      FrameRef v = block.view(offset, 64);
      ASSERT_TRUE(v.valid());
      FrameRef copy = v;  // extra retain/release pair
      ASSERT_EQ(copy.bytes().data(), v.bytes().data());
    }
  };
  std::thread t1(hammer, 0);
  std::thread t2(hammer, 2048);
  t1.join();
  t2.join();
  EXPECT_EQ(block.use_count(), 1u);
  EXPECT_EQ(pool.stats().views, 2u * kIters);
  block.reset();
  pool.flush_thread_cache();
  const auto s = pool.stats();
  EXPECT_EQ(s.outstanding, 0u);
  EXPECT_EQ(s.allocs, s.frees);
}

TEST(PoolThreading, ConcurrentAllocateRelease) {
  TablePool pool;
  constexpr int kThreads = 4;
  constexpr int kIters = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool, t] {
      Rng rng(static_cast<std::uint64_t>(t) + 1);
      for (int i = 0; i < kIters; ++i) {
        auto r = pool.allocate(rng.between(1, 4096));
        ASSERT_TRUE(r.is_ok());
        FrameRef keep = r.value();  // extra reference exercises refcounting
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  const auto s = pool.stats();
  EXPECT_EQ(s.allocs, static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(s.allocs, s.frees);
  EXPECT_EQ(s.outstanding, 0u);
}

TEST(TablePoolHugepages, OffByDefaultAndReportsZero) {
  TablePool pool;
  EXPECT_FALSE(pool.hugepages_active());
  auto r = pool.allocate(1024);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(pool.stats().hugepage_bytes, 0u);
  EXPECT_EQ(r.value().bytes().size(), 1024u);
}

// With hugepages requested, growth either carves 2 MiB arenas (hugepage
// bytes a positive multiple of 2 MiB, many blocks per grow) or - on a
// system with no hugepages reserved, the common CI case - latches the
// feature off after the first failed mmap and falls back to heap blocks.
// Allocation semantics must be identical either way.
TEST(TablePoolHugepages, ArenaCarvingOrGracefulFallback) {
  TablePool pool(TablePool::kDefaultMinClass, /*hugepages=*/true);
  std::vector<FrameRef> held;
  for (int i = 0; i < 64; ++i) {
    auto r = pool.allocate(4096);
    ASSERT_TRUE(r.is_ok());
    std::memset(r.value().bytes().data(), 0x5A, r.value().bytes().size());
    held.push_back(std::move(r).value());
  }
  const auto s = pool.stats();
  EXPECT_EQ(s.outstanding, 64u);
  constexpr std::uint64_t kHuge = 2ull * 1024 * 1024;
  if (pool.hugepages_active()) {
    EXPECT_GT(s.hugepage_bytes, 0u);
    EXPECT_EQ(s.hugepage_bytes % kHuge, 0u);
    // A whole arena was carved for the first 4 KiB-class grow: far more
    // free blocks than the 64 we took out.
    EXPECT_GT(s.grows, 64u);
  } else {
    EXPECT_EQ(s.hugepage_bytes, 0u);
  }
  held.clear();
  EXPECT_EQ(pool.stats().outstanding, 0u);
}

TEST(TablePoolHugepages, WarmThreadCacheRegistersEagerly) {
  TablePool pool;
  EXPECT_EQ(pool.thread_cached_blocks(), 0u);
  pool.warm_thread_cache();  // registers the cache, allocates no blocks
  EXPECT_EQ(pool.thread_cached_blocks(), 0u);
  { auto r = pool.allocate(256); }
  // The recycle fast path stashes into the pre-registered cache.
  EXPECT_EQ(pool.thread_cached_blocks(), 1u);
}

}  // namespace
}  // namespace xdaq::mem
