#include "util/random.hpp"

#include <gtest/gtest.h>

#include <set>

namespace xdaq {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) {
      ++same;
    }
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, BetweenInclusiveBounds) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.between(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 3u);  // all three values hit
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(9);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(MakePayload, DeterministicAndSized) {
  const auto a = make_payload(256, 5);
  const auto b = make_payload(256, 5);
  const auto c = make_payload(256, 6);
  EXPECT_EQ(a.size(), 256u);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(MakePayload, EmptyIsFine) {
  EXPECT_TRUE(make_payload(0, 1).empty());
}

}  // namespace
}  // namespace xdaq
