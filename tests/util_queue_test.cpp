#include "util/queue.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <span>
#include <string>
#include <thread>
#include <vector>

namespace xdaq {
namespace {

TEST(BoundedQueue, PushPopBasic) {
  BoundedQueue<int> q(4);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_TRUE(q.empty());
}

TEST(BoundedQueue, TryPushRespectsCapacity) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));
  EXPECT_EQ(q.try_pop().value(), 1);
  EXPECT_TRUE(q.try_push(3));
}

TEST(BoundedQueue, TryPopEmptyReturnsNull) {
  BoundedQueue<int> q(2);
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(BoundedQueue, CloseWakesBlockedPop) {
  BoundedQueue<int> q(2);
  std::thread waiter([&q] {
    const auto v = q.pop();
    EXPECT_FALSE(v.has_value());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  waiter.join();
}

TEST(BoundedQueue, CloseDrainsRemainingItems) {
  BoundedQueue<int> q(4);
  q.push(1);
  q.push(2);
  q.close();
  EXPECT_FALSE(q.push(3));
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(BoundedQueue, BlockingPushWaitsForSpace) {
  BoundedQueue<int> q(1);
  q.push(1);
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    q.push(2);  // blocks until the consumer pops
    pushed = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());
  EXPECT_EQ(q.pop().value(), 1);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(q.pop().value(), 2);
}

TEST(BoundedQueue, PushBatchAcceptsPrefixUpToCapacity) {
  BoundedQueue<int> q(4);
  q.push(0);
  std::vector<int> items = {1, 2, 3, 4, 5};
  // Only 3 slots left: the accepted elements are a prefix.
  EXPECT_EQ(q.push_batch(std::span<int>(items)), 3u);
  EXPECT_EQ(q.size(), 4u);
  EXPECT_FALSE(q.try_push(99));
  for (int expect = 0; expect <= 3; ++expect) {
    EXPECT_EQ(q.pop().value(), expect);
  }
  // The untouched suffix can be re-offered once space frees up.
  EXPECT_EQ(q.push_batch(std::span<int>(items).subspan(3)), 2u);
  EXPECT_EQ(q.pop().value(), 4);
  EXPECT_EQ(q.pop().value(), 5);
}

TEST(BoundedQueue, PushBatchOnClosedQueueAcceptsNothing) {
  BoundedQueue<int> q(4);
  q.close();
  std::vector<int> items = {1, 2};
  EXPECT_EQ(q.push_batch(std::span<int>(items)), 0u);
  EXPECT_TRUE(q.empty());
}

TEST(BoundedQueue, PushBatchMakeConstructsInPlace) {
  BoundedQueue<std::string> q(3);
  std::vector<int> src = {7, 8, 9, 10};
  const std::size_t n = q.push_batch_make(
      std::span<int>(src), [](int&& v) { return std::to_string(v); });
  EXPECT_EQ(n, 3u);  // capacity caps the accepted prefix
  EXPECT_EQ(q.pop().value(), "7");
  EXPECT_EQ(q.pop().value(), "8");
  EXPECT_EQ(q.pop().value(), "9");
  EXPECT_TRUE(q.empty());
}

TEST(BoundedQueue, DrainMovesUpToMaxAndAppends) {
  BoundedQueue<int> q(8);
  for (int i = 0; i < 6; ++i) {
    q.push(i);
  }
  std::vector<int> out = {-1};  // drain appends, never clears
  EXPECT_EQ(q.drain(out, 4), 4u);
  ASSERT_EQ(out.size(), 5u);
  EXPECT_EQ(out[0], -1);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(out[static_cast<std::size_t>(i) + 1], i);
  }
  EXPECT_EQ(q.drain(out, 100), 2u);  // remaining items, not max
  EXPECT_EQ(q.drain(out, 100), 0u);  // empty -> 0, no blocking
  EXPECT_EQ(out.size(), 7u);
}

TEST(BoundedQueue, DrainApplyFeedsSinkInOrder) {
  BoundedQueue<int> q(8);
  for (int i = 0; i < 5; ++i) {
    q.push(i * 10);
  }
  std::vector<int> seen;
  EXPECT_EQ(q.drain_apply([&seen](int&& v) { seen.push_back(v); }, 3), 3u);
  EXPECT_EQ(seen, (std::vector<int>{0, 10, 20}));
  EXPECT_EQ(q.drain_apply([&seen](int&& v) { seen.push_back(v); }, 0), 0u);
  EXPECT_EQ(q.size(), 2u);
}

TEST(BoundedQueue, DrainAfterCloseReturnsRemainingItems) {
  BoundedQueue<int> q(4);
  q.push(1);
  q.push(2);
  q.push(3);
  q.close();
  // A closed queue still drains its backlog, mirroring pop().
  std::vector<int> out;
  EXPECT_EQ(q.drain(out, 10), 3u);
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.drain(out, 10), 0u);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(BoundedQueue, CloseWhileConsumerDrains) {
  // Producers race push_batch against close(); whatever was accepted
  // before the close must come out exactly once, nothing after it.
  BoundedQueue<int> q(16);
  std::atomic<long> pushed_sum{0};
  std::atomic<int> pushed_count{0};
  std::thread producer([&] {
    std::vector<int> burst(4);
    for (int base = 0; base < 10000; base += 4) {
      for (int i = 0; i < 4; ++i) {
        burst[static_cast<std::size_t>(i)] = base + i;
      }
      const std::size_t n = q.push_batch(std::span<int>(burst));
      for (std::size_t i = 0; i < n; ++i) {
        pushed_sum += base + static_cast<int>(i);
        ++pushed_count;
      }
      if (n < 4) {
        if (q.closed()) {
          return;  // accepted a prefix because the queue closed under us
        }
        base -= static_cast<int>(4 - n);  // full: re-offer the suffix
      }
    }
  });
  std::thread closer([&q] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    q.close();
  });
  long drained_sum = 0;
  int drained_count = 0;
  std::vector<int> out;
  for (;;) {
    out.clear();
    if (q.drain(out, 8) == 0) {
      if (q.closed() && q.empty()) {
        // One final sweep: the producer may still be mid-batch.
        if (producer.joinable()) {
          producer.join();
        }
        if (q.drain(out, 1000) == 0) {
          break;
        }
      } else {
        std::this_thread::yield();
        continue;
      }
    }
    for (const int v : out) {
      drained_sum += v;
      ++drained_count;
    }
  }
  if (producer.joinable()) {
    producer.join();
  }
  closer.join();
  EXPECT_EQ(drained_count, pushed_count.load());
  EXPECT_EQ(drained_sum, pushed_sum.load());
}

TEST(BoundedQueue, DrainReleasesBackpressureOnBlockedProducers) {
  BoundedQueue<int> q(2);
  q.push(1);
  q.push(2);
  std::atomic<int> completed{0};
  std::vector<std::thread> producers;
  producers.reserve(2);
  for (int p = 0; p < 2; ++p) {
    producers.emplace_back([&q, &completed, p] {
      q.push(10 + p);  // blocks: the queue is full
      ++completed;
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(completed.load(), 0);
  // One drain must wake BOTH blocked producers (notify_all path).
  std::vector<int> out;
  EXPECT_EQ(q.drain(out, 2), 2u);
  for (auto& t : producers) {
    t.join();
  }
  EXPECT_EQ(completed.load(), 2);
  EXPECT_EQ(q.size(), 2u);
}

TEST(BoundedQueue, DrainForBlocksUntilBatchArrives) {
  BoundedQueue<int> q(8);
  std::thread producer([&q] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    std::vector<int> burst = {1, 2, 3};
    q.push_batch(std::span<int>(burst));
  });
  std::vector<int> out;
  // Generous deadline: the push_batch wakeup, not the timeout, ends the
  // wait. All three elements land in one drain.
  EXPECT_EQ(q.drain_for(out, 8, std::chrono::seconds(5)), 3u);
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3}));
  producer.join();
  EXPECT_EQ(q.drain_for(out, 8, std::chrono::milliseconds(1)), 0u);
}

TEST(BoundedQueue, BatchMultiProducerStress) {
  // Three batching producers vs. one draining consumer: every element
  // arrives exactly once (sum check) and capacity is never exceeded.
  constexpr int kPerProducer = 6000;
  constexpr int kProducers = 3;
  constexpr std::size_t kCap = 32;
  BoundedQueue<int> q(kCap);
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      std::vector<int> burst;
      for (int i = 0; i < kPerProducer;) {
        burst.clear();
        for (int j = 0; j < 7 && i + j < kPerProducer; ++j) {
          burst.push_back(p * kPerProducer + i + j);
        }
        std::span<int> rest(burst);
        while (!rest.empty()) {
          const std::size_t n = q.push_batch(rest);
          rest = rest.subspan(n);
          if (!rest.empty()) {
            std::this_thread::yield();
          }
        }
        i += static_cast<int>(burst.size());
      }
    });
  }
  long sum = 0;
  int received = 0;
  std::vector<int> out;
  while (received < kProducers * kPerProducer) {
    out.clear();
    const std::size_t n = q.drain(out, kCap);
    ASSERT_LE(n, kCap);
    if (n == 0) {
      std::this_thread::yield();
      continue;
    }
    for (const int v : out) {
      sum += v;
    }
    received += static_cast<int>(n);
  }
  for (auto& t : producers) {
    t.join();
  }
  const long n = static_cast<long>(kProducers) * kPerProducer;
  EXPECT_EQ(sum, n * (n - 1) / 2);
  EXPECT_TRUE(q.empty());
}

TEST(BoundedQueue, MultiProducerMultiConsumer) {
  constexpr int kPerProducer = 5000;
  constexpr int kProducers = 3;
  BoundedQueue<int> q(64);
  std::atomic<long> sum{0};
  std::atomic<int> received{0};

  std::vector<std::thread> threads;
  threads.reserve(kProducers + 2);
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        q.push(p * kPerProducer + i);
      }
    });
  }
  for (int c = 0; c < 2; ++c) {
    threads.emplace_back([&] {
      while (received.load() < kProducers * kPerProducer) {
        if (auto v = q.try_pop()) {
          sum += *v;
          ++received;
        }
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  const long n = kProducers * kPerProducer;
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

}  // namespace
}  // namespace xdaq
