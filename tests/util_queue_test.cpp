#include "util/queue.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace xdaq {
namespace {

TEST(BoundedQueue, PushPopBasic) {
  BoundedQueue<int> q(4);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_TRUE(q.empty());
}

TEST(BoundedQueue, TryPushRespectsCapacity) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));
  EXPECT_EQ(q.try_pop().value(), 1);
  EXPECT_TRUE(q.try_push(3));
}

TEST(BoundedQueue, TryPopEmptyReturnsNull) {
  BoundedQueue<int> q(2);
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(BoundedQueue, CloseWakesBlockedPop) {
  BoundedQueue<int> q(2);
  std::thread waiter([&q] {
    const auto v = q.pop();
    EXPECT_FALSE(v.has_value());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  waiter.join();
}

TEST(BoundedQueue, CloseDrainsRemainingItems) {
  BoundedQueue<int> q(4);
  q.push(1);
  q.push(2);
  q.close();
  EXPECT_FALSE(q.push(3));
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(BoundedQueue, BlockingPushWaitsForSpace) {
  BoundedQueue<int> q(1);
  q.push(1);
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    q.push(2);  // blocks until the consumer pops
    pushed = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());
  EXPECT_EQ(q.pop().value(), 1);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(q.pop().value(), 2);
}

TEST(BoundedQueue, MultiProducerMultiConsumer) {
  constexpr int kPerProducer = 5000;
  constexpr int kProducers = 3;
  BoundedQueue<int> q(64);
  std::atomic<long> sum{0};
  std::atomic<int> received{0};

  std::vector<std::thread> threads;
  threads.reserve(kProducers + 2);
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        q.push(p * kPerProducer + i);
      }
    });
  }
  for (int c = 0; c < 2; ++c) {
    threads.emplace_back([&] {
      while (received.load() < kProducers * kPerProducer) {
        if (auto v = q.try_pop()) {
          sum += *v;
          ++received;
        }
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  const long n = kProducers * kPerProducer;
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

}  // namespace
}  // namespace xdaq
