// cluster_test.cpp - unit tests for the cluster fabric primitives:
// member map (SWIM precedence, refutation, codec, version lattice),
// consistent-hash ring, route table, resolver facade and PeerSpec
// parsing. Everything here is pure xdaq_cluster - no executive.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>

#include "cluster/hash_ring.hpp"
#include "cluster/member_map.hpp"
#include "cluster/peer_spec.hpp"
#include "cluster/relay.hpp"
#include "cluster/resolver.hpp"
#include "cluster/route_table.hpp"

namespace xdaq::cluster {
namespace {

// ------------------------------------------------------------- member map

TEST(MemberMap, StartsWithSelfAlive) {
  MemberMap map(3);
  EXPECT_EQ(map.size(), 1u);
  const auto self = map.get(3);
  ASSERT_TRUE(self.has_value());
  EXPECT_EQ(self->status, MemberStatus::Alive);
  EXPECT_EQ(self->incarnation, 0u);
  EXPECT_EQ(map.version(), 1u);
}

TEST(MemberMap, HigherIncarnationWins) {
  MemberMap map(1);
  EXPECT_TRUE(map.observe({2, 5, MemberStatus::Suspect}));
  // A stale lower-incarnation Alive must not override.
  EXPECT_FALSE(map.observe({2, 4, MemberStatus::Alive}));
  EXPECT_EQ(map.get(2)->status, MemberStatus::Suspect);
  // A higher-incarnation Alive refutes the suspicion.
  EXPECT_TRUE(map.observe({2, 6, MemberStatus::Alive}));
  EXPECT_EQ(map.get(2)->status, MemberStatus::Alive);
}

TEST(MemberMap, EqualIncarnationStrongerStatusWins) {
  MemberMap map(1);
  EXPECT_TRUE(map.observe({2, 3, MemberStatus::Alive}));
  EXPECT_TRUE(map.observe({2, 3, MemberStatus::Suspect}));
  EXPECT_TRUE(map.observe({2, 3, MemberStatus::Dead}));
  // Weaker claims at the same incarnation are ignored.
  EXPECT_FALSE(map.observe({2, 3, MemberStatus::Suspect}));
  EXPECT_FALSE(map.observe({2, 3, MemberStatus::Alive}));
  EXPECT_EQ(map.get(2)->status, MemberStatus::Dead);
}

TEST(MemberMap, RefutesRumoursAboutSelf) {
  MemberMap map(7);
  // Hearing "you are suspect at your own incarnation" must bump the
  // incarnation past the rumour and stay Alive.
  EXPECT_TRUE(map.observe({7, 0, MemberStatus::Suspect}));
  const auto self = map.get(7);
  EXPECT_EQ(self->status, MemberStatus::Alive);
  EXPECT_GT(self->incarnation, 0u);
  EXPECT_GE(map.self_incarnation(), 1u);
}

TEST(MemberMap, NoteAliveClearsSuspectButNotDead) {
  MemberMap map(1);
  map.observe({2, 1, MemberStatus::Suspect});
  EXPECT_TRUE(map.note_alive(2));
  EXPECT_EQ(map.get(2)->status, MemberStatus::Alive);
  map.observe({3, 1, MemberStatus::Dead});
  EXPECT_FALSE(map.note_alive(3));
  EXPECT_EQ(map.get(3)->status, MemberStatus::Dead);
  // Only refutation (higher incarnation) resurrects.
  EXPECT_TRUE(map.observe({3, 2, MemberStatus::Alive}));
  EXPECT_EQ(map.get(3)->status, MemberStatus::Alive);
}

TEST(MemberMap, EncodeDecodeRoundTrip) {
  MemberMap map(1);
  map.observe({2, 4, MemberStatus::Suspect});
  map.observe({3, 9, MemberStatus::Dead});
  const auto bytes = map.encode();
  auto decoded = MemberMap::decode(bytes);
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value().version, map.version());
  ASSERT_EQ(decoded.value().members.size(), 3u);
  std::map<i2o::NodeId, Member> by_node;
  for (const Member& m : decoded.value().members) {
    by_node[m.node] = m;
  }
  EXPECT_EQ(by_node[2].incarnation, 4u);
  EXPECT_EQ(by_node[2].status, MemberStatus::Suspect);
  EXPECT_EQ(by_node[3].status, MemberStatus::Dead);
}

TEST(MemberMap, DecodeRejectsTruncated) {
  MemberMap map(1);
  map.observe({2, 1, MemberStatus::Alive});
  auto bytes = map.encode();
  bytes.pop_back();
  EXPECT_FALSE(MemberMap::decode(bytes).is_ok());
  EXPECT_FALSE(MemberMap::decode({}).is_ok());
}

TEST(MemberMap, VersionMonotonicAcrossMergeAndRejoin) {
  MemberMap a(1);
  MemberMap b(2);
  // Drive b's version well past a's.
  for (std::uint32_t i = 0; i < 10; ++i) {
    b.observe({static_cast<i2o::NodeId>(10 + i), 1, MemberStatus::Alive});
  }
  const std::uint64_t vb = b.version();
  ASSERT_GT(vb, 1u);

  auto decoded = MemberMap::decode(b.encode());
  ASSERT_TRUE(decoded.is_ok());
  const std::uint64_t before = a.version();
  EXPECT_GT(a.merge(decoded.value()), 0u);
  // Lattice: merged version exceeds both inputs when anything changed.
  EXPECT_GT(a.version(), before);
  EXPECT_GT(a.version(), vb);

  // Rejoin cycle: node 2 dies, refutes, comes back - version never dips.
  std::uint64_t last = a.version();
  a.confirm_dead(2);
  EXPECT_GE(a.version(), last);
  last = a.version();
  a.observe({2, 1, MemberStatus::Alive});  // rejoin with bumped incarnation
  EXPECT_GE(a.version(), last);
  EXPECT_EQ(a.get(2)->status, MemberStatus::Alive);

  // Re-merging the same remote map is idempotent for the version lattice.
  last = a.version();
  a.merge(decoded.value());
  EXPECT_EQ(a.version(), last);
}

// A node that lived through ~4 billion refutations wraps its u32
// incarnation. Serial-number comparison keeps precedence working across
// the wrap: an incarnation just past 0 beats one just below UINT32_MAX,
// while far-apart values still compare in the intuitive direction.
TEST(MemberMap, IncarnationWraparound) {
  MemberMap map(1);
  constexpr std::uint32_t kNearMax = 0xFFFFFFFFu - 2;
  map.observe({2, kNearMax, MemberStatus::Alive});

  // Pre-wrap ordering is unchanged.
  EXPECT_FALSE(map.observe({2, kNearMax - 1, MemberStatus::Dead}));
  EXPECT_TRUE(map.observe({2, kNearMax + 1, MemberStatus::Suspect}));

  // The wrap itself: incarnation 1 (post-wrap) supersedes 0xFFFFFFFF.
  EXPECT_TRUE(map.observe({2, 0xFFFFFFFFu, MemberStatus::Dead}));
  EXPECT_TRUE(map.observe({2, 1, MemberStatus::Alive}));
  EXPECT_EQ(map.get(2)->status, MemberStatus::Alive);
  EXPECT_EQ(map.get(2)->incarnation, 1u);
  // And a stale claim from before the wrap is rejected.
  EXPECT_FALSE(map.observe({2, 0xFFFFFFFFu, MemberStatus::Dead}));

  // Static sanity on the comparator itself.
  EXPECT_TRUE(MemberMap::incarnation_newer(1, 0xFFFFFFFFu));
  EXPECT_FALSE(MemberMap::incarnation_newer(0xFFFFFFFFu, 1));
  EXPECT_TRUE(MemberMap::incarnation_newer(5, 4));
  EXPECT_FALSE(MemberMap::incarnation_newer(4, 4));
}

// Self-refutation across the wrap. Serial-number comparison only orders
// values within half the u32 range of each other, so the test walks the
// node's incarnation up in < 2^31 steps (as real refutation history
// would) until it sits at the boundary, then wraps it.
TEST(MemberMap, RefutationCrossesIncarnationWrap) {
  MemberMap map(7);
  map.observe({7, 100, MemberStatus::Dead});
  EXPECT_EQ(map.self_incarnation(), 101u);
  map.observe({7, 0x7FFFFF00u, MemberStatus::Dead});
  EXPECT_EQ(map.self_incarnation(), 0x7FFFFF01u);
  map.observe({7, 0xFFFFFF00u, MemberStatus::Dead});
  EXPECT_EQ(map.self_incarnation(), 0xFFFFFF01u);

  // A rumour at exactly UINT32_MAX: the refutation wraps to 0, and that
  // post-wrap incarnation still wins everywhere (the old plain `>=`
  // comparison would have pinned refutation below the wrap forever).
  map.observe({7, 0xFFFFFFFFu, MemberStatus::Suspect});
  EXPECT_EQ(map.self_incarnation(), 0u);
  EXPECT_EQ(map.get(7)->status, MemberStatus::Alive);

  MemberMap peer(1);
  peer.observe({7, 0xFFFFFFFFu, MemberStatus::Suspect});
  auto refutation = MemberMap::decode(map.encode());
  ASSERT_TRUE(refutation.is_ok());
  EXPECT_GT(peer.merge(refutation.value()), 0u);
  EXPECT_EQ(peer.get(7)->status, MemberStatus::Alive);
  EXPECT_EQ(peer.get(7)->incarnation, 0u);
}

// Rejoin race: a node restarts carrying a STALE map (low version, old
// self-incarnation) while the cluster still holds an in-flight
// refutation of its previous life. The merged outcome must keep the
// refutation's precedence and never drop the version floor.
TEST(MemberMap, StaleRejoinWhileRefutationInFlight) {
  // The cluster's view: node 2's old incarnation 4 was refuted (it
  // bumped to 5, Alive) and the map version ran ahead.
  MemberMap cluster_view(1);
  cluster_view.observe({2, 4, MemberStatus::Suspect});
  cluster_view.observe({2, 5, MemberStatus::Alive});  // in-flight refutation
  for (std::uint32_t i = 0; i < 6; ++i) {
    cluster_view.observe(
        {static_cast<i2o::NodeId>(20 + i), 1, MemberStatus::Alive});
  }
  const std::uint64_t cluster_version = cluster_view.version();

  // Node 2 rejoins from a stale checkpoint: it thinks its incarnation is
  // 3 and its map version is ancient.
  MemberMap rejoined(2);
  // (fresh map: version 1, self incarnation 0 - strictly behind)
  auto remote = MemberMap::decode(cluster_view.encode());
  ASSERT_TRUE(remote.is_ok());
  EXPECT_GT(rejoined.merge(remote.value()), 0u);

  // Merging the refutation of its own old life triggers a self-refute
  // that overtakes it: the rejoined node comes back Alive at > 5.
  EXPECT_EQ(rejoined.get(2)->status, MemberStatus::Alive);
  EXPECT_TRUE(MemberMap::incarnation_newer(rejoined.self_incarnation(), 4));
  // And its version is floored at the cluster's, never its stale one.
  EXPECT_GE(rejoined.version(), cluster_version);

  // The reverse direction: the cluster merges the rejoined node's map
  // (which still carries nothing newer) - no regression, version holds.
  auto back = MemberMap::decode(rejoined.encode());
  ASSERT_TRUE(back.is_ok());
  cluster_view.merge(back.value());
  EXPECT_GE(cluster_view.version(), cluster_version);
  EXPECT_EQ(cluster_view.get(2)->status, MemberStatus::Alive);

  // Control-plane floor (raise_version): a committed floor from the
  // replicated config service re-anchors a fresh map immediately.
  MemberMap fresh(2);
  EXPECT_TRUE(fresh.raise_version(cluster_version));
  EXPECT_EQ(fresh.version(), cluster_version);
  EXPECT_FALSE(fresh.raise_version(1));
  EXPECT_EQ(fresh.version(), cluster_version);
}

TEST(MemberMap, PeersWithStatusExcludesSelf) {
  MemberMap map(1);
  map.observe({2, 1, MemberStatus::Alive});
  map.observe({3, 1, MemberStatus::Suspect});
  const auto alive = map.peers_with_status(MemberStatus::Alive);
  ASSERT_EQ(alive.size(), 1u);
  EXPECT_EQ(alive[0], 2u);
}

// -------------------------------------------------------------- hash ring

TEST(HashRing, EmptyRingReturnsNullNode) {
  HashRing ring;
  EXPECT_EQ(ring.lookup("anything"), i2o::kNullNode);
  EXPECT_EQ(ring.node_count(), 0u);
}

TEST(HashRing, LookupIsDeterministicAndCovered) {
  HashRing ring;
  for (i2o::NodeId n = 1; n <= 8; ++n) {
    ring.add_node(n);
  }
  std::set<i2o::NodeId> owners;
  for (int i = 0; i < 256; ++i) {
    const std::string key = "key" + std::to_string(i);
    const i2o::NodeId owner = ring.lookup(key);
    EXPECT_EQ(owner, ring.lookup(key));  // deterministic
    ASSERT_GE(owner, 1u);
    ASSERT_LE(owner, 8u);
    owners.insert(owner);
  }
  // With 64 vnodes per node, 256 keys should reach most of 8 nodes.
  EXPECT_GE(owners.size(), 6u);
}

TEST(HashRing, RemovalOnlyRemapsOwnedKeys) {
  HashRing ring;
  for (i2o::NodeId n = 1; n <= 8; ++n) {
    ring.add_node(n);
  }
  std::map<std::string, i2o::NodeId> before;
  for (int i = 0; i < 256; ++i) {
    const std::string key = "key" + std::to_string(i);
    before[key] = ring.lookup(key);
  }
  ring.remove_node(3);
  EXPECT_FALSE(ring.contains(3));
  for (const auto& [key, owner] : before) {
    if (owner != 3) {
      // Consistent hashing: keys not owned by the removed node stay put.
      EXPECT_EQ(ring.lookup(key), owner) << key;
    } else {
      EXPECT_NE(ring.lookup(key), 3u) << key;
    }
  }
}

// ------------------------------------------------------------ route table

TEST(RouteTable, DirectRelayAndErase) {
  RouteTable routes;
  EXPECT_EQ(routes.next_hop(5).kind, NextHop::Kind::None);
  routes.set_direct(5, 42);
  EXPECT_EQ(routes.next_hop(5).kind, NextHop::Kind::Direct);
  EXPECT_EQ(routes.next_hop(5).via_pt, 42u);
  routes.set_relay(6, 5);
  EXPECT_EQ(routes.next_hop(6).kind, NextHop::Kind::Relay);
  EXPECT_EQ(routes.next_hop(6).relay_node, 5u);
  EXPECT_EQ(routes.size(), 2u);
  const auto direct = routes.direct_nodes();
  ASSERT_EQ(direct.size(), 1u);
  EXPECT_EQ(direct[0], 5u);
  routes.erase(5);
  EXPECT_EQ(routes.next_hop(5).kind, NextHop::Kind::None);
  routes.clear();
  EXPECT_EQ(routes.size(), 0u);
}

// --------------------------------------------------------------- resolver

TEST(Resolver, DirectRelayAndUnroutable) {
  std::map<std::string, int> interned;  // "(node,tid,via)" -> count
  i2o::Tid next = 100;
  Resolver resolver(
      1, [&](i2o::NodeId node, i2o::Tid remote, i2o::Tid via,
             const std::string& name) -> Result<i2o::Tid> {
        interned[std::to_string(node) + "," + std::to_string(remote) + "," +
                 std::to_string(via) + "," + name]++;
        return next++;
      });

  // No route: Unroutable, and the intern callback never fires.
  auto none = resolver.resolve(9, 7);
  ASSERT_FALSE(none.is_ok());
  EXPECT_EQ(none.status().code(), Errc::Unroutable);
  EXPECT_TRUE(interned.empty());

  // Direct route: interned through the route's via_pt.
  resolver.routes().set_direct(2, 40);
  ASSERT_TRUE(resolver.resolve(2, 7, "echo").is_ok());
  EXPECT_EQ(interned.at("2,7,40,echo"), 1);

  // Relay route whose hop is reachable: interned with the kNullTid
  // sentinel so the send path re-consults the route table per frame.
  resolver.routes().set_relay(3, 2);
  ASSERT_TRUE(resolver.resolve(3, 8).is_ok());
  EXPECT_EQ(interned.at("3,8,0,"), 1);

  // Relay route whose hop has no direct transport: Unavailable.
  resolver.routes().set_relay(4, 9);
  auto dark = resolver.resolve(4, 8);
  ASSERT_FALSE(dark.is_ok());
  EXPECT_EQ(dark.status().code(), Errc::Unavailable);

  // Self/invalid targets are rejected.
  EXPECT_FALSE(resolver.resolve(1, 7).is_ok());
  EXPECT_FALSE(resolver.resolve(i2o::kNullNode, 7).is_ok());

  // resolve_via pins the transport; kNullTid is reserved for relays.
  ASSERT_TRUE(resolver.resolve_via(2, 7, 41).is_ok());
  EXPECT_EQ(interned.at("2,7,41,"), 1);
  EXPECT_FALSE(resolver.resolve_via(2, 7, i2o::kNullTid).is_ok());
}

TEST(Resolver, TtlConfigurable) {
  Resolver resolver(1, [](i2o::NodeId, i2o::Tid, i2o::Tid,
                          const std::string&) -> Result<i2o::Tid> {
    return i2o::Tid{2};
  });
  EXPECT_EQ(resolver.initial_ttl(), kDefaultRelayTtl);
  resolver.set_initial_ttl(3);
  EXPECT_EQ(resolver.initial_ttl(), 3u);
}

// --------------------------------------------------------------- peer spec

TEST(PeerSpec, ParsesEveryKind) {
  auto gm = PeerSpec::parse("gm");
  ASSERT_TRUE(gm.is_ok());
  EXPECT_EQ(gm.value().kind, PeerSpec::Kind::Gm);
  EXPECT_EQ(gm.value().mode, core::TransportDevice::Mode::Polling);

  auto gm_task = PeerSpec::parse("gm:task");
  ASSERT_TRUE(gm_task.is_ok());
  EXPECT_EQ(gm_task.value().mode, core::TransportDevice::Mode::Task);

  auto local = PeerSpec::parse("local");
  ASSERT_TRUE(local.is_ok());
  EXPECT_EQ(local.value().kind, PeerSpec::Kind::LocalBus);

  auto fifo = PeerSpec::parse("fifo:/tmp/link0");
  ASSERT_TRUE(fifo.is_ok());
  EXPECT_EQ(fifo.value().kind, PeerSpec::Kind::Fifo);
  EXPECT_EQ(fifo.value().path, "/tmp/link0");

  auto tcp = PeerSpec::parse("tcp:hostA:9000");
  ASSERT_TRUE(tcp.is_ok());
  EXPECT_EQ(tcp.value().kind, PeerSpec::Kind::Tcp);
  EXPECT_EQ(tcp.value().host, "hostA");
  EXPECT_EQ(tcp.value().port, 9000);
}

TEST(PeerSpec, RejectsMalformed) {
  EXPECT_FALSE(PeerSpec::parse("").is_ok());
  EXPECT_FALSE(PeerSpec::parse("myrinet").is_ok());
  EXPECT_FALSE(PeerSpec::parse("fifo:").is_ok());
  EXPECT_FALSE(PeerSpec::parse("tcp:hostonly").is_ok());
  EXPECT_FALSE(PeerSpec::parse("tcp:host:0").is_ok());
  EXPECT_FALSE(PeerSpec::parse("tcp:host:99999").is_ok());
}

TEST(PeerSpec, DescribeRoundTrips) {
  for (const char* text :
       {"gm", "gm:task", "local", "local:task", "fifo:/tmp/x",
        "tcp:node7:1234"}) {
    auto spec = PeerSpec::parse(text);
    ASSERT_TRUE(spec.is_ok()) << text;
    EXPECT_EQ(spec.value().describe(), text);
    auto again = PeerSpec::parse(spec.value().describe());
    ASSERT_TRUE(again.is_ok()) << text;
    EXPECT_EQ(again.value().kind, spec.value().kind);
  }
}

// ------------------------------------------------------------ relay codec

TEST(Relay, HeaderRoundTripAndGuards) {
  std::vector<std::byte> payload(kRelayHeaderBytes + 8);
  RelayHeader rh;
  rh.src = 3;
  rh.dst = 9;
  rh.ttl = 5;
  rh.inner_len = 8;
  encode_relay_header(rh, payload);
  auto decoded = decode_relay_header(payload);
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value().src, 3u);
  EXPECT_EQ(decoded.value().dst, 9u);
  EXPECT_EQ(decoded.value().ttl, 5u);
  EXPECT_EQ(decoded.value().inner_len, 8u);
  EXPECT_EQ(relay_inner(decoded.value(), payload).size(), 8u);

  patch_relay_ttl(payload, 4);
  EXPECT_EQ(decode_relay_header(payload).value().ttl, 4u);

  // Truncated header / overlong inner_len / null destination all fail.
  EXPECT_FALSE(
      decode_relay_header(std::span(payload).first(kRelayHeaderBytes - 1))
          .is_ok());
  rh.inner_len = 64;
  encode_relay_header(rh, payload);
  EXPECT_FALSE(decode_relay_header(payload).is_ok());
  rh.inner_len = 8;
  rh.dst = i2o::kNullNode;
  encode_relay_header(rh, payload);
  EXPECT_FALSE(decode_relay_header(payload).is_ok());
}

}  // namespace
}  // namespace xdaq::cluster
