#include "pt/tcp_pt.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "core/requester.hpp"
#include "test_devices.hpp"
#include "util/random.hpp"

namespace xdaq::pt {
namespace {

using core::Requester;
using xdaq::testing::EchoDevice;
using xdaq::testing::kXfnEcho;

/// Two executives joined by TCP on localhost with ephemeral ports.
struct TcpPair {
  core::Executive a{core::ExecutiveConfig{.node_id = 1, .name = "a"}};
  core::Executive b{core::ExecutiveConfig{.node_id = 2, .name = "b"}};
  TcpPeerTransport* pt_a = nullptr;
  TcpPeerTransport* pt_b = nullptr;

  TcpPair() {
    auto ta = std::make_unique<TcpPeerTransport>();
    auto tb = std::make_unique<TcpPeerTransport>();
    pt_a = ta.get();
    pt_b = tb.get();
    EXPECT_TRUE(a.install(std::move(ta), "pt_tcp").is_ok());
    EXPECT_TRUE(b.install(std::move(tb), "pt_tcp").is_ok());
    EXPECT_TRUE(a.set_route(2, pt_a->tid()).is_ok());
    EXPECT_TRUE(b.set_route(1, pt_b->tid()).is_ok());
    // Enable both transports (binds listeners), then exchange endpoints.
    EXPECT_TRUE(a.enable(pt_a->tid()).is_ok());
    EXPECT_TRUE(b.enable(pt_b->tid()).is_ok());
    pt_a->add_peer(2, "127.0.0.1", pt_b->listen_port());
    pt_b->add_peer(1, "127.0.0.1", pt_a->listen_port());
  }
};

TEST(TcpPt, EnableBindsListener) {
  TcpPair pair;
  EXPECT_GT(pair.pt_a->listen_port(), 0);
  EXPECT_GT(pair.pt_b->listen_port(), 0);
}

TEST(TcpPt, EchoOverRealSockets) {
  TcpPair pair;
  ASSERT_TRUE(pair.b.install(std::make_unique<EchoDevice>(), "echo").is_ok());
  auto req = std::make_unique<Requester>();
  Requester* req_raw = req.get();
  ASSERT_TRUE(pair.a.install(std::move(req), "req").is_ok());
  const auto proxy =
      pair.a.register_remote(2, pair.b.tid_of("echo").value()).value();
  ASSERT_TRUE(pair.a.enable_all().is_ok());
  ASSERT_TRUE(pair.b.enable_all().is_ok());
  pair.a.start();
  pair.b.start();

  const auto raw = make_payload(1000, 5);
  std::vector<std::byte> payload(1000);
  std::memcpy(payload.data(), raw.data(), 1000);
  auto reply = req_raw->call_private(proxy, i2o::OrgId::kTest, kXfnEcho,
                                     payload, std::chrono::seconds(5));
  pair.a.stop();
  pair.b.stop();
  ASSERT_TRUE(reply.is_ok()) << reply.status().to_string();
  EXPECT_FALSE(reply.value().failed());
  EXPECT_EQ(
      std::memcmp(reply.value().payload.data(), payload.data(), 1000), 0);
}

TEST(TcpPt, RepeatedCallsReuseOneConnection) {
  TcpPair pair;
  ASSERT_TRUE(pair.b.install(std::make_unique<EchoDevice>(), "echo").is_ok());
  auto req = std::make_unique<Requester>();
  Requester* req_raw = req.get();
  ASSERT_TRUE(pair.a.install(std::move(req), "req").is_ok());
  const auto proxy =
      pair.a.register_remote(2, pair.b.tid_of("echo").value()).value();
  ASSERT_TRUE(pair.a.enable_all().is_ok());
  ASSERT_TRUE(pair.b.enable_all().is_ok());
  pair.a.start();
  pair.b.start();
  for (int i = 0; i < 10; ++i) {
    auto reply = req_raw->call_private(proxy, i2o::OrgId::kTest, kXfnEcho,
                                       {}, std::chrono::seconds(5));
    ASSERT_TRUE(reply.is_ok()) << i << ": " << reply.status().to_string();
  }
  pair.a.stop();
  pair.b.stop();
  EXPECT_EQ(pair.pt_a->connection_count(), 1u);
}

TEST(TcpPt, SendWithoutPeerConfiguredIsUnroutable) {
  core::Executive a(core::ExecutiveConfig{.node_id = 1, .name = "a"});
  auto ta = std::make_unique<TcpPeerTransport>();
  TcpPeerTransport* pt = ta.get();
  ASSERT_TRUE(a.install(std::move(ta), "pt_tcp").is_ok());
  ASSERT_TRUE(a.enable(pt->tid()).is_ok());
  std::vector<std::byte> frame(i2o::kStdHeaderBytes);
  EXPECT_EQ(pt->transport_send(7, frame).code(), Errc::Unroutable);
}

TEST(TcpPt, SendBeforeEnableFails) {
  core::Executive a(core::ExecutiveConfig{.node_id = 1, .name = "a"});
  auto ta = std::make_unique<TcpPeerTransport>();
  TcpPeerTransport* pt = ta.get();
  ASSERT_TRUE(a.install(std::move(ta), "pt_tcp").is_ok());
  std::vector<std::byte> frame(i2o::kStdHeaderBytes);
  EXPECT_EQ(pt->transport_send(2, frame).code(), Errc::FailedPrecondition);
}

TEST(TcpPt, ConfigureFromParams) {
  core::Executive a(core::ExecutiveConfig{.node_id = 1, .name = "a"});
  auto ta = std::make_unique<TcpPeerTransport>();
  TcpPeerTransport* pt = ta.get();
  ASSERT_TRUE(a.install(std::move(ta), "pt_tcp",
                        {{"listen_port", "0"}, {"peer.2", "127.0.0.1:4099"}})
                  .is_ok());
  EXPECT_EQ(pt->state(), core::DeviceState::Configured);
}

TEST(TcpPt, ConfigureRejectsBadPeerEntry) {
  core::Executive a(core::ExecutiveConfig{.node_id = 1, .name = "a"});
  auto ta = std::make_unique<TcpPeerTransport>();
  ASSERT_TRUE(a.install(std::move(ta), "pt_tcp").is_ok());
  const auto tid = a.tid_of("pt_tcp").value();
  EXPECT_EQ(a.configure(tid, {{"peer.2", "no-colon-here"}}).code(),
            Errc::InvalidArgument);
}

TEST(TcpPt, LargeFrameAcrossTcp) {
  TcpPair pair;
  ASSERT_TRUE(pair.b.install(std::make_unique<EchoDevice>(), "echo").is_ok());
  auto req = std::make_unique<Requester>();
  Requester* req_raw = req.get();
  ASSERT_TRUE(pair.a.install(std::move(req), "req").is_ok());
  const auto proxy =
      pair.a.register_remote(2, pair.b.tid_of("echo").value()).value();
  ASSERT_TRUE(pair.a.enable_all().is_ok());
  ASSERT_TRUE(pair.b.enable_all().is_ok());
  pair.a.start();
  pair.b.start();
  const auto raw = make_payload(150000, 9);
  std::vector<std::byte> payload(raw.size());
  std::memcpy(payload.data(), raw.data(), raw.size());
  auto reply = req_raw->call_private(proxy, i2o::OrgId::kTest, kXfnEcho,
                                     payload, std::chrono::seconds(10));
  pair.a.stop();
  pair.b.stop();
  ASSERT_TRUE(reply.is_ok()) << reply.status().to_string();
  EXPECT_EQ(std::memcmp(reply.value().payload.data(), payload.data(),
                        payload.size()),
            0);
}

}  // namespace
}  // namespace xdaq::pt
