#include "pt/tcp_pt.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "core/requester.hpp"
#include "i2o/wire.hpp"
#include "test_devices.hpp"
#include "util/random.hpp"

namespace xdaq::pt {
namespace {

using core::Requester;
using xdaq::testing::EchoDevice;
using xdaq::testing::kXfnEcho;

/// Two executives joined by TCP on localhost with ephemeral ports.
struct TcpPair {
  core::Executive a{core::ExecutiveConfig{.node_id = 1, .name = "a"}};
  core::Executive b{core::ExecutiveConfig{.node_id = 2, .name = "b"}};
  TcpPeerTransport* pt_a = nullptr;
  TcpPeerTransport* pt_b = nullptr;

  TcpPair() {
    auto ta = std::make_unique<TcpPeerTransport>();
    auto tb = std::make_unique<TcpPeerTransport>();
    pt_a = ta.get();
    pt_b = tb.get();
    EXPECT_TRUE(a.install(std::move(ta), "pt_tcp").is_ok());
    EXPECT_TRUE(b.install(std::move(tb), "pt_tcp").is_ok());
    EXPECT_TRUE(a.set_route(2, pt_a->tid()).is_ok());
    EXPECT_TRUE(b.set_route(1, pt_b->tid()).is_ok());
    // Enable both transports (binds listeners), then exchange endpoints.
    EXPECT_TRUE(a.enable(pt_a->tid()).is_ok());
    EXPECT_TRUE(b.enable(pt_b->tid()).is_ok());
    pt_a->add_peer(2, "127.0.0.1", pt_b->listen_port());
    pt_b->add_peer(1, "127.0.0.1", pt_a->listen_port());
  }
};

TEST(TcpPt, EnableBindsListener) {
  TcpPair pair;
  EXPECT_GT(pair.pt_a->listen_port(), 0);
  EXPECT_GT(pair.pt_b->listen_port(), 0);
}

TEST(TcpPt, EchoOverRealSockets) {
  TcpPair pair;
  ASSERT_TRUE(pair.b.install(std::make_unique<EchoDevice>(), "echo").is_ok());
  auto req = std::make_unique<Requester>();
  Requester* req_raw = req.get();
  ASSERT_TRUE(pair.a.install(std::move(req), "req").is_ok());
  const auto proxy =
      pair.a.register_remote(2, pair.b.tid_of("echo").value()).value();
  ASSERT_TRUE(pair.a.enable_all().is_ok());
  ASSERT_TRUE(pair.b.enable_all().is_ok());
  pair.a.start();
  pair.b.start();

  const auto raw = make_payload(1000, 5);
  std::vector<std::byte> payload(1000);
  std::memcpy(payload.data(), raw.data(), 1000);
  auto reply = req_raw->call_private(proxy, i2o::OrgId::kTest, kXfnEcho,
                                     payload, xdaq::core::CallOptions{.timeout = std::chrono::seconds(5)});
  pair.a.stop();
  pair.b.stop();
  ASSERT_TRUE(reply.is_ok()) << reply.status().to_string();
  EXPECT_FALSE(reply.value().failed());
  EXPECT_EQ(
      std::memcmp(reply.value().payload.data(), payload.data(), 1000), 0);
}

// A handler reply issued mid-dispatch-batch is corked in the transport's
// pending queue and drained by the executive's end-of-batch
// transport_flush(). With a batched dispatch config every echo reply takes
// that corked path; calls must still complete promptly - a lost flush
// would stall each reply until the maintenance backstop and blow the
// per-call timeout.
TEST(TcpPt, CorkedRepliesFlushAtBatchEnd) {
  core::ExecutiveConfig cfg_a{.node_id = 1, .name = "a"};
  core::ExecutiveConfig cfg_b{.node_id = 2, .name = "b"};
  cfg_a.dispatch_batch = 8;
  cfg_b.dispatch_batch = 8;
  core::Executive a(cfg_a);
  core::Executive b(cfg_b);
  auto ta = std::make_unique<TcpPeerTransport>();
  auto tb = std::make_unique<TcpPeerTransport>();
  TcpPeerTransport* pt_a = ta.get();
  TcpPeerTransport* pt_b = tb.get();
  ASSERT_TRUE(a.install(std::move(ta), "pt_tcp").is_ok());
  ASSERT_TRUE(b.install(std::move(tb), "pt_tcp").is_ok());
  ASSERT_TRUE(a.set_route(2, pt_a->tid()).is_ok());
  ASSERT_TRUE(b.set_route(1, pt_b->tid()).is_ok());
  ASSERT_TRUE(a.enable(pt_a->tid()).is_ok());
  ASSERT_TRUE(b.enable(pt_b->tid()).is_ok());
  pt_a->add_peer(2, "127.0.0.1", pt_b->listen_port());
  pt_b->add_peer(1, "127.0.0.1", pt_a->listen_port());

  ASSERT_TRUE(b.install(std::make_unique<EchoDevice>(), "echo").is_ok());
  auto req = std::make_unique<Requester>();
  Requester* req_raw = req.get();
  ASSERT_TRUE(a.install(std::move(req), "req").is_ok());
  const auto proxy = a.register_remote(2, b.tid_of("echo").value()).value();
  ASSERT_TRUE(a.enable_all().is_ok());
  ASSERT_TRUE(b.enable_all().is_ok());
  a.start();
  b.start();

  const auto raw = make_payload(256, 7);
  std::vector<std::byte> payload(256);
  std::memcpy(payload.data(), raw.data(), 256);
  for (int i = 0; i < 32; ++i) {
    auto reply = req_raw->call_private(
        proxy, i2o::OrgId::kTest, kXfnEcho, payload,
        xdaq::core::CallOptions{.timeout = std::chrono::seconds(2)});
    ASSERT_TRUE(reply.is_ok()) << "call " << i << ": "
                               << reply.status().to_string();
    EXPECT_EQ(std::memcmp(reply.value().payload.data(), payload.data(), 256),
              0);
  }
  a.stop();
  b.stop();
}

TEST(TcpPt, RepeatedCallsReuseOneConnection) {
  TcpPair pair;
  ASSERT_TRUE(pair.b.install(std::make_unique<EchoDevice>(), "echo").is_ok());
  auto req = std::make_unique<Requester>();
  Requester* req_raw = req.get();
  ASSERT_TRUE(pair.a.install(std::move(req), "req").is_ok());
  const auto proxy =
      pair.a.register_remote(2, pair.b.tid_of("echo").value()).value();
  ASSERT_TRUE(pair.a.enable_all().is_ok());
  ASSERT_TRUE(pair.b.enable_all().is_ok());
  pair.a.start();
  pair.b.start();
  for (int i = 0; i < 10; ++i) {
    auto reply = req_raw->call_private(proxy, i2o::OrgId::kTest, kXfnEcho,
                                       {}, xdaq::core::CallOptions{.timeout = std::chrono::seconds(5)});
    ASSERT_TRUE(reply.is_ok()) << i << ": " << reply.status().to_string();
  }
  pair.a.stop();
  pair.b.stop();
  EXPECT_EQ(pair.pt_a->connection_count(), 1u);
}

TEST(TcpPt, SendWithoutPeerConfiguredIsUnroutable) {
  core::Executive a(core::ExecutiveConfig{.node_id = 1, .name = "a"});
  auto ta = std::make_unique<TcpPeerTransport>();
  TcpPeerTransport* pt = ta.get();
  ASSERT_TRUE(a.install(std::move(ta), "pt_tcp").is_ok());
  ASSERT_TRUE(a.enable(pt->tid()).is_ok());
  std::vector<std::byte> frame(i2o::kStdHeaderBytes);
  EXPECT_EQ(pt->transport_send(7, frame).code(), Errc::Unroutable);
}

TEST(TcpPt, SendBeforeEnableFails) {
  core::Executive a(core::ExecutiveConfig{.node_id = 1, .name = "a"});
  auto ta = std::make_unique<TcpPeerTransport>();
  TcpPeerTransport* pt = ta.get();
  ASSERT_TRUE(a.install(std::move(ta), "pt_tcp").is_ok());
  std::vector<std::byte> frame(i2o::kStdHeaderBytes);
  EXPECT_EQ(pt->transport_send(2, frame).code(), Errc::FailedPrecondition);
}

TEST(TcpPt, ConfigureFromParams) {
  core::Executive a(core::ExecutiveConfig{.node_id = 1, .name = "a"});
  auto ta = std::make_unique<TcpPeerTransport>();
  TcpPeerTransport* pt = ta.get();
  ASSERT_TRUE(a.install(std::move(ta), "pt_tcp",
                        {{"listen_port", "0"}, {"peer.2", "127.0.0.1:4099"}})
                  .is_ok());
  EXPECT_EQ(pt->state(), core::DeviceState::Configured);
}

TEST(TcpPt, ConfigureRejectsBadPeerEntry) {
  core::Executive a(core::ExecutiveConfig{.node_id = 1, .name = "a"});
  auto ta = std::make_unique<TcpPeerTransport>();
  ASSERT_TRUE(a.install(std::move(ta), "pt_tcp").is_ok());
  const auto tid = a.tid_of("pt_tcp").value();
  EXPECT_EQ(a.configure(tid, {{"peer.2", "no-colon-here"}}).code(),
            Errc::InvalidArgument);
}

TEST(TcpPt, LargeFrameAcrossTcp) {
  TcpPair pair;
  ASSERT_TRUE(pair.b.install(std::make_unique<EchoDevice>(), "echo").is_ok());
  auto req = std::make_unique<Requester>();
  Requester* req_raw = req.get();
  ASSERT_TRUE(pair.a.install(std::move(req), "req").is_ok());
  const auto proxy =
      pair.a.register_remote(2, pair.b.tid_of("echo").value()).value();
  ASSERT_TRUE(pair.a.enable_all().is_ok());
  ASSERT_TRUE(pair.b.enable_all().is_ok());
  pair.a.start();
  pair.b.start();
  const auto raw = make_payload(150000, 9);
  std::vector<std::byte> payload(raw.size());
  std::memcpy(payload.data(), raw.data(), raw.size());
  auto reply = req_raw->call_private(proxy, i2o::OrgId::kTest, kXfnEcho,
                                     payload, xdaq::core::CallOptions{.timeout = std::chrono::seconds(10)});
  pair.a.stop();
  pair.b.stop();
  ASSERT_TRUE(reply.is_ok()) << reply.status().to_string();
  EXPECT_EQ(std::memcmp(reply.value().payload.data(), payload.data(),
                        payload.size()),
            0);
}

// ------------------------------------------------------- fault tolerance

using xdaq::testing::CounterDevice;
using xdaq::testing::kXfnCount;

/// TcpPair with liveness knobs tuned for fast, deterministic tests.
struct TunedTcpPair {
  core::Executive a{core::ExecutiveConfig{.node_id = 1, .name = "a"}};
  core::Executive b{core::ExecutiveConfig{.node_id = 2, .name = "b"}};
  TcpPeerTransport* pt_a = nullptr;
  TcpPeerTransport* pt_b = nullptr;

  explicit TunedTcpPair(const core::TransportConfig& tuning) {
    auto ta = std::make_unique<TcpPeerTransport>(TcpTransportConfig{},
                                                 tuning);
    auto tb = std::make_unique<TcpPeerTransport>(TcpTransportConfig{},
                                                 tuning);
    pt_a = ta.get();
    pt_b = tb.get();
    EXPECT_TRUE(a.install(std::move(ta), "pt_tcp").is_ok());
    EXPECT_TRUE(b.install(std::move(tb), "pt_tcp").is_ok());
    EXPECT_TRUE(a.set_route(2, pt_a->tid()).is_ok());
    EXPECT_TRUE(b.set_route(1, pt_b->tid()).is_ok());
    EXPECT_TRUE(a.enable(pt_a->tid()).is_ok());
    EXPECT_TRUE(b.enable(pt_b->tid()).is_ok());
    pt_a->add_peer(2, "127.0.0.1", pt_b->listen_port());
    pt_b->add_peer(1, "127.0.0.1", pt_a->listen_port());
  }
};

/// Polls until `pred` holds or `budget` elapses.
template <typename Pred>
bool eventually(Pred pred, std::chrono::milliseconds budget =
                               std::chrono::milliseconds(3000)) {
  const auto deadline = std::chrono::steady_clock::now() + budget;
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) {
      return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return pred();
}

/// Encodes a minimal private frame; `control` sets kFlagControl so the
/// transport classifies it as control-plane traffic.
std::vector<std::byte> make_private_wire_frame(i2o::Tid target, bool control,
                                               std::uint16_t xfn) {
  std::vector<std::byte> frame(i2o::kPrivateHeaderBytes);
  i2o::FrameHeader hdr;
  hdr.function = static_cast<std::uint8_t>(i2o::Function::Private);
  hdr.flags = control ? i2o::kFlagControl : i2o::kFlagNone;
  hdr.target = target;
  hdr.organization = static_cast<std::uint16_t>(i2o::OrgId::kTest);
  hdr.xfunction = xfn;
  EXPECT_TRUE(i2o::encode_header(hdr, frame).is_ok());
  return frame;
}

TEST(TcpPtFault, SilentPeerDeclaredDownByMissedHeartbeats) {
  core::TransportConfig tuning;
  tuning.heartbeat_interval = std::chrono::milliseconds(60);
  tuning.missed_heartbeat_limit = 2;
  core::Executive a(core::ExecutiveConfig{.node_id = 1, .name = "a"});
  auto ta = std::make_unique<TcpPeerTransport>(TcpTransportConfig{}, tuning);
  TcpPeerTransport* pt = ta.get();
  ASSERT_TRUE(a.install(std::move(ta), "pt_tcp").is_ok());
  ASSERT_TRUE(a.enable(pt->tid()).is_ok());

  // A raw client that says hello as node 9, then goes silent: no
  // heartbeats, no frames, but the socket stays open.
  auto stream = netio::TcpStream::connect("127.0.0.1", pt->listen_port());
  ASSERT_TRUE(stream.is_ok());
  std::array<std::byte, 6> hello{};
  i2o::put_u32(hello, 0, 0x58444151);
  i2o::put_u16(hello, 4, 9);
  ASSERT_TRUE(stream.value().write_all(hello).is_ok());

  EXPECT_TRUE(eventually(
      [&] { return pt->peer_state(9) == core::PeerState::Up; }));
  // One quiet interval -> Suspect, missed_heartbeat_limit -> Down.
  EXPECT_TRUE(eventually(
      [&] { return pt->peer_state(9) == core::PeerState::Down; }));
  EXPECT_EQ(pt->connection_count(), 0u);  // the dead link was severed
}

TEST(TcpPtFault, KilledPeerFailsCallsFastWithUnavailable) {
  core::TransportConfig tuning;
  tuning.heartbeat_interval = std::chrono::milliseconds(500);
  tuning.backoff_base = std::chrono::milliseconds(20);
  tuning.backoff_cap = std::chrono::milliseconds(100);
  TunedTcpPair pair(tuning);
  ASSERT_TRUE(pair.b.install(std::make_unique<EchoDevice>(), "echo").is_ok());
  auto req = std::make_unique<Requester>();
  Requester* req_raw = req.get();
  ASSERT_TRUE(pair.a.install(std::move(req), "req").is_ok());
  const auto proxy =
      pair.a.register_remote(2, pair.b.tid_of("echo").value()).value();
  ASSERT_TRUE(pair.a.enable_all().is_ok());
  ASSERT_TRUE(pair.b.enable_all().is_ok());
  pair.a.start();
  pair.b.start();
  ASSERT_TRUE(req_raw
                  ->call_private(proxy, i2o::OrgId::kTest, kXfnEcho, {},
                                 xdaq::core::CallOptions{.timeout = std::chrono::seconds(5)})
                  .is_ok());

  // Kill B for good: connection drops, the redial is refused, Down.
  pair.b.stop();
  pair.pt_b->transport_down();
  ASSERT_TRUE(eventually(
      [&] { return pair.pt_a->peer_state(2) == core::PeerState::Down; }));
  EXPECT_EQ(pair.a.peer_state(2), core::PeerState::Down);

  // Acceptance: calls to a Down peer fail with Errc::Unavailable in well
  // under one heartbeat interval (fail-fast, not timeout).
  const auto t0 = std::chrono::steady_clock::now();
  auto reply = req_raw->call_private(proxy, i2o::OrgId::kTest, kXfnEcho, {},
                                     xdaq::core::CallOptions{.timeout = std::chrono::seconds(5)});
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  ASSERT_FALSE(reply.is_ok());
  EXPECT_EQ(reply.status().code(), Errc::Unavailable);
  EXPECT_LT(elapsed, tuning.heartbeat_interval);
  pair.a.stop();
}

TEST(TcpPtFault, RestartedPeerRedetectedUpAndCallsSucceed) {
  core::TransportConfig tuning;
  tuning.heartbeat_interval = std::chrono::milliseconds(400);
  tuning.backoff_base = std::chrono::milliseconds(20);
  tuning.backoff_cap = std::chrono::milliseconds(80);
  TunedTcpPair pair(tuning);
  ASSERT_TRUE(pair.b.install(std::make_unique<EchoDevice>(), "echo").is_ok());
  auto req = std::make_unique<Requester>();
  Requester* req_raw = req.get();
  ASSERT_TRUE(pair.a.install(std::move(req), "req").is_ok());
  const auto proxy =
      pair.a.register_remote(2, pair.b.tid_of("echo").value()).value();
  ASSERT_TRUE(pair.a.enable_all().is_ok());
  ASSERT_TRUE(pair.b.enable_all().is_ok());
  pair.a.start();
  pair.b.start();
  ASSERT_TRUE(req_raw
                  ->call_private(proxy, i2o::OrgId::kTest, kXfnEcho, {},
                                 xdaq::core::CallOptions{.timeout = std::chrono::seconds(5)})
                  .is_ok());

  // Kill and restart B's transport (new ephemeral port, like a process
  // restart); point A at the new endpoint.
  pair.pt_b->transport_down();
  ASSERT_TRUE(eventually(
      [&] { return pair.pt_a->peer_state(2) == core::PeerState::Down; }));
  ASSERT_TRUE(pair.pt_b->transport_up().is_ok());
  pair.pt_a->add_peer(2, "127.0.0.1", pair.pt_b->listen_port());

  // The maintenance thread's capped-backoff redial finds it again.
  ASSERT_TRUE(eventually(
      [&] { return pair.pt_a->peer_state(2) == core::PeerState::Up; }));
  auto reply =
      req_raw->call_private(proxy, i2o::OrgId::kTest, kXfnEcho, {},
                            core::CallOptions{
                                .timeout = std::chrono::seconds(5),
                                .retries = 3,
                                .retry_on_unavailable = true,
                            });
  ASSERT_TRUE(reply.is_ok()) << reply.status().to_string();
  EXPECT_FALSE(reply.value().failed());
  EXPECT_GE(pair.pt_a->fault_stats().reconnects, 1u);
  pair.a.stop();
  pair.b.stop();
}

TEST(TcpPtFault, SuspectWindowQueuesControlFramesAndRetransmits) {
  core::TransportConfig tuning;
  tuning.heartbeat_interval = std::chrono::seconds(10);  // out of the way
  tuning.backoff_base = std::chrono::milliseconds(300);
  tuning.backoff_jitter = 0.0;  // deterministic redial schedule
  tuning.pending_depth = 2;
  TunedTcpPair pair(tuning);
  auto counter = std::make_unique<CounterDevice>();
  CounterDevice* counter_raw = counter.get();
  ASSERT_TRUE(pair.b.install(std::move(counter), "counter").is_ok());
  ASSERT_TRUE(pair.b.enable_all().is_ok());
  pair.b.start();
  const i2o::Tid counter_tid = pair.b.tid_of("counter").value();

  // Establish the connection with a control-flagged private frame.
  const auto control =
      make_private_wire_frame(counter_tid, /*control=*/true, kXfnCount);
  ASSERT_TRUE(pair.pt_a->transport_send(2, control).is_ok());
  ASSERT_TRUE(eventually([&] { return counter_raw->count() == 1; }));

  // Cut the cable; the reader notices and the peer turns Suspect.
  pair.pt_a->disrupt_peer(2);
  ASSERT_TRUE(eventually([&] {
    return pair.pt_a->peer_state(2) == core::PeerState::Suspect;
  }));

  // Control frames queue (bounded), data frames fail immediately.
  EXPECT_TRUE(pair.pt_a->transport_send(2, control).is_ok());
  EXPECT_TRUE(pair.pt_a->transport_send(2, control).is_ok());
  EXPECT_EQ(pair.pt_a->transport_send(2, control).code(),
            Errc::Unavailable);  // pending_depth = 2
  const auto data =
      make_private_wire_frame(counter_tid, /*control=*/false, kXfnCount);
  EXPECT_EQ(pair.pt_a->transport_send(2, data).code(), Errc::Unavailable);

  // B is still listening, so the first (backoff_base-delayed) redial
  // succeeds and replays the queue in order.
  ASSERT_TRUE(eventually(
      [&] { return pair.pt_a->peer_state(2) == core::PeerState::Up; }));
  EXPECT_TRUE(eventually([&] { return counter_raw->count() == 3; }));
  EXPECT_EQ(pair.pt_a->fault_stats().retransmitted, 2u);
  EXPECT_GE(pair.pt_a->fault_stats().reconnects, 1u);
  pair.b.stop();
}

TEST(TcpPtFault, FailSynthesisUnblocksParkedRequester) {
  core::TransportConfig tuning;
  tuning.heartbeat_interval = std::chrono::milliseconds(200);
  tuning.missed_heartbeat_limit = 2;
  tuning.backoff_base = std::chrono::milliseconds(20);
  tuning.backoff_cap = std::chrono::milliseconds(80);
  TunedTcpPair pair(tuning);
  // CounterDevice swallows kXfnCount without replying: the requester
  // would wait out its full timeout unless the executive synthesizes the
  // failure reply at the Down transition.
  ASSERT_TRUE(
      pair.b.install(std::make_unique<CounterDevice>(), "hole").is_ok());
  auto req = std::make_unique<Requester>();
  Requester* req_raw = req.get();
  ASSERT_TRUE(pair.a.install(std::move(req), "req").is_ok());
  const auto proxy =
      pair.a.register_remote(2, pair.b.tid_of("hole").value()).value();
  ASSERT_TRUE(pair.a.enable_all().is_ok());
  ASSERT_TRUE(pair.b.enable_all().is_ok());
  pair.a.start();
  pair.b.start();

  std::thread killer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    pair.b.stop();
    pair.pt_b->transport_down();
  });
  const auto t0 = std::chrono::steady_clock::now();
  auto reply = req_raw->call_private(proxy, i2o::OrgId::kTest, kXfnCount, {},
                                     xdaq::core::CallOptions{.timeout = std::chrono::seconds(30)});
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  killer.join();
  // The call returned a synthesized FAIL reply long before the timeout.
  ASSERT_TRUE(reply.is_ok()) << reply.status().to_string();
  EXPECT_TRUE(reply.value().failed());
  EXPECT_LT(elapsed, std::chrono::seconds(10));
  auto params = reply.value().params();
  ASSERT_TRUE(params.is_ok());
  EXPECT_NE(i2o::param_value(params.value(), "error").find("PeerDown"),
            std::string::npos);
  EXPECT_EQ(req_raw->outstanding(), 0u);
  EXPECT_GE(pair.a.stats().synth_unavailable, 1u);
  pair.a.stop();
}

}  // namespace
}  // namespace xdaq::pt
