#include "util/ring.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

namespace xdaq {
namespace {

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  const SpscRing<int> r(5);
  EXPECT_EQ(r.capacity(), 8u);
  const SpscRing<int> r2(8);
  EXPECT_EQ(r2.capacity(), 8u);
}

TEST(SpscRing, PushPopSingleThread) {
  SpscRing<int> r(4);
  EXPECT_TRUE(r.empty());
  EXPECT_TRUE(r.try_push(1));
  EXPECT_TRUE(r.try_push(2));
  EXPECT_FALSE(r.empty());
  EXPECT_EQ(r.try_pop().value(), 1);
  EXPECT_EQ(r.try_pop().value(), 2);
  EXPECT_FALSE(r.try_pop().has_value());
}

TEST(SpscRing, FullRejectsPush) {
  SpscRing<int> r(4);
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(r.try_push(i));
  }
  EXPECT_FALSE(r.try_push(99));
  EXPECT_EQ(r.try_pop().value(), 0);
  EXPECT_TRUE(r.try_push(99));  // space reclaimed
}

TEST(SpscRing, MoveOnlyTypes) {
  SpscRing<std::unique_ptr<int>> r(2);
  EXPECT_TRUE(r.try_push(std::make_unique<int>(7)));
  auto out = r.try_pop();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(**out, 7);
}

TEST(SpscRing, DestroysLeftoverElements) {
  auto counter = std::make_shared<int>(0);
  struct Probe {
    std::shared_ptr<int> c;
    explicit Probe(std::shared_ptr<int> counter) : c(std::move(counter)) {}
    Probe(Probe&& other) noexcept : c(std::move(other.c)) {}
    Probe& operator=(Probe&&) = delete;
    Probe(const Probe&) = delete;
    ~Probe() {
      if (c) {
        ++*c;
      }
    }
  };
  {
    SpscRing<Probe> r(4);
    r.try_push(Probe{counter});
    r.try_push(Probe{counter});
  }
  // Exactly the 2 queued elements are destroyed with the ring; moved-from
  // temporaries carry null and do not count.
  EXPECT_EQ(*counter, 2);
}

TEST(SpscRing, TwoThreadStress) {
  constexpr int kCount = 200000;
  SpscRing<int> r(1024);
  std::vector<int> seen;
  seen.reserve(kCount);

  std::thread producer([&r] {
    for (int i = 0; i < kCount;) {
      if (r.try_push(i)) {
        ++i;
      }
    }
  });
  for (int got = 0; got < kCount;) {
    if (auto v = r.try_pop()) {
      seen.push_back(*v);
      ++got;
    }
  }
  producer.join();

  ASSERT_EQ(seen.size(), static_cast<std::size_t>(kCount));
  for (int i = 0; i < kCount; ++i) {
    ASSERT_EQ(seen[static_cast<std::size_t>(i)], i) << "FIFO order violated";
  }
}

}  // namespace
}  // namespace xdaq
