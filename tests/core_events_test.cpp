// core_events_test.cpp - I2O event notifications (UtilEventRegister).
//
// Paper section 3.2: "essentially every occurrence in the system is
// mapped to an I2O message. Even interrupts or timer expirations trigger
// messages that are sent to device modules, if they have registered to
// listen to such an event."
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>

#include "core/executive.hpp"
#include "core/requester.hpp"
#include "pt/cluster.hpp"
#include "test_devices.hpp"

namespace xdaq::core {
namespace {

using xdaq::testing::pump_until;

constexpr std::uint32_t kEvAlarm = 0x01;
constexpr std::uint32_t kEvProgress = 0x02;

/// Emits events on request (public wrapper over the protected hook).
class Emitter final : public Device {
 public:
  Emitter() : Device("Emitter") {}
  std::size_t emit(std::uint32_t code, std::span<const std::byte> data = {}) {
    return post_event(code, data);
  }
};

/// Records every notification it receives.
class Listener final : public Device {
 public:
  Listener() : Device("Listener") {}

  void on_event(i2o::Tid source, std::uint32_t code,
                std::span<const std::byte> payload) override {
    last_source_ = source;
    last_code_ = code;
    last_payload_.assign(payload.begin(), payload.end());
    count_.fetch_add(1, std::memory_order_relaxed);
  }

  Status subscribe(i2o::Tid source, std::uint32_t mask) {
    return subscribe_events(source, mask);
  }

  std::atomic<int> count_{0};
  i2o::Tid last_source_ = i2o::kNullTid;
  std::uint32_t last_code_ = 0;
  std::vector<std::byte> last_payload_;
};

struct LocalEvents : ::testing::Test {
  Executive exec;
  Emitter* emitter = nullptr;
  Listener* listener = nullptr;

  void SetUp() override {
    auto e = std::make_unique<Emitter>();
    emitter = e.get();
    ASSERT_TRUE(exec.install(std::move(e), "emitter").is_ok());
    auto l = std::make_unique<Listener>();
    listener = l.get();
    ASSERT_TRUE(exec.install(std::move(l), "listener").is_ok());
    ASSERT_TRUE(exec.enable_all().is_ok());
  }
};

TEST_F(LocalEvents, NoListenersNoNotifications) {
  EXPECT_EQ(emitter->emit(kEvAlarm), 0u);
  EXPECT_EQ(exec.event_listener_count(emitter->tid()), 0u);
}

TEST_F(LocalEvents, RegisteredListenerReceivesEvent) {
  ASSERT_TRUE(exec.register_event_listener(emitter->tid(), listener->tid(),
                                           kEvAlarm)
                  .is_ok());
  const char* text = "overheat";
  EXPECT_EQ(emitter->emit(kEvAlarm,
                          std::span(reinterpret_cast<const std::byte*>(text),
                                    8)),
            1u);
  ASSERT_TRUE(pump_until(exec, [&] { return listener->count_.load() == 1; }));
  EXPECT_EQ(listener->last_code_, kEvAlarm);
  EXPECT_EQ(listener->last_source_, emitter->tid());
  ASSERT_GE(listener->last_payload_.size(), 8u);
  EXPECT_EQ(std::memcmp(listener->last_payload_.data(), text, 8), 0);
}

TEST_F(LocalEvents, MaskFiltersEventCodes) {
  ASSERT_TRUE(exec.register_event_listener(emitter->tid(), listener->tid(),
                                           kEvAlarm)
                  .is_ok());
  EXPECT_EQ(emitter->emit(kEvProgress), 0u);  // masked out
  EXPECT_EQ(emitter->emit(kEvAlarm), 1u);
  ASSERT_TRUE(pump_until(exec, [&] { return listener->count_.load() == 1; }));
  EXPECT_EQ(listener->last_code_, kEvAlarm);
}

TEST_F(LocalEvents, MaskZeroUnregisters) {
  ASSERT_TRUE(exec.register_event_listener(emitter->tid(), listener->tid(),
                                           ~0u)
                  .is_ok());
  EXPECT_EQ(exec.event_listener_count(emitter->tid()), 1u);
  ASSERT_TRUE(
      exec.register_event_listener(emitter->tid(), listener->tid(), 0)
          .is_ok());
  EXPECT_EQ(exec.event_listener_count(emitter->tid()), 0u);
  EXPECT_EQ(emitter->emit(kEvAlarm), 0u);
}

TEST_F(LocalEvents, ReRegisterUpdatesMask) {
  ASSERT_TRUE(exec.register_event_listener(emitter->tid(), listener->tid(),
                                           kEvAlarm)
                  .is_ok());
  ASSERT_TRUE(exec.register_event_listener(emitter->tid(), listener->tid(),
                                           kEvProgress)
                  .is_ok());
  EXPECT_EQ(exec.event_listener_count(emitter->tid()), 1u);  // updated
  EXPECT_EQ(emitter->emit(kEvAlarm), 0u);
  EXPECT_EQ(emitter->emit(kEvProgress), 1u);
}

TEST_F(LocalEvents, MultipleListeners) {
  auto l2 = std::make_unique<Listener>();
  Listener* listener2 = l2.get();
  ASSERT_TRUE(exec.install(std::move(l2), "listener2").is_ok());
  ASSERT_TRUE(exec.enable(listener2->tid()).is_ok());
  ASSERT_TRUE(exec.register_event_listener(emitter->tid(), listener->tid(),
                                           ~0u)
                  .is_ok());
  ASSERT_TRUE(exec.register_event_listener(emitter->tid(),
                                           listener2->tid(), ~0u)
                  .is_ok());
  EXPECT_EQ(emitter->emit(kEvAlarm), 2u);
  ASSERT_TRUE(pump_until(exec, [&] {
    return listener->count_.load() == 1 && listener2->count_.load() == 1;
  }));
}

TEST_F(LocalEvents, RejectsNullListener) {
  EXPECT_EQ(exec.register_event_listener(emitter->tid(), i2o::kNullTid, 1)
                .code(),
            Errc::InvalidArgument);
}

TEST(RemoteEvents, SubscriptionAcrossNodesViaUtilEventRegister) {
  // A listener on node 0 subscribes to an emitter on node 1 with a
  // UtilEventRegister frame; notifications come back over the wire
  // through the initiator proxy.
  pt::Cluster cluster;
  auto e = std::make_unique<Emitter>();
  Emitter* emitter = e.get();
  ASSERT_TRUE(cluster.install(1, std::move(e), "emitter").is_ok());
  auto l = std::make_unique<Listener>();
  Listener* listener = l.get();
  ASSERT_TRUE(cluster.install(0, std::move(l), "listener").is_ok());
  auto req = std::make_unique<Requester>();
  Requester* req_raw = req.get();
  ASSERT_TRUE(cluster.install(0, std::move(req), "req").is_ok());
  const auto emitter_proxy = cluster.connect(0, 1, "emitter").value();
  ASSERT_TRUE(cluster.enable_all().is_ok());
  cluster.start_all();

  // UtilEventRegister subscribes the *initiator*, so the registration
  // frame is sent from the listener device itself; the emitter's node
  // interns an initiator proxy, which notifications then route through.
  ASSERT_TRUE(listener->subscribe(emitter_proxy, ~0u).is_ok());
  // Wait until the remote executive has processed the registration.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (cluster.node(1).event_listener_count(emitter->tid()) == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(cluster.node(1).event_listener_count(emitter->tid()), 1u);

  EXPECT_EQ(emitter->emit(kEvAlarm), 1u);
  const auto deadline2 =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (listener->count_.load() == 0 &&
         std::chrono::steady_clock::now() < deadline2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  cluster.stop_all();
  EXPECT_EQ(listener->count_.load(), 1);
  EXPECT_EQ(listener->last_code_, kEvAlarm);
  (void)req_raw;
}

}  // namespace
}  // namespace xdaq::core
