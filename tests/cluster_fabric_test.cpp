// cluster_fabric_test.cpp - the cluster fabric end to end: relay
// forwarding over multi-hop routes, the TTL loop guard, SWIM gossip
// convergence through a seeded fault-injected partition, and the hashed
// event-builder placement. These are the acceptance tests for the
// gossip/routing subsystem: a node with no direct transport completes a
// request/reply through a relay hop, and a deliberately looped route is
// dropped by the TTL guard instead of circulating forever.
#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <thread>

#include "cluster/gossip.hpp"
#include "core/requester.hpp"
#include "daq/topology.hpp"
#include "pt/cluster.hpp"
#include "pt/fault_pt.hpp"
#include "test_devices.hpp"

namespace xdaq::pt {
namespace {

using core::Requester;
using xdaq::testing::EchoDevice;
using xdaq::testing::kXfnEcho;

std::uint64_t relay_counter(Cluster& cluster, std::size_t i,
                            const char* name) {
  return cluster.node(i)
      .metrics()
      .counter(std::string("cluster.relay.") + name)
      .value();
}

/// Spins until `pred` holds or `deadline` passes (threads are running;
/// the fabric delivers in the background).
template <typename Pred>
bool wait_until(Pred pred, std::chrono::milliseconds deadline =
                               std::chrono::milliseconds(3000)) {
  const auto until = std::chrono::steady_clock::now() + deadline;
  while (!pred()) {
    if (std::chrono::steady_clock::now() > until) {
      return false;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

// ------------------------------------------------------------- relay hop

// Node 0 has no direct transport route to node 2; the only path is a
// store-and-forward relay through node 1. A request/reply round trip
// must complete and every hop must show up in the cluster.relay.*
// counters on the right node.
TEST(RelayFabric, RequestReplyThroughOneHop) {
  ClusterConfig cfg;
  cfg.nodes = 3;
  cfg.full_mesh = false;
  Cluster cluster(cfg);

  // Direct links: 0 <-> 1 and 1 <-> 2. Node 0 and node 2 cannot see
  // each other except through node 1.
  ASSERT_TRUE(cluster.node(0)
                  .set_route(cluster.node_id(1), cluster.transport(0).tid())
                  .is_ok());
  ASSERT_TRUE(cluster.node(1)
                  .set_route(cluster.node_id(0), cluster.transport(1).tid())
                  .is_ok());
  ASSERT_TRUE(cluster.node(1)
                  .set_route(cluster.node_id(2), cluster.transport(1).tid())
                  .is_ok());
  ASSERT_TRUE(cluster.node(2)
                  .set_route(cluster.node_id(1), cluster.transport(2).tid())
                  .is_ok());
  cluster.relay_route(0, 2, 1);  // 0 reaches 2 via 1
  cluster.relay_route(2, 0, 1);  // and the reply path back

  ASSERT_TRUE(
      cluster.install(2, std::make_unique<EchoDevice>(), "echo").is_ok());
  auto req = std::make_unique<Requester>();
  Requester* req_raw = req.get();
  ASSERT_TRUE(cluster.install(0, std::move(req), "req").is_ok());

  const auto proxy = cluster.connect(0, 2, "echo");
  ASSERT_TRUE(proxy.is_ok());

  ASSERT_TRUE(cluster.enable_all().is_ok());
  cluster.start_all();

  // Frames are word-granular (i2o::frame_bytes_for_payload rounds up),
  // so keep the payload a multiple of 4 for an exact echo comparison.
  const char msg[] = "through the relays!";  // 19 chars + NUL = 20 bytes
  const auto payload = std::as_bytes(std::span(msg));
  auto reply = req_raw->call_private(proxy.value(), i2o::OrgId::kTest,
                                     kXfnEcho, payload);
  ASSERT_TRUE(reply.is_ok()) << reply.status().to_string();
  ASSERT_FALSE(reply.value().failed());
  ASSERT_EQ(reply.value().payload.size(), payload.size());
  EXPECT_EQ(std::memcmp(reply.value().payload.data(), payload.data(),
                        payload.size()),
            0);

  // Request: originated at 0, forwarded at 1, delivered at 2. Reply:
  // originated at 2, forwarded at 1, delivered at 0.
  EXPECT_GE(relay_counter(cluster, 0, "origin"), 1u);
  EXPECT_GE(relay_counter(cluster, 2, "origin"), 1u);
  EXPECT_GE(relay_counter(cluster, 1, "forwarded"), 2u);
  EXPECT_GE(relay_counter(cluster, 0, "delivered"), 1u);
  EXPECT_GE(relay_counter(cluster, 2, "delivered"), 1u);
  EXPECT_EQ(relay_counter(cluster, 0, "dropped_ttl"), 0u);
  EXPECT_EQ(relay_counter(cluster, 1, "dropped_ttl"), 0u);

  // Learning a direct route upgrades the same proxy: the next frame
  // goes straight over the transport, with no new relay origination.
  const auto origins = relay_counter(cluster, 0, "origin");
  ASSERT_TRUE(cluster.node(0)
                  .set_route(cluster.node_id(2), cluster.transport(0).tid())
                  .is_ok());
  reply = req_raw->call_private(proxy.value(), i2o::OrgId::kTest, kXfnEcho,
                                payload);
  ASSERT_TRUE(reply.is_ok()) << reply.status().to_string();
  EXPECT_EQ(relay_counter(cluster, 0, "origin"), origins);
}

// A routing loop (node 0 says "via 1", node 1 says "via 0") must burn
// the envelope's TTL and drop it instead of circulating forever. The
// destination never sees a delivery.
TEST(RelayFabric, TtlGuardDropsLoopedRoute) {
  ClusterConfig cfg;
  cfg.nodes = 3;
  cfg.full_mesh = false;
  Cluster cluster(cfg);

  ASSERT_TRUE(cluster.node(0)
                  .set_route(cluster.node_id(1), cluster.transport(0).tid())
                  .is_ok());
  ASSERT_TRUE(cluster.node(1)
                  .set_route(cluster.node_id(0), cluster.transport(1).tid())
                  .is_ok());
  // Deliberate loop: both relay nodes claim the other is the way to 2.
  cluster.relay_route(0, 2, 1);
  cluster.relay_route(1, 2, 0);

  auto req = std::make_unique<Requester>();
  Requester* req_raw = req.get();
  ASSERT_TRUE(cluster.install(0, std::move(req), "req").is_ok());
  const auto proxy =
      cluster.node(0).resolver().resolve(cluster.node_id(2),
                                         i2o::kExecutiveTid);
  ASSERT_TRUE(proxy.is_ok());

  ASSERT_TRUE(cluster.enable_all().is_ok());
  cluster.start_all();

  const std::uint8_t ttl = cluster.node(0).resolver().initial_ttl();
  ASSERT_GE(ttl, 2u);

  auto reply = req_raw->call_private(
      proxy.value(), i2o::OrgId::kTest, kXfnEcho, {},
      core::CallOptions{.timeout = std::chrono::milliseconds(250)});
  ASSERT_FALSE(reply.is_ok());
  EXPECT_EQ(reply.status().code(), Errc::Timeout);

  // The envelope ping-pongs between 0 and 1 until one of them sees
  // TTL <= 1 and drops it.
  ASSERT_TRUE(wait_until([&] {
    return relay_counter(cluster, 0, "dropped_ttl") +
               relay_counter(cluster, 1, "dropped_ttl") >=
           1u;
  }));
  // Every hop decremented: the forward count matches the TTL budget.
  EXPECT_GE(relay_counter(cluster, 0, "forwarded") +
                relay_counter(cluster, 1, "forwarded"),
            static_cast<std::uint64_t>(ttl) - 1);
  // Node 2 never saw the frame.
  EXPECT_EQ(relay_counter(cluster, 2, "delivered"), 0u);
}

// ----------------------------------------------------------------- gossip

// Timer-driven smoke: with a real protocol period the devices tick on
// their own and keep the seeded full-mesh membership Alive.
TEST(Gossip, TimerDrivenHeartbeat) {
  ClusterConfig cfg;
  cfg.nodes = 3;
  cfg.gossip = true;
  cfg.gossip_config.period = std::chrono::milliseconds(5);
  Cluster cluster(cfg);
  ASSERT_TRUE(cluster.enable_all().is_ok());
  cluster.start_all();

  ASSERT_TRUE(wait_until([&] { return cluster.gossip(0).ticks() >= 5; }));
  for (std::size_t i = 0; i < 3; ++i) {
    const auto members = cluster.gossip(i).map().members();
    ASSERT_EQ(members.size(), 3u);
    for (const auto& m : members) {
      EXPECT_EQ(m.status, cluster::MemberStatus::Alive)
          << "node " << i << " sees " << m.node << " as "
          << cluster::to_string(m.status);
    }
  }
}

// The full SWIM cycle, deterministically ticked: a fault-injected
// partition silences node 2, the survivors suspect then declare it dead
// within the configured quiet-period budget, and after the partition
// heals the refuted (higher) incarnation resurrects it everywhere.
// The map version must be monotonic across the whole leave/rejoin cycle.
TEST(Gossip, PartitionIsDetectedAndHealed) {
  ClusterConfig cfg;
  cfg.nodes = 3;
  cfg.gossip = true;
  cfg.gossip_config.period = std::chrono::nanoseconds::zero();  // manual
  cfg.gossip_config.suspect_after = 3;
  cfg.gossip_config.dead_after = 6;
  cfg.gossip_config.seed = 42;
  Cluster cluster(cfg);

  // Decorate node 2's transport so its outbound gossip can be severed.
  auto fault = std::make_unique<FaultInjectingTransport>(
      cluster.transport(2), FaultPlan{});
  FaultInjectingTransport* fault_raw = fault.get();
  ASSERT_TRUE(cluster.install(2, std::move(fault), "pt_fault").is_ok());
  ASSERT_TRUE(
      cluster.node(2).set_route(cluster.node_id(0), fault_raw->tid()).is_ok());
  ASSERT_TRUE(
      cluster.node(2).set_route(cluster.node_id(1), fault_raw->tid()).is_ok());

  ASSERT_TRUE(cluster.enable_all().is_ok());
  cluster.start_all();

  const i2o::NodeId victim = cluster.node_id(2);
  std::uint64_t last_version = cluster.gossip(0).map().version();

  // One protocol period across the whole cluster, then a short grace
  // for the frames to dispatch. Asserts version monotonicity on every
  // observation.
  const auto step = [&] {
    for (std::size_t i = 0; i < 3; ++i) {
      cluster.gossip(i).tick();
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    const std::uint64_t v = cluster.gossip(0).map().version();
    EXPECT_GE(v, last_version) << "member-map version went backwards";
    last_version = v;
  };

  const auto status_at = [&](std::size_t i) {
    const auto m = cluster.gossip(i).map().get(victim);
    return m ? m->status : cluster::MemberStatus::Dead;
  };

  // Warm up: everyone hears everyone.
  for (int t = 0; t < 4; ++t) {
    step();
  }
  EXPECT_EQ(status_at(0), cluster::MemberStatus::Alive);
  EXPECT_EQ(status_at(1), cluster::MemberStatus::Alive);

  // Partition: node 2's sends all drop (inbound still arrives - a
  // one-way partition is the nastier case, because node 2 keeps
  // hearing the rumours about itself and refuting them into the void).
  fault_raw->set_plan(FaultPlan{.seed = 7, .drop_rate = 1.0});

  // Detection must land within the quiet-period budget plus slack for
  // dissemination: dead_after periods to the verdict, a few more for
  // the rumour to reach the other survivor.
  int ticks_to_dead = 0;
  for (; ticks_to_dead < 20; ++ticks_to_dead) {
    step();
    if (status_at(0) == cluster::MemberStatus::Dead &&
        status_at(1) == cluster::MemberStatus::Dead) {
      break;
    }
  }
  ASSERT_LT(ticks_to_dead, 20) << "survivors never declared the victim dead";
  EXPECT_GE(ticks_to_dead + 1,
            static_cast<int>(cfg.gossip_config.dead_after));

  // The victim heard the rumours and refuted them: its incarnation is
  // now ahead of the one the survivors buried.
  EXPECT_GE(cluster.gossip(2).map().self_incarnation(), 1u);

  // Heal. The victim's pushes (it still believes the survivors are
  // alive) carry the refuted incarnation, which resurrects it.
  fault_raw->set_plan(FaultPlan{});
  int ticks_to_alive = 0;
  for (; ticks_to_alive < 20; ++ticks_to_alive) {
    step();
    if (status_at(0) == cluster::MemberStatus::Alive &&
        status_at(1) == cluster::MemberStatus::Alive) {
      break;
    }
  }
  ASSERT_LT(ticks_to_alive, 20) << "partition never healed";

  const auto resurrected = cluster.gossip(0).map().get(victim);
  ASSERT_TRUE(resurrected.has_value());
  EXPECT_GE(resurrected->incarnation, 1u);
}

// ------------------------------------------------- hashed placement

// The consistent-hash placement is a permutation of the block layout:
// the event builder must still assemble every event.
TEST(HashedPlacement, EventBuilderCompletes) {
  ClusterConfig cfg;
  cfg.nodes = 5;
  Cluster cluster(cfg);

  daq::EventBuilderParams params;
  params.readouts = 2;
  params.builders = 2;
  params.fragment_bytes = 512;
  params.max_events = 50;
  params.hash_placement = true;
  auto topo = daq::EventBuilderTopology::build(cluster, params);
  ASSERT_TRUE(topo.is_ok()) << topo.status().to_string();

  ASSERT_TRUE(cluster.enable_all().is_ok());
  cluster.start_all();

  ASSERT_TRUE(wait_until([&] { return topo.value().complete(); },
                         std::chrono::milliseconds(10000)));
  EXPECT_EQ(topo.value().events_built(), params.max_events);
  EXPECT_EQ(topo.value().bytes_built(),
            params.max_events * params.readouts * params.fragment_bytes);
  EXPECT_EQ(topo.value().corrupt_fragments(), 0u);
}

}  // namespace
}  // namespace xdaq::pt
