#include "gmsim/gmsim.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <thread>

#include "util/random.hpp"

namespace xdaq::gmsim {
namespace {

std::vector<std::byte> bytes_of(const std::vector<std::uint8_t>& v) {
  std::vector<std::byte> out(v.size());
  std::memcpy(out.data(), v.data(), v.size());
  return out;
}

TEST(Fabric, OpenAndClosePorts) {
  Fabric fabric;
  auto a = fabric.open_port(1);
  ASSERT_TRUE(a.is_ok());
  EXPECT_EQ(fabric.port_count(), 1u);
  {
    auto b = fabric.open_port(2);
    ASSERT_TRUE(b.is_ok());
    EXPECT_EQ(fabric.port_count(), 2u);
  }
  EXPECT_EQ(fabric.port_count(), 1u);  // port 2 closed on destruction
}

TEST(Fabric, DuplicatePortIdRejected) {
  Fabric fabric;
  auto a = fabric.open_port(1);
  ASSERT_TRUE(a.is_ok());
  auto dup = fabric.open_port(1);
  EXPECT_EQ(dup.status().code(), Errc::AlreadyExists);
}

TEST(Port, SendReceiveRoundTrip) {
  Fabric fabric;
  auto a = fabric.open_port(1).value();
  auto b = fabric.open_port(2).value();

  std::vector<std::byte> rx(256);
  b->provide_receive_buffer(rx);

  const auto msg = bytes_of(make_payload(100, 42));
  ASSERT_TRUE(a->send(2, msg).is_ok());

  const auto ev = b->receive(std::chrono::milliseconds(100));
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->src, 1);
  EXPECT_EQ(ev->length, 100u);
  EXPECT_EQ(ev->buffer.data(), rx.data());
  EXPECT_EQ(std::memcmp(rx.data(), msg.data(), 100), 0);
}

TEST(Port, PollWithoutTrafficReturnsNothing) {
  Fabric fabric;
  auto a = fabric.open_port(1).value();
  std::vector<std::byte> rx(64);
  a->provide_receive_buffer(rx);
  EXPECT_FALSE(a->poll().has_value());
}

TEST(Port, NoReceiveBufferHoldsMessage) {
  Fabric fabric;
  auto a = fabric.open_port(1).value();
  auto b = fabric.open_port(2).value();
  const auto msg = bytes_of(make_payload(10, 1));
  ASSERT_TRUE(a->send(2, msg).is_ok());
  EXPECT_FALSE(b->poll().has_value());  // lossless: queued, not dropped

  std::vector<std::byte> rx(64);
  b->provide_receive_buffer(rx);
  const auto ev = b->poll();
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->length, 10u);
}

TEST(Port, SendToUnknownPortFails) {
  Fabric fabric;
  auto a = fabric.open_port(1).value();
  const auto msg = bytes_of(make_payload(4, 2));
  EXPECT_EQ(a->send(99, msg).code(), Errc::NotFound);
}

TEST(Port, OversizedMessageRejected) {
  FabricConfig cfg;
  cfg.max_message_bytes = 128;
  Fabric fabric(cfg);
  auto a = fabric.open_port(1).value();
  auto b = fabric.open_port(2).value();
  const auto msg = bytes_of(make_payload(129, 3));
  EXPECT_EQ(a->send(2, msg).code(), Errc::InvalidArgument);
}

TEST(Port, TokenExhaustionAndReturn) {
  FabricConfig cfg;
  cfg.send_tokens = 2;
  Fabric fabric(cfg);
  auto a = fabric.open_port(1).value();
  auto b = fabric.open_port(2).value();
  const auto msg = bytes_of(make_payload(8, 4));

  ASSERT_TRUE(a->send(2, msg).is_ok());
  ASSERT_TRUE(a->send(2, msg).is_ok());
  EXPECT_EQ(a->send(2, msg).code(), Errc::ResourceExhausted);
  EXPECT_EQ(a->stats().send_rejects, 1u);

  std::vector<std::byte> rx(64);
  b->provide_receive_buffer(rx);
  ASSERT_TRUE(b->poll().has_value());  // consuming returns a token
  EXPECT_TRUE(a->send(2, msg).is_ok());
}

TEST(Port, FifoOrderPreservedPerSender) {
  Fabric fabric;
  auto a = fabric.open_port(1).value();
  auto b = fabric.open_port(2).value();
  std::vector<std::vector<std::byte>> rx(10, std::vector<std::byte>(8));
  for (auto& buf : rx) {
    b->provide_receive_buffer(buf);
  }
  for (std::uint8_t i = 0; i < 10; ++i) {
    std::vector<std::byte> msg(4, static_cast<std::byte>(i));
    ASSERT_TRUE(a->send(2, msg).is_ok());
  }
  for (std::uint8_t i = 0; i < 10; ++i) {
    const auto ev = b->poll();
    ASSERT_TRUE(ev.has_value());
    EXPECT_EQ(ev->buffer[0], static_cast<std::byte>(i));
  }
}

TEST(Port, TruncationCountsAndDeliversPrefix) {
  Fabric fabric;
  auto a = fabric.open_port(1).value();
  auto b = fabric.open_port(2).value();
  std::vector<std::byte> small(16);
  b->provide_receive_buffer(small);
  const auto msg = bytes_of(make_payload(64, 5));
  ASSERT_TRUE(a->send(2, msg).is_ok());
  const auto ev = b->poll();
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->length, 16u);
  EXPECT_EQ(b->stats().truncations, 1u);
  EXPECT_EQ(std::memcmp(small.data(), msg.data(), 16), 0);
}

TEST(Port, LatencyModelDelaysDelivery) {
  FabricConfig cfg;
  cfg.wire_latency_ns = 5'000'000;  // 5 ms
  Fabric fabric(cfg);
  auto a = fabric.open_port(1).value();
  auto b = fabric.open_port(2).value();
  std::vector<std::byte> rx(64);
  b->provide_receive_buffer(rx);
  const auto msg = bytes_of(make_payload(8, 6));
  const auto t0 = now_ns();
  ASSERT_TRUE(a->send(2, msg).is_ok());
  EXPECT_FALSE(b->poll().has_value());  // still on the wire
  const auto ev = b->receive(std::chrono::milliseconds(500));
  ASSERT_TRUE(ev.has_value());
  EXPECT_GE(now_ns() - t0, 5'000'000u);
}

TEST(Port, PerByteCostScalesWithPayload) {
  FabricConfig cfg;
  cfg.ns_per_byte = 1000.0;  // 1 us per byte, exaggerated for testability
  Fabric fabric(cfg);
  auto a = fabric.open_port(1).value();
  auto b = fabric.open_port(2).value();
  std::vector<std::byte> rx(8192);
  b->provide_receive_buffer(rx);
  const auto msg = bytes_of(make_payload(4096, 7));
  const auto t0 = now_ns();
  ASSERT_TRUE(a->send(2, msg).is_ok());
  const auto ev = b->receive(std::chrono::seconds(2));
  ASSERT_TRUE(ev.has_value());
  EXPECT_GE(now_ns() - t0, 4096u * 1000u);
}

TEST(Port, StatsAccumulate) {
  Fabric fabric;
  auto a = fabric.open_port(1).value();
  auto b = fabric.open_port(2).value();
  std::vector<std::byte> rx(256);
  const auto msg = bytes_of(make_payload(100, 8));
  for (int i = 0; i < 3; ++i) {
    b->provide_receive_buffer(rx);
    ASSERT_TRUE(a->send(2, msg).is_ok());
    ASSERT_TRUE(b->receive(std::chrono::milliseconds(100)).has_value());
  }
  EXPECT_EQ(a->stats().sends, 3u);
  EXPECT_EQ(a->stats().bytes_sent, 300u);
  EXPECT_EQ(b->stats().receives, 3u);
  EXPECT_EQ(b->stats().bytes_received, 300u);
}

TEST(Port, CrossThreadPingPong) {
  Fabric fabric;
  auto a = fabric.open_port(1).value();
  auto b = fabric.open_port(2).value();
  constexpr int kRounds = 2000;

  std::thread echo([&b] {
    std::vector<std::byte> rx(64);
    for (int i = 0; i < kRounds; ++i) {
      b->provide_receive_buffer(rx);
      const auto ev = b->receive(std::chrono::seconds(10));
      ASSERT_TRUE(ev.has_value());
      ASSERT_TRUE(b->send(ev->src, ev->buffer.subspan(0, ev->length)).is_ok());
    }
  });

  std::vector<std::byte> rx(64);
  const auto msg = bytes_of(make_payload(32, 9));
  for (int i = 0; i < kRounds; ++i) {
    a->provide_receive_buffer(rx);
    ASSERT_TRUE(a->send(2, msg).is_ok());
    const auto ev = a->receive(std::chrono::seconds(10));
    ASSERT_TRUE(ev.has_value());
    ASSERT_EQ(ev->length, 32u);
  }
  echo.join();
  EXPECT_EQ(std::memcmp(rx.data(), msg.data(), 32), 0);
}

}  // namespace
}  // namespace xdaq::gmsim
