// process_test.cpp - multi-process deployment: spawns real node_daemon
// processes and drives them over TCP from a ControlSession, exactly the
// way a production primary host would. This is the paper's deployment
// model with genuine OS process and network boundaries.
//
// XDAQ_NODE_DAEMON is the daemon binary path, injected by CMake.
#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <string>
#include <sys/wait.h>
#include <unistd.h>

#include "core/executive.hpp"
#include "pt/tcp_pt.hpp"
#include "xcl/control.hpp"

namespace xdaq {
namespace {

/// A node_daemon child process. Reads its "listening on" banner to learn
/// the ephemeral port.
class DaemonProcess {
 public:
  static std::unique_ptr<DaemonProcess> spawn(int node_id) {
    auto proc = std::make_unique<DaemonProcess>();
    const std::string cmd = std::string(XDAQ_NODE_DAEMON) +
                            " --node=" + std::to_string(node_id) +
                            " --listen=0 2>&1";
    proc->pipe_ = ::popen(cmd.c_str(), "r");
    if (proc->pipe_ == nullptr) {
      return nullptr;
    }
    // First line: "xdaq node N ('name') listening on 127.0.0.1:PORT"
    char line[256] = {};
    if (std::fgets(line, sizeof(line), proc->pipe_) == nullptr) {
      return nullptr;
    }
    const std::string banner(line);
    const auto colon = banner.rfind(':');
    if (colon == std::string::npos) {
      return nullptr;
    }
    proc->port_ = static_cast<std::uint16_t>(
        std::strtoul(banner.c_str() + colon + 1, nullptr, 10));
    return proc->port_ != 0 ? std::move(proc) : nullptr;
  }

  ~DaemonProcess() {
    if (pipe_ != nullptr) {
      ::pclose(pipe_);  // waits for the child
    }
  }

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Blocks until the daemon prints its shutdown banner and exits.
  bool wait_exit() {
    char line[256];
    while (std::fgets(line, sizeof(line), pipe_) != nullptr) {
    }
    const int rc = ::pclose(pipe_);
    pipe_ = nullptr;
    return rc == 0;
  }

 private:
  FILE* pipe_ = nullptr;
  std::uint16_t port_ = 0;
};

TEST(MultiProcess, ControlLoadAndShutdownRealDaemons) {
  auto d2 = DaemonProcess::spawn(2);
  auto d3 = DaemonProcess::spawn(3);
  ASSERT_NE(d2, nullptr) << "daemon 2 failed to start";
  ASSERT_NE(d3, nullptr) << "daemon 3 failed to start";

  // Primary host in this process.
  core::Executive host(
      core::ExecutiveConfig{.node_id = 1, .name = "primary"});
  auto transport = std::make_unique<pt::TcpPeerTransport>();
  pt::TcpPeerTransport* pt = transport.get();
  const auto pt_tid = host.install(std::move(transport), "pt_tcp").value();
  ASSERT_TRUE(host.enable(pt_tid).is_ok());
  pt->add_peer(2, "127.0.0.1", d2->port());
  pt->add_peer(3, "127.0.0.1", d3->port());
  ASSERT_TRUE(host.set_route(2, pt_tid).is_ok());
  ASSERT_TRUE(host.set_route(3, pt_tid).is_ok());

  xcl::ControlSession session(host, std::chrono::seconds(10));
  ASSERT_TRUE(session.add_node("w1", 2).is_ok());
  ASSERT_TRUE(session.add_node("w2", 3).is_ok());
  host.start();

  // Liveness across the process boundary.
  EXPECT_TRUE(session.ping("w1").is_ok());
  EXPECT_TRUE(session.ping("w2").is_ok());

  // Runtime class loading in a foreign process.
  ASSERT_TRUE(session.load("w1", "BuilderUnit", "builder", {}).is_ok());
  ASSERT_TRUE(
      session.state_op("w1", "builder", i2o::Function::ExecEnable)
          .is_ok());
  auto params = session.param_get("w1", "builder");
  ASSERT_TRUE(params.is_ok());
  EXPECT_EQ(i2o::param_value(params.value(), "state"), "Enabled");
  EXPECT_EQ(i2o::param_value(params.value(), "class"), "BuilderUnit");

  // Node status of a real remote process.
  auto status = session.status("w2");
  ASSERT_TRUE(status.is_ok());
  EXPECT_EQ(i2o::param_value(status.value(), "name"), "node3");

  // Remote shutdown via the daemon's ShutdownHook device.
  ASSERT_TRUE(
      session.state_op("w1", "shutdown", i2o::Function::ExecHalt).is_ok());
  ASSERT_TRUE(
      session.state_op("w2", "shutdown", i2o::Function::ExecHalt).is_ok());
  host.stop();

  EXPECT_TRUE(d2->wait_exit());
  EXPECT_TRUE(d3->wait_exit());
}

}  // namespace
}  // namespace xdaq
