#include "daq/topology.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "core/requester.hpp"
#include "daq/protocol.hpp"

namespace xdaq::daq {
namespace {

// ---------------------------------------------------------------- protocol

TEST(DaqProtocol, AllocateRoundTrip) {
  const auto bytes = encode_allocate(AllocateMsg{16});
  auto decoded = decode_allocate(bytes);
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value().count, 16u);
}

TEST(DaqProtocol, AllocateRejectsZeroAndShort) {
  EXPECT_FALSE(decode_allocate(encode_allocate(AllocateMsg{0})).is_ok());
  std::vector<std::byte> shorty(2);
  EXPECT_FALSE(decode_allocate(shorty).is_ok());
}

TEST(DaqProtocol, ConfirmRoundTrip) {
  ConfirmMsg m;
  for (std::uint64_t i = 1; i <= 5; ++i) {
    m.assignments.push_back(
        Assignment{i, static_cast<std::uint16_t>(i % 3)});
  }
  auto decoded = decode_confirm(encode_confirm(m));
  ASSERT_TRUE(decoded.is_ok());
  ASSERT_EQ(decoded.value().assignments.size(), 5u);
  EXPECT_EQ(decoded.value().assignments[4].event_id, 5u);
  EXPECT_EQ(decoded.value().assignments[4].builder_index, 2u);
}

TEST(DaqProtocol, ConfirmCountValidated) {
  ConfirmMsg m;
  m.assignments.push_back(Assignment{1, 0});
  auto bytes = encode_confirm(m);
  bytes.resize(bytes.size() - 1);  // truncate
  EXPECT_FALSE(decode_confirm(bytes).is_ok());
}

TEST(DaqProtocol, FragmentHeaderRoundTrip) {
  std::vector<std::byte> buf(kFragmentHeaderBytes + 64);
  FragmentHeader h{12345, 2, 4, 64, 0xFEEDFACE};
  encode_fragment_header(h, buf);
  auto decoded = decode_fragment_header(buf);
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value().event_id, 12345u);
  EXPECT_EQ(decoded.value().source_id, 2u);
  EXPECT_EQ(decoded.value().total_sources, 4u);
  EXPECT_EQ(decoded.value().data_bytes, 64u);
  EXPECT_EQ(decoded.value().checksum, 0xFEEDFACEu);
}

TEST(DaqProtocol, FragmentHeaderValidation) {
  std::vector<std::byte> buf(kFragmentHeaderBytes + 8);
  encode_fragment_header(FragmentHeader{1, 0, 0, 8, 0}, buf);
  EXPECT_FALSE(decode_fragment_header(buf).is_ok());  // zero sources
  encode_fragment_header(FragmentHeader{1, 5, 4, 8, 0}, buf);
  EXPECT_FALSE(decode_fragment_header(buf).is_ok());  // source >= total
  encode_fragment_header(FragmentHeader{1, 0, 4, 999, 0}, buf);
  EXPECT_FALSE(decode_fragment_header(buf).is_ok());  // data truncated
}

TEST(DaqProtocol, FragmentDataDeterministic) {
  std::vector<std::byte> a(256);
  std::vector<std::byte> b(256);
  fill_fragment_data(a, 7, 3);
  fill_fragment_data(b, 7, 3);
  EXPECT_EQ(a, b);
  fill_fragment_data(b, 7, 4);
  EXPECT_NE(a, b);
  EXPECT_EQ(fnv1a(a), fnv1a(a));
  EXPECT_NE(fnv1a(a), fnv1a(b));
}

// ----------------------------------------------------------- event manager

TEST(EventManagerUnit, GrantsPerRuSequencesFromOne) {
  // Two requesters play readout units: each must receive event ids from
  // its own sequence starting at 1, with deterministic builder indices.
  core::Executive exec;
  const auto evm_tid =
      exec.install(std::make_unique<EventManager>(), "evm",
                   {{"builders", "2"}})
          .value();
  ASSERT_TRUE(exec.enable(evm_tid).is_ok());
  auto r1 = std::make_unique<core::Requester>();
  auto r2 = std::make_unique<core::Requester>();
  core::Requester* ru1 = r1.get();
  core::Requester* ru2 = r2.get();
  ASSERT_TRUE(exec.install(std::move(r1), "ru1").is_ok());
  ASSERT_TRUE(exec.install(std::move(r2), "ru2").is_ok());
  exec.start();

  auto allocate = [&](core::Requester* ru, std::uint32_t count) {
    const auto payload = encode_allocate(AllocateMsg{count});
    auto reply = ru->call_private(evm_tid, i2o::OrgId::kDaq, kXfnAllocate,
                                  payload, xdaq::core::CallOptions{.timeout = std::chrono::seconds(2)});
    EXPECT_TRUE(reply.is_ok());
    auto confirm = decode_confirm(reply.value().payload);
    EXPECT_TRUE(confirm.is_ok());
    return confirm.value();
  };

  const ConfirmMsg c1 = allocate(ru1, 3);
  const ConfirmMsg c2 = allocate(ru2, 3);
  const ConfirmMsg c1b = allocate(ru1, 2);
  exec.stop();

  ASSERT_EQ(c1.assignments.size(), 3u);
  ASSERT_EQ(c2.assignments.size(), 3u);
  ASSERT_EQ(c1b.assignments.size(), 2u);
  // Both RUs see the same global event series 1,2,3...
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(c1.assignments[i].event_id, i + 1);
    EXPECT_EQ(c2.assignments[i].event_id, i + 1);
    // ...and the same deterministic builder assignment.
    EXPECT_EQ(c1.assignments[i].builder_index,
              c2.assignments[i].builder_index);
    EXPECT_EQ(c1.assignments[i].builder_index, (i + 1) % 2);
  }
  // RU1's second allocate continues its own sequence.
  EXPECT_EQ(c1b.assignments[0].event_id, 4u);
  EXPECT_EQ(c1b.assignments[1].event_id, 5u);
}

TEST(EventManagerUnit, MaxInFlightCapsGrants) {
  core::Executive exec;
  const auto evm_tid =
      exec.install(std::make_unique<EventManager>(), "evm",
                   {{"builders", "1"}, {"max_in_flight", "4"}})
          .value();
  ASSERT_TRUE(exec.enable(evm_tid).is_ok());
  auto r = std::make_unique<core::Requester>();
  core::Requester* ru = r.get();
  ASSERT_TRUE(exec.install(std::move(r), "ru").is_ok());
  exec.start();

  const auto payload = encode_allocate(AllocateMsg{10});
  auto reply = ru->call_private(evm_tid, i2o::OrgId::kDaq, kXfnAllocate,
                                payload, xdaq::core::CallOptions{.timeout = std::chrono::seconds(2)});
  ASSERT_TRUE(reply.is_ok());
  auto confirm = decode_confirm(reply.value().payload);
  ASSERT_TRUE(confirm.is_ok());
  EXPECT_EQ(confirm.value().assignments.size(), 4u);  // capped

  // Completions free slots: report two events done, ask again.
  for (const std::uint64_t done : {1u, 2u}) {
    auto frame = ru->call_private(evm_tid, i2o::OrgId::kDaq, kXfnEventDone,
                                  encode_event_done(EventDoneMsg{done}),
                                  xdaq::core::CallOptions{.timeout = std::chrono::milliseconds(100)});
    // EventDone has no reply; the call times out by design.
    EXPECT_FALSE(frame.is_ok());
  }
  auto reply2 = ru->call_private(evm_tid, i2o::OrgId::kDaq, kXfnAllocate,
                                 payload, xdaq::core::CallOptions{.timeout = std::chrono::seconds(2)});
  ASSERT_TRUE(reply2.is_ok());
  auto confirm2 = decode_confirm(reply2.value().payload);
  ASSERT_TRUE(confirm2.is_ok());
  EXPECT_EQ(confirm2.value().assignments.size(), 2u);  // 4 out, 2 done
  exec.stop();
}

TEST(EventManagerUnit, MalformedAllocateGetsFailReply) {
  core::Executive exec;
  const auto evm_tid =
      exec.install(std::make_unique<EventManager>(), "evm").value();
  ASSERT_TRUE(exec.enable(evm_tid).is_ok());
  auto r = std::make_unique<core::Requester>();
  core::Requester* ru = r.get();
  ASSERT_TRUE(exec.install(std::move(r), "ru").is_ok());
  exec.start();
  std::vector<std::byte> garbage(2);  // too short for an Allocate
  auto reply = ru->call_private(evm_tid, i2o::OrgId::kDaq, kXfnAllocate,
                                garbage, xdaq::core::CallOptions{.timeout = std::chrono::seconds(2)});
  exec.stop();
  ASSERT_TRUE(reply.is_ok());
  EXPECT_TRUE(reply.value().failed());
}

// ------------------------------------------------------------ event builder

void wait_for_completion(EventBuilderTopology& topo,
                         std::chrono::seconds deadline) {
  const auto until = std::chrono::steady_clock::now() + deadline;
  while (!topo.complete() && std::chrono::steady_clock::now() < until) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

TEST(EventBuilder, TopologyRequiresMatchingClusterSize) {
  pt::Cluster tiny(pt::ClusterConfig{.nodes = 2});
  EventBuilderParams p;  // needs 5 nodes
  EXPECT_FALSE(EventBuilderTopology::build(tiny, p).is_ok());
}

TEST(EventBuilder, TwoByTwoRunsToCompletion) {
  EventBuilderParams p;
  p.readouts = 2;
  p.builders = 2;
  p.max_events = 200;
  p.fragment_bytes = 512;
  pt::Cluster cluster(
      pt::ClusterConfig{.nodes = EventBuilderTopology::nodes_required(p)});
  auto topo = EventBuilderTopology::build(cluster, p);
  ASSERT_TRUE(topo.is_ok()) << topo.status().to_string();
  ASSERT_TRUE(cluster.enable_all().is_ok());
  cluster.start_all();
  wait_for_completion(topo.value(), std::chrono::seconds(20));
  cluster.stop_all();

  EXPECT_EQ(topo.value().events_built(), p.max_events);
  EXPECT_EQ(topo.value().corrupt_fragments(), 0u);
  EXPECT_EQ(topo.value().bytes_built(),
            p.max_events * p.readouts * p.fragment_bytes);
  // Every RU generated the full series.
  for (const ReadoutUnit* ru : topo.value().readouts) {
    EXPECT_EQ(ru->events_generated(), p.max_events);
    EXPECT_EQ(ru->send_failures(), 0u);
  }
  // Round-robin assignment spreads events over both builders.
  for (const BuilderUnit* bu : topo.value().builders) {
    EXPECT_EQ(bu->events_built(), p.max_events / 2);
    EXPECT_EQ(bu->events_in_progress(), 0u);
  }
  // The EVM saw all completions.
  EXPECT_EQ(topo.value().evm->events_completed(), p.max_events);
  EXPECT_EQ(topo.value().evm->events_assigned(), p.max_events);
}

TEST(EventBuilder, AsymmetricTopology) {
  EventBuilderParams p;
  p.readouts = 3;
  p.builders = 1;
  p.max_events = 60;
  p.fragment_bytes = 256;
  p.batch = 4;
  pt::Cluster cluster(
      pt::ClusterConfig{.nodes = EventBuilderTopology::nodes_required(p)});
  auto topo = EventBuilderTopology::build(cluster, p);
  ASSERT_TRUE(topo.is_ok());
  ASSERT_TRUE(cluster.enable_all().is_ok());
  cluster.start_all();
  wait_for_completion(topo.value(), std::chrono::seconds(20));
  cluster.stop_all();

  EXPECT_EQ(topo.value().events_built(), p.max_events);
  EXPECT_EQ(topo.value().builders[0]->fragments_received(),
            p.max_events * p.readouts);
  EXPECT_EQ(topo.value().corrupt_fragments(), 0u);
}

TEST(EventBuilder, FlowControlCapRespected) {
  // With a tight in-flight cap the run still completes (grants shrink but
  // never wedge).
  EventBuilderParams p;
  p.readouts = 2;
  p.builders = 2;
  p.max_events = 100;
  p.fragment_bytes = 128;
  p.batch = 16;
  pt::Cluster cluster(
      pt::ClusterConfig{.nodes = EventBuilderTopology::nodes_required(p)});
  auto topo = EventBuilderTopology::build(cluster, p);
  ASSERT_TRUE(topo.is_ok());
  ASSERT_TRUE(cluster.enable_all().is_ok());
  cluster.start_all();
  wait_for_completion(topo.value(), std::chrono::seconds(20));
  cluster.stop_all();
  EXPECT_EQ(topo.value().events_built(), p.max_events);
}

TEST(EventBuilder, ReadoutConfigValidation) {
  core::Executive exec;
  auto tid = exec.install(std::make_unique<ReadoutUnit>(), "ru").value();
  EXPECT_EQ(exec.configure(tid, {{"source_id", "5"},
                                 {"total_sources", "2"}})
                .code(),
            Errc::InvalidArgument);
  EXPECT_EQ(exec.configure(tid, {{"batch", "0"}}).code(),
            Errc::InvalidArgument);
  EXPECT_EQ(exec.configure(tid, {{"fragment_bytes", "999999999"}}).code(),
            Errc::InvalidArgument);
  // Enabling without wiring fails cleanly.
  ASSERT_TRUE(exec.configure(tid, {}).is_ok());
  EXPECT_EQ(exec.enable(tid).code(), Errc::FailedPrecondition);
}

TEST(EventBuilder, EvmConfigValidation) {
  core::Executive exec;
  auto tid = exec.install(std::make_unique<EventManager>(), "evm").value();
  EXPECT_EQ(exec.configure(tid, {{"builders", "0"}}).code(),
            Errc::InvalidArgument);
  EXPECT_TRUE(exec.configure(tid, {{"builders", "4"}}).is_ok());
}

TEST(EventBuilder, BuilderProgressEventsReachSubscriber) {
  // A monitor device on the EVM node subscribes to the builder's
  // kEvBuilderProgress notifications (I2O event registration across
  // nodes) and tallies them during a run.
  struct Monitor final : core::Device {
    Monitor() : Device("Monitor") {}
    Status watch(i2o::Tid source) { return subscribe_events(source, ~0u); }
    void on_event(i2o::Tid, std::uint32_t code,
                  std::span<const std::byte>) override {
      if (code == kEvBuilderProgress) {
        progress.fetch_add(1, std::memory_order_relaxed);
      }
    }
    std::atomic<int> progress{0};
  };

  EventBuilderParams p;
  p.readouts = 2;
  p.builders = 1;
  p.max_events = 100;
  p.fragment_bytes = 128;
  pt::Cluster cluster(
      pt::ClusterConfig{.nodes = EventBuilderTopology::nodes_required(p)});
  auto topo = EventBuilderTopology::build(cluster, p);
  ASSERT_TRUE(topo.is_ok());
  // Ask the builder to emit progress every 10 events.
  const std::size_t bu_node = p.readouts;  // builder node index
  const auto bu_tid = cluster.node(bu_node).tid_of("bu").value();
  ASSERT_TRUE(cluster.node(bu_node)
                  .configure(bu_tid, {{"progress_every", "10"}})
                  .is_ok());

  auto monitor_dev = std::make_unique<Monitor>();
  Monitor* monitor = monitor_dev.get();
  const std::size_t evm_node = p.readouts + p.builders;
  ASSERT_TRUE(cluster.install(evm_node, std::move(monitor_dev), "monitor")
                  .is_ok());
  const auto bu_proxy = cluster.connect(evm_node, bu_node, "bu").value();

  // Bring everything except the readout units up, land the subscription,
  // and only then open the tap - the progress count is then exact.
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    ASSERT_TRUE(cluster.node(i)
                    .enable(cluster.node(i).tid_of("pt_gm").value())
                    .is_ok());
  }
  ASSERT_TRUE(cluster.node(bu_node).enable(bu_tid).is_ok());
  ASSERT_TRUE(cluster.node(evm_node)
                  .enable(cluster.node(evm_node).tid_of("evm").value())
                  .is_ok());
  ASSERT_TRUE(cluster.node(evm_node)
                  .enable(cluster.node(evm_node).tid_of("monitor").value())
                  .is_ok());
  cluster.start_all();
  ASSERT_TRUE(monitor->watch(bu_proxy).is_ok());
  const auto sub_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (cluster.node(bu_node).event_listener_count(bu_tid) == 0 &&
         std::chrono::steady_clock::now() < sub_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(cluster.node(bu_node).event_listener_count(bu_tid), 1u);
  for (std::size_t i = 0; i < p.readouts; ++i) {
    ASSERT_TRUE(
        cluster.node(i).enable(cluster.node(i).tid_of("ru").value())
            .is_ok());
  }
  wait_for_completion(topo.value(), std::chrono::seconds(20));
  // Progress events trail the last built event slightly.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(2);
  while (monitor->progress.load() < 10 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  cluster.stop_all();
  ASSERT_TRUE(topo.value().complete());
  EXPECT_EQ(monitor->progress.load(), 10);  // 100 events / every 10
}

TEST(EventBuilder, CorruptFragmentCounted) {
  // Hand a builder a fragment whose checksum does not match.
  core::Executive exec;
  auto bu_dev = std::make_unique<BuilderUnit>();
  BuilderUnit* bu = bu_dev.get();
  const auto bu_tid = exec.install(std::move(bu_dev), "bu").value();
  ASSERT_TRUE(exec.enable(bu_tid).is_ok());

  const std::size_t data_bytes = 64;
  auto frame =
      exec.alloc_frame(kFragmentHeaderBytes + data_bytes, true);
  ASSERT_TRUE(frame.is_ok());
  i2o::FrameHeader hdr;
  hdr.function = static_cast<std::uint8_t>(i2o::Function::Private);
  hdr.organization = static_cast<std::uint16_t>(i2o::OrgId::kDaq);
  hdr.xfunction = kXfnFragment;
  hdr.target = bu_tid;
  auto bytes = frame.value().bytes();
  ASSERT_TRUE(i2o::encode_header(hdr, bytes).is_ok());
  auto payload = bytes.subspan(i2o::kPrivateHeaderBytes);
  FragmentHeader fh{1, 0, 2, data_bytes, /*checksum=*/0xBAD};
  encode_fragment_header(fh, payload);
  ASSERT_TRUE(exec.frame_send(std::move(frame).value()).is_ok());
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(2);
  while (bu->corrupt_fragments() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    exec.run_once();
  }
  EXPECT_EQ(bu->corrupt_fragments(), 1u);
  EXPECT_EQ(bu->events_built(), 0u);
}

TEST(EventBuilder, DuplicateFragmentIgnored) {
  core::Executive exec;
  auto bu_dev = std::make_unique<BuilderUnit>();
  BuilderUnit* bu = bu_dev.get();
  const auto bu_tid = exec.install(std::move(bu_dev), "bu").value();
  ASSERT_TRUE(exec.enable(bu_tid).is_ok());

  const std::size_t data_bytes = 32;
  auto send_fragment = [&](std::uint16_t source) {
    auto frame = exec.alloc_frame(kFragmentHeaderBytes + data_bytes, true);
    ASSERT_TRUE(frame.is_ok());
    i2o::FrameHeader hdr;
    hdr.function = static_cast<std::uint8_t>(i2o::Function::Private);
    hdr.organization = static_cast<std::uint16_t>(i2o::OrgId::kDaq);
    hdr.xfunction = kXfnFragment;
    hdr.target = bu_tid;
    auto bytes = frame.value().bytes();
    ASSERT_TRUE(i2o::encode_header(hdr, bytes).is_ok());
    auto payload = bytes.subspan(i2o::kPrivateHeaderBytes);
    auto data = payload.subspan(kFragmentHeaderBytes, data_bytes);
    fill_fragment_data(data, 1, source);
    FragmentHeader fh{1, source, 2, data_bytes, fnv1a(data)};
    encode_fragment_header(fh, payload);
    ASSERT_TRUE(exec.frame_send(std::move(frame).value()).is_ok());
  };
  send_fragment(0);
  send_fragment(0);  // duplicate
  for (int i = 0; i < 100 && bu->fragments_received() < 2; ++i) {
    exec.run_once();
  }
  EXPECT_EQ(bu->events_built(), 0u);  // still waiting for source 1
  send_fragment(1);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(2);
  while (bu->events_built() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    exec.run_once();
  }
  EXPECT_EQ(bu->events_built(), 1u);
}

}  // namespace
}  // namespace xdaq::daq
