// ctrl_raft_test.cpp - the pure consensus core under a simulated network.
//
// RaftCore has no threads, clock or wire, so these tests drive a whole
// voter group from a single loop: tick every core, shuttle the outboxes,
// and check the Raft invariants the control plane stands on - at most
// one leader per term, log matching, no lost acknowledged writes, and
// recovery through hard-state restore and snapshot install. Every
// scenario is seeded and deterministic: a failure replays identically.
#include "ctrl/raft.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <set>
#include <string>

#include "ctrl/store.hpp"
#include "ctrl/wire.hpp"

namespace xdaq::ctrl {
namespace {

std::vector<std::byte> cmd_bytes(std::string_view s) {
  const auto* p = reinterpret_cast<const std::byte*>(s.data());
  return std::vector<std::byte>(p, p + s.size());
}

std::string cmd_str(const std::vector<std::byte>& b) {
  return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

RaftConfig make_cfg(i2o::NodeId self, std::vector<i2o::NodeId> voters,
                    std::uint64_t seed = 1) {
  RaftConfig cfg;
  cfg.self = self;
  cfg.voters = std::move(voters);
  cfg.election_timeout_min = 10;
  cfg.election_timeout_max = 20;
  cfg.heartbeat_interval = 3;
  cfg.seed = seed;
  return cfg;
}

/// In-memory voter group: lockstep ticks, immediate delivery, optional
/// symmetric partition, per-node kill/restart with preserved hard state.
/// Election safety (<= 1 leader per term) is asserted on every step.
class SimNet {
 public:
  explicit SimNet(std::vector<i2o::NodeId> ids, std::uint64_t seed = 1)
      : ids_(std::move(ids)) {
    for (const i2o::NodeId id : ids_) {
      cores_.emplace(id,
                     std::make_unique<RaftCore>(make_cfg(id, ids_, seed)));
    }
  }

  RaftCore& core(i2o::NodeId id) { return *cores_.at(id); }
  [[nodiscard]] bool alive(i2o::NodeId id) const {
    return cores_.count(id) > 0;
  }

  void set_partition(std::vector<std::vector<i2o::NodeId>> groups) {
    groups_ = std::move(groups);
  }
  void heal() { groups_.clear(); }

  void kill(i2o::NodeId id) {
    hard_state_[id] = cores_.at(id)->encode_hard_state();
    cores_.erase(id);
  }

  /// Restarts a killed node from its saved blob (or empty when
  /// `with_state` is false - the snapshot-catch-up path).
  void restart(i2o::NodeId id, bool with_state = true) {
    std::vector<std::byte> blob =
        with_state ? hard_state_.at(id) : std::vector<std::byte>{};
    auto restored = RaftCore::restore(make_cfg(id, ids_), blob);
    ASSERT_TRUE(restored.is_ok()) << restored.status().to_string();
    cores_.erase(id);
    cores_.emplace(id, std::make_unique<RaftCore>(std::move(restored).value()));
    applied_[id].clear();  // a restarted state machine re-applies from zero
  }

  /// One lockstep round: tick everyone, deliver until the wires drain,
  /// harvest commits, check election safety.
  void step() {
    for (auto& [id, core] : cores_) {
      core->tick();
    }
    deliver();
    for (auto& [id, core] : cores_) {
      if (auto snap = core->take_installed_snapshot()) {
        // State-machine restore: the applied map restarts at the
        // snapshot (entries before it are inside the blob).
        applied_[id].clear();
      }
      for (auto& [index, cmd] : core->take_committed()) {
        applied_[id][index] = cmd_str(cmd);
      }
      if (core->role() == Role::Leader) {
        const auto it = leaders_.emplace(core->term(), id).first;
        ASSERT_EQ(it->second, id)
            << "two leaders in term " << core->term();
      }
      // Linearizability gate: a leader holding the read lease must have
      // every acknowledged write committed locally - otherwise a lease
      // read could miss an acked write (the Raft §8 no-op barrier).
      if (core->role() == Role::Leader && core->has_lease() &&
          !acked_.empty()) {
        EXPECT_GE(core->commit_index(), acked_.rbegin()->first)
            << "leased leader " << id
            << " would serve reads missing acked writes";
      }
    }
  }

  void run(int steps) {
    for (int i = 0; i < steps; ++i) {
      step();
      if (::testing::Test::HasFatalFailure()) {
        return;
      }
    }
  }

  /// Steps until some live node is leader; returns it (asserts a bound).
  i2o::NodeId elect(int max_steps = 200) {
    for (int i = 0; i < max_steps; ++i) {
      step();
      for (auto& [id, core] : cores_) {
        if (core->role() == Role::Leader) {
          return id;
        }
      }
    }
    ADD_FAILURE() << "no leader elected within " << max_steps << " steps";
    return i2o::kNullNode;
  }

  /// Proposes on `leader` and steps until the entry is applied there
  /// while it is still leader in the same term - the ack condition the
  /// replica device uses. Returns the acked index (0 = not acked).
  std::uint64_t propose_acked(i2o::NodeId leader, const std::string& cmd,
                              int max_steps = 100) {
    RaftCore& l = core(leader);
    const std::uint64_t term = l.term();
    auto index = l.propose(cmd_bytes(cmd));
    if (!index.is_ok()) {
      return 0;
    }
    for (int i = 0; i < max_steps; ++i) {
      step();
      if (!alive(leader)) {
        return 0;
      }
      RaftCore& now = core(leader);
      if (now.role() != Role::Leader || now.term() != term) {
        return 0;
      }
      const auto& log = applied_[leader];
      if (auto it = log.find(index.value()); it != log.end()) {
        EXPECT_EQ(it->second, cmd);
        acked_[index.value()] = cmd;
        return index.value();
      }
    }
    return 0;
  }

  /// Every acked write must be present, unchanged, at its index on every
  /// live node that has applied that far.
  void check_no_lost_writes() {
    for (const auto& [index, cmd] : acked_) {
      for (auto& [id, log] : applied_) {
        if (!alive(id)) {
          continue;
        }
        const auto it = log.find(index);
        if (it != log.end()) {
          EXPECT_EQ(it->second, cmd)
              << "node " << id << " diverged at index " << index;
        }
      }
    }
  }

  /// Log matching across live nodes: indices applied by several nodes
  /// must agree byte for byte.
  void check_log_match() {
    for (auto& [a_id, a_log] : applied_) {
      if (!alive(a_id)) {
        continue;
      }
      for (auto& [b_id, b_log] : applied_) {
        if (!alive(b_id) || b_id <= a_id) {
          continue;
        }
        for (const auto& [index, cmd] : a_log) {
          const auto it = b_log.find(index);
          if (it != b_log.end()) {
            EXPECT_EQ(it->second, cmd) << "nodes " << a_id << "/" << b_id
                                       << " diverge at index " << index;
          }
        }
      }
    }
  }

  [[nodiscard]] const std::map<std::uint64_t, std::string>& acked() const {
    return acked_;
  }
  [[nodiscard]] std::map<std::uint64_t, std::string>& applied(
      i2o::NodeId id) {
    return applied_[id];
  }

 private:
  [[nodiscard]] bool cut(i2o::NodeId a, i2o::NodeId b) const {
    if (groups_.empty()) {
      return false;
    }
    int ga = -1;
    int gb = -1;
    for (std::size_t g = 0; g < groups_.size(); ++g) {
      for (const i2o::NodeId n : groups_[g]) {
        if (n == a) {
          ga = static_cast<int>(g);
        }
        if (n == b) {
          gb = static_cast<int>(g);
        }
      }
    }
    return ga >= 0 && gb >= 0 && ga != gb;
  }

  void deliver() {
    // Bounded rounds: replies beget appends beget replies, but each
    // round strictly consumes the previous round's sends.
    for (int round = 0; round < 16; ++round) {
      bool moved = false;
      for (auto& [id, core] : cores_) {
        for (auto& [to, msg] : core->take_outbox()) {
          if (cut(id, to) || cores_.count(to) == 0) {
            continue;  // partitioned or dead: the wire eats it
          }
          // Wire round trip: codec fidelity is exercised on every hop.
          auto decoded = RaftMsg::decode(msg.encode());
          ASSERT_TRUE(decoded.is_ok()) << decoded.status().to_string();
          cores_.at(to)->handle(decoded.value());
          moved = true;
        }
      }
      if (!moved) {
        return;
      }
    }
  }

  std::vector<i2o::NodeId> ids_;
  std::map<i2o::NodeId, std::unique_ptr<RaftCore>> cores_;
  std::vector<std::vector<i2o::NodeId>> groups_;
  std::map<i2o::NodeId, std::vector<std::byte>> hard_state_;
  std::map<i2o::NodeId, std::map<std::uint64_t, std::string>> applied_;
  std::map<std::uint64_t, i2o::NodeId> leaders_;  ///< term -> sole leader
  std::map<std::uint64_t, std::string> acked_;
};

// ----------------------------------------------------------------- codec

TEST(RaftMsgCodec, RoundTripsEveryField) {
  RaftMsg m;
  m.type = RaftMsg::Type::Append;
  m.from = 3;
  m.term = 7;
  m.prev_index = 41;
  m.prev_term = 6;
  m.commit = 40;
  m.granted = true;
  m.match = 12;
  m.entries.push_back(LogEntry{6, cmd_bytes("alpha")});
  m.entries.push_back(LogEntry{7, cmd_bytes("")});
  m.snapshot = cmd_bytes("snap-bytes");
  auto rt = RaftMsg::decode(m.encode());
  ASSERT_TRUE(rt.is_ok()) << rt.status().to_string();
  EXPECT_EQ(rt.value().type, m.type);
  EXPECT_EQ(rt.value().from, m.from);
  EXPECT_EQ(rt.value().term, m.term);
  EXPECT_EQ(rt.value().prev_index, m.prev_index);
  EXPECT_EQ(rt.value().prev_term, m.prev_term);
  EXPECT_EQ(rt.value().commit, m.commit);
  EXPECT_EQ(rt.value().granted, m.granted);
  EXPECT_EQ(rt.value().match, m.match);
  ASSERT_EQ(rt.value().entries.size(), 2u);
  EXPECT_EQ(rt.value().entries[0].term, 6u);
  EXPECT_EQ(cmd_str(rt.value().entries[0].cmd), "alpha");
  EXPECT_EQ(rt.value().entries[1].term, 7u);
  EXPECT_TRUE(rt.value().entries[1].cmd.empty());
  EXPECT_EQ(cmd_str(rt.value().snapshot), "snap-bytes");
}

TEST(RaftMsgCodec, RejectsTruncatedBytes) {
  RaftMsg m;
  m.entries.push_back(LogEntry{1, cmd_bytes("x")});
  const auto wire = m.encode();
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    EXPECT_FALSE(
        RaftMsg::decode(std::span(wire.data(), cut)).is_ok())
        << "accepted a " << cut << "-byte prefix";
  }
}

// -------------------------------------------------------------- election

TEST(RaftCoreTest, SingleVoterLeadsImmediately) {
  RaftCore core(make_cfg(1, {1}));
  for (int i = 0; i < 25 && core.role() != Role::Leader; ++i) {
    core.tick();
  }
  EXPECT_EQ(core.role(), Role::Leader);
  EXPECT_TRUE(core.has_lease());
  auto idx = core.propose(cmd_bytes("solo"));
  ASSERT_TRUE(idx.is_ok());
  core.tick();
  const auto committed = core.take_committed();
  ASSERT_EQ(committed.size(), 1u);
  EXPECT_EQ(committed[0].first, idx.value());
}

TEST(RaftCoreTest, FiveVotersElectOneLeaderWithLease) {
  SimNet net({1, 2, 3, 4, 5});
  const i2o::NodeId leader = net.elect();
  ASSERT_NE(leader, i2o::kNullNode);
  net.run(5);  // heartbeats ack -> lease
  EXPECT_TRUE(net.core(leader).has_lease());
  int leaders = 0;
  for (const i2o::NodeId id : {1, 2, 3, 4, 5}) {
    if (net.core(id).role() == Role::Leader) {
      ++leaders;
    } else {
      EXPECT_EQ(net.core(id).leader_hint(), leader);
    }
  }
  EXPECT_EQ(leaders, 1);
}

TEST(RaftCoreTest, ProposalsCommitEverywhereInOrder) {
  SimNet net({1, 2, 3});
  const i2o::NodeId leader = net.elect();
  for (int i = 0; i < 8; ++i) {
    ASSERT_NE(net.propose_acked(leader, "cmd-" + std::to_string(i)), 0u);
  }
  net.run(10);
  for (const i2o::NodeId id : {1, 2, 3}) {
    EXPECT_EQ(net.applied(id).size(), 8u) << "node " << id;
  }
  net.check_log_match();
  net.check_no_lost_writes();
}

TEST(RaftCoreTest, NonLeaderRejectsProposals) {
  SimNet net({1, 2, 3});
  const i2o::NodeId leader = net.elect();
  for (const i2o::NodeId id : {1, 2, 3}) {
    if (id != leader) {
      EXPECT_FALSE(net.core(id).propose(cmd_bytes("nope")).is_ok());
    }
  }
}

// ------------------------------------------------------------ partitions

TEST(RaftCoreTest, MinorityLeaderCannotCommitAndStepsDownOnHeal) {
  SimNet net({1, 2, 3, 4, 5});
  const i2o::NodeId old_leader = net.elect();
  ASSERT_NE(net.propose_acked(old_leader, "before-split"), 0u);

  // Cut the leader plus one follower away from the other three.
  std::vector<i2o::NodeId> minority{old_leader};
  std::vector<i2o::NodeId> majority;
  for (const i2o::NodeId id : {1, 2, 3, 4, 5}) {
    if (id == old_leader) {
      continue;
    }
    if (minority.size() < 2) {
      minority.push_back(id);
    } else {
      majority.push_back(id);
    }
  }
  net.set_partition({minority, majority});

  // A write proposed on the stranded leader must never become acked.
  RaftCore& stranded = net.core(old_leader);
  const std::uint64_t stranded_term = stranded.term();
  auto doomed = stranded.propose(cmd_bytes("doomed"));
  ASSERT_TRUE(doomed.is_ok());

  // The majority side elects a fresh leader and keeps committing.
  i2o::NodeId new_leader = i2o::kNullNode;
  for (int i = 0; i < 300 && new_leader == i2o::kNullNode; ++i) {
    net.step();
    for (const i2o::NodeId id : majority) {
      if (net.core(id).role() == Role::Leader &&
          net.core(id).term() > stranded_term) {
        new_leader = id;
      }
    }
  }
  ASSERT_NE(new_leader, i2o::kNullNode) << "majority never re-elected";
  ASSERT_NE(net.propose_acked(new_leader, "after-split"), 0u);

  // The stranded leader has no quorum: no lease, no commit progress.
  EXPECT_FALSE(net.core(old_leader).has_lease());
  EXPECT_LT(net.core(old_leader).commit_index(), doomed.value());

  net.heal();
  net.run(60);
  // Healed: the old leader stepped down, the doomed write is gone, and
  // every node converged on the majority's history.
  EXPECT_NE(net.core(old_leader).role(), Role::Leader);
  EXPECT_GE(net.core(old_leader).term(), net.core(new_leader).term());
  net.check_log_match();
  net.check_no_lost_writes();
  const auto& healed = net.applied(old_leader);
  for (const auto& [index, cmd] : healed) {
    EXPECT_NE(cmd, "doomed");
  }
}

// The REVIEW.md high finding: a write acked by the old leader sits
// replicated-but-uncommitted on the followers; the new leader must not
// hand out its read lease until its term-start no-op barrier commits,
// which transitively commits (and applies) the acked write.
TEST(RaftCoreTest, NewLeaderWithholdsLeaseUntilTermBarrierCommits) {
  SimNet net({1, 2, 3});
  const i2o::NodeId leader = net.elect();
  ASSERT_NE(net.propose_acked(leader, "acked-before-kill"), 0u);
  const std::uint64_t acked_index = net.acked().rbegin()->first;
  // propose_acked returns right after the LEADER applies; the followers
  // hold the entry but have not yet learned the commit index. Kill the
  // leader in exactly that window.
  net.kill(leader);

  i2o::NodeId new_leader = i2o::kNullNode;
  for (int i = 0; i < 300 && new_leader == i2o::kNullNode; ++i) {
    net.step();  // step() asserts the lease/commit invariant throughout
    for (const i2o::NodeId id : {1, 2, 3}) {
      if (net.alive(id) && net.core(id).role() == Role::Leader &&
          net.core(id).has_lease()) {
        new_leader = id;
      }
    }
  }
  ASSERT_NE(new_leader, i2o::kNullNode) << "no leased leader re-elected";
  // By lease time the barrier has committed, carrying the acked write
  // with it: a linearizable read on the new leader sees it.
  EXPECT_GE(net.core(new_leader).commit_index(), acked_index);
  const auto& log = net.applied(new_leader);
  const auto it = log.find(acked_index);
  ASSERT_NE(it, log.end()) << "acked write unapplied on the leased leader";
  EXPECT_EQ(it->second, "acked-before-kill");
  net.check_no_lost_writes();
}

// The REVIEW.md medium finding: lease freshness must be anchored at the
// tick an AppendEntries round was SENT, not when its ack arrived - a
// delayed ack must not stretch the lease past the point a rival could
// already have been elected.
TEST(RaftCoreTest, DelayedAckAnchorsLeaseAtSendTick) {
  SimNet net({1, 2, 3});
  const i2o::NodeId leader = net.elect();
  net.run(5);
  RaftCore& l = net.core(leader);
  ASSERT_TRUE(l.has_lease());

  // Stop lockstep delivery; capture exactly one heartbeat round.
  std::vector<std::pair<i2o::NodeId, RaftMsg>> held;
  while (held.empty()) {
    l.tick();
    held = l.take_outbox();
  }
  const std::uint64_t sent_tick = l.ticks();
  // The wire sits on the round for 9 ticks (later heartbeats are lost).
  for (int i = 0; i < 9; ++i) {
    l.tick();
    (void)l.take_outbox();
  }
  // Deliver the stale round and bounce the acks straight back.
  for (auto& [to, msg] : held) {
    net.core(to).handle(msg);
    for (auto& [back, reply] : net.core(to).take_outbox()) {
      if (back == leader) {
        l.handle(reply);
      }
    }
  }
  // The acks are anchored at sent_tick: once election_timeout_min ticks
  // have passed since the SEND, a rival quorum could exist, so the lease
  // must be gone - even though the acks arrived only 1 tick ago.
  const std::uint32_t timeout_min = l.config().election_timeout_min;
  while (l.ticks() < sent_tick + timeout_min) {
    l.tick();
    (void)l.take_outbox();
  }
  EXPECT_FALSE(l.has_lease())
      << "delayed ack receipt extended the lease past the send anchor";
}

// The REVIEW.md commit-regression finding: a duplicated or delayed old
// Append (small prev_index, no entries, newer leader commit) must never
// move a follower's commit index backwards.
TEST(RaftCoreTest, DuplicatedOldAppendNeverRegressesFollowerCommit) {
  RaftCore follower(make_cfg(2, {1, 2, 3}));
  RaftMsg app;
  app.type = RaftMsg::Type::Append;
  app.from = 1;
  app.term = 1;
  app.prev_index = 0;
  app.prev_term = 0;
  app.commit = 3;
  for (int i = 1; i <= 5; ++i) {
    app.entries.push_back(LogEntry{1, cmd_bytes("e" + std::to_string(i))});
  }
  follower.handle(app);
  ASSERT_EQ(follower.commit_index(), 3u);
  (void)follower.take_outbox();
  (void)follower.take_committed();

  // FaultInjectingTransport can duplicate+delay: the same leader's old
  // empty heartbeat arrives again, now carrying a higher commit but
  // matching nothing past index 0.
  RaftMsg dup;
  dup.type = RaftMsg::Type::Append;
  dup.from = 1;
  dup.term = 1;
  dup.prev_index = 0;
  dup.prev_term = 0;
  dup.commit = 5;
  follower.handle(dup);
  EXPECT_EQ(follower.commit_index(), 3u) << "commit index regressed";
}

TEST(RaftCoreTest, LeaderLeaseLapsesWithoutQuorumAcks) {
  SimNet net({1, 2, 3});
  const i2o::NodeId leader = net.elect();
  net.run(5);
  ASSERT_TRUE(net.core(leader).has_lease());
  // Isolate the leader; its lease must lapse within election_timeout_min.
  std::vector<i2o::NodeId> others;
  for (const i2o::NodeId id : {1, 2, 3}) {
    if (id != leader) {
      others.push_back(id);
    }
  }
  net.set_partition({{leader}, others});
  net.run(make_cfg(1, {1}).election_timeout_min + 2);
  EXPECT_FALSE(net.core(leader).has_lease());
}

// ----------------------------------------------------- restart + snapshot

TEST(RaftCoreTest, HardStateSurvivesRestart) {
  SimNet net({1, 2, 3});
  const i2o::NodeId leader = net.elect();
  for (int i = 0; i < 5; ++i) {
    ASSERT_NE(net.propose_acked(leader, "w" + std::to_string(i)), 0u);
  }
  // Kill and restart a follower with its blob: it re-applies the same
  // committed prefix and keeps matching.
  i2o::NodeId follower = 0;
  for (const i2o::NodeId id : {1, 2, 3}) {
    if (id != leader) {
      follower = id;
      break;
    }
  }
  net.kill(follower);
  net.run(10);
  net.restart(follower);
  net.run(30);
  EXPECT_EQ(net.applied(follower).size(), 5u);
  net.check_log_match();
  net.check_no_lost_writes();
}

TEST(RaftCoreTest, CompactedLeaderCatchesUpEmptyFollowerViaSnapshot) {
  SimNet net({1, 2, 3});
  const i2o::NodeId leader = net.elect();
  ConfigStore model;
  for (int i = 0; i < 10; ++i) {
    Command cmd;
    cmd.op = CtrlOp::Put;
    cmd.key = "k" + std::to_string(i);
    cmd.value = "v" + std::to_string(i);
    const std::uint64_t index =
        net.propose_acked(leader, cmd_str(cmd.encode()));
    ASSERT_NE(index, 0u);
    model.apply(cmd, index);
  }
  // Host-style compaction: everything applied folds into a snapshot.
  RaftCore& l = net.core(leader);
  ASSERT_TRUE(l.compact(l.commit_index(), model.encode()).is_ok());

  // A follower that lost its disk restarts empty; the compacted leader
  // can only catch it up by installing the snapshot.
  i2o::NodeId follower = 0;
  for (const i2o::NodeId id : {1, 2, 3}) {
    if (id != leader) {
      follower = id;
      break;
    }
  }
  net.kill(follower);
  net.run(5);
  net.restart(follower, /*with_state=*/false);
  net.run(60);
  EXPECT_GE(net.core(follower).commit_index(), 10u);
  // Snapshot contents reached the follower inside Snapshot messages; the
  // SimNet applied_ map cleared on install, so verify via the core's
  // state instead: its log is rooted at the snapshot index.
  EXPECT_GE(net.core(follower).last_log_index(), 10u);
  net.check_no_lost_writes();
}

// ----------------------------------------------------------- chaos script

// The full scripted sequence from the ISSUE acceptance list, at the core
// level where it is perfectly deterministic: elect, write, kill the
// leader, re-elect within bound, split 2/3, heal, rolling restarts -
// asserting election safety, log matching and no lost acked writes
// throughout (SimNet::step checks 1-leader-per-term on every tick).
TEST(RaftChaos, ScriptedKillSplitHealRollingRestart) {
  SimNet net({1, 2, 3, 4, 5}, /*seed=*/0xC0FFEE);
  i2o::NodeId leader = net.elect();
  for (int i = 0; i < 5; ++i) {
    ASSERT_NE(net.propose_acked(leader, "pre-" + std::to_string(i)), 0u);
  }

  // -- leader kill: a new leader within 10 * election_timeout_max ticks.
  net.kill(leader);
  const i2o::NodeId dead = leader;
  i2o::NodeId new_leader = i2o::kNullNode;
  int steps = 0;
  for (; steps < 200 && new_leader == i2o::kNullNode; ++steps) {
    net.step();
    for (const i2o::NodeId id : {1, 2, 3, 4, 5}) {
      if (net.alive(id) && net.core(id).role() == Role::Leader) {
        new_leader = id;
      }
    }
  }
  ASSERT_NE(new_leader, i2o::kNullNode);
  EXPECT_LE(steps, 10 * 20) << "re-election exceeded the tick bound";
  leader = new_leader;
  for (int i = 0; i < 5; ++i) {
    ASSERT_NE(net.propose_acked(leader, "mid-" + std::to_string(i)), 0u);
  }

  // -- the dead node returns with its hard state and catches up.
  net.restart(dead);
  net.run(40);

  // -- symmetric 2/3 split; the majority keeps serving.
  std::vector<i2o::NodeId> majority{leader};
  std::vector<i2o::NodeId> minority;
  for (const i2o::NodeId id : {1, 2, 3, 4, 5}) {
    if (id == leader) {
      continue;
    }
    (majority.size() < 3 ? majority : minority).push_back(id);
  }
  net.set_partition({majority, minority});
  net.run(50);
  for (int i = 0; i < 3; ++i) {
    // The leader may have to re-earn its quorum from the majority side.
    i2o::NodeId who = i2o::kNullNode;
    for (const i2o::NodeId id : {1, 2, 3, 4, 5}) {
      if (net.alive(id) && net.core(id).role() == Role::Leader &&
          net.core(id).has_lease()) {
        who = id;
      }
    }
    if (who == i2o::kNullNode) {
      net.run(20);
      continue;
    }
    ASSERT_NE(net.propose_acked(who, "split-" + std::to_string(i)), 0u);
    leader = who;
  }

  // -- heal; everyone converges on one history.
  net.heal();
  net.run(60);
  net.check_log_match();
  net.check_no_lost_writes();

  // -- rolling restart: one node at a time, hard state preserved.
  for (const i2o::NodeId id : {1, 2, 3, 4, 5}) {
    net.kill(id);
    net.run(30);
    net.restart(id);
    net.run(30);
  }
  net.run(60);
  net.check_log_match();
  net.check_no_lost_writes();
  ASSERT_FALSE(net.acked().empty());
}

// ------------------------------------------------------------------ store

TEST(ConfigStoreTest, ApplyGetDelAndPrefixList) {
  ConfigStore store;
  Command put;
  put.op = CtrlOp::Put;
  put.key = "route/7";
  put.value = "relay:3";
  store.apply(put, 1);
  const auto hit = store.get("route/7");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->value, "relay:3");
  EXPECT_EQ(hit->version, 1u);

  Command other;
  other.op = CtrlOp::Put;
  other.key = "placement/evb";
  other.value = "node-4";
  store.apply(other, 2);
  EXPECT_EQ(store.list("route/").size(), 1u);
  EXPECT_EQ(store.applied_index(), 2u);

  Command del;
  del.op = CtrlOp::Del;
  del.key = "route/7";
  store.apply(del, 3);
  EXPECT_FALSE(store.get("route/7").has_value());
  // Idempotent delete of a missing key still advances the cursor.
  store.apply(del, 4);
  EXPECT_EQ(store.applied_index(), 4u);
}

TEST(ConfigStoreTest, SnapshotRoundTrip) {
  ConfigStore store;
  for (int i = 0; i < 6; ++i) {
    Command put;
    put.op = CtrlOp::Put;
    put.key = "k" + std::to_string(i);
    put.value = std::string(i * 17, 'x');
    store.apply(put, static_cast<std::uint64_t>(i + 1));
  }
  auto copy = ConfigStore::restore(store.encode());
  ASSERT_TRUE(copy.is_ok()) << copy.status().to_string();
  EXPECT_EQ(copy.value().size(), store.size());
  EXPECT_EQ(copy.value().applied_index(), store.applied_index());
  for (int i = 0; i < 6; ++i) {
    const auto key = "k" + std::to_string(i);
    ASSERT_TRUE(copy.value().get(key).has_value());
    EXPECT_EQ(copy.value().get(key)->value, store.get(key)->value);
    EXPECT_EQ(copy.value().get(key)->version, store.get(key)->version);
  }
}

TEST(CtrlWireCodec, RequestReplyEventRoundTrip) {
  CtrlRequest req;
  req.op = CtrlOp::Watch;
  req.key = "route/";
  req.value = "ignored-for-watch";
  req.flags = kCtrlFlagStaleOk;
  auto req_rt = CtrlRequest::decode(req.encode());
  ASSERT_TRUE(req_rt.is_ok());
  EXPECT_EQ(req_rt.value().op, req.op);
  EXPECT_EQ(req_rt.value().key, req.key);
  EXPECT_EQ(req_rt.value().value, req.value);
  EXPECT_EQ(req_rt.value().flags, req.flags);

  CtrlReply rep;
  rep.ok = true;
  rep.redirect = true;
  rep.leader_node = 4;
  rep.version = 99;
  rep.value = "payload";
  auto rep_rt = CtrlReply::decode(rep.encode());
  ASSERT_TRUE(rep_rt.is_ok());
  EXPECT_EQ(rep_rt.value().ok, rep.ok);
  EXPECT_EQ(rep_rt.value().redirect, rep.redirect);
  EXPECT_EQ(rep_rt.value().leader_node, rep.leader_node);
  EXPECT_EQ(rep_rt.value().version, rep.version);
  EXPECT_EQ(rep_rt.value().value, rep.value);

  WatchEvent ev;
  ev.key = "route/9";
  ev.value = "relay:2";
  ev.version = 12;
  ev.deleted = true;
  auto ev_rt = WatchEvent::decode(ev.encode());
  ASSERT_TRUE(ev_rt.is_ok());
  EXPECT_EQ(ev_rt.value().key, ev.key);
  EXPECT_EQ(ev_rt.value().value, ev.value);
  EXPECT_EQ(ev_rt.value().version, ev.version);
  EXPECT_EQ(ev_rt.value().deleted, ev.deleted);
}

// The REVIEW.md truncation finding: a key longer than 65535 bytes (the
// old u16 field) must replicate and decode intact - a corrupt committed
// command would be skipped on every replica and the client ack lost.
TEST(CtrlWireCodec, CommandRoundTripsOversizedKey) {
  Command cmd;
  cmd.op = CtrlOp::Put;
  cmd.key = std::string(70000, 'k');
  cmd.value = "v";
  auto rt = Command::decode(cmd.encode());
  ASSERT_TRUE(rt.is_ok()) << rt.status().to_string();
  EXPECT_EQ(rt.value().op, cmd.op);
  EXPECT_EQ(rt.value().key, cmd.key);
  EXPECT_EQ(rt.value().value, cmd.value);
}

TEST(ConfigStoreTest, SnapshotRoundTripsOversizedKey) {
  ConfigStore store;
  Command put;
  put.op = CtrlOp::Put;
  put.key = std::string(70000, 'q');
  put.value = "wide";
  store.apply(put, 1);
  auto copy = ConfigStore::restore(store.encode());
  ASSERT_TRUE(copy.is_ok()) << copy.status().to_string();
  const auto hit = copy.value().get(put.key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->value, "wide");
}

}  // namespace
}  // namespace xdaq::ctrl
