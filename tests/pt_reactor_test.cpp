// pt_reactor_test.cpp - the C1M front end's QoS machinery over real
// sockets: pool-exhaustion parking (the busy-wake regression), the
// credit window (stall at zero, resume on grant), priority-aware
// overload shedding, and slow-consumer isolation through the fault
// decorator.
#include "pt/tcp_pt.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "core/requester.hpp"
#include "core/transport.hpp"
#include "i2o/frame.hpp"
#include "i2o/wire.hpp"
#include "netio/socket.hpp"
#include "pt/fault_pt.hpp"
#include "test_devices.hpp"

namespace xdaq::pt {
namespace {

using core::Requester;
using core::TransportConfig;
using xdaq::testing::CounterDevice;
using xdaq::testing::EchoDevice;
using xdaq::testing::kXfnCount;
using xdaq::testing::kXfnEcho;

constexpr std::uint16_t kXfnHold = 0x0042;

/// Retains every delivered frame (pinning its pooled rx block) until
/// release(); counts deliveries throughout.
class HoldDevice : public core::Device {
 public:
  HoldDevice() : Device("HoldDevice") {
    bind(i2o::OrgId::kTest, kXfnHold, [this](const core::MessageContext& c) {
      ++count_;
      if (holding_.load(std::memory_order_relaxed)) {
        const std::scoped_lock lock(mutex_);
        held_.push_back(c.frame);  // FrameRef copy: block stays allocated
      }
    });
  }

  void release() {
    holding_.store(false, std::memory_order_relaxed);
    const std::scoped_lock lock(mutex_);
    held_.clear();  // refs drop -> blocks reclaim -> transport unparks
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<bool> holding_{true};
  std::mutex mutex_;
  std::vector<mem::FrameRef> held_;
};

/// Encodes one private test frame (header + payload) ready for the wire.
std::vector<std::byte> make_data_frame(i2o::Tid target, std::uint16_t xfn,
                                       std::size_t payload_bytes) {
  std::vector<std::byte> frame(i2o::kPrivateHeaderBytes + payload_bytes);
  i2o::FrameHeader hdr;
  hdr.function = static_cast<std::uint8_t>(i2o::Function::Private);
  hdr.organization = static_cast<std::uint16_t>(i2o::OrgId::kTest);
  hdr.xfunction = xfn;
  hdr.target = target;
  EXPECT_TRUE(i2o::encode_header(hdr, frame).is_ok());
  return frame;
}

/// Raw wire client: hello handshake as `node`, then length-prefixed
/// frames via send_frame().
struct RawClient {
  netio::TcpStream stream;

  static Result<RawClient> connect(std::uint16_t port, i2o::NodeId node) {
    auto s = netio::TcpStream::connect("127.0.0.1", port);
    if (!s.is_ok()) {
      return s.status();
    }
    RawClient c{std::move(s).value()};
    std::array<std::byte, 6> hello{};
    i2o::put_u32(hello, 0, 0x58444151);  // "XDAQ"
    i2o::put_u16(hello, 4, node);
    const Status st = c.stream.write_all(hello);
    if (!st.is_ok()) {
      return st;
    }
    return c;
  }

  Status send_frame(std::span<const std::byte> frame) {
    std::array<std::byte, 4> prefix{};
    i2o::put_u32(prefix, 0, static_cast<std::uint32_t>(frame.size()));
    return stream.write_all2(prefix, frame);
  }
};

template <typename Pred>
bool wait_until(Pred pred, std::chrono::milliseconds deadline) {
  const auto until = std::chrono::steady_clock::now() + deadline;
  while (!pred()) {
    if (std::chrono::steady_clock::now() > until) {
      return false;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return true;
}

// ------------------------------------------------- pool-exhaustion park

// Regression for the reactor rewrite's reason to exist: with every pooled
// rx block pinned by a consumer, the old level-triggered loop would wake
// on the readable fd, fail the allocation and wake again - a busy loop
// burning the core the dispatcher needs. The reactor must park the
// connection (disarm read interest) after at most one extra wakeup and
// re-arm it only when the pool reclaims.
TEST(PtReactor, PoolExhaustionParksInsteadOfSpinning) {
  core::ExecutiveConfig cfg{.node_id = 1, .name = "rx"};
  // SimplePool: the 256 KiB bin (which rx blocks draw from) has only 8
  // blocks, so a handful of pinned frames exhausts it.
  cfg.pool_kind = core::ExecutiveConfig::PoolKind::Simple;
  core::Executive exec(cfg);

  TransportConfig tuning;
  tuning.heartbeat_interval = std::chrono::nanoseconds(0);  // liveness off
  auto t = std::make_unique<TcpPeerTransport>(TcpTransportConfig{}, tuning);
  TcpPeerTransport* pt = t.get();
  ASSERT_TRUE(exec.install(std::move(t), "pt_tcp").is_ok());
  auto holder = std::make_unique<HoldDevice>();
  HoldDevice* holder_raw = holder.get();
  ASSERT_TRUE(exec.install(std::move(holder), "holder").is_ok());
  const i2o::Tid holder_tid = exec.tid_of("holder").value();
  ASSERT_TRUE(exec.enable_all().is_ok());
  exec.start();

  // Flood enough 60 KiB frames to pin all eight 256 KiB rx blocks (about
  // four frames each) with plenty left over to deliver after the unpark.
  // The writer thread blocks on the kernel buffer once the receiver
  // parks; that is the point.
  constexpr int kFrames = 60;
  const auto frame = make_data_frame(holder_tid, kXfnHold, 60 * 1024);
  std::thread client([&] {
    auto c = RawClient::connect(pt->listen_port(), 7);
    ASSERT_TRUE(c.is_ok()) << c.status().to_string();
    for (int i = 0; i < kFrames; ++i) {
      if (!c.value().send_frame(frame).is_ok()) {
        return;
      }
    }
  });

  ASSERT_TRUE(wait_until([&] { return pt->qos_stats().rx_parks >= 1; },
                         std::chrono::seconds(10)))
      << "transport never parked on pool exhaustion";
  // The regression criterion: an exhausted pool must not burn wakeups.
  // Parked means parked - the counter stays put while the pool is dry.
  const std::uint64_t parks_at_exhaustion = pt->qos_stats().rx_parks;
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  EXPECT_LE(pt->qos_stats().rx_parks, parks_at_exhaustion + 1)
      << "reactor kept waking against an exhausted pool";

  holder_raw->release();
  ASSERT_TRUE(wait_until([&] { return holder_raw->count() == kFrames; },
                         std::chrono::seconds(10)))
      << "only " << holder_raw->count() << " of " << kFrames
      << " frames delivered after reclaim";
  EXPECT_GE(pt->qos_stats().rx_unparks, 1u);
  client.join();
  exec.stop();
}

// ------------------------------------------------- credit stall / resume

// With a credit window of 8 and the receiver's grants paused, exactly one
// window of data crosses the wire and the sender's writer stalls - queue
// intact, no thread blocked. Unpausing lets the next rx burst (the
// sender's heartbeat, which is exempt from credits and must overtake the
// stalled data queue) trigger a grant, and the backlog drains.
TEST(PtReactor, CreditStallAndResumeOnGrant) {
  core::Executive a(core::ExecutiveConfig{.node_id = 1, .name = "a"});
  core::Executive b(core::ExecutiveConfig{.node_id = 2, .name = "b"});
  TransportConfig tuning;
  tuning.credit_window = 8;
  tuning.heartbeat_interval = std::chrono::milliseconds(50);
  tuning.missed_heartbeat_limit = 1000;  // liveness out of the way
  auto ta = std::make_unique<TcpPeerTransport>(TcpTransportConfig{}, tuning);
  auto tb = std::make_unique<TcpPeerTransport>(TcpTransportConfig{}, tuning);
  TcpPeerTransport* pt_a = ta.get();
  TcpPeerTransport* pt_b = tb.get();
  ASSERT_TRUE(a.install(std::move(ta), "pt_tcp").is_ok());
  ASSERT_TRUE(b.install(std::move(tb), "pt_tcp").is_ok());
  ASSERT_TRUE(a.set_route(2, pt_a->tid()).is_ok());
  ASSERT_TRUE(b.set_route(1, pt_b->tid()).is_ok());
  auto counter = std::make_unique<CounterDevice>();
  CounterDevice* counter_raw = counter.get();
  ASSERT_TRUE(b.install(std::move(counter), "counter").is_ok());
  const auto proxy =
      a.register_remote(2, b.tid_of("counter").value()).value();
  ASSERT_TRUE(a.enable_all().is_ok());
  ASSERT_TRUE(b.enable_all().is_ok());
  pt_a->add_peer(2, "127.0.0.1", pt_b->listen_port());
  pt_b->add_peer(1, "127.0.0.1", pt_a->listen_port());
  a.start();
  b.start();

  pt_b->pause_credit_grants(true);
  constexpr int kSends = 30;
  for (int i = 0; i < kSends; ++i) {
    auto frame = a.alloc_frame(16, /*is_private=*/true);
    ASSERT_TRUE(frame.is_ok());
    i2o::FrameHeader hdr;
    hdr.function = static_cast<std::uint8_t>(i2o::Function::Private);
    hdr.organization = static_cast<std::uint16_t>(i2o::OrgId::kTest);
    hdr.xfunction = kXfnCount;
    hdr.target = proxy;
    ASSERT_TRUE(i2o::encode_header(hdr, frame.value().bytes()).is_ok());
    ASSERT_TRUE(a.frame_send(std::move(frame).value()).is_ok());
  }

  // Exactly one window arrives, then the writer stalls at zero credits.
  ASSERT_TRUE(wait_until([&] { return counter_raw->count() == 8; },
                         std::chrono::seconds(5)))
      << "got " << counter_raw->count() << " frames, wanted the window of 8";
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  EXPECT_EQ(counter_raw->count(), 8u)
      << "frames crossed the wire without credits";
  EXPECT_GE(pt_a->qos_stats().credit_stalls, 1u);

  // Grants resume; the stalled backlog must drain completely.
  pt_b->pause_credit_grants(false);
  ASSERT_TRUE(wait_until([&] { return counter_raw->count() == kSends; },
                         std::chrono::seconds(10)))
      << "stalled at " << counter_raw->count() << " after grant resume";
  EXPECT_GE(pt_b->qos_stats().credit_grants_sent, 1u);
  EXPECT_GE(pt_a->qos_stats().credit_grants_rx, 1u);
  a.stop();
  b.stop();
}

// --------------------------------------------------- priority shed order

// The shed ladder itself is pure: priority p is admitted until the
// backlog reaches limit * (7 - p) / 7, so under overload lower-priority
// traffic sheds strictly first.
TEST(PtReactor, ShedThresholdLadderIsMonotonic) {
  for (unsigned p = 0; p < 7; ++p) {
    EXPECT_EQ(core::shed_threshold(7000, p), 7000u * (7 - p) / 7);
    if (p > 0) {
      EXPECT_LT(core::shed_threshold(7000, p),
                core::shed_threshold(7000, p - 1));
    }
  }
  // Saturates instead of underflowing past the last priority.
  EXPECT_EQ(core::shed_threshold(7000, 99), core::shed_threshold(7000, 6));
  EXPECT_EQ(core::shed_threshold(0, 3), 0u);
}

// Behavioral half: a credit-stalled connection backs up until data sends
// (default priority, threshold 4/7) are refused with ResourceExhausted,
// while control frames - exempt from credits and shed at the higher 6/7
// rung - still go straight to the wire past the stalled data queue.
TEST(PtReactor, OverloadShedsDataBeforeControl) {
  core::Executive a(core::ExecutiveConfig{.node_id = 1, .name = "a"});
  core::Executive b(core::ExecutiveConfig{.node_id = 2, .name = "b"});
  TransportConfig tuning;
  tuning.credit_window = 4;
  tuning.tx_buffer_bytes = 32 * 1024;
  tuning.heartbeat_interval = std::chrono::nanoseconds(0);
  auto ta = std::make_unique<TcpPeerTransport>(TcpTransportConfig{}, tuning);
  auto tb = std::make_unique<TcpPeerTransport>(TcpTransportConfig{}, tuning);
  TcpPeerTransport* pt_a = ta.get();
  TcpPeerTransport* pt_b = tb.get();
  ASSERT_TRUE(a.install(std::move(ta), "pt_tcp").is_ok());
  ASSERT_TRUE(b.install(std::move(tb), "pt_tcp").is_ok());
  ASSERT_TRUE(a.set_route(2, pt_a->tid()).is_ok());
  ASSERT_TRUE(b.set_route(1, pt_b->tid()).is_ok());
  ASSERT_TRUE(a.enable(pt_a->tid()).is_ok());
  ASSERT_TRUE(b.enable(pt_b->tid()).is_ok());
  pt_a->add_peer(2, "127.0.0.1", pt_b->listen_port());
  pt_b->add_peer(1, "127.0.0.1", pt_a->listen_port());
  a.start();
  b.start();

  pt_b->pause_credit_grants(true);
  // 4 KiB data frames: the first window of 4 reaches the wire, the rest
  // queue until the backlog crosses the 4/7 data rung (~18 KiB).
  const auto data = make_data_frame(0x0123, kXfnCount, 4 * 1024);
  Status shed = Status::ok();
  int accepted = 0;
  for (int i = 0; i < 40; ++i) {
    const Status st = pt_a->transport_send(2, data);
    if (!st.is_ok()) {
      shed = st;
      break;
    }
    ++accepted;
  }
  ASSERT_EQ(shed.code(), Errc::ResourceExhausted)
      << "data sends never shed (" << accepted << " accepted)";
  EXPECT_GE(accepted, 4);  // at least the credit window got through
  EXPECT_GE(pt_a->qos_stats().tx_shed, 1u);

  // Freeze the backlog before probing further: the writer may still be
  // draining the initial credit window, and those departures can dip the
  // backlog back under the data rung. Once it stalls at zero credits the
  // queue is frozen (grants are paused), so top the backlog back over the
  // rung and the remaining expectations are deterministic.
  ASSERT_TRUE(wait_until([&] { return pt_a->qos_stats().credit_stalls >= 1; },
                         std::chrono::seconds(5)));
  for (int i = 0; i < 8; ++i) {
    if (!pt_a->transport_send(2, data).is_ok()) {
      break;
    }
  }
  ASSERT_EQ(pt_a->transport_send(2, data).code(), Errc::ResourceExhausted);

  // Control still flows: exempt from credits, and its 6/7 rung sits well
  // above the backlog that data is already refused at.
  std::vector<std::byte> control(i2o::kStdHeaderBytes);
  i2o::FrameHeader hdr;
  hdr.function = 0;  // not Private => control plane
  hdr.target = 0x0123;
  ASSERT_TRUE(i2o::encode_header(hdr, control).is_ok());
  EXPECT_TRUE(pt_a->transport_send(2, control).is_ok())
      << "control frame shed while only the data rung is saturated";
  // Data stays shed afterwards - the control pass-through did not reset
  // the backlog accounting.
  EXPECT_EQ(pt_a->transport_send(2, data).code(), Errc::ResourceExhausted);
  a.stop();
  b.stop();
}

// ------------------------------------------------ slow-consumer isolation

// One peer that accepts a connection and never drains it (a dialed
// listener whose backlog socket nobody reads) must not degrade service to
// a healthy peer: its connection backs up, crosses the tx cap and sheds,
// while echo calls to the healthy node keep completing promptly. The
// whole exercise runs through the fault decorator, proving the QoS
// surface composes with the injection layer.
TEST(PtReactor, SlowConsumerShedsWithoutStallingHealthyPeer) {
  core::Executive a(core::ExecutiveConfig{.node_id = 1, .name = "a"});
  core::Executive b(core::ExecutiveConfig{.node_id = 2, .name = "b"});
  TransportConfig tuning;
  tuning.tx_buffer_bytes = 64 * 1024;
  tuning.heartbeat_interval = std::chrono::nanoseconds(0);
  auto ta = std::make_unique<TcpPeerTransport>(TcpTransportConfig{}, tuning);
  auto tb = std::make_unique<TcpPeerTransport>(TcpTransportConfig{}, tuning);
  TcpPeerTransport* pt_a = ta.get();
  TcpPeerTransport* pt_b = tb.get();
  ASSERT_TRUE(a.install(std::move(ta), "pt_tcp").is_ok());
  ASSERT_TRUE(b.install(std::move(tb), "pt_tcp").is_ok());
  auto fault = std::make_unique<FaultInjectingTransport>(*pt_a, FaultPlan{});
  FaultInjectingTransport* fault_raw = fault.get();
  ASSERT_TRUE(a.install(std::move(fault), "pt_fault").is_ok());
  ASSERT_TRUE(a.set_route(2, fault_raw->tid()).is_ok());
  ASSERT_TRUE(a.set_route(3, fault_raw->tid()).is_ok());
  ASSERT_TRUE(b.set_route(1, pt_b->tid()).is_ok());
  ASSERT_TRUE(b.install(std::make_unique<EchoDevice>(), "echo").is_ok());
  auto req = std::make_unique<Requester>();
  Requester* req_raw = req.get();
  ASSERT_TRUE(a.install(std::move(req), "req").is_ok());
  const auto proxy = a.register_remote(2, b.tid_of("echo").value()).value();
  ASSERT_TRUE(a.enable_all().is_ok());
  ASSERT_TRUE(b.enable_all().is_ok());
  pt_a->add_peer(2, "127.0.0.1", pt_b->listen_port());
  pt_b->add_peer(1, "127.0.0.1", pt_a->listen_port());

  // Node 3 is a listener whose accept queue nobody ever services: the
  // dial succeeds, the kernel buffers fill, and the connection stalls.
  auto slow = netio::TcpListener::bind(0);
  ASSERT_TRUE(slow.is_ok());
  pt_a->add_peer(3, "127.0.0.1", slow.value().port());
  a.start();
  b.start();

  // Flood the slow consumer until the tx cap sheds. Every send routes
  // through the decorator (empty plan: pure passthrough).
  const auto flood = make_data_frame(0x0123, kXfnCount, 16 * 1024);
  Status shed = Status::ok();
  for (int i = 0; i < 2000; ++i) {
    const Status st = fault_raw->transport_send(3, flood);
    if (!st.is_ok()) {
      shed = st;
      break;
    }
  }
  ASSERT_EQ(shed.code(), Errc::ResourceExhausted)
      << "slow consumer never tripped the tx cap";
  EXPECT_GE(pt_a->qos_stats().tx_shed, 1u);
  EXPECT_GT(fault_raw->inject_stats().sends, 0u);

  // The healthy peer is unaffected: echo calls complete promptly while
  // node 3's connection sits fully backed up (and stays registered - shed
  // is not failure, the connection is intact awaiting drain).
  for (int i = 0; i < 5; ++i) {
    auto reply = req_raw->call_private(
        proxy, i2o::OrgId::kTest, kXfnEcho, {},
        core::CallOptions{.timeout = std::chrono::seconds(2)});
    ASSERT_TRUE(reply.is_ok())
        << "healthy peer starved by a slow consumer: "
        << reply.status().to_string();
  }
  EXPECT_GE(pt_a->connection_count(), 2u);
  a.stop();
  b.stop();
}

}  // namespace
}  // namespace xdaq::pt
