#include "pt/local_bus.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "core/requester.hpp"
#include "test_devices.hpp"
#include "util/random.hpp"

namespace xdaq::pt {
namespace {

using core::Requester;
using xdaq::testing::EchoDevice;
using xdaq::testing::kXfnEcho;

struct TwoNodes {
  LocalBus bus;
  core::Executive a;
  core::Executive b;
  i2o::Tid pt_a = 0;
  i2o::Tid pt_b = 0;
  LocalBusTransport* pt_a_dev = nullptr;
  LocalBusTransport* pt_b_dev = nullptr;

  TwoNodes()
      : a(core::ExecutiveConfig{.node_id = 1, .name = "a"}),
        b(core::ExecutiveConfig{.node_id = 2, .name = "b"}) {
    auto ta = std::make_unique<LocalBusTransport>(bus);
    auto tb = std::make_unique<LocalBusTransport>(bus);
    pt_a_dev = ta.get();
    pt_b_dev = tb.get();
    pt_a = a.install(std::move(ta), "pt").value();
    pt_b = b.install(std::move(tb), "pt").value();
    EXPECT_TRUE(a.set_route(2, pt_a).is_ok());
    EXPECT_TRUE(b.set_route(1, pt_b).is_ok());
  }
};

std::int64_t metric_value(const core::TransportDevice& pt,
                          const std::string& prefix,
                          const std::string& name) {
  std::vector<obs::Sample> out;
  pt.append_metrics(prefix, out);
  for (const obs::Sample& s : out) {
    if (s.name == prefix + name) {
      return s.value;
    }
  }
  ADD_FAILURE() << "metric " << prefix << name << " not reported";
  return -1;
}

TEST(LocalBus, AttachesOnPlugin) {
  TwoNodes nodes;
  EXPECT_EQ(nodes.bus.attached(), 2u);
}

TEST(LocalBus, DuplicateNodeIdDoesNotAttachTwice) {
  LocalBus bus;
  core::Executive a(core::ExecutiveConfig{.node_id = 1, .name = "a"});
  core::Executive dup(core::ExecutiveConfig{.node_id = 1, .name = "dup"});
  ASSERT_TRUE(
      a.install(std::make_unique<LocalBusTransport>(bus), "pt").is_ok());
  ASSERT_TRUE(
      dup.install(std::make_unique<LocalBusTransport>(bus), "pt").is_ok());
  EXPECT_EQ(bus.attached(), 1u);  // second attach refused, first stays
}

TEST(LocalBus, EchoAcrossBus) {
  TwoNodes nodes;
  ASSERT_TRUE(
      nodes.b.install(std::make_unique<EchoDevice>(), "echo").is_ok());
  auto req = std::make_unique<Requester>();
  Requester* req_raw = req.get();
  ASSERT_TRUE(nodes.a.install(std::move(req), "req").is_ok());
  const auto proxy =
      nodes.a.register_remote(2, nodes.b.tid_of("echo").value()).value();
  ASSERT_TRUE(nodes.a.enable_all().is_ok());
  ASSERT_TRUE(nodes.b.enable_all().is_ok());
  nodes.a.start();
  nodes.b.start();

  const auto payload = make_payload(128, 3);
  std::vector<std::byte> bytes(128);
  std::memcpy(bytes.data(), payload.data(), 128);
  auto reply = req_raw->call_private(proxy, i2o::OrgId::kTest, kXfnEcho,
                                     bytes, xdaq::core::CallOptions{.timeout = std::chrono::seconds(2)});
  nodes.a.stop();
  nodes.b.stop();
  ASSERT_TRUE(reply.is_ok()) << reply.status().to_string();
  EXPECT_EQ(std::memcmp(reply.value().payload.data(), bytes.data(), 128), 0);
}

// The tentpole invariant for in-process peers: a frame posted across the
// local bus is delivered out of the SENDER's pooled block - request and
// reply both ride the zero-copy path, so neither transport records a
// single software copy.
TEST(LocalBus, EchoRoundTripIsZeroCopy) {
  TwoNodes nodes;
  ASSERT_TRUE(
      nodes.b.install(std::make_unique<EchoDevice>(), "echo").is_ok());
  auto req = std::make_unique<Requester>();
  Requester* req_raw = req.get();
  ASSERT_TRUE(nodes.a.install(std::move(req), "req").is_ok());
  const auto proxy =
      nodes.a.register_remote(2, nodes.b.tid_of("echo").value()).value();
  ASSERT_TRUE(nodes.a.enable_all().is_ok());
  ASSERT_TRUE(nodes.b.enable_all().is_ok());
  nodes.a.start();
  nodes.b.start();

  const auto payload = make_payload(512, 5);
  std::vector<std::byte> bytes(512);
  std::memcpy(bytes.data(), payload.data(), 512);
  for (int i = 0; i < 8; ++i) {
    auto reply = req_raw->call_private(
        proxy, i2o::OrgId::kTest, kXfnEcho, bytes,
        xdaq::core::CallOptions{.timeout = std::chrono::seconds(2)});
    ASSERT_TRUE(reply.is_ok()) << reply.status().to_string();
  }
  nodes.a.stop();
  nodes.b.stop();

  EXPECT_EQ(metric_value(*nodes.pt_a_dev, "pt.local.a", ".rx_copies"), 0);
  EXPECT_EQ(metric_value(*nodes.pt_a_dev, "pt.local.a", ".tx_copies"), 0);
  EXPECT_EQ(metric_value(*nodes.pt_b_dev, "pt.local.b", ".rx_copies"), 0);
  EXPECT_EQ(metric_value(*nodes.pt_b_dev, "pt.local.b", ".tx_copies"), 0);
  // ... and traffic actually flowed (8 requests + 8 replies forwarded).
  EXPECT_GE(metric_value(*nodes.pt_a_dev, "pt.local.a", ".forwarded"), 8);
  EXPECT_GE(metric_value(*nodes.pt_b_dev, "pt.local.b", ".forwarded"), 8);
}

TEST(LocalBus, SendToUnknownNodeIsUnroutable) {
  TwoNodes nodes;
  ASSERT_TRUE(nodes.a.set_route(9, nodes.pt_a).is_ok());
  auto proxy = nodes.a.register_remote(9, 5).value();
  auto frame = nodes.a.alloc_frame(0, true);
  ASSERT_TRUE(frame.is_ok());
  i2o::FrameHeader hdr;
  hdr.function = static_cast<std::uint8_t>(i2o::Function::Private);
  hdr.organization = static_cast<std::uint16_t>(i2o::OrgId::kTest);
  hdr.xfunction = kXfnEcho;
  hdr.target = proxy;
  auto span = frame.value().bytes();
  ASSERT_TRUE(i2o::encode_header(hdr, span).is_ok());
  EXPECT_EQ(nodes.a.frame_send(std::move(frame).value()).code(),
            Errc::Unroutable);
}

TEST(LocalBus, DetachOnDestruction) {
  LocalBus bus;
  {
    core::Executive a(core::ExecutiveConfig{.node_id = 1, .name = "a"});
    ASSERT_TRUE(
        a.install(std::make_unique<LocalBusTransport>(bus), "pt").is_ok());
    EXPECT_EQ(bus.attached(), 1u);
  }
  EXPECT_EQ(bus.attached(), 0u);
}

}  // namespace
}  // namespace xdaq::pt
