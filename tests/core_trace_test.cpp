// core_trace_test.cpp - the dispatch trace ring (system-management
// diagnostics, paper section 2's third requirement dimension).
#include <gtest/gtest.h>

#include "core/executive.hpp"
#include "core/requester.hpp"
#include "test_devices.hpp"

namespace xdaq::core {
namespace {

using xdaq::testing::CounterDevice;
using xdaq::testing::EchoDevice;
using xdaq::testing::kXfnCount;
using xdaq::testing::kXfnEcho;
using xdaq::testing::pump_until;

Status send_count(Executive& exec, i2o::Tid target) {
  auto frame = exec.alloc_frame(0, true);
  if (!frame.is_ok()) {
    return frame.status();
  }
  i2o::FrameHeader hdr;
  hdr.function = static_cast<std::uint8_t>(i2o::Function::Private);
  hdr.organization = static_cast<std::uint16_t>(i2o::OrgId::kTest);
  hdr.xfunction = kXfnCount;
  hdr.target = target;
  auto bytes = frame.value().bytes();
  if (Status st = i2o::encode_header(hdr, bytes); !st.is_ok()) {
    return st;
  }
  return exec.frame_send(std::move(frame).value());
}

TEST(DispatchTrace, DisabledByDefault) {
  Executive exec;
  auto dev = std::make_unique<CounterDevice>();
  CounterDevice* counter = dev.get();
  const auto tid = exec.install(std::move(dev), "cnt").value();
  ASSERT_TRUE(exec.enable(tid).is_ok());
  ASSERT_TRUE(send_count(exec, tid).is_ok());
  ASSERT_TRUE(pump_until(exec, [&] { return counter->count() == 1; }));
  EXPECT_TRUE(exec.recent_dispatches().empty());
}

TEST(DispatchTrace, RecordsDeliveredMessages) {
  ExecutiveConfig cfg;
  cfg.trace_capacity = 16;
  Executive exec(cfg);
  auto dev = std::make_unique<CounterDevice>();
  CounterDevice* counter = dev.get();
  const auto tid = exec.install(std::move(dev), "cnt").value();
  ASSERT_TRUE(exec.enable(tid).is_ok());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(send_count(exec, tid).is_ok());
  }
  ASSERT_TRUE(pump_until(exec, [&] { return counter->count() == 3; }));

  const auto entries = exec.recent_dispatches();
  ASSERT_EQ(entries.size(), 3u);
  for (const TraceEntry& e : entries) {
    EXPECT_EQ(e.target, tid);
    EXPECT_EQ(e.xfunction, kXfnCount);
    EXPECT_EQ(e.organization,
              static_cast<std::uint16_t>(i2o::OrgId::kTest));
    EXPECT_EQ(e.outcome, TraceEntry::Outcome::Delivered);
    EXPECT_GT(e.t_ns, 0u);
  }
  // Oldest first: timestamps are non-decreasing.
  EXPECT_LE(entries[0].t_ns, entries[2].t_ns);
}

TEST(DispatchTrace, RingWrapsKeepingNewest) {
  ExecutiveConfig cfg;
  cfg.trace_capacity = 4;
  Executive exec(cfg);
  auto dev = std::make_unique<CounterDevice>();
  CounterDevice* counter = dev.get();
  const auto tid = exec.install(std::move(dev), "cnt").value();
  ASSERT_TRUE(exec.enable(tid).is_ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(send_count(exec, tid).is_ok());
  }
  ASSERT_TRUE(pump_until(exec, [&] { return counter->count() == 10; }));
  EXPECT_EQ(exec.recent_dispatches().size(), 4u);
}

TEST(DispatchTrace, RecordsFailuresAndDrops) {
  ExecutiveConfig cfg;
  cfg.trace_capacity = 16;
  Executive exec(cfg);
  const auto echo_tid =
      exec.install(std::make_unique<EchoDevice>(), "echo").value();
  auto req = std::make_unique<Requester>();
  Requester* req_raw = req.get();
  ASSERT_TRUE(exec.install(std::move(req), "req").is_ok());
  // echo NOT enabled -> the request is fail-replied.
  exec.start();
  auto reply = req_raw->call_private(echo_tid, i2o::OrgId::kTest, kXfnEcho,
                                     {}, xdaq::core::CallOptions{.timeout = std::chrono::seconds(2)});
  exec.stop();
  ASSERT_TRUE(reply.is_ok());
  EXPECT_TRUE(reply.value().failed());

  bool saw_fail = false;
  bool saw_reply = false;
  for (const TraceEntry& e : exec.recent_dispatches()) {
    if (e.outcome == TraceEntry::Outcome::FailReplied) {
      saw_fail = true;
    }
    if (e.is_reply) {
      saw_reply = true;  // the failure reply delivered to the requester
    }
  }
  EXPECT_TRUE(saw_fail);
  EXPECT_TRUE(saw_reply);
}

}  // namespace
}  // namespace xdaq::core
