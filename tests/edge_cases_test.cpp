// edge_cases_test.cpp - additional edge-case coverage across modules:
// expression-evaluator sweeps, marshalling corner values, large socket
// transfers, and concurrent fabric senders.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <thread>

#include "gmsim/gmsim.hpp"
#include "netio/socket.hpp"
#include "rmi/marshal.hpp"
#include "util/random.hpp"
#include "xcl/interp.hpp"

namespace xdaq {
namespace {

// ------------------------------------------------------------- xcl expr

struct ExprCase {
  const char* expr;
  const char* expected;
};

class ExprP : public ::testing::TestWithParam<ExprCase> {};

TEST_P(ExprP, Evaluates) {
  xcl::Interp in;
  xcl::EvalResult r = in.eval(std::string("expr ") + GetParam().expr);
  ASSERT_TRUE(r.is_ok()) << GetParam().expr << " -> " << r.value;
  EXPECT_EQ(r.value, GetParam().expected) << GetParam().expr;
}

INSTANTIATE_TEST_SUITE_P(
    Arithmetic, ExprP,
    ::testing::Values(ExprCase{"2 + 3 * 4 - 1", "13"},
                      ExprCase{"(2 + 3) * (4 - 1)", "15"},
                      ExprCase{"10 / 3", "3"},
                      ExprCase{"10.0 / 4", "2.5"},
                      ExprCase{"10 % 3", "1"},
                      ExprCase{"-10 % 3", "-1"},
                      ExprCase{"2 * -3", "-6"},
                      ExprCase{"- - 5", "5"},
                      ExprCase{"0x1F + 1", "32"},
                      ExprCase{"1e3 + 1", "1001"},
                      ExprCase{"0.5 + 0.25", "0.75"}));

INSTANTIATE_TEST_SUITE_P(
    Logic, ExprP,
    ::testing::Values(ExprCase{"1 < 2 && 2 < 3", "1"},
                      ExprCase{"1 < 2 && 3 < 2", "0"},
                      ExprCase{"1 > 2 || 3 > 2", "1"},
                      ExprCase{"!(1 == 1)", "0"},
                      ExprCase{"!!7", "1"},
                      ExprCase{"3 >= 3", "1"},
                      ExprCase{"3 <= 2", "0"},
                      ExprCase{"2.5 == 2.5", "1"},
                      ExprCase{"1 && 1 || 0 && 0", "1"}));

INSTANTIATE_TEST_SUITE_P(
    Strings, ExprP,
    ::testing::Values(ExprCase{"abc eq abc", "1"},
                      ExprCase{"abc eq abd", "0"},
                      ExprCase{"abc ne abd", "1"},
                      // Quoted operands need the braced form (as in Tcl:
                      // the word parser would consume bare quotes).
                      ExprCase{"{\"a b\" eq \"a b\"}", "1"},
                      ExprCase{"Enabled eq Enabled", "1"}));

TEST(XclExpr, SubstitutionInsideExpression) {
  xcl::Interp in;
  ASSERT_TRUE(in.eval("set n 6").is_ok());
  ASSERT_TRUE(in.eval("proc twice {x} {return [expr $x * 2]}").is_ok());
  xcl::EvalResult r = in.eval("expr {[twice $n] + 1}");
  ASSERT_TRUE(r.is_ok()) << r.value;
  EXPECT_EQ(r.value, "13");
}

TEST(XclInterp, DeeplyNestedCommandSubstitution) {
  xcl::Interp in;
  xcl::EvalResult r =
      in.eval("expr [expr [expr [expr 1 + 1] + 1] + 1]");
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value, "4");
}

TEST(XclInterp, BracesInsideQuotedStringsAreLiteral) {
  xcl::Interp in;
  xcl::EvalResult r = in.eval("set x \"a { b\"; set x");
  ASSERT_TRUE(r.is_ok()) << r.value;
  EXPECT_EQ(r.value, "a { b");
}

// ------------------------------------------------------------- rmi marshal

TEST(MarshalEdge, DoubleSpecialValues) {
  rmi::Marshaller m;
  m.put_f64(std::numeric_limits<double>::infinity());
  m.put_f64(-std::numeric_limits<double>::infinity());
  m.put_f64(std::numeric_limits<double>::quiet_NaN());
  m.put_f64(0.0);
  m.put_f64(-0.0);
  m.put_f64(std::numeric_limits<double>::denorm_min());

  rmi::Unmarshaller u(m.bytes());
  EXPECT_TRUE(std::isinf(u.get_f64().value()));
  EXPECT_EQ(u.get_f64().value(), -std::numeric_limits<double>::infinity());
  EXPECT_TRUE(std::isnan(u.get_f64().value()));
  EXPECT_EQ(u.get_f64().value(), 0.0);
  const double neg_zero = u.get_f64().value();
  EXPECT_EQ(neg_zero, 0.0);
  EXPECT_TRUE(std::signbit(neg_zero));
  EXPECT_EQ(u.get_f64().value(),
            std::numeric_limits<double>::denorm_min());
}

TEST(MarshalEdge, EmptyStringAndBytes) {
  rmi::Marshaller m;
  m.put_string("");
  m.put_bytes({});
  m.put_string("after");
  rmi::Unmarshaller u(m.bytes());
  EXPECT_EQ(u.get_string().value(), "");
  EXPECT_TRUE(u.view_bytes().value().empty());
  EXPECT_EQ(u.get_string().value(), "after");
  EXPECT_TRUE(u.exhausted());
}

TEST(MarshalEdge, IntegerExtremes) {
  rmi::Marshaller m;
  m.put_i64(std::numeric_limits<std::int64_t>::min());
  m.put_i64(std::numeric_limits<std::int64_t>::max());
  m.put_i32(std::numeric_limits<std::int32_t>::min());
  m.put_u64(std::numeric_limits<std::uint64_t>::max());
  rmi::Unmarshaller u(m.bytes());
  EXPECT_EQ(u.get_i64().value(), std::numeric_limits<std::int64_t>::min());
  EXPECT_EQ(u.get_i64().value(), std::numeric_limits<std::int64_t>::max());
  EXPECT_EQ(u.get_i32().value(), std::numeric_limits<std::int32_t>::min());
  EXPECT_EQ(u.get_u64().value(),
            std::numeric_limits<std::uint64_t>::max());
}

TEST(MarshalEdge, UnicodeBytesInString) {
  rmi::Marshaller m;
  const std::string s = "\xC3\xA9v\xC3\xA9nement \xF0\x9F\x94\xA5";
  m.put_string(s);
  rmi::Unmarshaller u(m.bytes());
  EXPECT_EQ(u.get_string().value(), s);
}

// ------------------------------------------------------------------ netio

TEST(NetioEdge, MultiMegabyteTransferSurvivesPartialWrites) {
  auto listener = netio::TcpListener::bind(0);
  ASSERT_TRUE(listener.is_ok());
  const std::uint16_t port = listener.value().port();
  constexpr std::size_t kSize = 4 * 1024 * 1024;  // >> socket buffers

  std::thread server([&listener] {
    auto conn = listener.value().accept();
    ASSERT_TRUE(conn.is_ok());
    std::vector<std::byte> buf(kSize);
    ASSERT_TRUE(conn.value().read_exact(buf).is_ok());
    ASSERT_TRUE(conn.value().write_all(buf).is_ok());
  });

  auto client = netio::TcpStream::connect("127.0.0.1", port);
  ASSERT_TRUE(client.is_ok());
  const auto raw = make_payload(kSize, 42);
  std::vector<std::byte> data(kSize);
  std::memcpy(data.data(), raw.data(), kSize);

  // Echo requires concurrent read+write beyond buffer sizes; use a
  // writer thread so neither side deadlocks on full buffers.
  std::thread writer([&client, &data] {
    ASSERT_TRUE(client.value().write_all(data).is_ok());
  });
  std::vector<std::byte> echo(kSize);
  ASSERT_TRUE(client.value().read_exact(echo).is_ok());
  writer.join();
  server.join();
  EXPECT_EQ(std::memcmp(echo.data(), data.data(), kSize), 0);
}

// ------------------------------------------------------------------ gmsim

TEST(GmsimEdge, ConcurrentSendersToOnePort) {
  gmsim::FabricConfig cfg;
  cfg.send_tokens = 512;
  gmsim::Fabric fabric(cfg);
  auto rx = fabric.open_port(1).value();
  constexpr int kSenders = 4;
  constexpr int kPerSender = 2000;

  std::vector<std::thread> threads;
  threads.reserve(kSenders);
  for (int s = 0; s < kSenders; ++s) {
    threads.emplace_back([&fabric, s] {
      auto port = fabric.open_port(static_cast<gmsim::PortId>(10 + s))
                      .value();
      std::vector<std::byte> msg(8, static_cast<std::byte>(s));
      for (int i = 0; i < kPerSender; ++i) {
        while (!port->send(1, msg).is_ok()) {
          std::this_thread::yield();
        }
      }
    });
  }

  std::vector<std::byte> buf(64);
  int received = 0;
  int per_sender[kSenders] = {};
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (received < kSenders * kPerSender &&
         std::chrono::steady_clock::now() < deadline) {
    rx->provide_receive_buffer(buf);
    auto ev = rx->receive(std::chrono::milliseconds(100));
    if (ev.has_value()) {
      ++received;
      ++per_sender[static_cast<int>(buf[0])];
    }
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(received, kSenders * kPerSender);
  for (int s = 0; s < kSenders; ++s) {
    EXPECT_EQ(per_sender[s], kPerSender) << "sender " << s;
  }
}

TEST(GmsimEdge, LatencyModelOrderingPreserved) {
  gmsim::FabricConfig cfg;
  cfg.ns_per_byte = 100.0;  // bigger messages arrive later
  gmsim::Fabric fabric(cfg);
  auto a = fabric.open_port(1).value();
  auto b = fabric.open_port(2).value();
  // FIFO per sender holds even when a later small message would be
  // "ready" before an earlier large one.
  std::vector<std::byte> big(4096, std::byte{1});
  std::vector<std::byte> small(8, std::byte{2});
  ASSERT_TRUE(a->send(2, big).is_ok());
  ASSERT_TRUE(a->send(2, small).is_ok());
  std::vector<std::byte> rx(8192);
  b->provide_receive_buffer(rx);
  auto first = b->receive(std::chrono::seconds(5));
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->length, 4096u);  // FIFO: the big one first
  b->provide_receive_buffer(rx);
  auto second = b->receive(std::chrono::seconds(5));
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->length, 8u);
}

}  // namespace
}  // namespace xdaq
