// core_probes_test.cpp - whitebox instrumentation (the Table 1 machinery).
#include <gtest/gtest.h>

#include "core/probes.hpp"
#include "core/requester.hpp"
#include "pt/cluster.hpp"
#include "test_devices.hpp"

namespace xdaq::core {
namespace {

using xdaq::testing::EchoDevice;
using xdaq::testing::kXfnEcho;

TEST(ProbeLog, CapacityBoundsAppends) {
  ProbeLog log(2);
  DispatchProbe p;
  p.t_wire = 1;
  EXPECT_TRUE(log.append(p));
  EXPECT_TRUE(log.append(p));
  EXPECT_FALSE(log.append(p));  // full: dropped, no reallocation
  EXPECT_EQ(log.records().size(), 2u);
  EXPECT_EQ(log.dropped(), 1u);
  log.clear();
  EXPECT_TRUE(log.records().empty());
  EXPECT_EQ(log.dropped(), 0u);
  EXPECT_TRUE(log.append(p));
}

TEST(ProbeLog, HardCapHeldAcrossSetCapacity) {
  ProbeLog log(4);
  EXPECT_EQ(log.capacity(), 4u);
  DispatchProbe p;
  // Shrink: the new bound must hold even though the vector's underlying
  // allocation (which reserve() may have over-sized) could fit more.
  log.set_capacity(2);
  EXPECT_EQ(log.capacity(), 2u);
  EXPECT_TRUE(log.append(p));
  EXPECT_TRUE(log.append(p));
  EXPECT_FALSE(log.append(p));
  EXPECT_EQ(log.records().size(), 2u);
  // Repeated re-caps never let the log creep past the configured bound
  // (dropped() accumulates across set_capacity; only clear() resets it).
  const std::uint64_t base = log.dropped();
  for (std::uint64_t round = 0; round < 8; ++round) {
    log.set_capacity(3);
    for (int i = 0; i < 10; ++i) {
      log.append(p);
    }
    EXPECT_EQ(log.records().size(), 3u);
    EXPECT_EQ(log.dropped(), base + (round + 1) * 7);
  }
  // Zero capacity drops everything.
  log.set_capacity(0);
  EXPECT_FALSE(log.append(p));
  EXPECT_TRUE(log.records().empty());
}

TEST(Instrumentation, RecordsStagesForWireMessages) {
  pt::ClusterConfig cfg;
  cfg.exec.instrument = true;
  cfg.exec.probe_capacity = 256;
  pt::Cluster cluster(cfg);
  ASSERT_TRUE(
      cluster.install(1, std::make_unique<EchoDevice>(), "echo").is_ok());
  auto req = std::make_unique<Requester>();
  Requester* req_raw = req.get();
  ASSERT_TRUE(cluster.install(0, std::move(req), "req").is_ok());
  const auto proxy = cluster.connect(0, 1, "echo").value();
  ASSERT_TRUE(cluster.enable_all().is_ok());
  cluster.start_all();
  for (int i = 0; i < 10; ++i) {
    auto reply = req_raw->call_private(proxy, i2o::OrgId::kTest, kXfnEcho,
                                       {}, xdaq::core::CallOptions{.timeout = std::chrono::seconds(5)});
    ASSERT_TRUE(reply.is_ok());
  }
  cluster.stop_all();

  // The echoing node received 10 wire messages; every record must carry
  // monotonic stage stamps covering the full dispatch path.
  const auto& records = cluster.node(1).probe_log().records();
  ASSERT_GE(records.size(), 10u);
  for (const DispatchProbe& p : records) {
    EXPECT_NE(p.t_wire, 0u);
    EXPECT_LE(p.t_wire, p.t_posted);
    EXPECT_LE(p.t_posted, p.t_demux);
    if (p.t_upcall != 0) {  // private application messages only
      EXPECT_LE(p.t_demux, p.t_upcall);
      EXPECT_LE(p.t_upcall, p.t_app_done);
      EXPECT_LE(p.t_app_done, p.t_released);
    }
  }
}

TEST(Instrumentation, OffByDefaultRecordsNothing) {
  pt::Cluster cluster;
  ASSERT_TRUE(
      cluster.install(1, std::make_unique<EchoDevice>(), "echo").is_ok());
  auto req = std::make_unique<Requester>();
  Requester* req_raw = req.get();
  ASSERT_TRUE(cluster.install(0, std::move(req), "req").is_ok());
  const auto proxy = cluster.connect(0, 1, "echo").value();
  ASSERT_TRUE(cluster.enable_all().is_ok());
  cluster.start_all();
  auto reply = req_raw->call_private(proxy, i2o::OrgId::kTest, kXfnEcho, {},
                                     xdaq::core::CallOptions{.timeout = std::chrono::seconds(5)});
  cluster.stop_all();
  ASSERT_TRUE(reply.is_ok());
  EXPECT_TRUE(cluster.node(1).probe_log().records().empty());
}

TEST(Instrumentation, CanBeTurnedOnAtRuntime) {
  pt::Cluster cluster;
  cluster.node(1).probe_log().set_capacity(64);
  cluster.node(1).set_instrument(true);
  ASSERT_TRUE(
      cluster.install(1, std::make_unique<EchoDevice>(), "echo").is_ok());
  auto req = std::make_unique<Requester>();
  Requester* req_raw = req.get();
  ASSERT_TRUE(cluster.install(0, std::move(req), "req").is_ok());
  const auto proxy = cluster.connect(0, 1, "echo").value();
  ASSERT_TRUE(cluster.enable_all().is_ok());
  cluster.start_all();
  auto reply = req_raw->call_private(proxy, i2o::OrgId::kTest, kXfnEcho, {},
                                     xdaq::core::CallOptions{.timeout = std::chrono::seconds(5)});
  cluster.stop_all();
  ASSERT_TRUE(reply.is_ok());
  EXPECT_FALSE(cluster.node(1).probe_log().records().empty());
}

}  // namespace
}  // namespace xdaq::core
