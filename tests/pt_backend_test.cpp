// pt_backend_test.cpp - the PR-8 writer/QoS edge cases exercised on BOTH
// wire engines (epoll readiness and io_uring completions), parameterized
// over netio::IoEngine::Backend. The transport promises the whole
// lifecycle feature set - short-write resume, pool-exhaustion parking,
// credit flow control - behaves identically regardless of engine; these
// tests are that promise, run twice.
//
// On kernels without io_uring support the uring half skips with the
// XDAQ_URING_UNSUPPORTED sentinel in the message, which the
// backend_matrix ctest registration turns into a clean SKIPPED result
// instead of a silent epoll-degraded pass.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include "core/transport.hpp"
#include "i2o/frame.hpp"
#include "i2o/wire.hpp"
#include "netio/socket.hpp"
#include "netio/uring_engine.hpp"
#include "pt/tcp_pt.hpp"

namespace xdaq::pt {
namespace {

using core::TransportConfig;
using netio::IoEngine;

constexpr std::uint16_t kXfnSeq = 0x0051;
constexpr std::uint16_t kXfnHold = 0x0052;
constexpr std::uint16_t kXfnNoop = 0x0053;

constexpr std::byte pattern_byte(std::uint32_t seq, std::size_t j) noexcept {
  return static_cast<std::byte>((seq * 131 + j * 31 + 7) & 0xff);
}

/// Verifies every delivered frame: sequence numbers strictly increasing
/// from zero and every payload byte matching the deterministic pattern
/// the sender wrote. Any deviation is sticky.
class SeqCheckDevice : public core::Device {
 public:
  SeqCheckDevice() : Device("SeqCheckDevice") {
    bind(i2o::OrgId::kTest, kXfnSeq, [this](const core::MessageContext& c) {
      const auto body = c.frame.bytes();
      if (body.size() < i2o::kPrivateHeaderBytes + 4) {
        ++corrupt_;
        return;
      }
      const auto payload = body.subspan(i2o::kPrivateHeaderBytes);
      const std::uint32_t seq = i2o::get_u32(payload, 0);
      if (seq != count_.load(std::memory_order_relaxed)) {
        ++out_of_order_;
      }
      for (std::size_t j = 4; j < payload.size(); ++j) {
        if (payload[j] != pattern_byte(seq, j)) {
          ++corrupt_;
          break;
        }
      }
      count_.fetch_add(1, std::memory_order_relaxed);
    });
    bind(i2o::OrgId::kTest, kXfnNoop,
         [](const core::MessageContext&) { /* connection establishment */ });
  }

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t corrupt() const noexcept {
    return corrupt_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t out_of_order() const noexcept {
    return out_of_order_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> corrupt_{0};
  std::atomic<std::uint64_t> out_of_order_{0};
};

/// Retains every delivered frame (pinning its pooled rx block) until
/// release(); counts deliveries throughout.
class HoldDevice : public core::Device {
 public:
  HoldDevice() : Device("HoldDevice") {
    bind(i2o::OrgId::kTest, kXfnHold, [this](const core::MessageContext& c) {
      ++count_;
      if (holding_.load(std::memory_order_relaxed)) {
        const std::scoped_lock lock(mutex_);
        held_.push_back(c.frame);
      }
    });
  }

  void release() {
    holding_.store(false, std::memory_order_relaxed);
    const std::scoped_lock lock(mutex_);
    held_.clear();
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<bool> holding_{true};
  std::mutex mutex_;
  std::vector<mem::FrameRef> held_;
};

/// Encodes one private test frame with a sequence number and the
/// deterministic byte pattern SeqCheckDevice verifies.
std::vector<std::byte> make_seq_frame(i2o::Tid target, std::uint32_t seq,
                                      std::size_t payload_bytes) {
  std::vector<std::byte> frame(i2o::kPrivateHeaderBytes + payload_bytes);
  i2o::FrameHeader hdr;
  hdr.function = static_cast<std::uint8_t>(i2o::Function::Private);
  hdr.organization = static_cast<std::uint16_t>(i2o::OrgId::kTest);
  hdr.xfunction = kXfnSeq;
  hdr.target = target;
  EXPECT_TRUE(i2o::encode_header(hdr, frame).is_ok());
  auto payload =
      std::span<std::byte>(frame).subspan(i2o::kPrivateHeaderBytes);
  i2o::put_u32(payload, 0, seq);
  for (std::size_t j = 4; j < payload.size(); ++j) {
    payload[j] = pattern_byte(seq, j);
  }
  return frame;
}

std::vector<std::byte> make_hold_frame(i2o::Tid target,
                                       std::size_t payload_bytes) {
  std::vector<std::byte> frame(i2o::kPrivateHeaderBytes + payload_bytes);
  i2o::FrameHeader hdr;
  hdr.function = static_cast<std::uint8_t>(i2o::Function::Private);
  hdr.organization = static_cast<std::uint16_t>(i2o::OrgId::kTest);
  hdr.xfunction = kXfnHold;
  hdr.target = target;
  EXPECT_TRUE(i2o::encode_header(hdr, frame).is_ok());
  return frame;
}

/// Control-flagged frame used to establish the peer connection before a
/// data flood (data frames require the peer Up).
std::vector<std::byte> make_control_frame(i2o::Tid target) {
  std::vector<std::byte> frame(i2o::kPrivateHeaderBytes);
  i2o::FrameHeader hdr;
  hdr.function = static_cast<std::uint8_t>(i2o::Function::Private);
  hdr.flags = i2o::kFlagControl;
  hdr.organization = static_cast<std::uint16_t>(i2o::OrgId::kTest);
  hdr.xfunction = kXfnNoop;
  hdr.target = target;
  EXPECT_TRUE(i2o::encode_header(hdr, frame).is_ok());
  return frame;
}

template <typename Pred>
bool wait_until(Pred pred, std::chrono::milliseconds deadline =
                               std::chrono::milliseconds(10000)) {
  const auto until = std::chrono::steady_clock::now() + deadline;
  while (!pred()) {
    if (std::chrono::steady_clock::now() > until) {
      return false;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return true;
}

/// Raw wire client: hello handshake as `node`, then length-prefixed
/// frames via send_frame().
struct RawClient {
  netio::TcpStream stream;

  static Result<RawClient> connect(std::uint16_t port, i2o::NodeId node) {
    auto s = netio::TcpStream::connect("127.0.0.1", port);
    if (!s.is_ok()) {
      return s.status();
    }
    RawClient c{std::move(s).value()};
    std::array<std::byte, 6> hello{};
    i2o::put_u32(hello, 0, 0x58444151);  // "XDAQ"
    i2o::put_u16(hello, 4, node);
    const Status st = c.stream.write_all(hello);
    if (!st.is_ok()) {
      return st;
    }
    return c;
  }

  Status send_frame(std::span<const std::byte> frame) {
    std::array<std::byte, 4> prefix{};
    i2o::put_u32(prefix, 0, static_cast<std::uint32_t>(frame.size()));
    return stream.write_all2(prefix, frame);
  }
};

class PtBackend : public ::testing::TestWithParam<IoEngine::Backend> {
 protected:
  void SetUp() override {
    if (GetParam() == IoEngine::Backend::kUring) {
      std::string reason;
      if (!netio::UringEngine::supported(&reason)) {
        GTEST_SKIP() << "XDAQ_URING_UNSUPPORTED: " << reason;
      }
    }
    // The environment override (used by the backend_matrix ctest label)
    // outranks TcpTransportConfig::backend; pin it to this test's param
    // so both halves exercise what their name says, then restore.
    if (const char* prev = std::getenv("XDAQ_TCP_BACKEND")) {
      saved_env_ = prev;
    }
    ::setenv("XDAQ_TCP_BACKEND",
             GetParam() == IoEngine::Backend::kUring ? "uring" : "epoll", 1);
  }

  void TearDown() override {
    if (saved_env_.empty()) {
      ::unsetenv("XDAQ_TCP_BACKEND");
    } else {
      ::setenv("XDAQ_TCP_BACKEND", saved_env_.c_str(), 1);
    }
  }

  [[nodiscard]] TcpTransportConfig wire_config() const {
    TcpTransportConfig cfg;
    cfg.backend = GetParam();
    return cfg;
  }

 private:
  std::string saved_env_;
};

/// Two executives joined by TCP with the parameterized backend on both
/// ends and liveness tuned out of the way.
struct BackendPair {
  core::Executive a{core::ExecutiveConfig{.node_id = 1, .name = "a"}};
  core::Executive b{core::ExecutiveConfig{.node_id = 2, .name = "b"}};
  TcpPeerTransport* pt_a = nullptr;
  TcpPeerTransport* pt_b = nullptr;

  BackendPair(const TcpTransportConfig& wire, const TransportConfig& tuning) {
    auto ta = std::make_unique<TcpPeerTransport>(wire, tuning);
    auto tb = std::make_unique<TcpPeerTransport>(wire, tuning);
    pt_a = ta.get();
    pt_b = tb.get();
    EXPECT_TRUE(a.install(std::move(ta), "pt_tcp").is_ok());
    EXPECT_TRUE(b.install(std::move(tb), "pt_tcp").is_ok());
    EXPECT_TRUE(a.set_route(2, pt_a->tid()).is_ok());
    EXPECT_TRUE(b.set_route(1, pt_b->tid()).is_ok());
    EXPECT_TRUE(a.enable(pt_a->tid()).is_ok());
    EXPECT_TRUE(b.enable(pt_b->tid()).is_ok());
    pt_a->add_peer(2, "127.0.0.1", pt_b->listen_port());
    pt_b->add_peer(1, "127.0.0.1", pt_a->listen_port());
  }
};

// A burst of large frames overruns the kernel socket buffer, so the
// writer takes the short-write path and resumes - via EPOLLOUT on the
// readiness backend, via tx-completion resubmission on the completion
// backend. Every byte must arrive, in posting order.
TEST_P(PtBackend, ShortWriteResumePreservesOrder) {
  TransportConfig tuning;
  tuning.heartbeat_interval = std::chrono::nanoseconds(0);
  BackendPair pair(wire_config(), tuning);
  auto dev = std::make_unique<SeqCheckDevice>();
  SeqCheckDevice* dev_raw = dev.get();
  ASSERT_TRUE(pair.b.install(std::move(dev), "seq").is_ok());
  const i2o::Tid target = pair.b.tid_of("seq").value();
  ASSERT_TRUE(pair.a.enable_all().is_ok());
  ASSERT_TRUE(pair.b.enable_all().is_ok());
  pair.a.start();
  pair.b.start();

  ASSERT_TRUE(pair.pt_a->transport_send(2, make_control_frame(target))
                  .is_ok());
  ASSERT_TRUE(wait_until(
      [&] { return pair.pt_a->peer_state(2) == core::PeerState::Up; }));

  // 48 x 120 KiB is several times any default socket buffer; the burst
  // cannot complete without at least one short write and resume.
  constexpr int kFrames = 48;
  for (int i = 0; i < kFrames; ++i) {
    const auto frame =
        make_seq_frame(target, static_cast<std::uint32_t>(i), 120 * 1024);
    Status st = pair.pt_a->transport_send(2, frame);
    for (int spin = 0; !st.is_ok() && spin < 2000; ++spin) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      st = pair.pt_a->transport_send(2, frame);
    }
    ASSERT_TRUE(st.is_ok()) << "frame " << i << ": " << st.to_string();
  }

  ASSERT_TRUE(wait_until([&] { return dev_raw->count() == kFrames; }))
      << "only " << dev_raw->count() << " of " << kFrames << " delivered";
  EXPECT_EQ(dev_raw->out_of_order(), 0u);
  EXPECT_EQ(dev_raw->corrupt(), 0u);
  pair.a.stop();
  pair.b.stop();
}

// Pool-exhaustion parking on both backends: with every pooled rx block
// pinned by a consumer the transport must disarm rx (epoll: read
// interest; uring: cancel the multishot recv) instead of busy-waking,
// then re-arm on pool reclaim and deliver everything.
TEST_P(PtBackend, PoolExhaustionParksAndRearms) {
  core::ExecutiveConfig cfg{.node_id = 1, .name = "rx"};
  // SimplePool: the 256 KiB bin (which rx blocks draw from) has only 8
  // blocks, so a handful of pinned frames exhausts it.
  cfg.pool_kind = core::ExecutiveConfig::PoolKind::Simple;
  core::Executive exec(cfg);

  TransportConfig tuning;
  tuning.heartbeat_interval = std::chrono::nanoseconds(0);
  auto t = std::make_unique<TcpPeerTransport>(wire_config(), tuning);
  TcpPeerTransport* pt = t.get();
  ASSERT_TRUE(exec.install(std::move(t), "pt_tcp").is_ok());
  auto holder = std::make_unique<HoldDevice>();
  HoldDevice* holder_raw = holder.get();
  ASSERT_TRUE(exec.install(std::move(holder), "holder").is_ok());
  const i2o::Tid holder_tid = exec.tid_of("holder").value();
  ASSERT_TRUE(exec.enable_all().is_ok());
  exec.start();

  constexpr int kFrames = 60;
  const auto frame = make_hold_frame(holder_tid, 60 * 1024);
  std::thread client([&] {
    auto c = RawClient::connect(pt->listen_port(), 7);
    if (!c.is_ok()) {
      return;
    }
    for (int i = 0; i < kFrames; ++i) {
      if (!c.value().send_frame(frame).is_ok()) {
        return;
      }
    }
  });

  ASSERT_TRUE(wait_until([&] { return pt->qos_stats().rx_parks >= 1; }))
      << "transport never parked on pool exhaustion";
  const std::uint64_t parks_at_exhaustion = pt->qos_stats().rx_parks;
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  EXPECT_LE(pt->qos_stats().rx_parks, parks_at_exhaustion + 1)
      << "engine kept waking against an exhausted pool";

  holder_raw->release();
  const bool all = wait_until([&] { return holder_raw->count() == kFrames; });
  EXPECT_TRUE(all) << "only " << holder_raw->count() << " of " << kFrames
                   << " frames delivered after reclaim";
  EXPECT_GE(pt->qos_stats().rx_unparks, 1u);
  client.join();
  exec.stop();
}

// Credit flow control with a window smaller than the burst: the writer
// must stall at zero credits mid-batch, resume when the receiver's grant
// arrives (mid-submission-batch on the completion backend, where grants
// ride the same SQE batches as data), and deliver everything in order.
TEST_P(PtBackend, CreditStallResumesOnGrantMidBatch) {
  TransportConfig tuning;
  tuning.heartbeat_interval = std::chrono::nanoseconds(0);
  tuning.credit_window = 4;
  BackendPair pair(wire_config(), tuning);
  auto dev = std::make_unique<SeqCheckDevice>();
  SeqCheckDevice* dev_raw = dev.get();
  ASSERT_TRUE(pair.b.install(std::move(dev), "seq").is_ok());
  const i2o::Tid target = pair.b.tid_of("seq").value();
  ASSERT_TRUE(pair.a.enable_all().is_ok());
  ASSERT_TRUE(pair.b.enable_all().is_ok());
  pair.a.start();
  pair.b.start();

  ASSERT_TRUE(pair.pt_a->transport_send(2, make_control_frame(target))
                  .is_ok());
  ASSERT_TRUE(wait_until(
      [&] { return pair.pt_a->peer_state(2) == core::PeerState::Up; }));

  constexpr int kFrames = 64;  // 16 windows' worth
  for (int i = 0; i < kFrames; ++i) {
    const auto frame =
        make_seq_frame(target, static_cast<std::uint32_t>(i), 2048);
    Status st = pair.pt_a->transport_send(2, frame);
    for (int spin = 0; !st.is_ok() && spin < 2000; ++spin) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      st = pair.pt_a->transport_send(2, frame);
    }
    ASSERT_TRUE(st.is_ok()) << "frame " << i << ": " << st.to_string();
  }

  ASSERT_TRUE(wait_until([&] { return dev_raw->count() == kFrames; }))
      << "only " << dev_raw->count() << " of " << kFrames << " delivered";
  EXPECT_EQ(dev_raw->out_of_order(), 0u);
  EXPECT_EQ(dev_raw->corrupt(), 0u);
  // The window (4) is far smaller than the burst (64): the writer must
  // have hit zero credits and the receiver must have granted them back.
  EXPECT_GE(pair.pt_a->qos_stats().credit_stalls, 1u);
  EXPECT_GE(pair.pt_b->qos_stats().credit_grants_sent, 1u);
  EXPECT_GE(pair.pt_a->qos_stats().credit_grants_rx, 1u);
  pair.a.stop();
  pair.b.stop();
}

// Byte-identical delivery across frame sizes that exercise every rx
// geometry: sub-prefix tails, single-block frames, frames spanning
// provided-buffer slots, and frames near the pool block limit.
TEST_P(PtBackend, ByteIdenticalAcrossFrameSizes) {
  TransportConfig tuning;
  tuning.heartbeat_interval = std::chrono::nanoseconds(0);
  BackendPair pair(wire_config(), tuning);
  auto dev = std::make_unique<SeqCheckDevice>();
  SeqCheckDevice* dev_raw = dev.get();
  ASSERT_TRUE(pair.b.install(std::move(dev), "seq").is_ok());
  const i2o::Tid target = pair.b.tid_of("seq").value();
  ASSERT_TRUE(pair.a.enable_all().is_ok());
  ASSERT_TRUE(pair.b.enable_all().is_ok());
  pair.a.start();
  pair.b.start();

  ASSERT_TRUE(pair.pt_a->transport_send(2, make_control_frame(target))
                  .is_ok());
  ASSERT_TRUE(wait_until(
      [&] { return pair.pt_a->peer_state(2) == core::PeerState::Up; }));

  const std::size_t sizes[] = {4,    64,    1000,  4096,  4100,
                               9000, 65536, 70000, 131072, 200000};
  std::uint32_t seq = 0;
  for (int round = 0; round < 4; ++round) {
    for (const std::size_t bytes : sizes) {
      const auto frame = make_seq_frame(target, seq++, bytes);
      Status st = pair.pt_a->transport_send(2, frame);
      for (int spin = 0; !st.is_ok() && spin < 2000; ++spin) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        st = pair.pt_a->transport_send(2, frame);
      }
      ASSERT_TRUE(st.is_ok()) << st.to_string();
    }
  }

  ASSERT_TRUE(wait_until([&] { return dev_raw->count() == seq; }))
      << "only " << dev_raw->count() << " of " << seq << " delivered";
  EXPECT_EQ(dev_raw->out_of_order(), 0u);
  EXPECT_EQ(dev_raw->corrupt(), 0u);
  pair.a.stop();
  pair.b.stop();
}

INSTANTIATE_TEST_SUITE_P(
    Backends, PtBackend,
    ::testing::Values(IoEngine::Backend::kEpoll, IoEngine::Backend::kUring),
    [](const ::testing::TestParamInfo<IoEngine::Backend>& info) {
      return info.param == IoEngine::Backend::kUring ? "uring" : "epoll";
    });

}  // namespace
}  // namespace xdaq::pt
