#include "rmi/adapter.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "pt/cluster.hpp"
#include "rmi/marshal.hpp"
#include "util/random.hpp"

namespace xdaq::rmi {
namespace {

// ------------------------------------------------------------- marshalling

TEST(Marshal, ScalarRoundTrip) {
  Marshaller m;
  m.put_u8(0xAB);
  m.put_u16(0xBEEF);
  m.put_u32(0xDEADBEEF);
  m.put_u64(0x0123456789ABCDEFULL);
  m.put_i32(-42);
  m.put_i64(-1'000'000'000'000LL);
  m.put_bool(true);
  m.put_f64(3.14159);

  Unmarshaller u(m.bytes());
  EXPECT_EQ(u.get_u8().value(), 0xAB);
  EXPECT_EQ(u.get_u16().value(), 0xBEEF);
  EXPECT_EQ(u.get_u32().value(), 0xDEADBEEFu);
  EXPECT_EQ(u.get_u64().value(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(u.get_i32().value(), -42);
  EXPECT_EQ(u.get_i64().value(), -1'000'000'000'000LL);
  EXPECT_TRUE(u.get_bool().value());
  EXPECT_DOUBLE_EQ(u.get_f64().value(), 3.14159);
  EXPECT_TRUE(u.exhausted());
}

TEST(Marshal, StringAndBytes) {
  Marshaller m;
  m.put_string("hello world");
  const auto blob = make_payload(100, 3);
  std::vector<std::byte> bytes(100);
  std::memcpy(bytes.data(), blob.data(), 100);
  m.put_bytes(bytes);

  Unmarshaller u(m.bytes());
  EXPECT_EQ(u.get_string().value(), "hello world");
  auto view = u.view_bytes();
  ASSERT_TRUE(view.is_ok());
  ASSERT_EQ(view.value().size(), 100u);
  EXPECT_EQ(std::memcmp(view.value().data(), bytes.data(), 100), 0);
}

TEST(Marshal, ViewBytesIsZeroCopy) {
  Marshaller m;
  m.put_bytes(std::vector<std::byte>(16, std::byte{7}));
  Unmarshaller u(m.bytes());
  auto view = u.view_bytes();
  ASSERT_TRUE(view.is_ok());
  // The view points into the marshaller's buffer (after the length word).
  EXPECT_EQ(view.value().data(), m.bytes().data() + 4);
}

TEST(Marshal, TruncationDetected) {
  Marshaller m;
  m.put_string("payload");
  for (std::size_t cut = 0; cut < m.size(); ++cut) {
    Unmarshaller u(m.bytes().subspan(0, cut));
    EXPECT_FALSE(u.get_string().is_ok()) << cut;
  }
}

TEST(Marshal, VectorRoundTrip) {
  Marshaller m;
  const std::vector<std::uint32_t> values{1, 2, 3, 500, 70000};
  m.put_vector(values,
               [](Marshaller& mm, std::uint32_t v) { mm.put_u32(v); });
  Unmarshaller u(m.bytes());
  const auto count = u.get_u32();
  ASSERT_TRUE(count.is_ok());
  ASSERT_EQ(count.value(), values.size());
  for (const std::uint32_t expected : values) {
    EXPECT_EQ(u.get_u32().value(), expected);
  }
}

// -------------------------------------------------------------- stub/skeleton

inline constexpr std::uint16_t kMethodAdd = 1;
inline constexpr std::uint16_t kMethodConcat = 2;
inline constexpr std::uint16_t kMethodDivide = 3;
inline constexpr std::uint16_t kMethodSumBlob = 4;

/// A calculator service exposed over RMI.
class CalculatorSkeleton : public Skeleton {
 public:
  CalculatorSkeleton() : Skeleton("CalculatorSkeleton") {
    expose(kMethodAdd, [](Unmarshaller& args, Marshaller& out) -> Status {
      auto a = args.get_i64();
      auto b = args.get_i64();
      if (!a.is_ok() || !b.is_ok()) {
        return {Errc::MalformedFrame, "add needs two integers"};
      }
      out.put_i64(a.value() + b.value());
      return Status::ok();
    });
    expose(kMethodConcat, [](Unmarshaller& args, Marshaller& out) -> Status {
      auto a = args.get_string();
      auto b = args.get_string();
      if (!a.is_ok() || !b.is_ok()) {
        return {Errc::MalformedFrame, "concat needs two strings"};
      }
      out.put_string(a.value() + b.value());
      return Status::ok();
    });
    expose(kMethodDivide, [](Unmarshaller& args, Marshaller& out) -> Status {
      auto a = args.get_f64();
      auto b = args.get_f64();
      if (!a.is_ok() || !b.is_ok()) {
        return {Errc::MalformedFrame, "divide needs two doubles"};
      }
      if (b.value() == 0.0) {
        return {Errc::InvalidArgument, "division by zero"};
      }
      out.put_f64(a.value() / b.value());
      return Status::ok();
    });
    expose(kMethodSumBlob, [](Unmarshaller& args, Marshaller& out) -> Status {
      // Buffer loaning: sum bytes directly from the received frame.
      auto blob = args.view_bytes();
      if (!blob.is_ok()) {
        return {Errc::MalformedFrame, "sum needs a blob"};
      }
      std::uint64_t sum = 0;
      for (const std::byte b : blob.value()) {
        sum += static_cast<std::uint8_t>(b);
      }
      out.put_u64(sum);
      return Status::ok();
    });
  }
};

struct RmiFixture : ::testing::Test {
  pt::Cluster cluster;
  core::Requester* requester = nullptr;
  i2o::Tid calc_proxy = i2o::kNullTid;

  void SetUp() override {
    ASSERT_TRUE(cluster
                    .install(1, std::make_unique<CalculatorSkeleton>(),
                             "calc")
                    .is_ok());
    auto req = std::make_unique<core::Requester>();
    requester = req.get();
    ASSERT_TRUE(cluster.install(0, std::move(req), "req").is_ok());
    calc_proxy = cluster.connect(0, 1, "calc").value();
    ASSERT_TRUE(cluster.enable_all().is_ok());
    cluster.start_all();
  }
  void TearDown() override { cluster.stop_all(); }
};

TEST_F(RmiFixture, RemoteAdd) {
  Stub stub(*requester, calc_proxy, std::chrono::seconds(5));
  Marshaller args;
  args.put_i64(40);
  args.put_i64(2);
  auto result = stub.invoke(kMethodAdd, args);
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  Unmarshaller out(result.value());
  EXPECT_EQ(out.get_i64().value(), 42);
}

TEST_F(RmiFixture, RemoteConcat) {
  Stub stub(*requester, calc_proxy, std::chrono::seconds(5));
  Marshaller args;
  args.put_string("cross");
  args.put_string("duck");
  auto result = stub.invoke(kMethodConcat, args);
  ASSERT_TRUE(result.is_ok());
  Unmarshaller out(result.value());
  EXPECT_EQ(out.get_string().value(), "crossduck");
}

TEST_F(RmiFixture, RemoteErrorPropagates) {
  Stub stub(*requester, calc_proxy, std::chrono::seconds(5));
  Marshaller args;
  args.put_f64(1.0);
  args.put_f64(0.0);
  auto result = stub.invoke(kMethodDivide, args);
  ASSERT_FALSE(result.is_ok());
  EXPECT_NE(result.status().message().find("division by zero"),
            std::string_view::npos);
}

TEST_F(RmiFixture, MalformedArgumentsRejected) {
  Stub stub(*requester, calc_proxy, std::chrono::seconds(5));
  Marshaller args;
  args.put_i64(1);  // add expects two
  auto result = stub.invoke(kMethodAdd, args);
  ASSERT_FALSE(result.is_ok());
}

TEST_F(RmiFixture, UnknownMethodFails) {
  Stub stub(*requester, calc_proxy, std::chrono::seconds(5));
  Marshaller args;
  auto result = stub.invoke(0x7FFF, args);
  ASSERT_FALSE(result.is_ok());
}

TEST_F(RmiFixture, BlobSummedViaBufferLoan) {
  Stub stub(*requester, calc_proxy, std::chrono::seconds(5));
  std::vector<std::byte> blob(1000);
  std::uint64_t expected = 0;
  for (std::size_t i = 0; i < blob.size(); ++i) {
    blob[i] = static_cast<std::byte>(i & 0xFF);
    expected += static_cast<std::uint8_t>(blob[i]);
  }
  Marshaller args;
  args.put_bytes(blob);
  auto result = stub.invoke(kMethodSumBlob, args);
  ASSERT_TRUE(result.is_ok());
  Unmarshaller out(result.value());
  EXPECT_EQ(out.get_u64().value(), expected);
}

TEST_F(RmiFixture, ManySequentialCalls) {
  Stub stub(*requester, calc_proxy, std::chrono::seconds(5));
  for (std::int64_t i = 0; i < 200; ++i) {
    Marshaller args;
    args.put_i64(i);
    args.put_i64(i * 2);
    auto result = stub.invoke(kMethodAdd, args);
    ASSERT_TRUE(result.is_ok()) << i;
    Unmarshaller out(result.value());
    EXPECT_EQ(out.get_i64().value(), i * 3);
  }
}

}  // namespace
}  // namespace xdaq::rmi
