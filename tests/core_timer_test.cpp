// core_timer_test.cpp - TimerService unit tests (deadline heap, periodic
// re-arming, cancellation, shutdown).
#include "core/timer.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "util/clock.hpp"

namespace xdaq::core {
namespace {

using namespace std::chrono_literals;

struct FireRecorder {
  std::mutex mutex;
  std::vector<std::pair<i2o::Tid, std::uint32_t>> fires;
  std::atomic<int> count{0};

  TimerService::FireFn fn() {
    return [this](i2o::Tid target, std::uint32_t id) {
      {
        const std::scoped_lock lock(mutex);
        fires.emplace_back(target, id);
      }
      count.fetch_add(1, std::memory_order_release);
    };
  }

  bool wait_for_count(int n, std::chrono::milliseconds budget = 2000ms) {
    const auto deadline = std::chrono::steady_clock::now() + budget;
    while (count.load(std::memory_order_acquire) < n) {
      if (std::chrono::steady_clock::now() > deadline) {
        return false;
      }
      std::this_thread::sleep_for(1ms);
    }
    return true;
  }
};

TEST(TimerService, OneShotFiresOnceWithIdAndTarget) {
  FireRecorder rec;
  TimerService svc(rec.fn());
  const auto id = svc.arm(42, 5ms);
  EXPECT_GT(id, 0u);
  EXPECT_EQ(svc.armed(), 1u);
  ASSERT_TRUE(rec.wait_for_count(1));
  std::this_thread::sleep_for(20ms);  // must not fire again
  EXPECT_EQ(rec.count.load(), 1);
  const std::scoped_lock lock(rec.mutex);
  EXPECT_EQ(rec.fires[0].first, 42);
  EXPECT_EQ(rec.fires[0].second, id);
  EXPECT_EQ(svc.armed(), 0u);
}

TEST(TimerService, ZeroDelayFiresImmediately) {
  FireRecorder rec;
  TimerService svc(rec.fn());
  svc.arm(1, 0ns);
  EXPECT_TRUE(rec.wait_for_count(1));
}

TEST(TimerService, PeriodicKeepsFiring) {
  FireRecorder rec;
  TimerService svc(rec.fn());
  const auto id = svc.arm(7, 2ms, 2ms);
  ASSERT_TRUE(rec.wait_for_count(5));
  EXPECT_TRUE(svc.cancel(id));
  const int at_cancel = rec.count.load();
  std::this_thread::sleep_for(30ms);
  // At most one more fire can race the cancellation.
  EXPECT_LE(rec.count.load(), at_cancel + 1);
}

TEST(TimerService, CancelBeforeFire) {
  FireRecorder rec;
  TimerService svc(rec.fn());
  const auto id = svc.arm(3, 200ms);
  EXPECT_TRUE(svc.cancel(id));
  EXPECT_FALSE(svc.cancel(id));  // second cancel reports not pending
  std::this_thread::sleep_for(10ms);
  EXPECT_EQ(rec.count.load(), 0);
}

TEST(TimerService, CancelAfterOneShotFiredReportsFalse) {
  FireRecorder rec;
  TimerService svc(rec.fn());
  const auto id = svc.arm(3, 1ms);
  ASSERT_TRUE(rec.wait_for_count(1));
  EXPECT_FALSE(svc.cancel(id));
}

TEST(TimerService, ManyTimersFireInDeadlineOrder) {
  FireRecorder rec;
  TimerService svc(rec.fn());
  // Arm in reverse deadline order.
  svc.arm(3, 30ms);
  svc.arm(2, 20ms);
  svc.arm(1, 10ms);
  ASSERT_TRUE(rec.wait_for_count(3));
  const std::scoped_lock lock(rec.mutex);
  ASSERT_EQ(rec.fires.size(), 3u);
  EXPECT_EQ(rec.fires[0].first, 1);
  EXPECT_EQ(rec.fires[1].first, 2);
  EXPECT_EQ(rec.fires[2].first, 3);
}

TEST(TimerService, ShutdownStopsPendingTimers) {
  FireRecorder rec;
  {
    TimerService svc(rec.fn());
    svc.arm(1, 50ms);
    svc.shutdown();
  }
  std::this_thread::sleep_for(80ms);
  EXPECT_EQ(rec.count.load(), 0);
}

TEST(TimerService, ShutdownIsIdempotentAndDestructorSafe) {
  FireRecorder rec;
  TimerService svc(rec.fn());
  svc.arm(1, 1ms);
  ASSERT_TRUE(rec.wait_for_count(1));
  svc.shutdown();
  svc.shutdown();  // no-op
}

TEST(TimerService, ConcurrentArmersFromManyThreads) {
  FireRecorder rec;
  TimerService svc(rec.fn());
  constexpr int kThreads = 4;
  constexpr int kEach = 25;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&svc, t] {
      for (int i = 0; i < kEach; ++i) {
        svc.arm(static_cast<i2o::Tid>(t + 1),
                std::chrono::milliseconds(1 + (i % 5)));
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_TRUE(rec.wait_for_count(kThreads * kEach, 5000ms));
  // Every target fired the right number of times.
  std::map<i2o::Tid, int> per_target;
  const std::scoped_lock lock(rec.mutex);
  for (const auto& [target, id] : rec.fires) {
    ++per_target[target];
  }
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(per_target[static_cast<i2o::Tid>(t + 1)], kEach);
  }
}

}  // namespace
}  // namespace xdaq::core
