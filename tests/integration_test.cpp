// integration_test.cpp - cross-module system tests: control plane over
// real TCP sockets, bulk transfers across transports, XCL driving the
// event builder, executive messages for timers and system tables, and
// failure injection (dropped connections, pool exhaustion, aborts).
#include <gtest/gtest.h>

#include <cstring>
#include <thread>

#include "core/bulk.hpp"
#include "core/factory.hpp"
#include "core/requester.hpp"
#include "daq/register.hpp"
#include "daq/topology.hpp"
#include "pt/cluster.hpp"
#include "pt/gm_pt.hpp"
#include "pt/tcp_pt.hpp"
#include "test_devices.hpp"
#include "util/random.hpp"
#include "xcl/control.hpp"

namespace xdaq {
namespace {

using core::Requester;
using xdaq::testing::CounterDevice;
using xdaq::testing::EchoDevice;
using xdaq::testing::kXfnCount;
using xdaq::testing::kXfnEcho;

// ----------------------------------------------------- control plane on TCP

/// The full primary-host control stack on real sockets: session commands
/// travel as I2O exec frames over localhost TCP.
TEST(Integration, ControlPlaneOverTcp) {
  core::Executive host(core::ExecutiveConfig{.node_id = 1, .name = "host"});
  core::Executive worker(
      core::ExecutiveConfig{.node_id = 2, .name = "worker"});

  auto th = std::make_unique<pt::TcpPeerTransport>();
  auto tw = std::make_unique<pt::TcpPeerTransport>();
  pt::TcpPeerTransport* pt_h = th.get();
  pt::TcpPeerTransport* pt_w = tw.get();
  ASSERT_TRUE(host.install(std::move(th), "pt_tcp").is_ok());
  ASSERT_TRUE(worker.install(std::move(tw), "pt_tcp").is_ok());
  ASSERT_TRUE(host.set_route(2, pt_h->tid()).is_ok());
  ASSERT_TRUE(worker.set_route(1, pt_w->tid()).is_ok());
  ASSERT_TRUE(host.enable(pt_h->tid()).is_ok());
  ASSERT_TRUE(worker.enable(pt_w->tid()).is_ok());
  pt_h->add_peer(2, "127.0.0.1", pt_w->listen_port());
  pt_w->add_peer(1, "127.0.0.1", pt_h->listen_port());

  ASSERT_TRUE(
      worker.install(std::make_unique<EchoDevice>(), "echo").is_ok());

  xcl::ControlSession session(host, std::chrono::seconds(5));
  ASSERT_TRUE(session.add_node("w", 2).is_ok());
  host.start();
  worker.start();

  EXPECT_TRUE(session.ping("w").is_ok());
  EXPECT_TRUE(session.configure("w", "echo", {}).is_ok());
  EXPECT_TRUE(
      session.state_op("w", "echo", i2o::Function::ExecEnable).is_ok());
  auto params = session.param_get("w", "echo");
  ASSERT_TRUE(params.is_ok());
  EXPECT_EQ(i2o::param_value(params.value(), "state"), "Enabled");

  host.stop();
  worker.stop();
}

// -------------------------------------------------------- xcl event builder

/// A script brings up the whole n x m event builder through executive
/// messages only, then watches it complete.
TEST(Integration, XclDrivesEventBuilder) {
  daq::register_device_classes();
  // 2 RU + 1 BU + 1 EVM + 1 primary host = 5 nodes.
  pt::Cluster cluster(pt::ClusterConfig{.nodes = 5});
  xcl::ControlSession session(cluster.node(0), std::chrono::seconds(5));
  ASSERT_TRUE(session.add_node("ru0", cluster.node_id(1)).is_ok());
  ASSERT_TRUE(session.add_node("ru1", cluster.node_id(2)).is_ok());
  ASSERT_TRUE(session.add_node("bu", cluster.node_id(3)).is_ok());
  ASSERT_TRUE(session.add_node("evm", cluster.node_id(4)).is_ok());
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    ASSERT_TRUE(cluster.node(i)
                    .enable(cluster.node(i).tid_of("pt_gm").value())
                    .is_ok());
  }
  // Application wiring needs proxies on the worker nodes; the script can
  // set them through the system table (remote.<name> entries resolve
  // against node ids and remote TiDs).
  cluster.start_all();

  xcl::Interp interp;
  session.bind(interp);
  // Load the devices.
  xcl::EvalResult r = interp.eval(R"(
xdaq load evm EventManager evm builders 1
xdaq load bu BuilderUnit bu verify 1
xdaq load ru0 ReadoutUnit ru
xdaq load ru1 ReadoutUnit ru
set evm_tid [xdaq tid evm evm]
set bu_tid [xdaq tid bu bu]
)");
  ASSERT_TRUE(r.is_ok()) << r.value;

  // The RUs need proxies on *their own* nodes for the EVM and BU. Use the
  // remote kernel's ExecSysTabSet via the session's requester.
  const auto evm_tid = cluster.node(4).tid_of("evm").value();
  const auto bu_tid = cluster.node(3).tid_of("bu").value();
  for (const std::size_t ru_node : {1u, 2u}) {
    auto evm_proxy = cluster.node(ru_node).resolver().resolve(
        cluster.node_id(4), evm_tid);
    auto bu_proxy = cluster.node(ru_node).resolver().resolve(
        cluster.node_id(3), bu_tid);
    ASSERT_TRUE(evm_proxy.is_ok());
    ASSERT_TRUE(bu_proxy.is_ok());
    const std::string ru_name = ru_node == 1 ? "ru0" : "ru1";
    ASSERT_TRUE(session
                    .configure(ru_name, "ru",
                               {{"evm_tid",
                                 std::to_string(evm_proxy.value())},
                                {"bu_tids", std::to_string(bu_proxy.value())},
                                {"source_id", std::to_string(ru_node - 1)},
                                {"total_sources", "2"},
                                {"fragment_bytes", "256"},
                                {"max_events", "50"}})
                    .is_ok());
  }
  // Enable in dependency order: EVM, BU, then the sources.
  r = interp.eval(R"(
xdaq enable evm evm
xdaq enable bu bu
xdaq enable ru0 ru
xdaq enable ru1 ru
)");
  ASSERT_TRUE(r.is_ok()) << r.value;

  // Wait for completion by polling the BU's parameters via the script.
  bool complete = false;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (!complete && std::chrono::steady_clock::now() < deadline) {
    xcl::EvalResult built = interp.eval("xdaq paramget bu bu built");
    ASSERT_FALSE(built.is_error()) << built.value;
    complete = built.value == "50";
    if (!complete) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  cluster.stop_all();
  EXPECT_TRUE(complete);
}

// ------------------------------------------------------------- exec messages

TEST(Integration, SysTabSetViaMessage) {
  pt::Cluster cluster(pt::ClusterConfig{.nodes = 3});
  ASSERT_TRUE(
      cluster.install(2, std::make_unique<EchoDevice>(), "echo").is_ok());
  auto req = std::make_unique<Requester>();
  Requester* req_raw = req.get();
  ASSERT_TRUE(cluster.install(0, std::move(req), "req").is_ok());
  // Node 1 will receive a system table telling it how to reach the echo
  // device on node 3 by name.
  const auto kernel1 =
      cluster.node(0).resolver().resolve(cluster.node_id(1),
                                         i2o::kExecutiveTid).value();
  ASSERT_TRUE(cluster.enable_all().is_ok());
  cluster.start_all();

  const auto echo_tid = cluster.node(2).tid_of("echo").value();
  auto reply = req_raw->call_standard(
      kernel1, i2o::Function::ExecSysTabSet,
      {{"route.3", "pt_gm"},
       {"remote.echo_far", "3:" + std::to_string(echo_tid)}},
      xdaq::core::CallOptions{.timeout = std::chrono::seconds(5)});
  ASSERT_TRUE(reply.is_ok()) << reply.status().to_string();
  EXPECT_FALSE(reply.value().failed());
  cluster.stop_all();
  // Node 1 now resolves the name to a proxy TiD.
  auto resolved = cluster.node(1).tid_of("echo_far");
  ASSERT_TRUE(resolved.is_ok());
  auto entry = cluster.node(1).address_table().lookup(resolved.value());
  ASSERT_TRUE(entry.is_ok());
  EXPECT_EQ(entry.value().kind, core::AddressEntry::Kind::Proxy);
  EXPECT_EQ(entry.value().node, cluster.node_id(2));
  EXPECT_EQ(entry.value().remote_tid, echo_tid);
}

TEST(Integration, TimerArmedViaMessage) {
  core::Executive exec;
  auto dev = std::make_unique<CounterDevice>();
  CounterDevice* counter = dev.get();
  ASSERT_TRUE(exec.install(std::move(dev), "cnt").is_ok());
  ASSERT_TRUE(exec.enable(exec.tid_of("cnt").value()).is_ok());
  auto req = std::make_unique<Requester>();
  Requester* req_raw = req.get();
  ASSERT_TRUE(exec.install(std::move(req), "req").is_ok());
  exec.start();

  auto reply = req_raw->call_standard(
      exec.kernel_tid(), i2o::Function::ExecTimerSet,
      {{"instance", "cnt"}, {"delay_ns", "1000000"}, {"period_ns", "0"}},
      xdaq::core::CallOptions{.timeout = std::chrono::seconds(2)});
  ASSERT_TRUE(reply.is_ok());
  ASSERT_FALSE(reply.value().failed());
  auto params = reply.value().params();
  ASSERT_TRUE(params.is_ok());
  EXPECT_FALSE(i2o::param_value(params.value(), "timer").empty());

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(2);
  while (counter->timer_fires_.load() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(counter->timer_fires_.load(), 1);

  // Cancelling a fired one-shot reports failure.
  auto cancel = req_raw->call_standard(
      exec.kernel_tid(), i2o::Function::ExecTimerCancel,
      {{"timer", i2o::param_value(params.value(), "timer")}},
      xdaq::core::CallOptions{.timeout = std::chrono::seconds(2)});
  ASSERT_TRUE(cancel.is_ok());
  EXPECT_TRUE(cancel.value().failed());
  exec.stop();
}

// --------------------------------------------------------- failure injection

TEST(Integration, TcpPeerDisconnectSurfacesAndRecovers) {
  core::Executive a(core::ExecutiveConfig{.node_id = 1, .name = "a"});
  auto ta = std::make_unique<pt::TcpPeerTransport>();
  pt::TcpPeerTransport* pt_a = ta.get();
  ASSERT_TRUE(a.install(std::move(ta), "pt_tcp").is_ok());
  ASSERT_TRUE(a.set_route(2, pt_a->tid()).is_ok());
  ASSERT_TRUE(a.enable(pt_a->tid()).is_ok());

  std::vector<std::byte> frame(i2o::kStdHeaderBytes);
  i2o::FrameHeader hdr;
  hdr.function = static_cast<std::uint8_t>(i2o::Function::UtilNop);
  hdr.target = 1;
  ASSERT_TRUE(i2o::encode_header(hdr, frame).is_ok());

  {
    // First peer: accepts, then vanishes.
    core::Executive b(core::ExecutiveConfig{.node_id = 2, .name = "b"});
    auto tb = std::make_unique<pt::TcpPeerTransport>();
    pt::TcpPeerTransport* pt_b = tb.get();
    ASSERT_TRUE(b.install(std::move(tb), "pt_tcp").is_ok());
    ASSERT_TRUE(b.enable(pt_b->tid()).is_ok());
    pt_a->add_peer(2, "127.0.0.1", pt_b->listen_port());
    EXPECT_TRUE(pt_a->transport_send(2, frame).is_ok());
    // b is destroyed here: connection drops.
  }
  // Sends eventually fail (broken pipe or refused reconnect), never hang.
  Status st = Status::ok();
  for (int i = 0; i < 50 && st.is_ok(); ++i) {
    st = pt_a->transport_send(2, frame);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_FALSE(st.is_ok());

  // A new peer on a fresh port: traffic flows again.
  core::Executive c(core::ExecutiveConfig{.node_id = 2, .name = "c"});
  auto tc = std::make_unique<pt::TcpPeerTransport>();
  pt::TcpPeerTransport* pt_c = tc.get();
  ASSERT_TRUE(c.install(std::move(tc), "pt_tcp").is_ok());
  ASSERT_TRUE(c.enable(pt_c->tid()).is_ok());
  pt_a->add_peer(2, "127.0.0.1", pt_c->listen_port());
  Status recovered = Status::ok();
  for (int i = 0; i < 50; ++i) {
    recovered = pt_a->transport_send(2, frame);
    if (recovered.is_ok()) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(recovered.is_ok()) << recovered.to_string();
}

TEST(Integration, PoolExhaustionFailsSendsCleanly) {
  // A node with a tiny pool: allocation failures surface as statuses, the
  // executive keeps running, and recycling restores service.
  core::ExecutiveConfig cfg;
  cfg.pool_kind = core::ExecutiveConfig::PoolKind::Simple;
  core::Executive exec(cfg);
  // Exhaust the pool by holding every block.
  std::vector<mem::FrameRef> hostage;
  for (;;) {
    auto r = exec.pool().allocate(64);
    if (!r.is_ok()) {
      break;
    }
    hostage.push_back(std::move(r).value());
  }
  EXPECT_EQ(exec.alloc_frame(64, true).status().code(),
            Errc::ResourceExhausted);
  hostage.clear();
  EXPECT_TRUE(exec.alloc_frame(64, true).is_ok());
}

TEST(Integration, UtilAbortFlushesBacklog) {
  core::Executive exec;
  auto dev = std::make_unique<CounterDevice>();
  CounterDevice* counter = dev.get();
  const auto tid = exec.install(std::move(dev), "cnt").value();
  ASSERT_TRUE(exec.enable(tid).is_ok());

  // Queue several count messages without pumping, then an abort ahead of
  // them in priority (utility class preempts application frames).
  for (int i = 0; i < 5; ++i) {
    auto frame = exec.alloc_frame(0, true);
    ASSERT_TRUE(frame.is_ok());
    i2o::FrameHeader hdr;
    hdr.function = static_cast<std::uint8_t>(i2o::Function::Private);
    hdr.organization = static_cast<std::uint16_t>(i2o::OrgId::kTest);
    hdr.xfunction = kXfnCount;
    hdr.target = tid;
    auto bytes = frame.value().bytes();
    ASSERT_TRUE(i2o::encode_header(hdr, bytes).is_ok());
    ASSERT_TRUE(exec.frame_send(std::move(frame).value()).is_ok());
  }
  {
    auto frame = exec.alloc_frame(0, false);
    ASSERT_TRUE(frame.is_ok());
    i2o::FrameHeader hdr;
    hdr.function = static_cast<std::uint8_t>(i2o::Function::UtilAbort);
    hdr.target = tid;
    auto bytes = frame.value().bytes();
    ASSERT_TRUE(i2o::encode_header(hdr, bytes).is_ok());
    ASSERT_TRUE(exec.frame_send(std::move(frame).value()).is_ok());
  }
  // Pump everything: the abort is dispatched first (control priority) and
  // discards the queued private messages.
  for (int i = 0; i < 100; ++i) {
    exec.run_once();
  }
  EXPECT_EQ(counter->count(), 0u);
}

TEST(Integration, RequesterConcurrentCallers) {
  pt::Cluster cluster;
  ASSERT_TRUE(
      cluster.install(1, std::make_unique<EchoDevice>(), "echo").is_ok());
  auto req = std::make_unique<Requester>();
  Requester* req_raw = req.get();
  ASSERT_TRUE(cluster.install(0, std::move(req), "req").is_ok());
  const auto proxy = cluster.connect(0, 1, "echo").value();
  ASSERT_TRUE(cluster.enable_all().is_ok());
  cluster.start_all();

  constexpr int kThreads = 4;
  constexpr int kCallsEach = 100;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kCallsEach; ++i) {
        const auto payload = make_payload(32, static_cast<unsigned>(t));
        std::vector<std::byte> bytes(32);
        std::memcpy(bytes.data(), payload.data(), 32);
        auto reply =
            req_raw->call_private(proxy, i2o::OrgId::kTest, kXfnEcho,
                                  bytes, xdaq::core::CallOptions{.timeout = std::chrono::seconds(10)});
        if (!reply.is_ok() ||
            std::memcmp(reply.value().payload.data(), bytes.data(), 32) !=
                0) {
          ++failures;
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  cluster.stop_all();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(req_raw->outstanding(), 0u);
}

TEST(Integration, MultipleTransportsInParallel) {
  // Paper section 4: "As it is possible to configure each device instance
  // with a route, we can use multiple transports to send and receive in
  // parallel. This is a vital functionality that is not covered by other
  // comparable middleware products yet." Here the same remote echo device
  // is reachable through TWO proxies: one over the simulated GM fabric,
  // one over TCP. Traffic flows over both concurrently, and replies route
  // back over the transport their request used.
  gmsim::Fabric fabric;
  core::Executive a(core::ExecutiveConfig{.node_id = 1, .name = "a"});
  core::Executive b(core::ExecutiveConfig{.node_id = 2, .name = "b"});

  // Transport 1: simulated GM.
  auto ga = std::make_unique<pt::GmPeerTransport>(fabric);
  auto gb = std::make_unique<pt::GmPeerTransport>(fabric);
  const auto ga_tid = a.install(std::move(ga), "pt_gm").value();
  ASSERT_TRUE(b.install(std::move(gb), "pt_gm").is_ok());
  // Transport 2: TCP.
  auto ta = std::make_unique<pt::TcpPeerTransport>();
  auto tb = std::make_unique<pt::TcpPeerTransport>();
  pt::TcpPeerTransport* pt_ta = ta.get();
  pt::TcpPeerTransport* pt_tb = tb.get();
  const auto ta_tid = a.install(std::move(ta), "pt_tcp").value();
  ASSERT_TRUE(b.install(std::move(tb), "pt_tcp").is_ok());
  ASSERT_TRUE(a.enable_all().is_ok());
  ASSERT_TRUE(b.enable_all().is_ok());
  pt_ta->add_peer(2, "127.0.0.1", pt_tb->listen_port());
  pt_tb->add_peer(1, "127.0.0.1", pt_ta->listen_port());

  // GM is the default route; the TCP proxy is pinned per-device.
  ASSERT_TRUE(a.set_route(2, ga_tid).is_ok());

  ASSERT_TRUE(b.install(std::make_unique<EchoDevice>(), "echo").is_ok());
  ASSERT_TRUE(b.enable(b.tid_of("echo").value()).is_ok());
  auto req = std::make_unique<Requester>();
  Requester* req_raw = req.get();
  ASSERT_TRUE(a.install(std::move(req), "req").is_ok());

  const auto echo_tid = b.tid_of("echo").value();
  const auto via_gm = a.register_remote(2, echo_tid, "echo_gm").value();
  const auto via_tcp =
      a.register_remote_via(2, echo_tid, ta_tid, "echo_tcp").value();
  ASSERT_NE(via_gm, via_tcp);

  a.start();
  b.start();
  for (int i = 0; i < 20; ++i) {
    auto r1 = req_raw->call_private(via_gm, i2o::OrgId::kTest, kXfnEcho, {},
                                    xdaq::core::CallOptions{.timeout = std::chrono::seconds(5)});
    auto r2 = req_raw->call_private(via_tcp, i2o::OrgId::kTest, kXfnEcho,
                                    {}, xdaq::core::CallOptions{.timeout = std::chrono::seconds(5)});
    ASSERT_TRUE(r1.is_ok()) << i << ": " << r1.status().to_string();
    ASSERT_TRUE(r2.is_ok()) << i << ": " << r2.status().to_string();
    EXPECT_FALSE(r1.value().failed());
    EXPECT_FALSE(r2.value().failed());
  }
  a.stop();
  b.stop();
  // Both transports actually carried traffic.
  EXPECT_GE(a.stats().sent_remote, 40u);
  EXPECT_GE(pt_ta->connection_count(), 1u);
  // Node b interned one initiator proxy per arrival transport.
  EXPECT_EQ(b.address_table().proxy_count(), 2u);
}

TEST(Integration, BulkOverTcpTransport) {
  core::Executive a(core::ExecutiveConfig{.node_id = 1, .name = "a"});
  core::Executive b(core::ExecutiveConfig{.node_id = 2, .name = "b"});
  auto ta = std::make_unique<pt::TcpPeerTransport>();
  auto tb = std::make_unique<pt::TcpPeerTransport>();
  pt::TcpPeerTransport* pt_a = ta.get();
  pt::TcpPeerTransport* pt_b = tb.get();
  ASSERT_TRUE(a.install(std::move(ta), "pt").is_ok());
  ASSERT_TRUE(b.install(std::move(tb), "pt").is_ok());
  ASSERT_TRUE(a.set_route(2, pt_a->tid()).is_ok());
  ASSERT_TRUE(b.set_route(1, pt_b->tid()).is_ok());
  ASSERT_TRUE(a.enable(pt_a->tid()).is_ok());
  ASSERT_TRUE(b.enable(pt_b->tid()).is_ok());
  pt_a->add_peer(2, "127.0.0.1", pt_b->listen_port());
  pt_b->add_peer(1, "127.0.0.1", pt_a->listen_port());

  struct Sink final : core::Device {
    Sink() : Device("Sink") {
      bind(i2o::OrgId::kTest, 0x99, [this](const core::MessageContext& c) {
        auto fed = receiver.feed(c);
        if (fed.is_ok() && fed.value().has_value()) {
          message = std::move(*fed.value());
          got.store(true);
        }
      });
    }
    core::BulkReceiver receiver;
    std::vector<std::byte> message;
    std::atomic<bool> got{false};
  };
  struct Source final : core::Device {
    Source() : Device("Source") {}
  };

  auto sink_dev = std::make_unique<Sink>();
  Sink* sink = sink_dev.get();
  ASSERT_TRUE(b.install(std::move(sink_dev), "sink").is_ok());
  auto src_dev = std::make_unique<Source>();
  Source* src = src_dev.get();
  ASSERT_TRUE(a.install(std::move(src_dev), "src").is_ok());
  const auto proxy =
      a.resolver().resolve(2, b.tid_of("sink").value()).value();
  ASSERT_TRUE(a.enable_all().is_ok());
  ASSERT_TRUE(b.enable_all().is_ok());
  a.start();
  b.start();

  const auto raw = make_payload(500'000, 77);
  std::vector<std::byte> data(raw.size());
  std::memcpy(data.data(), raw.data(), raw.size());
  ASSERT_TRUE(
      core::bulk_send(*src, proxy, i2o::OrgId::kTest, 0x99, data).is_ok());
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (!sink->got.load() &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  a.stop();
  b.stop();
  ASSERT_TRUE(sink->got.load());
  EXPECT_EQ(sink->message, data);
}

}  // namespace
}  // namespace xdaq
