// core_shard_test.cpp - the multi-core executive: per-TiD dispatch
// affinity, shard routing of delivered frames, work stealing, and N=1
// equivalence with the single-loop executive. The affinity test is the
// one the thread sanitizer build exists for: handlers of one device must
// never run concurrently no matter how aggressively siblings steal.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include "core/executive.hpp"
#include "i2o/wire.hpp"
#include "test_devices.hpp"

namespace xdaq::core {
namespace {

using testing::CounterDevice;
using testing::kXfnCount;
using testing::pump_until;

constexpr std::uint16_t kXfnSeq = 0x0051;

/// Asserts the actor invariant from inside the handler: entry while
/// another invocation is still running means two shards dispatched the
/// same device at once.
class AffinityDevice : public Device {
 public:
  AffinityDevice() : Device("AffinityDevice") {
    bind(i2o::OrgId::kTest, kXfnSeq, [this](const MessageContext& ctx) {
      if (in_handler_.exchange(true, std::memory_order_acq_rel)) {
        overlaps_.fetch_add(1, std::memory_order_relaxed);
      }
      std::uint32_t seq = 0;
      std::memcpy(&seq, ctx.payload.data(), sizeof(seq));
      // Per-device FIFO order must survive enqueue, drain, and steal.
      if (seq != seen_) {
        out_of_order_.fetch_add(1, std::memory_order_relaxed);
      }
      seen_ = seq + 1;
      // Widen the race window: a concurrent dispatch would have to land
      // inside this busy wait to go unnoticed.
      for (volatile int spin = 0; spin < 500; ++spin) {
      }
      in_handler_.store(false, std::memory_order_release);
      handled_.fetch_add(1, std::memory_order_release);
    });
  }

  std::atomic<bool> in_handler_{false};
  std::atomic<std::uint64_t> overlaps_{0};
  std::atomic<std::uint64_t> out_of_order_{0};
  std::atomic<std::uint64_t> handled_{0};
  std::uint32_t seen_ = 0;  ///< handler-only state: the invariant under test
};

mem::FrameRef make_seq_frame(Executive& exec, i2o::Tid target,
                             std::uint32_t seq) {
  auto frame = exec.alloc_frame(sizeof(seq), /*is_private=*/true);
  EXPECT_TRUE(frame.is_ok());
  i2o::FrameHeader hdr;
  hdr.function = static_cast<std::uint8_t>(i2o::Function::Private);
  hdr.organization = static_cast<std::uint16_t>(i2o::OrgId::kTest);
  hdr.xfunction = kXfnSeq;
  hdr.target = target;
  auto bytes = frame.value().bytes();
  EXPECT_TRUE(i2o::encode_header(hdr, bytes).is_ok());
  std::memcpy(bytes.data() + i2o::kPrivateHeaderBytes, &seq, sizeof(seq));
  return std::move(frame).value();
}

std::int64_t sample_value(const obs::MetricsSnapshot& snap,
                          const std::string& name) {
  for (const auto& s : snap.samples) {
    if (s.name == name) {
      return s.value;
    }
  }
  return -1;
}

TEST(ShardedExecutive, DevicesSpreadRoundRobinAcrossShards) {
  ExecutiveConfig cfg;
  cfg.shards = 4;
  Executive exec(cfg);
  EXPECT_EQ(exec.shard_count(), 4u);
  // The kernel bypasses install() and stays on shard 0.
  EXPECT_EQ(exec.shard_of(exec.kernel_tid()), 0u);
  std::vector<i2o::Tid> tids;
  for (int i = 0; i < 8; ++i) {
    tids.push_back(exec.install(std::make_unique<CounterDevice>(),
                                "dev" + std::to_string(i))
                       .value());
  }
  for (std::size_t i = 0; i < tids.size(); ++i) {
    EXPECT_EQ(exec.shard_of(tids[i]), i % 4) << "device " << i;
  }
}

// The tentpole invariant, aimed squarely at the TSan build: with many
// shards, aggressive stealing, and several poster threads, no device ever
// has two handler invocations in flight and per-device order holds.
TEST(ShardedExecutive, AffinityNeverRunsOneDeviceConcurrently) {
  ExecutiveConfig cfg;
  cfg.shards = 4;
  cfg.steal_threshold = 2;  // steal at the slightest imbalance
  cfg.steal_max = 64;
  Executive exec(cfg);
  constexpr int kDevices = 6;
  constexpr std::uint32_t kPerDevice = 300;
  std::vector<AffinityDevice*> devs;
  std::vector<i2o::Tid> tids;
  for (int i = 0; i < kDevices; ++i) {
    auto dev = std::make_unique<AffinityDevice>();
    devs.push_back(dev.get());
    tids.push_back(
        exec.install(std::move(dev), "aff" + std::to_string(i)).value());
  }
  ASSERT_TRUE(exec.enable_all().is_ok());
  exec.start();

  // Two posters interleave across all devices; each device's own stream
  // is posted in sequence order by exactly one poster, so FIFO per device
  // is well-defined.
  std::vector<std::thread> posters;
  for (int p = 0; p < 2; ++p) {
    posters.emplace_back([&, p] {
      for (std::uint32_t seq = 0; seq < kPerDevice; ++seq) {
        for (int d = p; d < kDevices; d += 2) {
          Status st =
              exec.frame_send(make_seq_frame(exec, tids[d], seq));
          while (st.code() == Errc::ResourceExhausted) {
            std::this_thread::yield();
            st = exec.frame_send(make_seq_frame(exec, tids[d], seq));
          }
          ASSERT_TRUE(st.is_ok()) << st.to_string();
        }
      }
    });
  }
  for (auto& t : posters) {
    t.join();
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  for (AffinityDevice* dev : devs) {
    while (dev->handled_.load(std::memory_order_acquire) < kPerDevice) {
      ASSERT_LT(std::chrono::steady_clock::now(), deadline)
          << "undelivered backlog";
      std::this_thread::yield();
    }
  }
  exec.stop();

  for (int d = 0; d < kDevices; ++d) {
    EXPECT_EQ(devs[d]->overlaps_.load(), 0u) << "device " << d;
    EXPECT_EQ(devs[d]->out_of_order_.load(), 0u) << "device " << d;
    EXPECT_EQ(devs[d]->handled_.load(), kPerDevice) << "device " << d;
  }
}

// Deterministic steal: single-threaded run_once pumps shard 0 (which
// dispatches one message of a deep backlog), then shard 1 (idle), which
// must raid shard 0 - whole per-device batches, FIFO order intact.
TEST(ShardedExecutive, IdleShardStealsWholeBacklogsInOrder) {
  ExecutiveConfig cfg;
  cfg.shards = 2;
  cfg.steal_threshold = 4;
  Executive exec(cfg);
  // Three devices: aff0/aff2 land on shard 0, aff1 on shard 1 and stays
  // idle, so shard 1's pump always has stealing as its only work.
  auto d0 = std::make_unique<AffinityDevice>();
  auto d2 = std::make_unique<AffinityDevice>();
  AffinityDevice* dev0 = d0.get();
  AffinityDevice* dev2 = d2.get();
  const auto tid0 = exec.install(std::move(d0), "aff0").value();
  ASSERT_TRUE(
      exec.install(std::make_unique<CounterDevice>(), "idle1").is_ok());
  const auto tid2 = exec.install(std::move(d2), "aff2").value();
  ASSERT_EQ(exec.shard_of(tid0), 0u);
  ASSERT_EQ(exec.shard_of(tid2), 0u);
  ASSERT_TRUE(exec.enable_all().is_ok());

  constexpr std::uint32_t kEach = 32;
  for (std::uint32_t seq = 0; seq < kEach; ++seq) {
    ASSERT_TRUE(exec.frame_send(make_seq_frame(exec, tid0, seq)).is_ok());
    ASSERT_TRUE(exec.frame_send(make_seq_frame(exec, tid2, seq)).is_ok());
  }
  ASSERT_TRUE(pump_until(exec, [&] {
    return dev0->handled_.load() == kEach && dev2->handled_.load() == kEach;
  }));

  const ExecutiveStats stats = exec.stats();
  EXPECT_GE(stats.steals, 1u);
  EXPECT_GE(stats.stolen_items, 1u);
  // The loot came out of shard 0's scheduler, and both devices' streams
  // survived the move in order.
  EXPECT_GE(exec.scheduler(0).stolen(), 1u);
  EXPECT_EQ(dev0->out_of_order_.load(), 0u);
  EXPECT_EQ(dev2->out_of_order_.load(), 0u);
  EXPECT_EQ(dev0->overlaps_.load(), 0u);
  EXPECT_EQ(dev2->overlaps_.load(), 0u);

  const obs::MetricsSnapshot snap = exec.metrics().snapshot();
  EXPECT_EQ(sample_value(snap, "sched.stolen"),
            static_cast<std::int64_t>(stats.stolen_items));
}

// deliver_from_wire must route by target TiD at delivery time: a frame
// for a shard-1 device lands on shard 1's queue and is dispatched there,
// never touching shard 0 (steal_threshold stays above the backlog).
TEST(ShardedExecutive, DeliverFromWireRoutesToOwningShard) {
  ExecutiveConfig cfg;
  cfg.shards = 2;
  Executive exec(cfg);
  ASSERT_TRUE(
      exec.install(std::make_unique<CounterDevice>(), "shard0dev").is_ok());
  auto dev = std::make_unique<CounterDevice>();
  CounterDevice* raw = dev.get();
  const auto tid = exec.install(std::move(dev), "shard1dev").value();
  ASSERT_EQ(exec.shard_of(tid), 1u);
  ASSERT_TRUE(exec.enable_all().is_ok());

  constexpr int kFrames = 4;  // < steal_threshold: no raids muddy the water
  for (int i = 0; i < kFrames; ++i) {
    // Zero-copy path: the frame is already pooled memory, delivered as a
    // transport would hand it over (kNullTid initiator skips proxying).
    auto frame = exec.alloc_frame(16, /*is_private=*/true);
    ASSERT_TRUE(frame.is_ok());
    i2o::FrameHeader hdr;
    hdr.function = static_cast<std::uint8_t>(i2o::Function::Private);
    hdr.organization = static_cast<std::uint16_t>(i2o::OrgId::kTest);
    hdr.xfunction = kXfnCount;
    hdr.target = tid;
    auto bytes = frame.value().bytes();
    ASSERT_TRUE(i2o::encode_header(hdr, bytes).is_ok());
    ASSERT_TRUE(exec.deliver_from_wire(/*src_node=*/7, /*pt_tid=*/0,
                                       std::move(frame).value())
                    .is_ok());
  }
  ASSERT_TRUE(pump_until(exec, [&] { return raw->count() == kFrames; }));

  const obs::MetricsSnapshot snap = exec.metrics().snapshot();
  std::int64_t shard0 = 0;
  std::int64_t shard1 = 0;
  for (const auto& [name, value] : snap.counters) {
    if (name == "exec.shard0.dispatched") {
      shard0 = static_cast<std::int64_t>(value);
    } else if (name == "exec.shard1.dispatched") {
      shard1 = static_cast<std::int64_t>(value);
    }
  }
  EXPECT_EQ(shard0, 0);
  EXPECT_EQ(shard1, kFrames);
}

// N=1 must be the seed executive, observably: same stats as a sharded run
// of the same workload, no steal machinery engaged, and no per-shard
// counters registered at all.
TEST(ShardedExecutive, SingleShardMatchesMultiShardResults) {
  auto run = [](std::size_t shards) {
    ExecutiveConfig cfg;
    cfg.shards = shards;
    Executive exec(cfg);
    std::vector<AffinityDevice*> devs;
    std::vector<i2o::Tid> tids;
    for (int i = 0; i < 4; ++i) {
      auto dev = std::make_unique<AffinityDevice>();
      devs.push_back(dev.get());
      tids.push_back(
          exec.install(std::move(dev), "d" + std::to_string(i)).value());
    }
    EXPECT_TRUE(exec.enable_all().is_ok());
    constexpr std::uint32_t kEach = 50;
    for (std::uint32_t seq = 0; seq < kEach; ++seq) {
      for (const auto tid : tids) {
        EXPECT_TRUE(exec.frame_send(make_seq_frame(exec, tid, seq)).is_ok());
      }
    }
    EXPECT_TRUE(pump_until(exec, [&] {
      for (AffinityDevice* dev : devs) {
        if (dev->handled_.load() != kEach) {
          return false;
        }
      }
      return true;
    }));
    ExecutiveStats stats = exec.stats();
    for (AffinityDevice* dev : devs) {
      EXPECT_EQ(dev->out_of_order_.load(), 0u);
      EXPECT_EQ(dev->overlaps_.load(), 0u);
    }
    if (shards == 1) {
      EXPECT_EQ(stats.steals, 0u);
      EXPECT_EQ(stats.stolen_items, 0u);
      const obs::MetricsSnapshot snap = exec.metrics().snapshot();
      for (const auto& [name, value] : snap.counters) {
        EXPECT_EQ(name.rfind("exec.shard", 0), std::string::npos)
            << "single-shard config registered per-shard counter " << name;
      }
    }
    return stats;
  };

  const ExecutiveStats single = run(1);
  const ExecutiveStats quad = run(4);
  EXPECT_EQ(single.dispatched, 200u);
  EXPECT_EQ(single.dispatched, quad.dispatched);
  EXPECT_EQ(single.posted, quad.posted);
  EXPECT_EQ(single.sent_local, quad.sent_local);
  EXPECT_EQ(single.dropped_unknown, quad.dropped_unknown);
  EXPECT_EQ(single.failed_replies, quad.failed_replies);
}

// A quarantined device's stolen backlog must be dropped mid-raid, exactly
// as the home loop drops its scheduled backlog on a handler fault.
TEST(ShardedExecutive, FaultDuringStolenBatchQuarantinesDevice) {
  ExecutiveConfig cfg;
  cfg.shards = 2;
  cfg.steal_threshold = 4;
  Executive exec(cfg);

  constexpr std::uint16_t kXfnBoom = 0x0052;
  class BoomDevice : public Device {
   public:
    BoomDevice() : Device("BoomDevice") {
      bind(i2o::OrgId::kTest, kXfnBoom, [this](const MessageContext&) {
        if (handled_.fetch_add(1) == 2) {
          throw std::runtime_error("fault mid-backlog");
        }
      });
    }
    std::atomic<std::uint64_t> handled_{0};
  };

  auto dev = std::make_unique<BoomDevice>();
  BoomDevice* raw = dev.get();
  const auto tid = exec.install(std::move(dev), "boom").value();
  ASSERT_EQ(exec.shard_of(tid), 0u);
  ASSERT_TRUE(exec.enable_all().is_ok());

  constexpr int kFrames = 24;
  for (int i = 0; i < kFrames; ++i) {
    auto frame = exec.alloc_frame(0, /*is_private=*/true);
    ASSERT_TRUE(frame.is_ok());
    i2o::FrameHeader hdr;
    hdr.function = static_cast<std::uint8_t>(i2o::Function::Private);
    hdr.organization = static_cast<std::uint16_t>(i2o::OrgId::kTest);
    hdr.xfunction = kXfnBoom;
    hdr.target = tid;
    auto bytes = frame.value().bytes();
    ASSERT_TRUE(i2o::encode_header(hdr, bytes).is_ok());
    ASSERT_TRUE(exec.frame_send(std::move(frame).value()).is_ok());
  }
  ASSERT_TRUE(pump_until(exec, [&] {
    return exec.device(tid)->state() == DeviceState::Failed;
  }));
  // The third invocation threw (handled_ ends at 3); everything still
  // queued (or stolen) for the device was discarded, not delivered.
  EXPECT_EQ(raw->handled_.load(), 3u);
  ASSERT_TRUE(pump_until(exec, [&] { return !exec.run_once(); }));
  EXPECT_EQ(raw->handled_.load(), 3u);
}

}  // namespace
}  // namespace xdaq::core
