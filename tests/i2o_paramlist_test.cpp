#include "i2o/paramlist.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace xdaq::i2o {
namespace {

TEST(ParamList, EmptyRoundTrip) {
  const ParamList empty;
  std::vector<std::byte> buf(param_list_bytes(empty));
  EXPECT_EQ(buf.size(), 2u);
  ASSERT_TRUE(encode_param_list(empty, buf).is_ok());
  auto d = decode_param_list(buf);
  ASSERT_TRUE(d.is_ok());
  EXPECT_TRUE(d.value().empty());
}

TEST(ParamList, RoundTripPreservesOrderAndValues) {
  const ParamList params{{"class", "EchoDevice"},
                         {"instance", "echo0"},
                         {"payload", "4096"},
                         {"empty", ""}};
  std::vector<std::byte> buf(param_list_bytes(params));
  ASSERT_TRUE(encode_param_list(params, buf).is_ok());
  auto d = decode_param_list(buf);
  ASSERT_TRUE(d.is_ok());
  EXPECT_EQ(d.value(), params);
}

TEST(ParamList, BinaryValuesSurvive) {
  std::string blob;
  for (int i = 0; i < 256; ++i) {
    blob.push_back(static_cast<char>(i));
  }
  const ParamList params{{"blob", blob}};
  std::vector<std::byte> buf(param_list_bytes(params));
  ASSERT_TRUE(encode_param_list(params, buf).is_ok());
  auto d = decode_param_list(buf);
  ASSERT_TRUE(d.is_ok());
  EXPECT_EQ(d.value()[0].second, blob);
}

TEST(ParamList, EncodeRejectsSmallBuffer) {
  const ParamList params{{"k", "v"}};
  std::vector<std::byte> buf(param_list_bytes(params) - 1);
  EXPECT_EQ(encode_param_list(params, buf).code(), Errc::InvalidArgument);
}

TEST(ParamList, DecodeRejectsTruncation) {
  const ParamList params{{"key", "value"}};
  std::vector<std::byte> buf(param_list_bytes(params));
  ASSERT_TRUE(encode_param_list(params, buf).is_ok());
  // Every prefix shorter than the full encoding must fail cleanly.
  for (std::size_t cut = 0; cut < buf.size(); ++cut) {
    const auto d = decode_param_list(std::span(buf.data(), cut));
    EXPECT_FALSE(d.is_ok()) << "cut=" << cut;
    EXPECT_EQ(d.status().code(), Errc::MalformedFrame);
  }
}

TEST(ParamList, LookupHelpers) {
  const ParamList params{{"a", "1"}, {"b", "2"}, {"a", "3"}};
  EXPECT_EQ(param_value(params, "a"), "1");  // first match wins
  EXPECT_EQ(param_value(params, "b"), "2");
  EXPECT_EQ(param_value(params, "zz"), "");
  EXPECT_TRUE(param_has(params, "b"));
  EXPECT_FALSE(param_has(params, "zz"));
}

}  // namespace
}  // namespace xdaq::i2o
