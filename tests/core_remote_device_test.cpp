// core_remote_device_test.cpp - the OSM-style RemoteDevice handle.
#include "core/remote_device.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "pt/cluster.hpp"
#include "test_devices.hpp"
#include "util/random.hpp"

namespace xdaq::core {
namespace {

using xdaq::testing::CounterDevice;
using xdaq::testing::EchoDevice;
using xdaq::testing::kXfnEcho;

struct RemoteDeviceFixture : ::testing::Test {
  pt::Cluster cluster;
  Requester* req = nullptr;
  i2o::Tid remote_kernel = i2o::kNullTid;

  void SetUp() override {
    ASSERT_TRUE(cluster
                    .install(1, std::make_unique<EchoDevice>(), "echo")
                    .is_ok());
    auto r = std::make_unique<Requester>();
    req = r.get();
    ASSERT_TRUE(cluster.install(0, std::move(r), "req").is_ok());
    remote_kernel = cluster.node(0)
                        .register_remote(cluster.node_id(1),
                                         i2o::kExecutiveTid)
                        .value();
    // Enable the transports; the echo device stays under handle control.
    for (std::size_t i = 0; i < 2; ++i) {
      ASSERT_TRUE(cluster.node(i)
                      .enable(cluster.node(i).tid_of("pt_gm").value())
                      .is_ok());
    }
    cluster.start_all();
  }
  void TearDown() override { cluster.stop_all(); }
};

TEST_F(RemoteDeviceFixture, OpenResolvesRemoteInstance) {
  auto dev = RemoteDevice::open(*req, remote_kernel, "echo",
                                std::chrono::seconds(5));
  ASSERT_TRUE(dev.is_ok()) << dev.status().to_string();
  EXPECT_EQ(dev.value().instance(), "echo");
  EXPECT_NE(dev.value().tid(), i2o::kNullTid);
  EXPECT_TRUE(dev.value().ping().is_ok());
}

TEST_F(RemoteDeviceFixture, OpenUnknownInstanceFails) {
  auto dev = RemoteDevice::open(*req, remote_kernel, "ghost",
                                std::chrono::seconds(5));
  EXPECT_FALSE(dev.is_ok());
  EXPECT_EQ(dev.status().code(), Errc::NotFound);
}

TEST_F(RemoteDeviceFixture, FullLifecycleThroughHandle) {
  auto opened = RemoteDevice::open(*req, remote_kernel, "echo",
                                   std::chrono::seconds(5));
  ASSERT_TRUE(opened.is_ok());
  RemoteDevice dev = std::move(opened).value();

  EXPECT_EQ(dev.state().value_or(""), "Loaded");
  ASSERT_TRUE(dev.configure({{"some_param", "7"}}).is_ok());
  EXPECT_EQ(dev.state().value_or(""), "Configured");
  ASSERT_TRUE(dev.enable().is_ok());
  EXPECT_EQ(dev.state().value_or(""), "Enabled");

  // Application traffic through the same handle.
  const auto raw = make_payload(64, 3);
  std::vector<std::byte> payload(64);
  std::memcpy(payload.data(), raw.data(), 64);
  auto reply = dev.call(i2o::OrgId::kTest, kXfnEcho, payload);
  ASSERT_TRUE(reply.is_ok());
  EXPECT_FALSE(reply.value().failed());
  EXPECT_EQ(
      std::memcmp(reply.value().payload.data(), payload.data(), 64), 0);

  ASSERT_TRUE(dev.suspend().is_ok());
  EXPECT_EQ(dev.state().value_or(""), "Suspended");
  ASSERT_TRUE(dev.resume().is_ok());
  ASSERT_TRUE(dev.halt().is_ok());
  EXPECT_EQ(dev.state().value_or(""), "Halted");
  ASSERT_TRUE(dev.reset().is_ok());
  EXPECT_EQ(dev.state().value_or(""), "Loaded");
}

TEST_F(RemoteDeviceFixture, IllegalTransitionSurfacesError) {
  auto dev = RemoteDevice::open(*req, remote_kernel, "echo",
                                std::chrono::seconds(5));
  ASSERT_TRUE(dev.is_ok());
  ASSERT_TRUE(dev.value().enable().is_ok());
  const Status again = dev.value().enable();
  EXPECT_FALSE(again.is_ok());
  EXPECT_NE(again.message().find("enable requires"),
            std::string_view::npos);
}

TEST_F(RemoteDeviceFixture, ParamsRoundTrip) {
  auto dev = RemoteDevice::open(*req, remote_kernel, "echo",
                                std::chrono::seconds(5));
  ASSERT_TRUE(dev.is_ok());
  auto params = dev.value().params();
  ASSERT_TRUE(params.is_ok());
  EXPECT_EQ(i2o::param_value(params.value(), "class"), "EchoDevice");
  EXPECT_EQ(dev.value().param("instance").value_or(""), "echo");
  EXPECT_TRUE(dev.value().set_params({{"anything", "x"}}).is_ok());
}

TEST(RemoteDeviceLocal, WorksForLocalDevicesToo) {
  // The same handle drives a device on the caller's own node: the kernel
  // is local, no proxies involved ("The caller never needs to know").
  Executive exec;
  ASSERT_TRUE(
      exec.install(std::make_unique<CounterDevice>(), "cnt").is_ok());
  auto r = std::make_unique<Requester>();
  Requester* req = r.get();
  ASSERT_TRUE(exec.install(std::move(r), "req").is_ok());
  exec.start();
  auto dev = RemoteDevice::open(*req, exec.kernel_tid(), "cnt",
                                std::chrono::seconds(5));
  ASSERT_TRUE(dev.is_ok()) << dev.status().to_string();
  EXPECT_EQ(dev.value().tid(), exec.tid_of("cnt").value());
  EXPECT_TRUE(dev.value().enable().is_ok());
  EXPECT_EQ(dev.value().state().value_or(""), "Enabled");
  exec.stop();
}

}  // namespace
}  // namespace xdaq::core
