#include "pt/fifo_pt.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "core/requester.hpp"
#include "test_devices.hpp"
#include "util/random.hpp"

namespace xdaq::pt {
namespace {

using core::Requester;
using xdaq::testing::EchoDevice;
using xdaq::testing::kXfnEcho;

/// Host executive + IOP-board executive joined by the FIFO link,
/// mirroring the paper's PLX IOP 480 setup (section 7).
struct HostIop {
  FifoLink link;
  core::Executive host{core::ExecutiveConfig{.node_id = 1, .name = "host"}};
  core::Executive iop{core::ExecutiveConfig{.node_id = 2, .name = "iop"}};
  FifoTransport* pt_host = nullptr;
  FifoTransport* pt_iop = nullptr;

  explicit HostIop(std::size_t depth = 256) : link(depth) {
    auto th = std::make_unique<FifoTransport>(link, 0);
    auto ti = std::make_unique<FifoTransport>(link, 1);
    pt_host = th.get();
    pt_iop = ti.get();
    EXPECT_TRUE(host.install(std::move(th), "pt_fifo").is_ok());
    EXPECT_TRUE(iop.install(std::move(ti), "pt_fifo").is_ok());
    EXPECT_TRUE(host.set_route(2, pt_host->tid()).is_ok());
    EXPECT_TRUE(iop.set_route(1, pt_iop->tid()).is_ok());
  }
};

TEST(FifoPt, EchoAcrossTheSegment) {
  HostIop pair;
  ASSERT_TRUE(pair.iop.install(std::make_unique<EchoDevice>(), "echo")
                  .is_ok());
  auto req = std::make_unique<Requester>();
  Requester* req_raw = req.get();
  ASSERT_TRUE(pair.host.install(std::move(req), "req").is_ok());
  const auto proxy =
      pair.host.register_remote(2, pair.iop.tid_of("echo").value()).value();
  ASSERT_TRUE(pair.host.enable_all().is_ok());
  ASSERT_TRUE(pair.iop.enable_all().is_ok());
  pair.host.start();
  pair.iop.start();

  const auto raw = make_payload(512, 7);
  std::vector<std::byte> payload(512);
  std::memcpy(payload.data(), raw.data(), 512);
  auto reply = req_raw->call_private(proxy, i2o::OrgId::kTest, kXfnEcho,
                                     payload, xdaq::core::CallOptions{.timeout = std::chrono::seconds(5)});
  pair.host.stop();
  pair.iop.stop();
  ASSERT_TRUE(reply.is_ok()) << reply.status().to_string();
  EXPECT_EQ(std::memcmp(reply.value().payload.data(), payload.data(), 512),
            0);
}

TEST(FifoPt, SendToWrongNodeUnroutable) {
  HostIop pair;
  std::vector<std::byte> frame(i2o::kStdHeaderBytes);
  EXPECT_EQ(pair.pt_host->transport_send(99, frame).code(),
            Errc::Unroutable);
}

TEST(FifoPt, FullFifoRejectsLikeHardware) {
  HostIop pair(4);  // 4 slots per direction
  std::vector<std::byte> frame(i2o::kStdHeaderBytes);
  // The IOP side never polls (executive not running): fill its FIFO.
  int accepted = 0;
  for (int i = 0; i < 16; ++i) {
    if (pair.pt_host->transport_send(2, frame).is_ok()) {
      ++accepted;
    }
  }
  EXPECT_EQ(accepted, 4);
  EXPECT_EQ(pair.pt_host->fifo_full_rejects(), 12u);
  // Draining the FIFO makes room again.
  ASSERT_TRUE(pair.iop.enable(pair.pt_iop->tid()).is_ok());
  pair.iop.run_once();
  EXPECT_TRUE(pair.pt_host->transport_send(2, frame).is_ok());
}

TEST(FifoPt, ParamsReportFifoState) {
  HostIop pair;
  ASSERT_TRUE(pair.host.enable_all().is_ok());
  core::Device* dev = pair.host.device(pair.pt_host->tid());
  ASSERT_NE(dev, nullptr);
  // Drive a ParamsGet through the message path.
  auto req = std::make_unique<Requester>();
  Requester* req_raw = req.get();
  ASSERT_TRUE(pair.host.install(std::move(req), "req").is_ok());
  pair.host.start();
  auto reply = req_raw->call_standard(pair.pt_host->tid(),
                                      i2o::Function::UtilParamsGet, {},
                                      xdaq::core::CallOptions{.timeout = std::chrono::seconds(2)});
  pair.host.stop();
  ASSERT_TRUE(reply.is_ok());
  auto params = reply.value().params();
  ASSERT_TRUE(params.is_ok());
  EXPECT_EQ(i2o::param_value(params.value(), "endpoint"), "0");
  EXPECT_EQ(i2o::param_value(params.value(), "fifo_depth"), "256");
}

TEST(FifoPt, BidirectionalTrafficBothDirections) {
  HostIop pair;
  ASSERT_TRUE(pair.iop.install(std::make_unique<EchoDevice>(), "echo_iop")
                  .is_ok());
  ASSERT_TRUE(pair.host.install(std::make_unique<EchoDevice>(), "echo_host")
                  .is_ok());
  auto req_h = std::make_unique<Requester>();
  Requester* rh = req_h.get();
  ASSERT_TRUE(pair.host.install(std::move(req_h), "req_h").is_ok());
  auto req_i = std::make_unique<Requester>();
  Requester* ri = req_i.get();
  ASSERT_TRUE(pair.iop.install(std::move(req_i), "req_i").is_ok());
  const auto to_iop =
      pair.host.register_remote(2, pair.iop.tid_of("echo_iop").value())
          .value();
  const auto to_host =
      pair.iop.register_remote(1, pair.host.tid_of("echo_host").value())
          .value();
  ASSERT_TRUE(pair.host.enable_all().is_ok());
  ASSERT_TRUE(pair.iop.enable_all().is_ok());
  pair.host.start();
  pair.iop.start();
  for (int i = 0; i < 50; ++i) {
    auto a = rh->call_private(to_iop, i2o::OrgId::kTest, kXfnEcho, {},
                              xdaq::core::CallOptions{.timeout = std::chrono::seconds(5)});
    auto b = ri->call_private(to_host, i2o::OrgId::kTest, kXfnEcho, {},
                              xdaq::core::CallOptions{.timeout = std::chrono::seconds(5)});
    ASSERT_TRUE(a.is_ok()) << i;
    ASSERT_TRUE(b.is_ok()) << i;
  }
  pair.host.stop();
  pair.iop.stop();
}

}  // namespace
}  // namespace xdaq::pt
