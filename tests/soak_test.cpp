// soak_test.cpp - randomized cross-node traffic soak.
//
// Property: under an arbitrary interleaving of senders, payload sizes,
// and targets across a multi-node cluster, every message is either
// delivered exactly once with intact content or accounted for as an
// explicit failure - nothing is silently lost or duplicated.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>

#include "core/device.hpp"
#include "i2o/wire.hpp"
#include "pt/cluster.hpp"
#include "util/random.hpp"

namespace xdaq {
namespace {

constexpr std::uint16_t kXfnSoak = 0x0055;

/// Receives soak messages: validates the deterministic payload pattern
/// derived from the embedded sequence number.
class SoakSink final : public core::Device {
 public:
  SoakSink() : Device("SoakSink") {
    bind(i2o::OrgId::kTest, kXfnSoak, [this](const core::MessageContext& c) {
      if (c.payload.size() < 12) {
        ++malformed_;
        return;
      }
      const std::uint64_t seq = i2o::get_u64(c.payload, 0);
      const std::uint32_t len = i2o::get_u32(c.payload, 8);
      if (c.payload.size() < 12 + len) {
        ++malformed_;
        return;
      }
      const auto expect = make_payload(len, seq);
      if (len != 0 &&
          std::memcmp(c.payload.data() + 12, expect.data(), len) != 0) {
        ++corrupt_;
        return;
      }
      received_.fetch_add(1, std::memory_order_relaxed);
      bytes_.fetch_add(len, std::memory_order_relaxed);
    });
  }

  std::atomic<std::uint64_t> received_{0};
  std::atomic<std::uint64_t> bytes_{0};
  std::atomic<std::uint64_t> malformed_{0};
  std::atomic<std::uint64_t> corrupt_{0};
};

/// Sends soak messages with deterministic pattern payloads.
class SoakSource final : public core::Device {
 public:
  SoakSource() : Device("SoakSource") {}

  Status fire(i2o::Tid target, std::uint64_t seq, std::uint32_t len) {
    const auto pattern = make_payload(len, seq);
    std::vector<std::byte> payload(12 + len);
    i2o::put_u64(payload, 0, seq);
    i2o::put_u32(payload, 8, len);
    if (len != 0) {
      std::memcpy(payload.data() + 12, pattern.data(), len);
    }
    auto frame =
        make_private_frame(target, i2o::OrgId::kTest, kXfnSoak, payload);
    if (!frame.is_ok()) {
      return frame.status();
    }
    return frame_send(std::move(frame).value());
  }
};

class SoakP : public ::testing::TestWithParam<int> {};

TEST_P(SoakP, RandomTrafficDeliveredExactlyOnceIntact) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  constexpr std::size_t kNodes = 3;
  constexpr int kSendersPerNode = 2;
  constexpr std::uint64_t kMessages = 3000;

  pt::Cluster cluster(pt::ClusterConfig{.nodes = kNodes});
  std::vector<SoakSink*> sinks;
  std::vector<SoakSource*> sources;
  for (std::size_t i = 0; i < kNodes; ++i) {
    auto sink = std::make_unique<SoakSink>();
    sinks.push_back(sink.get());
    ASSERT_TRUE(cluster.install(i, std::move(sink), "sink").is_ok());
    for (int s = 0; s < kSendersPerNode; ++s) {
      auto src = std::make_unique<SoakSource>();
      sources.push_back(src.get());
      ASSERT_TRUE(
          cluster.install(i, std::move(src), "src" + std::to_string(s))
              .is_ok());
    }
  }
  // Every node gets proxies for every other node's sink.
  std::vector<std::vector<i2o::Tid>> sink_tids(kNodes);
  for (std::size_t from = 0; from < kNodes; ++from) {
    for (std::size_t to = 0; to < kNodes; ++to) {
      if (from == to) {
        sink_tids[from].push_back(
            cluster.node(from).tid_of("sink").value());
      } else {
        sink_tids[from].push_back(cluster.connect(from, to, "sink").value());
      }
    }
  }
  ASSERT_TRUE(cluster.enable_all().is_ok());
  cluster.start_all();

  // Sender threads: random targets and sizes, retrying on backpressure.
  std::atomic<std::uint64_t> sent{0};
  std::vector<std::thread> threads;
  const std::size_t n_sources = sources.size();
  threads.reserve(n_sources);
  for (std::size_t s = 0; s < n_sources; ++s) {
    threads.emplace_back([&, s] {
      Rng rng(seed * 1000 + s);
      const std::size_t node = s / kSendersPerNode;
      for (std::uint64_t i = 0; i < kMessages / n_sources; ++i) {
        const std::size_t to = rng.below(kNodes);
        const auto len = static_cast<std::uint32_t>(rng.below(2048));
        const std::uint64_t seq = (s << 32) | i;
        for (;;) {
          const Status st =
              sources[s]->fire(sink_tids[node][to], seq, len);
          if (st.is_ok()) {
            sent.fetch_add(1, std::memory_order_relaxed);
            break;
          }
          if (st.code() != Errc::ResourceExhausted) {
            ADD_FAILURE() << "send failed: " << st.to_string();
            return;
          }
          std::this_thread::yield();  // backpressure: retry
        }
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }

  // Drain: all sent messages must arrive.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  auto total_received = [&] {
    std::uint64_t n = 0;
    for (const SoakSink* sink : sinks) {
      n += sink->received_.load(std::memory_order_relaxed);
    }
    return n;
  };
  while (total_received() < sent.load() &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  cluster.stop_all();

  EXPECT_EQ(total_received(), sent.load());
  for (std::size_t i = 0; i < kNodes; ++i) {
    EXPECT_EQ(sinks[i]->malformed_.load(), 0u) << "node " << i;
    EXPECT_EQ(sinks[i]->corrupt_.load(), 0u) << "node " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SoakP, ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace xdaq
