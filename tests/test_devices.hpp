// test_devices.hpp - device classes shared by core/pt/integration tests.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/device.hpp"
#include "core/executive.hpp"
#include "core/factory.hpp"

namespace xdaq::testing {

inline constexpr std::uint16_t kXfnEcho = 0x0001;
inline constexpr std::uint16_t kXfnCount = 0x0002;
inline constexpr std::uint16_t kXfnSleep = 0x0003;
inline constexpr std::uint16_t kXfnThrow = 0x0004;

/// Replies to kXfnEcho with the request payload verbatim (the paper's
/// blackbox device: "responds by replying to each received message with
/// exactly the same content").
class EchoDevice : public core::Device {
 public:
  EchoDevice() : Device("EchoDevice") {
    bind(i2o::OrgId::kTest, kXfnEcho, [this](const core::MessageContext& c) {
      ++echoed_;
      (void)frame_reply(c, c.payload);
    });
  }

  [[nodiscard]] std::uint64_t echoed() const noexcept { return echoed_; }

 private:
  std::atomic<std::uint64_t> echoed_{0};
};

/// Counts kXfnCount messages; never replies.
class CounterDevice : public core::Device {
 public:
  CounterDevice() : Device("CounterDevice") {
    bind(i2o::OrgId::kTest, kXfnCount,
         [this](const core::MessageContext&) { ++count_; });
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }

  // Lifecycle probes.
  Status on_configure(const i2o::ParamList& params) override {
    last_params_ = params;
    ++configured_;
    return Status::ok();
  }
  Status on_enable() override {
    ++enabled_;
    return Status::ok();
  }
  void on_timer(std::uint32_t timer_id) override {
    last_timer_ = timer_id;
    ++timer_fires_;
  }

  i2o::ParamList last_params_;
  std::atomic<int> configured_{0};
  std::atomic<int> enabled_{0};
  std::atomic<std::uint32_t> last_timer_{0};
  std::atomic<int> timer_fires_{0};

 private:
  std::atomic<std::uint64_t> count_{0};
};

/// Misbehaving handlers: kXfnSleep stalls, kXfnThrow throws. Used for the
/// watchdog / fault-quarantine tests.
class RogueDevice : public core::Device {
 public:
  RogueDevice() : Device("RogueDevice") {
    bind(i2o::OrgId::kTest, kXfnSleep, [](const core::MessageContext&) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    });
    bind(i2o::OrgId::kTest, kXfnThrow, [](const core::MessageContext&) {
      throw std::runtime_error("deliberate fault");
    });
  }
};

/// Pumps an executive until `pred` holds or the deadline passes. For tests
/// that drive the loop manually instead of via start().
template <typename Pred>
bool pump_until(core::Executive& exec, Pred pred,
                std::chrono::milliseconds deadline =
                    std::chrono::milliseconds(2000)) {
  const auto until = std::chrono::steady_clock::now() + deadline;
  while (!pred()) {
    exec.run_once();
    if (std::chrono::steady_clock::now() > until) {
      return false;
    }
  }
  return true;
}

/// Pumps two executives (for cross-node tests without threads).
template <typename Pred>
bool pump_until(core::Executive& a, core::Executive& b, Pred pred,
                std::chrono::milliseconds deadline =
                    std::chrono::milliseconds(2000)) {
  const auto until = std::chrono::steady_clock::now() + deadline;
  while (!pred()) {
    a.run_once();
    b.run_once();
    if (std::chrono::steady_clock::now() > until) {
      return false;
    }
  }
  return true;
}

}  // namespace xdaq::testing
