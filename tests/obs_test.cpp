// obs_test.cpp - metrics registry, hop tracing, and the MonitorDevice.
#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <thread>

#include "core/monitor_device.hpp"
#include "core/requester.hpp"
#include "i2o/wire.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "pt/tcp_pt.hpp"
#include "test_devices.hpp"

namespace xdaq::obs {
namespace {

using xdaq::testing::EchoDevice;
using xdaq::testing::kXfnEcho;

std::string value_of(const i2o::ParamList& params, const std::string& key) {
  return i2o::param_value(params, key);
}

TEST(ObsMetrics, CounterAddSubBump) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.sub(2);
  EXPECT_EQ(c.value(), 40u);
  c.bump();
  EXPECT_EQ(c.value(), 41u);
}

TEST(ObsMetrics, GaugeLastValueWins) {
  Gauge g;
  g.set(-7);
  EXPECT_EQ(g.value(), -7);
  g.add(10);
  EXPECT_EQ(g.value(), 3);
}

TEST(ObsMetrics, HistogramRejectsBadShape) {
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(1.0, 1.0, 8), std::invalid_argument);
  EXPECT_THROW(Histogram(2.0, 1.0, 8), std::invalid_argument);
}

TEST(ObsMetrics, HistogramBinsAndQuantiles) {
  Histogram h(0.0, 100.0, 10);
  for (int i = 0; i < 100; ++i) {
    h.add(static_cast<double>(i) + 0.5);
  }
  h.add(-1.0);    // underflow
  h.add(1000.0);  // overflow
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.total, 102u);
  EXPECT_EQ(s.underflow, 1u);
  EXPECT_EQ(s.overflow, 1u);
  ASSERT_EQ(s.counts.size(), 10u);
  for (const auto count : s.counts) {
    EXPECT_EQ(count, 10u);  // uniform fill: 10 samples per bin
  }
  EXPECT_NEAR(s.mean(), 50.0, 11.0);
  EXPECT_NEAR(s.quantile(0.5), 50.0, 11.0);
  EXPECT_GT(s.quantile(0.9), s.quantile(0.1));
}

TEST(ObsMetrics, RegistryReturnsSameInstrumentForSameName) {
  MetricsRegistry reg;
  Counter& c1 = reg.counter("x");
  Counter& c2 = reg.counter("x");
  EXPECT_EQ(&c1, &c2);
  Histogram& h1 = reg.histogram("h", 0, 10, 4);
  Histogram& h2 = reg.histogram("h", 0, 999, 64);  // shape fixed by first call
  EXPECT_EQ(&h1, &h2);
}

// The registry must stay consistent while the hot path hammers a counter:
// snapshots taken mid-run never exceed the eventual total, never decrease,
// and the final snapshot sees every increment.
TEST(ObsMetrics, SnapshotUnderConcurrentIncrement) {
  MetricsRegistry reg;
  Counter& c = reg.counter("hot");
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 50000;

  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        c.add();
      }
    });
  }

  std::uint64_t last = 0;
  for (int i = 0; i < 200; ++i) {
    const MetricsSnapshot snap = reg.snapshot();
    ASSERT_EQ(snap.counters.size(), 1u);
    const std::uint64_t seen = snap.counters[0].second;
    EXPECT_GE(seen, last);
    EXPECT_LE(seen, kThreads * kPerThread);
    last = seen;
  }
  for (auto& w : writers) {
    w.join();
  }
  EXPECT_EQ(reg.snapshot().counters[0].second, kThreads * kPerThread);
}

TEST(ObsMetrics, ProbeSamplesAppearInSnapshot) {
  MetricsRegistry reg;
  int depth = 3;
  reg.register_probe([&depth](std::vector<Sample>& out) {
    out.push_back({"queue.depth", depth});
  });
  MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.samples.size(), 1u);
  EXPECT_EQ(snap.samples[0].name, "queue.depth");
  EXPECT_EQ(snap.samples[0].value, 3);
  depth = 9;  // probes re-run on every snapshot
  snap = reg.snapshot();
  EXPECT_EQ(snap.samples[0].value, 9);
}

TEST(ObsMetrics, SnapshotExportsParamsAndJson) {
  MetricsRegistry reg;
  reg.counter("c").add(5);
  reg.gauge("g").set(-2);
  reg.histogram("h", 0, 10, 4).add(5.0);
  const MetricsSnapshot snap = reg.snapshot();

  const i2o::ParamList params = snap.to_params();
  EXPECT_EQ(value_of(params, "c"), "5");
  EXPECT_EQ(value_of(params, "g"), "-2");
  EXPECT_EQ(value_of(params, "h.count"), "1");

  const std::string json = snap.to_json();
  EXPECT_NE(json.find("\"c\""), std::string::npos);
  EXPECT_NE(json.find("\"g\""), std::string::npos);
  EXPECT_NE(json.find("\"h\""), std::string::npos);
}

TEST(ObsTrace, NextTraceIdIsNeverZero) {
  std::set<std::uint32_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint32_t id = next_trace_id();
    EXPECT_NE(id, 0u);
    EXPECT_TRUE(seen.insert(id).second) << "duplicate id " << id;
  }
}

TEST(ObsTrace, RingKeepsNewestOldestFirst) {
  TraceRing ring(4);
  EXPECT_EQ(ring.capacity(), 4u);
  for (std::uint32_t i = 1; i <= 6; ++i) {
    ring.record(HopRecord{.trace_id = i, .t_ns = i});
  }
  EXPECT_EQ(ring.recorded(), 6u);
  const auto snap = ring.snapshot();
  ASSERT_EQ(snap.size(), 4u);  // hard cap held across wrap
  EXPECT_EQ(snap.front().trace_id, 3u);
  EXPECT_EQ(snap.back().trace_id, 6u);
}

TEST(ObsTrace, ForTraceFiltersOneJourney) {
  TraceRing ring(16);
  ring.record(HopRecord{.trace_id = 7, .hop = Hop::Send});
  ring.record(HopRecord{.trace_id = 9, .hop = Hop::Send});
  ring.record(HopRecord{.trace_id = 7, .hop = Hop::TxWire});
  ring.record(
      HopRecord{.trace_id = 7, .hop = Hop::Dispatch, .is_reply = true});
  const auto hops = ring.for_trace(7);
  ASSERT_EQ(hops.size(), 3u);
  EXPECT_EQ(hops[0].hop, Hop::Send);
  EXPECT_EQ(hops[1].hop, Hop::TxWire);
  EXPECT_EQ(hops[2].hop, Hop::Dispatch);
  EXPECT_TRUE(hops[2].is_reply);
}

// --- MonitorDevice -------------------------------------------------------

TEST(MonitorDevice, LocalSnapshotCarriesAllSubsystems) {
  core::Executive exec(core::ExecutiveConfig{.node_id = 5, .name = "mon"});
  auto monitor = std::make_unique<core::MonitorDevice>();
  core::MonitorDevice* mon = monitor.get();
  ASSERT_TRUE(exec.install(std::move(monitor), "monitor").is_ok());

  const i2o::ParamList params = mon->snapshot_params();
  EXPECT_EQ(value_of(params, "node"), "5");
  EXPECT_EQ(value_of(params, "name"), "mon");
  // Executive counters, scheduler depths and pool stats are all wired at
  // construction; each subsystem must show up in one snapshot.
  EXPECT_FALSE(value_of(params, "exec.posted").empty());
  EXPECT_FALSE(value_of(params, "exec.dispatched").empty());
  EXPECT_FALSE(value_of(params, "sched.pending.p0").empty());
  EXPECT_FALSE(value_of(params, "pool.allocs").empty());
  // View-vs-block accounting: block allocations and sub-block views are
  // reported side by side.
  EXPECT_FALSE(value_of(params, "pool.views").empty());

  const std::string json = mon->snapshot_json();
  EXPECT_NE(json.find("exec.posted"), std::string::npos);
}

TEST(MonitorDevice, InstallableByClassName) {
  core::Executive exec(core::ExecutiveConfig{.node_id = 6, .name = "f"});
  auto tid = exec.install_class("MonitorDevice", "monitor");
  ASSERT_TRUE(tid.is_ok()) << tid.status().to_string();
  EXPECT_EQ(exec.tid_of("monitor").value(), tid.value());
}

/// Two executives joined by TCP on localhost (pt_tcp_test idiom), with an
/// echo device + monitor on b and a requester on a.
struct ObsTcpPair {
  core::Executive a{core::ExecutiveConfig{.node_id = 1, .name = "a"}};
  core::Executive b{core::ExecutiveConfig{.node_id = 2, .name = "b"}};
  pt::TcpPeerTransport* pt_a = nullptr;
  pt::TcpPeerTransport* pt_b = nullptr;
  core::Requester* req = nullptr;
  core::MonitorDevice* mon_b = nullptr;

  ObsTcpPair() {
    auto ta = std::make_unique<pt::TcpPeerTransport>();
    auto tb = std::make_unique<pt::TcpPeerTransport>();
    pt_a = ta.get();
    pt_b = tb.get();
    EXPECT_TRUE(a.install(std::move(ta), "pt_tcp").is_ok());
    EXPECT_TRUE(b.install(std::move(tb), "pt_tcp").is_ok());
    EXPECT_TRUE(a.set_route(2, pt_a->tid()).is_ok());
    EXPECT_TRUE(b.set_route(1, pt_b->tid()).is_ok());
    EXPECT_TRUE(a.enable(pt_a->tid()).is_ok());
    EXPECT_TRUE(b.enable(pt_b->tid()).is_ok());
    pt_a->add_peer(2, "127.0.0.1", pt_b->listen_port());
    pt_b->add_peer(1, "127.0.0.1", pt_a->listen_port());

    EXPECT_TRUE(b.install(std::make_unique<EchoDevice>(), "echo").is_ok());
    auto monitor = std::make_unique<core::MonitorDevice>();
    mon_b = monitor.get();
    EXPECT_TRUE(b.install(std::move(monitor), "monitor").is_ok());
    auto requester = std::make_unique<core::Requester>();
    req = requester.get();
    EXPECT_TRUE(a.install(std::move(requester), "req").is_ok());
    EXPECT_TRUE(a.enable_all().is_ok());
    EXPECT_TRUE(b.enable_all().is_ok());
  }
};

bool has_hop(const std::vector<HopRecord>& hops, Hop hop, bool is_reply) {
  for (const auto& r : hops) {
    if (r.hop == hop && r.is_reply == is_reply) {
      return true;
    }
  }
  return false;
}

// The full journey: a traced request leaves node a, crosses TCP, is
// dispatched on node b, and the reply carries the same trace id home.
// Each node's ring must hold its half of the timeline.
TEST(MonitorDevice, TracedCallAcrossTcpRecordsEveryHop) {
  ObsTcpPair pair;
  const auto proxy =
      pair.a.register_remote(2, pair.b.tid_of("echo").value()).value();
  pair.a.start();
  pair.b.start();

  const std::uint32_t trace_id = next_trace_id();
  auto reply = pair.req->call_private(
      proxy, i2o::OrgId::kTest, kXfnEcho, {},
      core::CallOptions{.timeout = std::chrono::seconds(5),
                        .trace = true,
                        .trace_id = trace_id});
  pair.a.stop();
  pair.b.stop();
  ASSERT_TRUE(reply.is_ok()) << reply.status().to_string();

  ASSERT_NE(pair.a.hop_trace(), nullptr);
  ASSERT_NE(pair.b.hop_trace(), nullptr);
  const auto hops_a = pair.a.hop_trace()->for_trace(trace_id);
  const auto hops_b = pair.b.hop_trace()->for_trace(trace_id);

  // Node a: request sent towards the wire, reply received and dispatched.
  EXPECT_TRUE(has_hop(hops_a, Hop::Send, false));
  EXPECT_TRUE(has_hop(hops_a, Hop::TxWire, false));
  EXPECT_TRUE(has_hop(hops_a, Hop::RxWire, true));
  EXPECT_TRUE(has_hop(hops_a, Hop::Dispatch, true));
  // Node b: request received and dispatched, reply sent towards the wire.
  EXPECT_TRUE(has_hop(hops_b, Hop::RxWire, false));
  EXPECT_TRUE(has_hop(hops_b, Hop::Dispatch, false));
  EXPECT_TRUE(has_hop(hops_b, Hop::TxWire, true));

  // Timestamps are monotonic within each node's half.
  for (const auto* hops : {&hops_a, &hops_b}) {
    for (std::size_t i = 1; i < hops->size(); ++i) {
      EXPECT_GE((*hops)[i].t_ns, (*hops)[i - 1].t_ns);
    }
  }

  // The same journey is queryable through the monitor's trace dump.
  const i2o::ParamList trace = pair.mon_b->trace_params(trace_id);
  EXPECT_EQ(value_of(trace, "hops"), std::to_string(hops_b.size()));
}

// Remote observability: the monitor answers kXfnObsSnapshot over the same
// proxy-TiD path as any other device, so node a can read node b's
// executive/scheduler/pool/transport metrics across TCP.
TEST(MonitorDevice, RemoteSnapshotOverTcp) {
  ObsTcpPair pair;
  const auto echo_proxy =
      pair.a.register_remote(2, pair.b.tid_of("echo").value()).value();
  const auto mon_proxy =
      pair.a.register_remote(2, pair.b.tid_of("monitor").value()).value();
  pair.a.start();
  pair.b.start();

  // Generate some traffic first so the counters are nonzero.
  for (int i = 0; i < 3; ++i) {
    auto echo = pair.req->call_private(
        echo_proxy, i2o::OrgId::kTest, kXfnEcho, {},
        core::CallOptions{.timeout = std::chrono::seconds(5)});
    ASSERT_TRUE(echo.is_ok()) << echo.status().to_string();
  }

  auto reply = pair.req->call_private(
      mon_proxy, i2o::OrgId::kXdaq, core::kXfnObsSnapshot, {},
      core::CallOptions{.timeout = std::chrono::seconds(5)});
  pair.a.stop();
  pair.b.stop();
  ASSERT_TRUE(reply.is_ok()) << reply.status().to_string();
  ASSERT_FALSE(reply.value().failed());
  auto params = reply.value().params();
  ASSERT_TRUE(params.is_ok()) << params.status().to_string();

  EXPECT_EQ(value_of(params.value(), "node"), "2");
  // Node b dispatched at least the 3 echoes by the time the snapshot
  // handler ran (the snapshot request's own dispatch is counted after its
  // handler returns).
  const std::string dispatched = value_of(params.value(), "exec.dispatched");
  ASSERT_FALSE(dispatched.empty());
  EXPECT_GE(std::stoull(dispatched), 3u);
  EXPECT_FALSE(value_of(params.value(), "sched.served.p4").empty());
  EXPECT_FALSE(value_of(params.value(), "pool.allocs").empty());
  EXPECT_FALSE(value_of(params.value(), "pool.views").empty());
  // The installed TCP transport reports under its instance prefix.
  EXPECT_FALSE(
      value_of(params.value(), "pt.pt_tcp.connections").empty());
  // Zero-copy pipeline counters surface in the same snapshot. Node b's
  // traffic (tiny echo frames, one connection, 64 KiB rx blocks) never
  // needs the splice fallback and never touches the copy paths.
  EXPECT_EQ(value_of(params.value(), "pt.pt_tcp.rx_copies"), "0");
  EXPECT_EQ(value_of(params.value(), "pt.pt_tcp.tx_copies"), "0");
  EXPECT_EQ(value_of(params.value(), "pt.pt_tcp.rx_splices"), "0");
}

}  // namespace
}  // namespace xdaq::obs
