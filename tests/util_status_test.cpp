#include "util/status.hpp"

#include <gtest/gtest.h>

namespace xdaq {
namespace {

TEST(Status, DefaultIsOk) {
  const Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_EQ(s.code(), Errc::Ok);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.to_string(), "Ok");
}

TEST(Status, CarriesCodeAndMessage) {
  const Status s(Errc::NotFound, "no such device");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), Errc::NotFound);
  EXPECT_EQ(s.message(), "no such device");
  EXPECT_EQ(s.to_string(), "NotFound: no such device");
}

TEST(Status, OkCodeWithMessageCollapsesToOk) {
  const Status s(Errc::Ok, "ignored");
  EXPECT_TRUE(s.is_ok());
}

TEST(Status, CopyIsCheapAndShares) {
  const Status a(Errc::Timeout, "t");
  const Status b = a;  // NOLINT
  EXPECT_EQ(b.code(), Errc::Timeout);
  EXPECT_EQ(b.message(), "t");
}

TEST(Status, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(Errc::PeerDown); ++c) {
    EXPECT_NE(to_string(static_cast<Errc>(c)), "Unknown");
  }
}

TEST(Status, UnavailabilityCodesRoundTrip) {
  // The fault-tolerance layer leans on these two codes; make sure they
  // survive a Status round trip with distinct names.
  const Status u(Errc::Unavailable, "reconnect pending");
  EXPECT_EQ(u.code(), Errc::Unavailable);
  EXPECT_EQ(to_string(u.code()), "Unavailable");
  const Status d(Errc::PeerDown, "peer 3 is down");
  EXPECT_EQ(d.code(), Errc::PeerDown);
  EXPECT_EQ(to_string(d.code()), "PeerDown");
  EXPECT_NE(to_string(Errc::Unavailable), to_string(Errc::PeerDown));
}

TEST(Result, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(-1), 42);
}

TEST(Result, HoldsError) {
  Result<int> r(Errc::ResourceExhausted, "pool empty");
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), Errc::ResourceExhausted);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(Result, ConstructingFromOkStatusBecomesInternalError) {
  Result<int> r{Status::ok()};
  EXPECT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), Errc::Internal);
}

TEST(Result, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  ASSERT_TRUE(r.is_ok());
  const std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

}  // namespace
}  // namespace xdaq
