// pt_fault_test.cpp - backoff schedule, fault-injecting decorator, and the
// seeded fault soak over real TCP sockets.
#include "pt/fault_pt.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "core/requester.hpp"
#include "core/transport.hpp"
#include "pt/tcp_pt.hpp"
#include "test_devices.hpp"

namespace xdaq::pt {
namespace {

using core::backoff_delay;
using core::Requester;
using core::TransportConfig;
using xdaq::testing::EchoDevice;
using xdaq::testing::kXfnEcho;

// --------------------------------------------------------------- backoff

TEST(Backoff, AttemptZeroIsImmediate) {
  EXPECT_EQ(backoff_delay(TransportConfig{}, 0, 123).count(), 0);
}

TEST(Backoff, JitterlessScheduleDoublesToCap) {
  TransportConfig cfg;
  cfg.backoff_base = std::chrono::milliseconds(10);
  cfg.backoff_cap = std::chrono::milliseconds(80);
  cfg.backoff_jitter = 0.0;
  using ms = std::chrono::milliseconds;
  EXPECT_EQ(backoff_delay(cfg, 1, 7), ms(10));
  EXPECT_EQ(backoff_delay(cfg, 2, 7), ms(20));
  EXPECT_EQ(backoff_delay(cfg, 3, 7), ms(40));
  EXPECT_EQ(backoff_delay(cfg, 4, 7), ms(80));
  EXPECT_EQ(backoff_delay(cfg, 5, 7), ms(80));  // capped
  EXPECT_EQ(backoff_delay(cfg, 60, 7), ms(80));  // no shift overflow
}

TEST(Backoff, JitterStaysWithinConfiguredBand) {
  TransportConfig cfg;
  cfg.backoff_base = std::chrono::milliseconds(100);
  cfg.backoff_cap = std::chrono::seconds(10);
  cfg.backoff_jitter = 0.25;
  Rng rng(99);
  for (int i = 0; i < 200; ++i) {
    const auto d = backoff_delay(cfg, 1, rng.next());
    EXPECT_GE(d, std::chrono::milliseconds(75));
    EXPECT_LE(d, std::chrono::milliseconds(125));
  }
}

TEST(Backoff, SameJitterWordIsDeterministic) {
  TransportConfig cfg;
  const auto a = backoff_delay(cfg, 3, 0xDEADBEEFULL);
  const auto b = backoff_delay(cfg, 3, 0xDEADBEEFULL);
  EXPECT_EQ(a, b);
}

// ------------------------------------------------------------- decorator

/// Inner transport stub that records every frame it is asked to push.
class RecordingTransport final : public core::TransportDevice {
 public:
  RecordingTransport() : TransportDevice("RecordingTransport", Mode::Task) {}

  Status transport_send(i2o::NodeId,
                        std::span<const std::byte> frame) override {
    const std::scoped_lock lock(mutex_);
    frames_.emplace_back(frame.begin(), frame.end());
    return Status::ok();
  }
  void disrupt_peer(i2o::NodeId node) override {
    disrupted_.fetch_add(1);
    (void)node;
  }

  [[nodiscard]] std::size_t delivered() const {
    const std::scoped_lock lock(mutex_);
    return frames_.size();
  }
  [[nodiscard]] std::uint64_t disrupted() const { return disrupted_.load(); }

 private:
  mutable std::mutex mutex_;
  std::vector<std::vector<std::byte>> frames_;
  std::atomic<std::uint64_t> disrupted_{0};
};

std::vector<std::byte> some_frame() {
  return std::vector<std::byte>(i2o::kStdHeaderBytes, std::byte{0x5A});
}

TEST(FaultPt, SeededInjectionIsDeterministic) {
  FaultPlan plan;
  plan.seed = 42;
  plan.drop_rate = 0.3;
  plan.duplicate_rate = 0.3;
  auto run = [&plan] {
    RecordingTransport inner;
    FaultInjectingTransport fault(inner, plan);
    const auto frame = some_frame();
    for (int i = 0; i < 200; ++i) {
      EXPECT_TRUE(fault.transport_send(1, frame).is_ok());
    }
    return std::pair(fault.inject_stats(), inner.delivered());
  };
  const auto [s1, delivered1] = run();
  const auto [s2, delivered2] = run();
  EXPECT_EQ(s1.sends, 200u);
  EXPECT_GT(s1.dropped, 0u);
  EXPECT_GT(s1.duplicated, 0u);
  // Conservation: every non-dropped frame reaches the inner transport,
  // plus one extra per duplication.
  EXPECT_EQ(delivered1, 200u - s1.dropped + s1.duplicated);
  // Same seed, same plan -> identical fault schedule.
  EXPECT_EQ(s1.dropped, s2.dropped);
  EXPECT_EQ(s1.duplicated, s2.duplicated);
  EXPECT_EQ(delivered1, delivered2);
}

TEST(FaultPt, DelayedFramesArriveLate) {
  FaultPlan plan;
  plan.delay_rate = 1.0;
  plan.delay = std::chrono::milliseconds(30);
  RecordingTransport inner;
  FaultInjectingTransport fault(inner, plan);
  ASSERT_TRUE(fault.transport_up().is_ok());
  EXPECT_TRUE(fault.transport_send(1, some_frame()).is_ok());
  EXPECT_EQ(inner.delivered(), 0u);  // still parked on the delay thread
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(2);
  while (inner.delivered() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(inner.delivered(), 1u);
  EXPECT_EQ(fault.inject_stats().delayed, 1u);
  fault.transport_down();
}

TEST(FaultPt, DisconnectInjectionHitsInnerTransport) {
  FaultPlan plan;
  plan.disconnect_rate = 1.0;
  RecordingTransport inner;
  FaultInjectingTransport fault(inner, plan);
  EXPECT_TRUE(fault.transport_send(1, some_frame()).is_ok());
  EXPECT_EQ(inner.disrupted(), 1u);
  EXPECT_EQ(fault.inject_stats().disconnects, 1u);
}

TEST(FaultPt, LivenessForwardsToInner) {
  RecordingTransport inner;
  FaultInjectingTransport fault(inner, FaultPlan{});
  EXPECT_EQ(fault.peer_state(3), core::PeerState::Unknown);
}

// ------------------------------------------------------------ fault soak

TEST(FaultPt, SeededSoakOverTcpLeavesNoLeakedFrames) {
  // A calls B's echo through a fault decorator that drops, delays and
  // duplicates requests (replies come back clean through B's own PT).
  // Some calls time out; nothing may leak and the pool must drain.
  core::Executive a(core::ExecutiveConfig{.node_id = 1, .name = "a"});
  core::Executive b(core::ExecutiveConfig{.node_id = 2, .name = "b"});
  core::TransportConfig tuning;
  tuning.heartbeat_interval = std::chrono::seconds(10);  // out of the way
  auto ta = std::make_unique<TcpPeerTransport>(TcpTransportConfig{}, tuning);
  auto tb = std::make_unique<TcpPeerTransport>(TcpTransportConfig{}, tuning);
  TcpPeerTransport* pt_a = ta.get();
  TcpPeerTransport* pt_b = tb.get();
  ASSERT_TRUE(a.install(std::move(ta), "pt_tcp").is_ok());
  ASSERT_TRUE(b.install(std::move(tb), "pt_tcp").is_ok());

  FaultPlan plan;
  plan.seed = 7;
  plan.drop_rate = 0.15;
  plan.delay_rate = 0.15;
  plan.duplicate_rate = 0.15;
  plan.delay = std::chrono::milliseconds(3);
  auto fault = std::make_unique<FaultInjectingTransport>(*pt_a, plan);
  FaultInjectingTransport* fault_raw = fault.get();
  ASSERT_TRUE(a.install(std::move(fault), "pt_fault").is_ok());

  ASSERT_TRUE(a.set_route(2, fault_raw->tid()).is_ok());
  ASSERT_TRUE(b.set_route(1, pt_b->tid()).is_ok());
  ASSERT_TRUE(b.install(std::make_unique<EchoDevice>(), "echo").is_ok());
  auto req = std::make_unique<Requester>();
  Requester* req_raw = req.get();
  ASSERT_TRUE(a.install(std::move(req), "req").is_ok());
  const auto proxy =
      a.register_remote(2, b.tid_of("echo").value()).value();
  ASSERT_TRUE(a.enable_all().is_ok());
  ASSERT_TRUE(b.enable_all().is_ok());
  pt_a->add_peer(2, "127.0.0.1", pt_b->listen_port());
  pt_b->add_peer(1, "127.0.0.1", pt_a->listen_port());
  a.start();
  b.start();

  int ok = 0;
  int timed_out = 0;
  for (int i = 0; i < 60; ++i) {
    auto reply = req_raw->call_private(proxy, i2o::OrgId::kTest, kXfnEcho,
                                       {}, xdaq::core::CallOptions{.timeout = std::chrono::milliseconds(250)});
    if (reply.is_ok()) {
      ++ok;
    } else {
      ASSERT_EQ(reply.status().code(), Errc::Timeout);
      ++timed_out;
    }
  }
  const auto stats = fault_raw->inject_stats();
  EXPECT_EQ(stats.sends, 60u);
  EXPECT_GT(stats.dropped, 0u);
  EXPECT_GT(ok, 0);
  // Dropped requests are the only way a call can fail here.
  EXPECT_LE(static_cast<std::uint64_t>(timed_out),
            stats.dropped + stats.delayed);
  EXPECT_EQ(req_raw->outstanding(), 0u);

  // Let stragglers (delayed duplicates, late replies) drain, then stop
  // and check the pools are empty: no frame leaked on any path. The
  // check runs after stop because a completion-backend engine holds pool
  // blocks in its provided-buffer ring (plus the shard reserve) for as
  // long as it runs - by design, not a leak; stopping releases them.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(3);
  while ((a.pool().stats().outstanding != 0 ||
          b.pool().stats().outstanding != 0) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  a.stop();
  b.stop();
  pt_a->transport_down();
  pt_b->transport_down();
  EXPECT_EQ(a.pool().stats().outstanding, 0u);
  EXPECT_EQ(b.pool().stats().outstanding, 0u);
}

}  // namespace
}  // namespace xdaq::pt
