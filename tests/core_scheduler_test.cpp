#include "core/scheduler.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace xdaq::core {
namespace {

ScheduledItem item_for(i2o::Tid target, std::uint32_t marker = 0) {
  ScheduledItem it;
  it.header.target = target;
  it.header.transaction_context = marker;
  return it;
}

TEST(Scheduler, EmptyHasNothing) {
  Scheduler s;
  EXPECT_FALSE(s.next().has_value());
  EXPECT_EQ(s.pending(), 0u);
}

TEST(Scheduler, FifoWithinOneDevice) {
  Scheduler s;
  for (std::uint32_t i = 0; i < 5; ++i) {
    s.enqueue(3, item_for(10, i));
  }
  for (std::uint32_t i = 0; i < 5; ++i) {
    auto it = s.next();
    ASSERT_TRUE(it.has_value());
    EXPECT_EQ(it->header.transaction_context, i);
  }
}

TEST(Scheduler, HigherPriorityServedFirst) {
  Scheduler s;
  s.enqueue(5, item_for(10, 100));
  s.enqueue(0, item_for(11, 200));
  s.enqueue(3, item_for(12, 300));
  EXPECT_EQ(s.next()->header.transaction_context, 200u);
  EXPECT_EQ(s.next()->header.transaction_context, 300u);
  EXPECT_EQ(s.next()->header.transaction_context, 100u);
}

TEST(Scheduler, RoundRobinAcrossDevices) {
  Scheduler s;
  // Two messages each for devices A and B at the same priority.
  s.enqueue(3, item_for(1, 10));
  s.enqueue(3, item_for(1, 11));
  s.enqueue(3, item_for(2, 20));
  s.enqueue(3, item_for(2, 21));
  std::vector<std::uint32_t> order;
  while (auto it = s.next()) {
    order.push_back(it->header.transaction_context);
  }
  // A, B alternate; each device's stream stays FIFO.
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], 10u);
  EXPECT_EQ(order[1], 20u);
  EXPECT_EQ(order[2], 11u);
  EXPECT_EQ(order[3], 21u);
}

TEST(Scheduler, RoundRobinDoesNotStarveUnderRefill) {
  Scheduler s;
  // Device 1 keeps refilling; device 2 must still be served.
  s.enqueue(3, item_for(1, 0));
  s.enqueue(3, item_for(2, 1000));
  bool served_dev2 = false;
  for (int round = 0; round < 10; ++round) {
    auto it = s.next();
    ASSERT_TRUE(it.has_value());
    if (it->header.target == 2) {
      served_dev2 = true;
      break;
    }
    s.enqueue(3, item_for(1, static_cast<std::uint32_t>(round + 1)));
  }
  EXPECT_TRUE(served_dev2);
}

TEST(Scheduler, PriorityClamped) {
  Scheduler s;
  s.enqueue(-5, item_for(1, 1));
  s.enqueue(99, item_for(2, 2));
  EXPECT_EQ(s.pending_at(i2o::kHighestPriority), 1u);
  EXPECT_EQ(s.pending_at(i2o::kLowestPriority), 1u);
}

TEST(Scheduler, DiscardForDevice) {
  Scheduler s;
  s.enqueue(3, item_for(1, 1));
  s.enqueue(3, item_for(1, 2));
  s.enqueue(3, item_for(2, 3));
  s.enqueue(5, item_for(1, 4));
  EXPECT_EQ(s.discard_for(1), 3u);
  EXPECT_EQ(s.pending(), 1u);
  auto it = s.next();
  ASSERT_TRUE(it.has_value());
  EXPECT_EQ(it->header.target, 2);
  EXPECT_FALSE(s.next().has_value());
}

TEST(Scheduler, ServedCountersPerPriority) {
  Scheduler s;
  s.enqueue(0, item_for(1));
  s.enqueue(0, item_for(1));
  s.enqueue(6, item_for(2));
  while (s.next()) {
  }
  EXPECT_EQ(s.served_per_priority()[0], 2u);
  EXPECT_EQ(s.served_per_priority()[6], 1u);
}

TEST(Scheduler, NextInPlaceMatchesOptionalVariant) {
  Scheduler s;
  ScheduledItem out;
  out.header.transaction_context = 0xdead;
  EXPECT_FALSE(s.next(out));
  // Idle next() leaves `out` untouched.
  EXPECT_EQ(out.header.transaction_context, 0xdeadu);
  s.enqueue(3, item_for(1, 7));
  s.enqueue(2, item_for(2, 8));
  ASSERT_TRUE(s.next(out));
  EXPECT_EQ(out.header.transaction_context, 8u);  // higher priority first
  ASSERT_TRUE(s.next(out));
  EXPECT_EQ(out.header.transaction_context, 7u);
  EXPECT_FALSE(s.next(out));
  EXPECT_EQ(s.pending(), 0u);
}

// The dispatch loop consumes messages in batches (dispatch_batch > 1): a
// burst of consecutive next() calls with no interleaved enqueues. Batch
// consumption must see exactly the same order as one-at-a-time service.
TEST(Scheduler, BatchConsumptionPreservesPriorityOrder) {
  Scheduler s;
  // Interleave enqueues across three priorities.
  s.enqueue(4, item_for(1, 400));
  s.enqueue(0, item_for(2, 0));
  s.enqueue(2, item_for(3, 200));
  s.enqueue(0, item_for(4, 1));
  s.enqueue(4, item_for(5, 401));
  s.enqueue(2, item_for(6, 201));
  // Drain in one "batch" of consecutive in-place next() calls.
  std::vector<std::uint32_t> order;
  ScheduledItem item;
  while (s.next(item)) {
    order.push_back(item.header.transaction_context);
  }
  // All priority-0 messages precede all priority-2, which precede all
  // priority-4; FIFO within each level.
  EXPECT_EQ(order,
            (std::vector<std::uint32_t>{0, 1, 200, 201, 400, 401}));
}

TEST(Scheduler, BatchConsumptionKeepsRoundRobinFairness) {
  Scheduler s;
  // Three devices, four messages each, all at one priority. Marker
  // encodes device*100 + sequence.
  for (std::uint32_t seq = 0; seq < 4; ++seq) {
    for (i2o::Tid dev = 1; dev <= 3; ++dev) {
      s.enqueue(3, item_for(dev, static_cast<std::uint32_t>(dev) * 100 + seq));
    }
  }
  // Consume in batches of 5 (not a multiple of the device count, so
  // batch boundaries cut across rotation rounds).
  std::vector<std::uint32_t> order;
  ScheduledItem item;
  bool more = true;
  while (more) {
    for (int i = 0; i < 5; ++i) {
      if (!s.next(item)) {
        more = false;
        break;
      }
      order.push_back(item.header.transaction_context);
    }
  }
  ASSERT_EQ(order.size(), 12u);
  // Round robin: each consecutive triple serves all three devices once.
  for (std::size_t round = 0; round < 4; ++round) {
    std::uint32_t devs_seen = 0;
    for (std::size_t i = 0; i < 3; ++i) {
      const std::uint32_t dev = order[round * 3 + i] / 100;
      EXPECT_EQ(order[round * 3 + i] % 100, round);  // FIFO per device
      devs_seen |= 1u << dev;
    }
    EXPECT_EQ(devs_seen, 0b1110u) << "round " << round;
  }
}

TEST(Scheduler, EmptiedDeviceRejoinsRotationFresh) {
  // A device whose FIFO empties keeps its storage but must re-enter the
  // rotation correctly when new messages arrive (the persistent-entry
  // fast path must not leave a stale rotation slot or mask bit).
  Scheduler s;
  s.enqueue(3, item_for(1, 1));
  ScheduledItem item;
  ASSERT_TRUE(s.next(item));
  EXPECT_FALSE(s.next(item));  // level now empty -> mask bit cleared
  s.enqueue(3, item_for(1, 2));
  s.enqueue(3, item_for(2, 3));
  ASSERT_TRUE(s.next(item));
  EXPECT_EQ(item.header.transaction_context, 2u);
  ASSERT_TRUE(s.next(item));
  EXPECT_EQ(item.header.transaction_context, 3u);
  EXPECT_FALSE(s.next(item));
  EXPECT_EQ(s.pending(), 0u);
}

TEST(Scheduler, DiscardForThenNextFindsRemainingLevels) {
  Scheduler s;
  s.enqueue(0, item_for(1, 1));  // will be discarded, emptying level 0
  s.enqueue(5, item_for(2, 2));
  EXPECT_EQ(s.discard_for(1), 1u);
  ScheduledItem item;
  ASSERT_TRUE(s.next(item));  // must skip the emptied level cleanly
  EXPECT_EQ(item.header.transaction_context, 2u);
  EXPECT_FALSE(s.next(item));
}

TEST(DefaultPriority, ControlBeforeApplication) {
  i2o::FrameHeader exec;
  exec.function = static_cast<std::uint8_t>(i2o::Function::ExecEnable);
  i2o::FrameHeader priv;
  priv.function = static_cast<std::uint8_t>(i2o::Function::Private);
  EXPECT_LT(default_priority_for(exec), default_priority_for(priv));
}

// Property: any interleaving of enqueues at one priority preserves global
// per-device FIFO order.
class SchedulerFifoP : public ::testing::TestWithParam<int> {};

TEST_P(SchedulerFifoP, PerDeviceFifoHolds) {
  const int seed = GetParam();
  Scheduler s;
  std::uint32_t seq[4] = {0, 0, 0, 0};
  std::uint32_t rng = static_cast<std::uint32_t>(seed) * 2654435761u + 1;
  for (int i = 0; i < 200; ++i) {
    rng = rng * 1664525u + 1013904223u;
    const i2o::Tid dev = static_cast<i2o::Tid>(1 + (rng >> 16) % 4);
    s.enqueue(3, item_for(dev, seq[dev - 1]++));
  }
  std::uint32_t last_seen[4] = {0, 0, 0, 0};
  bool first[4] = {true, true, true, true};
  while (auto it = s.next()) {
    const auto d = static_cast<std::size_t>(it->header.target - 1);
    if (!first[d]) {
      EXPECT_GT(it->header.transaction_context, last_seen[d]);
    }
    last_seen[d] = it->header.transaction_context;
    first[d] = false;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerFifoP, ::testing::Range(1, 8));

}  // namespace
}  // namespace xdaq::core
