#include "xcl/control.hpp"

#include <gtest/gtest.h>

#include "core/factory.hpp"
#include "core/monitor_device.hpp"
#include "pt/cluster.hpp"
#include "test_devices.hpp"

namespace xdaq::xcl {
namespace {

using xdaq::testing::CounterDevice;
using xdaq::testing::EchoDevice;

XDAQ_REGISTER_DEVICE(CounterDevice)

/// Primary-host setup: node 0 is the host, nodes 1..2 are workers.
struct ControlFixture : ::testing::Test {
  pt::Cluster cluster{pt::ClusterConfig{.nodes = 3}};
  std::unique_ptr<ControlSession> session;

  void SetUp() override {
    ASSERT_TRUE(cluster
                    .install(1, std::make_unique<EchoDevice>(), "echo")
                    .is_ok());
    ASSERT_TRUE(cluster
                    .install(2, std::make_unique<CounterDevice>(), "cnt")
                    .is_ok());
    session = std::make_unique<ControlSession>(cluster.node(0),
                                               std::chrono::seconds(5));
    ASSERT_TRUE(session->add_node("worker1", cluster.node_id(1)).is_ok());
    ASSERT_TRUE(session->add_node("worker2", cluster.node_id(2)).is_ok());
    // Enable only the transports; devices stay under script control.
    for (std::size_t i = 0; i < 3; ++i) {
      ASSERT_TRUE(cluster.node(i)
                      .enable(cluster.node(i).tid_of("pt_gm").value())
                      .is_ok());
    }
    cluster.start_all();
  }

  void TearDown() override { cluster.stop_all(); }
};

TEST_F(ControlFixture, PingAllNodes) {
  EXPECT_TRUE(session->ping("worker1").is_ok());
  EXPECT_TRUE(session->ping("worker2").is_ok());
  EXPECT_EQ(session->ping("ghost").code(), Errc::NotFound);
}

TEST_F(ControlFixture, StatusReportsRemoteDevices) {
  auto status = session->status("worker1");
  ASSERT_TRUE(status.is_ok()) << status.status().to_string();
  EXPECT_EQ(i2o::param_value(status.value(), "name"), "node2");
  EXPECT_TRUE(i2o::param_has(status.value(), "device.echo"));
}

TEST_F(ControlFixture, ConfigureEnableLifecycle) {
  ASSERT_TRUE(
      session->configure("worker2", "cnt", {{"rate", "50"}}).is_ok());
  ASSERT_TRUE(
      session->state_op("worker2", "cnt", i2o::Function::ExecEnable)
          .is_ok());
  auto params = session->param_get("worker2", "cnt");
  ASSERT_TRUE(params.is_ok());
  EXPECT_EQ(i2o::param_value(params.value(), "state"), "Enabled");
}

TEST_F(ControlFixture, EnableNonexistentInstanceFails) {
  const Status st =
      session->state_op("worker1", "ghost", i2o::Function::ExecEnable);
  EXPECT_FALSE(st.is_ok());
}

TEST_F(ControlFixture, LoadInstantiatesRemoteClass) {
  ASSERT_TRUE(
      session->load("worker1", "CounterDevice", "cnt_loaded", {}).is_ok());
  auto params = session->param_get("worker1", "cnt_loaded");
  ASSERT_TRUE(params.is_ok());
  EXPECT_EQ(i2o::param_value(params.value(), "class"), "CounterDevice");
}

TEST_F(ControlFixture, DeviceProxyIsStable) {
  auto p1 = session->device_proxy("worker1", "echo");
  auto p2 = session->device_proxy("worker1", "echo");
  ASSERT_TRUE(p1.is_ok());
  ASSERT_TRUE(p2.is_ok());
  EXPECT_EQ(p1.value(), p2.value());
}

TEST_F(ControlFixture, MetricsReachRemoteMonitor) {
  auto monitor = std::make_unique<core::MonitorDevice>();
  ASSERT_TRUE(cluster.install(1, std::move(monitor), "monitor").is_ok());
  ASSERT_TRUE(cluster.node(1)
                  .enable(cluster.node(1).tid_of("monitor").value())
                  .is_ok());

  auto params = session->metrics("worker1");
  ASSERT_TRUE(params.is_ok()) << params.status().to_string();
  EXPECT_FALSE(
      i2o::param_value(params.value(), "exec.dispatched").empty());
  // The worker's GM transport reports under its instance prefix.
  EXPECT_FALSE(
      i2o::param_value(params.value(), "pt.pt_gm.sends").empty());

  // Same snapshot through the script surface.
  Interp interp;
  session->bind(interp);
  EvalResult r = interp.eval("llength [xdaq metrics worker1]");
  ASSERT_TRUE(r.is_ok()) << r.value;
  EXPECT_GT(std::stoi(r.value), 10);
}

TEST_F(ControlFixture, ScriptDrivesCluster) {
  Interp interp;
  std::vector<std::string> out;
  interp.set_output([&out](const std::string& s) { out.push_back(s); });
  session->bind(interp);

  EvalResult r = interp.eval(R"(
# bring up the echo device on worker1 from a script
xdaq ping worker1
xdaq configure worker1 echo
xdaq enable worker1 echo
puts "state: [xdaq paramget worker1 echo state]"
puts "nodes: [llength [xdaq nodes]]"
)");
  ASSERT_TRUE(r.is_ok()) << r.value;
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], "state: Enabled");
  EXPECT_EQ(out[1], "nodes: 2");
}

TEST_F(ControlFixture, ScriptForeachOverNodes) {
  Interp interp;
  session->bind(interp);
  EvalResult r = interp.eval(R"(
set ok 0
foreach n [xdaq nodes] {
  if {[catch {xdaq ping $n} msg] == 0} { incr ok }
}
set ok
)");
  ASSERT_TRUE(r.is_ok()) << r.value;
  EXPECT_EQ(r.value, "2");
}

TEST_F(ControlFixture, ScriptErrorsSurfaceToCatch) {
  Interp interp;
  session->bind(interp);
  EvalResult r = interp.eval("catch {xdaq ping nowhere} msg; set msg");
  ASSERT_TRUE(r.is_ok());
  EXPECT_NE(r.value.find("unknown node"), std::string::npos);
}

TEST_F(ControlFixture, WildcardEnablesEveryDevice) {
  // instance "*" applies the state operation to all non-kernel devices
  // on the node (PT included, which is already enabled -> use a node
  // whose PT is the only enabled device and target the rest).
  ASSERT_TRUE(
      session->state_op("worker1", "echo", i2o::Function::ExecEnable)
          .is_ok());
  // A second wildcard enable must fail: echo and the PT are now Enabled.
  const Status again =
      session->state_op("worker1", "*", i2o::Function::ExecEnable);
  EXPECT_FALSE(again.is_ok());
  // Wildcard suspend/resume cycles everything that is enabled.
  ASSERT_TRUE(
      session->state_op("worker1", "*", i2o::Function::ExecSuspend)
          .is_ok());
  EXPECT_EQ(
      i2o::param_value(session->param_get("worker1", "echo").value(),
                       "state"),
      "Suspended");
  ASSERT_TRUE(
      session->state_op("worker1", "*", i2o::Function::ExecResume)
          .is_ok());
  EXPECT_EQ(
      i2o::param_value(session->param_get("worker1", "echo").value(),
                       "state"),
      "Enabled");
}

TEST_F(ControlFixture, SuspendedDeviceRejectsApplicationTraffic) {
  ASSERT_TRUE(
      session->state_op("worker1", "echo", i2o::Function::ExecEnable)
          .is_ok());
  ASSERT_TRUE(
      session->state_op("worker1", "echo", i2o::Function::ExecSuspend)
          .is_ok());
  auto echo_proxy = session->device_proxy("worker1", "echo");
  ASSERT_TRUE(echo_proxy.is_ok());
  auto reply = session->requester().call_private(
      echo_proxy.value(), i2o::OrgId::kTest, xdaq::testing::kXfnEcho, {},
      xdaq::core::CallOptions{.timeout = std::chrono::seconds(5)});
  ASSERT_TRUE(reply.is_ok());
  EXPECT_TRUE(reply.value().failed());  // suspended -> rejected
  // Control traffic still works while suspended.
  auto params = session->param_get("worker1", "echo");
  ASSERT_TRUE(params.is_ok());
  EXPECT_EQ(i2o::param_value(params.value(), "state"), "Suspended");
}

TEST_F(ControlFixture, ParamSetReachesRemoteDevice) {
  // CounterDevice's default on_params_set accepts silently; verify the
  // round trip completes without error.
  ASSERT_TRUE(
      session->state_op("worker2", "cnt", i2o::Function::ExecEnable)
          .is_ok());
  EXPECT_TRUE(
      session->param_set("worker2", "cnt", {{"anything", "1"}}).is_ok());
}

}  // namespace
}  // namespace xdaq::xcl
