// marshal.hpp - typed (un)marshalling over I2O frame payloads.
//
// Paper section 4: "adapters can be provided that allow a remote method
// invocation style communication scheme. The stub part will take the call
// parameters and marshal them into a standard message, whereas the
// skeleton part scans the message and provides typed pointers to its
// contents." Unmarshaller::view_bytes is the buffer-loaning path: it
// returns a span into the received frame instead of copying.
//
// Encoding: little-endian scalars; strings and byte blobs are u32
// length-prefixed; vectors are u32 count-prefixed elements.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "util/status.hpp"

namespace xdaq::rmi {

class Marshaller {
 public:
  Marshaller() = default;

  void put_u8(std::uint8_t v) { append(&v, 1); }
  void put_u16(std::uint16_t v) { put_le(v); }
  void put_u32(std::uint32_t v) { put_le(v); }
  void put_u64(std::uint64_t v) { put_le(v); }
  void put_i32(std::int32_t v) { put_le(static_cast<std::uint32_t>(v)); }
  void put_i64(std::int64_t v) { put_le(static_cast<std::uint64_t>(v)); }
  void put_bool(bool v) { put_u8(v ? 1 : 0); }
  void put_f64(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    put_u64(bits);
  }
  void put_string(std::string_view s) {
    put_u32(static_cast<std::uint32_t>(s.size()));
    append(s.data(), s.size());
  }
  void put_bytes(std::span<const std::byte> b) {
    put_u32(static_cast<std::uint32_t>(b.size()));
    append(b.data(), b.size());
  }
  template <typename T, typename PutFn>
  void put_vector(const std::vector<T>& v, PutFn put) {
    put_u32(static_cast<std::uint32_t>(v.size()));
    for (const T& x : v) {
      put(*this, x);
    }
  }

  [[nodiscard]] std::span<const std::byte> bytes() const noexcept {
    return buf_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }
  void clear() noexcept { buf_.clear(); }

 private:
  template <typename T>
  void put_le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xFF));
    }
  }
  void append(const void* data, std::size_t n) {
    const auto* p = static_cast<const std::byte*>(data);
    buf_.insert(buf_.end(), p, p + n);
  }
  std::vector<std::byte> buf_;
};

class Unmarshaller {
 public:
  explicit Unmarshaller(std::span<const std::byte> data) : data_(data) {}

  Result<std::uint8_t> get_u8() {
    if (!have(1)) {
      return short_read();
    }
    return static_cast<std::uint8_t>(data_[pos_++]);
  }
  Result<std::uint16_t> get_u16() { return get_le<std::uint16_t>(); }
  Result<std::uint32_t> get_u32() { return get_le<std::uint32_t>(); }
  Result<std::uint64_t> get_u64() { return get_le<std::uint64_t>(); }
  Result<std::int32_t> get_i32() {
    auto v = get_u32();
    if (!v.is_ok()) {
      return v.status();
    }
    return static_cast<std::int32_t>(v.value());
  }
  Result<std::int64_t> get_i64() {
    auto v = get_u64();
    if (!v.is_ok()) {
      return v.status();
    }
    return static_cast<std::int64_t>(v.value());
  }
  Result<bool> get_bool() {
    auto v = get_u8();
    if (!v.is_ok()) {
      return v.status();
    }
    return v.value() != 0;
  }
  Result<double> get_f64() {
    auto v = get_u64();
    if (!v.is_ok()) {
      return v.status();
    }
    double d = 0;
    const std::uint64_t bits = v.value();
    std::memcpy(&d, &bits, sizeof(d));
    return d;
  }
  Result<std::string> get_string() {
    auto len = get_u32();
    if (!len.is_ok()) {
      return len.status();
    }
    if (!have(len.value())) {
      return short_read();
    }
    std::string out(reinterpret_cast<const char*>(data_.data() + pos_),
                    len.value());
    pos_ += len.value();
    return out;
  }
  /// Buffer loaning: a typed pointer into the frame, no copy. The span is
  /// valid only while the underlying frame is referenced.
  Result<std::span<const std::byte>> view_bytes() {
    auto len = get_u32();
    if (!len.is_ok()) {
      return len.status();
    }
    if (!have(len.value())) {
      return short_read();
    }
    auto out = data_.subspan(pos_, len.value());
    pos_ += len.value();
    return out;
  }

  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - pos_;
  }
  [[nodiscard]] bool exhausted() const noexcept { return remaining() == 0; }

 private:
  [[nodiscard]] bool have(std::size_t n) const noexcept {
    return data_.size() - pos_ >= n;
  }
  static Status short_read() {
    return {Errc::MalformedFrame, "marshalled data truncated"};
  }
  template <typename T>
  Result<T> get_le() {
    if (!have(sizeof(T))) {
      return short_read();
    }
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(static_cast<std::uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += sizeof(T);
    return v;
  }

  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
};

}  // namespace xdaq::rmi
