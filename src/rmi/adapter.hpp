// adapter.hpp - RMI stub and skeleton adapters over I2O frames.
//
// The skeleton is a device class whose private dispatch table maps method
// ids (xfunction codes in the kRmi organization) to typed functions; the
// stub is a thin client that marshals arguments, sends one private frame,
// and blocks on the reply through a Requester. Remote invocation is
// indistinguishable from local: the stub only holds a TiD, which may be a
// proxy ("The caller never needs to know, if a device is really local or
// if the call is redirected").
#pragma once

#include <chrono>
#include <functional>
#include <string>

#include "core/device.hpp"
#include "core/requester.hpp"
#include "rmi/marshal.hpp"

namespace xdaq::rmi {

/// Server side: exposes methods under (OrgId::kRmi, method id).
class Skeleton : public core::Device {
 public:
  /// A method unmarshals its arguments and marshals its results; a
  /// non-Ok Status becomes a failure reply carrying the message.
  using Method = std::function<Status(Unmarshaller& args, Marshaller& out)>;

 protected:
  explicit Skeleton(std::string class_name) : Device(std::move(class_name)) {}

  /// Exposes `method` under `method_id`.
  void expose(std::uint16_t method_id, Method method);
};

/// A failure reply's payload: a marshalled error string.
struct RemoteError {
  std::string message;
};

/// Client side: synchronous method invocation via a Requester.
class Stub {
 public:
  /// `requester` must be installed on the caller's executive; `target` is
  /// the (possibly proxied) TiD of the skeleton.
  Stub(core::Requester& requester, i2o::Tid target,
       std::chrono::nanoseconds timeout = std::chrono::seconds(2))
      : requester_(&requester), target_(target), timeout_(timeout) {}

  /// Invokes a remote method. On success the returned buffer holds the
  /// marshalled results; on remote failure the Status carries the error
  /// message raised by the skeleton.
  Result<std::vector<std::byte>> invoke(std::uint16_t method_id,
                                        const Marshaller& args);

  [[nodiscard]] i2o::Tid target() const noexcept { return target_; }

 private:
  core::Requester* requester_;
  i2o::Tid target_;
  std::chrono::nanoseconds timeout_;
};

}  // namespace xdaq::rmi
