#include "rmi/adapter.hpp"

namespace xdaq::rmi {

void Skeleton::expose(std::uint16_t method_id, Method method) {
  bind(i2o::OrgId::kRmi, method_id,
       [this, method = std::move(method)](const core::MessageContext& ctx) {
         Unmarshaller args(ctx.payload);
         Marshaller out;
         const Status st = method(args, out);
         if (st.is_ok()) {
           (void)frame_reply(ctx, out.bytes());
         } else {
           Marshaller err;
           err.put_string(st.to_string());
           (void)frame_reply(ctx, err.bytes(), /*failed=*/true);
         }
       });
}

Result<std::vector<std::byte>> Stub::invoke(std::uint16_t method_id,
                                            const Marshaller& args) {
  auto reply = requester_->call_private(
      target_, i2o::OrgId::kRmi, method_id, args.bytes(),
      core::CallOptions{.timeout = timeout_});
  if (!reply.is_ok()) {
    return reply.status();
  }
  if (reply.value().failed()) {
    Unmarshaller err(reply.value().payload);
    auto message = err.get_string();
    return {Errc::Internal, message.is_ok() ? message.value()
                                            : "remote invocation failed"};
  }
  return std::move(reply.value().payload);
}

}  // namespace xdaq::rmi
