// metrics.hpp - the per-node metrics registry.
//
// The paper's evaluation is instrumentation (Table 1 whitebox probes,
// Fig. 6 blackbox fits), but the repro grew its telemetry ad hoc: executive
// counters in one struct, scheduler depths behind the dispatch thread, pool
// stats in mem, per-transport one-offs in every PT. MetricsRegistry is the
// one place all of it surfaces: named counters, gauges and bounded
// histograms with relaxed-atomic hot-path updates, plus snapshot-time probe
// callbacks for values that already live elsewhere (queue depths, pool
// stats, transport counters) and should not be double-counted on the hot
// path.
//
// Threading model:
//  * Instrument registration (counter()/gauge()/histogram()/
//    register_probe()) takes the registry mutex; instruments are
//    heap-allocated so the returned references stay stable forever.
//  * Instrument updates are lock-free relaxed atomics - safe from any
//    thread, cheap enough for the dispatch loop.
//  * snapshot() takes the mutex (against registration, not updates) and
//    reads every instrument with relaxed loads: counters are monotonic, so
//    the snapshot is a consistent "at or after the call" view.
//
// The whole layer can be disabled per process with XDAQ_OBS_OFF=1 (or per
// call site with set_enabled); instrumented components cache enabled() at
// construction and skip their recording entirely.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "i2o/paramlist.hpp"

namespace xdaq::obs {

/// Process-wide master switch. First call latches the environment:
/// XDAQ_OBS_OFF set (to anything but "0") disables observability.
[[nodiscard]] bool enabled() noexcept;
/// Test/bench override of the environment latch (affects components
/// constructed afterwards; existing ones keep their cached decision).
void set_enabled(bool on) noexcept;

/// Monotonic named counter. add() is a relaxed fetch_add (multi-writer);
/// bump() is a relaxed load+store for counters with a single writing
/// thread (the dispatch loop), which avoids the locked RMW.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  void sub(std::uint64_t n = 1) noexcept {
    v_.fetch_sub(n, std::memory_order_relaxed);
  }
  /// Single-writer increment; concurrent bump() calls may lose updates.
  void bump() noexcept {
    v_.store(v_.load(std::memory_order_relaxed) + 1,
             std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-value-wins signed gauge.
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    v_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t d) noexcept {
    v_.fetch_add(d, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> v_{0};
};

struct HistogramSnapshot {
  std::string name;
  double lo = 0;
  double hi = 0;
  std::uint64_t underflow = 0;
  std::uint64_t overflow = 0;
  std::uint64_t total = 0;
  double sum = 0;
  std::vector<std::uint64_t> counts;

  [[nodiscard]] double mean() const noexcept {
    return total > 0 ? sum / static_cast<double>(total) : 0.0;
  }
  /// Approximate quantile (0..1) by linear interpolation within the
  /// owning bin; underflow maps to lo, overflow to hi.
  [[nodiscard]] double quantile(double q) const noexcept;
};

/// Fixed-range linear-bin histogram with relaxed-atomic bins. Values
/// below/above the range land in underflow/overflow. The bin array is
/// sized at construction and never resized, so add() is wait-free.
class Histogram {
 public:
  /// Throws std::invalid_argument unless bins > 0 and hi > lo.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;

  [[nodiscard]] std::uint64_t total() const noexcept {
    return total_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] HistogramSnapshot snapshot() const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::atomic<std::uint64_t>> counts_;
  std::atomic<std::uint64_t> under_{0};
  std::atomic<std::uint64_t> over_{0};
  std::atomic<std::uint64_t> total_{0};
  /// Sum of added values as a CAS loop over double bits (fetch_add on
  /// atomic<double> is C++20 but not universally lowered well; the loop
  /// is portable and the histogram add dominates anyway).
  std::atomic<double> sum_{0.0};
};

/// One sampled value contributed by a snapshot-time probe.
struct Sample {
  std::string name;
  std::int64_t value = 0;
};

/// Everything the registry knows, exported at one point in time.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, std::int64_t>> gauges;
  std::vector<Sample> samples;  ///< probe-contributed values
  std::vector<HistogramSnapshot> histograms;

  /// Flattens to an I2O parameter list (the MonitorDevice wire format):
  /// counters/gauges/samples as name=value, histograms as
  /// name.count/.mean/.p50/.p90/.p99/.underflow/.overflow.
  [[nodiscard]] i2o::ParamList to_params() const;
  /// JSON dump (benches and the MonitorDevice JSON hook reuse this).
  [[nodiscard]] std::string to_json() const;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the named instrument, creating it on first use. References
  /// stay valid for the registry's lifetime.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// First registration fixes the range/bin shape; later calls with the
  /// same name return the existing histogram regardless of arguments.
  Histogram& histogram(const std::string& name, double lo, double hi,
                       std::size_t bins);

  /// Snapshot-time callback: appends fully named samples. Used to export
  /// state that already has an owner (scheduler depths, pool stats,
  /// transport counters) without a second hot-path counter. Probes must
  /// be safe to run from any thread.
  using ProbeFn = std::function<void(std::vector<Sample>&)>;
  void register_probe(ProbeFn probe);

  [[nodiscard]] MetricsSnapshot snapshot() const;

 private:
  mutable std::mutex mutex_;
  // std::map: export order is sorted by name, deterministically.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::vector<ProbeFn> probes_;
};

}  // namespace xdaq::obs
