#include "obs/trace.hpp"

#include <atomic>

namespace xdaq::obs {

std::string_view to_string(Hop h) noexcept {
  switch (h) {
    case Hop::Send:
      return "send";
    case Hop::TxWire:
      return "tx_wire";
    case Hop::RxWire:
      return "rx_wire";
    case Hop::Dispatch:
      return "dispatch";
  }
  return "?";
}

std::uint32_t next_trace_id() noexcept {
  static std::atomic<std::uint32_t> next{1};
  std::uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  while (id == 0) {  // wrapped: 0 means "untraced", skip it
    id = next.fetch_add(1, std::memory_order_relaxed);
  }
  return id;
}

TraceRing::TraceRing(std::size_t capacity)
    : ring_(capacity > 0 ? capacity : 1) {}

void TraceRing::record(const HopRecord& r) noexcept {
  const std::scoped_lock lock(mutex_);
  ring_[next_] = r;
  next_ = (next_ + 1) % ring_.size();
  ++total_;
}

std::vector<HopRecord> TraceRing::snapshot() const {
  const std::scoped_lock lock(mutex_);
  std::vector<HopRecord> out;
  const std::size_t n =
      total_ < ring_.size() ? static_cast<std::size_t>(total_)
                            : ring_.size();
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(ring_[(next_ + ring_.size() - n + i) % ring_.size()]);
  }
  return out;
}

std::vector<HopRecord> TraceRing::for_trace(std::uint32_t id) const {
  std::vector<HopRecord> out;
  for (const HopRecord& r : snapshot()) {
    if (r.trace_id == id) {
      out.push_back(r);
    }
  }
  return out;
}

std::uint64_t TraceRing::recorded() const {
  const std::scoped_lock lock(mutex_);
  return total_;
}

}  // namespace xdaq::obs
