// trace.hpp - cross-peer frame tracing.
//
// One request in a cluster crosses several executives: the sender's
// frame_send, a peer transport, the remote node's wire delivery and
// dispatch, then the same path back for the reply. A trace id stamped into
// the I2O frame's InitiatorContext word (unused by the framework's own
// request/reply matching, which lives in TransactionContext) survives that
// whole journey untouched: every executive on the path appends a
// timestamped hop record to its own fixed-capacity TraceRing, and
// make_reply_header copies both context words, so the reply carries the
// same id home. Stitching the per-node rings together by trace id yields
// the full local -> TCP -> remote -> reply timeline.
//
// Frames whose InitiatorContext is 0 (everything by default) record
// nothing; the hot-path cost of the feature is one null/zero check.
#pragma once

#include <cstdint>
#include <mutex>
#include <string_view>
#include <vector>

namespace xdaq::obs {

/// Where on the path a hop was recorded.
enum class Hop : std::uint8_t {
  Send,      ///< frame_send accepted the frame on the recording node
  TxWire,    ///< handed to a peer transport towards another node
  RxWire,    ///< arrived from a peer transport on the recording node
  Dispatch,  ///< delivered to its target device on the recording node
};

[[nodiscard]] std::string_view to_string(Hop h) noexcept;

/// Allocates a process-wide trace id; never returns 0 (0 = "untraced").
[[nodiscard]] std::uint32_t next_trace_id() noexcept;

struct HopRecord {
  std::uint32_t trace_id = 0;
  std::uint64_t t_ns = 0;      ///< wall clock at the hop
  std::uint16_t node = 0;      ///< recording node
  std::uint16_t target = 0;    ///< frame's target TiD as seen locally
  Hop hop = Hop::Send;
  bool is_reply = false;
};

/// Fixed-capacity per-node ring of hop records, oldest overwritten first.
/// Hops are recorded only for traced frames, so a mutex (uncontended in
/// practice) is cheaper than lock-free machinery here.
class TraceRing {
 public:
  explicit TraceRing(std::size_t capacity);

  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  void record(const HopRecord& r) noexcept;

  /// All retained records, oldest first.
  [[nodiscard]] std::vector<HopRecord> snapshot() const;
  /// Retained records for one trace id, oldest first.
  [[nodiscard]] std::vector<HopRecord> for_trace(std::uint32_t id) const;

  [[nodiscard]] std::size_t capacity() const noexcept {
    return ring_.size();
  }
  /// Total records ever written (>= retained count once wrapped).
  [[nodiscard]] std::uint64_t recorded() const;

 private:
  mutable std::mutex mutex_;
  std::vector<HopRecord> ring_;
  std::size_t next_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace xdaq::obs
