#include "obs/metrics.hpp"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace xdaq::obs {

namespace {

std::atomic<int> g_enabled{-1};  ///< -1 = not yet latched from environment

bool latch_from_env() noexcept {
  const char* off = std::getenv("XDAQ_OBS_OFF");
  const bool on = off == nullptr || off[0] == '\0' ||
                  (off[0] == '0' && off[1] == '\0');
  int expected = -1;
  g_enabled.compare_exchange_strong(expected, on ? 1 : 0,
                                    std::memory_order_relaxed);
  return g_enabled.load(std::memory_order_relaxed) == 1;
}

}  // namespace

bool enabled() noexcept {
  const int v = g_enabled.load(std::memory_order_relaxed);
  if (v >= 0) {
    return v == 1;
  }
  return latch_from_env();
}

void set_enabled(bool on) noexcept {
  g_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
}

// ----------------------------------------------------------------- Histogram

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_(0) {
  if (bins == 0 || hi <= lo) {
    throw std::invalid_argument("obs::Histogram: need bins>0 and hi>lo");
  }
  width_ = (hi - lo) / static_cast<double>(bins);
  counts_ = std::vector<std::atomic<std::uint64_t>>(bins);
}

void Histogram::add(double x) noexcept {
  total_.fetch_add(1, std::memory_order_relaxed);
  double expected = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(expected, expected + x,
                                     std::memory_order_relaxed)) {
  }
  if (x < lo_) {
    under_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (x >= hi_) {
    over_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  auto bin = static_cast<std::size_t>((x - lo_) / width_);
  if (bin >= counts_.size()) {
    bin = counts_.size() - 1;  // FP edge at hi_
  }
  counts_[bin].fetch_add(1, std::memory_order_relaxed);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot out;
  out.lo = lo_;
  out.hi = hi_;
  out.underflow = under_.load(std::memory_order_relaxed);
  out.overflow = over_.load(std::memory_order_relaxed);
  out.total = total_.load(std::memory_order_relaxed);
  out.sum = sum_.load(std::memory_order_relaxed);
  out.counts.reserve(counts_.size());
  for (const auto& c : counts_) {
    out.counts.push_back(c.load(std::memory_order_relaxed));
  }
  return out;
}

double HistogramSnapshot::quantile(double q) const noexcept {
  if (total == 0 || counts.empty()) {
    return 0.0;
  }
  if (q < 0.0) {
    q = 0.0;
  }
  if (q > 1.0) {
    q = 1.0;
  }
  const double width =
      (hi - lo) / static_cast<double>(counts.size());
  const auto rank = static_cast<std::uint64_t>(
      q * static_cast<double>(total - 1));
  std::uint64_t seen = underflow;
  if (rank < seen) {
    return lo;
  }
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) {
      continue;
    }
    if (rank < seen + counts[i]) {
      const double frac = static_cast<double>(rank - seen + 1) /
                          static_cast<double>(counts[i]);
      return lo + width * (static_cast<double>(i) + frac);
    }
    seen += counts[i];
  }
  return hi;  // rank landed in overflow
}

// ------------------------------------------------------------------ Registry

Counter& MetricsRegistry::counter(const std::string& name) {
  const std::scoped_lock lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) {
    slot = std::make_unique<Counter>();
  }
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  const std::scoped_lock lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) {
    slot = std::make_unique<Gauge>();
  }
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name, double lo,
                                      double hi, std::size_t bins) {
  const std::scoped_lock lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) {
    slot = std::make_unique<Histogram>(lo, hi, bins);
  }
  return *slot;
}

void MetricsRegistry::register_probe(ProbeFn probe) {
  const std::scoped_lock lock(mutex_);
  probes_.push_back(std::move(probe));
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot out;
  const std::scoped_lock lock(mutex_);
  out.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    out.counters.emplace_back(name, c->value());
  }
  out.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    out.gauges.emplace_back(name, g->value());
  }
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot hs = h->snapshot();
    hs.name = name;
    out.histograms.push_back(std::move(hs));
  }
  for (const ProbeFn& probe : probes_) {
    probe(out.samples);
  }
  return out;
}

// -------------------------------------------------------------------- export

i2o::ParamList MetricsSnapshot::to_params() const {
  i2o::ParamList out;
  out.reserve(counters.size() + gauges.size() + samples.size() +
              histograms.size() * 7);
  for (const auto& [name, v] : counters) {
    out.emplace_back(name, std::to_string(v));
  }
  for (const auto& [name, v] : gauges) {
    out.emplace_back(name, std::to_string(v));
  }
  for (const Sample& s : samples) {
    out.emplace_back(s.name, std::to_string(s.value));
  }
  char buf[64];
  for (const HistogramSnapshot& h : histograms) {
    out.emplace_back(h.name + ".count", std::to_string(h.total));
    std::snprintf(buf, sizeof buf, "%.3f", h.mean());
    out.emplace_back(h.name + ".mean", buf);
    std::snprintf(buf, sizeof buf, "%.3f", h.quantile(0.50));
    out.emplace_back(h.name + ".p50", buf);
    std::snprintf(buf, sizeof buf, "%.3f", h.quantile(0.90));
    out.emplace_back(h.name + ".p90", buf);
    std::snprintf(buf, sizeof buf, "%.3f", h.quantile(0.99));
    out.emplace_back(h.name + ".p99", buf);
    out.emplace_back(h.name + ".underflow", std::to_string(h.underflow));
    out.emplace_back(h.name + ".overflow", std::to_string(h.overflow));
  }
  return out;
}

std::string MetricsSnapshot::to_json() const {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, v] : counters) {
    out += first ? "\n" : ",\n";
    out += "    \"" + name + "\": " + std::to_string(v);
    first = false;
  }
  out += "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, v] : gauges) {
    out += first ? "\n" : ",\n";
    out += "    \"" + name + "\": " + std::to_string(v);
    first = false;
  }
  for (const Sample& s : samples) {
    out += first ? "\n" : ",\n";
    out += "    \"" + s.name + "\": " + std::to_string(s.value);
    first = false;
  }
  out += "\n  },\n  \"histograms\": {";
  first = true;
  char buf[160];
  for (const HistogramSnapshot& h : histograms) {
    out += first ? "\n" : ",\n";
    std::snprintf(buf, sizeof buf,
                  "    \"%s\": {\"count\": %llu, \"mean\": %.3f, "
                  "\"p50\": %.3f, \"p90\": %.3f, \"p99\": %.3f, "
                  "\"underflow\": %llu, \"overflow\": %llu}",
                  h.name.c_str(),
                  static_cast<unsigned long long>(h.total), h.mean(),
                  h.quantile(0.50), h.quantile(0.90), h.quantile(0.99),
                  static_cast<unsigned long long>(h.underflow),
                  static_cast<unsigned long long>(h.overflow));
    out += buf;
    first = false;
  }
  out += "\n  }\n}\n";
  return out;
}

}  // namespace xdaq::obs
