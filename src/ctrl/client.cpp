#include "ctrl/client.hpp"

#include <thread>
#include <utility>

#include "core/executive.hpp"

namespace xdaq::ctrl {

void ControlClient::plugin() {
  bind(i2o::OrgId::kXdaq, kXfnCtrlEvent,
       [this](const core::MessageContext& ctx) { handle_event(ctx); });
}

Result<std::uint64_t> ControlClient::put(std::string_view key,
                                         std::string_view value) {
  CtrlRequest req;
  req.op = CtrlOp::Put;
  req.key = std::string(key);
  req.value = std::string(value);
  auto rep = request(req);
  if (!rep.is_ok()) {
    return rep.status();
  }
  if (!rep.value().ok) {
    return {Errc::Internal, "write rejected by the control plane"};
  }
  return rep.value().version;
}

Result<std::uint64_t> ControlClient::del(std::string_view key) {
  CtrlRequest req;
  req.op = CtrlOp::Del;
  req.key = std::string(key);
  auto rep = request(req);
  if (!rep.is_ok()) {
    return rep.status();
  }
  if (!rep.value().ok) {
    return {Errc::Internal, "write rejected by the control plane"};
  }
  return rep.value().version;
}

Result<ControlClient::Value> ControlClient::get(std::string_view key,
                                                bool stale_ok) {
  CtrlRequest req;
  req.op = CtrlOp::Get;
  req.key = std::string(key);
  if (stale_ok) {
    req.flags |= kCtrlFlagStaleOk;
  }
  auto rep = request(req);
  if (!rep.is_ok()) {
    return rep.status();
  }
  if (!rep.value().ok) {
    return {Errc::NotFound, "no live entry for key"};
  }
  return Value{std::move(rep).value().value, rep.value().version};
}

Status ControlClient::watch(std::string_view prefix, WatchCallback cb) {
  {
    const std::lock_guard<std::mutex> lock(watch_mutex_);
    watches_.emplace_back(std::string(prefix), std::move(cb));
  }
  CtrlRequest req;
  req.op = CtrlOp::Watch;
  req.key = std::string(prefix);
  auto rep = request(req);
  return rep.is_ok() ? Status::ok() : rep.status();
}

Status ControlClient::reconcile_routes() {
  core::Executive* exec = &executive();
  return watch(kRoutePrefix, [exec](const WatchEvent& ev) {
    if (ev.key.size() <= kRoutePrefix.size()) {
      return;
    }
    const i2o::NodeId dst = static_cast<i2o::NodeId>(
        std::strtoul(ev.key.c_str() + kRoutePrefix.size(), nullptr, 10));
    auto& routes = exec->resolver().routes();
    if (ev.deleted) {
      // Only clear entries the control plane itself placed (relay);
      // a direct attachment outlives its placement record.
      if (routes.next_hop(dst).kind == cluster::NextHop::Kind::Relay) {
        routes.erase(dst);
      }
      return;
    }
    constexpr std::string_view kRelay = "relay:";
    if (ev.value.compare(0, kRelay.size(), kRelay) == 0) {
      const i2o::NodeId via = static_cast<i2o::NodeId>(
          std::strtoul(ev.value.c_str() + kRelay.size(), nullptr, 10));
      // Never shadow a live direct attachment with a relay placement.
      if (routes.next_hop(dst).kind != cluster::NextHop::Kind::Direct) {
        routes.set_relay(dst, via);
      }
    }
  });
}

i2o::NodeId ControlClient::known_leader() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return leader_;
}

void ControlClient::on_reply(const core::MessageContext& ctx) {
  const std::uint32_t txn = ctx.header.transaction_context;
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = pending_.find(txn);
  if (it == pending_.end()) {
    return;  // a late reply whose caller already timed out
  }
  if (ctx.header.is_failed()) {
    // FAIL synthesis (peer died) or a handler-level rejection: the
    // caller treats it like a lost message and tries elsewhere.
    it->second.transport_failed = true;
  } else if (auto rep = CtrlReply::decode(ctx.payload); rep.is_ok()) {
    it->second.reply = std::move(rep).value();
  } else {
    it->second.transport_failed = true;
  }
  it->second.done = true;
  cv_.notify_all();
}

void ControlClient::handle_event(const core::MessageContext& ctx) {
  auto ev = WatchEvent::decode(ctx.payload);
  if (!ev.is_ok()) {
    return;
  }
  std::vector<WatchCallback> matched;
  {
    const std::lock_guard<std::mutex> lock(watch_mutex_);
    for (const auto& [prefix, cb] : watches_) {
      if (ev.value().key.compare(0, prefix.size(), prefix) == 0) {
        matched.push_back(cb);
      }
    }
  }
  for (const auto& cb : matched) {
    cb(ev.value());
  }
}

Result<CtrlReply> ControlClient::call_node(i2o::NodeId node,
                                           const CtrlRequest& req) {
  auto proxy = executive().resolver().resolve(node, cfg_.replica_tid);
  if (!proxy.is_ok()) {
    return proxy.status();
  }
  std::uint32_t txn = 0;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    txn = next_txn_++;
    if (txn == 0) {
      txn = next_txn_++;
    }
    pending_.emplace(txn, PendingCall{});
  }
  const auto payload = req.encode();
  auto frame = make_private_frame(proxy.value(), i2o::OrgId::kXdaq,
                                  kXfnCtrl, payload, txn);
  Status sent = frame.is_ok() ? frame_send(std::move(frame).value())
                              : frame.status();
  std::unique_lock<std::mutex> lock(mutex_);
  if (!sent.is_ok()) {
    pending_.erase(txn);
    return sent;
  }
  const bool done = cv_.wait_for(lock, cfg_.call_timeout, [&] {
    const auto it = pending_.find(txn);
    return it != pending_.end() && it->second.done;
  });
  const auto it = pending_.find(txn);
  if (!done || it == pending_.end()) {
    pending_.erase(txn);
    return {Errc::Timeout, "control call timed out"};
  }
  PendingCall call = std::move(it->second);
  pending_.erase(it);
  if (call.transport_failed) {
    return {Errc::Unavailable, "control replica unreachable"};
  }
  return std::move(call.reply);
}

Result<CtrlReply> ControlClient::request(const CtrlRequest& req) {
  Status last{Errc::Unavailable, "no control replica reachable"};
  for (std::uint32_t attempt = 0; attempt < cfg_.max_attempts; ++attempt) {
    i2o::NodeId target = i2o::kNullNode;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (leader_ != i2o::kNullNode) {
        target = leader_;
      } else if (!cfg_.voters.empty()) {
        target = cfg_.voters[rr_cursor_++ % cfg_.voters.size()];
      }
    }
    if (target == i2o::kNullNode) {
      return {Errc::FailedPrecondition, "client has no voter list"};
    }
    auto rep = call_node(target, req);
    if (!rep.is_ok()) {
      last = rep.status();
      const std::lock_guard<std::mutex> lock(mutex_);
      if (leader_ == target) {
        leader_ = i2o::kNullNode;  // stickiness ends when the leader dies
      }
      continue;
    }
    if (rep.value().redirect) {
      const i2o::NodeId hint = rep.value().leader_node;
      bool backoff = false;
      {
        const std::lock_guard<std::mutex> lock(mutex_);
        if (hint != i2o::kNullNode && hint != target) {
          leader_ = hint;
        } else {
          // Mid-election: nobody knows a leader yet. Back off a beat
          // and round-robin.
          leader_ = i2o::kNullNode;
          backoff = true;
        }
      }
      last = Status{Errc::Unavailable, "control plane has no leader"};
      if (backoff) {
        std::this_thread::sleep_for(cfg_.retry_delay);
      }
      continue;
    }
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      leader_ = target;
    }
    return rep;
  }
  return last;
}

}  // namespace xdaq::ctrl
