// store.hpp - the state machine behind the replicated control log.
//
// A versioned key/value map holding cluster config, device placement
// ("route/<node>" entries) and the member-map version. Every replica
// applies the same committed Command stream, so every replica holds the
// same map; `version` of an entry is the Raft log index of the command
// that wrote it, which makes "has this client seen at least commit X"
// comparisons trivial for watches and stale-read bounds.
//
// encode()/restore() is the Raft snapshot format - what a lagging or
// freshly restarted replica installs instead of replaying history.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "ctrl/wire.hpp"
#include "util/status.hpp"

namespace xdaq::ctrl {

class ConfigStore {
 public:
  struct Entry {
    std::string value;
    std::uint64_t version = 0;  ///< log index of the writing command
  };

  /// Applies one committed command at its log index. Del of a missing
  /// key is a no-op (idempotent replay).
  void apply(const Command& cmd, std::uint64_t index);

  [[nodiscard]] std::optional<Entry> get(std::string_view key) const;
  /// All live entries with the given key prefix, in key order.
  [[nodiscard]] std::vector<std::pair<std::string, Entry>> list(
      std::string_view prefix) const;
  [[nodiscard]] std::size_t size() const noexcept { return map_.size(); }
  /// Log index of the last applied command.
  [[nodiscard]] std::uint64_t applied_index() const noexcept {
    return applied_;
  }

  // Snapshot format: [u64 applied][u32 count] then per entry
  // [u64 version][u32 key_len][u32 val_len][key][val] (u32 key widths
  // match Command/CtrlRequest - no truncation through compaction).
  [[nodiscard]] std::vector<std::byte> encode() const;
  static Result<ConfigStore> restore(std::span<const std::byte> bytes);

 private:
  std::map<std::string, Entry, std::less<>> map_;
  std::uint64_t applied_ = 0;
};

}  // namespace xdaq::ctrl
