// wire.hpp - the control plane's I2O wire surface.
//
// ROADMAP item 5: the paper's "dynamic download" configuration flows from
// a single primary host, a SPOF the replicated control service removes.
// Every control-plane exchange is an ordinary private kXdaq frame, so the
// service is reachable through the normal proxy-TiD path - replica-to-
// replica Raft traffic, client requests, and watch pushes all cross the
// same fault-tolerant peer transports as application data.
//
//   kXfnRaft      replica <-> replica  (RaftMsg encoding, raft.hpp)
//   kXfnCtrl      client  -> replica   (CtrlRequest; reply = CtrlReply)
//   kXfnCtrlEvent replica -> client    (watch notification push)
//
// CtrlRequest payload (little-endian):
//   [u8 op][u8 flags][u16 rsvd][u32 key_len][u32 val_len][key][val]
// CtrlReply payload:
//   [u8 ok][u8 redirect][u16 leader_node][u64 version][u32 val_len][val]
// Watch push payload:
//   [u8 deleted][u8 rsvd][u16 rsvd][u64 version][u32 key_len][u32 val_len]
//   [key][val]
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "i2o/types.hpp"
#include "util/status.hpp"

namespace xdaq::ctrl {

/// kXdaq private xfunctions owned by the control plane (0x0003/0x0004 are
/// gossip/relay, 0x0010/0x0011 the monitor; ctrl takes 0x0005-0x0007).
inline constexpr std::uint16_t kXfnRaft = 0x0005;
inline constexpr std::uint16_t kXfnCtrl = 0x0006;
inline constexpr std::uint16_t kXfnCtrlEvent = 0x0007;

/// Reserved key through which the control plane owns the cluster-wide
/// member-map version (PR 7): committed writes to it floor every node's
/// gossip MemberMap version on rejoin.
inline constexpr std::string_view kMemberMapVersionKey =
    "cluster/member-map/version";
/// Per-node route entries ("route/<node>" -> "direct:<node>" |
/// "relay:<via>") that ControlClient::reconcile_routes replays into the
/// local Resolver after a restart.
inline constexpr std::string_view kRoutePrefix = "route/";

enum class CtrlOp : std::uint8_t {
  Put = 1,
  Get = 2,
  Del = 3,
  Watch = 4,
};

/// Request flags.
inline constexpr std::uint8_t kCtrlFlagStaleOk = 0x01;  ///< Get may be served
                                                        ///< by a follower

struct CtrlRequest {
  CtrlOp op = CtrlOp::Get;
  std::uint8_t flags = 0;
  std::string key;
  std::string value;

  [[nodiscard]] std::vector<std::byte> encode() const;
  static Result<CtrlRequest> decode(std::span<const std::byte> bytes);
};

struct CtrlReply {
  bool ok = false;
  /// Set when this replica is not the leader: retry at `leader_node`
  /// (kNullNode when no leader is known - back off and retry anywhere).
  bool redirect = false;
  i2o::NodeId leader_node = i2o::kNullNode;
  /// Commit version of the answered operation (the Raft log index that
  /// applied it; for Get, the version of the returned value).
  std::uint64_t version = 0;
  std::string value;

  [[nodiscard]] std::vector<std::byte> encode() const;
  static Result<CtrlReply> decode(std::span<const std::byte> bytes);
};

struct WatchEvent {
  bool deleted = false;
  std::uint64_t version = 0;
  std::string key;
  std::string value;

  [[nodiscard]] std::vector<std::byte> encode() const;
  static Result<WatchEvent> decode(std::span<const std::byte> bytes);
};

// --- replicated commands ----------------------------------------------------
// What the Raft log carries: [u8 op][u8 rsvd][u16 rsvd][u32 key_len]
// [u32 val_len][key][val] - the same u32 widths as CtrlRequest, so any
// key a client can send replicates without truncation. Only Put/Del are
// ever proposed; an empty log entry is a term-start no-op barrier, not
// a Command.

struct Command {
  CtrlOp op = CtrlOp::Put;
  std::string key;
  std::string value;

  [[nodiscard]] std::vector<std::byte> encode() const;
  static Result<Command> decode(std::span<const std::byte> bytes);
};

}  // namespace xdaq::ctrl
