#include "ctrl/wire.hpp"

#include "i2o/wire.hpp"

namespace xdaq::ctrl {

namespace {

/// Bounds a decoded length field against what the buffer actually holds.
bool fits(std::span<const std::byte> bytes, std::size_t off,
          std::size_t len) noexcept {
  return off <= bytes.size() && len <= bytes.size() - off;
}

std::string take_string(std::span<const std::byte> bytes, std::size_t off,
                        std::size_t len) {
  return {reinterpret_cast<const char*>(bytes.data()) + off, len};
}

void put_string(std::span<std::byte> out, std::size_t off,
                const std::string& s) {
  std::memcpy(out.data() + off, s.data(), s.size());
}

}  // namespace

std::vector<std::byte> CtrlRequest::encode() const {
  std::vector<std::byte> out(12 + key.size() + value.size());
  i2o::put_u8(out, 0, static_cast<std::uint8_t>(op));
  i2o::put_u8(out, 1, flags);
  i2o::put_u16(out, 2, 0);
  i2o::put_u32(out, 4, static_cast<std::uint32_t>(key.size()));
  i2o::put_u32(out, 8, static_cast<std::uint32_t>(value.size()));
  put_string(out, 12, key);
  put_string(out, 12 + key.size(), value);
  return out;
}

Result<CtrlRequest> CtrlRequest::decode(std::span<const std::byte> bytes) {
  if (bytes.size() < 12) {
    return {Errc::InvalidArgument, "ctrl request truncated"};
  }
  CtrlRequest req;
  const std::uint8_t op = i2o::get_u8(bytes, 0);
  if (op < static_cast<std::uint8_t>(CtrlOp::Put) ||
      op > static_cast<std::uint8_t>(CtrlOp::Watch)) {
    return {Errc::InvalidArgument, "ctrl request carries unknown op"};
  }
  req.op = static_cast<CtrlOp>(op);
  req.flags = i2o::get_u8(bytes, 1);
  const std::size_t key_len = i2o::get_u32(bytes, 4);
  const std::size_t val_len = i2o::get_u32(bytes, 8);
  if (!fits(bytes, 12, key_len) || !fits(bytes, 12 + key_len, val_len)) {
    return {Errc::InvalidArgument, "ctrl request lengths overrun payload"};
  }
  req.key = take_string(bytes, 12, key_len);
  req.value = take_string(bytes, 12 + key_len, val_len);
  return req;
}

std::vector<std::byte> CtrlReply::encode() const {
  std::vector<std::byte> out(16 + value.size());
  i2o::put_u8(out, 0, ok ? 1 : 0);
  i2o::put_u8(out, 1, redirect ? 1 : 0);
  i2o::put_u16(out, 2, leader_node);
  i2o::put_u64(out, 4, version);
  i2o::put_u32(out, 12, static_cast<std::uint32_t>(value.size()));
  put_string(out, 16, value);
  return out;
}

Result<CtrlReply> CtrlReply::decode(std::span<const std::byte> bytes) {
  if (bytes.size() < 16) {
    return {Errc::InvalidArgument, "ctrl reply truncated"};
  }
  CtrlReply rep;
  rep.ok = i2o::get_u8(bytes, 0) != 0;
  rep.redirect = i2o::get_u8(bytes, 1) != 0;
  rep.leader_node = i2o::get_u16(bytes, 2);
  rep.version = i2o::get_u64(bytes, 4);
  const std::size_t val_len = i2o::get_u32(bytes, 12);
  if (!fits(bytes, 16, val_len)) {
    return {Errc::InvalidArgument, "ctrl reply value overruns payload"};
  }
  rep.value = take_string(bytes, 16, val_len);
  return rep;
}

std::vector<std::byte> WatchEvent::encode() const {
  std::vector<std::byte> out(20 + key.size() + value.size());
  i2o::put_u8(out, 0, deleted ? 1 : 0);
  i2o::put_u8(out, 1, 0);
  i2o::put_u16(out, 2, 0);
  i2o::put_u64(out, 4, version);
  i2o::put_u32(out, 12, static_cast<std::uint32_t>(key.size()));
  i2o::put_u32(out, 16, static_cast<std::uint32_t>(value.size()));
  put_string(out, 20, key);
  put_string(out, 20 + key.size(), value);
  return out;
}

Result<WatchEvent> WatchEvent::decode(std::span<const std::byte> bytes) {
  if (bytes.size() < 20) {
    return {Errc::InvalidArgument, "watch event truncated"};
  }
  WatchEvent ev;
  ev.deleted = i2o::get_u8(bytes, 0) != 0;
  ev.version = i2o::get_u64(bytes, 4);
  const std::size_t key_len = i2o::get_u32(bytes, 12);
  const std::size_t val_len = i2o::get_u32(bytes, 16);
  if (!fits(bytes, 20, key_len) || !fits(bytes, 20 + key_len, val_len)) {
    return {Errc::InvalidArgument, "watch event lengths overrun payload"};
  }
  ev.key = take_string(bytes, 20, key_len);
  ev.value = take_string(bytes, 20 + key_len, val_len);
  return ev;
}

std::vector<std::byte> Command::encode() const {
  std::vector<std::byte> out(12 + key.size() + value.size());
  i2o::put_u8(out, 0, static_cast<std::uint8_t>(op));
  i2o::put_u8(out, 1, 0);
  i2o::put_u16(out, 2, 0);
  i2o::put_u32(out, 4, static_cast<std::uint32_t>(key.size()));
  i2o::put_u32(out, 8, static_cast<std::uint32_t>(value.size()));
  put_string(out, 12, key);
  put_string(out, 12 + key.size(), value);
  return out;
}

Result<Command> Command::decode(std::span<const std::byte> bytes) {
  if (bytes.size() < 12) {
    return {Errc::InvalidArgument, "ctrl command truncated"};
  }
  Command cmd;
  const std::uint8_t op = i2o::get_u8(bytes, 0);
  if (op != static_cast<std::uint8_t>(CtrlOp::Put) &&
      op != static_cast<std::uint8_t>(CtrlOp::Del)) {
    return {Errc::InvalidArgument, "ctrl command must be Put or Del"};
  }
  cmd.op = static_cast<CtrlOp>(op);
  const std::size_t key_len = i2o::get_u32(bytes, 4);
  const std::size_t val_len = i2o::get_u32(bytes, 8);
  if (!fits(bytes, 12, key_len) || !fits(bytes, 12 + key_len, val_len)) {
    return {Errc::InvalidArgument, "ctrl command lengths overrun payload"};
  }
  cmd.key = take_string(bytes, 12, key_len);
  cmd.value = take_string(bytes, 12 + key_len, val_len);
  return cmd;
}

}  // namespace xdaq::ctrl
