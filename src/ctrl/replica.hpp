// replica.hpp - one voter of the replicated control service.
//
// ControlReplicaDevice hosts a RaftCore inside an ordinary device: Raft
// messages travel as kXfnRaft private frames between the voters' proxy
// TiDs (any fault-tolerant peer transport, relay routes included), client
// operations arrive as kXfnCtrl frames, and committed commands apply to
// the ConfigStore. Election timing runs on the executive core timer
// (Config::tick_period), or on manual tick() calls when a deterministic
// harness drives the clock itself.
//
// Client operations:
//   * Put/Del on the leader append to the replicated log; the reply is
//     DEFERRED until the entry commits (the saved request header is
//     answered from the apply loop), so an acknowledged write is by
//     construction on a majority. Losing leadership fails the pending
//     window with a redirect reply - never a false ack.
//   * Get on the leader answers locally while the leader lease holds
//     (linearizable without a log round trip); otherwise it redirects.
//     kCtrlFlagStaleOk reads any replica's store (bounded-stale).
//   * Watch registers the caller (its reply-path proxy TiD) for pushed
//     kXfnCtrlEvent frames; registration first replays every existing
//     entry under the prefix as synthetic events, so subscribe-then-apply
//     yields a complete snapshot + stream. A watcher whose pushes fail
//     kWatcherFailLimit times in a row, or whose node the peer-state
//     listener reports Down, is pruned (a surviving client re-subscribes
//     on reconnect).
//
// Failure detection is the PR-2 transport liveness feed: a peer-state
// Down transition for the current leader expires the election timer at
// the next tick instead of waiting out the randomized timeout.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/device.hpp"
#include "ctrl/raft.hpp"
#include "ctrl/store.hpp"
#include "ctrl/wire.hpp"
#include "obs/metrics.hpp"

namespace xdaq::ctrl {

class ControlReplicaDevice : public core::Device {
 public:
  struct Config {
    /// The voter group, this node included.
    std::vector<i2o::NodeId> voters;
    /// TiD of the replica device on peer nodes. kNullTid = same TiD as
    /// this instance (symmetric install order, the common case).
    i2o::Tid peer_tid = i2o::kNullTid;
    std::uint32_t election_timeout_min = 10;
    std::uint32_t election_timeout_max = 20;
    std::uint32_t heartbeat_interval = 3;
    /// Compact the applied log beyond this many entries (0 = never).
    std::size_t snapshot_threshold = 64;
    std::uint64_t seed = 1;
    /// Period of the self-armed tick timer; zero means the host drives
    /// tick() manually (deterministic tests).
    std::chrono::nanoseconds tick_period{};
    /// Durable Raft state from a previous incarnation (term/vote/log/
    /// snapshot, as returned by hard_state()). Empty = fresh start; a
    /// voter restarted empty is caught up by snapshot install.
    std::vector<std::byte> hard_state;
  };

  explicit ControlReplicaDevice(Config cfg);

  /// One logical Raft tick + output drain. Thread-safe; the timer path
  /// calls this too.
  void tick();

  // Observers (thread-safe; tests and the metrics probes use them).
  [[nodiscard]] Role role() const;
  [[nodiscard]] std::uint64_t term() const;
  [[nodiscard]] i2o::NodeId leader_hint() const;
  [[nodiscard]] std::uint64_t commit_index() const;
  [[nodiscard]] std::uint64_t applied_index() const;
  [[nodiscard]] bool has_lease() const;
  [[nodiscard]] std::optional<ConfigStore::Entry> lookup(
      std::string_view key) const;
  /// Live watch subscriptions (tests observe pruning through this).
  [[nodiscard]] std::size_t watcher_count() const;
  /// Durable state for the next incarnation (what Config::hard_state
  /// accepts back).
  [[nodiscard]] std::vector<std::byte> hard_state() const;

 protected:
  void plugin() override;
  Status on_enable() override;
  Status on_halt() override;
  void on_timer(std::uint32_t timer_id) override;

 private:
  /// Consecutive failed event pushes before a watcher is dropped.
  static constexpr int kWatcherFailLimit = 3;

  struct Watcher {
    i2o::Tid tid = i2o::kNullTid;  ///< reply-path (proxy) TiD to push to
    std::string prefix;
    int failures = 0;  ///< consecutive push_event failures
  };

  void handle_raft(const core::MessageContext& ctx);
  void handle_ctrl(const core::MessageContext& ctx);
  void handle_get(const core::MessageContext& ctx, const CtrlRequest& req);
  void handle_write(const core::MessageContext& ctx, const CtrlRequest& req);
  void handle_watch(const core::MessageContext& ctx, const CtrlRequest& req);

  /// Drains the core's outbox/commit/snapshot outputs. mutex_ held.
  void step_locked();
  void apply_locked(std::uint64_t index, const Command& cmd);
  void fail_pending_locked();
  /// Drops watchers whose push TiD proxies to `node` (reported Down).
  void prune_watchers_locked(i2o::NodeId node);
  void send_raft(i2o::NodeId to, const RaftMsg& msg);
  [[nodiscard]] bool push_event(i2o::Tid watcher, const WatchEvent& ev);
  void reply_ctrl(const i2o::FrameHeader& request, const CtrlReply& rep);
  void update_metrics_locked();

  Config cfg_;
  mutable std::mutex mutex_;  ///< guards core_, store_, pending_, watchers_
  RaftCore core_;
  ConfigStore store_;
  /// Log index -> the unanswered Put/Del request appended at it, plus the
  /// term it was proposed in (a committed index from a *different* term
  /// means our proposal was overwritten - fail, do not ack).
  struct PendingWrite {
    i2o::FrameHeader request;
    std::uint64_t term = 0;
  };
  std::map<std::uint64_t, PendingWrite> pending_;
  std::vector<Watcher> watchers_;

  /// Down transitions recorded by the (transport-thread) peer-state
  /// listener, consumed at the next tick on the dispatch path.
  std::mutex down_mutex_;
  std::vector<i2o::NodeId> pending_down_;

  std::uint32_t timer_id_ = 0;
  std::uint64_t reported_elections_ = 0;

  // raft.* instruments (registered at plugin()).
  obs::Gauge* term_gauge_ = nullptr;
  obs::Gauge* role_gauge_ = nullptr;
  obs::Gauge* commit_gauge_ = nullptr;
  obs::Counter* elections_ = nullptr;
  obs::Counter* proposals_ = nullptr;
  obs::Counter* redirects_ = nullptr;
  obs::Counter* apply_errors_ = nullptr;
  obs::Histogram* lag_ = nullptr;
};

}  // namespace xdaq::ctrl
