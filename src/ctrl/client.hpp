// client.hpp - the executive-side face of the replicated control plane.
//
// ControlClient is how every other node talks to the voter group: a
// blocking Requester-style device that discovers the leader, follows
// redirect-on-follower replies, retries around elections with a bounded
// backoff, and surfaces watch pushes as callbacks. Everything rides the
// normal proxy-TiD path - the client resolves the replica device on a
// voter node and sends ordinary kXfnCtrl frames, so control traffic
// crosses the same transports, relays and fault machinery as data.
//
// Linearizable by default: Get is served by the leader under its lease
// (pass stale_ok to read any replica's applied state instead). Put/Del
// return only after the write is committed on a majority - a returned
// version is durable across any minority of node deaths.
//
// Like Requester, blocking calls must not run on a dispatch thread.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "core/device.hpp"
#include "ctrl/wire.hpp"

namespace xdaq::ctrl {

class ControlClient : public core::Device {
 public:
  struct Config {
    /// The voter nodes hosting ControlReplicaDevices.
    std::vector<i2o::NodeId> voters;
    /// TiD of the replica device on each voter node.
    i2o::Tid replica_tid = i2o::kNullTid;
    /// Per-attempt reply timeout.
    std::chrono::nanoseconds call_timeout = std::chrono::milliseconds(500);
    /// Attempts across redirects/timeouts/elections before giving up.
    std::uint32_t max_attempts = 8;
    /// Backoff when no leader is known (mid-election).
    std::chrono::nanoseconds retry_delay = std::chrono::milliseconds(20);
  };

  using WatchCallback = std::function<void(const WatchEvent&)>;

  explicit ControlClient(Config cfg)
      : Device("ControlClient"), cfg_(std::move(cfg)) {}

  struct Value {
    std::string value;
    std::uint64_t version = 0;
  };

  /// Committed write; the returned version is the Raft log index that
  /// applied it.
  Result<std::uint64_t> put(std::string_view key, std::string_view value);
  Result<std::uint64_t> del(std::string_view key);
  /// Leader-lease read, or any-replica read with stale_ok. NotFound when
  /// the key has no live entry.
  Result<Value> get(std::string_view key, bool stale_ok = false);

  /// Subscribes `cb` to every entry under `prefix` on one replica: the
  /// replica first replays existing entries as events (snapshot), then
  /// streams subsequent commits. The callback runs on the dispatch
  /// thread - keep it quick.
  Status watch(std::string_view prefix, WatchCallback cb);

  /// Restart reconciliation: watches kRoutePrefix and replays committed
  /// "relay:<via>" placements into this executive's RouteTable (direct
  /// attachments are local facts the transports re-declare themselves).
  /// The snapshot replay makes the table catch up without enumeration.
  Status reconcile_routes();

  /// The leader as of the last successful call (kNullNode when unknown).
  [[nodiscard]] i2o::NodeId known_leader() const;

 protected:
  void plugin() override;
  void on_reply(const core::MessageContext& ctx) override;

 private:
  struct PendingCall {
    bool done = false;
    bool transport_failed = false;  ///< FAIL synthesis / malformed reply
    CtrlReply reply;
  };

  void handle_event(const core::MessageContext& ctx);
  /// One request/response round against `node`; does not redirect.
  Result<CtrlReply> call_node(i2o::NodeId node, const CtrlRequest& req);
  /// Full client policy: leader stickiness, redirects, bounded retries.
  Result<CtrlReply> request(const CtrlRequest& req);

  Config cfg_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::map<std::uint32_t, PendingCall> pending_;
  std::uint32_t next_txn_ = 1;
  i2o::NodeId leader_ = i2o::kNullNode;
  std::size_t rr_cursor_ = 0;  ///< voter round-robin when leaderless

  std::mutex watch_mutex_;
  std::vector<std::pair<std::string, WatchCallback>> watches_;
};

}  // namespace xdaq::ctrl
