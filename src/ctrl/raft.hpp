// raft.hpp - the replicated-log consensus core of the control plane.
//
// ROADMAP item 5 / DAOS rdb shape: a small voter group (3-5 replicas)
// keeps cluster config behind a leader-elected replicated log. This class
// is the *pure* consensus state machine: no threads, no clock, no wire.
// Time is a logical tick (the hosting ControlReplicaDevice maps executive
// timer fires onto tick()); the network is an outbox of (peer, RaftMsg)
// pairs the host drains onto real peer transports. That purity is what
// makes the chaos harness deterministic - a seeded run replays the exact
// same elections, partitions and commits every time, under TSan or not.
//
// The protocol is standard Raft:
//   * randomized election timeouts (seeded Rng, [timeout_min, timeout_max]
//     ticks) with term-monotonic voting and the log-up-to-date check;
//   * log replication with per-follower next/match cursors, commit on
//     majority match within the current term;
//   * snapshot installation for followers whose cursor fell behind the
//     compacted log (the restart-rejoin path);
//   * a no-op barrier entry appended at every term start (Raft §8): a
//     new leader cannot count replicas of prior-term entries toward
//     commit, so it commits an entry of its own term first; the barrier
//     transitively commits every acked write of earlier terms before the
//     leader is allowed to serve reads;
//   * a leader lease for linearizable local reads: the leader serves a
//     read without a log round trip only while (a) its term-start no-op
//     has committed and (b) a majority acked an AppendEntries within the
//     last election_timeout_min ticks, measured from the tick the append
//     was SENT (the follower's election-suppression window starts at
//     receipt, which is never earlier than the send) - inside that window
//     no rival can have been elected, because an election needs a
//     majority that stayed quiet for at least that long.
//
// Durability: term, vote and log survive a restart through
// encode_hard_state()/restore() (the host persists the blob; the chaos
// harness keeps it across simulated node deaths, and a node restarted
// *without* it rejoins empty and is caught up by snapshot + log replay).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <utility>
#include <vector>

#include "i2o/types.hpp"
#include "util/random.hpp"
#include "util/status.hpp"

namespace xdaq::ctrl {

enum class Role : std::uint8_t { Follower = 0, Candidate = 1, Leader = 2 };

std::string_view to_string(Role r) noexcept;

struct LogEntry {
  std::uint64_t term = 0;
  std::vector<std::byte> cmd;
};

struct RaftConfig {
  i2o::NodeId self = i2o::kNullNode;
  /// The voter group, self included. Fixed for the life of the core
  /// (membership change is config data, not consensus membership).
  std::vector<i2o::NodeId> voters;
  /// Election timeout drawn uniformly from [min, max] ticks at every
  /// reset; also the lease width (min). max > min keeps split votes rare.
  std::uint32_t election_timeout_min = 10;
  std::uint32_t election_timeout_max = 20;
  /// Leader heartbeat/replication period in ticks.
  std::uint32_t heartbeat_interval = 3;
  /// Entries per AppendEntries message (bounds frame size).
  std::size_t max_append_entries = 32;
  /// Compact the log once more than this many applied entries are
  /// retained (0 = the host compacts explicitly via compact()).
  std::size_t snapshot_threshold = 0;
  std::uint64_t seed = 1;
};

/// One consensus message. A single tagged struct instead of six classes:
/// the codec, the fault injectors and the chaos journal all want to
/// treat messages uniformly.
struct RaftMsg {
  enum class Type : std::uint8_t {
    VoteRequest = 1,
    VoteReply = 2,
    Append = 3,       ///< AppendEntries (empty = heartbeat)
    AppendReply = 4,
    Snapshot = 5,     ///< InstallSnapshot (whole state, small by design)
    SnapshotReply = 6,
  };

  Type type = Type::VoteRequest;
  i2o::NodeId from = i2o::kNullNode;
  std::uint64_t term = 0;

  // VoteRequest: candidate's last log position.
  // Append/Snapshot: last_index instead carries the leader's send tick,
  // echoed verbatim in the matching reply - the lease anchor (a majority
  // ack is only as fresh as the round's SEND time, not its receipt).
  std::uint64_t last_index = 0;
  std::uint64_t last_term = 0;
  // Append: the entry preceding `entries` and the leader commit index.
  // Snapshot: prev_index/prev_term double as the snapshot's last
  // included position.
  std::uint64_t prev_index = 0;
  std::uint64_t prev_term = 0;
  std::uint64_t commit = 0;
  // VoteReply.granted / AppendReply+SnapshotReply.success.
  bool granted = false;
  // AppendReply: follower's match index on success, or its conflict hint
  // (first index of the conflicting term) on failure. SnapshotReply: the
  // installed snapshot index.
  std::uint64_t match = 0;
  std::vector<LogEntry> entries;
  std::vector<std::byte> snapshot;

  [[nodiscard]] std::vector<std::byte> encode() const;
  static Result<RaftMsg> decode(std::span<const std::byte> bytes);
};

std::string_view to_string(RaftMsg::Type t) noexcept;

class RaftCore {
 public:
  explicit RaftCore(RaftConfig cfg);

  // --- observation ---------------------------------------------------------

  [[nodiscard]] const RaftConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] Role role() const noexcept { return role_; }
  [[nodiscard]] std::uint64_t term() const noexcept { return term_; }
  /// The leader of the current term as far as this replica knows
  /// (kNullNode during elections).
  [[nodiscard]] i2o::NodeId leader_hint() const noexcept { return leader_; }
  [[nodiscard]] std::uint64_t commit_index() const noexcept {
    return commit_;
  }
  [[nodiscard]] std::uint64_t last_log_index() const noexcept {
    return snap_index_ + log_.size();
  }
  [[nodiscard]] std::uint64_t ticks() const noexcept { return now_; }
  /// Elections this replica has started (candidacy transitions).
  [[nodiscard]] std::uint64_t elections_started() const noexcept {
    return elections_;
  }
  /// Leader only: replication lag (last_log_index - match) of `peer`.
  [[nodiscard]] std::uint64_t replication_lag(i2o::NodeId peer) const;

  /// Linearizable-read gate: true only on a leader that has committed
  /// its term-start no-op barrier (so every earlier acked write is
  /// applied here) AND whose majority acked within the last
  /// election_timeout_min ticks, anchored at append-send time.
  [[nodiscard]] bool has_lease() const;

  // --- inputs --------------------------------------------------------------

  /// One logical tick: election timers, heartbeats, lease bookkeeping.
  void tick();

  /// One inbound consensus message from a peer.
  void handle(const RaftMsg& msg);

  /// Leader appends a command; returns its log index (the host resolves
  /// client acks when commit passes it). Fails on non-leaders.
  Result<std::uint64_t> propose(std::vector<std::byte> cmd);

  /// Transport-liveness hint (PR-2 failure detection reused): the peer is
  /// gone. A follower that loses its leader this way expires its election
  /// timer at the next tick instead of waiting out the full timeout.
  void peer_down(i2o::NodeId peer);

  // --- outputs -------------------------------------------------------------

  /// Messages generated since the last drain, in emit order.
  [[nodiscard]] std::vector<std::pair<i2o::NodeId, RaftMsg>> take_outbox();

  /// Committed-but-unapplied entries, oldest first; advances the applied
  /// cursor. The host feeds these to its state machine in order.
  /// Term-start no-op barriers (empty commands) are consumed internally
  /// and never surface here.
  [[nodiscard]] std::vector<std::pair<std::uint64_t, std::vector<std::byte>>>
  take_committed();

  /// Set after a Snapshot message replaced this replica's log: the host
  /// must restore its state machine from the blob. One-shot.
  [[nodiscard]] std::optional<std::pair<std::uint64_t, std::vector<std::byte>>>
  take_installed_snapshot();

  // --- compaction ----------------------------------------------------------

  /// Drops log entries up to `applied_index` (which must be <= the
  /// applied cursor), retaining `state` as the snapshot lagging followers
  /// are sent. The host calls this after applying, with its state
  /// machine's encoding.
  Status compact(std::uint64_t applied_index, std::vector<std::byte> state);

  /// True when the retained log has outgrown cfg.snapshot_threshold and
  /// the host should compact.
  [[nodiscard]] bool wants_compaction() const noexcept {
    return cfg_.snapshot_threshold > 0 &&
           applied_ > snap_index_ &&
           applied_ - snap_index_ > cfg_.snapshot_threshold;
  }

  // --- durability ----------------------------------------------------------
  // [u64 term][u16 voted_for][u64 snap_index][u64 snap_term]
  // [u32 snap_len][snap][u32 count] then per entry [u64 term][u32 len][cmd].

  [[nodiscard]] std::vector<std::byte> encode_hard_state() const;
  /// Restores term/vote/log/snapshot into a fresh core; volatile state
  /// (role, commit, leader) restarts conservatively as a follower. The
  /// host re-applies the snapshot + committed prefix to its state machine
  /// as commit advances again.
  static Result<RaftCore> restore(RaftConfig cfg,
                                  std::span<const std::byte> hard);

 private:
  [[nodiscard]] std::size_t majority() const noexcept {
    return cfg_.voters.size() / 2 + 1;
  }
  [[nodiscard]] std::uint64_t term_at(std::uint64_t index) const;
  [[nodiscard]] const LogEntry* entry_at(std::uint64_t index) const;
  void reset_election_timer(bool expire_now = false);
  void become_follower(std::uint64_t term, i2o::NodeId leader);
  void become_candidate();
  void become_leader();
  void send(i2o::NodeId to, RaftMsg msg);
  void broadcast_appends(bool force);
  void send_append(i2o::NodeId peer);
  void advance_commit();
  void handle_vote_request(const RaftMsg& msg);
  void handle_vote_reply(const RaftMsg& msg);
  void handle_append(const RaftMsg& msg);
  void handle_append_reply(const RaftMsg& msg);
  void handle_snapshot(const RaftMsg& msg);
  void handle_snapshot_reply(const RaftMsg& msg);

  RaftConfig cfg_;
  Rng rng_;

  // Durable state.
  std::uint64_t term_ = 0;
  i2o::NodeId voted_for_ = i2o::kNullNode;
  /// Entries after the snapshot: log index (snap_index_ + i + 1) lives at
  /// log_[i]. Index 0 is "before the first entry" everywhere.
  std::vector<LogEntry> log_;
  std::uint64_t snap_index_ = 0;
  std::uint64_t snap_term_ = 0;
  std::vector<std::byte> snap_state_;

  // Volatile state.
  Role role_ = Role::Follower;
  i2o::NodeId leader_ = i2o::kNullNode;
  std::uint64_t commit_ = 0;
  std::uint64_t applied_ = 0;
  std::uint64_t now_ = 0;
  std::uint64_t election_deadline_ = 0;
  std::uint64_t last_broadcast_ = 0;
  std::uint64_t elections_ = 0;
  /// Tick at which the current candidacy started; election-time votes
  /// anchor the lease here (the voters' suppression windows opened no
  /// earlier than the VoteRequest send).
  std::uint64_t campaign_started_ = 0;
  /// Index of the no-op barrier appended when this node last became
  /// leader; the lease is withheld until commit_ reaches it.
  std::uint64_t term_start_index_ = 0;
  std::vector<i2o::NodeId> votes_;

  // Leader bookkeeping, indexed as cfg_.voters.
  struct PeerCursor {
    std::uint64_t next = 1;
    std::uint64_t match = 0;
    std::uint64_t last_ack_tick = 0;
    bool snapshot_in_flight = false;
  };
  std::vector<PeerCursor> cursors_;

  std::vector<std::pair<i2o::NodeId, RaftMsg>> outbox_;
  std::optional<std::pair<std::uint64_t, std::vector<std::byte>>> installed_;
};

}  // namespace xdaq::ctrl
