#include "ctrl/store.hpp"

#include <algorithm>

#include "i2o/wire.hpp"

namespace xdaq::ctrl {

namespace {

bool fits(std::span<const std::byte> bytes, std::size_t off,
          std::size_t len) noexcept {
  return off <= bytes.size() && len <= bytes.size() - off;
}

}  // namespace

void ConfigStore::apply(const Command& cmd, std::uint64_t index) {
  applied_ = index;
  if (cmd.op == CtrlOp::Del) {
    map_.erase(cmd.key);
    return;
  }
  map_[cmd.key] = Entry{cmd.value, index};
}

std::optional<ConfigStore::Entry> ConfigStore::get(
    std::string_view key) const {
  const auto it = map_.find(key);
  if (it == map_.end()) {
    return std::nullopt;
  }
  return it->second;
}

std::vector<std::pair<std::string, ConfigStore::Entry>> ConfigStore::list(
    std::string_view prefix) const {
  std::vector<std::pair<std::string, Entry>> out;
  for (auto it = map_.lower_bound(prefix); it != map_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) {
      break;
    }
    out.emplace_back(it->first, it->second);
  }
  return out;
}

std::vector<std::byte> ConfigStore::encode() const {
  std::size_t size = 12;
  for (const auto& [key, entry] : map_) {
    size += 16 + key.size() + entry.value.size();
  }
  std::vector<std::byte> out(size);
  i2o::put_u64(out, 0, applied_);
  i2o::put_u32(out, 8, static_cast<std::uint32_t>(map_.size()));
  std::size_t off = 12;
  for (const auto& [key, entry] : map_) {
    i2o::put_u64(out, off, entry.version);
    i2o::put_u32(out, off + 8, static_cast<std::uint32_t>(key.size()));
    i2o::put_u32(out, off + 12, static_cast<std::uint32_t>(
                                    entry.value.size()));
    off += 16;
    std::copy(key.begin(), key.end(),
              reinterpret_cast<char*>(out.data()) + off);
    off += key.size();
    std::copy(entry.value.begin(), entry.value.end(),
              reinterpret_cast<char*>(out.data()) + off);
    off += entry.value.size();
  }
  return out;
}

Result<ConfigStore> ConfigStore::restore(std::span<const std::byte> bytes) {
  if (bytes.size() < 12) {
    return {Errc::InvalidArgument, "store snapshot truncated"};
  }
  ConfigStore store;
  store.applied_ = i2o::get_u64(bytes, 0);
  const std::size_t count = i2o::get_u32(bytes, 8);
  std::size_t off = 12;
  for (std::size_t i = 0; i < count; ++i) {
    if (!fits(bytes, off, 16)) {
      return {Errc::InvalidArgument, "store entry header overruns snapshot"};
    }
    Entry entry;
    entry.version = i2o::get_u64(bytes, off);
    const std::size_t key_len = i2o::get_u32(bytes, off + 8);
    const std::size_t val_len = i2o::get_u32(bytes, off + 12);
    off += 16;
    if (!fits(bytes, off, key_len) || !fits(bytes, off + key_len, val_len)) {
      return {Errc::InvalidArgument, "store entry body overruns snapshot"};
    }
    std::string key(reinterpret_cast<const char*>(bytes.data()) + off,
                    key_len);
    entry.value.assign(
        reinterpret_cast<const char*>(bytes.data()) + off + key_len,
        val_len);
    off += key_len + val_len;
    store.map_.emplace(std::move(key), std::move(entry));
  }
  return store;
}

}  // namespace xdaq::ctrl
