#include "ctrl/replica.hpp"

#include <utility>

#include "core/executive.hpp"
#include "core/transport.hpp"

namespace xdaq::ctrl {

namespace {

RaftConfig make_raft_config(const ControlReplicaDevice::Config& cfg,
                            i2o::NodeId self) {
  RaftConfig rc;
  rc.self = self;
  rc.voters = cfg.voters;
  rc.election_timeout_min = cfg.election_timeout_min;
  rc.election_timeout_max = cfg.election_timeout_max;
  rc.heartbeat_interval = cfg.heartbeat_interval;
  rc.snapshot_threshold = cfg.snapshot_threshold;
  rc.seed = cfg.seed;
  return rc;
}

RaftCore make_core(const ControlReplicaDevice::Config& cfg,
                   i2o::NodeId self) {
  RaftConfig rc = make_raft_config(cfg, self);
  if (!cfg.hard_state.empty()) {
    auto restored = RaftCore::restore(rc, cfg.hard_state);
    if (restored.is_ok()) {
      return std::move(restored).value();
    }
    // A corrupt blob degrades to a fresh (empty) voter rather than
    // refusing to start; snapshot install catches it up.
  }
  return RaftCore(std::move(rc));
}

}  // namespace

ControlReplicaDevice::ControlReplicaDevice(Config cfg)
    : Device("ControlReplica"),
      cfg_(std::move(cfg)),
      core_(RaftConfig{}) {
  // The real core is built in plugin() when the node id is known; until
  // then hold a placeholder (RaftCore has no default constructor).
}

void ControlReplicaDevice::plugin() {
  core_ = make_core(cfg_, executive().node_id());
  if (auto snap = core_.take_installed_snapshot(); snap.has_value()) {
    if (auto restored = ConfigStore::restore(snap->second);
        restored.is_ok()) {
      store_ = std::move(restored).value();
    }
  }

  bind(i2o::OrgId::kXdaq, kXfnRaft,
       [this](const core::MessageContext& ctx) { handle_raft(ctx); });
  bind(i2o::OrgId::kXdaq, kXfnCtrl,
       [this](const core::MessageContext& ctx) { handle_ctrl(ctx); });

  auto& reg = executive().metrics();
  term_gauge_ = &reg.gauge("raft.term");
  role_gauge_ = &reg.gauge("raft.role");
  commit_gauge_ = &reg.gauge("raft.commit_index");
  elections_ = &reg.counter("raft.elections");
  proposals_ = &reg.counter("raft.proposals");
  redirects_ = &reg.counter("raft.redirects");
  apply_errors_ = &reg.counter("raft.apply_errors");
  lag_ = &reg.histogram("raft.replication_lag", 0, 256, 32);

  // PR-2 liveness as failure detection: Down transitions queue here (the
  // listener runs on transport threads) and feed core_.peer_down at the
  // next tick on the dispatch path.
  executive().add_peer_state_listener(
      [this](i2o::NodeId node, core::PeerState, core::PeerState to) {
        if (to == core::PeerState::Down) {
          const std::lock_guard<std::mutex> lock(down_mutex_);
          pending_down_.push_back(node);
        }
      });
}

Status ControlReplicaDevice::on_enable() {
  if (cfg_.tick_period.count() > 0) {
    timer_id_ = executive().arm_timer(tid(), cfg_.tick_period,
                                      cfg_.tick_period);
  }
  return Status::ok();
}

Status ControlReplicaDevice::on_halt() {
  if (timer_id_ != 0) {
    executive().cancel_timer(timer_id_);
    timer_id_ = 0;
  }
  return Status::ok();
}

void ControlReplicaDevice::on_timer(std::uint32_t timer_id) {
  (void)timer_id;
  tick();
}

void ControlReplicaDevice::tick() {
  std::vector<i2o::NodeId> down;
  {
    const std::lock_guard<std::mutex> lock(down_mutex_);
    down.swap(pending_down_);
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  for (i2o::NodeId node : down) {
    core_.peer_down(node);
    prune_watchers_locked(node);
  }
  core_.tick();
  if (core_.role() == Role::Leader && lag_ != nullptr) {
    for (i2o::NodeId peer : cfg_.voters) {
      if (peer != core_.config().self) {
        lag_->add(static_cast<double>(core_.replication_lag(peer)));
      }
    }
  }
  step_locked();
}

Role ControlReplicaDevice::role() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return core_.role();
}

std::uint64_t ControlReplicaDevice::term() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return core_.term();
}

i2o::NodeId ControlReplicaDevice::leader_hint() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return core_.leader_hint();
}

std::uint64_t ControlReplicaDevice::commit_index() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return core_.commit_index();
}

std::uint64_t ControlReplicaDevice::applied_index() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return store_.applied_index();
}

bool ControlReplicaDevice::has_lease() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return core_.has_lease();
}

std::optional<ConfigStore::Entry> ControlReplicaDevice::lookup(
    std::string_view key) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return store_.get(key);
}

std::size_t ControlReplicaDevice::watcher_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return watchers_.size();
}

std::vector<std::byte> ControlReplicaDevice::hard_state() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return core_.encode_hard_state();
}

void ControlReplicaDevice::handle_raft(const core::MessageContext& ctx) {
  auto msg = RaftMsg::decode(ctx.payload);
  if (!msg.is_ok()) {
    return;
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  core_.handle(msg.value());
  step_locked();
}

void ControlReplicaDevice::handle_ctrl(const core::MessageContext& ctx) {
  auto req = CtrlRequest::decode(ctx.payload);
  if (!req.is_ok()) {
    (void)frame_reply(ctx, {}, /*failed=*/true);
    return;
  }
  switch (req.value().op) {
    case CtrlOp::Get:
      handle_get(ctx, req.value());
      break;
    case CtrlOp::Put:
    case CtrlOp::Del:
      handle_write(ctx, req.value());
      break;
    case CtrlOp::Watch:
      handle_watch(ctx, req.value());
      break;
  }
}

void ControlReplicaDevice::handle_get(const core::MessageContext& ctx,
                                      const CtrlRequest& req) {
  CtrlReply rep;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const bool stale_ok = (req.flags & kCtrlFlagStaleOk) != 0;
    if (!stale_ok &&
        (core_.role() != Role::Leader || !core_.has_lease())) {
      // Not entitled to a linearizable answer: redirect to the leader
      // (or to nowhere while an election runs - the client backs off).
      rep.redirect = true;
      rep.leader_node = core_.leader_hint();
      if (redirects_ != nullptr) {
        redirects_->add();
      }
    } else if (auto entry = store_.get(req.key); entry.has_value()) {
      rep.ok = true;
      rep.version = entry->version;
      rep.value = std::move(entry)->value;
    } else {
      rep.version = store_.applied_index();  // "absent as of" bound
    }
  }
  const auto payload = rep.encode();
  (void)frame_reply(ctx, payload);
}

void ControlReplicaDevice::handle_write(const core::MessageContext& ctx,
                                        const CtrlRequest& req) {
  CtrlReply rep;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (core_.role() == Role::Leader) {
      Command cmd;
      cmd.op = req.op;
      cmd.key = req.key;
      cmd.value = req.value;
      const auto bytes = cmd.encode();
      auto proposed = core_.propose({bytes.begin(), bytes.end()});
      if (proposed.is_ok()) {
        if (proposals_ != nullptr) {
          proposals_->add();
        }
        // The ack is deferred to commit time: remember the request
        // header and answer from apply_locked.
        pending_[proposed.value()] =
            PendingWrite{ctx.header, core_.term()};
        step_locked();
        return;
      }
    }
    rep.redirect = true;
    rep.leader_node = core_.leader_hint();
    if (redirects_ != nullptr) {
      redirects_->add();
    }
  }
  const auto payload = rep.encode();
  (void)frame_reply(ctx, payload);
}

void ControlReplicaDevice::handle_watch(const core::MessageContext& ctx,
                                        const CtrlRequest& req) {
  CtrlReply rep;
  std::vector<std::pair<std::string, ConfigStore::Entry>> existing;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    // Re-subscribing with the same reply path replaces the old prefix.
    bool replaced = false;
    for (auto& w : watchers_) {
      if (w.tid == ctx.header.initiator) {
        w.prefix = req.key;
        replaced = true;
        break;
      }
    }
    if (!replaced) {
      watchers_.push_back(Watcher{ctx.header.initiator, req.key});
    }
    rep.ok = true;
    rep.version = store_.applied_index();
    existing = store_.list(req.key);
  }
  const auto payload = rep.encode();
  (void)frame_reply(ctx, payload);
  // Snapshot-then-stream: replay what already exists under the prefix so
  // the subscriber needs no separate enumeration round.
  for (auto& [key, entry] : existing) {
    WatchEvent ev;
    ev.version = entry.version;
    ev.key = key;
    ev.value = std::move(entry.value);
    (void)push_event(ctx.header.initiator, ev);
  }
}

void ControlReplicaDevice::step_locked() {
  for (auto& [to, msg] : core_.take_outbox()) {
    send_raft(to, msg);
  }
  if (auto snap = core_.take_installed_snapshot(); snap.has_value()) {
    if (auto restored = ConfigStore::restore(snap->second);
        restored.is_ok()) {
      store_ = std::move(restored).value();
      fail_pending_locked();  // our log was replaced wholesale
    }
  }
  for (auto& [index, bytes] : core_.take_committed()) {
    auto cmd = Command::decode(bytes);
    if (cmd.is_ok()) {
      apply_locked(index, cmd.value());
      continue;
    }
    // A committed entry that fails to decode is corruption every replica
    // skips identically (state machines stay convergent) - but never
    // silently: count it and fail the pending client ack outright
    // (ok=false, no redirect - retrying elsewhere cannot help).
    if (apply_errors_ != nullptr) {
      apply_errors_->add();
    }
    if (const auto it = pending_.find(index); it != pending_.end()) {
      const PendingWrite pw = it->second;
      pending_.erase(it);
      reply_ctrl(pw.request, CtrlReply{});
    }
  }
  if (core_.role() != Role::Leader && !pending_.empty()) {
    fail_pending_locked();
  }
  if (core_.wants_compaction()) {
    (void)core_.compact(store_.applied_index(), store_.encode());
  }
  update_metrics_locked();
}

void ControlReplicaDevice::apply_locked(std::uint64_t index,
                                        const Command& cmd) {
  store_.apply(cmd, index);

  if (const auto it = pending_.find(index); it != pending_.end()) {
    const PendingWrite pw = it->second;
    pending_.erase(it);
    CtrlReply rep;
    // Ack only when the entry that committed is still OUR proposal: a
    // leader never overwrites its own log, so being leader in the
    // proposal's term is the guarantee. Anything else means a rival
    // leader replaced the entry at this index - redirect, never a false
    // ack.
    if (core_.role() == Role::Leader && core_.term() == pw.term) {
      rep.ok = true;
      rep.version = index;
    } else {
      rep.redirect = true;
      rep.leader_node = core_.leader_hint();
    }
    reply_ctrl(pw.request, rep);
  }

  if (watchers_.empty()) {
    return;
  }
  WatchEvent ev;
  ev.deleted = cmd.op == CtrlOp::Del;
  ev.version = index;
  ev.key = cmd.key;
  ev.value = cmd.value;
  // Push with failure accounting: a crashed or departed subscriber whose
  // frames no longer route is dropped after kWatcherFailLimit consecutive
  // misses instead of accumulating forever.
  for (std::size_t i = 0; i < watchers_.size();) {
    Watcher& w = watchers_[i];
    if (cmd.key.compare(0, w.prefix.size(), w.prefix) != 0) {
      ++i;
      continue;
    }
    if (push_event(w.tid, ev)) {
      w.failures = 0;
      ++i;
    } else if (++w.failures >= kWatcherFailLimit) {
      watchers_.erase(watchers_.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
}

void ControlReplicaDevice::fail_pending_locked() {
  if (pending_.empty()) {
    return;
  }
  CtrlReply rep;
  rep.redirect = true;
  rep.leader_node = core_.leader_hint();
  for (const auto& [index, pw] : pending_) {
    reply_ctrl(pw.request, rep);
  }
  pending_.clear();
}

void ControlReplicaDevice::prune_watchers_locked(i2o::NodeId node) {
  if (watchers_.empty()) {
    return;
  }
  auto& table = executive().address_table();
  for (std::size_t i = 0; i < watchers_.size();) {
    auto entry = table.lookup(watchers_[i].tid);
    const bool dead = entry.is_ok() &&
                      entry.value().kind == core::AddressEntry::Kind::Proxy &&
                      entry.value().node == node;
    if (dead) {
      watchers_.erase(watchers_.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
}

void ControlReplicaDevice::send_raft(i2o::NodeId to, const RaftMsg& msg) {
  const i2o::Tid remote =
      cfg_.peer_tid != i2o::kNullTid ? cfg_.peer_tid : tid();
  auto proxy = executive().resolver().resolve(to, remote);
  if (!proxy.is_ok()) {
    return;  // unroutable peer: Raft treats it as message loss
  }
  const auto bytes = msg.encode();
  auto frame = make_private_frame(proxy.value(), i2o::OrgId::kXdaq,
                                  kXfnRaft, bytes);
  if (frame.is_ok()) {
    (void)frame_send(std::move(frame).value());
  }
}

bool ControlReplicaDevice::push_event(i2o::Tid watcher,
                                      const WatchEvent& ev) {
  const auto bytes = ev.encode();
  auto frame = make_private_frame(watcher, i2o::OrgId::kXdaq,
                                  kXfnCtrlEvent, bytes);
  if (!frame.is_ok()) {
    return false;
  }
  return frame_send(std::move(frame).value()).is_ok();
}

void ControlReplicaDevice::reply_ctrl(const i2o::FrameHeader& request,
                                      const CtrlReply& rep) {
  // Deferred reply: frame_reply only consults the request header, so a
  // saved header stands in for the original MessageContext.
  core::MessageContext ctx;
  ctx.header = request;
  const auto payload = rep.encode();
  (void)frame_reply(ctx, payload);
}

void ControlReplicaDevice::update_metrics_locked() {
  if (term_gauge_ == nullptr) {
    return;
  }
  term_gauge_->set(static_cast<std::int64_t>(core_.term()));
  role_gauge_->set(static_cast<std::int64_t>(core_.role()));
  commit_gauge_->set(static_cast<std::int64_t>(core_.commit_index()));
  const std::uint64_t started = core_.elections_started();
  if (started > reported_elections_) {
    elections_->add(started - reported_elections_);
    reported_elections_ = started;
  }
}

}  // namespace xdaq::ctrl
