#include "ctrl/raft.hpp"

#include <algorithm>

#include "i2o/wire.hpp"

namespace xdaq::ctrl {

namespace {

// RaftMsg header layout (little-endian):
//   [u8 type][u8 granted][u16 from][u64 term][u64 last_index][u64 last_term]
//   [u64 prev_index][u64 prev_term][u64 commit][u64 match]
//   [u32 entry_count][u32 snap_len]
// then per entry [u64 term][u32 len][cmd], then the snapshot bytes.
constexpr std::size_t kMsgHeaderBytes = 68;
constexpr std::size_t kEntryHeaderBytes = 12;

bool fits(std::span<const std::byte> bytes, std::size_t off,
          std::size_t len) noexcept {
  return off <= bytes.size() && len <= bytes.size() - off;
}

}  // namespace

std::string_view to_string(Role r) noexcept {
  switch (r) {
    case Role::Follower:
      return "follower";
    case Role::Candidate:
      return "candidate";
    case Role::Leader:
      return "leader";
  }
  return "unknown";
}

std::string_view to_string(RaftMsg::Type t) noexcept {
  switch (t) {
    case RaftMsg::Type::VoteRequest:
      return "vote-request";
    case RaftMsg::Type::VoteReply:
      return "vote-reply";
    case RaftMsg::Type::Append:
      return "append";
    case RaftMsg::Type::AppendReply:
      return "append-reply";
    case RaftMsg::Type::Snapshot:
      return "snapshot";
    case RaftMsg::Type::SnapshotReply:
      return "snapshot-reply";
  }
  return "unknown";
}

std::vector<std::byte> RaftMsg::encode() const {
  std::size_t size = kMsgHeaderBytes + snapshot.size();
  for (const auto& e : entries) {
    size += kEntryHeaderBytes + e.cmd.size();
  }
  std::vector<std::byte> out(size);
  i2o::put_u8(out, 0, static_cast<std::uint8_t>(type));
  i2o::put_u8(out, 1, granted ? 1 : 0);
  i2o::put_u16(out, 2, from);
  i2o::put_u64(out, 4, term);
  i2o::put_u64(out, 12, last_index);
  i2o::put_u64(out, 20, last_term);
  i2o::put_u64(out, 28, prev_index);
  i2o::put_u64(out, 36, prev_term);
  i2o::put_u64(out, 44, commit);
  i2o::put_u64(out, 52, match);
  i2o::put_u32(out, 60, static_cast<std::uint32_t>(entries.size()));
  i2o::put_u32(out, 64, static_cast<std::uint32_t>(snapshot.size()));
  std::size_t off = kMsgHeaderBytes;
  for (const auto& e : entries) {
    i2o::put_u64(out, off, e.term);
    i2o::put_u32(out, off + 8, static_cast<std::uint32_t>(e.cmd.size()));
    std::copy(e.cmd.begin(), e.cmd.end(), out.begin() + off + 12);
    off += kEntryHeaderBytes + e.cmd.size();
  }
  std::copy(snapshot.begin(), snapshot.end(), out.begin() + off);
  return out;
}

Result<RaftMsg> RaftMsg::decode(std::span<const std::byte> bytes) {
  if (bytes.size() < kMsgHeaderBytes) {
    return {Errc::InvalidArgument, "raft message truncated"};
  }
  const std::uint8_t type = i2o::get_u8(bytes, 0);
  if (type < static_cast<std::uint8_t>(Type::VoteRequest) ||
      type > static_cast<std::uint8_t>(Type::SnapshotReply)) {
    return {Errc::InvalidArgument, "raft message carries unknown type"};
  }
  RaftMsg msg;
  msg.type = static_cast<Type>(type);
  msg.granted = i2o::get_u8(bytes, 1) != 0;
  msg.from = i2o::get_u16(bytes, 2);
  msg.term = i2o::get_u64(bytes, 4);
  msg.last_index = i2o::get_u64(bytes, 12);
  msg.last_term = i2o::get_u64(bytes, 20);
  msg.prev_index = i2o::get_u64(bytes, 28);
  msg.prev_term = i2o::get_u64(bytes, 36);
  msg.commit = i2o::get_u64(bytes, 44);
  msg.match = i2o::get_u64(bytes, 52);
  const std::size_t count = i2o::get_u32(bytes, 60);
  const std::size_t snap_len = i2o::get_u32(bytes, 64);
  std::size_t off = kMsgHeaderBytes;
  msg.entries.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    if (!fits(bytes, off, kEntryHeaderBytes)) {
      return {Errc::InvalidArgument, "raft entry header overruns payload"};
    }
    LogEntry e;
    e.term = i2o::get_u64(bytes, off);
    const std::size_t len = i2o::get_u32(bytes, off + 8);
    if (!fits(bytes, off + kEntryHeaderBytes, len)) {
      return {Errc::InvalidArgument, "raft entry body overruns payload"};
    }
    e.cmd.assign(bytes.begin() + off + kEntryHeaderBytes,
                 bytes.begin() + off + kEntryHeaderBytes + len);
    msg.entries.push_back(std::move(e));
    off += kEntryHeaderBytes + len;
  }
  if (!fits(bytes, off, snap_len)) {
    return {Errc::InvalidArgument, "raft snapshot overruns payload"};
  }
  msg.snapshot.assign(bytes.begin() + off, bytes.begin() + off + snap_len);
  return msg;
}

RaftCore::RaftCore(RaftConfig cfg)
    : cfg_(std::move(cfg)), rng_(cfg_.seed ^ cfg_.self) {
  cursors_.resize(cfg_.voters.size());
  reset_election_timer();
}

std::uint64_t RaftCore::replication_lag(i2o::NodeId peer) const {
  if (role_ != Role::Leader) {
    return 0;
  }
  for (std::size_t i = 0; i < cfg_.voters.size(); ++i) {
    if (cfg_.voters[i] == peer) {
      const std::uint64_t match = cursors_[i].match;
      return match < last_log_index() ? last_log_index() - match : 0;
    }
  }
  return 0;
}

bool RaftCore::has_lease() const {
  if (role_ != Role::Leader) {
    return false;
  }
  // Raft §8: until the term-start no-op commits, writes acked by a prior
  // leader may sit committed-but-uncountable above commit_ - serving a
  // read now could miss an acknowledged write.
  if (commit_ < term_start_index_) {
    return false;
  }
  // Count voters whose last AppendEntries ack (or election-time vote) is
  // younger than the minimum election timeout, anchored at the tick the
  // acked round was SENT: none of them can have granted a rival election
  // inside that window.
  std::size_t fresh = 1;  // self
  for (std::size_t i = 0; i < cfg_.voters.size(); ++i) {
    if (cfg_.voters[i] == cfg_.self) {
      continue;
    }
    if (cursors_[i].last_ack_tick + cfg_.election_timeout_min > now_) {
      ++fresh;
    }
  }
  return fresh >= majority();
}

void RaftCore::tick() {
  ++now_;
  if (role_ == Role::Leader) {
    broadcast_appends(/*force=*/false);
    return;
  }
  if (now_ >= election_deadline_) {
    become_candidate();
  }
}

void RaftCore::handle(const RaftMsg& msg) {
  if (msg.from == cfg_.self) {
    return;
  }
  if (msg.term > term_) {
    become_follower(msg.term,
                    msg.type == RaftMsg::Type::Append ||
                            msg.type == RaftMsg::Type::Snapshot
                        ? msg.from
                        : i2o::kNullNode);
  }
  if (msg.term < term_) {
    // A stale sender: tell it about the newer term so it steps down.
    // Stale replies carry no information worth a response.
    if (msg.type == RaftMsg::Type::VoteRequest) {
      RaftMsg reply;
      reply.type = RaftMsg::Type::VoteReply;
      reply.granted = false;
      send(msg.from, std::move(reply));
    } else if (msg.type == RaftMsg::Type::Append ||
               msg.type == RaftMsg::Type::Snapshot) {
      RaftMsg reply;
      reply.type = msg.type == RaftMsg::Type::Append
                       ? RaftMsg::Type::AppendReply
                       : RaftMsg::Type::SnapshotReply;
      reply.granted = false;
      reply.last_index = msg.last_index;  // echo the send tick
      reply.match = last_log_index();
      send(msg.from, std::move(reply));
    }
    return;
  }
  switch (msg.type) {
    case RaftMsg::Type::VoteRequest:
      handle_vote_request(msg);
      break;
    case RaftMsg::Type::VoteReply:
      handle_vote_reply(msg);
      break;
    case RaftMsg::Type::Append:
      handle_append(msg);
      break;
    case RaftMsg::Type::AppendReply:
      handle_append_reply(msg);
      break;
    case RaftMsg::Type::Snapshot:
      handle_snapshot(msg);
      break;
    case RaftMsg::Type::SnapshotReply:
      handle_snapshot_reply(msg);
      break;
  }
}

Result<std::uint64_t> RaftCore::propose(std::vector<std::byte> cmd) {
  if (role_ != Role::Leader) {
    return {Errc::Unavailable, "not the leader"};
  }
  log_.push_back(LogEntry{term_, std::move(cmd)});
  const std::uint64_t index = last_log_index();
  if (cfg_.voters.size() == 1) {
    advance_commit();
  } else {
    broadcast_appends(/*force=*/true);
  }
  return index;
}

void RaftCore::peer_down(i2o::NodeId peer) {
  // PR-2 failure detection as an election accelerant: a follower that
  // just lost its leader's transport does not wait out the randomized
  // timeout - it goes to election at the next tick. Randomization still
  // applies across *other* followers, so split votes stay unlikely.
  if (role_ == Role::Follower && peer == leader_ &&
      leader_ != i2o::kNullNode) {
    leader_ = i2o::kNullNode;
    election_deadline_ = now_;
  }
}

std::vector<std::pair<i2o::NodeId, RaftMsg>> RaftCore::take_outbox() {
  return std::exchange(outbox_, {});
}

std::vector<std::pair<std::uint64_t, std::vector<std::byte>>>
RaftCore::take_committed() {
  std::vector<std::pair<std::uint64_t, std::vector<std::byte>>> out;
  while (applied_ < commit_) {
    ++applied_;
    const LogEntry* e = entry_at(applied_);
    if (e == nullptr) {
      // Covered by an installed snapshot; the host restores from the
      // snapshot blob instead (take_installed_snapshot).
      continue;
    }
    if (e->cmd.empty()) {
      continue;  // term-start no-op barrier, not a state-machine command
    }
    out.emplace_back(applied_, e->cmd);
  }
  return out;
}

std::optional<std::pair<std::uint64_t, std::vector<std::byte>>>
RaftCore::take_installed_snapshot() {
  return std::exchange(installed_, std::nullopt);
}

Status RaftCore::compact(std::uint64_t applied_index,
                         std::vector<std::byte> state) {
  if (applied_index > applied_) {
    return {Errc::InvalidArgument, "cannot compact past the applied cursor"};
  }
  if (applied_index <= snap_index_) {
    return Status::ok();
  }
  snap_term_ = term_at(applied_index);
  log_.erase(log_.begin(),
             log_.begin() + static_cast<std::ptrdiff_t>(applied_index -
                                                        snap_index_));
  snap_index_ = applied_index;
  snap_state_ = std::move(state);
  return Status::ok();
}

std::vector<std::byte> RaftCore::encode_hard_state() const {
  std::size_t size = 8 + 2 + 8 + 8 + 4 + snap_state_.size() + 4;
  for (const auto& e : log_) {
    size += 12 + e.cmd.size();
  }
  std::vector<std::byte> out(size);
  i2o::put_u64(out, 0, term_);
  i2o::put_u16(out, 8, voted_for_);
  i2o::put_u64(out, 10, snap_index_);
  i2o::put_u64(out, 18, snap_term_);
  i2o::put_u32(out, 26, static_cast<std::uint32_t>(snap_state_.size()));
  std::size_t off = 30;
  std::copy(snap_state_.begin(), snap_state_.end(), out.begin() + off);
  off += snap_state_.size();
  i2o::put_u32(out, off, static_cast<std::uint32_t>(log_.size()));
  off += 4;
  for (const auto& e : log_) {
    i2o::put_u64(out, off, e.term);
    i2o::put_u32(out, off + 8, static_cast<std::uint32_t>(e.cmd.size()));
    std::copy(e.cmd.begin(), e.cmd.end(), out.begin() + off + 12);
    off += 12 + e.cmd.size();
  }
  return out;
}

Result<RaftCore> RaftCore::restore(RaftConfig cfg,
                                   std::span<const std::byte> hard) {
  if (hard.empty()) {
    // Fresh disk: nothing persisted yet, boot a pristine follower.
    return RaftCore(std::move(cfg));
  }
  if (hard.size() < 34) {
    return {Errc::InvalidArgument, "hard state truncated"};
  }
  RaftCore core(std::move(cfg));
  core.term_ = i2o::get_u64(hard, 0);
  core.voted_for_ = i2o::get_u16(hard, 8);
  core.snap_index_ = i2o::get_u64(hard, 10);
  core.snap_term_ = i2o::get_u64(hard, 18);
  const std::size_t snap_len = i2o::get_u32(hard, 26);
  if (!fits(hard, 30, snap_len)) {
    return {Errc::InvalidArgument, "hard-state snapshot overruns blob"};
  }
  core.snap_state_.assign(hard.begin() + 30, hard.begin() + 30 + snap_len);
  std::size_t off = 30 + snap_len;
  if (!fits(hard, off, 4)) {
    return {Errc::InvalidArgument, "hard-state log count overruns blob"};
  }
  const std::size_t count = i2o::get_u32(hard, off);
  off += 4;
  core.log_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    if (!fits(hard, off, 12)) {
      return {Errc::InvalidArgument, "hard-state entry header overruns blob"};
    }
    LogEntry e;
    e.term = i2o::get_u64(hard, off);
    const std::size_t len = i2o::get_u32(hard, off + 8);
    if (!fits(hard, off + 12, len)) {
      return {Errc::InvalidArgument, "hard-state entry body overruns blob"};
    }
    e.cmd.assign(hard.begin() + off + 12, hard.begin() + off + 12 + len);
    core.log_.push_back(std::move(e));
    off += 12 + len;
  }
  // The snapshot prefix is committed by definition; the host restores its
  // state machine from it right away.
  core.commit_ = core.snap_index_;
  core.applied_ = core.snap_index_;
  if (!core.snap_state_.empty() || core.snap_index_ > 0) {
    core.installed_ = {{core.snap_index_, core.snap_state_}};
  }
  return core;
}

std::uint64_t RaftCore::term_at(std::uint64_t index) const {
  if (index == snap_index_) {
    return snap_term_;
  }
  const LogEntry* e = entry_at(index);
  return e != nullptr ? e->term : 0;
}

const LogEntry* RaftCore::entry_at(std::uint64_t index) const {
  if (index <= snap_index_ || index > last_log_index()) {
    return nullptr;
  }
  return &log_[index - snap_index_ - 1];
}

void RaftCore::reset_election_timer(bool expire_now) {
  election_deadline_ =
      expire_now ? now_
                 : now_ + rng_.between(cfg_.election_timeout_min,
                                       cfg_.election_timeout_max);
}

void RaftCore::become_follower(std::uint64_t term, i2o::NodeId leader) {
  if (term > term_) {
    term_ = term;
    voted_for_ = i2o::kNullNode;
  }
  role_ = Role::Follower;
  leader_ = leader;
  votes_.clear();
  reset_election_timer();
}

void RaftCore::become_candidate() {
  role_ = Role::Candidate;
  ++term_;
  ++elections_;
  voted_for_ = cfg_.self;
  votes_.assign(1, cfg_.self);
  leader_ = i2o::kNullNode;
  campaign_started_ = now_;
  reset_election_timer();
  if (votes_.size() >= majority()) {
    become_leader();
    return;
  }
  RaftMsg req;
  req.type = RaftMsg::Type::VoteRequest;
  req.last_index = last_log_index();
  req.last_term = term_at(last_log_index());
  for (i2o::NodeId peer : cfg_.voters) {
    if (peer != cfg_.self) {
      send(peer, req);
    }
  }
}

void RaftCore::become_leader() {
  role_ = Role::Leader;
  leader_ = cfg_.self;
  // Raft §8 no-op barrier: advance_commit() only counts current-term
  // entries, so prior-term entries (possibly acked by the old leader)
  // commit transitively once this barrier replicates. has_lease() is
  // withheld until then.
  log_.push_back(LogEntry{term_, {}});
  term_start_index_ = last_log_index();
  for (std::size_t i = 0; i < cfg_.voters.size(); ++i) {
    // Optimistic cursor at the barrier: an up-to-date follower accepts
    // the very first append; laggards back off via the conflict hint.
    cursors_[i].next = term_start_index_;
    cursors_[i].match = 0;
    cursors_[i].snapshot_in_flight = false;
    // A vote granted in this election counts as a lease-fresh ack: the
    // voter promised not to elect anyone else for a full timeout,
    // starting no earlier than the candidacy's VoteRequest send tick.
    const bool voted =
        std::find(votes_.begin(), votes_.end(), cfg_.voters[i]) !=
        votes_.end();
    cursors_[i].last_ack_tick = voted ? campaign_started_ : 0;
  }
  advance_commit();
  broadcast_appends(/*force=*/true);
}

void RaftCore::send(i2o::NodeId to, RaftMsg msg) {
  msg.from = cfg_.self;
  msg.term = term_;
  outbox_.emplace_back(to, std::move(msg));
}

void RaftCore::broadcast_appends(bool force) {
  if (!force && now_ < last_broadcast_ + cfg_.heartbeat_interval) {
    return;
  }
  last_broadcast_ = now_;
  for (i2o::NodeId peer : cfg_.voters) {
    if (peer != cfg_.self) {
      send_append(peer);
    }
  }
}

void RaftCore::send_append(i2o::NodeId peer) {
  std::size_t slot = 0;
  for (std::size_t i = 0; i < cfg_.voters.size(); ++i) {
    if (cfg_.voters[i] == peer) {
      slot = i;
      break;
    }
  }
  PeerCursor& cur = cursors_[slot];
  if (cur.next <= snap_index_) {
    // The follower's cursor fell behind the compacted log: ship the
    // snapshot instead (at most one in flight per follower).
    if (cur.snapshot_in_flight) {
      return;
    }
    cur.snapshot_in_flight = true;
    RaftMsg snap;
    snap.type = RaftMsg::Type::Snapshot;
    snap.last_index = now_;  // send tick, echoed back as the lease anchor
    snap.prev_index = snap_index_;
    snap.prev_term = snap_term_;
    snap.commit = commit_;
    snap.snapshot = snap_state_;
    send(peer, std::move(snap));
    return;
  }
  RaftMsg app;
  app.type = RaftMsg::Type::Append;
  app.last_index = now_;  // send tick, echoed back as the lease anchor
  app.prev_index = cur.next - 1;
  app.prev_term = term_at(app.prev_index);
  app.commit = commit_;
  for (std::uint64_t idx = cur.next;
       idx <= last_log_index() &&
       app.entries.size() < cfg_.max_append_entries;
       ++idx) {
    app.entries.push_back(*entry_at(idx));
  }
  send(peer, std::move(app));
}

void RaftCore::advance_commit() {
  if (role_ != Role::Leader) {
    return;
  }
  for (std::uint64_t n = last_log_index(); n > commit_; --n) {
    // Only entries from the current term commit by counting (Raft §5.4.2);
    // earlier-term entries commit transitively with them.
    if (term_at(n) != term_) {
      break;
    }
    std::size_t replicas = 1;  // self
    for (std::size_t i = 0; i < cfg_.voters.size(); ++i) {
      if (cfg_.voters[i] != cfg_.self && cursors_[i].match >= n) {
        ++replicas;
      }
    }
    if (replicas >= majority()) {
      commit_ = n;
      break;
    }
  }
}

void RaftCore::handle_vote_request(const RaftMsg& msg) {
  const std::uint64_t my_last = last_log_index();
  const std::uint64_t my_last_term = term_at(my_last);
  const bool up_to_date =
      msg.last_term > my_last_term ||
      (msg.last_term == my_last_term && msg.last_index >= my_last);
  const bool free_to_vote =
      voted_for_ == i2o::kNullNode || voted_for_ == msg.from;
  RaftMsg reply;
  reply.type = RaftMsg::Type::VoteReply;
  reply.granted = up_to_date && free_to_vote && role_ != Role::Leader;
  if (reply.granted) {
    voted_for_ = msg.from;
    reset_election_timer();
  }
  send(msg.from, std::move(reply));
}

void RaftCore::handle_vote_reply(const RaftMsg& msg) {
  if (role_ != Role::Candidate || !msg.granted) {
    return;
  }
  if (std::find(votes_.begin(), votes_.end(), msg.from) != votes_.end()) {
    return;
  }
  votes_.push_back(msg.from);
  if (votes_.size() >= majority()) {
    become_leader();
  }
}

void RaftCore::handle_append(const RaftMsg& msg) {
  // Same term, so msg.from is the legitimate leader: yield candidacy.
  role_ = Role::Follower;
  leader_ = msg.from;
  votes_.clear();
  reset_election_timer();

  RaftMsg reply;
  reply.type = RaftMsg::Type::AppendReply;
  reply.last_index = msg.last_index;  // echo the leader's send tick

  if (msg.prev_index > last_log_index()) {
    // Gap: ask the leader to back up to our log end.
    reply.granted = false;
    reply.match = last_log_index();
    send(msg.from, std::move(reply));
    return;
  }
  if (msg.prev_index >= snap_index_ &&
      term_at(msg.prev_index) != msg.prev_term) {
    // Conflict: back up past the whole conflicting term in one round.
    std::uint64_t hint = msg.prev_index;
    const std::uint64_t bad_term = term_at(msg.prev_index);
    while (hint > snap_index_ + 1 && term_at(hint - 1) == bad_term) {
      --hint;
    }
    reply.granted = false;
    reply.match = hint - 1;
    send(msg.from, std::move(reply));
    return;
  }

  std::uint64_t index = msg.prev_index;
  for (const LogEntry& e : msg.entries) {
    ++index;
    if (index <= snap_index_) {
      continue;  // already covered by our snapshot (committed)
    }
    const LogEntry* mine = entry_at(index);
    if (mine != nullptr && mine->term == e.term) {
      continue;  // already have it
    }
    if (mine != nullptr) {
      // Divergence: everything from here on is uncommitted garbage.
      log_.resize(index - snap_index_ - 1);
    }
    log_.push_back(e);
  }
  const std::uint64_t match = msg.prev_index + msg.entries.size();
  // Clamped against the current value: a duplicated or delayed older
  // Append (small prev_index, few entries) must never regress commit_.
  commit_ = std::max(commit_, std::min(msg.commit, match));
  reply.granted = true;
  reply.match = match;
  send(msg.from, std::move(reply));
}

void RaftCore::handle_append_reply(const RaftMsg& msg) {
  if (role_ != Role::Leader) {
    return;
  }
  for (std::size_t i = 0; i < cfg_.voters.size(); ++i) {
    if (cfg_.voters[i] != msg.from) {
      continue;
    }
    PeerCursor& cur = cursors_[i];
    // Lease anchor: the echoed SEND tick of the acked round, not the
    // receipt tick - a delayed reply must not extend the lease past the
    // point a rival could be elected. min() guards a corrupt echo.
    cur.last_ack_tick =
        std::max(cur.last_ack_tick, std::min(msg.last_index, now_));
    if (msg.granted) {
      cur.match = std::max(cur.match, msg.match);
      cur.next = cur.match + 1;
      advance_commit();
      if (cur.next <= last_log_index()) {
        send_append(msg.from);  // keep a lagging follower streaming
      }
    } else {
      // msg.match is the follower's back-up hint.
      cur.next = std::max<std::uint64_t>(msg.match + 1, 1);
      send_append(msg.from);
    }
    return;
  }
}

void RaftCore::handle_snapshot(const RaftMsg& msg) {
  role_ = Role::Follower;
  leader_ = msg.from;
  votes_.clear();
  reset_election_timer();

  RaftMsg reply;
  reply.type = RaftMsg::Type::SnapshotReply;
  reply.granted = true;
  reply.last_index = msg.last_index;  // echo the leader's send tick

  if (msg.prev_index <= commit_) {
    // We already have everything the snapshot covers.
    reply.match = last_log_index();
    send(msg.from, std::move(reply));
    return;
  }
  // Replace our state wholesale; anything we had past prev_index is from
  // a stale divergent history or absent entirely.
  log_.clear();
  snap_index_ = msg.prev_index;
  snap_term_ = msg.prev_term;
  snap_state_ = msg.snapshot;
  commit_ = snap_index_;
  applied_ = snap_index_;
  installed_ = {{snap_index_, snap_state_}};
  reply.match = snap_index_;
  send(msg.from, std::move(reply));
}

void RaftCore::handle_snapshot_reply(const RaftMsg& msg) {
  if (role_ != Role::Leader) {
    return;
  }
  for (std::size_t i = 0; i < cfg_.voters.size(); ++i) {
    if (cfg_.voters[i] != msg.from) {
      continue;
    }
    PeerCursor& cur = cursors_[i];
    cur.last_ack_tick =
        std::max(cur.last_ack_tick, std::min(msg.last_index, now_));
    cur.snapshot_in_flight = false;
    if (msg.granted) {
      cur.match = std::max(cur.match, msg.match);
      cur.next = cur.match + 1;
      advance_commit();
    }
    return;
  }
}

}  // namespace xdaq::ctrl
