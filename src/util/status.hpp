// status.hpp - lightweight error propagation for hot paths.
//
// The executive's dispatch and transport paths must not throw: a malformed
// frame arriving from a remote node is an expected runtime condition, not an
// exceptional one. Status/Result carry an error code plus a short message and
// are cheap to return by value (a success Status is a single pointer-sized
// load).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace xdaq {

/// Error categories used across the framework.
enum class Errc : std::uint8_t {
  Ok = 0,
  InvalidArgument,
  NotFound,
  AlreadyExists,
  ResourceExhausted,  ///< pool empty, queue full, token starvation
  MalformedFrame,     ///< wire-format violation
  Unroutable,         ///< no address-table entry / no transport route
  Timeout,
  ConnectionClosed,
  IoError,
  Unsupported,
  Internal,
  FailedPrecondition,  ///< device in wrong state for the request
  Unavailable,         ///< peer transiently unreachable (reconnect pending)
  PeerDown,            ///< peer declared dead by liveness tracking
};

/// Human-readable name of an error category.
std::string_view to_string(Errc c) noexcept;

/// A success-or-error value. Success carries no allocation.
class [[nodiscard]] Status {
 public:
  Status() noexcept = default;  // Ok

  Status(Errc code, std::string message)
      : rep_(code == Errc::Ok
                 ? nullptr
                 : std::make_shared<Rep>(Rep{code, std::move(message)})) {}

  static Status ok() noexcept { return Status(); }

  [[nodiscard]] bool is_ok() const noexcept { return rep_ == nullptr; }
  explicit operator bool() const noexcept { return is_ok(); }

  [[nodiscard]] Errc code() const noexcept {
    return rep_ ? rep_->code : Errc::Ok;
  }
  [[nodiscard]] std::string_view message() const noexcept {
    return rep_ ? std::string_view(rep_->message) : std::string_view{};
  }

  /// "Ok" or "<category>: <message>".
  [[nodiscard]] std::string to_string() const;

 private:
  struct Rep {
    Errc code;
    std::string message;
  };
  std::shared_ptr<const Rep> rep_;  // null == Ok; shared so copies are cheap
};

/// A value or an error. Modeled after std::expected (unavailable in C++20).
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}             // NOLINT implicit
  Result(Status status) : status_(std::move(status)) {      // NOLINT implicit
    if (status_.is_ok()) {
      status_ = Status(Errc::Internal, "Result constructed from Ok status");
    }
  }
  Result(Errc code, std::string message)
      : status_(code, std::move(message)) {}

  [[nodiscard]] bool is_ok() const noexcept { return status_.is_ok(); }
  explicit operator bool() const noexcept { return is_ok(); }

  [[nodiscard]] const Status& status() const noexcept { return status_; }

  /// Precondition: is_ok().
  T& value() & { return *value_; }
  const T& value() const& { return *value_; }
  T&& value() && { return std::move(*value_); }

  T value_or(T fallback) const& {
    return is_ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;  ///< engaged iff status_ is Ok
  Status status_;
};

}  // namespace xdaq
