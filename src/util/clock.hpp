// clock.hpp - high-resolution time sources and the lightweight time probes
// used by the whitebox benchmark (paper, Table 1).
//
// The paper instruments the framework with "lightweight high-resolution time
// probes based on reading the CPU clock ticks into some reserved memory
// region". TimeProbe reproduces that: a probe records a raw tick counter into
// a preallocated slot; conversion to nanoseconds happens offline, after the
// measurement loop, so the probe itself stays at a couple of instructions.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <vector>

#if defined(__x86_64__) || defined(__i386__)
#include <x86intrin.h>
#endif

namespace xdaq {

/// Monotonic wall time in nanoseconds.
inline std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Raw CPU tick counter. Falls back to steady_clock on non-x86.
inline std::uint64_t rdtsc() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  return __rdtsc();
#else
  return now_ns();
#endif
}

/// Calibrates rdtsc ticks against the steady clock.
///
/// Returns ticks per nanosecond. The calibration spins for ~10 ms, long
/// enough for sub-percent accuracy on any modern invariant-TSC part.
double calibrate_ticks_per_ns();

/// Records raw tick stamps into preallocated storage; converts offline.
///
/// Usage mirrors the paper's whitebox instrumentation:
///
///   TimeProbe probe(100000);
///   for (...) { probe.stamp(); work(); probe.stamp(); }
///   auto deltas_ns = probe.deltas_ns();   // [t1-t0, t3-t2, ...]
class TimeProbe {
 public:
  explicit TimeProbe(std::size_t expected_stamps) {
    stamps_.reserve(expected_stamps);
  }

  void stamp() noexcept { stamps_.push_back(rdtsc()); }

  void clear() noexcept { stamps_.clear(); }

  [[nodiscard]] std::size_t size() const noexcept { return stamps_.size(); }

  [[nodiscard]] const std::vector<std::uint64_t>& raw() const noexcept {
    return stamps_;
  }

  /// Pairs consecutive stamps (0-1, 2-3, ...) and converts to nanoseconds.
  [[nodiscard]] std::vector<double> deltas_ns() const;

 private:
  std::vector<std::uint64_t> stamps_;
};

/// Simple scope timer for coarse measurements (not for the hot path).
class ScopedTimerNs {
 public:
  explicit ScopedTimerNs(std::uint64_t& out) noexcept
      : out_(out), start_(now_ns()) {}
  ~ScopedTimerNs() { out_ = now_ns() - start_; }

  ScopedTimerNs(const ScopedTimerNs&) = delete;
  ScopedTimerNs& operator=(const ScopedTimerNs&) = delete;

 private:
  std::uint64_t& out_;
  std::uint64_t start_;
};

}  // namespace xdaq
