#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace xdaq {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

void Sampler::add_all(const std::vector<double>& xs) {
  samples_.insert(samples_.end(), xs.begin(), xs.end());
  sorted_ = false;
}

double Sampler::mean() const noexcept {
  if (samples_.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (double s : samples_) {
    sum += s;
  }
  return sum / static_cast<double>(samples_.size());
}

double Sampler::stddev() const noexcept {
  if (samples_.size() < 2) {
    return 0.0;
  }
  const double m = mean();
  double acc = 0.0;
  for (double s : samples_) {
    acc += (s - m) * (s - m);
  }
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

void Sampler::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Sampler::percentile(double p) const {
  if (samples_.empty()) {
    return 0.0;
  }
  ensure_sorted();
  p = std::clamp(p, 0.0, 100.0);
  const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples_[lo] + frac * (samples_[hi] - samples_[lo]);
}

double Sampler::min() const {
  if (samples_.empty()) {
    return 0.0;
  }
  ensure_sorted();
  return samples_.front();
}

double Sampler::max() const {
  if (samples_.empty()) {
    return 0.0;
  }
  ensure_sorted();
  return samples_.back();
}

LinearFit LinearFit::fit(const std::vector<double>& xs,
                         const std::vector<double>& ys) {
  LinearFit out;
  const std::size_t n = std::min(xs.size(), ys.size());
  if (n < 2) {
    if (n == 1) {
      out.intercept = ys[0];
      out.r2 = 1.0;
    }
    return out;
  }
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
    syy += ys[i] * ys[i];
  }
  const double dn = static_cast<double>(n);
  const double denom = dn * sxx - sx * sx;
  if (denom == 0.0) {
    out.intercept = sy / dn;
    return out;
  }
  out.slope = (dn * sxy - sx * sy) / denom;
  out.intercept = (sy - out.slope * sx) / dn;
  const double sstot = syy - sy * sy / dn;
  if (sstot > 0.0) {
    double ssres = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double r = ys[i] - (out.slope * xs[i] + out.intercept);
      ssres += r * r;
    }
    out.r2 = 1.0 - ssres / sstot;
  } else {
    out.r2 = 1.0;
  }
  return out;
}

namespace {

/// Validates before any arithmetic: width_ is computed in the member
/// initializer list, which runs before the constructor body, so the
/// bins/range check must happen inside the initializer itself or a zero
/// `bins` divides by zero before the throw is ever reached.
double checked_bin_width(double lo, double hi, std::size_t bins) {
  if (bins == 0 || hi <= lo) {
    throw std::invalid_argument("Histogram: need bins>0 and hi>lo");
  }
  return (hi - lo) / static_cast<double>(bins);
}

}  // namespace

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_(checked_bin_width(lo, hi, bins)),
      counts_(bins, 0) {}

void Histogram::add(double x) noexcept {
  ++total_;
  if (x < lo_) {
    ++under_;
    return;
  }
  if (x >= hi_) {
    ++over_;
    return;
  }
  auto bin = static_cast<std::size_t>((x - lo_) / width_);
  if (bin >= counts_.size()) {
    bin = counts_.size() - 1;  // guard against FP edge at hi_
  }
  ++counts_[bin];
}

double Histogram::bin_low(std::size_t bin) const noexcept {
  return lo_ + width_ * static_cast<double>(bin);
}

double Histogram::bin_high(std::size_t bin) const noexcept {
  return lo_ + width_ * static_cast<double>(bin + 1);
}

}  // namespace xdaq
