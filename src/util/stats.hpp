// stats.hpp - statistics used by the evaluation harness: running
// mean/stddev, sample medians and percentiles, and least-squares linear fits
// (the paper reports linear fits of latency vs payload in Fig. 6).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace xdaq {

/// Welford running mean / variance. O(1) space, numerically stable.
class RunningStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }

  void reset() noexcept { *this = RunningStats{}; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Stores samples for order statistics (median, percentiles).
class Sampler {
 public:
  Sampler() = default;
  explicit Sampler(std::size_t expected) { samples_.reserve(expected); }

  void add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }
  void add_all(const std::vector<double>& xs);

  [[nodiscard]] std::size_t count() const noexcept { return samples_.size(); }
  [[nodiscard]] double mean() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  /// p in [0,100]; linear interpolation between ranks. 0 samples -> 0.
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] double median() const { return percentile(50.0); }
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

  [[nodiscard]] const std::vector<double>& samples() const noexcept {
    return samples_;
  }
  void clear() noexcept { samples_.clear(); }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
  void ensure_sorted() const;
};

/// Least-squares fit y = slope * x + intercept.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r2 = 0.0;  ///< coefficient of determination

  static LinearFit fit(const std::vector<double>& xs,
                       const std::vector<double>& ys);
};

/// Fixed-range histogram for latency distributions.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;

  [[nodiscard]] std::size_t bin_count() const noexcept {
    return counts_.size();
  }
  [[nodiscard]] std::uint64_t count_at(std::size_t bin) const {
    return counts_.at(bin);
  }
  [[nodiscard]] std::uint64_t underflow() const noexcept { return under_; }
  [[nodiscard]] std::uint64_t overflow() const noexcept { return over_; }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] double bin_low(std::size_t bin) const noexcept;
  [[nodiscard]] double bin_high(std::size_t bin) const noexcept;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t under_ = 0;
  std::uint64_t over_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace xdaq
