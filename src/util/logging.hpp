// logging.hpp - minimal thread-safe leveled logging.
//
// Deliberately tiny: the hot path never logs (the executive would lose its
// microsecond budget), so there is no async machinery — a single mutex
// around the sink is enough for configuration/control/diagnostic traffic.
#pragma once

#include <cstdio>
#include <sstream>
#include <string>
#include <string_view>

namespace xdaq {

enum class LogLevel : int { Trace = 0, Debug, Info, Warn, Error, Off };

namespace log_detail {
/// Global threshold; messages below it are discarded before formatting.
LogLevel threshold() noexcept;
void set_threshold(LogLevel level) noexcept;
void emit(LogLevel level, std::string_view component, std::string_view text);
}  // namespace log_detail

inline void set_log_level(LogLevel level) noexcept {
  log_detail::set_threshold(level);
}

/// Named logger handle. Cheap to construct; holds only the component name.
class Logger {
 public:
  explicit Logger(std::string component) : component_(std::move(component)) {}

  template <typename... Args>
  void log(LogLevel level, Args&&... args) const {
    if (level < log_detail::threshold()) {
      return;
    }
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    log_detail::emit(level, component_, oss.str());
  }

  template <typename... Args>
  void trace(Args&&... args) const {
    log(LogLevel::Trace, std::forward<Args>(args)...);
  }
  template <typename... Args>
  void debug(Args&&... args) const {
    log(LogLevel::Debug, std::forward<Args>(args)...);
  }
  template <typename... Args>
  void info(Args&&... args) const {
    log(LogLevel::Info, std::forward<Args>(args)...);
  }
  template <typename... Args>
  void warn(Args&&... args) const {
    log(LogLevel::Warn, std::forward<Args>(args)...);
  }
  template <typename... Args>
  void error(Args&&... args) const {
    log(LogLevel::Error, std::forward<Args>(args)...);
  }

  [[nodiscard]] const std::string& component() const noexcept {
    return component_;
  }

 private:
  std::string component_;
};

}  // namespace xdaq
