// cli.hpp - tiny flag parser for examples and benchmark binaries.
//
// Supports --name=value, --name value, and boolean --name. Unknown flags are
// an error so typos in benchmark sweeps fail loudly.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/status.hpp"

namespace xdaq {

class CliParser {
 public:
  CliParser& flag(const std::string& name, const std::string& help,
                  std::string default_value);
  CliParser& flag(const std::string& name, const std::string& help,
                  std::int64_t default_value);
  CliParser& flag(const std::string& name, const std::string& help,
                  bool default_value);

  /// Parses argv; on error returns the problem (and usage() explains flags).
  Status parse(int argc, const char* const* argv);

  [[nodiscard]] std::string get_string(const std::string& name) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name) const;
  [[nodiscard]] bool get_bool(const std::string& name) const;

  /// Positional (non-flag) arguments in order of appearance.
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  [[nodiscard]] std::string usage(const std::string& program) const;

 private:
  enum class Kind { String, Int, Bool };
  struct Spec {
    Kind kind;
    std::string help;
    std::string value;  // stored as text; converted on access
  };
  std::map<std::string, Spec> specs_;
  std::vector<std::string> positional_;
};

}  // namespace xdaq
