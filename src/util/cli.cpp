#include "util/cli.hpp"

#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace xdaq {

CliParser& CliParser::flag(const std::string& name, const std::string& help,
                           std::string default_value) {
  specs_[name] = Spec{Kind::String, help, std::move(default_value)};
  return *this;
}

CliParser& CliParser::flag(const std::string& name, const std::string& help,
                           std::int64_t default_value) {
  specs_[name] = Spec{Kind::Int, help, std::to_string(default_value)};
  return *this;
}

CliParser& CliParser::flag(const std::string& name, const std::string& help,
                           bool default_value) {
  specs_[name] = Spec{Kind::Bool, help, default_value ? "true" : "false"};
  return *this;
}

Status CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string name = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (const auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_value = true;
    }
    const auto it = specs_.find(name);
    if (it == specs_.end()) {
      return {Errc::InvalidArgument, "unknown flag --" + name};
    }
    if (!has_value) {
      if (it->second.kind == Kind::Bool) {
        value = "true";
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        return {Errc::InvalidArgument, "flag --" + name + " needs a value"};
      }
    }
    if (it->second.kind == Kind::Int) {
      char* end = nullptr;
      (void)std::strtoll(value.c_str(), &end, 0);
      if (end == value.c_str() || *end != '\0') {
        return {Errc::InvalidArgument,
                "flag --" + name + " expects an integer, got '" + value + "'"};
      }
    }
    it->second.value = std::move(value);
  }
  return Status::ok();
}

std::string CliParser::get_string(const std::string& name) const {
  const auto it = specs_.find(name);
  if (it == specs_.end()) {
    throw std::logic_error("CliParser: undeclared flag --" + name);
  }
  return it->second.value;
}

std::int64_t CliParser::get_int(const std::string& name) const {
  return std::strtoll(get_string(name).c_str(), nullptr, 0);
}

bool CliParser::get_bool(const std::string& name) const {
  const std::string v = get_string(name);
  return v == "true" || v == "1" || v == "yes";
}

std::string CliParser::usage(const std::string& program) const {
  std::ostringstream oss;
  oss << "Usage: " << program << " [flags]\n";
  for (const auto& [name, spec] : specs_) {
    oss << "  --" << name << "  " << spec.help << " (default: " << spec.value
        << ")\n";
  }
  return oss.str();
}

}  // namespace xdaq
