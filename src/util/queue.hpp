// queue.hpp - bounded multi-producer blocking queue.
//
// Used where more than one thread posts into an executive (task-mode peer
// transports, control sessions). Follows CP.42: every wait has a predicate.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace xdaq {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

  /// Blocks until space is available or the queue is closed.
  /// Returns false if the queue was closed.
  bool push(T value) {
    std::unique_lock lock(mutex_);
    not_full_.wait(lock,
                   [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) {
      return false;
    }
    items_.push_back(std::move(value));
    size_.store(items_.size(), std::memory_order_release);
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push; false when full or closed.
  bool try_push(T value) {
    {
      const std::scoped_lock lock(mutex_);
      if (closed_ || items_.size() >= capacity_) {
        return false;
      }
      items_.push_back(std::move(value));
      size_.store(items_.size(), std::memory_order_release);
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item arrives or the queue is closed and drained.
  std::optional<T> pop() {
    std::unique_lock lock(mutex_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) {
      return std::nullopt;  // closed and drained
    }
    T out = std::move(items_.front());
    items_.pop_front();
    size_.store(items_.size(), std::memory_order_release);
    lock.unlock();
    not_full_.notify_one();
    return out;
  }

  /// Pop with timeout; nullopt when the deadline passes or the queue is
  /// closed and drained.
  template <typename Rep, typename Period>
  std::optional<T> pop_for(std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock lock(mutex_);
    if (!not_empty_.wait_for(lock, timeout,
                             [this] { return closed_ || !items_.empty(); })) {
      return std::nullopt;
    }
    if (items_.empty()) {
      return std::nullopt;
    }
    T out = std::move(items_.front());
    items_.pop_front();
    size_.store(items_.size(), std::memory_order_release);
    lock.unlock();
    not_full_.notify_one();
    return out;
  }

  /// Non-blocking pop. A lock-free empty check guards the mutex so that a
  /// consumer polling an empty queue cannot convoy producers.
  std::optional<T> try_pop() {
    if (size_.load(std::memory_order_acquire) == 0) {
      return std::nullopt;
    }
    std::optional<T> out;
    {
      const std::scoped_lock lock(mutex_);
      if (items_.empty()) {
        return std::nullopt;
      }
      out.emplace(std::move(items_.front()));
      items_.pop_front();
      size_.store(items_.size(), std::memory_order_release);
    }
    not_full_.notify_one();
    return out;
  }

  /// Wakes all waiters; subsequent pushes fail, pops drain then return null.
  void close() {
    {
      const std::scoped_lock lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    const std::scoped_lock lock(mutex_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    return size_.load(std::memory_order_acquire);
  }

  [[nodiscard]] bool empty() const { return size() == 0; }

 private:
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  std::size_t capacity_;
  bool closed_ = false;
  std::atomic<std::size_t> size_{0};  ///< mirrors items_.size()
};

}  // namespace xdaq
