// queue.hpp - bounded multi-producer blocking queue.
//
// Used where more than one thread posts into an executive (task-mode peer
// transports, control sessions). Follows CP.42: every wait has a predicate.
//
// Storage is a fixed ring allocated once at construction: steady-state
// push/pop never touches the heap. (A deque of ~100-byte elements
// allocates and frees a chunk every few items, which showed up as a
// per-message cost on the executive's inbound path.) T must be movable
// and default-constructible; popped slots hold a moved-from T until they
// are overwritten.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <optional>
#include <span>
#include <utility>
#include <vector>

namespace xdaq {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity)
      : slots_(capacity), capacity_(capacity) {}

  /// Blocks until space is available or the queue is closed.
  /// Returns false if the queue was closed.
  bool push(T value) {
    std::unique_lock lock(mutex_);
    not_full_.wait(lock, [this] { return closed_ || count_ < capacity_; });
    if (closed_) {
      return false;
    }
    put(std::move(value));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push; false when full or closed.
  bool try_push(T value) {
    {
      const std::scoped_lock lock(mutex_);
      if (closed_ || count_ >= capacity_) {
        return false;
      }
      put(std::move(value));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item arrives or the queue is closed and drained.
  std::optional<T> pop() {
    std::unique_lock lock(mutex_);
    not_empty_.wait(lock, [this] { return closed_ || count_ > 0; });
    if (count_ == 0) {
      return std::nullopt;  // closed and drained
    }
    std::optional<T> out(take());
    lock.unlock();
    not_full_.notify_one();
    return out;
  }

  /// Pop with timeout; nullopt when the deadline passes or the queue is
  /// closed and drained.
  template <typename Rep, typename Period>
  std::optional<T> pop_for(std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock lock(mutex_);
    if (!not_empty_.wait_for(lock, timeout,
                             [this] { return closed_ || count_ > 0; })) {
      return std::nullopt;
    }
    if (count_ == 0) {
      return std::nullopt;
    }
    std::optional<T> out(take());
    lock.unlock();
    not_full_.notify_one();
    return out;
  }

  /// Moves up to `items.size()` elements into the queue under ONE lock
  /// acquisition (producers amortize synchronization over a burst instead
  /// of paying it per element). Accepted elements are moved-from in
  /// `items`; returns how many were accepted - a prefix, so `items[n..]`
  /// remain untouched when the queue fills or is closed.
  std::size_t push_batch(std::span<T> items) {
    std::size_t accepted = 0;
    {
      const std::scoped_lock lock(mutex_);
      if (!closed_) {
        while (accepted < items.size() && count_ < capacity_) {
          put(std::move(items[accepted]));
          ++accepted;
        }
      }
    }
    if (accepted > 1) {
      not_empty_.notify_all();
    } else if (accepted == 1) {
      not_empty_.notify_one();
    }
    return accepted;
  }

  /// push_batch variant that constructs queue elements in place: for each
  /// accepted source element, `make(std::move(src[i]))` runs inside the
  /// critical section and its result goes straight into the queue -
  /// skipping the caller-side staging buffer and its extra move per
  /// element. `make` must be cheap and must not call back into this
  /// queue. Returns how many source elements were consumed (a prefix).
  template <typename U, typename Make>
  std::size_t push_batch_make(std::span<U> src, Make&& make) {
    std::size_t accepted = 0;
    {
      const std::scoped_lock lock(mutex_);
      if (!closed_) {
        while (accepted < src.size() && count_ < capacity_) {
          put(make(std::move(src[accepted])));
          ++accepted;
        }
      }
    }
    if (accepted > 1) {
      not_empty_.notify_all();
    } else if (accepted == 1) {
      not_empty_.notify_one();
    }
    return accepted;
  }

  /// Moves up to `max` elements into `out` (appended) under ONE lock
  /// acquisition - the consumer-side counterpart of push_batch. Never
  /// blocks; returns how many were drained (0 when empty). A closed queue
  /// still drains its remaining items, mirroring pop().
  std::size_t drain(std::vector<T>& out, std::size_t max) {
    if (max == 0 || size_.load(std::memory_order_acquire) == 0) {
      return 0;
    }
    std::size_t drained = 0;
    {
      const std::scoped_lock lock(mutex_);
      while (drained < max && count_ > 0) {
        out.push_back(take());
        ++drained;
      }
    }
    notify_drained(drained);
    return drained;
  }

  /// Like drain(), but hands each element straight to `sink(T&&)` inside
  /// the same single critical section, skipping the staging vector and
  /// its per-element move. The sink must not call back into this queue.
  template <typename Sink>
  std::size_t drain_apply(Sink&& sink, std::size_t max) {
    if (max == 0 || size_.load(std::memory_order_acquire) == 0) {
      return 0;
    }
    std::size_t drained = 0;
    {
      const std::scoped_lock lock(mutex_);
      while (drained < max && count_ > 0) {
        sink(take());
        ++drained;
      }
    }
    notify_drained(drained);
    return drained;
  }

  /// Blocking drain: waits until at least one item is available (or the
  /// queue is closed, or the deadline passes), then drains up to `max`
  /// items in the same critical section. Returns how many were drained.
  template <typename Rep, typename Period>
  std::size_t drain_for(std::vector<T>& out, std::size_t max,
                        std::chrono::duration<Rep, Period> timeout) {
    if (max == 0) {
      return 0;
    }
    std::size_t drained = 0;
    {
      std::unique_lock lock(mutex_);
      if (!not_empty_.wait_for(lock, timeout,
                               [this] { return closed_ || count_ > 0; })) {
        return 0;
      }
      while (drained < max && count_ > 0) {
        out.push_back(take());
        ++drained;
      }
    }
    notify_drained(drained);
    return drained;
  }

  /// Non-blocking pop. A lock-free empty check guards the mutex so that a
  /// consumer polling an empty queue cannot convoy producers.
  std::optional<T> try_pop() {
    if (size_.load(std::memory_order_acquire) == 0) {
      return std::nullopt;
    }
    std::optional<T> out;
    {
      const std::scoped_lock lock(mutex_);
      if (count_ == 0) {
        return std::nullopt;
      }
      out.emplace(take());
    }
    not_full_.notify_one();
    return out;
  }

  /// Wakes all waiters; subsequent pushes fail, pops drain then return null.
  void close() {
    {
      const std::scoped_lock lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    const std::scoped_lock lock(mutex_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    return size_.load(std::memory_order_acquire);
  }

  [[nodiscard]] bool empty() const { return size() == 0; }

 private:
  /// Appends to the ring. Caller holds mutex_ and has checked capacity.
  void put(T&& value) {
    slots_[tail_] = std::move(value);
    if (++tail_ == capacity_) {
      tail_ = 0;
    }
    ++count_;
    size_.store(count_, std::memory_order_release);
  }

  /// Removes the front of the ring. Caller holds mutex_ and has checked
  /// count_ > 0. The vacated slot keeps a moved-from T.
  T take() {
    T out = std::move(slots_[head_]);
    if (++head_ == capacity_) {
      head_ = 0;
    }
    --count_;
    size_.store(count_, std::memory_order_release);
    return out;
  }

  void notify_drained(std::size_t drained) {
    if (drained > 1) {
      not_full_.notify_all();
    } else if (drained == 1) {
      not_full_.notify_one();
    }
  }

  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::vector<T> slots_;  ///< fixed ring storage, allocated once
  std::size_t head_ = 0;  ///< index of the oldest element
  std::size_t tail_ = 0;  ///< index one past the newest element
  std::size_t count_ = 0;
  std::size_t capacity_;
  bool closed_ = false;
  std::atomic<std::size_t> size_{0};  ///< mirrors count_
};

}  // namespace xdaq
