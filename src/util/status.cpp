#include "util/status.hpp"

namespace xdaq {

std::string_view to_string(Errc c) noexcept {
  switch (c) {
    case Errc::Ok:
      return "Ok";
    case Errc::InvalidArgument:
      return "InvalidArgument";
    case Errc::NotFound:
      return "NotFound";
    case Errc::AlreadyExists:
      return "AlreadyExists";
    case Errc::ResourceExhausted:
      return "ResourceExhausted";
    case Errc::MalformedFrame:
      return "MalformedFrame";
    case Errc::Unroutable:
      return "Unroutable";
    case Errc::Timeout:
      return "Timeout";
    case Errc::ConnectionClosed:
      return "ConnectionClosed";
    case Errc::IoError:
      return "IoError";
    case Errc::Unsupported:
      return "Unsupported";
    case Errc::Internal:
      return "Internal";
    case Errc::FailedPrecondition:
      return "FailedPrecondition";
    case Errc::Unavailable:
      return "Unavailable";
    case Errc::PeerDown:
      return "PeerDown";
  }
  return "Unknown";
}

std::string Status::to_string() const {
  if (is_ok()) {
    return "Ok";
  }
  std::string out(xdaq::to_string(code()));
  if (!message().empty()) {
    out += ": ";
    out += message();
  }
  return out;
}

}  // namespace xdaq
