#include "util/logging.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

namespace xdaq::log_detail {

namespace {
std::atomic<int> g_threshold{static_cast<int>(LogLevel::Warn)};
std::mutex g_sink_mutex;

const char* level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::Trace:
      return "TRACE";
    case LogLevel::Debug:
      return "DEBUG";
    case LogLevel::Info:
      return "INFO ";
    case LogLevel::Warn:
      return "WARN ";
    case LogLevel::Error:
      return "ERROR";
    case LogLevel::Off:
      return "OFF  ";
  }
  return "?????";
}
}  // namespace

LogLevel threshold() noexcept {
  return static_cast<LogLevel>(g_threshold.load(std::memory_order_relaxed));
}

void set_threshold(LogLevel level) noexcept {
  g_threshold.store(static_cast<int>(level), std::memory_order_relaxed);
}

void emit(LogLevel level, std::string_view component, std::string_view text) {
  const auto now = std::chrono::system_clock::now().time_since_epoch();
  const auto us =
      std::chrono::duration_cast<std::chrono::microseconds>(now).count();
  const std::scoped_lock lock(g_sink_mutex);
  std::fprintf(stderr, "[%lld.%06lld] %s %.*s: %.*s\n",
               static_cast<long long>(us / 1000000),
               static_cast<long long>(us % 1000000), level_name(level),
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(text.size()), text.data());
}

}  // namespace xdaq::log_detail
