// ring.hpp - single-producer/single-consumer lock-free ring buffer.
//
// This is the building block of the simulated Myrinet fabric (gmsim): one
// ring per direction per channel, exactly one producer and one consumer
// thread. The design follows the classic bounded SPSC queue: head is only
// written by the consumer, tail only by the producer; each side keeps a
// cached copy of the other index to avoid cross-core traffic on every call
// (per Core Guidelines CP.100 territory — kept deliberately textbook).
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <new>
#include <optional>
#include <utility>

namespace xdaq {

/// Destructive-interference distance, pinned to 64 so the layout is stable
/// across compiler versions and -mtune settings (GCC warns when using
/// std::hardware_destructive_interference_size in headers for this reason).
inline constexpr std::size_t kCacheLine = 64;

/// Bounded lock-free SPSC queue. Capacity is rounded up to a power of two.
template <typename T>
class SpscRing {
 public:
  explicit SpscRing(std::size_t min_capacity) {
    std::size_t cap = 1;
    while (cap < min_capacity) {
      cap <<= 1;
    }
    mask_ = cap - 1;
    slots_ = std::make_unique<Slot[]>(cap);
  }

  ~SpscRing() {
    // Destroy any elements still in flight.
    std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    while (head != tail) {
      slot(head).destroy();
      ++head;
    }
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  [[nodiscard]] std::size_t capacity() const noexcept { return mask_ + 1; }

  /// Producer side. Returns false when full.
  template <typename U>
  bool try_push(U&& value) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_cache_ > mask_) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (tail - head_cache_ > mask_) {
        return false;
      }
    }
    slot(tail).construct(std::forward<U>(value));
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns nullopt when empty.
  std::optional<T> try_pop() {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_cache_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head == tail_cache_) {
        return std::nullopt;
      }
    }
    std::optional<T> out(std::move(slot(head).ref()));
    slot(head).destroy();
    head_.store(head + 1, std::memory_order_release);
    return out;
  }

  /// Consumer-side peek without removal (for poll-style transports).
  [[nodiscard]] bool empty() const noexcept {
    return head_.load(std::memory_order_acquire) ==
           tail_.load(std::memory_order_acquire);
  }

  /// Approximate size; exact only when called from a quiescent state.
  [[nodiscard]] std::size_t size_approx() const noexcept {
    return tail_.load(std::memory_order_acquire) -
           head_.load(std::memory_order_acquire);
  }

 private:
  struct Slot {
    alignas(T) unsigned char storage[sizeof(T)];

    template <typename U>
    void construct(U&& v) {
      ::new (static_cast<void*>(storage)) T(std::forward<U>(v));
    }
    T& ref() noexcept { return *std::launder(reinterpret_cast<T*>(storage)); }
    void destroy() noexcept { ref().~T(); }
  };

  Slot& slot(std::size_t i) noexcept { return slots_[i & mask_]; }

  std::unique_ptr<Slot[]> slots_;
  std::size_t mask_ = 0;

  alignas(kCacheLine) std::atomic<std::size_t> head_{0};  // consumer writes
  alignas(kCacheLine) std::size_t tail_cache_ = 0;        // consumer local
  alignas(kCacheLine) std::atomic<std::size_t> tail_{0};  // producer writes
  alignas(kCacheLine) std::size_t head_cache_ = 0;        // producer local
};

}  // namespace xdaq
