#include "util/clock.hpp"

namespace xdaq {

double calibrate_ticks_per_ns() {
  // One warmup pass, then measure over ~10 ms of wall time.
  for (int pass = 0; pass < 2; ++pass) {
    const std::uint64_t t0_ns = now_ns();
    const std::uint64_t t0_tk = rdtsc();
    // Busy spin: sleeping would let the measurement include wakeup jitter.
    while (now_ns() - t0_ns < 10'000'000) {
    }
    const std::uint64_t dt_tk = rdtsc() - t0_tk;
    const std::uint64_t dt_ns = now_ns() - t0_ns;
    if (pass == 1 && dt_ns > 0) {
      return static_cast<double>(dt_tk) / static_cast<double>(dt_ns);
    }
  }
  return 1.0;
}

std::vector<double> TimeProbe::deltas_ns() const {
  static const double ticks_per_ns = calibrate_ticks_per_ns();
  std::vector<double> out;
  out.reserve(stamps_.size() / 2);
  for (std::size_t i = 0; i + 1 < stamps_.size(); i += 2) {
    const auto dt = static_cast<double>(stamps_[i + 1] - stamps_[i]);
    out.push_back(dt / ticks_per_ns);
  }
  return out;
}

}  // namespace xdaq
