// random.hpp - deterministic fast RNG and payload generators for tests,
// benchmarks, and the synthetic detector sources in the daq module.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace xdaq {

/// xoshiro256** - fast, high-quality, deterministic across platforms.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept {
    // SplitMix64 seeding as recommended by the xoshiro authors.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9E3779B97F4A7C15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      s = z ^ (z >> 31);
    }
  }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound) noexcept {
    // Lemire's multiply-shift rejection-free approximation is fine here;
    // workloads do not need unbiased sampling at the last ulp.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  /// Uniform in [lo, hi] inclusive.
  std::uint64_t between(std::uint64_t lo, std::uint64_t hi) noexcept {
    return lo + below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  bool chance(double p) noexcept { return uniform() < p; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4]{};
};

/// Fills a payload with a deterministic pattern derived from a seed; used to
/// verify end-to-end payload integrity in transport tests.
inline std::vector<std::uint8_t> make_payload(std::size_t size,
                                              std::uint64_t seed) {
  std::vector<std::uint8_t> out(size);
  Rng rng(seed);
  for (auto& b : out) {
    b = static_cast<std::uint8_t>(rng.next());
  }
  return out;
}

}  // namespace xdaq
