// timer.hpp - I2O core timer facilities.
//
// Paper section 3.2: "Even interrupts or timer expirations trigger
// messages that are sent to device modules, if they have registered to
// listen to such an event." A dedicated thread keeps a deadline heap;
// expiries are delivered as private kXdaq frames (xfunction
// kXfnTimerExpired) through the normal inbound path, so devices see them
// exactly like any other message.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "i2o/types.hpp"

namespace xdaq::core {

/// xfunction codes in the kXdaq private organization.
inline constexpr std::uint16_t kXfnTimerExpired = 0x0001;
inline constexpr std::uint16_t kXfnEventNotify = 0x0002;

class TimerService {
 public:
  /// `fire` posts the expiry message for (target, timer_id); it runs on
  /// the timer thread and must be thread-safe and non-blocking.
  using FireFn = std::function<void(i2o::Tid target, std::uint32_t timer_id)>;

  explicit TimerService(FireFn fire);
  ~TimerService();

  TimerService(const TimerService&) = delete;
  TimerService& operator=(const TimerService&) = delete;

  /// Arms a timer for `target`. period == 0 -> one shot. Returns the
  /// timer id carried in the expiry message.
  std::uint32_t arm(i2o::Tid target, std::chrono::nanoseconds delay,
                    std::chrono::nanoseconds period = {});

  /// Cancels a timer; false if it already fired (one-shot) or is unknown.
  bool cancel(std::uint32_t timer_id);

  /// Currently armed timers.
  [[nodiscard]] std::size_t armed() const;

  /// Stops the thread; no expiries fire after this returns.
  void shutdown();

 private:
  struct Entry {
    std::uint64_t deadline_ns;
    std::uint32_t id;
    i2o::Tid target;
    std::uint64_t period_ns;
    bool operator>(const Entry& o) const noexcept {
      return deadline_ns > o.deadline_ns;
    }
  };

  void thread_main();
  void forget_armed(std::uint32_t id);

  /// Scratch for thread_main: every entry due at one wakeup, collected
  /// under a single lock hold and fired outside it (see timer.cpp).
  std::vector<Entry> due_;

  FireFn fire_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::vector<std::uint32_t> cancelled_;
  std::vector<std::uint32_t> armed_ids_;  ///< mirrors live heap entries
  std::uint32_t next_id_ = 1;
  bool stopping_ = false;
  std::thread thread_;
};

}  // namespace xdaq::core
