// remote_device.hpp - the OSM-style host view of a device.
//
// Paper section 3.1: the Operating System Module "presents the
// application programmer a common interface to communicate with an I2O
// device". RemoteDevice is that interface: a typed handle over a TiD
// (local or proxy) that exposes the standard executive/utility message
// classes as blocking calls through a Requester. It is pure convenience -
// everything it does is plain frames, so it works unchanged across every
// peer transport.
#pragma once

#include <chrono>
#include <string>

#include "core/requester.hpp"

namespace xdaq::core {

class RemoteDevice {
 public:
  /// `requester` must be installed on the calling side's executive and
  /// outlive this handle. `target` addresses the device (proxy TiDs make
  /// it remote); control operations go to `kernel` (the executive kernel
  /// managing the device - also possibly a proxy).
  RemoteDevice(Requester& requester, i2o::Tid target, i2o::Tid kernel,
               std::string instance_name,
               std::chrono::nanoseconds timeout = std::chrono::seconds(2))
      : requester_(&requester),
        target_(target),
        kernel_(kernel),
        instance_(std::move(instance_name)),
        timeout_(timeout) {}

  /// Resolves `instance_name` on the executive behind `kernel` and
  /// returns a handle to it. On the caller's executive, the resolved TiD
  /// is interned as a proxy when `kernel` itself is one.
  static Result<RemoteDevice> open(Requester& requester, i2o::Tid kernel,
                                   const std::string& instance_name,
                                   std::chrono::nanoseconds timeout =
                                       std::chrono::seconds(2));

  [[nodiscard]] i2o::Tid tid() const noexcept { return target_; }
  [[nodiscard]] const std::string& instance() const noexcept {
    return instance_;
  }

  // --- utility message class ------------------------------------------------

  /// UtilNop round trip (liveness).
  Status ping();
  /// UtilParamsGet.
  Result<i2o::ParamList> params();
  /// Convenience: one parameter by key ("" when missing).
  Result<std::string> param(const std::string& key);
  /// UtilParamsSet.
  Status set_params(const i2o::ParamList& params);
  /// Device lifecycle state as reported by UtilParamsGet.
  Result<std::string> state();

  // --- executive message class (via the managing kernel) ---------------------

  Status configure(const i2o::ParamList& params = {});
  Status enable();
  Status suspend();
  Status resume();
  Status halt();
  Status reset();

  // --- application traffic ---------------------------------------------------

  /// Sends a private frame and waits for the reply.
  Result<Requester::Reply> call(i2o::OrgId org, std::uint16_t xfunction,
                                std::span<const std::byte> payload = {});

 private:
  Status exec_op(i2o::Function fn);
  Result<Requester::Reply> util_call(i2o::Function fn,
                                     const i2o::ParamList& params);

  Requester* requester_;
  i2o::Tid target_;
  i2o::Tid kernel_;
  std::string instance_;
  std::chrono::nanoseconds timeout_;
};

}  // namespace xdaq::core
