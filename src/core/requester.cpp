#include "core/requester.hpp"

#include <cstring>
#include <thread>

#include "core/executive.hpp"
#include "obs/trace.hpp"

namespace xdaq::core {

namespace {
/// Resolves the InitiatorContext trace id for one call: 0 (untraced)
/// unless options.trace is set, in which case an explicit trace_id wins
/// over a freshly drawn one.
std::uint32_t trace_id_for(const CallOptions& options) {
  if (!options.trace) {
    return 0;
  }
  return options.trace_id != 0 ? options.trace_id : obs::next_trace_id();
}
}  // namespace

bool Requester::retryable(const Status& st, const CallOptions& options) {
  return options.retry_on_unavailable &&
         (st.code() == Errc::Unavailable || st.code() == Errc::PeerDown);
}

Result<Requester::Reply> Requester::call_standard(
    i2o::Tid target, i2o::Function fn, const i2o::ParamList& params,
    const CallOptions& options) {
  if (!attached()) {
    return {Errc::FailedPrecondition, "requester not installed"};
  }
  Result<Reply> out{Errc::Internal, "call_standard made no attempt"};
  for (std::uint32_t attempt = 0;; ++attempt) {
    std::uint32_t txn = 0;
    {
      const std::scoped_lock lock(mutex_);
      txn = next_txn_++;
    }
    const std::size_t payload_bytes = i2o::param_list_bytes(params);
    auto frame = executive().alloc_frame(payload_bytes, /*is_private=*/false);
    if (!frame.is_ok()) {
      return frame.status();
    }
    i2o::FrameHeader hdr;
    hdr.function = static_cast<std::uint8_t>(fn);
    hdr.target = target;
    hdr.initiator = tid();
    hdr.transaction_context = txn;
    hdr.initiator_context = trace_id_for(options);
    auto bytes = frame.value().bytes();
    if (Status st = i2o::encode_header(hdr, bytes); !st.is_ok()) {
      return st;
    }
    if (Status st = i2o::encode_param_list(
            params, bytes.subspan(i2o::kStdHeaderBytes));
        !st.is_ok()) {
      return st;
    }
    out = send_and_wait(std::move(frame).value(), txn, options.timeout);
    if (out.is_ok() || attempt >= options.retries ||
        !retryable(out.status(), options)) {
      return out;
    }
    std::this_thread::sleep_for(options.retry_delay);
  }
}

Result<Requester::Reply> Requester::call_private(
    i2o::Tid target, i2o::OrgId org, std::uint16_t xfunction,
    std::span<const std::byte> payload, const CallOptions& options) {
  Result<Reply> out{Errc::Internal, "call_private made no attempt"};
  for (std::uint32_t attempt = 0;; ++attempt) {
    std::uint32_t txn = 0;
    {
      const std::scoped_lock lock(mutex_);
      txn = next_txn_++;
    }
    auto frame = make_private_frame(target, org, xfunction, payload, txn,
                                    trace_id_for(options));
    if (!frame.is_ok()) {
      return frame.status();
    }
    out = send_and_wait(std::move(frame).value(), txn, options.timeout);
    if (out.is_ok() || attempt >= options.retries ||
        !retryable(out.status(), options)) {
      return out;
    }
    std::this_thread::sleep_for(options.retry_delay);
  }
}

Result<Requester::Reply> Requester::send_and_wait(
    mem::FrameRef frame, std::uint32_t txn,
    std::chrono::nanoseconds timeout) {
  {
    const std::scoped_lock lock(mutex_);
    pending_.emplace(txn, Pending{});
  }
  if (Status st = frame_send(std::move(frame)); !st.is_ok()) {
    const std::scoped_lock lock(mutex_);
    pending_.erase(txn);
    return st;
  }
  std::unique_lock lock(mutex_);
  const bool got = cv_.wait_for(lock, timeout, [this, txn] {
    const auto it = pending_.find(txn);
    return it != pending_.end() && it->second.done;
  });
  const auto it = pending_.find(txn);
  if (!got || it == pending_.end()) {
    pending_.erase(txn);
    return Status{Errc::Timeout, "no reply within timeout"};
  }
  Reply out = std::move(it->second.reply);
  pending_.erase(it);
  return out;
}

void Requester::on_reply(const MessageContext& ctx) {
  const std::scoped_lock lock(mutex_);
  const auto it = pending_.find(ctx.header.transaction_context);
  if (it == pending_.end()) {
    return;  // late reply after timeout; drop
  }
  it->second.reply.header = ctx.header;
  it->second.reply.payload.assign(ctx.payload.begin(), ctx.payload.end());
  it->second.done = true;
  cv_.notify_all();
}

std::size_t Requester::outstanding() const {
  const std::scoped_lock lock(mutex_);
  return pending_.size();
}

}  // namespace xdaq::core
