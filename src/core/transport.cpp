#include "core/transport.hpp"

#include <algorithm>
#include <cstdlib>

#include "i2o/paramlist.hpp"

namespace xdaq::core {

std::string_view to_string(PeerState s) noexcept {
  switch (s) {
    case PeerState::Unknown:
      return "Unknown";
    case PeerState::Up:
      return "Up";
    case PeerState::Suspect:
      return "Suspect";
    case PeerState::Down:
      return "Down";
  }
  return "Unknown";
}

std::chrono::nanoseconds backoff_delay(const TransportConfig& cfg,
                                       std::uint32_t attempt,
                                       std::uint64_t jitter_word) noexcept {
  if (attempt == 0) {
    return std::chrono::nanoseconds(0);
  }
  // Capped exponential growth; the shift is bounded so a large attempt
  // count cannot overflow before the cap applies.
  const std::uint32_t shift = std::min<std::uint32_t>(attempt - 1, 32);
  const double base = static_cast<double>(cfg.backoff_base.count());
  const double cap = static_cast<double>(cfg.backoff_cap.count());
  double delay = base * static_cast<double>(std::uint64_t{1} << shift);
  delay = std::min(delay, cap);
  // Deterministic jitter in [1 - j, 1 + j] from the caller's RNG word, so
  // the schedule is reproducible under a seeded RNG.
  const double jitter = std::clamp(cfg.backoff_jitter, 0.0, 1.0);
  const double unit =
      static_cast<double>(jitter_word >> 11) * 0x1.0p-53;  // [0, 1)
  delay *= 1.0 - jitter + 2.0 * jitter * unit;
  delay = std::clamp(delay, 0.0, cap);
  return std::chrono::nanoseconds(static_cast<std::int64_t>(delay));
}

Status TransportDevice::set_transport_config(const TransportConfig& config) {
  if (transport_running()) {
    return {Errc::FailedPrecondition,
            "transport config is latched while the transport is up"};
  }
  transport_config_ = config;
  return Status::ok();
}

Status TransportDevice::transport_up() {
  if (transport_running_.exchange(true)) {
    return Status::ok();
  }
  Status st = on_transport_start();
  if (!st.is_ok()) {
    transport_running_.store(false);
  }
  return st;
}

void TransportDevice::transport_down() {
  if (!transport_running_.exchange(false)) {
    return;
  }
  on_transport_stop();
}

void TransportDevice::set_peer_state_sink(PeerStateSink sink) {
  const std::scoped_lock lock(sink_mutex_);
  peer_state_sink_ = std::move(sink);
}

void TransportDevice::notify_peer_state(i2o::NodeId node, PeerState from,
                                        PeerState to) {
  PeerStateSink sink;
  {
    const std::scoped_lock lock(sink_mutex_);
    sink = peer_state_sink_;  // copy: the sink may replace itself
  }
  if (sink) {
    sink(node, from, to);
  }
}

Status TransportDevice::parse_transport_params(const i2o::ParamList& params) {
  TransportConfig cfg = transport_config_;
  for (const auto& [key, value] : params) {
    const long long n = std::strtoll(value.c_str(), nullptr, 10);
    if (key == "heartbeat_ms") {
      cfg.heartbeat_interval = std::chrono::milliseconds(n);
    } else if (key == "missed_heartbeat_limit") {
      if (n <= 0) {
        return {Errc::InvalidArgument, "missed_heartbeat_limit must be >= 1"};
      }
      cfg.missed_heartbeat_limit = static_cast<std::uint32_t>(n);
    } else if (key == "backoff_base_ms") {
      cfg.backoff_base = std::chrono::milliseconds(n);
    } else if (key == "backoff_cap_ms") {
      cfg.backoff_cap = std::chrono::milliseconds(n);
    } else if (key == "pending_depth") {
      cfg.pending_depth = static_cast<std::size_t>(n);
    } else if (key == "send_retry_spins") {
      cfg.send_retry_spins = static_cast<std::size_t>(n);
    } else if (key == "credit_window") {
      cfg.credit_window = static_cast<std::uint32_t>(n);
    } else if (key == "admission_limit") {
      cfg.admission_limit = static_cast<std::size_t>(n);
    } else if (key == "tx_buffer_bytes") {
      cfg.tx_buffer_bytes = static_cast<std::size_t>(n);
    }
  }
  return set_transport_config(cfg);
}

}  // namespace xdaq::core
