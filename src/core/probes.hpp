// probes.hpp - whitebox instrumentation records (paper Table 1).
//
// The paper pinpoints framework overhead by placing lightweight time
// probes around each dispatch stage and reporting the median over 100,000
// calls. DispatchProbe mirrors that: when an executive has instrumentation
// enabled, every dispatched message appends one record of raw rdtsc stamps
// to a preallocated log; conversion and statistics happen offline.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace xdaq::core {

/// Raw tick stamps for one dispatched message. Stage boundaries follow
/// Table 1 of the paper.
struct DispatchProbe {
  std::uint64_t t_wire = 0;       ///< PT saw the wire event (set by PTs)
  std::uint64_t t_posted = 0;     ///< frame allocated+copied+posted (PT done)
  std::uint64_t t_demux = 0;      ///< dispatch table lookup started
  std::uint64_t t_upcall = 0;     ///< entering the user functor
  std::uint64_t t_app_done = 0;   ///< user functor returned
  std::uint64_t t_released = 0;   ///< frame released / postprocessing done
};

/// Fixed-capacity probe log; dropping is preferable to reallocation noise.
/// The cap is stored explicitly: reserve() is allowed to allocate MORE
/// than requested, so comparing against records_.capacity() would let the
/// log silently grow past its configured bound (and reallocate mid-run).
class ProbeLog {
 public:
  explicit ProbeLog(std::size_t capacity = 0) : cap_(capacity) {
    records_.reserve(capacity);
  }

  void set_capacity(std::size_t capacity) {
    cap_ = capacity;
    records_.clear();
    records_.shrink_to_fit();
    records_.reserve(capacity);
  }

  bool append(const DispatchProbe& p) {
    if (records_.size() >= cap_) {
      ++dropped_;
      return false;
    }
    records_.push_back(p);
    return true;
  }

  void clear() noexcept { records_.clear(); dropped_ = 0; }

  [[nodiscard]] std::size_t capacity() const noexcept { return cap_; }
  [[nodiscard]] const std::vector<DispatchProbe>& records() const noexcept {
    return records_;
  }
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }

 private:
  std::size_t cap_ = 0;
  std::vector<DispatchProbe> records_;
  std::uint64_t dropped_ = 0;
};

}  // namespace xdaq::core
