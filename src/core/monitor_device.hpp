// monitor_device.hpp - the observability endpoint of one node.
//
// A registered device class (installable by name through ExecPluginLoad,
// like any application module) that answers private kXdaq functions with
// the node's serialized metrics snapshot and cross-peer hop trace. Because
// it is an ordinary device, a remote node reaches it through the normal
// proxy-TiD path: register the remote monitor's TiD, call_private through
// a Requester, and the reply crosses the peer transport like any other
// frame - no side channel, monitoring traffic is I2O traffic.
#pragma once

#include <string>

#include "core/device.hpp"

namespace xdaq::core {

/// Private function codes answered by MonitorDevice (OrgId::kXdaq).
/// 0x0001/0x0002 belong to the timer service (timer.hpp); the monitor
/// starts at 0x0010.
inline constexpr std::uint16_t kXfnObsSnapshot = 0x0010;
inline constexpr std::uint16_t kXfnObsTrace = 0x0011;

class MonitorDevice final : public Device {
 public:
  MonitorDevice() : Device("MonitorDevice") {}

  /// The parameter list a kXfnObsSnapshot reply carries: "node" and
  /// "name" first, then every counter/gauge/probe sample and flattened
  /// histogram from the executive's registry. Exposed so local callers
  /// (benches, tests) can skip the frame round trip.
  [[nodiscard]] i2o::ParamList snapshot_params() const;

  /// The full snapshot as a JSON object string (obs::MetricsSnapshot::
  /// to_json) - the dump hook benches write into their BENCH_*.json.
  [[nodiscard]] std::string snapshot_json() const;

  /// The parameter list a kXfnObsTrace reply carries: "hops" plus one
  /// "hop.<i>" entry per recorded hop, oldest first. `trace_id` 0 dumps
  /// the whole ring; nonzero filters to one request's journey.
  [[nodiscard]] i2o::ParamList trace_params(std::uint32_t trace_id) const;

 protected:
  void plugin() override;
};

}  // namespace xdaq::core
