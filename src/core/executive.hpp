// executive.hpp - the per-node I2O executive.
//
// Paper section 4: "Each processing node runs an executive program that
// routes all application generated messages according to their destination
// information to the software or hardware device modules that are
// registered with the executive. ... the loop of control remains in the
// executive framework. There exist multiple dispatch tables for all the
// device class instances, but the executive performs the dispatching.
// Furthermore the executive has control over all the memory that can be
// accessed by the registered modules."
//
// One Executive is one node (IOP). It owns:
//  * the memory pool every frame is drawn from,
//  * the address table (local devices and proxies for remote ones),
//  * N dispatch shards - each an inbound queue plus a seven-priority
//    round-robin scheduler driven by its own loop of control, with every
//    device owned by exactly one shard (per-TiD affinity) and idle shards
//    stealing whole per-device backlogs from backlogged siblings,
//  * the core timer service and the handler watchdog,
//  * routes from node ids to peer-transport devices.
// At the default N=1 this is exactly the paper's single loop of control.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "cluster/resolver.hpp"
#include "core/address_table.hpp"
#include "core/device.hpp"
#include "core/probes.hpp"
#include "core/scheduler.hpp"
#include "core/timer.hpp"
#include "i2o/frame.hpp"
#include "i2o/paramlist.hpp"
#include "i2o/types.hpp"
#include "mem/pool.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/logging.hpp"
#include "util/queue.hpp"
#include "util/status.hpp"

namespace xdaq::core {

class TransportDevice;
enum class PeerState : std::uint8_t;

struct ExecutiveConfig {
  i2o::NodeId node_id = 0;
  std::string name = "exec";
  enum class PoolKind { Simple, Table } pool_kind = PoolKind::Table;
  std::size_t inbound_capacity = 8192;
  /// Dispatch shards: N independent loop-of-control threads, each owning
  /// a disjoint set of devices (actor-style per-TiD affinity - a device's
  /// handlers never run concurrently, so existing handlers stay
  /// lock-free). 1 = the paper's single loop, behaviorally identical to
  /// the pre-sharding executive: no shard mutex, no stealing, no worker
  /// threads.
  std::size_t shards = 1;
  /// Work stealing (multi-shard only): an idle shard raids the most
  /// backlogged sibling once its pending count reaches steal_threshold,
  /// taking whole per-device backlogs (affinity moves with the backlog)
  /// up to steal_max messages per raid.
  std::size_t steal_threshold = 32;
  std::size_t steal_max = 256;
  /// Back the TablePool's block arenas with 2 MiB huge pages
  /// (MAP_HUGETLB), falling back to ordinary heap blocks when the system
  /// has none. Observable as "pool.hugepages" in the metrics snapshot.
  bool pool_hugepages = false;
  /// Hot-path batching. `dispatch_batch` is the maximum number of
  /// messages dispatched per pump before transports are rescanned; the
  /// default of 1 keeps the seed's one-message-per-pump semantics
  /// (observable through ExecutiveStats: dispatched == dispatch_batches).
  /// Raising it amortizes the pump's fixed cost over a burst while the
  /// scheduler keeps priority order and round-robin fairness intact.
  std::size_t dispatch_batch = 1;
  /// Maximum inbound frames drained into the scheduler per pump; the
  /// drain takes the queue mutex once per burst, not once per frame.
  std::size_t inbound_drain = 256;
  /// Watchdog: a handler running longer than this quarantines its device
  /// (0 disables the watchdog thread entirely). Granularity is the
  /// dispatch batch: the deadline is armed once per batch, so with the
  /// default dispatch_batch of 1 it bounds each message exactly as
  /// before, while a larger batch is bounded as a whole (a stuck handler
  /// is still caught within handler_deadline of its batch starting).
  std::chrono::nanoseconds handler_deadline{0};
  /// Whitebox instrumentation (paper Table 1): record per-dispatch probes.
  bool instrument = false;
  std::size_t probe_capacity = 0;
  /// Dispatch trace: keep the last N dispatched message summaries for
  /// diagnostics (0 disables tracing).
  std::size_t trace_capacity = 0;
  /// Observability layer (metrics registry histograms + cross-peer hop
  /// tracing). Effective only when obs::enabled() also holds - the
  /// XDAQ_OBS_OFF environment switch wins. Counters always run; this
  /// gates the per-dispatch timing histogram and the hop trace ring.
  bool observe = true;
  /// Capacity of the cross-peer hop trace ring (frames carrying a nonzero
  /// InitiatorContext trace id record one hop per stage). 0 disables.
  std::size_t hop_trace_capacity = 256;
};

/// One dispatched message, as kept by the trace ring.
struct TraceEntry {
  std::uint64_t t_ns = 0;  ///< wall time at dispatch
  i2o::Tid target = i2o::kNullTid;
  i2o::Tid initiator = i2o::kNullTid;
  std::uint8_t function = 0;
  std::uint16_t xfunction = 0;
  std::uint16_t organization = 0;
  bool is_reply = false;
  enum class Outcome : std::uint8_t {
    Delivered,      ///< handler ran (or reply consumed)
    FailReplied,    ///< rejected with a failure report
    Dropped,        ///< no target / quarantined
  } outcome = Outcome::Delivered;
};

struct ExecutiveStats {
  std::uint64_t posted = 0;            ///< frames entering the inbound queue
  std::uint64_t dispatched = 0;        ///< upcalls performed
  std::uint64_t sent_local = 0;        ///< frame_send resolved locally
  std::uint64_t sent_remote = 0;       ///< frame_send routed through a PT
  std::uint64_t failed_replies = 0;    ///< fail replies generated
  std::uint64_t dropped_unknown = 0;   ///< no address entry for target
  std::uint64_t dropped_malformed = 0; ///< wire frames failing validation
  std::uint64_t default_handled = 0;   ///< no handler bound; default path
  std::uint64_t rejected_disabled = 0; ///< private msg to non-enabled device
  std::uint64_t watchdog_trips = 0;    ///< devices quarantined
  std::uint64_t timer_fires = 0;
  std::uint64_t peer_state_changes = 0;  ///< liveness transitions observed
  /// FAIL replies synthesized for in-flight requests to a Down peer.
  std::uint64_t synth_unavailable = 0;
  /// Pumps that dispatched at least one message. dispatched /
  /// dispatch_batches is the realized batch size; with the default
  /// dispatch_batch of 1 the two counters advance in lockstep.
  std::uint64_t dispatch_batches = 0;
  std::uint64_t steals = 0;        ///< successful work-stealing raids
  std::uint64_t stolen_items = 0;  ///< messages moved by those raids
};

/// Registry-backed executive counters (formerly a private struct of bare
/// atomics): every field is a named obs::Counter owned by the node's
/// MetricsRegistry, so the same relaxed-atomic value feeds stats(), the
/// MonitorDevice snapshot, and the JSON dump. Every counter in this
/// struct uses add() (fetch_add): with N dispatch shards plus transport
/// and timer threads there is no single-writer counter left here - the
/// cheaper lossy bump() is reserved for the per-shard counters each
/// shard thread owns exclusively.
struct ExecCounters {
  obs::Counter* posted = nullptr;
  obs::Counter* dispatched = nullptr;
  obs::Counter* sent_local = nullptr;
  obs::Counter* sent_remote = nullptr;
  obs::Counter* failed_replies = nullptr;
  obs::Counter* dropped_unknown = nullptr;
  obs::Counter* dropped_malformed = nullptr;
  obs::Counter* default_handled = nullptr;
  obs::Counter* rejected_disabled = nullptr;
  obs::Counter* watchdog_trips = nullptr;
  obs::Counter* timer_fires = nullptr;
  obs::Counter* peer_state_changes = nullptr;
  obs::Counter* synth_unavailable = nullptr;
  obs::Counter* dispatch_batches = nullptr;
  obs::Counter* steals = nullptr;
  obs::Counter* stolen_items = nullptr;

  void wire(obs::MetricsRegistry& registry);

  [[nodiscard]] ExecutiveStats snapshot() const {
    ExecutiveStats s;
    s.posted = posted->value();
    s.dispatched = dispatched->value();
    s.sent_local = sent_local->value();
    s.sent_remote = sent_remote->value();
    s.failed_replies = failed_replies->value();
    s.dropped_unknown = dropped_unknown->value();
    s.dropped_malformed = dropped_malformed->value();
    s.default_handled = default_handled->value();
    s.rejected_disabled = rejected_disabled->value();
    s.watchdog_trips = watchdog_trips->value();
    s.timer_fires = timer_fires->value();
    s.peer_state_changes = peer_state_changes->value();
    s.synth_unavailable = synth_unavailable->value();
    s.dispatch_batches = dispatch_batches->value();
    s.steals = steals->value();
    s.stolen_items = stolen_items->value();
    return s;
  }
};

class Executive {
 public:
  explicit Executive(ExecutiveConfig config = {});
  ~Executive();

  Executive(const Executive&) = delete;
  Executive& operator=(const Executive&) = delete;

  // --- identity -----------------------------------------------------------

  [[nodiscard]] i2o::NodeId node_id() const noexcept {
    return config_.node_id;
  }
  [[nodiscard]] const std::string& name() const noexcept {
    return config_.name;
  }
  /// The kernel's TiD (always i2o::kExecutiveTid).
  [[nodiscard]] i2o::Tid kernel_tid() const noexcept {
    return i2o::kExecutiveTid;
  }

  // --- device lifecycle ----------------------------------------------------

  /// Installs a device: assigns a TiD, registers the instance name, calls
  /// plugin(). Equivalent of the paper's runtime download + registration.
  Result<i2o::Tid> install(std::unique_ptr<Device> device,
                           const std::string& instance_name,
                           const i2o::ParamList& params = {});

  /// Instantiates `class_name` from the DeviceFactory and installs it.
  Result<i2o::Tid> install_class(const std::string& class_name,
                                 const std::string& instance_name,
                                 const i2o::ParamList& params = {});

  /// Direct state operations (setup/teardown convenience; the runtime path
  /// is ExecConfigure/ExecEnable/... messages).
  Status configure(i2o::Tid tid, const i2o::ParamList& params);
  Status enable(i2o::Tid tid);
  Status suspend(i2o::Tid tid);
  Status resume(i2o::Tid tid);
  Status halt(i2o::Tid tid);
  Status reset(i2o::Tid tid);

  /// Enables every non-kernel device (test/bench convenience).
  Status enable_all();

  /// Local device lookup; nullptr for proxies/unknown TiDs.
  [[nodiscard]] Device* device(i2o::Tid tid) const;
  /// Instance-name lookup (covers named proxies too).
  Result<i2o::Tid> tid_of(const std::string& instance_name) const;

  // --- remote addressing / transports --------------------------------------

  /// The cluster resolver: route table + proxy resolution facade. All
  /// remote addressing goes through resolver().resolve()/resolve_via();
  /// routes (direct and relay) live in resolver().routes().
  [[nodiscard]] cluster::Resolver& resolver() noexcept { return *resolver_; }
  [[nodiscard]] const cluster::Resolver& resolver() const noexcept {
    return *resolver_;
  }

  /// Routes frames for `node` through the PT with `pt_tid` (which must be
  /// an installed TransportDevice). Shorthand for a validated
  /// resolver().routes().set_direct().
  Status set_route(i2o::NodeId node, i2o::Tid pt_tid);

  /// Deprecated: use resolver().resolve(node, remote_tid, name). Thin
  /// shim kept for one release.
  Result<i2o::Tid> register_remote(i2o::NodeId node, i2o::Tid remote_tid,
                                   const std::string& name = {});

  /// Deprecated: use resolver().resolve_via(node, remote_tid, pt_tid,
  /// name) to pin a proxy to a specific peer transport (paper section 4:
  /// "we can use multiple transports to send and receive in parallel").
  /// Thin shim kept for one release.
  Result<i2o::Tid> register_remote_via(i2o::NodeId node,
                                       i2o::Tid remote_tid, i2o::Tid pt_tid,
                                       const std::string& name = {});

  [[nodiscard]] AddressTable& address_table() noexcept { return table_; }

  // --- peer liveness --------------------------------------------------------

  /// Connectivity of `node` as reported by its routed peer transport
  /// (PeerState::Unknown when no route exists or the transport does not
  /// track liveness). The executive registers itself as every installed
  /// transport's peer-state sink: transitions are counted in stats, and a
  /// transition to Down synthesizes I2O FAIL replies for every in-flight
  /// request to that node so waiters unblock immediately instead of
  /// burning their full timeout.
  [[nodiscard]] PeerState peer_state(i2o::NodeId node) const;

  /// Additional peer-state observers (the gossip failure detector, test
  /// probes). Invoked after the executive's own handling, on the
  /// transport's thread; listeners must be thread-safe and quick.
  using PeerStateListener =
      std::function<void(i2o::NodeId, PeerState, PeerState)>;
  void add_peer_state_listener(PeerStateListener listener);

  // --- cluster fabric -------------------------------------------------------

  /// Receiver for inbound gossip payloads (kXdaq/kXfnGossip frames
  /// addressed to the kernel). The cluster harness wires the node's
  /// GossipDevice here. Runs on the kernel's dispatch shard.
  void set_gossip_sink(std::function<void(std::span<const std::byte>)> sink);

  // --- messaging ------------------------------------------------------------

  [[nodiscard]] mem::Pool& pool() noexcept { return *pool_; }

  /// Allocates a frame sized for `payload_bytes` (word-padded).
  Result<mem::FrameRef> alloc_frame(std::size_t payload_bytes,
                                    bool is_private);

  /// Thread-safe entry into the messaging instance's inbound queue.
  Status post(mem::FrameRef frame);

  /// Batched post: validates every frame, then enqueues the burst under
  /// ONE inbound-queue lock acquisition. Returns the number accepted;
  /// malformed frames are dropped (counted in dropped_malformed) and
  /// frames rejected by backpressure are released back to the pool.
  std::size_t post_batch(std::span<mem::FrameRef> frames);

  /// frameSend: routes by the frame's target TiD - into the local inbound
  /// queue or through a peer transport ("The caller never needs to know,
  /// if a device is really local or if the call is redirected").
  Status frame_send(mem::FrameRef frame);

  /// Peer transports deliver received wire frames here: validates, copies
  /// into a pool frame, interns a proxy for the remote initiator, rewrites
  /// the initiator field, and posts. `t_wire` is the PT's rdtsc stamp at
  /// wire-event time (0 when not instrumenting).
  Status deliver_from_wire(i2o::NodeId src_node, i2o::Tid pt_tid,
                           std::span<const std::byte> wire,
                           std::uint64_t t_wire = 0);

  /// Zero-copy delivery: the frame is already in pooled memory (a block
  /// the transport read into, or a view cut from one). Validates and
  /// rewrites the initiator field *in place*, then posts the same
  /// reference - no allocation, no memcpy. Cross-pool references are fine:
  /// the dispatch release path recycles through the owning pool.
  Status deliver_from_wire(i2o::NodeId src_node, i2o::Tid pt_tid,
                           mem::FrameRef frame, std::uint64_t t_wire = 0);

  // --- timers ----------------------------------------------------------------

  /// Arms a core timer; expiry arrives at `target` as a private kXdaq
  /// frame and surfaces through Device::on_timer.
  std::uint32_t arm_timer(i2o::Tid target, std::chrono::nanoseconds delay,
                          std::chrono::nanoseconds period = {});
  bool cancel_timer(std::uint32_t timer_id);

  // --- event notifications --------------------------------------------------

  /// Registers `listener` for events of `source` whose code ANDs with
  /// `mask` (UtilEventRegister semantics; mask 0 unregisters). `listener`
  /// may be a proxy, so remote subscriptions work transparently.
  Status register_event_listener(i2o::Tid source, i2o::Tid listener,
                                 std::uint32_t mask);

  /// Sends an event notification from `source` to every matching
  /// listener. Returns the number notified. Used by Device::post_event.
  std::size_t post_event(i2o::Tid source, std::uint32_t event_code,
                         std::span<const std::byte> payload);

  [[nodiscard]] std::size_t event_listener_count(i2o::Tid source) const;

  // --- loop of control ---------------------------------------------------------

  /// Runs shard 0's dispatch loop on the calling thread until stop(),
  /// spawning worker threads for shards 1..N-1.
  void run();
  /// Spawns all N dispatch threads.
  void start();
  /// Stops every dispatch loop (joins threads spawned by start()/run()).
  void stop();
  /// Single non-blocking pump of EVERY shard on the calling thread:
  /// drain inbound, poll PTs (shard 0), dispatch at most `dispatch_batch`
  /// messages per shard (one with the default config). Returns true if
  /// any message was dispatched.
  bool run_once();
  [[nodiscard]] bool running() const noexcept {
    return running_.load(std::memory_order_relaxed);
  }
  /// True while the CALLING thread is inside one of this executive's
  /// dispatch batches (thread-local, so N shard threads track it
  /// independently). Transports use this to cork small handler-issued
  /// sends until the end-of-batch transport_flush(); sends from other
  /// threads see false and go to the wire inline. (A send that races the
  /// tail of a batch corks at worst until the transport's own
  /// maintenance backstop.)
  [[nodiscard]] bool dispatch_active() const noexcept;

  // --- sharding ------------------------------------------------------------

  /// Number of dispatch shards (>= 1).
  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }
  /// Index of the shard that owns `tid` (0 for unknown TiDs; proxies and
  /// the kernel live on shard 0).
  [[nodiscard]] std::size_t shard_of(i2o::Tid tid) const noexcept {
    return shard_of_[tid & i2o::kMaxTid].load(std::memory_order_relaxed);
  }
  /// Dispatch backlog of the shard owning `tid`: frames waiting in its
  /// inbound queue plus frames already scheduled. Lock-free (relaxed
  /// atomics on both legs), so transports consult it per inbound frame as
  /// the bounded-admission signal without touching shard mutexes.
  [[nodiscard]] std::size_t dispatch_backlog(i2o::Tid tid) const noexcept {
    const Shard& s = *shards_[shards_.size() == 1 ? 0 : shard_of(tid)];
    return s.inbound.size() + s.scheduler.pending();
  }

  // --- diagnostics ---------------------------------------------------------------

  [[nodiscard]] ExecutiveStats stats() const;
  /// Shard 0's scheduler (the only one at N=1; kept for existing callers).
  [[nodiscard]] const Scheduler& scheduler() const noexcept;
  /// Scheduler of one shard. Precondition: idx < shard_count().
  [[nodiscard]] const Scheduler& scheduler(std::size_t idx) const noexcept;
  [[nodiscard]] ProbeLog& probe_log() noexcept { return probes_; }
  void set_instrument(bool on) noexcept {
    instrument_.store(on, std::memory_order_relaxed);
  }

  /// Snapshot of the dispatch trace, oldest first (empty when tracing is
  /// disabled). Thread-safe.
  [[nodiscard]] std::vector<TraceEntry> recent_dispatches() const;

  // --- observability -------------------------------------------------------

  /// This node's metrics registry: executive counters, the dispatch-cost
  /// histogram, and snapshot probes for scheduler depths, pool stats and
  /// every installed transport. MonitorDevice serializes it over I2O.
  [[nodiscard]] obs::MetricsRegistry& metrics() noexcept { return metrics_; }
  [[nodiscard]] const obs::MetricsRegistry& metrics() const noexcept {
    return metrics_;
  }
  /// Cross-peer hop trace ring; nullptr when tracing is disabled
  /// (observe=false, hop_trace_capacity=0, or XDAQ_OBS_OFF).
  [[nodiscard]] const obs::TraceRing* hop_trace() const noexcept {
    return hops_.get();
  }
  /// True when the optional observability paths (hop tracing, dispatch
  /// timing histogram) were armed at construction.
  [[nodiscard]] bool observing() const noexcept { return obs_on_; }

 private:
  /// The device occupying TiD 1. Exec-class messages addressed to it are
  /// handled by the owning Executive.
  class KernelDevice final : public Device {
   public:
    KernelDevice() : Device("Executive") {}
  };

  /// One dispatch shard: an inbound queue, a scheduler, and the loop
  /// state the seed executive kept as flat members. At N=1 the single
  /// shard is touched exactly like the seed (no mutex on any path); with
  /// N>1 `mutex` serializes scheduler access between the owning loop
  /// thread and thieving siblings.
  struct Shard {
    explicit Shard(std::size_t inbound_capacity)
        : inbound(inbound_capacity) {}

    BoundedQueue<ScheduledItem> inbound;
    /// Guards scheduler + active_tid (multi-shard only). Never held
    /// while a handler runs or while blocking on the inbound queue.
    std::mutex mutex;
    Scheduler scheduler;
    /// TiD being dispatched right now (written/read under mutex): a
    /// thief never steals the in-flight device, which both preserves
    /// the never-concurrent affinity invariant and hands the thief a
    /// happens-before edge on all per-device state.
    i2o::Tid active_tid = i2o::kNullTid;

    // Loop-thread-local scratch (only its owning thread touches these).
    std::vector<ScheduledItem> drain_buf;
    std::vector<mem::BlockHeader*> release_batch;
    std::size_t idle_pumps = 0;
    std::uint32_t dispatch_sample = 0;
    std::vector<ScheduledItem> steal_items;
    std::vector<i2o::Tid> steal_tids;
    std::vector<i2o::Tid> steal_quarantined;

    /// Per-shard counters ("exec.shard<i>.*", multi-shard only): owned
    /// exclusively by this shard's loop thread, so the lossy
    /// single-writer bump() stays exact.
    obs::Counter* dispatched = nullptr;
    obs::Counter* batches = nullptr;
    obs::Counter* steals = nullptr;

    // Watchdog bracket: what this shard's loop thread is doing.
    std::atomic<std::uint64_t> handler_start_ns{0};
    std::atomic<std::uint16_t> handler_tid{i2o::kNullTid};
    std::atomic<bool> handler_overrun{false};

    std::thread thread;  ///< worker loop (shards 1..N-1; also 0 via start())
  };

  // Dispatch pipeline.
  bool pump(std::size_t idx, bool allow_block);
  /// Delivers one scheduled message on shard `sh`'s loop thread (or a
  /// thief dispatching `sh == thief` for a stolen batch). Takes the item
  /// by reference and moves the frame out of it - the dispatch loop
  /// reuses one scratch item across a whole batch instead of moving
  /// ~100 bytes per message.
  void dispatch(ScheduledItem& item, Shard& sh);
  /// Raids the most backlogged sibling when `thief` has nothing to do;
  /// returns the number of stolen messages dispatched.
  std::size_t try_steal(Shard& thief);
  /// Drops the scheduled backlog of `tid` on its home shard (locking it
  /// when multi-shard). Returns how many messages were discarded.
  std::size_t discard_scheduled(i2o::Tid tid);
  [[nodiscard]] Shard& shard_for(i2o::Tid tid) noexcept {
    return *shards_[shards_.size() == 1 ? 0 : shard_of(tid)];
  }
  void start_worker_shards();
  void join_worker_shards();
  void deliver_standard(Device& dev, const MessageContext& ctx);
  void handle_util(Device& dev, const MessageContext& ctx);
  void handle_exec(const MessageContext& ctx);
  void send_fail_reply(const MessageContext& ctx, std::string_view reason);
  Status send_param_reply(const MessageContext& ctx,
                          const i2o::ParamList& params, bool failed = false);

  // Exec-message implementations (kernel-targeted).
  i2o::ParamList exec_status() const;
  Status exec_apply(const i2o::ParamList& params, i2o::Function fn);
  Status exec_plugin_load(const i2o::ParamList& params);
  Status exec_systab_set(const i2o::ParamList& params);

  Status apply_state_op(Device& dev, i2o::Function fn);

  Result<TransportDevice*> transport_for(i2o::Tid pt_tid) const;
  void watchdog_main(std::chrono::nanoseconds deadline);

  // Relay path (store-and-forward through intermediate nodes).
  /// Sends a frame whose proxy has no direct transport: wraps it in a
  /// kXfnRelay envelope and pushes it to the relay next hop.
  Status relay_send(mem::FrameRef frame, const AddressEntry& proxy,
                    const i2o::FrameHeader& hdr);
  /// Kernel handler for inbound envelopes: delivers locally when this is
  /// the destination, otherwise decrements the TTL and forwards.
  void handle_relay(const MessageContext& ctx);
  /// Validates + posts a relayed inner frame, interning the initiator
  /// proxy through the resolver (so replies route back via relay).
  Status deliver_relayed(i2o::NodeId src_node,
                         std::span<const std::byte> wire);
  /// Pushes an encoded envelope to the hop that reaches `dst`.
  Status send_envelope(i2o::NodeId dst, mem::FrameRef envelope);
  /// Retries queued envelopes whose next hop was unavailable (shard 0).
  void drain_relay_queue();
  /// Best-effort FAIL synthesis for an envelope dropped from the bounded
  /// relay retry queue: instead of vanishing silently, the inner
  /// request's initiator receives a ResourceExhausted FAIL relayed back
  /// (the reply envelope impersonates the unreachable destination so the
  /// origin's in-flight bookkeeping settles exactly as a real relayed
  /// reply would). Bumps cluster.relay.retry_drops.
  void fail_relayed_envelope(const mem::FrameRef& envelope);

  // Peer liveness plumbing (sink runs on transport threads).
  void on_peer_state_change(i2o::NodeId node, PeerState from, PeerState to);
  void record_inflight(i2o::NodeId node, const i2o::FrameHeader& hdr);
  void resolve_inflight(i2o::NodeId node, const i2o::FrameHeader& reply);
  /// Synthesizes a FAIL reply for every recorded in-flight request to
  /// `node` and posts them locally.
  void fail_inflight_to(i2o::NodeId node);

  ExecutiveConfig config_;
  Logger log_;
  /// Declared before the devices map: transport probes registered at
  /// install time capture device pointers, and counters are read by
  /// stats() until the very end.
  obs::MetricsRegistry metrics_;
  std::unique_ptr<obs::TraceRing> hops_;
  bool obs_on_ = false;
  /// Per-dispatch cost in rdtsc ticks ("exec.dispatch_ticks"); nullptr
  /// when observability is off so the hot path skips both tick reads.
  /// Sampled 1-in-64 (dispatch-thread-only counter) to keep the rdtsc
  /// pair off the common path.
  obs::Histogram* dispatch_ticks_ = nullptr;
  std::uint32_t dispatch_sample_ = 0;
  std::unique_ptr<mem::Pool> pool_;
  AddressTable table_;
  /// The dispatch shards (unique_ptr: Shard holds a mutex and atomics,
  /// so it is neither movable nor copyable). Sized once in the
  /// constructor; never resized.
  std::vector<std::unique_ptr<Shard>> shards_;
  /// TiD -> owning shard index, assigned round-robin at install() time
  /// and read lock-free on every routing decision. Slot 0 covers unknown
  /// TiDs and proxies (kernel-adjacent traffic stays on shard 0).
  std::array<std::atomic<std::uint8_t>, i2o::kMaxTid + 1> shard_of_{};
  std::size_t next_shard_ = 0;  ///< round-robin cursor (devices_mutex_)

  /// Remote addressing: route table + resolution facade. Constructed
  /// after table_ (its intern callback captures the table).
  std::unique_ptr<cluster::Resolver> resolver_;

  mutable std::mutex devices_mutex_;
  std::map<i2o::Tid, std::unique_ptr<Device>> devices_;
  std::map<std::string, i2o::Tid> names_;

  /// Guarded separately from devices_mutex_: the dispatch loop scans the
  /// polling list every iteration and must not contend with senders doing
  /// device lookups. Guards transport_pts_ (every installed transport,
  /// for the end-of-batch flush) as well as the polling subset.
  mutable std::mutex polling_mutex_;
  std::vector<TransportDevice*> polling_pts_;
  std::vector<TransportDevice*> transport_pts_;

  /// Event subscriptions: source TiD -> (listener TiD, mask).
  struct EventListener {
    i2o::Tid listener;
    std::uint32_t mask;
  };
  mutable std::mutex events_mutex_;
  std::map<i2o::Tid, std::vector<EventListener>> event_listeners_;

  std::unique_ptr<TimerService> timers_;

  /// Requests sent through a peer transport that still await a reply,
  /// kept so a peer death can fail them immediately. Bounded per node;
  /// overflow drops the oldest record (those requests fall back to their
  /// caller's timeout).
  mutable std::mutex inflight_mutex_;
  std::map<i2o::NodeId, std::vector<i2o::FrameHeader>> inflight_;

  /// Peer-state listener fan-out beyond the executive's own handling.
  mutable std::mutex listeners_mutex_;
  std::vector<PeerStateListener> peer_listeners_;

  /// Inbound-gossip sink (kernel kXfnGossip handler forwards here).
  mutable std::mutex gossip_mutex_;
  std::function<void(std::span<const std::byte>)> gossip_sink_;

  /// Bounded queue of relay envelopes whose next hop was not sendable at
  /// forward time; shard 0 retries them each pump. The relaxed flag keeps
  /// the empty-queue check off the pump's lock.
  struct PendingRelay {
    mem::FrameRef frame;
    std::uint32_t attempts = 0;
  };
  std::mutex relay_mutex_;
  std::vector<PendingRelay> relay_retry_;
  std::atomic<bool> relay_pending_{false};

  /// cluster.relay.* counters (wired in the constructor).
  obs::Counter* relay_origin_ = nullptr;     ///< envelopes created here
  obs::Counter* relay_forwarded_ = nullptr;  ///< envelopes passed through
  obs::Counter* relay_delivered_ = nullptr;  ///< envelopes unwrapped here
  obs::Counter* relay_dropped_ttl_ = nullptr;
  obs::Counter* relay_dropped_noroute_ = nullptr;
  obs::Counter* relay_dropped_queue_ = nullptr;
  obs::Counter* relay_requeued_ = nullptr;
  /// Retry-queue drops that synthesized a FAIL back to the initiator.
  obs::Counter* relay_retry_drops_ = nullptr;

  std::atomic<bool> running_{false};
  std::atomic<bool> instrument_{false};
  std::thread loop_thread_;
  std::mutex workers_mutex_;  ///< serializes worker-thread spawn/join

  // Watchdog: one thread scans every shard's handler bracket.
  /// True iff a watchdog thread exists (handler_deadline > 0); when false
  /// the dispatch loops skip the per-message clock reads of the bracket.
  bool watchdog_enabled_ = false;
  std::atomic<bool> watchdog_stop_{false};
  std::thread watchdog_thread_;

  void trace(const i2o::FrameHeader& hdr, TraceEntry::Outcome outcome);
  /// Records one cross-peer hop for frames carrying a trace id (no-op
  /// for the 0 id every untraced frame carries).
  void record_hop(const i2o::FrameHeader& hdr, obs::Hop hop) {
    if (hops_ != nullptr && hdr.initiator_context != 0) {
      record_hop_slow(hdr, hop);
    }
  }
  void record_hop_slow(const i2o::FrameHeader& hdr, obs::Hop hop);

  ExecCounters stats_;
  /// ProbeLog is not thread-safe; with N shards appending probes the
  /// (cold, instrument-only) append path takes this mutex.
  std::mutex probes_mutex_;
  ProbeLog probes_;

  /// Fixed ring of recent dispatches (mutex-guarded; the trace is a
  /// diagnostic path, not a hot one... but entries are written by the
  /// dispatch thread only, so the lock is uncontended in practice).
  mutable std::mutex trace_mutex_;
  std::vector<TraceEntry> trace_ring_;
  std::size_t trace_next_ = 0;
  std::uint64_t trace_total_ = 0;
};

}  // namespace xdaq::core
