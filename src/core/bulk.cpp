#include "core/bulk.hpp"

#include <atomic>
#include <cstring>

#include "core/executive.hpp"
#include "i2o/wire.hpp"

namespace xdaq::core {

namespace {

std::uint32_t next_chain_id() {
  static std::atomic<std::uint32_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

Status send_one(Device& dev, i2o::Tid target, i2o::OrgId org,
                std::uint16_t xfunction, std::uint8_t flags,
                std::span<const std::byte> head,
                std::span<const std::byte> body,
                std::uint32_t transaction_context) {
  const std::size_t payload_bytes = head.size() + body.size();
  auto frame = dev.executive().alloc_frame(payload_bytes,
                                           /*is_private=*/true);
  if (!frame.is_ok()) {
    return frame.status();
  }
  i2o::FrameHeader hdr;
  hdr.function = static_cast<std::uint8_t>(i2o::Function::Private);
  hdr.organization = static_cast<std::uint16_t>(org);
  hdr.xfunction = xfunction;
  hdr.target = target;
  hdr.initiator = dev.tid();
  hdr.flags = flags;
  hdr.transaction_context = transaction_context;
  auto bytes = frame.value().bytes();
  if (Status st = i2o::encode_header(hdr, bytes); !st.is_ok()) {
    return st;
  }
  auto payload = bytes.subspan(i2o::kPrivateHeaderBytes);
  if (!head.empty()) {
    std::memcpy(payload.data(), head.data(), head.size());
  }
  if (!body.empty()) {
    std::memcpy(payload.data() + head.size(), body.data(), body.size());
  }
  return dev.executive().frame_send(std::move(frame).value());
}

}  // namespace

Status bulk_send(Device& dev, i2o::Tid target, i2o::OrgId org,
                 std::uint16_t xfunction, std::span<const std::byte> data,
                 std::size_t max_fragment_bytes,
                 std::uint32_t transaction_context) {
  if (!dev.attached()) {
    return {Errc::FailedPrecondition, "device not installed"};
  }
  if (max_fragment_bytes == 0 ||
      max_fragment_bytes + i2o::kChainHeaderBytes > i2o::kMaxPayloadBytes) {
    return {Errc::InvalidArgument, "fragment size out of range"};
  }
  // Always use the chain format, even for a single fragment: the chain
  // header carries the exact byte count, which the padded frame payload
  // cannot (frames round up to 32-bit words).
  const std::uint32_t chain_id = next_chain_id();
  const auto sizes = i2o::chain_fragment_sizes(data.size(),
                                               max_fragment_bytes);
  std::size_t offset = 0;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    i2o::ChainHeader ch;
    ch.chain_id = chain_id;
    ch.index = static_cast<std::uint16_t>(i);
    ch.total = static_cast<std::uint16_t>(sizes.size());
    ch.total_bytes = static_cast<std::uint32_t>(data.size());
    ch.offset = static_cast<std::uint32_t>(offset);
    std::byte head[i2o::kChainHeaderBytes];
    i2o::encode_chain_header(ch, head);
    if (Status st = send_one(dev, target, org, xfunction,
                             i2o::kFlagChained, head,
                             data.subspan(offset, sizes[i]),
                             transaction_context);
        !st.is_ok()) {
      return st;  // partial chain times out / is aborted at the receiver
    }
    offset += sizes[i];
  }
  return Status::ok();
}

Result<std::optional<std::vector<std::byte>>> BulkReceiver::feed(
    const MessageContext& ctx) {
  if ((ctx.header.flags & i2o::kFlagChained) == 0) {
    // Plain message from a non-bulk sender: complete immediately (length
    // is the padded frame payload).
    return std::optional<std::vector<std::byte>>(
        std::vector<std::byte>(ctx.payload.begin(), ctx.payload.end()));
  }
  return reassembler_.feed(ctx.header.initiator, ctx.payload);
}

}  // namespace xdaq::core
