// factory.hpp - device-class registry ("dynamic download").
//
// Paper section 3.2/4: "The procedure for a given message can be specified
// dynamically by downloading a software module at runtime. ... the device
// class is compiled and the object code is downloaded dynamically into the
// running executives." In this reproduction the transport for object code
// is a link-time registry instead of a wire download: ExecPluginLoad
// frames name a registered class and the executive instantiates it. The
// registration macro gives device classes the same one-line opt-in an .so
// drop-in would.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/status.hpp"

namespace xdaq::core {

class Device;

class DeviceFactory {
 public:
  using Creator = std::function<std::unique_ptr<Device>()>;

  /// Process-wide registry (device classes register at static-init time).
  static DeviceFactory& instance();

  /// Registers a class; AlreadyExists if the name is taken.
  Status register_class(const std::string& class_name, Creator creator);

  /// Instantiates a registered class.
  Result<std::unique_ptr<Device>> create(const std::string& class_name) const;

  [[nodiscard]] bool has(const std::string& class_name) const;
  [[nodiscard]] std::vector<std::string> class_names() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, Creator> creators_;
};

/// Registers `ClassName` (a Device subclass with a default constructor)
/// under its own name at program start.
#define XDAQ_REGISTER_DEVICE(ClassName)                                    \
  namespace {                                                              \
  const bool xdaq_registered_##ClassName = [] {                            \
    (void)::xdaq::core::DeviceFactory::instance().register_class(          \
        #ClassName, [] { return std::make_unique<ClassName>(); });         \
    return true;                                                           \
  }();                                                                     \
  }

}  // namespace xdaq::core
