// device.hpp - the device-class model (the paper's i2oListener).
//
// Paper section 3.3: "an application is merely a new, private 'device'
// class. In addition to the standard messages it provides code for all the
// private messages that are defined for this application class." Every
// device implements the executive and utility interfaces (with default
// procedures supplied by the framework when no code is given) plus its own
// private function codes, registered in a per-device dispatch table
// ("Each device module ... is an active object that contains a local
// dispatcher").
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "i2o/frame.hpp"
#include "i2o/paramlist.hpp"
#include "i2o/types.hpp"
#include "mem/pool.hpp"
#include "util/status.hpp"

namespace xdaq::core {

class Executive;

/// Everything a handler needs about one delivered message. The FrameRef
/// keeps the underlying pool block alive; payload views into it (zero copy).
struct MessageContext {
  i2o::FrameHeader header;
  mem::FrameRef frame;
  std::span<const std::byte> payload;
};

/// I2O-style device lifecycle. Private (application) messages are only
/// delivered in the Enabled state; control messages work in any state.
enum class DeviceState : std::uint8_t {
  Loaded,      ///< installed, TiD assigned, not yet configured
  Configured,  ///< parameters applied
  Enabled,     ///< processing application messages
  Suspended,   ///< application traffic paused
  Halted,      ///< stopped; requires reset to Loaded
  Failed,      ///< quarantined (handler fault / watchdog trip)
};

std::string_view to_string(DeviceState s) noexcept;

/// Base class for every addressable module: applications, peer transports,
/// and the executive kernel itself ("they are all valid I2O devices").
class Device {
 public:
  using Handler = std::function<void(const MessageContext&)>;

  virtual ~Device() = default;

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  [[nodiscard]] const std::string& class_name() const noexcept {
    return class_name_;
  }
  [[nodiscard]] const std::string& instance_name() const noexcept {
    return instance_name_;
  }
  [[nodiscard]] i2o::Tid tid() const noexcept { return tid_; }
  /// Relaxed-atomic: read by control threads, the owning dispatch shard,
  /// and (after a steal) thieving shards; transitions are rare.
  [[nodiscard]] DeviceState state() const noexcept {
    return state_.load(std::memory_order_acquire);
  }
  [[nodiscard]] bool attached() const noexcept { return executive_ != nullptr; }

  /// The executive this device is installed in. Precondition: attached().
  [[nodiscard]] Executive& executive() const noexcept { return *executive_; }

 protected:
  explicit Device(std::string class_name)
      : class_name_(std::move(class_name)) {}

  // --- standard-interface hooks (defaults are the "default procedures") ---

  /// Called once after installation, when the TiD is known (the paper's
  /// plugin method "which allows us to register the downloaded object").
  virtual void plugin() {}

  /// ExecConfigure / initial parameters. Default accepts anything.
  virtual Status on_configure(const i2o::ParamList& params) {
    (void)params;
    return Status::ok();
  }
  virtual Status on_enable() { return Status::ok(); }
  virtual Status on_suspend() { return Status::ok(); }
  virtual Status on_resume() { return Status::ok(); }
  virtual Status on_halt() { return Status::ok(); }

  /// UtilParamsGet. Default exposes identity and state.
  virtual i2o::ParamList on_params_get();
  /// UtilParamsSet. Default accepts and ignores.
  virtual Status on_params_set(const i2o::ParamList& params) {
    (void)params;
    return Status::ok();
  }

  /// Replies (frames with kFlagReply) addressed to this device. Default
  /// drops them; request/reply helpers override this.
  virtual void on_reply(const MessageContext& ctx) { (void)ctx; }

  /// Core-timer expiry (armed via Executive::arm_timer). Default ignores.
  virtual void on_timer(std::uint32_t timer_id) { (void)timer_id; }

  /// Event notification from a device this one registered with
  /// (UtilEventRegister). `source` is the emitting device's TiD (a proxy
  /// when it lives on another node). Default ignores.
  virtual void on_event(i2o::Tid source, std::uint32_t event_code,
                        std::span<const std::byte> payload) {
    (void)source;
    (void)event_code;
    (void)payload;
  }

  /// Emits an event to every listener registered with this device whose
  /// mask matches `event_code` (paper section 3.2: "essentially every
  /// occurrence in the system is mapped to an I2O message ... sent to
  /// device modules, if they have registered to listen to such an
  /// event"). Returns the number of listeners notified.
  std::size_t post_event(std::uint32_t event_code,
                         std::span<const std::byte> payload = {});

  /// Sends a UtilEventRegister frame subscribing this device to events
  /// of `source` (local or proxy TiD) with the given mask; mask 0
  /// unsubscribes. Notifications arrive through on_event.
  Status subscribe_events(i2o::Tid source, std::uint32_t mask);

  // --- local dispatcher -------------------------------------------------

  /// Binds a private (org, xfunction) pair to a handler. Adding an entry
  /// is all that is needed to add an event: "it is not even necessary to
  /// register a new event with the executive framework. It is sufficient
  /// to add it to the device module."
  void bind(i2o::OrgId org, std::uint16_t xfunction, Handler handler);

  // --- messaging conveniences --------------------------------------------

  /// Allocates a private frame from the executive pool and fills header +
  /// payload. The header's initiator is this device. A non-zero
  /// initiator_context tags the frame with a cross-peer trace id (see
  /// obs/trace.hpp); replies propagate both contexts back.
  Result<mem::FrameRef> make_private_frame(
      i2o::Tid target, i2o::OrgId org, std::uint16_t xfunction,
      std::span<const std::byte> payload,
      std::uint32_t transaction_context = 0,
      std::uint32_t initiator_context = 0);

  /// frameSend: hands the frame to the executive for routing.
  Status frame_send(mem::FrameRef frame);

  /// frameReply: builds and sends the reply to `request` with `payload`.
  Status frame_reply(const MessageContext& request,
                     std::span<const std::byte> payload, bool failed = false);

 private:
  friend class Executive;

  void attach(Executive* executive, i2o::Tid tid, std::string instance_name) {
    executive_ = executive;
    tid_ = tid;
    instance_name_ = std::move(instance_name);
  }

  /// Executive-side delivery of a private, non-reply message: looks up the
  /// local dispatch table. Returns false when no handler is bound.
  bool dispatch_private(const MessageContext& ctx);

  void set_state(DeviceState s) noexcept {
    state_.store(s, std::memory_order_release);
  }

  /// Rebuilds the perfect-hash dispatch table from private_handlers_.
  void rebuild_dispatch_table();

  std::string class_name_;
  std::string instance_name_;
  Executive* executive_ = nullptr;
  i2o::Tid tid_ = i2o::kNullTid;
  std::atomic<DeviceState> state_{DeviceState::Loaded};

  /// Local dispatch table: (org << 16 | xfunction) -> handler. The map is
  /// the source of truth (stable Handler addresses); dispatch reads the
  /// dense table below.
  std::map<std::uint32_t, Handler> private_handlers_;
  /// Perfect-hash dispatch table: a power-of-two array indexed by
  /// (key * mult) >> shift, with the multiplier searched at bind() time
  /// until every bound key lands in its own slot. The dispatch hot path
  /// is then one multiply, one shift, one compare - no map walk, no
  /// probing - for EVERY bound xfunction, not just the hottest one.
  struct TableSlot {
    std::uint32_t key = 0;
    const Handler* handler = nullptr;
  };
  std::vector<TableSlot> dispatch_table_;
  std::uint32_t table_mult_ = 1;
  std::uint32_t table_shift_ = 32;
};

}  // namespace xdaq::core
