// requester.hpp - synchronous request/reply over I2O frames.
//
// The frame protocol is asynchronous: frameSend and, eventually, a reply
// frame matched by TransactionContext. Control sessions (the primary
// host's Tcl-driven configuration, RMI stubs) want a blocking call
// instead. Requester is an ordinary device that fabricates a transaction
// context per call, parks the calling thread on a condition variable, and
// is woken by its on_reply override.
//
// Must be called from a thread other than the executive's dispatch thread:
// a handler blocking on call() would be waiting for a reply that only the
// same dispatch loop could deliver.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "core/device.hpp"

namespace xdaq::core {

/// Behaviour of one blocking call. Replaces the bare timeout argument:
/// fault-tolerant callers also choose how transient unavailability
/// (Errc::Unavailable / Errc::PeerDown from a reconnecting transport)
/// is handled.
struct CallOptions {
  std::chrono::nanoseconds timeout = std::chrono::seconds(2);
  /// Additional attempts after a send that failed as Unavailable or
  /// PeerDown (only consulted when retry_on_unavailable is set).
  std::uint32_t retries = 0;
  /// Retry the send while the peer transport reconnects, sleeping
  /// retry_delay between attempts, instead of surfacing the error.
  bool retry_on_unavailable = false;
  std::chrono::nanoseconds retry_delay = std::chrono::milliseconds(20);
  /// Stamp the request with a cross-peer trace id (obs::next_trace_id()
  /// unless trace_id is set) carried in the frame's InitiatorContext.
  /// Every executive on the path records a hop into its trace ring, and
  /// make_reply_header copies the context so the reply is correlated too.
  bool trace = false;
  std::uint32_t trace_id = 0;
};

class Requester : public Device {
 public:
  Requester() : Device("Requester") {}

  /// A reply with its payload copied out of the pool frame (the frame is
  /// recycled as soon as dispatch finishes; the waiter is another thread).
  struct Reply {
    i2o::FrameHeader header;
    std::vector<std::byte> payload;
    [[nodiscard]] bool failed() const noexcept { return header.is_failed(); }

    /// Convenience for parameter-list replies.
    [[nodiscard]] Result<i2o::ParamList> params() const {
      return i2o::decode_param_list(payload);
    }
  };

  using CallOptions = core::CallOptions;

  /// Sends a standard-function frame (executive or utility class) with a
  /// parameter-list payload and waits for the reply.
  Result<Reply> call_standard(i2o::Tid target, i2o::Function fn,
                              const i2o::ParamList& params,
                              const CallOptions& options = {});

  /// Sends a private frame and waits for the reply.
  Result<Reply> call_private(i2o::Tid target, i2o::OrgId org,
                             std::uint16_t xfunction,
                             std::span<const std::byte> payload,
                             const CallOptions& options = {});

  /// Outstanding (unanswered) calls.
  [[nodiscard]] std::size_t outstanding() const;

 protected:
  void on_reply(const MessageContext& ctx) override;

 private:
  struct Pending {
    bool done = false;
    Reply reply;
  };

  Result<Reply> send_and_wait(mem::FrameRef frame, std::uint32_t txn,
                              std::chrono::nanoseconds timeout);
  /// True when `st` is a transient-unavailability code the caller asked
  /// to ride out.
  static bool retryable(const Status& st, const CallOptions& options);

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::map<std::uint32_t, Pending> pending_;
  std::uint32_t next_txn_ = 1;
};

}  // namespace xdaq::core
