#include "core/address_table.hpp"

namespace xdaq::core {

namespace {
std::uint64_t proxy_key(i2o::NodeId node, i2o::Tid tid,
                        i2o::Tid via) noexcept {
  return (static_cast<std::uint64_t>(node) << 32) |
         (static_cast<std::uint64_t>(tid) << 16) | via;
}
}  // namespace

Result<i2o::Tid> AddressTable::next_tid_locked() {
  if (!free_list_.empty()) {
    const i2o::Tid tid = free_list_.back();
    free_list_.pop_back();
    return tid;
  }
  if (next_ > i2o::kMaxTid) {
    return {Errc::ResourceExhausted, "12-bit TiD space exhausted"};
  }
  return next_++;
}

Result<i2o::Tid> AddressTable::allocate_local(Device* device) {
  if (device == nullptr) {
    return {Errc::InvalidArgument, "null device"};
  }
  const std::unique_lock lock(mutex_);
  auto tid = next_tid_locked();
  if (!tid.is_ok()) {
    return tid;
  }
  AddressEntry e;
  e.kind = AddressEntry::Kind::Local;
  e.local = device;
  entries_[tid.value()] = e;
  local_fast_[tid.value()].store(device, std::memory_order_release);
  return tid;
}

Result<i2o::Tid> AddressTable::intern_proxy(i2o::NodeId node,
                                            i2o::Tid remote_tid,
                                            i2o::Tid via_pt) {
  if (node == i2o::kNullNode || remote_tid == i2o::kNullTid) {
    return {Errc::InvalidArgument, "invalid proxy coordinates"};
  }
  const auto key = proxy_key(node, remote_tid, via_pt);
  // Fast path: the proxy already exists - with N dispatch shards each
  // interning the initiator of every delivered wire frame, this is the
  // case that runs per message, and shared locks let the shards overlap.
  {
    const std::shared_lock lock(mutex_);
    if (const auto it = proxy_index_.find(key); it != proxy_index_.end()) {
      return it->second;
    }
  }
  // Miss: re-check under the exclusive lock (another shard may have won
  // the race between our two lock holds), then insert.
  const std::unique_lock lock(mutex_);
  if (const auto it = proxy_index_.find(key); it != proxy_index_.end()) {
    return it->second;
  }
  auto tid = next_tid_locked();
  if (!tid.is_ok()) {
    return tid;
  }
  AddressEntry e;
  e.kind = AddressEntry::Kind::Proxy;
  e.node = node;
  e.remote_tid = remote_tid;
  e.via_pt = via_pt;
  entries_[tid.value()] = e;
  proxy_index_[key] = tid.value();
  return tid;
}

Result<AddressEntry> AddressTable::lookup(i2o::Tid tid) const {
  const std::shared_lock lock(mutex_);
  const auto it = entries_.find(tid);
  if (it == entries_.end()) {
    return {Errc::NotFound, "no address entry for TiD"};
  }
  return it->second;
}

std::optional<i2o::Tid> AddressTable::find_proxy(i2o::NodeId node,
                                                 i2o::Tid remote_tid,
                                                 i2o::Tid via_pt) const {
  const std::shared_lock lock(mutex_);
  const auto it = proxy_index_.find(proxy_key(node, remote_tid, via_pt));
  if (it == proxy_index_.end()) {
    return std::nullopt;
  }
  return it->second;
}

Status AddressTable::release(i2o::Tid tid) {
  const std::unique_lock lock(mutex_);
  const auto it = entries_.find(tid);
  if (it == entries_.end()) {
    return {Errc::NotFound, "releasing unknown TiD"};
  }
  if (it->second.kind == AddressEntry::Kind::Proxy) {
    proxy_index_.erase(proxy_key(it->second.node, it->second.remote_tid,
                                 it->second.via_pt));
  } else {
    local_fast_[tid].store(nullptr, std::memory_order_release);
  }
  entries_.erase(it);
  free_list_.push_back(tid);
  return Status::ok();
}

std::size_t AddressTable::size() const {
  const std::shared_lock lock(mutex_);
  return entries_.size();
}

std::size_t AddressTable::proxy_count() const {
  const std::shared_lock lock(mutex_);
  return proxy_index_.size();
}

}  // namespace xdaq::core
