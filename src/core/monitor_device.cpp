#include "core/monitor_device.hpp"

#include <cstdlib>

#include "core/executive.hpp"
#include "core/factory.hpp"
#include "i2o/wire.hpp"
#include "obs/trace.hpp"

namespace xdaq::core {

namespace {

/// Serializes a parameter list into a reply payload buffer.
std::vector<std::byte> encode_params(const i2o::ParamList& params) {
  std::vector<std::byte> bytes(i2o::param_list_bytes(params));
  (void)i2o::encode_param_list(params, bytes);
  return bytes;
}

}  // namespace

i2o::ParamList MonitorDevice::snapshot_params() const {
  i2o::ParamList out;
  out.emplace_back("node", std::to_string(executive().node_id()));
  out.emplace_back("name", executive().name());
  out.emplace_back("shards", std::to_string(executive().shard_count()));
  const obs::MetricsSnapshot snap = executive().metrics().snapshot();
  for (auto& [key, value] : snap.to_params()) {
    out.emplace_back(key, value);
  }
  return out;
}

std::string MonitorDevice::snapshot_json() const {
  return executive().metrics().snapshot().to_json();
}

i2o::ParamList MonitorDevice::trace_params(std::uint32_t trace_id) const {
  i2o::ParamList out;
  const obs::TraceRing* ring = executive().hop_trace();
  if (ring == nullptr) {
    out.emplace_back("hops", "0");
    return out;
  }
  const std::vector<obs::HopRecord> hops =
      trace_id == 0 ? ring->snapshot() : ring->for_trace(trace_id);
  out.emplace_back("hops", std::to_string(hops.size()));
  std::size_t i = 0;
  for (const obs::HopRecord& h : hops) {
    out.emplace_back(
        "hop." + std::to_string(i++),
        std::to_string(h.trace_id) + " " + std::to_string(h.t_ns) + " " +
            std::to_string(h.node) + " " + std::to_string(h.target) + " " +
            std::string(obs::to_string(h.hop)) + " " +
            (h.is_reply ? "reply" : "request"));
  }
  return out;
}

void MonitorDevice::plugin() {
  bind(i2o::OrgId::kXdaq, kXfnObsSnapshot, [this](const MessageContext& ctx) {
    (void)frame_reply(ctx, encode_params(snapshot_params()));
  });
  bind(i2o::OrgId::kXdaq, kXfnObsTrace, [this](const MessageContext& ctx) {
    // Optional "trace" parameter narrows the dump to one trace id.
    std::uint32_t id = 0;
    if (auto params = i2o::decode_param_list(ctx.payload); params.is_ok()) {
      const std::string v = i2o::param_value(params.value(), "trace");
      if (!v.empty()) {
        id = static_cast<std::uint32_t>(
            std::strtoul(v.c_str(), nullptr, 10));
      }
    }
    (void)frame_reply(ctx, encode_params(trace_params(id)));
  });
}

XDAQ_REGISTER_DEVICE(MonitorDevice)

}  // namespace xdaq::core
