// transport.hpp - the peer-transport contract seen by the executive.
//
// Paper section 3.5/4: "The modules that take care of performing the
// actual communication are designed as Device Driver Modules themselves.
// They are just granted a special name: the Peer Transports." A transport
// is therefore a Device (it has a TiD, is configurable and controllable)
// with extra duties: pushing an encoded frame towards a remote node,
// being scanned in polling mode, and - since the fault-tolerance layer -
// tracking per-peer liveness.
//
// THE CONTRACT (one place, all of it):
//
//  * transport_send(dst, frame)  - push one encoded frame towards `dst`.
//    Called on the sender's thread; must be thread-safe. Returns
//    Errc::Unavailable when the peer's link is down and the frame was not
//    (and will not be) transmitted, Ok when it was handed to the wire OR
//    queued for retransmission after a reconnect (control frames only).
//  * transport_up() / transport_down() - the single lifecycle entry
//    point. Idempotent; up starts threads/binds ports via the
//    on_transport_start() hook, down stops them via on_transport_stop().
//    These replace the former ad-hoc start_transport / stop_transport /
//    poll_transport trio.
//  * transport_pump() - polling-mode scan, called from the executive's
//    loop of control ("In polling mode, the executive periodically scans
//    all registered PTs for pending data"). Forwards to the
//    on_transport_poll() hook.
//  * peer_state(node) - liveness as seen by this transport. Transports
//    without liveness tracking report PeerState::Unknown.
//  * set_peer_state_sink(sink) - the executive registers a sink at
//    install time; the transport MUST report every state transition
//    through notify_peer_state (never while holding locks the sink could
//    re-enter).
//  * disrupt_peer(node) - fault-injection/test hook: forcibly sever
//    connectivity to `node` as if the wire was cut. Default no-op.
//
// All tunables that used to live as loose per-transport fields (GM's
// send_retry_spins, ad-hoc timeouts) are collected in TransportConfig.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <span>
#include <string>
#include <string_view>

#include "core/device.hpp"
#include "i2o/types.hpp"
#include "mem/pool.hpp"
#include "obs/metrics.hpp"

namespace xdaq::core {

/// Per-peer connectivity as tracked by a transport's liveness layer.
///
/// Unknown -> Up          first contact (dial or inbound hello)
/// Up      -> Suspect     one missed heartbeat, or the connection dropped
/// Suspect -> Up          traffic resumed / reconnect succeeded
/// Suspect -> Down        missed-heartbeat limit reached or a redial failed
/// Down    -> Up          backoff reconnect succeeded
enum class PeerState : std::uint8_t { Unknown, Up, Suspect, Down };

std::string_view to_string(PeerState s) noexcept;

/// Common transport tuning knobs. One struct for every transport, instead
/// of per-transport loose fields.
struct TransportConfig {
  /// Idle-connection heartbeat period. A connection with no outbound
  /// traffic for this long emits a heartbeat frame; one quiet interval on
  /// the receive side marks the peer Suspect. 0 disables liveness
  /// tracking entirely (seed behaviour).
  std::chrono::nanoseconds heartbeat_interval = std::chrono::milliseconds(250);
  /// Quiet intervals (multiples of heartbeat_interval) after which a peer
  /// is declared Down and its connection dropped.
  std::uint32_t missed_heartbeat_limit = 3;
  /// Reconnect backoff: delay before redial attempt N is
  /// min(backoff_base * 2^(N-1), backoff_cap), jittered by
  /// +-backoff_jitter (fraction).
  std::chrono::nanoseconds backoff_base = std::chrono::milliseconds(10);
  std::chrono::nanoseconds backoff_cap = std::chrono::seconds(2);
  double backoff_jitter = 0.25;
  /// Per-peer bounded queue of control frames accepted while the link is
  /// being re-established; retransmitted in order after reconnect. Data
  /// frames are never queued - they fail with Errc::Unavailable.
  std::size_t pending_depth = 64;
  /// Bounded retry budget when send tokens are exhausted (GM semantics;
  /// formerly GmTransportConfig::send_retry_spins).
  std::size_t send_retry_spins = 1 << 20;
  /// Credit-based per-peer flow control: the transport-level
  /// generalization of the paper's GM send tokens. Each side starts a
  /// connection with this many credits; transmitting one DATA frame
  /// (control frames, heartbeats and the grants themselves are exempt)
  /// consumes one, and the receiver grants credits back on the wire as it
  /// consumes frames. A receiver that stops consuming - parked on an
  /// exhausted pool, or simply slow - stops granting, so the sender's
  /// writer stalls at zero credits with its queue intact instead of
  /// stuffing the kernel buffer of a consumer that cannot drain.
  /// 0 disables credit flow control (seed behaviour).
  std::uint32_t credit_window = 0;
  /// Bounded admission: when the dispatch backlog of an inbound frame's
  /// target shard reaches shed_threshold(admission_limit, priority), the
  /// frame is dropped at the transport edge (counted, never parsed
  /// further). Lower-priority traffic sheds first, so the seven I2O
  /// priorities become a QoS surface under overload. 0 disables rx
  /// shedding.
  std::size_t admission_limit = 0;
  /// Per-connection cap on queued outbound wire bytes. A send arriving
  /// while the unsent backlog is at or past
  /// shed_threshold(tx_buffer_bytes, priority) is refused with
  /// Errc::ResourceExhausted (the connection stays up - this is overload
  /// shedding, not failure; the backlog alone decides, so a frame is
  /// never refused for its own size). Bounds the memory one slow or
  /// stalled consumer can pin. 0 disables the cap (seed behaviour).
  std::size_t tx_buffer_bytes = 0;
};

/// Priority-aware shed threshold: priority p (0 = most urgent, 6 = least,
/// see i2o::kNumPriorities) is admitted until the relevant backlog reaches
/// limit * (7 - p) / 7. Under overload the backlog settles between the
/// data and control thresholds: lower-priority traffic is shed while
/// control traffic still flows. Pure - tests assert the ladder directly.
[[nodiscard]] constexpr std::size_t shed_threshold(std::size_t limit,
                                                   unsigned priority) noexcept {
  const auto np = static_cast<unsigned>(i2o::kNumPriorities);
  const unsigned p = priority < np ? priority : np - 1;
  return limit * (np - p) / np;
}

/// The redial delay before attempt `attempt` (1-based): capped exponential
/// backoff with deterministic jitter derived from `jitter_word` (pass an
/// RNG draw). Pure - unit tests assert the schedule directly.
[[nodiscard]] std::chrono::nanoseconds backoff_delay(
    const TransportConfig& cfg, std::uint32_t attempt,
    std::uint64_t jitter_word) noexcept;

class TransportDevice : public Device {
 public:
  /// Paper section 4: "In polling mode, the executive periodically scans
  /// all registered PTs for pending data. In task mode each PT has its own
  /// thread of control."
  enum class Mode { Polling, Task };

  /// Peer liveness transition callback: (node, from, to). Invoked on
  /// transport-internal threads; implementations must be thread-safe and
  /// must not call back into the transport under their own locks.
  using PeerStateSink =
      std::function<void(i2o::NodeId, PeerState, PeerState)>;

  [[nodiscard]] Mode mode() const noexcept { return mode_; }

  [[nodiscard]] const TransportConfig& transport_config() const noexcept {
    return transport_config_;
  }
  /// Replaces the tuning knobs. Rejected once the transport is up (the
  /// liveness threads latch intervals at start).
  Status set_transport_config(const TransportConfig& config);

  /// Pushes one fully encoded frame (target already rewritten to the
  /// remote TiD) towards `dst`. Called on the sender's thread; must be
  /// thread-safe.
  virtual Status transport_send(i2o::NodeId dst,
                                std::span<const std::byte> frame) = 0;

  /// Zero-copy variant: the frame arrives as a live pooled reference the
  /// transport may hold (and transmit from in place) until the bytes are
  /// on the wire. Transports that can gather directly from pooled memory
  /// override this; the default degrades to the span path, which copies.
  /// Same thread-safety and return contract as transport_send.
  virtual Status transport_send_frame(i2o::NodeId dst, mem::FrameRef frame) {
    return transport_send(dst, frame.bytes());
  }

  /// Starts the transport (threads, listeners). Idempotent.
  Status transport_up();
  /// Stops the transport and joins its threads. Idempotent.
  void transport_down();
  /// Polling-mode scan; called from the executive loop. No-op unless the
  /// transport implements on_transport_poll().
  void transport_pump() { on_transport_poll(); }

  /// End-of-batch drain; the executive calls this once per pump, after
  /// the dispatch batch. A transport may cork small sends issued by
  /// handlers while `Executive::dispatch_active()` is true (a per-thread
  /// mark, so it is true on every dispatch shard) and put them on the
  /// wire here, so a batch of replies shares one gathered syscall
  /// instead of paying one per frame. With a multi-shard executive any
  /// shard's end-of-batch may issue the flush - the executive serializes
  /// the calls, but a send corked on one shard can be drained by
  /// another's flush, so cork state must be thread-safe. No-op unless
  /// on_transport_flush() is overridden.
  void transport_flush() { on_transport_flush(); }

  [[nodiscard]] bool transport_running() const noexcept {
    return transport_running_.load(std::memory_order_relaxed);
  }

  /// Liveness of `node` as seen by this transport. Transports without
  /// liveness tracking report Unknown for everything.
  [[nodiscard]] virtual PeerState peer_state(i2o::NodeId node) const {
    (void)node;
    return PeerState::Unknown;
  }

  /// Registers the (single) liveness observer. The executive installs its
  /// own sink when the transport is installed; replacing it is allowed.
  void set_peer_state_sink(PeerStateSink sink);

  /// Fault-injection hook: forcibly sever connectivity to `node`, as if
  /// the cable was pulled. The transport reacts exactly as it would to a
  /// real failure (detection, reconnect). Default: no-op.
  virtual void disrupt_peer(i2o::NodeId node) { (void)node; }

  /// Appends this transport's counters to a metrics snapshot, each named
  /// "<prefix>.<counter>". The executive registers one registry probe per
  /// installed transport, so every PT shows up in the node's MonitorDevice
  /// snapshot without keeping parallel counters. Called from whichever
  /// thread takes the snapshot: read only atomics or take your own locks.
  virtual void append_metrics(const std::string& prefix,
                              std::vector<obs::Sample>& out) const {
    (void)prefix;
    (void)out;
  }

 protected:
  TransportDevice(std::string class_name, Mode mode,
                  TransportConfig config = {})
      : Device(std::move(class_name)),
        mode_(mode),
        transport_config_(config) {}

  ~TransportDevice() override = default;

  // -- lifecycle hooks (the old virtual trio, now protected) --------------
  virtual Status on_transport_start() { return Status::ok(); }
  virtual void on_transport_stop() {}
  virtual void on_transport_poll() {}
  virtual void on_transport_flush() {}

  /// Reports a liveness transition through the registered sink. Call with
  /// no transport locks held: the sink (the executive) may synthesize and
  /// post failure frames from it.
  void notify_peer_state(i2o::NodeId node, PeerState from, PeerState to);

  /// Applies the common TransportConfig parameter names from a device
  /// parameter list (heartbeat_ms, missed_heartbeat_limit, backoff_base_ms,
  /// backoff_cap_ms, pending_depth, send_retry_spins, credit_window,
  /// admission_limit, tx_buffer_bytes); unknown keys are ignored so
  /// subclasses can layer their own.
  Status parse_transport_params(const i2o::ParamList& params);

 private:
  Mode mode_;
  TransportConfig transport_config_;
  std::atomic<bool> transport_running_{false};

  mutable std::mutex sink_mutex_;
  PeerStateSink peer_state_sink_;
};

}  // namespace xdaq::core
