// transport.hpp - the peer-transport contract seen by the executive.
//
// Paper section 3.5/4: "The modules that take care of performing the
// actual communication are designed as Device Driver Modules themselves.
// They are just granted a special name: the Peer Transports." A transport
// is therefore a Device (it has a TiD, is configurable and controllable)
// with two extra duties: pushing an encoded frame towards a remote node,
// and - in polling mode - being scanned by the executive's loop of
// control. Concrete transports (loopback, simulated Myrinet/GM, TCP) live
// in src/pt.
#pragma once

#include <span>
#include <string>

#include "core/device.hpp"
#include "i2o/types.hpp"

namespace xdaq::core {

class TransportDevice : public Device {
 public:
  /// Paper section 4: "In polling mode, the executive periodically scans
  /// all registered PTs for pending data. In task mode each PT has its own
  /// thread of control."
  enum class Mode { Polling, Task };

  [[nodiscard]] Mode mode() const noexcept { return mode_; }

  /// Pushes one fully encoded frame (target already rewritten to the
  /// remote TiD) towards `dst`. Called on the sender's thread; must be
  /// thread-safe.
  virtual Status transport_send(i2o::NodeId dst,
                                std::span<const std::byte> frame) = 0;

  /// Polling mode: drain pending wire traffic, delivering through
  /// Executive::deliver_from_wire. Called from the executive loop.
  virtual void poll_transport() {}

  /// Task mode: start/stop the transport's own thread of control.
  virtual Status start_transport() { return Status::ok(); }
  virtual void stop_transport() {}

 protected:
  TransportDevice(std::string class_name, Mode mode)
      : Device(std::move(class_name)), mode_(mode) {}

 private:
  Mode mode_;
};

}  // namespace xdaq::core
