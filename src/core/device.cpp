#include "core/device.hpp"

#include <bit>
#include <cstring>

#include "core/executive.hpp"
#include "i2o/wire.hpp"

namespace xdaq::core {

std::string_view to_string(DeviceState s) noexcept {
  switch (s) {
    case DeviceState::Loaded:
      return "Loaded";
    case DeviceState::Configured:
      return "Configured";
    case DeviceState::Enabled:
      return "Enabled";
    case DeviceState::Suspended:
      return "Suspended";
    case DeviceState::Halted:
      return "Halted";
    case DeviceState::Failed:
      return "Failed";
  }
  return "?";
}

i2o::ParamList Device::on_params_get() {
  return {
      {"class", class_name_},
      {"instance", instance_name_},
      {"tid", std::to_string(tid_)},
      {"state", std::string(to_string(state()))},
  };
}

void Device::bind(i2o::OrgId org, std::uint16_t xfunction, Handler handler) {
  const std::uint32_t key =
      (static_cast<std::uint32_t>(org) << 16) | xfunction;
  private_handlers_[key] = std::move(handler);
  rebuild_dispatch_table();
}

void Device::rebuild_dispatch_table() {
  // Search for a multiplicative perfect hash over the bound keys:
  // slot = (key * mult) >> shift into a power-of-two table. The key set
  // is tiny (a handful of xfunctions per device) and fixed after setup,
  // so a short search over odd multipliers - doubling the table when a
  // size yields no collision-free multiplier - always terminates fast.
  // Handler addresses come from the map (stable across rehash/insert).
  const std::size_t n = private_handlers_.size();
  std::size_t size = 4;
  while (size < n * 2) {
    size *= 2;
  }
  for (;; size *= 2) {
    const auto shift =
        static_cast<std::uint32_t>(32 - std::countr_zero(size));
    std::uint32_t seed = 0x9E3779B1u;
    for (int attempt = 0; attempt < 32; ++attempt) {
      const std::uint32_t mult = seed | 1u;
      seed = seed * 0x85EBCA77u + 0xC2B2AE3Du;
      std::vector<TableSlot> table(size);
      bool ok = true;
      for (const auto& [key, handler] : private_handlers_) {
        TableSlot& slot = table[(key * mult) >> shift];
        if (slot.handler != nullptr) {
          ok = false;
          break;
        }
        slot.key = key;
        slot.handler = &handler;
      }
      if (ok) {
        dispatch_table_ = std::move(table);
        table_mult_ = mult;
        table_shift_ = shift;
        return;
      }
    }
  }
}

bool Device::dispatch_private(const MessageContext& ctx) {
  if (dispatch_table_.empty()) {
    return false;  // nothing bound
  }
  const std::uint32_t key =
      (static_cast<std::uint32_t>(ctx.header.organization) << 16) |
      ctx.header.xfunction;
  // Perfect hash: one multiply+shift lands every bound key in its own
  // slot; a single compare rejects unbound keys that alias into one.
  const TableSlot& slot = dispatch_table_[(key * table_mult_) >> table_shift_];
  if (slot.handler == nullptr || slot.key != key) {
    return false;
  }
  (*slot.handler)(ctx);
  return true;
}

Result<mem::FrameRef> Device::make_private_frame(
    i2o::Tid target, i2o::OrgId org, std::uint16_t xfunction,
    std::span<const std::byte> payload, std::uint32_t transaction_context,
    std::uint32_t initiator_context) {
  if (!attached()) {
    return {Errc::FailedPrecondition, "device not installed in an executive"};
  }
  auto frame = executive_->alloc_frame(payload.size(), /*is_private=*/true);
  if (!frame.is_ok()) {
    return frame;
  }
  i2o::FrameHeader hdr;
  hdr.function = static_cast<std::uint8_t>(i2o::Function::Private);
  hdr.organization = static_cast<std::uint16_t>(org);
  hdr.xfunction = xfunction;
  hdr.target = target;
  hdr.initiator = tid_;
  hdr.transaction_context = transaction_context;
  hdr.initiator_context = initiator_context;
  auto bytes = frame.value().bytes();
  if (Status s = i2o::encode_header(hdr, bytes); !s.is_ok()) {
    return s;
  }
  if (!payload.empty()) {
    std::memcpy(bytes.data() + i2o::kPrivateHeaderBytes, payload.data(),
                payload.size());
  }
  return frame;
}

std::size_t Device::post_event(std::uint32_t event_code,
                               std::span<const std::byte> payload) {
  if (!attached()) {
    return 0;
  }
  return executive_->post_event(tid_, event_code, payload);
}

Status Device::subscribe_events(i2o::Tid source, std::uint32_t mask) {
  if (!attached()) {
    return {Errc::FailedPrecondition, "device not installed"};
  }
  const i2o::ParamList params{{"mask", std::to_string(mask)}};
  auto frame = executive_->alloc_frame(i2o::param_list_bytes(params),
                                       /*is_private=*/false);
  if (!frame.is_ok()) {
    return frame.status();
  }
  i2o::FrameHeader hdr;
  hdr.function =
      static_cast<std::uint8_t>(i2o::Function::UtilEventRegister);
  hdr.target = source;
  hdr.initiator = tid_;
  auto bytes = frame.value().bytes();
  if (Status st = i2o::encode_header(hdr, bytes); !st.is_ok()) {
    return st;
  }
  if (Status st = i2o::encode_param_list(
          params, bytes.subspan(i2o::kStdHeaderBytes));
      !st.is_ok()) {
    return st;
  }
  return executive_->frame_send(std::move(frame).value());
}

Status Device::frame_send(mem::FrameRef frame) {
  if (!attached()) {
    return {Errc::FailedPrecondition, "device not installed in an executive"};
  }
  return executive_->frame_send(std::move(frame));
}

Status Device::frame_reply(const MessageContext& request,
                           std::span<const std::byte> payload, bool failed) {
  if (!attached()) {
    return {Errc::FailedPrecondition, "device not installed in an executive"};
  }
  if (request.header.initiator == i2o::kNullTid) {
    return {Errc::Unroutable, "request carries no initiator to reply to"};
  }
  const i2o::FrameHeader reply_hdr =
      i2o::make_reply_header(request.header, failed);
  auto frame =
      executive_->alloc_frame(payload.size(), reply_hdr.is_private());
  if (!frame.is_ok()) {
    return frame.status();
  }
  auto bytes = frame.value().bytes();
  if (Status s = i2o::encode_header(reply_hdr, bytes); !s.is_ok()) {
    return s;
  }
  if (!payload.empty()) {
    std::memcpy(bytes.data() + reply_hdr.header_bytes(), payload.data(),
                payload.size());
  }
  return executive_->frame_send(std::move(frame).value());
}

}  // namespace xdaq::core
