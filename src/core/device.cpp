#include "core/device.hpp"

#include <cstring>

#include "core/executive.hpp"
#include "i2o/wire.hpp"

namespace xdaq::core {

std::string_view to_string(DeviceState s) noexcept {
  switch (s) {
    case DeviceState::Loaded:
      return "Loaded";
    case DeviceState::Configured:
      return "Configured";
    case DeviceState::Enabled:
      return "Enabled";
    case DeviceState::Suspended:
      return "Suspended";
    case DeviceState::Halted:
      return "Halted";
    case DeviceState::Failed:
      return "Failed";
  }
  return "?";
}

i2o::ParamList Device::on_params_get() {
  return {
      {"class", class_name_},
      {"instance", instance_name_},
      {"tid", std::to_string(tid_)},
      {"state", std::string(to_string(state_))},
  };
}

void Device::bind(i2o::OrgId org, std::uint16_t xfunction, Handler handler) {
  const std::uint32_t key =
      (static_cast<std::uint32_t>(org) << 16) | xfunction;
  private_handlers_[key] = std::move(handler);
  cached_handler_ = nullptr;
}

bool Device::dispatch_private(const MessageContext& ctx) {
  const std::uint32_t key =
      (static_cast<std::uint32_t>(ctx.header.organization) << 16) |
      ctx.header.xfunction;
  if (cached_handler_ != nullptr && cached_key_ == key) {
    (*cached_handler_)(ctx);
    return true;
  }
  const auto it = private_handlers_.find(key);
  if (it == private_handlers_.end()) {
    return false;
  }
  cached_key_ = key;
  cached_handler_ = &it->second;
  it->second(ctx);
  return true;
}

Result<mem::FrameRef> Device::make_private_frame(
    i2o::Tid target, i2o::OrgId org, std::uint16_t xfunction,
    std::span<const std::byte> payload, std::uint32_t transaction_context,
    std::uint32_t initiator_context) {
  if (!attached()) {
    return {Errc::FailedPrecondition, "device not installed in an executive"};
  }
  auto frame = executive_->alloc_frame(payload.size(), /*is_private=*/true);
  if (!frame.is_ok()) {
    return frame;
  }
  i2o::FrameHeader hdr;
  hdr.function = static_cast<std::uint8_t>(i2o::Function::Private);
  hdr.organization = static_cast<std::uint16_t>(org);
  hdr.xfunction = xfunction;
  hdr.target = target;
  hdr.initiator = tid_;
  hdr.transaction_context = transaction_context;
  hdr.initiator_context = initiator_context;
  auto bytes = frame.value().bytes();
  if (Status s = i2o::encode_header(hdr, bytes); !s.is_ok()) {
    return s;
  }
  if (!payload.empty()) {
    std::memcpy(bytes.data() + i2o::kPrivateHeaderBytes, payload.data(),
                payload.size());
  }
  return frame;
}

std::size_t Device::post_event(std::uint32_t event_code,
                               std::span<const std::byte> payload) {
  if (!attached()) {
    return 0;
  }
  return executive_->post_event(tid_, event_code, payload);
}

Status Device::subscribe_events(i2o::Tid source, std::uint32_t mask) {
  if (!attached()) {
    return {Errc::FailedPrecondition, "device not installed"};
  }
  const i2o::ParamList params{{"mask", std::to_string(mask)}};
  auto frame = executive_->alloc_frame(i2o::param_list_bytes(params),
                                       /*is_private=*/false);
  if (!frame.is_ok()) {
    return frame.status();
  }
  i2o::FrameHeader hdr;
  hdr.function =
      static_cast<std::uint8_t>(i2o::Function::UtilEventRegister);
  hdr.target = source;
  hdr.initiator = tid_;
  auto bytes = frame.value().bytes();
  if (Status st = i2o::encode_header(hdr, bytes); !st.is_ok()) {
    return st;
  }
  if (Status st = i2o::encode_param_list(
          params, bytes.subspan(i2o::kStdHeaderBytes));
      !st.is_ok()) {
    return st;
  }
  return executive_->frame_send(std::move(frame).value());
}

Status Device::frame_send(mem::FrameRef frame) {
  if (!attached()) {
    return {Errc::FailedPrecondition, "device not installed in an executive"};
  }
  return executive_->frame_send(std::move(frame));
}

Status Device::frame_reply(const MessageContext& request,
                           std::span<const std::byte> payload, bool failed) {
  if (!attached()) {
    return {Errc::FailedPrecondition, "device not installed in an executive"};
  }
  if (request.header.initiator == i2o::kNullTid) {
    return {Errc::Unroutable, "request carries no initiator to reply to"};
  }
  const i2o::FrameHeader reply_hdr =
      i2o::make_reply_header(request.header, failed);
  auto frame =
      executive_->alloc_frame(payload.size(), reply_hdr.is_private());
  if (!frame.is_ok()) {
    return frame.status();
  }
  auto bytes = frame.value().bytes();
  if (Status s = i2o::encode_header(reply_hdr, bytes); !s.is_ok()) {
    return s;
  }
  if (!payload.empty()) {
    std::memcpy(bytes.data() + reply_hdr.header_bytes(), payload.data(),
                payload.size());
  }
  return executive_->frame_send(std::move(frame).value());
}

}  // namespace xdaq::core
