#include "core/timer.hpp"

#include <algorithm>

#include "util/clock.hpp"

namespace xdaq::core {

TimerService::TimerService(FireFn fire)
    : fire_(std::move(fire)), thread_([this] { thread_main(); }) {}

TimerService::~TimerService() { shutdown(); }

std::uint32_t TimerService::arm(i2o::Tid target,
                                std::chrono::nanoseconds delay,
                                std::chrono::nanoseconds period) {
  const std::uint64_t deadline =
      now_ns() + static_cast<std::uint64_t>(std::max<std::int64_t>(
                     0, delay.count()));
  std::uint32_t id = 0;
  {
    const std::scoped_lock lock(mutex_);
    id = next_id_++;
    heap_.push(Entry{deadline, id, target,
                     static_cast<std::uint64_t>(
                         std::max<std::int64_t>(0, period.count()))});
    armed_ids_.push_back(id);
  }
  cv_.notify_one();
  return id;
}

bool TimerService::cancel(std::uint32_t timer_id) {
  const std::scoped_lock lock(mutex_);
  // Heap entries cannot be removed in place; mark the id and skip it when
  // it surfaces. armed_ids_ mirrors live entries so we can tell a pending
  // timer from one that already fired.
  if (std::find(cancelled_.begin(), cancelled_.end(), timer_id) !=
      cancelled_.end()) {
    return false;  // already cancelled
  }
  const bool pending = std::find(armed_ids_.begin(), armed_ids_.end(),
                                 timer_id) != armed_ids_.end();
  if (pending) {
    cancelled_.push_back(timer_id);
  }
  return pending;
}

std::size_t TimerService::armed() const {
  const std::scoped_lock lock(mutex_);
  return armed_ids_.size();
}

void TimerService::shutdown() {
  {
    const std::scoped_lock lock(mutex_);
    if (stopping_) {
      return;
    }
    stopping_ = true;
  }
  cv_.notify_one();
  if (thread_.joinable()) {
    thread_.join();
  }
}

void TimerService::thread_main() {
  std::unique_lock lock(mutex_);
  while (!stopping_) {
    if (heap_.empty()) {
      cv_.wait(lock, [this] { return stopping_ || !heap_.empty(); });
      continue;
    }
    const Entry top = heap_.top();
    const std::uint64_t now = now_ns();
    if (top.deadline_ns > now) {
      cv_.wait_for(lock,
                   std::chrono::nanoseconds(top.deadline_ns - now),
                   [this, &top] {
                     return stopping_ || heap_.empty() ||
                            heap_.top().deadline_ns < top.deadline_ns;
                   });
      continue;
    }
    // Batch: drain EVERY entry already due under this one lock hold, then
    // fire them all outside it. With sharded dispatch, expiries for
    // several targets routinely land on the same tick; cycling the lock
    // per expiry would serialize against arm()/cancel() once per timer.
    due_.clear();
    while (!heap_.empty() && heap_.top().deadline_ns <= now) {
      const Entry due = heap_.top();
      heap_.pop();
      const auto cancelled_it =
          std::find(cancelled_.begin(), cancelled_.end(), due.id);
      if (cancelled_it != cancelled_.end()) {
        cancelled_.erase(cancelled_it);
        forget_armed(due.id);
        continue;
      }
      if (due.period_ns > 0) {
        heap_.push(Entry{due.deadline_ns + due.period_ns, due.id, due.target,
                         due.period_ns});
      } else {
        forget_armed(due.id);
      }
      due_.push_back(due);
    }
    if (due_.empty()) {
      continue;  // everything that surfaced was cancelled
    }
    lock.unlock();
    for (const Entry& due : due_) {
      fire_(due.target, due.id);
    }
    lock.lock();
  }
}

void TimerService::forget_armed(std::uint32_t id) {
  armed_ids_.erase(std::remove(armed_ids_.begin(), armed_ids_.end(), id),
                   armed_ids_.end());
}

}  // namespace xdaq::core
