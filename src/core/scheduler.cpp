#include "core/scheduler.hpp"

#include <algorithm>

namespace xdaq::core {

void Scheduler::enqueue(int priority, ScheduledItem item) {
  const int p = std::clamp(priority, i2o::kHighestPriority,
                           i2o::kLowestPriority);
  Level& level = levels_[static_cast<std::size_t>(p)];
  auto& fifo = level.fifos[item.header.target];
  if (fifo.empty()) {
    level.rotation.push_back(item.header.target);
  }
  fifo.push_back(std::move(item));
  ++pending_;
}

std::optional<ScheduledItem> Scheduler::next() {
  for (std::size_t p = 0; p < levels_.size(); ++p) {
    Level& level = levels_[p];
    if (level.rotation.empty()) {
      continue;
    }
    const i2o::Tid tid = level.rotation.front();
    level.rotation.pop_front();
    auto it = level.fifos.find(tid);
    // Invariant: a device is in the rotation iff its FIFO is non-empty.
    ScheduledItem item = std::move(it->second.front());
    it->second.pop_front();
    if (it->second.empty()) {
      level.fifos.erase(it);
    } else {
      level.rotation.push_back(tid);  // round robin
    }
    --pending_;
    ++served_[p];
    return item;
  }
  return std::nullopt;
}

std::size_t Scheduler::pending_at(int priority) const {
  const int p = std::clamp(priority, i2o::kHighestPriority,
                           i2o::kLowestPriority);
  const Level& level = levels_[static_cast<std::size_t>(p)];
  std::size_t n = 0;
  for (const auto& [tid, fifo] : level.fifos) {
    n += fifo.size();
  }
  return n;
}

std::size_t Scheduler::discard_for(i2o::Tid tid) {
  std::size_t dropped = 0;
  for (Level& level : levels_) {
    const auto it = level.fifos.find(tid);
    if (it != level.fifos.end()) {
      dropped += it->second.size();
      level.fifos.erase(it);
    }
    level.rotation.erase(
        std::remove(level.rotation.begin(), level.rotation.end(), tid),
        level.rotation.end());
  }
  pending_ -= dropped;
  return dropped;
}

int default_priority_for(const i2o::FrameHeader& hdr) noexcept {
  if (!hdr.is_private()) {
    return i2o::kControlPriority;  // executive/utility message classes
  }
  return i2o::kDefaultPriority;
}

}  // namespace xdaq::core
