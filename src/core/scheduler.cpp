#include "core/scheduler.hpp"

#include <algorithm>
#include <bit>

namespace xdaq::core {

namespace {
/// Single-writer relaxed adjust: the dispatch thread is the only writer,
/// snapshot readers tolerate slightly stale values.
template <typename T>
inline void adjust(std::atomic<T>& v, std::int64_t d) noexcept {
  v.store(static_cast<T>(
              static_cast<std::int64_t>(v.load(std::memory_order_relaxed)) +
              d),
          std::memory_order_relaxed);
}
}  // namespace

void Scheduler::enqueue(int priority, ScheduledItem item) {
  const int p = std::clamp(priority, i2o::kHighestPriority,
                           i2o::kLowestPriority);
  Level& level = levels_[static_cast<std::size_t>(p)];
  const i2o::Tid tid = item.header.target;
  RingFifo<ScheduledItem>* fifo;
  if (level.cached_fifo != nullptr && level.cached_tid == tid) {
    fifo = level.cached_fifo;
  } else {
    fifo = &level.fifos[tid];
    level.cached_tid = tid;
    level.cached_fifo = fifo;
  }
  if (fifo->empty()) {
    level.rotation.push_back(tid);
    nonempty_mask_ |= static_cast<std::uint8_t>(1U << p);
  }
  fifo->push_back(std::move(item));
  ++pending_;
  adjust(depth_[static_cast<std::size_t>(p)], 1);
}

std::optional<ScheduledItem> Scheduler::next() {
  std::optional<ScheduledItem> out;
  ScheduledItem item;
  if (next(item)) {
    out.emplace(std::move(item));
  }
  return out;
}

bool Scheduler::next(ScheduledItem& out) {
  if (nonempty_mask_ == 0) {
    return false;
  }
  const auto p = static_cast<std::size_t>(std::countr_zero(nonempty_mask_));
  Level& level = levels_[p];
  const i2o::Tid tid = level.rotation.front();
  level.rotation.pop_front();
  // Invariant: a device is in the rotation iff its FIFO is non-empty.
  RingFifo<ScheduledItem>* fifo;
  if (level.cached_fifo != nullptr && level.cached_tid == tid) {
    fifo = level.cached_fifo;
  } else {
    fifo = &level.fifos.find(tid)->second;
    level.cached_tid = tid;
    level.cached_fifo = fifo;
  }
  out = std::move(fifo->front());
  fifo->pop_front();
  // An emptied FIFO leaves the rotation but keeps its map entry and ring
  // storage (and stays cached) - the next burst re-uses all three.
  if (!fifo->empty()) {
    level.rotation.push_back(tid);  // round robin
  }
  if (level.rotation.empty()) {
    nonempty_mask_ &= static_cast<std::uint8_t>(~(1U << p));
  }
  --pending_;
  adjust(depth_[p], -1);
  adjust(served_[p], 1);
  return true;
}

std::size_t Scheduler::pending_at(int priority) const {
  const int p = std::clamp(priority, i2o::kHighestPriority,
                           i2o::kLowestPriority);
  const Level& level = levels_[static_cast<std::size_t>(p)];
  std::size_t n = 0;
  for (const auto& [tid, fifo] : level.fifos) {
    n += fifo.size();
  }
  return n;
}

std::size_t Scheduler::discard_for(i2o::Tid tid) {
  std::size_t dropped = 0;
  for (std::size_t p = 0; p < levels_.size(); ++p) {
    Level& level = levels_[p];
    if (level.cached_tid == tid) {
      level.cached_fifo = nullptr;
    }
    const auto it = level.fifos.find(tid);
    if (it != level.fifos.end()) {
      dropped += it->second.size();
      adjust(depth_[p],
             -static_cast<std::int64_t>(it->second.size()));
      level.fifos.erase(it);
    }
    level.rotation.erase(
        std::remove(level.rotation.begin(), level.rotation.end(), tid),
        level.rotation.end());
    if (level.rotation.empty()) {
      nonempty_mask_ &= static_cast<std::uint8_t>(~(1U << p));
    }
  }
  pending_ -= dropped;
  return dropped;
}

int default_priority_for(const i2o::FrameHeader& hdr) noexcept {
  if (!hdr.is_private()) {
    return i2o::kControlPriority;  // executive/utility message classes
  }
  return i2o::kDefaultPriority;
}

}  // namespace xdaq::core
