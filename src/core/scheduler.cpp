#include "core/scheduler.hpp"

#include <algorithm>
#include <bit>

namespace xdaq::core {

namespace {
/// Serialized-writer relaxed adjust: writers hold the owning shard's
/// mutex (or are the sole dispatch thread at N=1), so load+store never
/// loses an update; snapshot readers tolerate slightly stale values.
template <typename T>
inline void adjust(std::atomic<T>& v, std::int64_t d) noexcept {
  v.store(static_cast<T>(
              static_cast<std::int64_t>(v.load(std::memory_order_relaxed)) +
              d),
          std::memory_order_relaxed);
}
}  // namespace

void Scheduler::enqueue(int priority, ScheduledItem item) {
  const int p = std::clamp(priority, i2o::kHighestPriority,
                           i2o::kLowestPriority);
  Level& level = levels_[static_cast<std::size_t>(p)];
  const i2o::Tid tid = item.header.target;
  RingFifo<ScheduledItem>* fifo;
  if (level.cached_fifo != nullptr && level.cached_tid == tid) {
    fifo = level.cached_fifo;
  } else {
    fifo = &level.fifos[tid];
    level.cached_tid = tid;
    level.cached_fifo = fifo;
  }
  // A loaned device parks its arrivals: the FIFO grows but the device
  // stays out of the rotation until return_loan(). loaned_ is empty in
  // every single-shard executive, so the seed hot path pays one branch.
  if (fifo->empty() && (loaned_.empty() || !is_loaned(tid))) {
    level.rotation.push_back(tid);
    nonempty_mask_ |= static_cast<std::uint8_t>(1U << p);
  }
  fifo->push_back(std::move(item));
  adjust(pending_, 1);
  adjust(depth_[static_cast<std::size_t>(p)], 1);
}

std::optional<ScheduledItem> Scheduler::next() {
  std::optional<ScheduledItem> out;
  ScheduledItem item;
  if (next(item)) {
    out.emplace(std::move(item));
  }
  return out;
}

bool Scheduler::next(ScheduledItem& out) {
  if (nonempty_mask_ == 0) {
    return false;
  }
  const auto p = static_cast<std::size_t>(std::countr_zero(nonempty_mask_));
  Level& level = levels_[p];
  const i2o::Tid tid = level.rotation.front();
  level.rotation.pop_front();
  // Invariant: a device is in the rotation iff its FIFO is non-empty.
  RingFifo<ScheduledItem>* fifo;
  if (level.cached_fifo != nullptr && level.cached_tid == tid) {
    fifo = level.cached_fifo;
  } else {
    fifo = &level.fifos.find(tid)->second;
    level.cached_tid = tid;
    level.cached_fifo = fifo;
  }
  out = std::move(fifo->front());
  fifo->pop_front();
  // An emptied FIFO leaves the rotation but keeps its map entry and ring
  // storage (and stays cached) - the next burst re-uses all three.
  if (!fifo->empty()) {
    level.rotation.push_back(tid);  // round robin
  }
  if (level.rotation.empty()) {
    nonempty_mask_ &= static_cast<std::uint8_t>(~(1U << p));
  }
  adjust(pending_, -1);
  adjust(depth_[p], -1);
  adjust(served_[p], 1);
  return true;
}

std::size_t Scheduler::pending_at(int priority) const {
  const int p = std::clamp(priority, i2o::kHighestPriority,
                           i2o::kLowestPriority);
  const Level& level = levels_[static_cast<std::size_t>(p)];
  std::size_t n = 0;
  for (const auto& [tid, fifo] : level.fifos) {
    n += fifo.size();
  }
  return n;
}

std::size_t Scheduler::discard_for(i2o::Tid tid) {
  std::size_t dropped = 0;
  for (std::size_t p = 0; p < levels_.size(); ++p) {
    Level& level = levels_[p];
    if (level.cached_tid == tid) {
      level.cached_fifo = nullptr;
    }
    const auto it = level.fifos.find(tid);
    if (it != level.fifos.end()) {
      dropped += it->second.size();
      adjust(depth_[p],
             -static_cast<std::int64_t>(it->second.size()));
      level.fifos.erase(it);
    }
    level.rotation.erase(
        std::remove(level.rotation.begin(), level.rotation.end(), tid),
        level.rotation.end());
    if (level.rotation.empty()) {
      nonempty_mask_ &= static_cast<std::uint8_t>(~(1U << p));
    }
  }
  adjust(pending_, -static_cast<std::int64_t>(dropped));
  return dropped;
}

std::size_t Scheduler::extract_device(i2o::Tid tid,
                                      std::vector<ScheduledItem>& out) {
  std::size_t taken = 0;
  for (std::size_t p = 0; p < levels_.size(); ++p) {
    Level& level = levels_[p];
    const auto it = level.fifos.find(tid);
    if (it == level.fifos.end() || it->second.empty()) {
      continue;
    }
    RingFifo<ScheduledItem>& fifo = it->second;
    const std::size_t n = fifo.size();
    for (std::size_t i = 0; i < n; ++i) {
      out.push_back(std::move(fifo.front()));
      fifo.pop_front();
    }
    taken += n;
    adjust(depth_[p], -static_cast<std::int64_t>(n));
    level.rotation.erase(
        std::remove(level.rotation.begin(), level.rotation.end(), tid),
        level.rotation.end());
    if (level.rotation.empty()) {
      nonempty_mask_ &= static_cast<std::uint8_t>(~(1U << p));
    }
  }
  return taken;
}

std::size_t Scheduler::steal(std::size_t max_items, i2o::Tid skip_tid,
                             std::vector<ScheduledItem>& out_items,
                             std::vector<i2o::Tid>& out_tids) {
  std::size_t taken = 0;
  // Lowest priority first, back of each rotation first: the devices the
  // victim would have reached last lose the least round-robin progress.
  for (std::size_t p = levels_.size(); p-- > 0 && taken < max_items;) {
    Level& level = levels_[p];
    while (taken < max_items && !level.rotation.empty()) {
      i2o::Tid tid = level.rotation.back();
      if (tid == skip_tid) {
        if (level.rotation.size() == 1) {
          break;  // only the in-flight device left at this level
        }
        tid = level.rotation[level.rotation.size() - 2];
      }
      loaned_.push_back(tid);
      out_tids.push_back(tid);
      // Takes the device's WHOLE backlog (all levels, priority order) so
      // its per-priority FIFO ordering survives the move to the thief.
      taken += extract_device(tid, out_items);
    }
  }
  adjust(pending_, -static_cast<std::int64_t>(taken));
  stolen_.fetch_add(taken, std::memory_order_relaxed);
  return taken;
}

void Scheduler::return_loan(i2o::Tid tid) {
  const auto it = std::find(loaned_.begin(), loaned_.end(), tid);
  if (it == loaned_.end()) {
    return;
  }
  loaned_.erase(it);
  // Re-enter the rotation at every level where messages parked while the
  // device was away (a loaned device is never in any rotation).
  for (std::size_t p = 0; p < levels_.size(); ++p) {
    Level& level = levels_[p];
    const auto fit = level.fifos.find(tid);
    if (fit != level.fifos.end() && !fit->second.empty()) {
      level.rotation.push_back(tid);
      nonempty_mask_ |= static_cast<std::uint8_t>(1U << p);
    }
  }
}

bool Scheduler::is_loaned(i2o::Tid tid) const noexcept {
  return std::find(loaned_.begin(), loaned_.end(), tid) != loaned_.end();
}

int default_priority_for(const i2o::FrameHeader& hdr) noexcept {
  if (!hdr.is_private()) {
    return i2o::kControlPriority;  // executive/utility message classes
  }
  return i2o::kDefaultPriority;
}

}  // namespace xdaq::core
