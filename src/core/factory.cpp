#include "core/factory.hpp"

#include "core/device.hpp"

namespace xdaq::core {

DeviceFactory& DeviceFactory::instance() {
  static DeviceFactory factory;
  return factory;
}

Status DeviceFactory::register_class(const std::string& class_name,
                                     Creator creator) {
  const std::scoped_lock lock(mutex_);
  if (creators_.contains(class_name)) {
    return {Errc::AlreadyExists, "device class already registered"};
  }
  creators_[class_name] = std::move(creator);
  return Status::ok();
}

Result<std::unique_ptr<Device>> DeviceFactory::create(
    const std::string& class_name) const {
  Creator creator;
  {
    const std::scoped_lock lock(mutex_);
    const auto it = creators_.find(class_name);
    if (it == creators_.end()) {
      return {Errc::NotFound, "unknown device class: " + class_name};
    }
    creator = it->second;
  }
  return creator();
}

bool DeviceFactory::has(const std::string& class_name) const {
  const std::scoped_lock lock(mutex_);
  return creators_.contains(class_name);
}

std::vector<std::string> DeviceFactory::class_names() const {
  const std::scoped_lock lock(mutex_);
  std::vector<std::string> out;
  out.reserve(creators_.size());
  for (const auto& [name, fn] : creators_) {
    out.push_back(name);
  }
  return out;
}

}  // namespace xdaq::core
