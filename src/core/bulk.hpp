// bulk.hpp - arbitrary-length transfers over chained frames.
//
// One I2O frame carries at most 256 KiB. Paper section 4: "Making use of
// I2O's Scatter-Gather Lists (SGL) or chaining blocks helps to transmit
// arbitrary length information." bulk_send splits any payload into
// chained frames (kFlagChained + i2o::ChainHeader); the receiving device
// funnels them through a BulkReceiver, which yields the reassembled
// message when the last fragment lands. Small payloads skip the chain
// machinery entirely.
#pragma once

#include <optional>
#include <vector>

#include "core/device.hpp"
#include "i2o/chain.hpp"

namespace xdaq::core {

/// Default fragment payload: comfortably under one frame, word aligned.
inline constexpr std::size_t kDefaultBulkFragmentBytes = 64 * 1024;

/// Sends `data` from `dev` to `target` under (org, xfunction). Payloads
/// that fit one fragment go as a single plain frame; larger ones as a
/// chain. All fragments share one transaction context.
Status bulk_send(Device& dev, i2o::Tid target, i2o::OrgId org,
                 std::uint16_t xfunction, std::span<const std::byte> data,
                 std::size_t max_fragment_bytes = kDefaultBulkFragmentBytes,
                 std::uint32_t transaction_context = 0);

/// Receiver-side counterpart: feed every message arriving at the bound
/// (org, xfunction). Returns the complete message when one finishes
/// (single-frame messages complete immediately), nullopt while a chain is
/// still partial, or an error for protocol violations.
class BulkReceiver {
 public:
  Result<std::optional<std::vector<std::byte>>> feed(
      const MessageContext& ctx);

  /// Chains currently being reassembled.
  [[nodiscard]] std::size_t pending() const noexcept {
    return reassembler_.pending();
  }

 private:
  i2o::ChainReassembler reassembler_;
};

}  // namespace xdaq::core
